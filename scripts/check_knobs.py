#!/usr/bin/env python3
"""Cross-check docs/knobs.md against the BenchOptions parser.

The knobs handbook (docs/knobs.md) claims to be the normative
inventory of every shared bench knob. This script keeps that claim
honest in both directions:

  * every `--flag` and `HYMM_*` environment variable the parser
    (src/sweep/bench_options.cpp) owns must appear in the handbook's
    knob table;
  * every flag / env var named in the handbook's table must appear in
    the parser source — no documenting knobs that do not exist.

Flags are recognized as string literals ("--datasets") in the parser
and as `--flag` spellings in the table's first column; env vars as
HYMM_* identifiers on both sides. Run as a ctest (check_knobs_doc)
and from CI's docs job.

Usage: check_knobs.py [--doc docs/knobs.md] [--src src/sweep/bench_options.cpp]
Exit status: 0 in sync, 1 out of sync, 2 usage/IO error.
"""

import argparse
import pathlib
import re
import sys

FLAG_IN_SRC = re.compile(r'"(--[a-z][a-z0-9-]*)')
ENV_IN_SRC = re.compile(r"\b(HYMM_[A-Z_]+)\b")
# First two columns of a knob table row: | `--flag[...]` | `HYMM_X` or — |
ROW = re.compile(r"^\|\s*`(--[a-z][a-z0-9-]*)[^`]*`\s*\|\s*(`HYMM_[A-Z_]+`|—)")


def fail(message):
    print(f"check_knobs: {message}", file=sys.stderr)
    sys.exit(2)


def parser_knobs(src_path):
    try:
        text = src_path.read_text(encoding="utf-8")
    except OSError as err:
        fail(f"cannot read {src_path}: {err}")
    return set(FLAG_IN_SRC.findall(text)), set(ENV_IN_SRC.findall(text))


def documented_knobs(doc_path):
    try:
        lines = doc_path.read_text(encoding="utf-8").splitlines()
    except OSError as err:
        fail(f"cannot read {doc_path}: {err}")
    flags, envs = set(), set()
    for line in lines:
        match = ROW.match(line.strip())
        if not match:
            continue
        flags.add(match.group(1))
        if match.group(2) != "—":
            envs.add(match.group(2).strip("`"))
    if not flags:
        fail(f"{doc_path} has no knob table rows (format changed?)")
    return flags, envs


def main(argv):
    root = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(prog="check_knobs.py")
    parser.add_argument("--doc", default=root / "docs" / "knobs.md",
                        type=pathlib.Path)
    parser.add_argument("--src",
                        default=root / "src" / "sweep" / "bench_options.cpp",
                        type=pathlib.Path)
    args = parser.parse_args(argv[1:])

    src_flags, src_envs = parser_knobs(args.src)
    doc_flags, doc_envs = documented_knobs(args.doc)

    problems = []
    for flag in sorted(src_flags - doc_flags):
        problems.append(f"flag {flag} is parsed but missing from {args.doc}")
    for flag in sorted(doc_flags - src_flags):
        problems.append(f"flag {flag} is documented but not parsed")
    for env in sorted(src_envs - doc_envs):
        problems.append(f"env var {env} is parsed but missing from "
                        f"{args.doc}")
    for env in sorted(doc_envs - src_envs):
        problems.append(f"env var {env} is documented but not parsed")

    for problem in problems:
        print(f"check_knobs: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"check_knobs: OK — {len(doc_flags)} flags, {len(doc_envs)} env "
          f"vars in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
