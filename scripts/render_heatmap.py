#!/usr/bin/env python3
"""Render the "spatial" tile heatmap of a hymm-run-report/6+ report.

Usage:
    render_heatmap.py REPORT [--abbrev CR] [--flow HyMM] [--result N]
                      [--metric cycles] [--region op|rwp|region3|other]
                      [--log] [--ppm out.ppm]

Selects one result from the report (by --abbrev / --flow, or by
--result index; defaults to the first result carrying the needed
object), sums the chosen per-tile metric across the hybrid regions
(or takes a single region with --region) and renders the grid:

  * ASCII art on stdout (default): one shade character per tile,
    darkest = hottest, over the " .:-=+*#%@" ramp.
  * A PPM image with --ppm: a P3 heat colormap (black -> red ->
    yellow -> white), one pixel per tile; convertible with any image
    tool (e.g. ImageMagick) and viewable directly in most viewers.

Metrics: nnz, macs, dmb_hits, dmb_misses, dram_bytes, cycles — plus
route, which renders the per-tile routing map of a hymm-run-report/8
"route" object ('O' = OP tile, '.' = RWP; orange/blue in PPM mode)
with the router's predicted global-vs-tiled cycles in the header.
The routing grid and the spatial grid share tile coordinates, so a
--metric=route map overlays any spatial metric of the same run.
--log applies log1p scaling before normalization, which makes
power-law tile distributions (the common case for degree-sorted
adjacency) readable.

Tile coordinates live in the simulated node order — for hybrid runs
that is the degree-sorted order, so row/column 0 holds the
highest-degree vertices (docs/schemas.md documents the caveat).

Exit status: 0 on success, 1 when the report has no matching result
or no spatial/route data, 2 on usage errors.
"""

import argparse
import json
import math
import sys

SPATIAL_METRICS = ("nnz", "macs", "dmb_hits", "dmb_misses", "dram_bytes",
                   "cycles")
METRICS = SPATIAL_METRICS + ("route",)
SUPPORTED_SCHEMAS = ("hymm-run-report/6", "hymm-run-report/7",
                     "hymm-run-report/8")
ASCII_RAMP = " .:-=+*#%@"


def fail(message, code=1):
    print(f"render_heatmap: {message}", file=sys.stderr)
    sys.exit(code)


def select_result(results, abbrev, flow, index, key):
    if index is not None:
        if not 0 <= index < len(results):
            fail(f"--result {index} out of range (report has "
                 f"{len(results)} results)")
        return results[index]
    for result in results:
        if abbrev and result.get("abbrev") != abbrev:
            continue
        if flow and result.get("flow", "").lower() != flow.lower():
            continue
        if key in result:
            return result
    wanted = " ".join(
        s for s in (abbrev and f"abbrev={abbrev}", flow and f"flow={flow}")
        if s)
    fail(f"no result with {key} data matches {wanted or 'the report'}")
    return None  # unreachable


def grid_values(spatial, metric, region):
    rows = int(spatial.get("grid_rows", 0))
    cols = int(spatial.get("grid_cols", 0))
    if rows == 0 or cols == 0:
        fail("spatial object has an empty grid")
    values = [0.0] * (rows * cols)
    regions = spatial.get("regions", {})
    if region is not None:
        if region not in regions:
            have = ", ".join(sorted(regions)) or "none"
            fail(f"region {region!r} not in report (present: {have})")
        selected = {region: regions[region]}
    else:
        selected = regions
    for cells in selected.values():
        column = cells.get(metric, [])
        for i, v in enumerate(column[: rows * cols]):
            values[i] += float(v)
    return rows, cols, values


def normalize(values, log_scale):
    if log_scale:
        values = [math.log1p(v) for v in values]
    peak = max(values, default=0.0)
    if peak <= 0.0:
        return [0.0] * len(values)
    return [v / peak for v in values]


def render_ascii(rows, cols, normalized, out):
    for r in range(rows):
        line = []
        for c in range(cols):
            v = normalized[r * cols + c]
            line.append(ASCII_RAMP[min(int(v * len(ASCII_RAMP)),
                                       len(ASCII_RAMP) - 1)])
        out.write("".join(line) + "\n")


def heat_rgb(v):
    # Black -> red -> yellow -> white, piecewise linear.
    if v <= 0.0:
        return (0, 0, 0)
    if v < 1 / 3:
        return (round(v * 3 * 255), 0, 0)
    if v < 2 / 3:
        return (255, round((v - 1 / 3) * 3 * 255), 0)
    return (255, 255, round((v - 2 / 3) * 3 * 255))


def render_ppm(rows, cols, normalized, path):
    lines = [f"P3\n{cols} {rows}\n255\n"]
    for r in range(rows):
        row = []
        for c in range(cols):
            row.extend(str(x) for x in heat_rgb(normalized[r * cols + c]))
        lines.append(" ".join(row) + "\n")
    try:
        with open(path, "w", encoding="utf-8") as f:
            f.writelines(lines)
    except OSError as err:
        fail(f"cannot write {path}: {err}")


def render_route(result, args):
    route = result.get("route")
    if not route:
        fail(f"result {result.get('abbrev')}/{result.get('flow')} carries "
             f"no route data (run with --route=tiles)")
    rows = int(route.get("grid_rows", 0))
    cols = int(route.get("grid_cols", 0))
    flows = route.get("tile_flows", [])
    if rows == 0 or cols == 0 or len(flows) != rows * cols:
        fail("route object has inconsistent grid geometry")
    kind = "degenerate (= global split)" if route.get("degenerate") \
        else "per-tile"
    print(f"# {result.get('abbrev')}/{result.get('flow')} — routing map "
          f"({route.get('mode')}, {kind}), {rows}x{cols} grid, tile "
          f"{route.get('tile')} nodes, op_rows {route.get('op_rows')}, "
          f"predicted cycles global {route.get('predicted_global_cycles')} "
          f"vs tiled {route.get('predicted_tiled_cycles')}",
          file=sys.stderr)
    for r in range(rows):
        line = ("O" if flows[r * cols + c] == 0 else "."
                for c in range(cols))
        sys.stdout.write("".join(line) + "\n")
    if args.ppm:
        # OP = orange, RWP = blue; one pixel per tile like the heatmap.
        lines = [f"P3\n{cols} {rows}\n255\n"]
        for r in range(rows):
            row = []
            for c in range(cols):
                rgb = (255, 140, 0) if flows[r * cols + c] == 0 \
                    else (0, 90, 255)
                row.extend(str(x) for x in rgb)
            lines.append(" ".join(row) + "\n")
        try:
            with open(args.ppm, "w", encoding="utf-8") as f:
                f.writelines(lines)
        except OSError as err:
            fail(f"cannot write {args.ppm}: {err}")
        print(f"# wrote {args.ppm}", file=sys.stderr)
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="render_heatmap.py", add_help=True,
        description="Render the spatial tile heatmap (or per-tile "
                    "routing map) of a hymm-run-report/6+ report.")
    parser.add_argument("report")
    parser.add_argument("--abbrev")
    parser.add_argument("--flow")
    parser.add_argument("--result", type=int, default=None)
    parser.add_argument("--metric", choices=METRICS, default="cycles")
    parser.add_argument("--region", default=None)
    parser.add_argument("--log", action="store_true")
    parser.add_argument("--ppm", default=None)
    args = parser.parse_args(argv[1:])

    try:
        with open(args.report, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot read {args.report}: {err}")

    schema = doc.get("schema", "")
    if schema not in SUPPORTED_SCHEMAS:
        fail(f"{args.report} has schema {schema!r}; heatmaps need one of "
             f"{', '.join(SUPPORTED_SCHEMAS)}")
    if args.metric == "route" and schema != "hymm-run-report/8":
        fail(f"--metric=route needs hymm-run-report/8 (got {schema!r})")

    key = "route" if args.metric == "route" else "spatial"
    result = select_result(doc.get("results", []), args.abbrev, args.flow,
                           args.result, key)
    if args.metric == "route":
        return render_route(result, args)
    spatial = result.get("spatial")
    if not spatial:
        fail(f"result {result.get('abbrev')}/{result.get('flow')} carries "
             f"no spatial data (run with --spatial)")

    rows, cols, values = grid_values(spatial, args.metric, args.region)
    normalized = normalize(values, args.log)

    region_note = args.region or "all regions"
    print(f"# {result.get('abbrev')}/{result.get('flow')} — {args.metric} "
          f"({region_note}), {rows}x{cols} grid, tile "
          f"{spatial.get('tile')} nodes, peak {max(values, default=0):.0f}",
          file=sys.stderr)
    render_ascii(rows, cols, normalized, sys.stdout)
    if args.ppm:
        render_ppm(rows, cols, normalized, args.ppm)
        print(f"# wrote {args.ppm}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
