#!/usr/bin/env sh
# Profile the simulator hot loop with gprofng (binutils' profiler;
# `perf` is often unavailable in containers, gprofng needs no kernel
# support). Collects a CPU-time experiment over the perf-gate sweep
# and prints the flat function profile plus the hottest callers.
#
# Usage:
#     scripts/profile_hotloop.sh [BINARY [ARGS...]]
#
# Defaults to the perf-gate configuration — serial, CR+CS, the same
# cells the wall-clock criterion is measured on:
#     HYMM_DATASETS=CR,CS HYMM_THREADS=1 build/bench/perf_regression \
#         --rev profile --out /tmp/hymm_profile
#
# Knobs:
#     HYMM_PROFILE_DIR   experiment directory (default: a fresh
#                        /tmp/hymm_hotloop.<pid>.er; gprofng refuses
#                        to overwrite an existing experiment)
#     HYMM_NO_FASTFWD=1  profile the legacy per-cycle loop instead —
#                        useful to see what the fast-forward removed
#
# Reading the output: sort by exclusive CPU time. The known hot spots
# and their fixes are catalogued in docs/architecture.md — before the PR that
# added it, LoadStoreQueue::tick's retry loop plus
# DenseMatrixBuffer::read's directory probes dominated RWP/HyMM cells
# at ~20x the OP engine's per-cycle cost. Note gprofng's totals
# undersample short runs; treat the *distribution* as meaningful, not
# the absolute seconds.

set -eu

if ! command -v gprofng >/dev/null 2>&1; then
    echo "profile_hotloop.sh: gprofng not found (binutils >= 2.39)" >&2
    exit 2
fi

if [ "$#" -gt 0 ]; then
    : # explicit binary + args given
elif [ -x build/bench/perf_regression ]; then
    HYMM_DATASETS="${HYMM_DATASETS:-CR,CS}"
    HYMM_THREADS="${HYMM_THREADS:-1}"
    export HYMM_DATASETS HYMM_THREADS
    set -- build/bench/perf_regression --rev profile --out /tmp/hymm_profile
else
    echo "profile_hotloop.sh: build/bench/perf_regression missing;" \
         "build first (cmake --build build) or pass a binary" >&2
    exit 2
fi

experiment="${HYMM_PROFILE_DIR:-/tmp/hymm_hotloop.$$.er}"
rm -rf "$experiment"

echo "== collecting: $* -> $experiment" >&2
gprofng collect app -o "$experiment" "$@"

echo "== flat profile (exclusive CPU time)"
gprofng display text -functions "$experiment"

echo "== callers/callees of the top frame"
top_frame=$(gprofng display text -functions "$experiment" |
    awk 'NR > 5 && $1 ~ /^[0-9]/ { for (i = 5; i <= NF; i++) printf "%s%s", $i, (i < NF ? " " : "\n"); exit }')
if [ -n "${top_frame:-}" ]; then
    gprofng display text -callers-callees "$experiment" | head -60
fi

echo "experiment kept at $experiment (rerun views with:" \
     "gprofng display text -functions $experiment)" >&2
