#!/usr/bin/env sh
# Profile the simulator hot loop with whichever profiler this machine
# actually has. Tries, in order:
#
#   1. perf record   (kernel support + perf_event access required;
#                     probed with a real one-shot collection, since
#                     the binary often exists where the syscall is
#                     forbidden)
#   2. gprofng       (binutils >= 2.39; userspace-only, works in
#                     containers)
#   3. gprof         (needs the binary built with -pg; detected by
#                     the run leaving a gmon.out behind)
#
# and exits 2 with a clear message when none of the three can
# profile here. HYMM_PROFILER=perf|gprofng|gprof skips the probe
# order and demands that one profiler (failing loudly if it cannot
# run instead of silently falling through).
#
# Usage:
#     scripts/profile_hotloop.sh [BINARY [ARGS...]]
#
# Defaults to the perf-gate configuration — serial, CR+CS, the same
# cells the wall-clock criterion is measured on:
#     HYMM_DATASETS=CR,CS HYMM_THREADS=1 build/bench/perf_regression \
#         --rev profile --out /tmp/hymm_profile
#
# Knobs:
#     HYMM_PROFILER      force one backend: perf | gprofng | gprof
#     HYMM_PROFILE_DIR   perf.data / experiment output location
#                        (default: a fresh /tmp/hymm_hotloop.<pid>.*)
#     HYMM_NO_FASTFWD=1  profile the legacy per-cycle loop instead —
#                        useful to see what the fast-forward removed
#
# Reading the output: sort by exclusive CPU time. The known hot spots
# and their fixes are catalogued in docs/architecture.md — before the
# PR that added this script, LoadStoreQueue::tick's retry loop plus
# DenseMatrixBuffer::read's directory probes dominated RWP/HyMM cells
# at ~20x the OP engine's per-cycle cost. Sampling profilers
# undersample short runs; treat the *distribution* as meaningful, not
# the absolute seconds.

set -eu

if [ "$#" -gt 0 ]; then
    : # explicit binary + args given
elif [ -x build/bench/perf_regression ]; then
    HYMM_DATASETS="${HYMM_DATASETS:-CR,CS}"
    HYMM_THREADS="${HYMM_THREADS:-1}"
    export HYMM_DATASETS HYMM_THREADS
    set -- build/bench/perf_regression --rev profile --out /tmp/hymm_profile
else
    echo "profile_hotloop.sh: build/bench/perf_regression missing;" \
         "build first (cmake --build build) or pass a binary" >&2
    exit 2
fi

# A profiler "is available" only if it can actually collect here —
# perf in particular is often installed where perf_event_open is
# forbidden (containers, perf_event_paranoid), so probe with a real
# one-shot collection, not just command -v.
perf_works() {
    command -v perf >/dev/null 2>&1 &&
        perf record -o /dev/null --quiet -- true >/dev/null 2>&1
}

run_perf() {
    data="${HYMM_PROFILE_DIR:-/tmp/hymm_hotloop.$$.perf.data}"
    echo "== collecting (perf record): $* -> $data" >&2
    perf record -g -o "$data" -- "$@"
    echo "== flat profile (exclusive CPU time)"
    perf report --stdio --no-children -i "$data" | head -60
    echo "== hottest call chains"
    perf report --stdio -g --no-demangle=no -i "$data" | head -80
    echo "profile kept at $data (rerun views with:" \
         "perf report -i $data)" >&2
}

run_gprofng() {
    experiment="${HYMM_PROFILE_DIR:-/tmp/hymm_hotloop.$$.er}"
    rm -rf "$experiment"
    echo "== collecting (gprofng): $* -> $experiment" >&2
    gprofng collect app -o "$experiment" "$@"
    echo "== flat profile (exclusive CPU time)"
    gprofng display text -functions "$experiment"
    echo "== callers/callees of the top frame"
    gprofng display text -callers-callees "$experiment" | head -60
    echo "experiment kept at $experiment (rerun views with:" \
         "gprofng display text -functions $experiment)" >&2
}

run_gprof() {
    # gmon.out lands in the process's working directory, so run from
    # the profile dir — which means the binary path must be absolute.
    binary=$(realpath "$1"); shift
    workdir="${HYMM_PROFILE_DIR:-/tmp/hymm_hotloop.$$.gprof}"
    mkdir -p "$workdir"
    echo "== collecting (gprof): $binary $* -> $workdir/gmon.out" >&2
    ( cd "$workdir" >/dev/null || exit 2
      "$binary" "$@" )
    # gprof needs an instrumented binary: an un-instrumented run
    # leaves no gmon.out, which is a configuration error, not a
    # profile of zero samples.
    if [ ! -s "$workdir/gmon.out" ]; then
        echo "profile_hotloop.sh: $binary produced no gmon.out —" \
             "rebuild with -pg for gprof" \
             "(cmake -DCMAKE_CXX_FLAGS=-pg -DCMAKE_EXE_LINKER_FLAGS=-pg)" >&2
        exit 2
    fi
    echo "== flat profile (exclusive CPU time)"
    gprof -b "$binary" "$workdir/gmon.out" | head -80
    echo "profile kept at $workdir/gmon.out (rerun views with:" \
         "gprof $binary $workdir/gmon.out)" >&2
}

backend="${HYMM_PROFILER:-}"
if [ -z "$backend" ]; then
    if perf_works; then
        backend=perf
    elif command -v gprofng >/dev/null 2>&1; then
        backend=gprofng
    elif command -v gprof >/dev/null 2>&1; then
        backend=gprof
    else
        echo "profile_hotloop.sh: no usable profiler found — need one of:" >&2
        echo "  perf    (linux-tools; also needs perf_event access)" >&2
        echo "  gprofng (binutils >= 2.39)" >&2
        echo "  gprof   (binutils; binary must be built with -pg)" >&2
        exit 2
    fi
fi

case "$backend" in
    perf)
        if ! perf_works; then
            echo "profile_hotloop.sh: HYMM_PROFILER=perf but perf cannot" \
                 "collect here (missing binary or perf_event access denied)" >&2
            exit 2
        fi
        run_perf "$@" ;;
    gprofng)
        if ! command -v gprofng >/dev/null 2>&1; then
            echo "profile_hotloop.sh: HYMM_PROFILER=gprofng but gprofng" \
                 "not found (binutils >= 2.39)" >&2
            exit 2
        fi
        run_gprofng "$@" ;;
    gprof)
        if ! command -v gprof >/dev/null 2>&1; then
            echo "profile_hotloop.sh: HYMM_PROFILER=gprof but gprof" \
                 "not found" >&2
            exit 2
        fi
        run_gprof "$@" ;;
    *)
        echo "profile_hotloop.sh: unknown HYMM_PROFILER '$backend'" \
             "(expected perf, gprofng or gprof)" >&2
        exit 2 ;;
esac
