#!/usr/bin/env python3
"""Markdown link checker for the docs tree (stdlib only).

Usage: scripts/check_links.py [FILE_OR_DIR ...]
       (default: docs/ README.md EXPERIMENTS.md DESIGN.md)

Checks, for every markdown file:
  - relative links resolve to an existing file or directory;
  - intra-document and cross-document #anchors match a real heading
    (GitHub-style slugs);
  - no link target is an absolute filesystem path.
External (http/https/mailto) URLs are not fetched — CI must not
depend on network reachability — but must at least parse.

Exit status: 0 when every link resolves, 1 otherwise (each failure is
printed as file:line: message).
"""

import re
import sys
import unicodedata
from pathlib import Path

LINK_RE = re.compile(r"(?<!!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
IMAGE_RE = re.compile(r"!\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(?P<title>.+?)\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(title: str) -> str:
    """GitHub's heading-to-anchor slug: strip markup and punctuation,
    lowercase, spaces to hyphens."""
    title = re.sub(r"`([^`]*)`", r"\1", title)          # inline code
    title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", title)  # links
    title = unicodedata.normalize("NFKD", title)
    out = []
    for ch in title.lower():
        if ch.isalnum() or ch in "_-":
            out.append(ch)
        elif ch in " \t":
            out.append("-")
        # any other punctuation is dropped
    return "".join(out)


def headings_of(path: Path, cache={}) -> set:
    if path not in cache:
        slugs, counts = set(), {}
        in_fence = False
        for line in path.read_text(encoding="utf-8").splitlines():
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group("title"))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


def check_file(path: Path, repo_root: Path) -> list:
    errors = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for regex in (LINK_RE, IMAGE_RE):
            for m in regex.finditer(line):
                target = m.group("target")
                err = check_target(path, target, repo_root)
                if err:
                    errors.append(f"{path}:{lineno}: {err}")
    return errors


def check_target(source: Path, target: str, repo_root: Path):
    if target.startswith(("http://", "https://", "mailto:")):
        return None  # not fetched: CI must work offline
    if target.startswith("/"):
        return f"absolute path link '{target}' (use a relative path)"
    file_part, _, anchor = target.partition("#")
    dest = source if not file_part else (source.parent / file_part).resolve()
    if not dest.exists():
        return f"broken link '{target}' (no such file '{file_part}')"
    if repo_root not in dest.parents and dest != repo_root:
        return f"link '{target}' escapes the repository"
    if anchor:
        if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
            return f"anchor link '{target}' into a non-markdown target"
        if anchor not in headings_of(dest):
            return f"broken anchor '{target}' (no heading slug '#{anchor}')"
    return None


def main(argv):
    repo_root = Path(__file__).resolve().parent.parent
    args = argv[1:] or ["docs", "README.md", "EXPERIMENTS.md", "DESIGN.md"]
    files = []
    for arg in args:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.exists():
            files.append(p)
        else:
            print(f"check_links: no such input {arg}", file=sys.stderr)
            return 2
    errors = []
    for f in files:
        errors.extend(check_file(f.resolve(), repo_root))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_links: {len(files)} files, "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
