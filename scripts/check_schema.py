#!/usr/bin/env python3
"""Validate HyMM JSON artifacts against their declared schema.

Usage:
    check_schema.py FILE [FILE ...]

Each file must declare a supported schema and satisfy that schema's
structural requirements:

  hymm-run-report/4..8    "results" array; every result carries the
                          required run keys and a "stats" object with
                          a stall breakdown. "histograms"/"timeseries"
                          need /5+; "spatial" needs /6 (and its
                          per-region cell arrays must match the
                          declared grid geometry, with "pe" counters
                          and an "imbalance" summary present);
                          "sample"/"checkpoint" need /7 (a result
                          labeled "sampled": true must carry a
                          "sample" object with per-phase band counts
                          and error bars); "route" needs /8 (its
                          "tile_flows" array must match the declared
                          grid geometry, flows must be 0/1, and a
                          sampled result must not carry one).
  hymm-bench/1|2|3        "runs" array; every run carries abbrev,
                          flow, cycles and a stall breakdown; /2 runs
                          also the per-phase breakdown; /3 runs also
                          the "sampled" label (sampled runs carry
                          sample_fraction and sample_rel_error_bound).
  hymm-tune-cache/1|2     "entries" array of cached tuner decisions;
                          /2 entries also carry the router fields
                          (route_kind in {"", "global", "tiles"} and
                          a numeric tile edge).
  hymm-serve-report/1     serve_bench output: "config", "classes",
                          "summary" (latency quantile blocks),
                          "traffic" (the DRAM conservation ledger,
                          standalone == charged + reuse + batch,
                          re-checked here), "queue_depth" and one
                          "requests" record per arrival.

Prints one OK/FAIL line per file with every problem found. Exit
status: 0 when all files validate, 1 when any file fails, 2 on usage
errors or unreadable files.
"""

import json
import sys

RUN_REPORT_SCHEMAS = {
    "hymm-run-report/4": 4,
    "hymm-run-report/5": 5,
    "hymm-run-report/6": 6,
    "hymm-run-report/7": 7,
    "hymm-run-report/8": 8,
}
BENCH_SCHEMAS = {"hymm-bench/1": 1, "hymm-bench/2": 2, "hymm-bench/3": 3}
SAMPLE_PHASE_KEYS = ("bands_total", "bands_simulated", "nnz_total",
                     "nnz_simulated", "cycles_estimate", "cycles_stderr")
TUNE_CACHE_SCHEMAS = {"hymm-tune-cache/1": 1, "hymm-tune-cache/2": 2}
SERVE_REPORT_SCHEMAS = {"hymm-serve-report/1": 1}

RESULT_KEYS = ("dataset", "abbrev", "scale", "flow", "cycles", "verified")
SPATIAL_CELL_KEYS = ("nnz", "macs", "dmb_hits", "dmb_misses",
                     "dram_bytes", "cycles")
BENCH_RUN_KEYS = ("abbrev", "flow", "cycles")
SERVE_CONFIG_KEYS = ("arrival_rate_rps", "requests", "queue_capacity",
                     "max_batch", "buffer_reuse")
SERVE_CLASS_KEYS = ("name", "weight", "nodes", "standalone_cycles",
                    "standalone_dram_bytes", "verified", "layers")
SERVE_SUMMARY_KEYS = ("served", "dropped", "batches", "makespan_cycles",
                      "busy_cycles", "utilization", "throughput_rps")
SERVE_QUANTILE_BLOCKS = ("latency_cycles", "wait_cycles", "service_cycles")
SERVE_QUANTILE_KEYS = ("count", "mean", "p50", "p90", "p99", "max")
SERVE_TRAFFIC_KEYS = ("standalone_bytes", "charged_bytes",
                      "reuse_saved_bytes", "batch_saved_bytes",
                      "standalone_cycles", "saved_cycles")


def check_stalls(obj, where, problems):
    stalls = obj.get("stalls")
    if not isinstance(stalls, dict) or not stalls:
        problems.append(f"{where}: missing or empty \"stalls\" object")
        return
    for cause, cycles in stalls.items():
        if not isinstance(cycles, (int, float)):
            problems.append(f"{where}: stall {cause!r} is not a number")


def check_spatial(spatial, where, problems):
    rows = spatial.get("grid_rows")
    cols = spatial.get("grid_cols")
    if not isinstance(rows, int) or not isinstance(cols, int) \
            or rows <= 0 or cols <= 0:
        problems.append(f"{where}: spatial grid geometry is invalid")
        return
    cells = rows * cols
    regions = spatial.get("regions")
    if not isinstance(regions, dict):
        problems.append(f"{where}: spatial has no \"regions\" object")
    else:
        for name, region in regions.items():
            for key in SPATIAL_CELL_KEYS:
                column = region.get(key)
                if not isinstance(column, list) or len(column) != cells:
                    problems.append(
                        f"{where}: spatial region {name!r} array {key!r} "
                        f"is not a {cells}-cell list")
    if not isinstance(spatial.get("residual"), dict):
        problems.append(f"{where}: spatial has no \"residual\" object")
    pe = spatial.get("pe")
    if not isinstance(pe, dict) or \
            not isinstance(pe.get("busy_cycles"), list) or \
            not isinstance(pe.get("mac_ops"), list):
        problems.append(f"{where}: spatial has no per-PE counter arrays")
    if not isinstance(spatial.get("imbalance"), dict):
        problems.append(f"{where}: spatial has no \"imbalance\" object")


def check_sample(sample, where, problems):
    for key in ("fraction", "seed", "cycles_estimate", "cycles_stderr",
                "rel_error_bound"):
        if not isinstance(sample.get(key), (int, float)):
            problems.append(f"{where}: {key!r} is not a number")
    for phase in ("combination", "aggregation"):
        obj = sample.get(phase)
        if not isinstance(obj, dict):
            problems.append(f"{where}: missing per-phase object {phase!r}")
            continue
        for key in SAMPLE_PHASE_KEYS:
            if not isinstance(obj.get(key), (int, float)):
                problems.append(f"{where}.{phase}: {key!r} is not a number")
        bands = obj.get("bands_total")
        simulated = obj.get("bands_simulated")
        if isinstance(bands, int) and isinstance(simulated, int) \
                and simulated > bands:
            problems.append(
                f"{where}.{phase}: bands_simulated {simulated} exceeds "
                f"bands_total {bands}")


def check_route(route, where, problems):
    for key in ("mode", "graph_fingerprint", "config_hash"):
        if not isinstance(route.get(key), str):
            problems.append(f"{where}: {key!r} is not a string")
    for key in ("degenerate", "cache_hit"):
        if not isinstance(route.get(key), bool):
            problems.append(f"{where}: {key!r} is not a boolean")
    for key in ("simulations", "global_threshold",
                "predicted_global_cycles", "predicted_tiled_cycles",
                "nodes", "tile", "op_rows", "region2_cols"):
        if not isinstance(route.get(key), (int, float)):
            problems.append(f"{where}: {key!r} is not a number")
    rows = route.get("grid_rows")
    cols = route.get("grid_cols")
    if not isinstance(rows, int) or not isinstance(cols, int) \
            or rows <= 0 or cols <= 0:
        problems.append(f"{where}: routing grid geometry is invalid")
        return
    cells = rows * cols
    flows = route.get("tile_flows")
    if not isinstance(flows, list) or len(flows) != cells:
        problems.append(
            f"{where}: \"tile_flows\" is not a {cells}-cell list")
    elif any(f not in (0, 1) for f in flows):
        problems.append(f"{where}: tile_flows entries must be 0 or 1")
    for key in ("tile_predicted_cycles", "tile_nnz"):
        column = route.get(key)
        if column is not None and \
                (not isinstance(column, list) or len(column) != cells):
            problems.append(f"{where}: {key!r} is not a {cells}-cell list")


def check_run_report(doc, version, problems):
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        problems.append("missing or empty \"results\" array")
        return
    for i, result in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(result, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in RESULT_KEYS:
            if key not in result:
                problems.append(f"{where}: missing key {key!r}")
        stats = result.get("stats")
        if not isinstance(stats, dict):
            problems.append(f"{where}: missing \"stats\" object")
        else:
            check_stalls(stats, f"{where}.stats", problems)
        for key, since in (("histograms", 5), ("timeseries", 5),
                           ("spatial", 6), ("sample", 7),
                           ("checkpoint", 7), ("route", 8)):
            if key in result and version < since:
                problems.append(
                    f"{where}: {key!r} needs hymm-run-report/{since}+ "
                    f"but the report declares /{version}")
        spatial = result.get("spatial")
        if version >= 6 and isinstance(spatial, dict):
            check_spatial(spatial, where, problems)
        if version >= 7 and result.get("sampled"):
            sample = result.get("sample")
            if not isinstance(sample, dict):
                problems.append(
                    f"{where}: \"sampled\" is true but there is no "
                    "\"sample\" object")
            else:
                check_sample(sample, f"{where}.sample", problems)
        route = result.get("route")
        if version >= 8 and isinstance(route, dict):
            check_route(route, f"{where}.route", problems)
            if result.get("sampled"):
                problems.append(
                    f"{where}: sampled result must not carry a "
                    "\"route\" object (sampled runs ignore routing)")


def check_bench(doc, version, problems):
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("missing or empty \"runs\" array")
        return
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in BENCH_RUN_KEYS:
            if key not in run:
                problems.append(f"{where}: missing key {key!r}")
        check_stalls(run, where, problems)
        if version >= 2:
            for phase in ("combination", "aggregation"):
                obj = run.get(phase)
                if not isinstance(obj, dict):
                    problems.append(
                        f"{where}: missing per-phase object {phase!r} "
                        f"(required by hymm-bench/2)")
                else:
                    check_stalls(obj, f"{where}.{phase}", problems)
        if version >= 3:
            sampled = run.get("sampled")
            if not isinstance(sampled, bool):
                problems.append(
                    f"{where}: missing boolean \"sampled\" label "
                    f"(required by hymm-bench/3)")
            elif sampled:
                for key in ("sample_fraction", "sample_rel_error_bound"):
                    if not isinstance(run.get(key), (int, float)):
                        problems.append(
                            f"{where}: sampled run: {key!r} is not a "
                            "number")


def check_serve_report(doc, _version, problems):
    config = doc.get("config")
    if not isinstance(config, dict):
        problems.append("missing \"config\" object")
    else:
        for key in SERVE_CONFIG_KEYS:
            if key not in config:
                problems.append(f"config: missing key {key!r}")

    classes = doc.get("classes")
    if not isinstance(classes, list) or not classes:
        problems.append("missing or empty \"classes\" array")
    else:
        for i, cls in enumerate(classes):
            where = f"classes[{i}]"
            if not isinstance(cls, dict):
                problems.append(f"{where}: not an object")
                continue
            for key in SERVE_CLASS_KEYS:
                if key not in cls:
                    problems.append(f"{where}: missing key {key!r}")
            if not isinstance(cls.get("layers"), list) or not cls["layers"]:
                problems.append(f"{where}: missing or empty \"layers\"")
            if cls.get("verified") is not True:
                problems.append(f"{where}: class is not verified")

    summary = doc.get("summary")
    if not isinstance(summary, dict):
        problems.append("missing \"summary\" object")
    else:
        for key in SERVE_SUMMARY_KEYS:
            if key not in summary:
                problems.append(f"summary: missing key {key!r}")
        for block in SERVE_QUANTILE_BLOCKS:
            quantiles = summary.get(block)
            if not isinstance(quantiles, dict):
                problems.append(f"summary: missing quantile block {block!r}")
                continue
            for key in SERVE_QUANTILE_KEYS:
                if not isinstance(quantiles.get(key), (int, float)):
                    problems.append(
                        f"summary.{block}: {key!r} is not a number")

    traffic = doc.get("traffic")
    if not isinstance(traffic, dict):
        problems.append("missing \"traffic\" object")
    else:
        for key in SERVE_TRAFFIC_KEYS:
            if not isinstance(traffic.get(key), int):
                problems.append(f"traffic: {key!r} is not an integer")
        if all(isinstance(traffic.get(k), int) for k in SERVE_TRAFFIC_KEYS):
            charged = (traffic["charged_bytes"] +
                       traffic["reuse_saved_bytes"] +
                       traffic["batch_saved_bytes"])
            if charged != traffic["standalone_bytes"]:
                problems.append(
                    "traffic: conservation violated: charged + reuse + "
                    f"batch = {charged} != standalone "
                    f"{traffic['standalone_bytes']}")
            if traffic["saved_cycles"] > traffic["standalone_cycles"]:
                problems.append(
                    "traffic: saved_cycles exceeds standalone_cycles")

    if not isinstance(doc.get("queue_depth"), list):
        problems.append("missing \"queue_depth\" array")
    requests = doc.get("requests")
    if not isinstance(requests, list) or not requests:
        problems.append("missing or empty \"requests\" array")
    elif isinstance(summary, dict) and \
            isinstance(summary.get("served"), int) and \
            isinstance(summary.get("dropped"), int):
        if summary["served"] + summary["dropped"] != len(requests):
            problems.append(
                "summary: served + dropped != len(requests): "
                f"{summary['served']} + {summary['dropped']} != "
                f"{len(requests)}")


def check_tune_cache(doc, version, problems):
    entries = doc.get("entries")
    if not isinstance(entries, list):
        problems.append("missing \"entries\" array")
        return
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            problems.append(f"entries[{i}]: not an object")
            continue
        if version >= 2:
            kind = entry.get("route_kind")
            if kind not in ("", "global", "tiles"):
                problems.append(
                    f"entries[{i}]: route_kind {kind!r} is not one of "
                    "\"\", \"global\", \"tiles\" (required by "
                    "hymm-tune-cache/2)")
            if not isinstance(entry.get("tile"), (int, float)):
                problems.append(
                    f"entries[{i}]: \"tile\" is not a number (required "
                    "by hymm-tune-cache/2)")


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL {path}: cannot read: {err}")
        return 2
    if not isinstance(doc, dict):
        print(f"FAIL {path}: top level is not an object")
        return 1
    schema = doc.get("schema")
    problems = []
    if schema in RUN_REPORT_SCHEMAS:
        check_run_report(doc, RUN_REPORT_SCHEMAS[schema], problems)
    elif schema in BENCH_SCHEMAS:
        check_bench(doc, BENCH_SCHEMAS[schema], problems)
    elif schema in TUNE_CACHE_SCHEMAS:
        check_tune_cache(doc, TUNE_CACHE_SCHEMAS[schema], problems)
    elif schema in SERVE_REPORT_SCHEMAS:
        check_serve_report(doc, SERVE_REPORT_SCHEMAS[schema], problems)
    else:
        problems.append(f"unsupported schema {schema!r}")
    if problems:
        print(f"FAIL {path} ({schema}):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"OK   {path} ({schema})")
    return 0


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__)
    status = 0
    for path in argv[1:]:
        status = max(status, check_file(path))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
