// Counters collected during simulation. One SimStats instance is
// shared by all component models of an accelerator run; phase results
// can be merged.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stall.hpp"
#include "common/types.hpp"

namespace hymm {

// What a DRAM/DMB transaction carries. Drives the Fig 11 breakdown
// and the class-aware eviction policy of Section IV-D.
enum class TrafficClass : std::uint8_t {
  kAdjacency = 0,  // compressed A (pointers + indices + values)
  kFeatures,       // compressed X
  kWeights,        // dense W
  kCombined,       // dense XW (combination result)
  kOutput,         // dense AXW (final aggregation output)
  kPartial,        // spilled / readback partial outputs
};
inline constexpr std::size_t kTrafficClassCount = 6;

std::string to_string(TrafficClass cls);

struct SimStats {
  Cycle cycles = 0;

  // Cycle accounting: every simulated cycle is attributed to exactly
  // one StallCause by the engine that owned it (run_phase enforces
  // one bucket per loop iteration), so sum(stall_cycles) == cycles
  // for every phase and for the whole run. See DESIGN.md "Cycle
  // accounting" for the taxonomy and attribution priority.
  std::array<Cycle, kStallCauseCount> stall_cycles{};

  // Cycles the event-driven fast-forward bulk-accounted instead of
  // ticking one by one (a subset of `cycles`; purely diagnostic — the
  // stall buckets already include them).
  Cycle skipped_cycles = 0;

  // Compute.
  std::uint64_t mac_ops = 0;        // scalar x vector MACs retired
  Cycle alu_busy_cycles = 0;        // cycles with at least one PE op
  std::uint64_t merge_adds = 0;     // near/far merge additions

  // Dense matrix buffer.
  std::uint64_t dmb_read_hits = 0;
  std::uint64_t dmb_read_misses = 0;
  std::uint64_t dmb_accumulate_hits = 0;    // in-place partial merges
  std::uint64_t dmb_accumulate_misses = 0;  // partial line (re)allocated
  std::uint64_t dmb_evictions = 0;
  std::uint64_t dmb_partial_spills = 0;     // dirty partial evicted to DRAM

  // Load/store queue.
  std::uint64_t lsq_loads = 0;
  std::uint64_t lsq_stores = 0;
  std::uint64_t lsq_forwards = 0;  // store-to-load forwarding hits

  // DRAM traffic by class.
  std::array<std::uint64_t, kTrafficClassCount> dram_read_bytes{};
  std::array<std::uint64_t, kTrafficClassCount> dram_write_bytes{};

  // Partial-output footprint (Fig 10): bytes of unmerged partial
  // output state, live in the DMB or spilled to DRAM.
  std::uint64_t partial_bytes_now = 0;
  std::uint64_t partial_bytes_peak = 0;

  // Decimated time series of the footprint (Fig 10 plots usage over
  // time): one sample per `timeline_interval` cycles, interval
  // doubling (and samples thinning) whenever kTimelineCapacity is
  // reached, so memory stays bounded for arbitrarily long runs.
  static constexpr std::size_t kTimelineCapacity = 512;
  std::vector<std::pair<Cycle, std::uint64_t>> partial_timeline;
  Cycle timeline_interval = 256;
  Cycle timeline_next_sample = 0;

  // Records the current footprint if the sampling point was reached.
  void maybe_sample_timeline(Cycle now);

  // Fraction of sampled time the footprint exceeded `bytes`.
  double timeline_fraction_above(std::uint64_t bytes) const;

  // Attributes `n` cycles to `cause`.
  void account(StallCause cause, Cycle n = 1) {
    stall_cycles[static_cast<std::size_t>(cause)] += n;
  }

  Cycle stall(StallCause cause) const {
    return stall_cycles[static_cast<std::size_t>(cause)];
  }

  // Sum over all stall buckets; equals `cycles` when the accounting
  // invariant holds.
  Cycle stall_total() const;

  // Bottleneck verdict over the stall vector (memory-bound /
  // merge-bound / compute-bound).
  Bottleneck bottleneck() const { return classify_bottleneck(stall_cycles); }

  // Derived metrics -------------------------------------------------
  std::uint64_t dram_total_read_bytes() const;
  std::uint64_t dram_total_write_bytes() const;
  std::uint64_t dram_total_bytes() const;

  // Read-side hit rate of the DMB including accumulate lookups
  // (Fig 9's "proportion of requests where the target data is found
  // in the buffers").
  double dmb_hit_rate() const;

  double alu_utilization() const;

  // Fraction of the channel's peak bandwidth the run consumed.
  double dram_bandwidth_utilization(std::size_t bytes_per_cycle) const;

  void note_partial_bytes(std::int64_t delta);

  // Adds counters of another phase; cycles add up, peaks take max.
  void merge_phase(const SimStats& other);
};

// Additive counter difference `after - before` (cycles included);
// non-additive fields (partial peaks, timeline) keep `after`'s values.
SimStats stats_delta(const SimStats& after, const SimStats& before);

// Scales every additive counter by `fraction` >= 0 (rounded to
// nearest); non-additive fields (partial peaks, timeline) are copied
// unchanged. Used with fractions in [0, 1] for the hybrid's
// per-region attribution of the shared region-2/3 RWP phase, where
// exact cycle-level attribution is ill-defined (region-2 and region-3
// non-zeros interleave within rows) — see DESIGN.md "Observability" —
// and with fractions > 1 by sampled mode (core/sampling.hpp) to
// extrapolate per-band counters to the whole phase.
SimStats scale_stats(const SimStats& s, double fraction);

}  // namespace hymm
