#include "sim/lsq.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/hooks.hpp"
#include "sim/checkpoint.hpp"

namespace hymm {

LoadStoreQueue::LoadStoreQueue(const AcceleratorConfig& config,
                               DenseMatrixBuffer& dmb, SimStats& stats)
    : capacity_(config.lsq_entries),
      forwarding_(config.lsq_store_to_load_forwarding),
      dmb_(dmb),
      stats_(stats) {
  load_entries_.reserve(capacity_ * 2);
  unissued_loads_.reserve(capacity_);
}

std::size_t LoadStoreQueue::free_entries() const {
  const std::size_t used = load_entries_.size() + store_queue_.size();
  return used >= capacity_ ? 0 : capacity_ - used;
}

std::optional<LoadStoreQueue::EntryId> LoadStoreQueue::load(Addr line,
                                                            TrafficClass cls,
                                                            Cycle now) {
  if (free_entries() == 0) return std::nullopt;
  ++stats_.lsq_loads;
  const EntryId id = next_id_++;
  LoadEntry entry;
  entry.line = line;
  entry.cls = cls;
  entry.issue_cycle = now;
  if (forwarding_ && forward_lines_.contains(line)) {
    // A store entry for this line exists (pending or already
    // drained): forward its data without touching the memory system
    // (Section IV-B).
    ++stats_.lsq_forwards;
    HYMM_OBS(obs_, on_lsq_forward());
    entry.issued = true;
    entry.ready = true;
  } else {
    unissued_loads_.push_back(UnissuedLoad{id, line, cls});
  }
  load_entries_.emplace(id, entry);
  return id;
}

bool LoadStoreQueue::is_ready(EntryId id) const {
  const LoadEntry* entry = load_entries_.find(id);
  HYMM_DCHECK(entry != nullptr);
  return entry != nullptr && entry->ready;
}

LoadStoreQueue::LoadWait LoadStoreQueue::load_wait_state(EntryId id) const {
  const LoadEntry* entry = load_entries_.find(id);
  HYMM_DCHECK(entry != nullptr);
  if (entry == nullptr || entry->ready) return LoadWait::kReady;
  if (!entry->issued) return LoadWait::kUnissued;
  if (dmb_.has_pending_miss_for(entry->line)) return LoadWait::kDramFill;
  return LoadWait::kDmbPending;
}

void LoadStoreQueue::release_load(EntryId id) {
  const LoadEntry* entry = load_entries_.find(id);
  HYMM_CHECK_MSG(entry != nullptr, "releasing unknown LSQ entry");
  HYMM_CHECK_MSG(entry->ready, "releasing a load that is not ready");
  load_entries_.erase(id);
}

bool LoadStoreQueue::store(Addr line, TrafficClass cls, StoreKind kind,
                           Cycle now) {
  (void)now;
  if (free_entries() == 0) return false;
  ++stats_.lsq_stores;
  store_queue_.push_back(StoreEntry{line, cls, kind});
  ++forward_lines_[line];
  forward_fifo_.push_back(line);
  while (forward_fifo_.size() > capacity_) {
    const Addr oldest = forward_fifo_.front();
    forward_fifo_.pop_front();
    std::uint32_t* count = forward_lines_.find(oldest);
    HYMM_DCHECK(count != nullptr);
    if (--*count == 0) forward_lines_.erase(oldest);
  }
  return true;
}

void LoadStoreQueue::tick(Cycle now) {
  tick_active_ = false;
  // 1. Data arriving from the DMB.
  for (const std::uint64_t tag : dmb_.ready_waiters()) {
    LoadEntry* entry = load_entries_.find(tag);
    // The waiter may have been forwarded-and-released already only if
    // ids were reused — they are not, so it must exist.
    if (entry != nullptr) {
      entry->ready = true;
      tick_active_ = true;
      // Allocation -> ready latency; forwarded loads never pass
      // through here (they are born ready).
      HYMM_OBS(obs_, observe_load_latency(now - entry->issue_cycle));
    }
  }

  // 2. Issue loads to the DMB (retrying ones it rejected earlier).
  // The descriptor carries line/class so the (common) reject outcome
  // costs no load_entries_ probe.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < unissued_loads_.size(); ++i) {
    UnissuedLoad u = unissued_loads_[i];
    const auto result =
        u.absent_epoch == dmb_.membership_epoch()
            ? dmb_.read_absent(u.line, u.cls, u.id, now)
            : dmb_.read(u.line, u.cls, u.id, now);
    if (result == DenseMatrixBuffer::ReadResult::kReject) {
      HYMM_OBS(obs_, on_lsq_reject());
      // A full-probe reject proves the line absent everywhere; cache
      // that under the current epoch.
      u.absent_epoch = dmb_.membership_epoch();
      unissued_loads_[kept++] = u;
    } else {
      load_entries_.at(u.id).issued = true;
      tick_active_ = true;
    }
  }
  unissued_loads_.resize(kept);

  // 3. Drain one store per cycle.
  if (!store_queue_.empty()) {
    const StoreEntry& s = store_queue_.front();
    bool done = true;
    switch (s.kind) {
      case StoreKind::kThrough:
        done = dmb_.write_through(s.line, s.cls, now);
        break;
      case StoreKind::kAllocate:
        done = dmb_.write_allocate(s.line, s.cls, now);
        break;
      case StoreKind::kAccumulate:
        done = dmb_.accumulate(s.line, now);
        break;
    }
    if (done) {
      store_queue_.pop_front();
      tick_active_ = true;
    }
  }
}

void LoadStoreQueue::save_state(StateWriter& w) const {
  w.put_u64(next_id_);
  // FlatMap iteration order is unspecified; serialize entries sorted
  // by id so identical logical states produce identical bytes.
  std::vector<std::pair<EntryId, LoadEntry>> loads;
  loads.reserve(load_entries_.size());
  load_entries_.for_each([&loads](std::uint64_t id, const LoadEntry& e) {
    loads.emplace_back(id, e);
  });
  std::sort(loads.begin(), loads.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.put_u64(loads.size());
  for (const auto& [id, e] : loads) {
    w.put_u64(id);
    w.put_u64(e.line);
    w.put_u8(static_cast<std::uint8_t>(e.cls));
    w.put_u64(e.issue_cycle);
    w.put_bool(e.issued);
    w.put_bool(e.ready);
  }
  w.put_u64(unissued_loads_.size());
  for (const UnissuedLoad& u : unissued_loads_) {
    w.put_u64(u.id);
    w.put_u64(u.line);
    w.put_u8(static_cast<std::uint8_t>(u.cls));
    w.put_u64(u.absent_epoch);
  }
  w.put_u64(store_queue_.size());
  for (const StoreEntry& s : store_queue_) {
    w.put_u64(s.line);
    w.put_u8(static_cast<std::uint8_t>(s.cls));
    w.put_u8(static_cast<std::uint8_t>(s.kind));
  }
  // The forwarding window's line-count map is derived state: it is
  // rebuilt from the FIFO on restore.
  w.put_u64(forward_fifo_.size());
  for (const Addr line : forward_fifo_) w.put_u64(line);
}

void LoadStoreQueue::load_state(StateReader& r) {
  next_id_ = r.get_u64();
  load_entries_.clear();
  const std::uint64_t load_count = r.get_u64();
  load_entries_.reserve(load_count);
  for (std::uint64_t i = 0; i < load_count; ++i) {
    const EntryId id = r.get_u64();
    LoadEntry e;
    e.line = r.get_u64();
    e.cls = static_cast<TrafficClass>(r.get_u8());
    e.issue_cycle = r.get_u64();
    e.issued = r.get_bool();
    e.ready = r.get_bool();
    load_entries_.emplace(id, e);
  }
  unissued_loads_.clear();
  const std::uint64_t unissued_count = r.get_u64();
  for (std::uint64_t i = 0; i < unissued_count; ++i) {
    UnissuedLoad u;
    u.id = r.get_u64();
    u.line = r.get_u64();
    u.cls = static_cast<TrafficClass>(r.get_u8());
    u.absent_epoch = r.get_u64();
    unissued_loads_.push_back(u);
  }
  store_queue_.clear();
  const std::uint64_t store_count = r.get_u64();
  for (std::uint64_t i = 0; i < store_count; ++i) {
    StoreEntry s;
    s.line = r.get_u64();
    s.cls = static_cast<TrafficClass>(r.get_u8());
    s.kind = static_cast<StoreKind>(r.get_u8());
    store_queue_.push_back(s);
  }
  forward_fifo_.clear();
  forward_lines_.clear();
  const std::uint64_t fifo_count = r.get_u64();
  for (std::uint64_t i = 0; i < fifo_count; ++i) {
    const Addr line = r.get_u64();
    forward_fifo_.push_back(line);
    ++forward_lines_[line];
  }
  tick_active_ = false;
}

}  // namespace hymm
