#include "sim/lsq.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/hooks.hpp"

namespace hymm {

LoadStoreQueue::LoadStoreQueue(const AcceleratorConfig& config,
                               DenseMatrixBuffer& dmb, SimStats& stats)
    : capacity_(config.lsq_entries),
      forwarding_(config.lsq_store_to_load_forwarding),
      dmb_(dmb),
      stats_(stats) {}

std::size_t LoadStoreQueue::free_entries() const {
  const std::size_t used = load_entries_.size() + store_queue_.size();
  return used >= capacity_ ? 0 : capacity_ - used;
}

std::optional<LoadStoreQueue::EntryId> LoadStoreQueue::load(Addr line,
                                                            TrafficClass cls,
                                                            Cycle now) {
  (void)now;
  if (free_entries() == 0) return std::nullopt;
  ++stats_.lsq_loads;
  const EntryId id = next_id_++;
  LoadEntry entry;
  entry.line = line;
  entry.cls = cls;
  if (forwarding_ && forward_lines_.contains(line)) {
    // A store entry for this line exists (pending or already
    // drained): forward its data without touching the memory system
    // (Section IV-B).
    ++stats_.lsq_forwards;
    HYMM_OBS(obs_, on_lsq_forward());
    entry.issued = true;
    entry.ready = true;
  } else {
    unissued_loads_.push_back(id);
  }
  load_entries_.emplace(id, entry);
  return id;
}

bool LoadStoreQueue::is_ready(EntryId id) const {
  const auto it = load_entries_.find(id);
  HYMM_DCHECK(it != load_entries_.end());
  return it != load_entries_.end() && it->second.ready;
}

LoadStoreQueue::LoadWait LoadStoreQueue::load_wait_state(EntryId id) const {
  const auto it = load_entries_.find(id);
  HYMM_DCHECK(it != load_entries_.end());
  if (it == load_entries_.end() || it->second.ready) return LoadWait::kReady;
  if (!it->second.issued) return LoadWait::kUnissued;
  if (dmb_.has_pending_miss_for(it->second.line)) return LoadWait::kDramFill;
  return LoadWait::kDmbPending;
}

void LoadStoreQueue::release_load(EntryId id) {
  const auto it = load_entries_.find(id);
  HYMM_CHECK_MSG(it != load_entries_.end(), "releasing unknown LSQ entry");
  HYMM_CHECK_MSG(it->second.ready, "releasing a load that is not ready");
  load_entries_.erase(it);
}

bool LoadStoreQueue::store(Addr line, TrafficClass cls, StoreKind kind,
                           Cycle now) {
  (void)now;
  if (free_entries() == 0) return false;
  ++stats_.lsq_stores;
  store_queue_.push_back(StoreEntry{line, cls, kind});
  ++forward_lines_[line];
  forward_fifo_.push_back(line);
  while (forward_fifo_.size() > capacity_) {
    const Addr oldest = forward_fifo_.front();
    forward_fifo_.pop_front();
    const auto it = forward_lines_.find(oldest);
    HYMM_DCHECK(it != forward_lines_.end());
    if (--it->second == 0) forward_lines_.erase(it);
  }
  return true;
}

void LoadStoreQueue::tick(Cycle now) {
  // 1. Data arriving from the DMB.
  for (const std::uint64_t tag : dmb_.ready_waiters()) {
    const auto it = load_entries_.find(tag);
    // The waiter may have been forwarded-and-released already only if
    // ids were reused — they are not, so it must exist.
    if (it != load_entries_.end()) it->second.ready = true;
  }

  // 2. Issue loads to the DMB (retrying ones it rejected earlier).
  std::size_t kept = 0;
  for (std::size_t i = 0; i < unissued_loads_.size(); ++i) {
    const EntryId id = unissued_loads_[i];
    auto& entry = load_entries_.at(id);
    const auto result = dmb_.read(entry.line, entry.cls, id, now);
    if (result == DenseMatrixBuffer::ReadResult::kReject) {
      HYMM_OBS(obs_, on_lsq_reject());
      unissued_loads_[kept++] = id;
    } else {
      entry.issued = true;
    }
  }
  unissued_loads_.resize(kept);

  // 3. Drain one store per cycle.
  if (!store_queue_.empty()) {
    const StoreEntry& s = store_queue_.front();
    bool done = true;
    switch (s.kind) {
      case StoreKind::kThrough:
        done = dmb_.write_through(s.line, s.cls, now);
        break;
      case StoreKind::kAllocate:
        done = dmb_.write_allocate(s.line, s.cls, now);
        break;
      case StoreKind::kAccumulate:
        done = dmb_.accumulate(s.line, now);
        break;
    }
    if (done) store_queue_.pop_front();
  }
}

}  // namespace hymm
