#include "sim/address_map.hpp"

#include "common/check.hpp"

namespace hymm {

Addr AddressRegion::line_of(std::uint64_t index,
                            std::size_t lines_per_element) const {
  const Addr addr = base + index * lines_per_element * kLineBytes;
  HYMM_DCHECK(contains(addr));
  return addr;
}

AddressRegion AddressMap::allocate(std::string name, std::size_t bytes,
                                   TrafficClass cls) {
  const std::size_t rounded =
      (bytes + kLineBytes - 1) / kLineBytes * kLineBytes;
  AddressRegion region;
  region.name = std::move(name);
  region.base = next_;
  region.bytes = rounded == 0 ? kLineBytes : rounded;
  region.cls = cls;
  next_ = region.end();
  regions_.push_back(region);
  return region;
}

const AddressRegion& AddressMap::region_of(Addr addr) const {
  for (const AddressRegion& r : regions_) {
    if (r.contains(addr)) return r;
  }
  HYMM_CHECK_MSG(false, "unmapped address 0x" << std::hex << addr);
  // Unreachable; HYMM_CHECK_MSG throws.
  return regions_.front();
}

}  // namespace hymm
