// Warm-state checkpoint/restore (ROADMAP item 5): serialize the full
// simulator state at the combination/aggregation phase boundary so
// runs sharing a workload (sweep cells, serving-class standalone
// simulations, tuner candidate searches) skip the combination phase
// entirely and restore the warm DMB/LSQ/DRAM state instead.
//
// A checkpoint is a self-describing binary blob:
//
//   magic "HYMMCKP1" | key.workload | key.config | payload bytes |
//   fnv1a64(payload)
//
// The payload is the MemorySystem state (clock, stats, DRAM channel,
// DMB directory + recency order, LSQ entries + forwarding window, SMQ
// tag counter, PE issue cycle) followed by the host-side XW values.
// Restoring into a fresh MemorySystem is bit-identical to the cold
// run continued past the same cycle: every future cycle, stall bucket
// and DRAM byte matches (DCHECKed at build time via a serialize ->
// restore -> re-serialize round trip, and locked by
// tests/test_checkpoint.cpp).
//
// Keys reuse the tune-cache fingerprint scheme (graph/fingerprint.hpp):
// `workload` digests the streamed feature matrix, the weight values
// and the combination engine kind; `config` is tuning_config_hash,
// which deliberately excludes the tiling threshold — the threshold
// only affects aggregation, so every tuner candidate shares one
// checkpoint. Corrupted or truncated checkpoint files are ignored
// (cold-run fallback), never fatal; see docs/performance.md.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace hymm {

/// Little-endian binary writer for checkpoint payloads.
class StateWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(static_cast<std::byte>(v)); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f32(float v);
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  const std::vector<std::byte>& bytes() const { return bytes_; }
  std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  std::vector<std::byte> bytes_;
};

/// Bounds-checked reader over a checkpoint payload. Out-of-bounds
/// reads throw CheckError; callers validate the blob checksum first,
/// so a throw indicates a version/logic bug, not disk corruption.
class StateReader {
 public:
  StateReader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  float get_f32();
  double get_f64();
  bool get_bool() { return get_u8() != 0; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Identifies one combination-phase warm state: `workload` digests the
/// streamed inputs and engine kind, `config` the timing model.
struct CheckpointKey {
  std::uint64_t workload = 0;
  std::uint64_t config = 0;

  friend bool operator==(const CheckpointKey&, const CheckpointKey&) = default;
};

/// "0x<workload>_0x<config>" — used in filenames and run reports.
std::string checkpoint_key_hex(const CheckpointKey& key);

/// Frames a payload into a full checkpoint blob (magic + key +
/// length + payload + checksum).
std::vector<std::byte> seal_checkpoint(const CheckpointKey& key,
                                       std::vector<std::byte> payload);

/// Validates magic, key echo, length and checksum; returns a view
/// (pointer/size into `blob`) of the payload, or false when the blob
/// is corrupted or keyed differently.
bool open_checkpoint(const std::vector<std::byte>& blob,
                     const CheckpointKey& key, const std::byte** payload,
                     std::size_t* payload_size);

/// Process-wide cache of sealed checkpoint blobs, keyed by
/// CheckpointKey, with optional directory persistence. Thread-safe:
/// concurrent get_or_build calls for one key run the builder exactly
/// once (the WorkloadCache once_flag pattern); other callers block
/// until the blob is published, then restore from it.
class CheckpointStore {
 public:
  /// `dir` empty = in-memory only. A non-empty dir is used for
  /// best-effort persistence: loads validate the blob and fall back
  /// to a cold build on any corruption; write failures are ignored.
  explicit CheckpointStore(std::string dir = "");

  /// Returns the sealed blob for `key`. The first caller (per process
  /// lifetime) loads it from disk or runs `build`; later callers get
  /// the published blob. `build` must return a sealed blob for `key`.
  /// `was_built` (optional) reports whether this call ran the builder.
  std::shared_ptr<const std::vector<std::byte>> get_or_build(
      const CheckpointKey& key,
      const std::function<std::vector<std::byte>()>& build,
      bool* was_built = nullptr);

  /// Counters for tests and reports (process lifetime).
  std::uint64_t builds() const { return builds_.load(); }
  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t disk_loads() const { return disk_loads_.load(); }

  const std::string& dir() const { return dir_; }

 private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const std::vector<std::byte>> blob;
  };

  std::string file_for(const CheckpointKey& key) const;

  std::string dir_;
  std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
  std::atomic<std::uint64_t> builds_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> disk_loads_{0};
};

}  // namespace hymm
