#include "sim/dram.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/hooks.hpp"
#include "sim/checkpoint.hpp"

namespace hymm {

Dram::Dram(const AcceleratorConfig& config, SimStats& stats)
    : latency_(config.dram_latency),
      queue_entries_(config.dram_queue_entries),
      stats_(stats) {
  // One line per cycle is the native rate of the model; other
  // bandwidths scale the slot width below.
  HYMM_CHECK(config.dram_bytes_per_cycle > 0);
  cycles_per_line_ = std::max<Cycle>(
      1, static_cast<Cycle>(kLineBytes / config.dram_bytes_per_cycle));
  write_buffer_window_ =
      static_cast<Cycle>(config.dram_write_buffer_lines) * cycles_per_line_;
  completions_.reserve(queue_entries_);
}

Cycle Dram::next_event(Cycle now) const {
  Cycle e = kNoEvent;
  if (!inflight_.empty()) {
    // reserve_slot keeps next_slot_ monotone, so the deque is ordered
    // by ready_cycle and the front is the earliest completion.
    e = std::min(e, std::max(inflight_.front().ready_cycle, now + 1));
  }
  if (next_slot_ > now + write_buffer_window_) {
    // can_accept_write() is false right now; it flips back on exactly
    // when the booked slots fall inside the window again.
    e = std::min(e, next_slot_ - write_buffer_window_);
  }
  return e;
}

bool Dram::can_accept_write(Cycle now) const {
  return next_slot_ <= now + write_buffer_window_;
}

bool Dram::can_accept_read() const {
  return inflight_.size() < queue_entries_;
}

Cycle Dram::reserve_slot(Cycle now) {
  const Cycle slot = std::max(now, next_slot_);
  next_slot_ = slot + cycles_per_line_;
  return slot;
}

void Dram::issue_read(Addr line_addr, TrafficClass cls, std::uint64_t tag,
                      Cycle now) {
  HYMM_CHECK_MSG(can_accept_read(), "DRAM read queue overflow");
  (void)line_addr;
  const Cycle slot = reserve_slot(now);
  inflight_.push_back(Inflight{tag, slot + latency_, now});
  stats_.dram_read_bytes[static_cast<std::size_t>(cls)] += kLineBytes;
  HYMM_OBS(obs_, on_dram_read());
}

void Dram::issue_write(Addr line_addr, TrafficClass cls, Cycle now) {
  (void)line_addr;
  reserve_slot(now);
  stats_.dram_write_bytes[static_cast<std::size_t>(cls)] += kLineBytes;
  HYMM_OBS(obs_, on_dram_write());
}

void Dram::issue_streaming_read(TrafficClass cls, Cycle now) {
  reserve_slot(now);
  stats_.dram_read_bytes[static_cast<std::size_t>(cls)] += kLineBytes;
  HYMM_OBS(obs_, on_dram_read());
}

void Dram::tick(Cycle now) {
  completions_.clear();
  while (!inflight_.empty() && inflight_.front().ready_cycle <= now) {
    // Issue -> delivery, including bandwidth queueing. Delivery
    // happens at the same cycle under fast-forward (the span jump
    // lands exactly on the head's ready_cycle), so the histogram is
    // mode-invariant.
    HYMM_OBS(obs_,
             observe_dram_read_latency(now - inflight_.front().issue_cycle));
    completions_.push_back(inflight_.front().tag);
    inflight_.pop_front();
  }
}

void Dram::save_state(StateWriter& w) const {
  w.put_u64(next_slot_);
  w.put_u64(inflight_.size());
  for (const Inflight& f : inflight_) {
    w.put_u64(f.tag);
    w.put_u64(f.ready_cycle);
    w.put_u64(f.issue_cycle);
  }
  w.put_u64(completions_.size());
  for (const std::uint64_t tag : completions_) w.put_u64(tag);
}

void Dram::load_state(StateReader& r) {
  next_slot_ = r.get_u64();
  inflight_.clear();
  const std::uint64_t inflight_count = r.get_u64();
  for (std::uint64_t i = 0; i < inflight_count; ++i) {
    Inflight f;
    f.tag = r.get_u64();
    f.ready_cycle = r.get_u64();
    f.issue_cycle = r.get_u64();
    inflight_.push_back(f);
  }
  completions_.clear();
  const std::uint64_t completion_count = r.get_u64();
  for (std::uint64_t i = 0; i < completion_count; ++i) {
    completions_.push_back(r.get_u64());
  }
}

}  // namespace hymm
