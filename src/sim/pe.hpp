// Processing-engine array (paper Section IV-C): 16 PEs, each a MAC
// unit plus a stationary buffer. The array retires one scalar x
// 16-lane-vector operation per cycle; lanes map to the 16 floats of a
// 64-byte dense row (layer dimension 16).
//
// Functional math happens on host arrays at retire time; this class
// models occupancy (ALU utilization, Fig 8) and applies the lane-wise
// arithmetic helpers used by the engines.
#pragma once

#include <span>

#include "common/config.hpp"
#include "common/types.hpp"
#include "sim/stats.hpp"

namespace hymm {

class Observer;
class StateReader;
class StateWriter;

class PeArray {
 public:
  PeArray(const AcceleratorConfig& config, SimStats& stats);

  // Warm-state checkpointing (sim/checkpoint.hpp): the array's only
  // dynamic state is the last issue cycle.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

  // Attaches the observability context (read-only hooks; nullptr
  // detaches).
  void set_observer(Observer* obs) { obs_ = obs; }

  // True when the array can retire another op this cycle.
  bool can_issue(Cycle now) const;

  // Retires one scalar-vector MAC: out[i] += scalar * in[i]. Counts a
  // busy cycle and pe_count multiply-accumulates.
  void mac(Value scalar, std::span<const Value> in, std::span<Value> out,
           Cycle now);

  // Retires one vector addition (baseline OP merge phase: the PE
  // adders fold spilled partials): out[i] += in[i].
  void add(std::span<const Value> in, std::span<Value> out, Cycle now);

  // Retires one timing-only merge addition (the operand values were
  // already folded into the host array at MAC time; the merge phase
  // only costs cycles and counters).
  void merge_op(Cycle now);

  // Occupies the array for a cycle without arithmetic (pipeline
  // bubble bookkeeping in tests).
  void stall(Cycle now);

 private:
  void mark_busy(Cycle now);

  std::size_t pe_count_;
  Cycle last_issue_cycle_ = ~Cycle{0};
  SimStats& stats_;
  Observer* obs_ = nullptr;
};

}  // namespace hymm
