// Dense Matrix Buffer (paper Section IV-D): a unified on-chip buffer
// for W, XW and AXW data, with MSHRs, class-aware LRU eviction
// ("evicted in the order of W and then XW, ensuring that partial
// outputs are retained"), line pinning for the hybrid OP phase, and a
// near-memory accumulator that merges partial-output lines in place.
//
// The buffer tracks presence/dirtiness metadata only; numeric values
// live in host-side arrays (see DESIGN.md section 5, "Data vs
// timing").
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hpp"
#include "common/flat_map.hpp"
#include "common/lru_list.hpp"
#include "common/small_vec.hpp"
#include "sim/dram.hpp"
#include "sim/stats.hpp"

namespace hymm {

class Observer;
class StateReader;
class StateWriter;

class DenseMatrixBuffer {
 public:
  DenseMatrixBuffer(const AcceleratorConfig& config, Dram& dram,
                    SimStats& stats);

  // Warm-state checkpointing (sim/checkpoint.hpp): serializes /
  // restores the full directory — resident lines in exact recency
  // order per tier, MSHRs with their waiter lists, pending hits,
  // prefetches and ready waiters. Restore requires a buffer built
  // from the same config; the rebuilt state is bit-identical for all
  // future timing (recency order, not node identity, is what evicts).
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

  // Attaches the observability context (obs/observer.hpp); hooks are
  // read-only and never change timing. nullptr detaches.
  void set_observer(Observer* obs) { obs_ = obs; }

  enum class ReadResult {
    kHit,     // waiter becomes ready after the hit latency
    kMiss,    // waiter queued on an MSHR; ready when DRAM fills
    kReject,  // out of MSHRs / DRAM queue full: retry next cycle
  };

  // Requests one line for reading. waiter_tag is handed back through
  // ready_waiters() when the data is available.
  ReadResult read(Addr line, TrafficClass cls, std::uint64_t waiter_tag,
                  Cycle now);

  // Retry fast path for a line the caller has proven absent from all
  // three directories (lines_, prefetch_inflight_, mshrs_): skips the
  // membership probes and goes straight to the miss/reject decision,
  // with outcomes and side effects identical to read(). Valid only
  // while membership_epoch() still equals the value observed when the
  // line's absence was established (a read() returning kReject proves
  // absence).
  ReadResult read_absent(Addr line, TrafficClass cls,
                         std::uint64_t waiter_tag, Cycle now);

  // Bumped whenever a line can join a directory: an MSHR allocation,
  // a fresh install from the engine side (write-allocate, accumulate,
  // pin), or a prefetch issue. MSHR-fill installs do NOT bump: a fill
  // only installs a line that was in the MSHR table, and every entry
  // into that table bumps the epoch itself — so a line proven absent
  // under an unchanged epoch is still absent.
  std::uint64_t membership_epoch() const { return membership_epoch_; }

  // Streaming prefetch for sequential access patterns (the OP
  // engines' stationary-row stream): books DRAM bandwidth without an
  // MSHR and installs the line when it arrives. No-op when the line
  // is resident or already in flight; dropped silently when the
  // channel has no headroom. Returns true when a fetch was issued.
  bool prefetch(Addr line, TrafficClass cls, Cycle now);

  // Installs a line produced on-chip (combination result): dirty,
  // write-allocated. Returns false if no victim can be found or the
  // victim's writeback is blocked by DRAM write back-pressure.
  bool write_allocate(Addr line, TrafficClass cls, Cycle now);

  // Streams a line straight to DRAM without caching (final outputs,
  // append-only partial spill records). False when the DRAM write
  // buffer is full; the caller retries next cycle.
  bool write_through(Addr line, TrafficClass cls, Cycle now);

  // Near-memory accumulator: folds a partial-output line into the
  // buffer. Present -> merged in place; absent -> a fresh partial
  // line is allocated (footprint grows; an earlier spill of the same
  // line stays live in DRAM until the merge phase). Returns false if
  // allocation failed.
  bool accumulate(Addr line, Cycle now);

  // True when `line` is resident (test/diagnostic helper).
  bool contains(Addr line) const;

  // Marks a class dead for the upcoming phase: its resident lines
  // move to the cold end of the recency order so they are evicted
  // first. This is Section IV-D's "evicted in the order of W and
  // then XW" rule — the aggregation phase demotes kWeights.
  void demote_class(TrafficClass cls);

  // Pre-allocates and pins a partial-output line for the hybrid OP
  // phase. Pinned lines are never evicted. Returns false when the
  // pin budget (whole capacity) is exhausted.
  bool pin_partial(Addr line, Cycle now);

  // Unpins every pinned line and streams it to DRAM as a final
  // output write; shrinks the partial footprint accordingly.
  void unpin_and_writeback_outputs(Cycle now);

  // Writes back and removes one resident unpinned partial line as a
  // finished output of class `final_cls`; false when none remain.
  // Used by the OP engine's output-flush stage (one line per cycle).
  bool writeback_one_partial(TrafficClass final_cls, Cycle now);

  // Writes back every remaining dirty line (end of phase).
  void flush_dirty(Cycle now);

  // Drops all contents without traffic (end of a layer: the cached
  // intermediates are dead). Pinned lines must be unpinned first.
  void reset_contents();

  // Delivers DRAM fills and hit-latency expirations. Call once per
  // cycle after Dram::tick().
  void tick(Cycle now);

  // True when the last tick() changed observable state (installed a
  // prefetch, expired a pending hit, or processed a DRAM fill).
  bool ticked_active() const { return tick_active_; }

  // Earliest cycle after `now` at which this buffer changes state on
  // its own: the head pending prefetch installing or the head pending
  // hit expiring. Both queues drain head-first, so the fronts bound
  // every later entry. DRAM fills ride Dram::next_event. kNoEvent
  // when nothing is in flight here.
  Cycle next_event(Cycle now) const;

  // Waiter tags whose data became available this cycle.
  const std::vector<std::uint64_t>& ready_waiters() const {
    return ready_waiters_;
  }

  std::size_t resident_lines() const { return lines_.size(); }
  std::size_t pinned_lines() const { return pinned_count_; }
  bool has_pending_misses() const { return !mshrs_.empty(); }

  // True when `line` has an outstanding miss fill in flight from DRAM
  // (cycle-accounting query; never mutates state).
  bool has_pending_miss_for(Addr line) const { return mshrs_.contains(line); }

 private:
  struct LineState {
    TrafficClass cls = TrafficClass::kWeights;
    bool dirty = false;
    bool pinned = false;
    LruList<Addr>::Handle lru_it = LruList<Addr>::kNil;  // recency node
  };

  struct Mshr {
    TrafficClass cls = TrafficClass::kWeights;
    Cycle alloc_cycle = 0;  // for the fill-latency histogram
    SmallVec<std::uint64_t, 2> waiters;
  };

  struct PendingHit {
    std::uint64_t tag = 0;
    Cycle ready_cycle = 0;
  };

  // Inserts a (possibly dirty) line, evicting if needed. Returns
  // false when every resident line is pinned or (unless
  // ignore_write_bp) a dirty victim's writeback is blocked by DRAM
  // write back-pressure.
  bool install(Addr line, TrafficClass cls, bool dirty, Cycle now,
               bool ignore_write_bp = false);

  // Picks and removes a victim: oldest unpinned data line, else
  // oldest unpinned partial line; writes it back if dirty.
  bool evict_one(Cycle now, bool ignore_write_bp = false);

  void touch(Addr line, LineState& state);

  std::uint64_t dram_tag_for(Addr line) const;

  std::size_t capacity_lines_;
  Cycle hit_latency_;
  Cycle dram_latency_;
  std::size_t mshr_capacity_;
  EvictionPolicy policy_;

  LruList<Addr>& list_for(TrafficClass cls) {
    return cls == TrafficClass::kPartial ? partial_lru_ : data_lru_;
  }

  // Hot-path directories use the open-addressing FlatMap (see
  // common/flat_map.hpp): membership probes here run per in-flight
  // load per cycle and dominated the simulator's host-time profile.
  FlatMap<LineState> lines_;
  // Two recency tiers, front = oldest. Data lines (W, XW, ...) share
  // one LRU so the phase's live working set wins regardless of class;
  // partial-output lines are victimized only when no data line is
  // left ("ensuring that partial outputs are retained", Section
  // IV-D). Index-based lists (common/lru_list.hpp): a touch rewrites
  // links in place and handles stay valid across neighbour moves.
  LruList<Addr> data_lru_;
  LruList<Addr> partial_lru_;
  std::size_t pinned_count_ = 0;

  FlatMap<Mshr> mshrs_;
  std::uint64_t membership_epoch_ = 0;
  std::deque<PendingHit> pending_hits_;
  std::vector<std::uint64_t> ready_waiters_;
  bool tick_active_ = false;
  // Scratch for unpin_and_writeback_outputs (FlatMap forbids erasing
  // during for_each).
  std::vector<Addr> pinned_scratch_;
  // Scratch for demote_class's stable partition over the data tier.
  std::vector<LruList<Addr>::Handle> demote_scratch_;

  struct PendingPrefetch {
    Addr line = 0;
    TrafficClass cls = TrafficClass::kCombined;
    Cycle ready_cycle = 0;
  };
  std::deque<PendingPrefetch> pending_prefetches_;
  // line -> arrival cycle of an in-flight prefetch
  FlatMap<Cycle> prefetch_inflight_;

  Dram& dram_;
  SimStats& stats_;
  Observer* obs_ = nullptr;
};

}  // namespace hymm
