// DRAM completion-tag name space. The single DRAM channel serves both
// the DMB (line fills) and the SMQ (stream refills); each consumer
// filters completions by its own prefix.
#pragma once

#include <cstdint>

namespace hymm {

inline constexpr std::uint64_t kTagSourceShift = 56;
inline constexpr std::uint64_t kTagPayloadMask =
    (std::uint64_t{1} << kTagSourceShift) - 1;

inline constexpr std::uint64_t kDmbTagSource = 1;
inline constexpr std::uint64_t kSmqTagSource = 2;

constexpr std::uint64_t make_tag(std::uint64_t source,
                                 std::uint64_t payload) {
  return (source << kTagSourceShift) | (payload & kTagPayloadMask);
}

constexpr std::uint64_t tag_source(std::uint64_t tag) {
  return tag >> kTagSourceShift;
}

constexpr std::uint64_t tag_payload(std::uint64_t tag) {
  return tag & kTagPayloadMask;
}

}  // namespace hymm
