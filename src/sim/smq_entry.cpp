#include "sim/smq_entry.hpp"

#include <bit>

#include "common/check.hpp"

namespace hymm {

static_assert(sizeof(PackedSmqEntry) == kPackedSmqEntryBytes,
              "packed entry must be exactly 96 bits");
static_assert(sizeof(Value) == sizeof(std::uint32_t),
              "value payload assumes 32-bit floats");

PackedSmqEntry pack_smq_entry(const SmqEntryFields& fields) {
  HYMM_CHECK_MSG(fields.pointer <= kMaxSmqPointer,
                 "SMQ pointer " << fields.pointer
                                << " exceeds the 31-bit field");
  PackedSmqEntry packed;
  packed.flag_and_pointer =
      (static_cast<std::uint32_t>(fields.format) << 31) | fields.pointer;
  packed.index = fields.index;
  packed.value_bits = std::bit_cast<std::uint32_t>(fields.value);
  return packed;
}

SmqEntryFields unpack_smq_entry(const PackedSmqEntry& packed) {
  SmqEntryFields fields;
  fields.format = static_cast<SmqFormat>(packed.flag_and_pointer >> 31);
  fields.pointer = packed.flag_and_pointer & kMaxSmqPointer;
  fields.index = packed.index;
  fields.value = std::bit_cast<Value>(packed.value_bits);
  return fields;
}

}  // namespace hymm
