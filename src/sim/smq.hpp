// Sparse Matrix Queue (paper Section IV-A): streams the compressed
// representation (pointers, indices, values) of the active sparse
// matrix in CSR or CSC order and hands decoded entries to the
// engines. The pointer buffer (4 KB) and index buffer (12 KB) bound
// the prefetch depth; refills are sequential DRAM reads.
#pragma once

#include <cstdint>
#include <deque>

#include "common/config.hpp"
#include "graph/csr.hpp"
#include "sim/dram.hpp"
#include "sim/stats.hpp"

namespace hymm {

// One decoded (flag, pointer, index, value) tuple of Fig 4. `outer`
// is the row for CSR streams and the column for CSC streams.
struct SmqEntry {
  NodeId outer = 0;
  NodeId inner = 0;
  Value value = 0.0f;
  bool first_of_outer = false;
  bool last_of_outer = false;
};

class Observer;
class StateReader;
class StateWriter;

class SparseMatrixQueue {
 public:
  SparseMatrixQueue(const AcceleratorConfig& config, Dram& dram,
                    SimStats& stats);

  // Warm-state checkpointing (sim/checkpoint.hpp). Checkpoints are
  // taken at phase boundaries where the stream is finished and
  // drained, so the only state that survives is the monotone refill
  // tag counter (attach_common deliberately does not reset it: DRAM
  // read tags must stay unique across phases).
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

  // Attaches the observability context (read-only hooks; nullptr
  // detaches).
  void set_observer(Observer* obs) { obs_ = obs; }

  // Begins streaming a matrix. Any previous stream must be finished.
  // The matrix must outlive the stream. cls tags the refill traffic
  // (kAdjacency for A, kFeatures for X).
  void attach_csr(const CsrMatrix& matrix, TrafficClass cls);
  void attach_csc(const CscMatrix& matrix, TrafficClass cls);

  // All entries decoded AND popped.
  bool finished() const;

  // An entry is available this cycle.
  bool has_ready() const { return !ready_.empty(); }
  const SmqEntry& front() const;
  void pop();

  // Decoded entries waiting to be consumed (the SMQ backlog counter
  // track).
  std::size_t backlog() const { return ready_.size(); }

  // Issues refill reads and decodes arrived lines. Call once per
  // cycle after Dram::tick().
  void tick(Cycle now);

  // True when the last tick() changed observable state (decoded an
  // arrived refill or issued a new one).
  bool ticked_active() const { return tick_active_; }

  // Refill arrivals ride Dram::next_event; issue is gated purely on
  // headroom and DRAM queue space, which change only at DRAM events
  // or engine pops. No internal timers.
  Cycle next_event(Cycle now) const {
    (void)now;
    return kNoEvent;
  }

 private:
  // Row-major cursor over the attached matrix; works for CSC too
  // because CscMatrix exposes its transpose through the same shape.
  void attach_common(TrafficClass cls, EdgeCount total_entries,
                     NodeId outer_count);
  void decode_entries(std::size_t count);

  // Pull the next (outer, inner, value) in traversal order.
  SmqEntry next_entry();

  const CsrMatrix* csr_ = nullptr;  // exactly one of csr_/csc_ set
  const CscMatrix* csc_ = nullptr;
  TrafficClass cls_ = TrafficClass::kAdjacency;

  EdgeCount total_entries_ = 0;
  EdgeCount decoded_ = 0;    // entries decoded into ready_
  EdgeCount requested_ = 0;  // entries covered by issued refills
  NodeId outer_count_ = 0;

  // Decode cursor.
  NodeId cursor_outer_ = 0;
  EdgeCount cursor_k_ = 0;  // index within the current outer unit

  std::deque<SmqEntry> ready_;
  std::size_t entry_capacity_ = 0;   // index-buffer bound
  std::size_t entries_per_line_ = 0;
  // Pointer prefetch: one pointer line covers kLineBytes/4 outer
  // units; issued as streaming reads.
  NodeId pointer_lines_issued_ = 0;

  std::uint64_t next_refill_tag_ = 0;
  // In-flight refills: tag payload -> entry count (FIFO by tag).
  std::deque<std::pair<std::uint64_t, std::size_t>> inflight_refills_;
  bool tick_active_ = false;

  Dram& dram_;
  SimStats& stats_;
  Observer* obs_ = nullptr;
};

}  // namespace hymm
