// Load/Store Queue (paper Section IV-B): 128 entries shared by loads
// and stores, store-to-load forwarding for XW produced by the
// combination phase, and latency hiding — younger loads proceed while
// a missed load waits. Store ordering is not tracked (output
// addresses are unique in SpDeMM).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/flat_map.hpp"
#include "sim/dmb.hpp"
#include "sim/stats.hpp"

namespace hymm {

// How a store drains into the memory system.
enum class StoreKind {
  kThrough,     // stream to DRAM (final output rows, spill records)
  kAllocate,    // write-allocate in the DMB (combination XW rows)
  kAccumulate,  // near-memory accumulator merge (partial outputs)
};

class Observer;
class StateReader;
class StateWriter;

class LoadStoreQueue {
 public:
  using EntryId = std::uint64_t;

  LoadStoreQueue(const AcceleratorConfig& config, DenseMatrixBuffer& dmb,
                 SimStats& stats);

  // Warm-state checkpointing (sim/checkpoint.hpp): serializes /
  // restores entries, retry descriptors, the store queue and the
  // store-to-load forwarding window (which persists across phases and
  // feeds aggregation-phase forwards). Restore requires a queue built
  // from the same config and the already-restored companion DMB.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

  // Attaches the observability context (read-only hooks; nullptr
  // detaches).
  void set_observer(Observer* obs) { obs_ = obs; }

  // Free entries right now (loads waiting for data + undrained
  // stores both occupy entries).
  std::size_t free_entries() const;

  // Allocates a load entry. Forwarded loads (line matches an
  // undrained store) are ready immediately. Returns nullopt when the
  // queue is full.
  std::optional<EntryId> load(Addr line, TrafficClass cls, Cycle now);

  bool is_ready(EntryId id) const;

  // Why a load entry is (not) ready — drives the engines' cycle
  // accounting. Read-only; never changes timing.
  enum class LoadWait {
    kReady,     // data available this cycle
    kDramFill,  // DMB miss fill in flight from DRAM
    kDmbPending,  // inside the DMB pipeline (hit latency / prefetch)
    kUnissued,  // rejected by the DMB (MSHRs or DRAM read queue full)
  };
  LoadWait load_wait_state(EntryId id) const;

  // Frees a ready load entry after its data was consumed.
  void release_load(EntryId id);

  // Allocates a store entry; stores drain one per cycle. Returns
  // false when the queue is full.
  bool store(Addr line, TrafficClass cls, StoreKind kind, Cycle now);

  // Progress: collect DMB readiness, retry rejected loads, drain one
  // store. Call once per cycle after DenseMatrixBuffer::tick().
  void tick(Cycle now);

  // True when the last tick() changed observable state (marked a load
  // ready, got a retried load accepted, or drained a store). Failed
  // retries and blocked store drains are pure no-ops and repeat
  // identically until a DRAM/DMB event, so they do not count.
  bool ticked_active() const { return tick_active_; }

  // The queue holds no internal timers: every state change is driven
  // by the DMB/DRAM events or by engine action.
  Cycle next_event(Cycle now) const {
    (void)now;
    return kNoEvent;
  }

  bool all_stores_drained() const { return store_queue_.empty(); }
  std::size_t pending_loads() const { return load_entries_.size(); }
  std::size_t pending_stores() const { return store_queue_.size(); }

 private:
  struct LoadEntry {
    Addr line = 0;
    TrafficClass cls = TrafficClass::kCombined;
    Cycle issue_cycle = 0;  // allocation cycle, for latency histograms
    bool issued = false;    // accepted by the DMB
    bool ready = false;
  };

  struct StoreEntry {
    Addr line = 0;
    TrafficClass cls = TrafficClass::kOutput;
    StoreKind kind = StoreKind::kThrough;
  };

  std::size_t capacity_;
  bool forwarding_;

  // Retry descriptor: carries the line/class so a rejected retry
  // costs zero load_entries_ probes (the entry is only touched on
  // acceptance), plus the DMB membership epoch under which the line
  // was last proven absent from every directory — while it still
  // matches, the retry takes DenseMatrixBuffer::read_absent and
  // skips the probes too.
  struct UnissuedLoad {
    EntryId id = 0;
    Addr line = 0;
    TrafficClass cls = TrafficClass::kCombined;
    std::uint64_t absent_epoch = ~std::uint64_t{0};
  };

  EntryId next_id_ = 1;
  FlatMap<LoadEntry> load_entries_;
  std::vector<UnissuedLoad> unissued_loads_;
  bool tick_active_ = false;
  std::deque<StoreEntry> store_queue_;
  // Store-to-load forwarding window: the last `capacity_` stored
  // lines. Section IV-B forwards from any matching entry — the store
  // need not still be pending, only not yet replaced. SpDeMM output
  // addresses are written once, so stale-data hazards cannot arise.
  std::deque<Addr> forward_fifo_;
  FlatMap<std::uint32_t> forward_lines_;

  DenseMatrixBuffer& dmb_;
  SimStats& stats_;
  Observer* obs_ = nullptr;
};

}  // namespace hymm
