// Logical DRAM address space of the accelerator. Each matrix gets a
// line-aligned region from a bump allocator; the map answers which
// region (and traffic class) an address belongs to, which keeps
// engine-issued requests honest under HYMM_DCHECK.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/stats.hpp"

namespace hymm {

struct AddressRegion {
  std::string name;
  Addr base = 0;
  std::size_t bytes = 0;  // line-aligned
  TrafficClass cls = TrafficClass::kAdjacency;

  Addr end() const { return base + bytes; }
  bool contains(Addr a) const { return a >= base && a < end(); }

  // Line address of element `index` given a per-element line count.
  Addr line_of(std::uint64_t index, std::size_t lines_per_element = 1) const;
};

class AddressMap {
 public:
  // Reserves a region of at least `bytes` (rounded up to lines).
  AddressRegion allocate(std::string name, std::size_t bytes,
                         TrafficClass cls);

  // Region lookup; throws when the address is unmapped.
  const AddressRegion& region_of(Addr addr) const;

  const std::vector<AddressRegion>& regions() const { return regions_; }

 private:
  Addr next_ = 0x1000;  // keep address 0 unmapped to catch bugs
  std::vector<AddressRegion> regions_;
};

}  // namespace hymm
