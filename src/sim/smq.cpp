#include "sim/smq.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/hooks.hpp"
#include "sim/checkpoint.hpp"
#include "sim/tags.hpp"

namespace hymm {

namespace {
// One compressed (index, value) pair is 8 bytes (Fig 4: 4-byte index,
// 4-byte single-precision value).
constexpr std::size_t kEntryBytes = 8;
// One pointer is 4 bytes.
constexpr std::size_t kPointerBytes = 4;
}  // namespace

SparseMatrixQueue::SparseMatrixQueue(const AcceleratorConfig& config,
                                     Dram& dram, SimStats& stats)
    : dram_(dram), stats_(stats) {
  entry_capacity_ = config.smq_index_bytes / kEntryBytes;
  entries_per_line_ = kLineBytes / kEntryBytes;
  HYMM_CHECK(entry_capacity_ >= entries_per_line_);
}

void SparseMatrixQueue::attach_common(TrafficClass cls,
                                      EdgeCount total_entries,
                                      NodeId outer_count) {
  HYMM_CHECK_MSG(finished(), "previous SMQ stream still active");
  cls_ = cls;
  total_entries_ = total_entries;
  outer_count_ = outer_count;
  decoded_ = 0;
  requested_ = 0;
  cursor_outer_ = 0;
  cursor_k_ = 0;
  pointer_lines_issued_ = 0;
  ready_.clear();
  inflight_refills_.clear();
}

void SparseMatrixQueue::attach_csr(const CsrMatrix& matrix,
                                   TrafficClass cls) {
  attach_common(cls, matrix.nnz(), matrix.rows());
  csr_ = &matrix;
  csc_ = nullptr;
}

void SparseMatrixQueue::attach_csc(const CscMatrix& matrix,
                                   TrafficClass cls) {
  attach_common(cls, matrix.nnz(), matrix.cols());
  csc_ = &matrix;
  csr_ = nullptr;
}

bool SparseMatrixQueue::finished() const {
  return decoded_ == total_entries_ && ready_.empty();
}

const SmqEntry& SparseMatrixQueue::front() const {
  HYMM_DCHECK(has_ready());
  return ready_.front();
}

void SparseMatrixQueue::pop() {
  HYMM_DCHECK(has_ready());
  ready_.pop_front();
}

SmqEntry SparseMatrixQueue::next_entry() {
  SmqEntry entry;
  for (;;) {
    const EdgeCount outer_nnz = csr_ != nullptr
                                    ? csr_->row_nnz(cursor_outer_)
                                    : csc_->col_nnz(cursor_outer_);
    if (cursor_k_ < outer_nnz) break;
    ++cursor_outer_;
    cursor_k_ = 0;
    HYMM_DCHECK(cursor_outer_ < outer_count_);
  }
  entry.outer = cursor_outer_;
  if (csr_ != nullptr) {
    entry.inner = csr_->row_cols(cursor_outer_)[cursor_k_];
    entry.value = csr_->row_values(cursor_outer_)[cursor_k_];
    entry.last_of_outer = cursor_k_ + 1 == csr_->row_nnz(cursor_outer_);
  } else {
    entry.inner = csc_->col_rows(cursor_outer_)[cursor_k_];
    entry.value = csc_->col_values(cursor_outer_)[cursor_k_];
    entry.last_of_outer = cursor_k_ + 1 == csc_->col_nnz(cursor_outer_);
  }
  entry.first_of_outer = cursor_k_ == 0;
  if (entry.last_of_outer) {
    // cursor_k_ is the 0-based index of the unit's final non-zero, so
    // + 1 is the outer unit's degree (row degree for CSR streams).
    HYMM_OBS(obs_, observe_row_degree(cursor_k_ + 1));
  }
  ++cursor_k_;
  return entry;
}

void SparseMatrixQueue::decode_entries(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    HYMM_DCHECK(decoded_ < total_entries_);
    ready_.push_back(next_entry());
    ++decoded_;
  }
}

void SparseMatrixQueue::tick(Cycle now) {
  tick_active_ = false;
  // 1. Arrived refills become decodable entries.
  for (const std::uint64_t tag : dram_.completions()) {
    if (tag_source(tag) != kSmqTagSource) continue;
    HYMM_DCHECK(!inflight_refills_.empty());
    HYMM_DCHECK(inflight_refills_.front().first == tag_payload(tag));
    decode_entries(inflight_refills_.front().second);
    inflight_refills_.pop_front();
    tick_active_ = true;
  }

  // 2. Issue refills while there is stream left, buffer headroom and
  //    DRAM queue space.
  while (requested_ < total_entries_) {
    const std::size_t outstanding =
        ready_.size() + static_cast<std::size_t>(requested_ - decoded_);
    if (outstanding + entries_per_line_ > entry_capacity_) break;
    if (!dram_.can_accept_read()) break;
    const std::size_t chunk = static_cast<std::size_t>(std::min<EdgeCount>(
        entries_per_line_, total_entries_ - requested_));
    const std::uint64_t payload = next_refill_tag_++;
    dram_.issue_read(/*line_addr=*/0, cls_, make_tag(kSmqTagSource, payload),
                     now);
    HYMM_OBS(obs_, on_smq_refill());
    inflight_refills_.emplace_back(payload, chunk);
    requested_ += chunk;
    tick_active_ = true;

    // Pointer stream: one 64-byte pointer line accompanies every
    // kLineBytes/4 outer units; issued as deeply prefetched
    // sequential reads (they never gate decode — the 4 KB pointer
    // buffer runs far ahead of the index buffer).
    const auto outer_seen = cursor_outer_;
    const auto pointer_lines_needed = static_cast<NodeId>(
        (static_cast<std::size_t>(outer_seen) * kPointerBytes) / kLineBytes +
        1);
    while (pointer_lines_issued_ < pointer_lines_needed) {
      dram_.issue_streaming_read(cls_, now);
      ++pointer_lines_issued_;
    }
  }
}

void SparseMatrixQueue::save_state(StateWriter& w) const {
  // Phase-boundary contract: the stream is fully decoded, consumed
  // and landed; only the tag counter carries forward.
  HYMM_CHECK_MSG(finished() && inflight_refills_.empty(),
                 "SMQ checkpoint requires a drained stream");
  w.put_u64(next_refill_tag_);
}

void SparseMatrixQueue::load_state(StateReader& r) {
  HYMM_CHECK_MSG(finished() && inflight_refills_.empty(),
                 "SMQ restore requires a drained stream");
  next_refill_tag_ = r.get_u64();
}

}  // namespace hymm
