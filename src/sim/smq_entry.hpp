// Bit-level layout of an SMQ queue entry (paper Fig 4): a format flag
// (CSR vs CSC), a pointer (output-row index in CSR mode, dense-row
// load index in CSC mode), the non-zero's index and its value. The
// cycle model streams decoded entries (sim/smq.hpp); this module pins
// down the wire format itself so the storage accounting (8 bytes of
// index+value per non-zero, 4 bytes per pointer) is grounded in a
// concrete encoding and is unit-testable.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace hymm {

enum class SmqFormat : std::uint8_t {
  kCsr = 0,  // pointer = row of the output matrix to write
  kCsc = 1,  // pointer = row of the dense matrix to load
};

// The decoded architectural fields of one queue entry.
struct SmqEntryFields {
  SmqFormat format = SmqFormat::kCsr;
  NodeId pointer = 0;  // 31 bits: outer index (row for CSR, col for CSC)
  NodeId index = 0;    // 32 bits: inner index of the non-zero
  Value value = 0.0f;  // 32 bits: single-precision operand

  friend bool operator==(const SmqEntryFields&,
                         const SmqEntryFields&) = default;
};

// Packed wire format: 96 bits = flag(1) | pointer(31) | index(32) |
// value(32). Pointers are thus limited to 2^31-1 — comfortably above
// the largest paper dataset (Yelp, 716 847 nodes).
struct PackedSmqEntry {
  std::uint32_t flag_and_pointer = 0;
  std::uint32_t index = 0;
  std::uint32_t value_bits = 0;

  friend bool operator==(const PackedSmqEntry&,
                         const PackedSmqEntry&) = default;
};

inline constexpr std::size_t kPackedSmqEntryBytes = 12;
inline constexpr NodeId kMaxSmqPointer = 0x7FFFFFFF;

// Encodes fields into the packed layout. Throws CheckError when the
// pointer exceeds 31 bits.
PackedSmqEntry pack_smq_entry(const SmqEntryFields& fields);

// Inverse of pack_smq_entry (bit-exact round trip, including the
// float payload).
SmqEntryFields unpack_smq_entry(const PackedSmqEntry& packed);

}  // namespace hymm
