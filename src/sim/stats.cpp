#include "sim/stats.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hymm {

std::string to_string(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kAdjacency: return "adjacency";
    case TrafficClass::kFeatures: return "features";
    case TrafficClass::kWeights: return "weights";
    case TrafficClass::kCombined: return "XW";
    case TrafficClass::kOutput: return "AXW";
    case TrafficClass::kPartial: return "partial";
  }
  return "?";
}

Cycle SimStats::stall_total() const {
  Cycle total = 0;
  for (const Cycle c : stall_cycles) total += c;
  return total;
}

std::uint64_t SimStats::dram_total_read_bytes() const {
  std::uint64_t total = 0;
  for (const auto b : dram_read_bytes) total += b;
  return total;
}

std::uint64_t SimStats::dram_total_write_bytes() const {
  std::uint64_t total = 0;
  for (const auto b : dram_write_bytes) total += b;
  return total;
}

std::uint64_t SimStats::dram_total_bytes() const {
  return dram_total_read_bytes() + dram_total_write_bytes();
}

double SimStats::dmb_hit_rate() const {
  const std::uint64_t hits = dmb_read_hits + dmb_accumulate_hits;
  const std::uint64_t total =
      hits + dmb_read_misses + dmb_accumulate_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

double SimStats::alu_utilization() const {
  return cycles == 0 ? 0.0
                     : static_cast<double>(alu_busy_cycles) /
                           static_cast<double>(cycles);
}

void SimStats::note_partial_bytes(std::int64_t delta) {
  if (delta < 0) {
    const auto dec = static_cast<std::uint64_t>(-delta);
    HYMM_DCHECK(partial_bytes_now >= dec);
    partial_bytes_now -= std::min(partial_bytes_now, dec);
  } else {
    partial_bytes_now += static_cast<std::uint64_t>(delta);
  }
  partial_bytes_peak = std::max(partial_bytes_peak, partial_bytes_now);
}

double SimStats::dram_bandwidth_utilization(
    std::size_t bytes_per_cycle) const {
  if (cycles == 0 || bytes_per_cycle == 0) return 0.0;
  return static_cast<double>(dram_total_bytes()) /
         (static_cast<double>(cycles) *
          static_cast<double>(bytes_per_cycle));
}

void SimStats::maybe_sample_timeline(Cycle now) {
  if (now < timeline_next_sample) return;
  partial_timeline.emplace_back(now, partial_bytes_now);
  timeline_next_sample = now + timeline_interval;
  if (partial_timeline.size() >= kTimelineCapacity) {
    // Thin to every other sample and halve the rate.
    std::size_t out = 0;
    for (std::size_t i = 0; i < partial_timeline.size(); i += 2) {
      partial_timeline[out++] = partial_timeline[i];
    }
    partial_timeline.resize(out);
    timeline_interval *= 2;
  }
}

double SimStats::timeline_fraction_above(std::uint64_t bytes) const {
  if (partial_timeline.empty()) return 0.0;
  std::size_t above = 0;
  for (const auto& [cycle, value] : partial_timeline) {
    if (value > bytes) ++above;
  }
  return static_cast<double>(above) /
         static_cast<double>(partial_timeline.size());
}

void SimStats::merge_phase(const SimStats& other) {
  cycles += other.cycles;
  skipped_cycles += other.skipped_cycles;
  for (std::size_t i = 0; i < kStallCauseCount; ++i) {
    stall_cycles[i] += other.stall_cycles[i];
  }
  mac_ops += other.mac_ops;
  alu_busy_cycles += other.alu_busy_cycles;
  merge_adds += other.merge_adds;
  dmb_read_hits += other.dmb_read_hits;
  dmb_read_misses += other.dmb_read_misses;
  dmb_accumulate_hits += other.dmb_accumulate_hits;
  dmb_accumulate_misses += other.dmb_accumulate_misses;
  dmb_evictions += other.dmb_evictions;
  dmb_partial_spills += other.dmb_partial_spills;
  lsq_loads += other.lsq_loads;
  lsq_stores += other.lsq_stores;
  lsq_forwards += other.lsq_forwards;
  for (std::size_t i = 0; i < kTrafficClassCount; ++i) {
    dram_read_bytes[i] += other.dram_read_bytes[i];
    dram_write_bytes[i] += other.dram_write_bytes[i];
  }
  partial_bytes_now = other.partial_bytes_now;
  partial_bytes_peak = std::max(partial_bytes_peak, other.partial_bytes_peak);
}

SimStats scale_stats(const SimStats& s, double fraction) {
  HYMM_DCHECK(fraction >= 0.0);
  const auto scale = [fraction](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * fraction +
                                      0.5);
  };
  SimStats out = s;
  out.cycles = scale(s.cycles);
  out.skipped_cycles = scale(s.skipped_cycles);
  out.mac_ops = scale(s.mac_ops);
  out.alu_busy_cycles = scale(s.alu_busy_cycles);
  out.merge_adds = scale(s.merge_adds);
  out.dmb_read_hits = scale(s.dmb_read_hits);
  out.dmb_read_misses = scale(s.dmb_read_misses);
  out.dmb_accumulate_hits = scale(s.dmb_accumulate_hits);
  out.dmb_accumulate_misses = scale(s.dmb_accumulate_misses);
  out.dmb_evictions = scale(s.dmb_evictions);
  out.dmb_partial_spills = scale(s.dmb_partial_spills);
  out.lsq_loads = scale(s.lsq_loads);
  out.lsq_stores = scale(s.lsq_stores);
  out.lsq_forwards = scale(s.lsq_forwards);
  for (std::size_t i = 0; i < kTrafficClassCount; ++i) {
    out.dram_read_bytes[i] = scale(s.dram_read_bytes[i]);
    out.dram_write_bytes[i] = scale(s.dram_write_bytes[i]);
  }
  // Stall buckets scale like any additive counter, but the accounting
  // invariant sum(stall_cycles) == cycles must survive the per-bucket
  // rounding: absorb the rounding residue into the largest bucket.
  std::size_t largest = 0;
  for (std::size_t i = 0; i < kStallCauseCount; ++i) {
    out.stall_cycles[i] = scale(s.stall_cycles[i]);
    if (out.stall_cycles[i] > out.stall_cycles[largest]) largest = i;
  }
  if (s.stall_total() == s.cycles) {
    const Cycle sum = out.stall_total();
    if (sum > out.cycles) {
      const Cycle excess = sum - out.cycles;
      HYMM_DCHECK(out.stall_cycles[largest] >= excess);
      out.stall_cycles[largest] -= std::min(out.stall_cycles[largest], excess);
    } else {
      out.stall_cycles[largest] += out.cycles - sum;
    }
  }
  return out;
}

SimStats stats_delta(const SimStats& after, const SimStats& before) {
  SimStats d = after;
  d.cycles -= before.cycles;
  d.skipped_cycles -= before.skipped_cycles;
  for (std::size_t i = 0; i < kStallCauseCount; ++i) {
    d.stall_cycles[i] -= before.stall_cycles[i];
  }
  d.mac_ops -= before.mac_ops;
  d.alu_busy_cycles -= before.alu_busy_cycles;
  d.merge_adds -= before.merge_adds;
  d.dmb_read_hits -= before.dmb_read_hits;
  d.dmb_read_misses -= before.dmb_read_misses;
  d.dmb_accumulate_hits -= before.dmb_accumulate_hits;
  d.dmb_accumulate_misses -= before.dmb_accumulate_misses;
  d.dmb_evictions -= before.dmb_evictions;
  d.dmb_partial_spills -= before.dmb_partial_spills;
  d.lsq_loads -= before.lsq_loads;
  d.lsq_stores -= before.lsq_stores;
  d.lsq_forwards -= before.lsq_forwards;
  for (std::size_t i = 0; i < kTrafficClassCount; ++i) {
    d.dram_read_bytes[i] -= before.dram_read_bytes[i];
    d.dram_write_bytes[i] -= before.dram_write_bytes[i];
  }
  return d;
}

}  // namespace hymm
