#include "sim/dmb.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/hooks.hpp"
#include "sim/checkpoint.hpp"
#include "sim/tags.hpp"

namespace hymm {

DenseMatrixBuffer::DenseMatrixBuffer(const AcceleratorConfig& config,
                                     Dram& dram, SimStats& stats)
    : capacity_lines_(config.dmb_lines()),
      hit_latency_(config.dmb_hit_latency),
      dram_latency_(config.dram_latency),
      mshr_capacity_(config.dmb_mshr_entries),
      policy_(config.eviction_policy),
      dram_(dram),
      stats_(stats) {
  HYMM_CHECK(capacity_lines_ > 0);
  lines_.reserve(capacity_lines_ * 2);
  ready_waiters_.reserve(mshr_capacity_ * 2);
}

Cycle DenseMatrixBuffer::next_event(Cycle now) const {
  Cycle e = kNoEvent;
  if (!pending_prefetches_.empty()) {
    e = std::min(e, std::max(pending_prefetches_.front().ready_cycle, now + 1));
  }
  if (!pending_hits_.empty()) {
    e = std::min(e, std::max(pending_hits_.front().ready_cycle, now + 1));
  }
  return e;
}

std::uint64_t DenseMatrixBuffer::dram_tag_for(Addr line) const {
  return make_tag(kDmbTagSource, line);
}

void DenseMatrixBuffer::touch(Addr line, LineState& state) {
  (void)line;
  if (policy_ != EvictionPolicy::kLru) return;
  list_for(state.cls).move_to_back(state.lru_it);
}

DenseMatrixBuffer::ReadResult DenseMatrixBuffer::read(Addr line,
                                                      TrafficClass cls,
                                                      std::uint64_t waiter_tag,
                                                      Cycle now) {
  if (LineState* state = lines_.find(line)) {
    ++stats_.dmb_read_hits;
    HYMM_OBS(obs_, on_dmb_hit());
    touch(line, *state);
    pending_hits_.push_back(PendingHit{waiter_tag, now + hit_latency_});
    return ReadResult::kHit;
  }

  // An in-flight prefetch covers this line: the waiter gets the data
  // on arrival without consuming an MSHR.
  if (const Cycle* arrival = prefetch_inflight_.find(line)) {
    ++stats_.dmb_read_hits;
    HYMM_OBS(obs_, on_dmb_hit());
    pending_hits_.push_back(
        PendingHit{waiter_tag, std::max(now + hit_latency_, *arrival)});
    return ReadResult::kHit;
  }

  if (Mshr* mshr = mshrs_.find(line)) {
    // Secondary miss: piggyback on the outstanding fill.
    ++stats_.dmb_read_misses;
    HYMM_OBS(obs_, on_dmb_miss());
    mshr->waiters.push_back(waiter_tag);
    return ReadResult::kMiss;
  }

  return read_absent(line, cls, waiter_tag, now);
}

DenseMatrixBuffer::ReadResult DenseMatrixBuffer::read_absent(
    Addr line, TrafficClass cls, std::uint64_t waiter_tag, Cycle now) {
  if (mshrs_.size() >= mshr_capacity_ || !dram_.can_accept_read()) {
    return ReadResult::kReject;
  }

  ++stats_.dmb_read_misses;
  HYMM_OBS(obs_, on_dmb_miss());
  Mshr mshr;
  mshr.cls = cls;
  mshr.alloc_cycle = now;
  mshr.waiters.push_back(waiter_tag);
  mshrs_.emplace(line, std::move(mshr));
  ++membership_epoch_;
  dram_.issue_read(line, cls, dram_tag_for(line), now);
  return ReadResult::kMiss;
}

bool DenseMatrixBuffer::install(Addr line, TrafficClass cls, bool dirty,
                                Cycle now, bool ignore_write_bp) {
  if (LineState* state = lines_.find(line)) {
    state->dirty = state->dirty || dirty;
    if (state->cls != cls) {
      // Reclassified line (e.g. an XW line rewritten): move it to the
      // appropriate recency tier.
      list_for(state->cls).erase(state->lru_it);
      state->lru_it = list_for(cls).push_back(line);
      state->cls = cls;
    } else {
      touch(line, *state);
    }
    return true;
  }
  while (lines_.size() >= capacity_lines_) {
    if (!evict_one(now, ignore_write_bp)) return false;
  }
  LineState state;
  state.cls = cls;
  state.dirty = dirty;
  state.lru_it = list_for(cls).push_back(line);
  lines_.emplace(line, state);
  return true;
}

bool DenseMatrixBuffer::evict_one(Cycle now, bool ignore_write_bp) {
  for (auto* list : {&data_lru_, &partial_lru_}) {
    for (auto h = list->front(); h != LruList<Addr>::kNil;
         h = list->next(h)) {
      const Addr victim = list->value(h);
      LineState* state = lines_.find(victim);
      HYMM_DCHECK(state != nullptr);
      if (state->pinned) continue;
      if (state->dirty) {
        // A dirty victim needs a writeback slot; stall the allocation
        // under write back-pressure instead of booking unbounded
        // bandwidth.
        if (!ignore_write_bp && !dram_.can_accept_write(now)) return false;
        dram_.issue_write(victim, state->cls, now);
        if (state->cls == TrafficClass::kPartial) {
          // Spilled partial stays live (unmerged) in DRAM; footprint
          // is unchanged, but the spill itself is counted.
          ++stats_.dmb_partial_spills;
          HYMM_OBS(obs_, on_partial_spill(now));
        }
      }
      list->erase(h);
      lines_.erase(victim);
      ++stats_.dmb_evictions;
      HYMM_OBS(obs_, on_dmb_eviction(now));
      return true;
    }
  }
  return false;
}

bool DenseMatrixBuffer::write_allocate(Addr line, TrafficClass cls,
                                       Cycle now) {
  ++membership_epoch_;
  return install(line, cls, /*dirty=*/true, now);
}

bool DenseMatrixBuffer::write_through(Addr line, TrafficClass cls,
                                      Cycle now) {
  if (!dram_.can_accept_write(now)) return false;
  dram_.issue_write(line, cls, now);
  return true;
}

bool DenseMatrixBuffer::accumulate(Addr line, Cycle now) {
  ++membership_epoch_;
  if (LineState* state = lines_.find(line)) {
    HYMM_DCHECK(state->cls == TrafficClass::kPartial);
    ++stats_.dmb_accumulate_hits;
    HYMM_OBS(obs_, on_dmb_hit());
    ++stats_.merge_adds;
    state->dirty = true;
    touch(line, *state);
    return true;
  }
  if (!install(line, TrafficClass::kPartial, /*dirty=*/true, now)) {
    return false;
  }
  ++stats_.dmb_accumulate_misses;
  HYMM_OBS(obs_, on_dmb_miss());
  stats_.note_partial_bytes(static_cast<std::int64_t>(kLineBytes));
  return true;
}

bool DenseMatrixBuffer::contains(Addr line) const {
  return lines_.contains(line);
}

bool DenseMatrixBuffer::prefetch(Addr line, TrafficClass cls, Cycle now) {
  if (lines_.contains(line) || mshrs_.contains(line) ||
      prefetch_inflight_.contains(line)) {
    return false;
  }
  // Prefetches ride the same headroom window as writes so a saturated
  // channel throttles them before they starve demand traffic.
  if (!dram_.can_accept_write(now)) return false;
  ++membership_epoch_;
  dram_.issue_streaming_read(cls, now);
  HYMM_OBS(obs_, on_dmb_prefetch());
  const Cycle ready = now + dram_latency_;
  pending_prefetches_.push_back(PendingPrefetch{line, cls, ready});
  prefetch_inflight_.emplace(line, ready);
  return true;
}

void DenseMatrixBuffer::demote_class(TrafficClass cls) {
  HYMM_CHECK_MSG(cls != TrafficClass::kPartial,
                 "partial lines cannot be demoted");
  // Stable partition: demoted lines first (oldest), others keep
  // their relative recency. Collect cold-to-hot, then move to the
  // front in reverse so relative order within the demoted set is
  // preserved; node handles stay valid throughout.
  demote_scratch_.clear();
  for (auto h = data_lru_.front(); h != LruList<Addr>::kNil;
       h = data_lru_.next(h)) {
    LineState* state = lines_.find(data_lru_.value(h));
    HYMM_DCHECK(state != nullptr);
    if (state->cls == cls) demote_scratch_.push_back(h);
  }
  for (auto it = demote_scratch_.rbegin(); it != demote_scratch_.rend();
       ++it) {
    data_lru_.move_to_front(*it);
  }
}

bool DenseMatrixBuffer::pin_partial(Addr line, Cycle now) {
  if (pinned_count_ >= capacity_lines_) return false;
  ++membership_epoch_;
  // Pinning happens at phase start and must not fail on transient
  // write back-pressure: the evicted combination lines book their
  // writeback bandwidth and the phase simply starts later.
  if (!install(line, TrafficClass::kPartial, /*dirty=*/true, now,
               /*ignore_write_bp=*/true)) {
    return false;
  }
  auto& state = lines_.at(line);
  if (!state.pinned) {
    state.pinned = true;
    ++pinned_count_;
    stats_.note_partial_bytes(static_cast<std::int64_t>(kLineBytes));
  }
  return true;
}

void DenseMatrixBuffer::unpin_and_writeback_outputs(Cycle now) {
  pinned_scratch_.clear();
  lines_.for_each([this](Addr line, LineState& state) {
    if (state.pinned) pinned_scratch_.push_back(line);
  });
  for (const Addr line : pinned_scratch_) {
    LineState& state = lines_.at(line);
    dram_.issue_write(line, TrafficClass::kOutput, now);
    stats_.note_partial_bytes(-static_cast<std::int64_t>(kLineBytes));
    --pinned_count_;
    list_for(state.cls).erase(state.lru_it);
    lines_.erase(line);
  }
  HYMM_DCHECK(pinned_count_ == 0);
}

bool DenseMatrixBuffer::writeback_one_partial(TrafficClass final_cls,
                                              Cycle now) {
  for (auto h = partial_lru_.front(); h != LruList<Addr>::kNil;
       h = partial_lru_.next(h)) {
    const Addr line = partial_lru_.value(h);
    LineState* state = lines_.find(line);
    HYMM_DCHECK(state != nullptr);
    if (state->pinned) continue;
    dram_.issue_write(line, final_cls, now);
    stats_.note_partial_bytes(-static_cast<std::int64_t>(kLineBytes));
    partial_lru_.erase(h);
    lines_.erase(line);
    return true;
  }
  return false;
}

void DenseMatrixBuffer::flush_dirty(Cycle now) {
  // Map-iteration order is unobservable here: each dirty line books
  // one write and the per-class byte counters are order-independent.
  lines_.for_each([&](Addr line, LineState& state) {
    if (!state.dirty) return;
    dram_.issue_write(line, state.cls, now);
    if (state.cls == TrafficClass::kPartial) {
      stats_.note_partial_bytes(-static_cast<std::int64_t>(kLineBytes));
    }
    state.dirty = false;
  });
}

void DenseMatrixBuffer::reset_contents() {
  HYMM_CHECK_MSG(pinned_count_ == 0, "unpin before resetting the DMB");
  ++membership_epoch_;
  lines_.clear();
  data_lru_.clear();
  partial_lru_.clear();
  mshrs_.clear();
  pending_hits_.clear();
  ready_waiters_.clear();
  pending_prefetches_.clear();
  prefetch_inflight_.clear();
}

void DenseMatrixBuffer::tick(Cycle now) {
  ready_waiters_.clear();
  tick_active_ = false;
  // Arrived prefetches install as clean lines (install failure under
  // back-pressure just drops the prefetch).
  while (!pending_prefetches_.empty() &&
         pending_prefetches_.front().ready_cycle <= now) {
    const PendingPrefetch& pf = pending_prefetches_.front();
    install(pf.line, pf.cls, /*dirty=*/false, now);
    prefetch_inflight_.erase(pf.line);
    pending_prefetches_.pop_front();
    tick_active_ = true;
  }
  // Hit-latency expirations.
  while (!pending_hits_.empty() && pending_hits_.front().ready_cycle <= now) {
    ready_waiters_.push_back(pending_hits_.front().tag);
    pending_hits_.pop_front();
    tick_active_ = true;
  }
  // DRAM fills addressed to us.
  for (const std::uint64_t tag : dram_.completions()) {
    if (tag_source(tag) != kDmbTagSource) continue;
    tick_active_ = true;
    const Addr line = tag_payload(tag);
    Mshr* mshr = mshrs_.find(line);
    HYMM_DCHECK(mshr != nullptr);
    // MSHR allocation -> fill install (the buffer-side miss latency).
    HYMM_OBS(obs_, observe_dmb_fill_latency(now - mshr->alloc_cycle));
    // Install as a clean line; when no victim is available (e.g.
    // everything pinned or write back-pressure) the fill bypasses the
    // buffer — the waiters still get their data.
    install(line, mshr->cls, /*dirty=*/false, now);
    for (const std::uint64_t waiter : mshr->waiters) {
      ready_waiters_.push_back(waiter);
    }
    mshrs_.erase(line);
  }
}

void DenseMatrixBuffer::save_state(StateWriter& w) const {
  w.put_u64(membership_epoch_);
  // Each resident line lives in exactly one recency tier; serializing
  // both tiers cold-to-hot captures the directory and the exact
  // eviction order in one pass.
  for (const LruList<Addr>* list : {&data_lru_, &partial_lru_}) {
    w.put_u64(list->size());
    list->for_each([&](Addr line) {
      const LineState* state = lines_.find(line);
      HYMM_DCHECK(state != nullptr);
      w.put_u64(line);
      w.put_u8(static_cast<std::uint8_t>(state->cls));
      w.put_bool(state->dirty);
      w.put_bool(state->pinned);
    });
  }
  // FlatMap iteration order is unspecified; sort by line address so
  // identical logical states produce identical bytes.
  std::vector<Addr> mshr_lines;
  mshr_lines.reserve(mshrs_.size());
  mshrs_.for_each([&](Addr line, const Mshr&) { mshr_lines.push_back(line); });
  std::sort(mshr_lines.begin(), mshr_lines.end());
  w.put_u64(mshr_lines.size());
  for (const Addr line : mshr_lines) {
    const Mshr& mshr = *mshrs_.find(line);
    w.put_u64(line);
    w.put_u8(static_cast<std::uint8_t>(mshr.cls));
    w.put_u64(mshr.alloc_cycle);
    w.put_u64(mshr.waiters.size());
    for (const std::uint64_t waiter : mshr.waiters) w.put_u64(waiter);
  }
  w.put_u64(pending_hits_.size());
  for (const PendingHit& hit : pending_hits_) {
    w.put_u64(hit.tag);
    w.put_u64(hit.ready_cycle);
  }
  // prefetch_inflight_ mirrors pending_prefetches_ (one map entry per
  // queued install); it is rebuilt from the queue on restore.
  w.put_u64(pending_prefetches_.size());
  for (const PendingPrefetch& pf : pending_prefetches_) {
    w.put_u64(pf.line);
    w.put_u8(static_cast<std::uint8_t>(pf.cls));
    w.put_u64(pf.ready_cycle);
  }
  w.put_u64(ready_waiters_.size());
  for (const std::uint64_t tag : ready_waiters_) w.put_u64(tag);
}

void DenseMatrixBuffer::load_state(StateReader& r) {
  lines_.clear();
  data_lru_.clear();
  partial_lru_.clear();
  mshrs_.clear();
  pending_hits_.clear();
  pending_prefetches_.clear();
  prefetch_inflight_.clear();
  ready_waiters_.clear();
  pinned_count_ = 0;
  tick_active_ = false;

  membership_epoch_ = r.get_u64();
  for (LruList<Addr>* list : {&data_lru_, &partial_lru_}) {
    const std::uint64_t count = r.get_u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      const Addr line = r.get_u64();
      LineState state;
      state.cls = static_cast<TrafficClass>(r.get_u8());
      state.dirty = r.get_bool();
      state.pinned = r.get_bool();
      HYMM_DCHECK(&list_for(state.cls) == list);
      state.lru_it = list->push_back(line);
      if (state.pinned) ++pinned_count_;
      lines_.emplace(line, state);
    }
  }
  HYMM_CHECK_MSG(lines_.size() <= capacity_lines_,
                 "checkpoint holds more lines than this DMB's capacity");
  const std::uint64_t mshr_count = r.get_u64();
  for (std::uint64_t i = 0; i < mshr_count; ++i) {
    const Addr line = r.get_u64();
    Mshr mshr;
    mshr.cls = static_cast<TrafficClass>(r.get_u8());
    mshr.alloc_cycle = r.get_u64();
    const std::uint64_t waiter_count = r.get_u64();
    for (std::uint64_t k = 0; k < waiter_count; ++k) {
      mshr.waiters.push_back(r.get_u64());
    }
    mshrs_.emplace(line, std::move(mshr));
  }
  const std::uint64_t hit_count = r.get_u64();
  for (std::uint64_t i = 0; i < hit_count; ++i) {
    PendingHit hit;
    hit.tag = r.get_u64();
    hit.ready_cycle = r.get_u64();
    pending_hits_.push_back(hit);
  }
  const std::uint64_t prefetch_count = r.get_u64();
  for (std::uint64_t i = 0; i < prefetch_count; ++i) {
    PendingPrefetch pf;
    pf.line = r.get_u64();
    pf.cls = static_cast<TrafficClass>(r.get_u8());
    pf.ready_cycle = r.get_u64();
    pending_prefetches_.push_back(pf);
    prefetch_inflight_.emplace(pf.line, pf.ready_cycle);
  }
  const std::uint64_t ready_count = r.get_u64();
  for (std::uint64_t i = 0; i < ready_count; ++i) {
    ready_waiters_.push_back(r.get_u64());
  }
}

}  // namespace hymm
