#include "sim/dmb.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/hooks.hpp"
#include "sim/tags.hpp"

namespace hymm {

DenseMatrixBuffer::DenseMatrixBuffer(const AcceleratorConfig& config,
                                     Dram& dram, SimStats& stats)
    : capacity_lines_(config.dmb_lines()),
      hit_latency_(config.dmb_hit_latency),
      dram_latency_(config.dram_latency),
      mshr_capacity_(config.dmb_mshr_entries),
      policy_(config.eviction_policy),
      dram_(dram),
      stats_(stats) {
  HYMM_CHECK(capacity_lines_ > 0);
  lines_.reserve(capacity_lines_ * 2);
  ready_waiters_.reserve(mshr_capacity_ * 2);
}

Cycle DenseMatrixBuffer::next_event(Cycle now) const {
  Cycle e = kNoEvent;
  if (!pending_prefetches_.empty()) {
    e = std::min(e, std::max(pending_prefetches_.front().ready_cycle, now + 1));
  }
  if (!pending_hits_.empty()) {
    e = std::min(e, std::max(pending_hits_.front().ready_cycle, now + 1));
  }
  return e;
}

std::uint64_t DenseMatrixBuffer::dram_tag_for(Addr line) const {
  return make_tag(kDmbTagSource, line);
}

void DenseMatrixBuffer::touch(Addr line, LineState& state) {
  if (policy_ != EvictionPolicy::kLru) return;
  auto& list = list_for(state.cls);
  list.erase(state.lru_it);
  state.lru_it = list.insert(list.end(), line);
}

DenseMatrixBuffer::ReadResult DenseMatrixBuffer::read(Addr line,
                                                      TrafficClass cls,
                                                      std::uint64_t waiter_tag,
                                                      Cycle now) {
  if (LineState* state = lines_.find(line)) {
    ++stats_.dmb_read_hits;
    HYMM_OBS(obs_, on_dmb_hit());
    touch(line, *state);
    pending_hits_.push_back(PendingHit{waiter_tag, now + hit_latency_});
    return ReadResult::kHit;
  }

  // An in-flight prefetch covers this line: the waiter gets the data
  // on arrival without consuming an MSHR.
  if (const Cycle* arrival = prefetch_inflight_.find(line)) {
    ++stats_.dmb_read_hits;
    HYMM_OBS(obs_, on_dmb_hit());
    pending_hits_.push_back(
        PendingHit{waiter_tag, std::max(now + hit_latency_, *arrival)});
    return ReadResult::kHit;
  }

  if (Mshr* mshr = mshrs_.find(line)) {
    // Secondary miss: piggyback on the outstanding fill.
    ++stats_.dmb_read_misses;
    HYMM_OBS(obs_, on_dmb_miss());
    mshr->waiters.push_back(waiter_tag);
    return ReadResult::kMiss;
  }

  return read_absent(line, cls, waiter_tag, now);
}

DenseMatrixBuffer::ReadResult DenseMatrixBuffer::read_absent(
    Addr line, TrafficClass cls, std::uint64_t waiter_tag, Cycle now) {
  if (mshrs_.size() >= mshr_capacity_ || !dram_.can_accept_read()) {
    return ReadResult::kReject;
  }

  ++stats_.dmb_read_misses;
  HYMM_OBS(obs_, on_dmb_miss());
  Mshr mshr;
  mshr.cls = cls;
  mshr.alloc_cycle = now;
  mshr.waiters.push_back(waiter_tag);
  mshrs_.emplace(line, std::move(mshr));
  ++membership_epoch_;
  dram_.issue_read(line, cls, dram_tag_for(line), now);
  return ReadResult::kMiss;
}

bool DenseMatrixBuffer::install(Addr line, TrafficClass cls, bool dirty,
                                Cycle now, bool ignore_write_bp) {
  if (LineState* state = lines_.find(line)) {
    state->dirty = state->dirty || dirty;
    if (state->cls != cls) {
      // Reclassified line (e.g. an XW line rewritten): move it to the
      // appropriate recency tier.
      list_for(state->cls).erase(state->lru_it);
      auto& list = list_for(cls);
      state->lru_it = list.insert(list.end(), line);
      state->cls = cls;
    } else {
      touch(line, *state);
    }
    return true;
  }
  while (lines_.size() >= capacity_lines_) {
    if (!evict_one(now, ignore_write_bp)) return false;
  }
  LineState state;
  state.cls = cls;
  state.dirty = dirty;
  auto& list = list_for(cls);
  state.lru_it = list.insert(list.end(), line);
  lines_.emplace(line, state);
  return true;
}

bool DenseMatrixBuffer::evict_one(Cycle now, bool ignore_write_bp) {
  for (auto* list : {&data_lru_, &partial_lru_}) {
    for (auto it = list->begin(); it != list->end(); ++it) {
      const Addr victim = *it;
      LineState* state = lines_.find(victim);
      HYMM_DCHECK(state != nullptr);
      if (state->pinned) continue;
      if (state->dirty) {
        // A dirty victim needs a writeback slot; stall the allocation
        // under write back-pressure instead of booking unbounded
        // bandwidth.
        if (!ignore_write_bp && !dram_.can_accept_write(now)) return false;
        dram_.issue_write(victim, state->cls, now);
        if (state->cls == TrafficClass::kPartial) {
          // Spilled partial stays live (unmerged) in DRAM; footprint
          // is unchanged, but the spill itself is counted.
          ++stats_.dmb_partial_spills;
          HYMM_OBS(obs_, on_partial_spill(now));
        }
      }
      list->erase(it);
      lines_.erase(victim);
      ++stats_.dmb_evictions;
      HYMM_OBS(obs_, on_dmb_eviction(now));
      return true;
    }
  }
  return false;
}

bool DenseMatrixBuffer::write_allocate(Addr line, TrafficClass cls,
                                       Cycle now) {
  ++membership_epoch_;
  return install(line, cls, /*dirty=*/true, now);
}

bool DenseMatrixBuffer::write_through(Addr line, TrafficClass cls,
                                      Cycle now) {
  if (!dram_.can_accept_write(now)) return false;
  dram_.issue_write(line, cls, now);
  return true;
}

bool DenseMatrixBuffer::accumulate(Addr line, Cycle now) {
  ++membership_epoch_;
  if (LineState* state = lines_.find(line)) {
    HYMM_DCHECK(state->cls == TrafficClass::kPartial);
    ++stats_.dmb_accumulate_hits;
    HYMM_OBS(obs_, on_dmb_hit());
    ++stats_.merge_adds;
    state->dirty = true;
    touch(line, *state);
    return true;
  }
  if (!install(line, TrafficClass::kPartial, /*dirty=*/true, now)) {
    return false;
  }
  ++stats_.dmb_accumulate_misses;
  HYMM_OBS(obs_, on_dmb_miss());
  stats_.note_partial_bytes(static_cast<std::int64_t>(kLineBytes));
  return true;
}

bool DenseMatrixBuffer::contains(Addr line) const {
  return lines_.contains(line);
}

bool DenseMatrixBuffer::prefetch(Addr line, TrafficClass cls, Cycle now) {
  if (lines_.contains(line) || mshrs_.contains(line) ||
      prefetch_inflight_.contains(line)) {
    return false;
  }
  // Prefetches ride the same headroom window as writes so a saturated
  // channel throttles them before they starve demand traffic.
  if (!dram_.can_accept_write(now)) return false;
  ++membership_epoch_;
  dram_.issue_streaming_read(cls, now);
  HYMM_OBS(obs_, on_dmb_prefetch());
  const Cycle ready = now + dram_latency_;
  pending_prefetches_.push_back(PendingPrefetch{line, cls, ready});
  prefetch_inflight_.emplace(line, ready);
  return true;
}

void DenseMatrixBuffer::demote_class(TrafficClass cls) {
  HYMM_CHECK_MSG(cls != TrafficClass::kPartial,
                 "partial lines cannot be demoted");
  // Stable partition: demoted lines first (oldest), others keep
  // their relative recency.
  std::list<Addr> demoted;
  for (auto it = data_lru_.begin(); it != data_lru_.end();) {
    LineState* state = lines_.find(*it);
    HYMM_DCHECK(state != nullptr);
    if (state->cls == cls) {
      demoted.push_back(*it);
      state->lru_it = std::prev(demoted.end());
      it = data_lru_.erase(it);
    } else {
      ++it;
    }
  }
  data_lru_.splice(data_lru_.begin(), demoted);
}

bool DenseMatrixBuffer::pin_partial(Addr line, Cycle now) {
  if (pinned_count_ >= capacity_lines_) return false;
  ++membership_epoch_;
  // Pinning happens at phase start and must not fail on transient
  // write back-pressure: the evicted combination lines book their
  // writeback bandwidth and the phase simply starts later.
  if (!install(line, TrafficClass::kPartial, /*dirty=*/true, now,
               /*ignore_write_bp=*/true)) {
    return false;
  }
  auto& state = lines_.at(line);
  if (!state.pinned) {
    state.pinned = true;
    ++pinned_count_;
    stats_.note_partial_bytes(static_cast<std::int64_t>(kLineBytes));
  }
  return true;
}

void DenseMatrixBuffer::unpin_and_writeback_outputs(Cycle now) {
  pinned_scratch_.clear();
  lines_.for_each([this](Addr line, LineState& state) {
    if (state.pinned) pinned_scratch_.push_back(line);
  });
  for (const Addr line : pinned_scratch_) {
    LineState& state = lines_.at(line);
    dram_.issue_write(line, TrafficClass::kOutput, now);
    stats_.note_partial_bytes(-static_cast<std::int64_t>(kLineBytes));
    --pinned_count_;
    list_for(state.cls).erase(state.lru_it);
    lines_.erase(line);
  }
  HYMM_DCHECK(pinned_count_ == 0);
}

bool DenseMatrixBuffer::writeback_one_partial(TrafficClass final_cls,
                                              Cycle now) {
  for (auto it = partial_lru_.begin(); it != partial_lru_.end(); ++it) {
    const Addr line = *it;
    LineState* state = lines_.find(line);
    HYMM_DCHECK(state != nullptr);
    if (state->pinned) continue;
    dram_.issue_write(line, final_cls, now);
    stats_.note_partial_bytes(-static_cast<std::int64_t>(kLineBytes));
    partial_lru_.erase(it);
    lines_.erase(line);
    return true;
  }
  return false;
}

void DenseMatrixBuffer::flush_dirty(Cycle now) {
  // Map-iteration order is unobservable here: each dirty line books
  // one write and the per-class byte counters are order-independent.
  lines_.for_each([&](Addr line, LineState& state) {
    if (!state.dirty) return;
    dram_.issue_write(line, state.cls, now);
    if (state.cls == TrafficClass::kPartial) {
      stats_.note_partial_bytes(-static_cast<std::int64_t>(kLineBytes));
    }
    state.dirty = false;
  });
}

void DenseMatrixBuffer::reset_contents() {
  HYMM_CHECK_MSG(pinned_count_ == 0, "unpin before resetting the DMB");
  ++membership_epoch_;
  lines_.clear();
  data_lru_.clear();
  partial_lru_.clear();
  mshrs_.clear();
  pending_hits_.clear();
  ready_waiters_.clear();
  pending_prefetches_.clear();
  prefetch_inflight_.clear();
}

void DenseMatrixBuffer::tick(Cycle now) {
  ready_waiters_.clear();
  tick_active_ = false;
  // Arrived prefetches install as clean lines (install failure under
  // back-pressure just drops the prefetch).
  while (!pending_prefetches_.empty() &&
         pending_prefetches_.front().ready_cycle <= now) {
    const PendingPrefetch& pf = pending_prefetches_.front();
    install(pf.line, pf.cls, /*dirty=*/false, now);
    prefetch_inflight_.erase(pf.line);
    pending_prefetches_.pop_front();
    tick_active_ = true;
  }
  // Hit-latency expirations.
  while (!pending_hits_.empty() && pending_hits_.front().ready_cycle <= now) {
    ready_waiters_.push_back(pending_hits_.front().tag);
    pending_hits_.pop_front();
    tick_active_ = true;
  }
  // DRAM fills addressed to us.
  for (const std::uint64_t tag : dram_.completions()) {
    if (tag_source(tag) != kDmbTagSource) continue;
    tick_active_ = true;
    const Addr line = tag_payload(tag);
    Mshr* mshr = mshrs_.find(line);
    HYMM_DCHECK(mshr != nullptr);
    // MSHR allocation -> fill install (the buffer-side miss latency).
    HYMM_OBS(obs_, observe_dmb_fill_latency(now - mshr->alloc_cycle));
    // Install as a clean line; when no victim is available (e.g.
    // everything pinned or write back-pressure) the fill bypasses the
    // buffer — the waiters still get their data.
    install(line, mshr->cls, /*dirty=*/false, now);
    for (const std::uint64_t waiter : mshr->waiters) {
      ready_waiters_.push_back(waiter);
    }
    mshrs_.erase(line);
  }
}

}  // namespace hymm
