// Off-chip memory channel: fixed access latency plus a shared
// bandwidth pipe (64 GB/s at 1 GHz = one 64-byte line per cycle,
// Section IV). Reads complete through a tag queue; writes are
// fire-and-forget but still occupy bandwidth.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "sim/stats.hpp"

namespace hymm {

class Observer;
class StateReader;
class StateWriter;

class Dram {
 public:
  Dram(const AcceleratorConfig& config, SimStats& stats);

  // Warm-state checkpointing (sim/checkpoint.hpp): serializes /
  // restores the channel's dynamic state (booked bandwidth, in-flight
  // reads, undelivered completions). Restore requires a Dram built
  // from the same config.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

  // Attaches the observability context (read-only hooks; nullptr
  // detaches).
  void set_observer(Observer* obs) { obs_ = obs; }

  // True when the read queue has room for another in-flight request.
  bool can_accept_read() const;

  // True when the channel is not booked more than the write-buffer
  // depth ahead of `now`. Writers must check this before issuing;
  // end-of-phase flushes are exempt (the phase loop drains them).
  bool can_accept_write(Cycle now) const;

  // Issues a one-line read; `tag` comes back via completions() once
  // latency + queueing have elapsed. Precondition: can_accept_read().
  void issue_read(Addr line_addr, TrafficClass cls, std::uint64_t tag,
                  Cycle now);

  // Issues a one-line write (no completion signal).
  void issue_write(Addr line_addr, TrafficClass cls, Cycle now);

  // Accounts a deeply prefetched sequential read (SMQ pointer
  // stream): consumes bandwidth and counts bytes, but needs no
  // completion signal and no read-queue slot.
  void issue_streaming_read(TrafficClass cls, Cycle now);

  // Moves requests whose latency elapsed into the completion list.
  // Call once per cycle before consumers run.
  void tick(Cycle now);

  // Read tags that completed this cycle (valid until the next tick).
  const std::vector<std::uint64_t>& completions() const {
    return completions_;
  }

  // True when the last tick() changed observable state (delivered at
  // least one completion). Part of the fast-forward quiescence check.
  bool ticked_active() const { return !completions_.empty(); }

  // Earliest cycle after `now` at which this channel changes state on
  // its own: the head in-flight read completing, or write headroom
  // returning once the booked slots drain back inside the
  // write-buffer window. kNoEvent when neither is scheduled.
  Cycle next_event(Cycle now) const;

  bool has_inflight_reads() const { return !inflight_.empty(); }

  // Cycle at which the channel finishes all accepted traffic,
  // including writes (used to drain at end of a phase).
  Cycle busy_until() const { return next_slot_; }

 private:
  struct Inflight {
    std::uint64_t tag = 0;
    Cycle ready_cycle = 0;
    Cycle issue_cycle = 0;  // for the read-latency histogram
  };

  // Reserves a bandwidth slot starting no earlier than `now`.
  Cycle reserve_slot(Cycle now);

  Cycle latency_;
  std::size_t queue_entries_;
  Cycle cycles_per_line_ = 1;      // bandwidth: cycles per 64-byte line
  Cycle write_buffer_window_ = 64; // slots a writer may book ahead
  Cycle next_slot_ = 0;            // next cycle the channel is free
  std::deque<Inflight> inflight_;  // FIFO: fixed latency keeps order
  std::vector<std::uint64_t> completions_;
  SimStats& stats_;
  Observer* obs_ = nullptr;
};

}  // namespace hymm
