#include "sim/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/check.hpp"

namespace hymm {

namespace {

constexpr std::uint64_t kMagic = 0x48794d4d434b5031ULL;  // "HyMMCKP1"

std::uint64_t fnv1a64(const std::byte* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void StateWriter::put_u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    put_u8(static_cast<std::uint8_t>(v >> shift));
  }
}

void StateWriter::put_u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    put_u8(static_cast<std::uint8_t>(v >> shift));
  }
}

void StateWriter::put_f32(float v) { put_u32(std::bit_cast<std::uint32_t>(v)); }

void StateWriter::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

std::uint8_t StateReader::get_u8() {
  HYMM_CHECK_MSG(pos_ < size_, "checkpoint payload truncated");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t StateReader::get_u32() {
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(get_u8()) << shift;
  }
  return v;
}

std::uint64_t StateReader::get_u64() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(get_u8()) << shift;
  }
  return v;
}

float StateReader::get_f32() { return std::bit_cast<float>(get_u32()); }

double StateReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string checkpoint_key_hex(const CheckpointKey& key) {
  char buf[2 * 18 + 2];
  std::snprintf(buf, sizeof(buf), "0x%016llx_0x%016llx",
                static_cast<unsigned long long>(key.workload),
                static_cast<unsigned long long>(key.config));
  return buf;
}

std::vector<std::byte> seal_checkpoint(const CheckpointKey& key,
                                       std::vector<std::byte> payload) {
  StateWriter header;
  header.put_u64(kMagic);
  header.put_u64(key.workload);
  header.put_u64(key.config);
  header.put_u64(static_cast<std::uint64_t>(payload.size()));
  std::vector<std::byte> blob = header.take();
  blob.insert(blob.end(), payload.begin(), payload.end());
  StateWriter footer;
  footer.put_u64(fnv1a64(payload.data(), payload.size()));
  const std::vector<std::byte>& tail = footer.bytes();
  blob.insert(blob.end(), tail.begin(), tail.end());
  return blob;
}

bool open_checkpoint(const std::vector<std::byte>& blob,
                     const CheckpointKey& key, const std::byte** payload,
                     std::size_t* payload_size) {
  constexpr std::size_t kHeaderBytes = 4 * 8;
  constexpr std::size_t kFooterBytes = 8;
  if (blob.size() < kHeaderBytes + kFooterBytes) return false;
  StateReader header(blob.data(), kHeaderBytes);
  if (header.get_u64() != kMagic) return false;
  if (header.get_u64() != key.workload) return false;
  if (header.get_u64() != key.config) return false;
  const std::uint64_t size = header.get_u64();
  if (size != blob.size() - kHeaderBytes - kFooterBytes) return false;
  const std::byte* body = blob.data() + kHeaderBytes;
  StateReader footer(blob.data() + kHeaderBytes + size, kFooterBytes);
  if (footer.get_u64() != fnv1a64(body, size)) return false;
  *payload = body;
  *payload_size = static_cast<std::size_t>(size);
  return true;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    // Unwritable directories surface later as load/store misses, never
    // as errors: persistence is strictly best-effort.
  }
}

std::string CheckpointStore::file_for(const CheckpointKey& key) const {
  return dir_ + "/ckpt_" + checkpoint_key_hex(key) + ".bin";
}

std::shared_ptr<const std::vector<std::byte>> CheckpointStore::get_or_build(
    const CheckpointKey& key,
    const std::function<std::vector<std::byte>()>& build, bool* was_built) {
  if (was_built != nullptr) *was_built = false;
  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Entry>& slot = entries_[checkpoint_key_hex(key)];
    if (slot == nullptr) slot = std::make_unique<Entry>();
    entry = slot.get();
  }
  bool built_here = false;
  std::call_once(entry->once, [&] {
    // Disk first: a prior process may have persisted this workload.
    if (!dir_.empty()) {
      std::ifstream in(file_for(key), std::ios::binary | std::ios::ate);
      if (in) {
        const std::streamsize size = in.tellg();
        in.seekg(0);
        std::vector<std::byte> blob(
            size > 0 ? static_cast<std::size_t>(size) : 0);
        if (!blob.empty()) {
          in.read(reinterpret_cast<char*>(blob.data()), size);
        }
        if (!in) blob.clear();
        const std::byte* payload = nullptr;
        std::size_t payload_size = 0;
        if (open_checkpoint(blob, key, &payload, &payload_size)) {
          entry->blob =
              std::make_shared<const std::vector<std::byte>>(std::move(blob));
          disk_loads_.fetch_add(1);
          return;
        }
        // Corrupted / truncated / foreign blob: fall through to a
        // cold build (which rewrites the file).
      }
    }
    std::vector<std::byte> blob = build();
    builds_.fetch_add(1);
    built_here = true;
    if (!dir_.empty()) {
      // Write via a unique temp name + rename so concurrent processes
      // never observe a half-written checkpoint.
      const std::string path = file_for(key);
      const std::string tmp =
          path + ".tmp." +
          std::to_string(
              reinterpret_cast<std::uintptr_t>(static_cast<void*>(entry)));
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (out) {
        out.write(reinterpret_cast<const char*>(blob.data()),
                  static_cast<std::streamsize>(blob.size()));
        out.close();
        std::error_code ec;
        if (out.good()) {
          std::filesystem::rename(tmp, path, ec);
        }
        if (!out.good() || ec) std::filesystem::remove(tmp, ec);
      }
    }
    entry->blob = std::make_shared<const std::vector<std::byte>>(std::move(blob));
  });
  if (was_built != nullptr) *was_built = built_here;
  if (!built_here) hits_.fetch_add(1);
  return entry->blob;
}

}  // namespace hymm
