#include "sim/pe.hpp"

#include "common/check.hpp"
#include "obs/hooks.hpp"
#include "sim/checkpoint.hpp"

namespace hymm {

PeArray::PeArray(const AcceleratorConfig& config, SimStats& stats)
    : pe_count_(config.pe_count), stats_(stats) {}

bool PeArray::can_issue(Cycle now) const {
  return last_issue_cycle_ != now;
}

void PeArray::mark_busy(Cycle now) {
  HYMM_DCHECK(can_issue(now));
  last_issue_cycle_ = now;
  ++stats_.alu_busy_cycles;
}

void PeArray::mac(Value scalar, std::span<const Value> in,
                  std::span<Value> out, Cycle now) {
  HYMM_DCHECK(in.size() == out.size());
  mark_busy(now);
  ++stats_.mac_ops;
  HYMM_OBS(obs_, on_pe_mac(in.size()));
  for (std::size_t i = 0; i < in.size(); ++i) out[i] += scalar * in[i];
}

void PeArray::add(std::span<const Value> in, std::span<Value> out,
                  Cycle now) {
  HYMM_DCHECK(in.size() == out.size());
  mark_busy(now);
  ++stats_.merge_adds;
  HYMM_OBS(obs_, on_pe_merge(in.size()));
  for (std::size_t i = 0; i < in.size(); ++i) out[i] += in[i];
}

void PeArray::merge_op(Cycle now) {
  mark_busy(now);
  ++stats_.merge_adds;
  // A merge op engages the whole array width.
  HYMM_OBS(obs_, on_pe_merge(pe_count_));
}

void PeArray::stall(Cycle now) { last_issue_cycle_ = now; }

void PeArray::save_state(StateWriter& w) const {
  w.put_u64(last_issue_cycle_);
}

void PeArray::load_state(StateReader& r) { last_issue_cycle_ = r.get_u64(); }

}  // namespace hymm
