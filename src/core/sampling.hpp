/// @file
/// Sampled simulation mode (--sample / HYMM_SAMPLE): instead of
/// simulating every non-zero of a layer, each phase simulates a
/// deterministic, seeded subset of contiguous tile bands in full
/// cycle-accurate detail — row bands of the streamed CSR for
/// RWP-family phases, column bands of the streamed CSC for OP-family
/// phases — and extrapolates cycles, stall vectors and DRAM bytes to
/// the whole phase with a non-zero-weighted ratio estimator.
///
/// Estimator. Bands are near-equal spans of the streamed dimension;
/// with fraction f and B bands, k = max(1, round(f*B)) bands are
/// chosen by seeded stratified selection (one uniform draw per
/// contiguous stratum of bands, so every part of the degree
/// distribution is represented). All bands of the whole layer run
/// back-to-back on ONE shared MemorySystem with the canonical
/// W/XW/AXW/spill address layout of an exact run, so warm state (the
/// W working set in combination, the XW lines the aggregation phase
/// inherits) carries across bands and phases exactly as it does in a
/// full run. With per-band cycles y_i and non-zeros x_i, the phase
/// estimate is warm-start-corrected: the first band pays the phase's
/// compulsory misses and enters the estimate once, unscaled, while
/// only the warm bands' rate R_warm = sum_{i>=2} y_i / sum_{i>=2} x_i
/// is extrapolated — t = y_1 + R_warm * (X - x_1) for phase total X.
/// Every other additive counter scales the same way (scale_stats,
/// which keeps the stall-bucket invariant exact). The reported
/// 1-sigma error bar is the ratio-estimator standard error with
/// finite-population correction over the warm bands' residuals
/// e_i = y_i - R_warm*x_i.
///
/// Bias control beyond the warm-start correction: each band restarts
/// its engine (a pipeline drain an exact run pays once per phase), so
/// band_target is lowered until every band holds at least
/// min_band_nnz non-zeros, and phases below min_nnz simulated
/// non-zeros raise their effective fraction toward 1 (an exact phase)
/// — extrapolating tiny phases saves nothing and biases most. The
/// documented and tested accuracy bound (docs/performance.md,
/// tests/test_sampling.cpp) covers the residual bias plus noise;
/// sampled results are labeled `sampled: true`, are never
/// functionally verified, and are never gated against exact
/// snapshots (scripts/perf_compare refuses mixed pairs).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "graph/csr.hpp"
#include "graph/degree_sort.hpp"
#include "graph/partition.hpp"
#include "linalg/dense.hpp"
#include "sim/stats.hpp"

namespace hymm {

/// Knobs of one sampled layer run.
struct SampleOptions {
  /// Fraction of bands simulated per phase, in (0, 1].
  double fraction = 0.25;
  /// Seed of the stratified band selection (combined per phase with a
  /// phase tag, so phases draw independent bands).
  std::uint64_t seed = 42;
  /// Target band count per phase before the fraction is applied; the
  /// effective count is capped by the streamed dimension's extent and
  /// lowered so every band holds at least min_band_nnz non-zeros.
  NodeId band_target = 16;
  /// Minimum non-zeros per band: each band restarts the engine (a
  /// pipeline/window drain an exact run pays only once per phase), so
  /// bands must be large enough to amortize it or the extrapolated
  /// restart cost dominates small phases. Phases too small for even
  /// two such bands collapse to a single band covering everything —
  /// an exact phase simulation.
  std::uint64_t min_band_nnz = 1u << 14;
  /// Adaptive floor: a phase keeps at least this many simulated
  /// non-zeros, raising its effective fraction up to 1 on small
  /// phases. Sampling cannot pay for itself there (the whole phase is
  /// milliseconds) while per-band extrapolation bias is at its worst,
  /// so small phases degrade gracefully toward a full simulation.
  std::uint64_t min_nnz = 1u << 16;
};

/// One phase's sampled measurement and extrapolation.
struct PhaseSampleEstimate {
  std::uint64_t bands_total = 0;      ///< bands the phase was split into
  std::uint64_t bands_simulated = 0;  ///< bands actually simulated
  std::uint64_t nnz_total = 0;        ///< non-zeros of the whole phase
  std::uint64_t nnz_simulated = 0;    ///< non-zeros in simulated bands
  double cycles_estimate = 0.0;       ///< ratio-estimator cycle total
  /// Approximate 1-sigma standard error of cycles_estimate
  /// (finite-population-corrected ratio estimator; 0 when fewer than
  /// two bands were simulated — no variance information).
  double cycles_stderr = 0.0;
  /// Extrapolated counters (cycles, stall vector, DRAM bytes, ...);
  /// the stall-bucket invariant sum(stall_cycles) == cycles holds.
  SimStats stats;
};

/// The sampled-run annotation carried by ExperimentResult and
/// serialized as the "sample" object of hymm-run-report/8.
struct SampleInfo {
  bool enabled = false;   ///< true on sampled runs
  double fraction = 0.0;  ///< requested band fraction
  std::uint64_t seed = 0; ///< band-selection seed
  PhaseSampleEstimate combination;  ///< XW-phase estimate
  PhaseSampleEstimate aggregation;  ///< aggregation-phase estimate

  double cycles_estimate() const {
    return combination.cycles_estimate + aggregation.cycles_estimate;
  }
  /// 1-sigma error of the whole-layer estimate (phases independent).
  double cycles_stderr() const;
  /// Relative half-width of the ~95% interval: 2*sigma / estimate.
  double rel_error_bound() const;
};

/// Everything one sampled layer run needs (mirrors LayerRunRequest;
/// observers and checkpoints do not apply to sampled runs).
struct SampledLayerRequest {
  Dataflow flow = Dataflow::kRowWiseProduct;
  const CsrMatrix* a_hat = nullptr;  ///< required: normalized adjacency
  const CsrMatrix* x = nullptr;      ///< required: feature matrix
  const DenseMatrix* w = nullptr;    ///< required: layer weights
  const DegreeSortResult* sort = nullptr;      ///< optional precomputed sort
  const CsrMatrix* sorted_features = nullptr;  ///< features under `sort`
  SampleOptions options;
};

/// What a sampled layer run produces: extrapolated counters only — no
/// functional output (band runs retire MACs against scratch values),
/// so sampled results can never be verified against the golden model.
struct SampledLayerResult {
  Dataflow flow = Dataflow::kRowWiseProduct;
  SimStats stats;              ///< whole-layer extrapolated counters
  SimStats combination_stats;  ///< XW-phase extrapolation
  SimStats aggregation_stats;  ///< aggregation-phase extrapolation
  RegionPartition partition;   ///< hybrid only
  double preprocess_ms = 0.0;  ///< host preprocessing (hybrid sort)
  SampleInfo sample;           ///< estimator detail + error bars
};

/// Simulates a seeded subset of tile bands per phase and extrapolates
/// (see file comment). Deterministic for fixed (request, config).
SampledLayerResult run_layer_sampled(const AcceleratorConfig& config,
                                     const SampledLayerRequest& request);

/// The deterministic band selection, exposed for tests: splits
/// [0, extent) into near-equal bands of at most band_target count and
/// returns the stratified seeded choice of round(fraction * bands)
/// bands (at least one), in ascending order.
struct BandSelection {
  std::uint64_t bands_total = 0;
  std::vector<std::pair<NodeId, NodeId>> selected;  ///< [begin, end) spans
};
BandSelection select_sample_bands(NodeId extent, NodeId band_target,
                                  double fraction, std::uint64_t seed);

}  // namespace hymm
