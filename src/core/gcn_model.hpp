// Multi-layer GCN inference on the accelerator model: owns the
// normalized adjacency and the per-layer weights, runs each layer's
// combination+aggregation pair on the simulated hardware, applies
// ReLU / re-sparsification on the host between layers (activation is
// not part of the paper's accelerator), and verifies against the
// golden model.
#pragma once

#include <cstdint>
#include <vector>

#include "core/accelerator.hpp"
#include "graph/csr.hpp"
#include "linalg/dense.hpp"

namespace hymm {

class GcnModel {
 public:
  // a_hat must be square; weights[l].rows() must chain (layer 0's
  // input dimension is the feature length of whatever run() gets).
  // Layer dimensions above 16 span multiple 64-byte lines per row.
  GcnModel(CsrMatrix a_hat, std::vector<DenseMatrix> weights);

  // Convenience: Glorot-style random weights for the dimension chain
  // in_dim -> dims[0] -> dims[1] -> ...
  static GcnModel with_random_weights(CsrMatrix a_hat, NodeId in_dim,
                                      const std::vector<NodeId>& dims,
                                      std::uint64_t seed);

  NodeId nodes() const { return a_hat_.rows(); }
  std::size_t layer_count() const { return weights_.size(); }
  const CsrMatrix& a_hat() const { return a_hat_; }
  const std::vector<DenseMatrix>& weights() const { return weights_; }

  struct InferenceResult {
    DenseMatrix output;  // last layer's pre-activation output
    std::vector<LayerRunResult> layers;
    Cycle total_cycles = 0;
    std::uint64_t total_dram_bytes = 0;
    double total_preprocess_ms = 0.0;
    bool verified = false;
    double max_abs_err = 0.0;

    double runtime_ms(double clock_ghz = 1.0) const {
      return static_cast<double>(total_cycles) / (clock_ghz * 1e6);
    }
  };

  // Simulates the whole network under one dataflow. When verify is
  // set, the output is compared against reference(features).
  InferenceResult run(Dataflow flow, const CsrMatrix& features,
                      const AcceleratorConfig& config,
                      bool verify = true) const;

  // Host-side golden inference (ReLU between layers, none after the
  // last).
  DenseMatrix reference(const CsrMatrix& features) const;

 private:
  CsrMatrix a_hat_;
  std::vector<DenseMatrix> weights_;
};

}  // namespace hymm
