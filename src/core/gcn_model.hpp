/// @file
/// Multi-layer GCN inference on the accelerator model: owns the
/// normalized adjacency and the per-layer weights, runs each layer's
/// combination+aggregation pair on the simulated hardware, applies
/// ReLU / re-sparsification on the host between layers (activation is
/// not part of the paper's accelerator), and verifies against the
/// golden model.
#pragma once

#include <cstdint>
#include <vector>

#include "core/accelerator.hpp"
#include "graph/csr.hpp"
#include "graph/degree_sort.hpp"
#include "linalg/dense.hpp"

namespace hymm {

/// A whole GCN (normalized adjacency + per-layer weights) simulated
/// layer by layer on the accelerator model.
class GcnModel {
 public:
  /// a_hat must be square; weights[l].rows() must chain (layer 0's
  /// input dimension is the feature length of whatever run() gets).
  /// Layer dimensions above 16 span multiple 64-byte lines per row.
  GcnModel(CsrMatrix a_hat, std::vector<DenseMatrix> weights);

  /// Convenience: Glorot-style random weights for the dimension chain
  /// in_dim -> dims[0] -> dims[1] -> ...
  static GcnModel with_random_weights(CsrMatrix a_hat, NodeId in_dim,
                                      const std::vector<NodeId>& dims,
                                      std::uint64_t seed);

  /// Number of graph nodes (rows of the adjacency).
  NodeId nodes() const { return a_hat_.rows(); }
  /// Number of layers (one weight matrix each).
  std::size_t layer_count() const { return weights_.size(); }
  /// The normalized adjacency Â.
  const CsrMatrix& a_hat() const { return a_hat_; }
  /// Per-layer weight matrices.
  const std::vector<DenseMatrix>& weights() const { return weights_; }

  /// Outcome of one whole-network inference (`run`).
  struct InferenceResult {
    DenseMatrix output;  ///< last layer's pre-activation output
    /// Per-layer simulation outcomes, in layer order.
    std::vector<LayerRunResult> layers;
    Cycle total_cycles = 0;               ///< summed over layers
    std::uint64_t total_dram_bytes = 0;   ///< summed over layers
    double total_preprocess_ms = 0.0;     ///< host-side preprocessing
    bool verified = false;                ///< output matched reference()
    double max_abs_err = 0.0;             ///< worst element error

    /// Wall-clock the modeled hardware would take at clock_ghz.
    /// Convention (shared with ExperimentResult::runtime_ms and pinned
    /// by tests): cycles / (clock_ghz * 1e9) seconds, i.e.
    /// cycles / (clock_ghz * 1e6) milliseconds — at 1 GHz, 1e6 cycles
    /// is exactly 1 ms.
    double runtime_ms(double clock_ghz = 1.0) const {
      return static_cast<double>(total_cycles) / (clock_ghz * 1e6);
    }
  };

  /// Everything one inference needs, named instead of positional —
  /// mirrors ExperimentRequest (core/runner.hpp) and LayerRunRequest
  /// (core/accelerator.hpp). `features` is required. `observer`
  /// (optional) collects metrics/trace events for every layer; it
  /// never affects timing. `sort` + `sorted_features` optionally hand
  /// the hybrid its degree-sorting preprocessing precomputed (e.g. the
  /// sweep executor's PreparedWorkload::sort()): when set, the sort is
  /// applied once and shared by every layer instead of re-sorting
  /// a_hat per layer, so total_preprocess_ms drops to the host-side
  /// row-permutation cost. sorted_features must be `features` under
  /// sort->perm; ignored for the homogeneous dataflows. Simulated
  /// cycles are identical either way — sorting is host preprocessing.
  struct InferenceRequest {
    Dataflow flow = Dataflow::kRowWiseProduct;  ///< dataflow to simulate
    const CsrMatrix* features = nullptr;        ///< required: input features
    AcceleratorConfig config;                   ///< hardware parameters
    bool verify = true;          ///< compare output against reference()
    Observer* observer = nullptr;            ///< optional; never affects timing
    const DegreeSortResult* sort = nullptr;  ///< optional precomputed sort
    const CsrMatrix* sorted_features = nullptr;  ///< features under `sort`
    /// Optional warm-state checkpoint store (sim/checkpoint.hpp),
    /// passed to every layer run; ignored when `observer` is set.
    CheckpointStore* checkpoints = nullptr;
  };

  /// Simulates the whole network under the request's dataflow. When
  /// request.verify is set, the output is compared against
  /// reference(*request.features).
  InferenceResult run(const InferenceRequest& request) const;

  /// Deprecated positional overload (kept for one PR — new callers
  /// fill an InferenceRequest); equivalent to a request with only
  /// flow/features/config/verify set.
  InferenceResult run(Dataflow flow, const CsrMatrix& features,
                      const AcceleratorConfig& config,
                      bool verify = true) const;

  /// Host-side golden inference (ReLU between layers, none after the
  /// last).
  DenseMatrix reference(const CsrMatrix& features) const;

 private:
  CsrMatrix a_hat_;
  std::vector<DenseMatrix> weights_;
};

}  // namespace hymm
