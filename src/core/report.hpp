// Human-readable and CSV renderings of simulation statistics, shared
// by the bench binaries, the examples and external tooling.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "core/runner.hpp"
#include "sim/stats.hpp"

namespace hymm {

// Multi-line summary of one run's counters (cycles, utilization, hit
// rates, traffic by class, partial footprint).
void print_stats_summary(const SimStats& stats, std::ostream& out,
                         const std::string& indent = "  ");

// One-line "class=bytes" breakdown of DRAM traffic.
std::string dram_breakdown_string(const SimStats& stats);

// Machine-readable experiment dump: one row per result with a fixed
// header (dataset, flow, cycles, utilization, hit rate, per-class
// bytes, partial peak, verification).
void write_results_csv(std::span<const ExperimentResult> results,
                       std::ostream& out);

}  // namespace hymm
