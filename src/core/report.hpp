/// @file
/// Human-readable, CSV and JSON renderings of simulation statistics,
/// shared by the bench binaries, the examples and external tooling.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "core/runner.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"

namespace hymm {

class TraceWriter;

/// Multi-line summary of one run's counters (cycles, utilization, hit
/// rates, traffic by class, partial footprint), the stall breakdown
/// and the bottleneck verdict. A non-zero `peak_bytes_per_cycle`
/// (the configured DRAM peak) adds the bandwidth-roofline line.
void print_stats_summary(const SimStats& stats, std::ostream& out,
                         const std::string& indent = "  ",
                         std::uint64_t peak_bytes_per_cycle = 0);

/// One-line "class=bytes" breakdown of DRAM traffic.
std::string dram_breakdown_string(const SimStats& stats);

/// RFC 4180 field quoting: wraps `field` in double quotes (doubling
/// embedded quotes) when it contains a comma, quote, CR or LF;
/// otherwise returns it unchanged.
std::string csv_quote(const std::string& field);

/// Machine-readable experiment dump: one row per result with a fixed
/// header (dataset, flow, cycles, utilization, hit rate, per-class
/// bytes, partial peak, verification, per-cause stall cycles,
/// bottleneck verdict, DRAM bandwidth utilization, the LSQ/DRAM
/// latency quantiles — zero without an observer — and the PE/row-band
/// load-imbalance summary — zero without --spatial). String fields
/// are csv_quote()d.
void write_results_csv(std::span<const ExperimentResult> results,
                       std::ostream& out);

/// JSON run report (schema "hymm-run-report/8"; spec in
/// docs/schemas.md): one object per result carrying the full SimStats
/// counter set (whole layer plus the combination/aggregation phase
/// deltas and, for hybrid runs, the per-region breakdown), each with
/// its stall-cycle breakdown and bottleneck verdict, plus the
/// partition, the verification verdict, — when a result was
/// auto-tuned — the tuner decision under "tune", — when a tiles
/// --route mode ran — the routing attribution under "route", — when
/// an observer was attached — the latency-histogram summary under
/// "histograms" and the windowed telemetry under "timeseries", and
/// — with --spatial — the tile heatmap and per-PE counters under
/// "spatial".
/// When `metrics` is non-null its counters/gauges/histograms
/// are appended under "metrics"; when `trace` is non-null its event
/// and dropped-instant counts are appended under "trace". Output is
/// valid JSON (obs/json.hpp's json_is_valid accepts it).
void write_results_json(std::span<const ExperimentResult> results,
                        std::ostream& out,
                        const MetricsRegistry* metrics = nullptr,
                        const TraceWriter* trace = nullptr);

}  // namespace hymm
