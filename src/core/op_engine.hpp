/// @file
/// Outer-product engine (Fig 1b; represents GCNAX, and runs HyMM's
/// region 1).
///
/// Streaming stage: for each column j of the sparse matrix the dense
/// row B[j] is loaded once and held input-stationary in the PEs; every
/// non-zero (i, j) retires one MAC and emits a partial-output line for
/// row i. With the near-memory accumulator the partial folds into the
/// DMB in place (missing lines are allocated and may spill); without
/// it, every partial is appended as a 68-byte record to a spill heap.
///
/// Merge stage (skipped when the outputs are pinned, i.e. HyMM region
/// 1): spilled records stream back and the PE adders fold them into
/// the output rows — a random read-modify-write per record whose
/// working set rotates through the buffer. This is the "merging
/// partial outputs" disruption of Section V-B: the PEs wait on the
/// record stream, on refetches of previously-merged rows and on
/// eviction writebacks.
///
/// Flush stage: every touched output row is written once as the final
/// result.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "common/lru_list.hpp"
#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "linalg/dense.hpp"

namespace hymm {

/// Inputs of one OpEngine run.
struct OpEngineParams {
  const CscMatrix* sparse = nullptr;  ///< sparse operand, column order
  /// Traffic class the sparse operand's stream is accounted under.
  TrafficClass sparse_class = TrafficClass::kAdjacency;

  const DenseMatrix* b = nullptr;  ///< indexed by sparse column id
  AddressRegion b_region;          ///< address range backing `b`
  /// Traffic class dense-row fetches are accounted under.
  TrafficClass b_class = TrafficClass::kCombined;

  DenseMatrix* c = nullptr;  ///< output matrix
  AddressRegion c_region;    ///< address range backing `c`
  /// Class of the final (merged) output writes: kOutput for
  /// aggregation, kCombined when OP runs the combination phase.
  TrafficClass c_final_class = TrafficClass::kOutput;

  /// Spill heap for partial records (append mode and readbacks).
  AddressRegion spill_region;

  /// Near-memory accumulator (Section IV-D). Off reproduces the
  /// "w/o accumulator" series of Fig 10.
  bool accumulate_in_buffer = true;

  /// HyMM region-1 mode: the caller pre-pinned all output lines, so
  /// partials always merge in place and the caller writes the outputs
  /// back on unpin; merge and flush stages are skipped.
  bool outputs_pinned = false;

  NodeId row_offset = 0;  ///< rebase local output rows to global rows
  /// Rebase local sparse column ids to global B rows / addresses. Zero
  /// everywhere except sampled column-band runs (core/sampling.hpp),
  /// where the streamed CSC is a column slice of the full operand.
  NodeId col_offset = 0;
  std::size_t window = 64;  ///< maximum in-flight non-zeros

  /// Spatial attribution (obs/spatial.hpp): when the sparse operand is
  /// the adjacency matrix itself, retired MACs focus the observer's
  /// tile grid under `spatial_region`. Off (the default) for the
  /// combination phase, whose coordinates live in feature space.
  bool spatial_in_grid = false;
  /// Region label retired MACs are attributed to on the tile grid.
  SpatialRegion spatial_region = SpatialRegion::kOp;
};

/// The outer-product dataflow engine.
class OpEngine final : public Engine {
 public:
  /// The memory system is needed at construction to attach the SMQ
  /// stream. Parameter pointers must outlive the engine.
  OpEngine(MemorySystem& ms, const OpEngineParams& params);

  bool done(const MemorySystem& ms) const override;
  void tick(MemorySystem& ms) override;
  StallCause cycle_cause() const override { return cause_; }
  bool quiescent() const override { return !progressed_; }
  /// The merge stage's record-stream warm-up is the one engine-owned
  /// timer: nothing happens until merge_ready_cycle_.
  Cycle next_event(Cycle now) const override {
    return stage_ == Stage::kMerge && now < merge_ready_cycle_
               ? merge_ready_cycle_
               : kNoEvent;
  }

  /// Spill records folded by the merge stage (tests, stats reports).
  std::uint64_t spill_records_merged() const { return merged_records_; }
  /// Output rows with at least one non-zero (tests, stats reports).
  NodeId rows_touched() const { return rows_touched_; }

 private:
  enum class Stage { kStream, kMergeSetup, kMerge, kFlush, kDone };

  // Working-set model of the merge stage: which output rows currently
  // sit in the on-chip buffer while records are folded. LRU over row
  // ids with the DMB's line capacity.
  class MergeRowSet {
   public:
    explicit MergeRowSet(std::size_t capacity, NodeId rows);

    enum class Access {
      kHit,        // row resident: fold is free
      kFreshMiss,  // first touch: allocate, no refetch needed
      kRefetch,    // row rotated out earlier: its partial sum must be
                   // re-read from DRAM
    };

    struct Result {
      Access access = Access::kHit;
      bool evicted = false;   // a victim row was written back
      NodeId victim = 0;      // valid when evicted
    };

    Result touch(NodeId row);
    std::size_t resident() const { return lru_.size(); }

   private:
    std::size_t capacity_;
    LruList<NodeId> lru_;  // front = oldest
    std::vector<LruList<NodeId>::Handle> where_;
    std::vector<bool> present_;
    std::vector<bool> seen_;
  };

  struct Pending {
    NodeId col = 0;  // sparse column (selects the stationary B row)
    NodeId row = 0;  // local output row
    Value value = 0.0f;
    std::size_t chunk = 0;   // which 16-lane slice of the dense row
    bool has_load = false;   // first entry of a column loads B[col]
    LoadStoreQueue::EntryId load_id = 0;
  };

  void tick_stream(MemorySystem& ms);
  void tick_merge(MemorySystem& ms);
  void tick_flush(MemorySystem& ms);

  std::span<const Value> b_lanes(NodeId row, std::size_t chunk) const;
  std::span<Value> c_lanes(NodeId row, std::size_t chunk) const;

  // Next output-line id in traversal order (append-mode merge replay).
  NodeId next_merge_line(const CscMatrix& sparse);

  // Records one partial-output emission in append (no-accumulator)
  // mode: 68 bytes to the spill heap.
  void append_partial_record(MemorySystem& ms);

  OpEngineParams params_;
  std::size_t chunks_ = 1;  // 64-byte lines per dense row
  Stage stage_ = Stage::kStream;
  // Cycle accounting: what this tick was spent on (set every tick).
  StallCause cause_ = StallCause::kDrain;
  std::deque<Pending> pending_;
  // Issue-slot staging buffer, reused across cycles to avoid a heap
  // allocation per issued non-zero.
  std::vector<Pending> staged_;
  bool store_stalled_ = false;
  Addr stalled_store_line_ = 0;
  // Fast-forward quiescence: set whenever a tick mutates engine or
  // memory-system state, or blocks on a time-flipping predicate
  // (PeArray::can_issue) and must therefore re-run next cycle.
  bool progressed_ = false;

  NodeId rows_touched_ = 0;  // rows of c with at least one non-zero

  // Append-mode spill bookkeeping.
  std::uint64_t appended_records_ = 0;
  std::uint64_t appended_bytes_ = 0;

  // Merge-stage bookkeeping.
  std::uint64_t records_to_merge_ = 0;
  std::uint64_t merged_records_ = 0;
  std::uint64_t merge_bytes_read_ = 0;
  std::size_t merge_record_bytes_ = kLineBytes;
  Cycle merge_ready_cycle_ = 0;
  std::uint64_t spills_before_ = 0;
  // Append-mode merge replays the traversal's (row, chunk) sequence.
  NodeId merge_cursor_outer_ = 0;
  EdgeCount merge_cursor_k_ = 0;
  std::size_t merge_cursor_chunk_ = 0;
  std::unique_ptr<MergeRowSet> merge_rows_;

  // Pointer-guided prefetcher over upcoming stationary columns (the
  // SMQ pointer buffer exposes future column ids ahead of the index
  // stream, so the OP input stream behaves sequentially).
  NodeId pf_col_ = 0;      // next column to prefetch
  std::size_t pf_ahead_ = 0;  // prefetched, not yet consumed

  // Flush-stage bookkeeping (output lines, not rows).
  std::uint64_t flushed_lines_ = 0;
};

}  // namespace hymm
