#include "core/op_engine.hpp"

#include <algorithm>
#include <optional>

#include "common/check.hpp"
#include "obs/hooks.hpp"

namespace hymm {

namespace {
// A spilled partial record carries a 64-byte vector plus a 4-byte row
// index — the 68 bytes of an LSQ entry (Table III).
constexpr std::size_t kPartialRecordBytes = 68;
// Packed records cross one extra line per this many records
// (16 * 68 B = 17 lines).
constexpr std::uint64_t kRecordsPerExtraLine = 16;

std::size_t lines_per_row(NodeId cols) {
  return (static_cast<std::size_t>(cols) + kLaneCount - 1) / kLaneCount;
}
}  // namespace

OpEngine::OpEngine(MemorySystem& ms, const OpEngineParams& params)
    : params_(params) {
  HYMM_CHECK(params_.sparse != nullptr && params_.b != nullptr &&
             params_.c != nullptr);
  HYMM_CHECK(params_.sparse->cols() + params_.col_offset <=
             params_.b->rows());
  HYMM_CHECK(params_.c->cols() == params_.b->cols());
  HYMM_CHECK(params_.sparse->rows() + params_.row_offset <=
             params_.c->rows());
  HYMM_CHECK(params_.window > 0);
  HYMM_CHECK_MSG(!params_.outputs_pinned || params_.accumulate_in_buffer,
                 "pinned outputs require the near-memory accumulator");
  chunks_ = lines_per_row(params_.b->cols());
  HYMM_CHECK_MSG(params_.window >= chunks_,
                 "engine window smaller than one dense row");
  staged_.reserve(chunks_);

  // Count distinct output rows (needed for the flush stage).
  std::vector<bool> touched(params_.sparse->rows(), false);
  for (const NodeId r : params_.sparse->row_idx()) touched[r] = true;
  rows_touched_ = static_cast<NodeId>(
      std::count(touched.begin(), touched.end(), true));

  spills_before_ = ms.stats().dmb_partial_spills;
  ms.smq().attach_csc(*params_.sparse, params_.sparse_class);
}

bool OpEngine::done(const MemorySystem& ms) const {
  (void)ms;
  return stage_ == Stage::kDone;
}

void OpEngine::tick(MemorySystem& ms) {
  progressed_ = false;
  switch (stage_) {
    case Stage::kStream:
      tick_stream(ms);
      break;
    case Stage::kMergeSetup: {
      progressed_ = true;  // the stage transition below is observable
      cause_ = StallCause::kMergeRmw;
      if (params_.accumulate_in_buffer) {
        records_to_merge_ =
            ms.stats().dmb_partial_spills - spills_before_;
        merge_record_bytes_ = kLineBytes;
      } else {
        records_to_merge_ = appended_records_;
        merge_record_bytes_ = kPartialRecordBytes;
        merge_rows_ = std::make_unique<MergeRowSet>(
            ms.config().dmb_lines(),
            static_cast<NodeId>(params_.sparse->rows() * chunks_));
      }
      merge_ready_cycle_ = ms.now() + ms.config().dram_latency;
      stage_ = records_to_merge_ > 0 ? Stage::kMerge : Stage::kFlush;
      break;
    }
    case Stage::kMerge:
      tick_merge(ms);
      break;
    case Stage::kFlush:
      tick_flush(ms);
      break;
    case Stage::kDone:
      cause_ = StallCause::kDrain;
      break;
  }
}

std::span<const Value> OpEngine::b_lanes(NodeId row,
                                         std::size_t chunk) const {
  const auto full = params_.b->row(row);
  const std::size_t begin = chunk * kLaneCount;
  return full.subspan(begin, std::min(kLaneCount, full.size() - begin));
}

std::span<Value> OpEngine::c_lanes(NodeId row, std::size_t chunk) const {
  const auto full = params_.c->row(row);
  const std::size_t begin = chunk * kLaneCount;
  return full.subspan(begin, std::min(kLaneCount, full.size() - begin));
}

void OpEngine::append_partial_record(MemorySystem& ms) {
  const Addr line =
      params_.spill_region.base +
      (appended_bytes_ / kLineBytes) * kLineBytes;
  // Back-pressure was checked by the caller; the extra overhead line
  // books the bandwidth the 68-byte packing costs beyond one line per
  // 16 records.
  ms.dram().issue_write(line, TrafficClass::kPartial, ms.now());
  ++appended_records_;
  appended_bytes_ += kLineBytes;
  if (appended_records_ % kRecordsPerExtraLine == 0) {
    ms.dram().issue_write(params_.spill_region.base + appended_bytes_,
                          TrafficClass::kPartial, ms.now());
    appended_bytes_ += kLineBytes;
  }
  ms.stats().note_partial_bytes(
      static_cast<std::int64_t>(kPartialRecordBytes));
}

void OpEngine::tick_stream(MemorySystem& ms) {
  // Cycle accounting: the retire slot decides the cycle's cause; when
  // it neither retires nor identifies a blocker, the fall-through
  // after issue charges the pipeline-fill state.
  std::optional<StallCause> attributed;

  // --- Retire (one chunk-sized MAC per cycle) ---
  bool may_retire = true;
  if (store_stalled_) {
    if (ms.lsq().store(stalled_store_line_, TrafficClass::kPartial,
                       StoreKind::kAccumulate, ms.now())) {
      store_stalled_ = false;
      progressed_ = true;
    } else {
      may_retire = false;
      attributed = StallCause::kAccumulatorConflict;
    }
  }
  if (may_retire && !pending_.empty()) {
    Pending& head = pending_.front();
    const bool stationary_ready =
        !head.has_load || ms.lsq().is_ready(head.load_id);
    // Append mode writes its partial record immediately at retire, so
    // the PE stalls when the DRAM write buffer is full — the paper's
    // "wasted cycles caused by merging partial outputs and waiting
    // for off-chip memory access" (Section V-B).
    const bool sink_ready = params_.accumulate_in_buffer ||
                            ms.dram().can_accept_write(ms.now());
    if (!stationary_ready) {
      attributed = stall_cause_for(ms.lsq().load_wait_state(head.load_id));
    } else if (!sink_ready) {
      attributed = StallCause::kDramBandwidth;
    } else if (!ms.pe().can_issue(ms.now())) {
      // Time-flipping predicate: never quiescent while PE-blocked.
      progressed_ = true;
      attributed = StallCause::kAccumulatorConflict;
    } else if (ms.lsq().free_entries() == 0) {
      attributed = StallCause::kLsqFull;
    }
    if (stationary_ready && sink_ready && ms.pe().can_issue(ms.now()) &&
        ms.lsq().free_entries() > 0) {
      attributed = StallCause::kCompute;
      progressed_ = true;
      const NodeId out_row = head.row + params_.row_offset;
      if (params_.spatial_in_grid) {
        // Adjacency coordinate of the retiring non-zero: focus its
        // tile so subsequent cycles/DRAM/DMB traffic attribute there.
        HYMM_OBS(ms.observer(),
                 spatial_mac(out_row, head.col, params_.spatial_region,
                             head.chunk == 0));
      }
      ms.pe().mac(head.value, b_lanes(head.col, head.chunk),
                  c_lanes(out_row, head.chunk), ms.now());
      if (head.has_load) {
        ms.lsq().release_load(head.load_id);
        if (head.chunk == 0 && pf_ahead_ > 0) --pf_ahead_;
      }

      HYMM_OBS(ms.observer(), observe_engine_window(pending_.size()));
      if (params_.accumulate_in_buffer) {
        const Addr line =
            params_.c_region.line_of(out_row, chunks_) +
            head.chunk * kLineBytes;
        if (!ms.lsq().store(line, TrafficClass::kPartial,
                            StoreKind::kAccumulate, ms.now())) {
          store_stalled_ = true;
          stalled_store_line_ = line;
        }
      } else {
        append_partial_record(ms);
      }
      pending_.pop_front();
    }
  }

  // --- Issue (one SMQ entry per cycle, expanded per chunk) ---
  if (pending_.size() + chunks_ <= params_.window && ms.smq().has_ready() &&
      ms.lsq().free_entries() >= chunks_ + 1) {
    const SmqEntry& entry = ms.smq().front();
    const NodeId global_col = entry.outer + params_.col_offset;
    const Addr base = params_.b_region.line_of(global_col, chunks_);
    bool ok = true;
    staged_.clear();
    for (std::size_t chunk = 0; chunk < chunks_ && ok; ++chunk) {
      Pending p;
      p.col = global_col;
      p.row = entry.inner;
      p.value = entry.value;
      p.chunk = chunk;
      if (entry.first_of_outer) {
        const auto load_id = ms.lsq().load(base + chunk * kLineBytes,
                                           params_.b_class, ms.now());
        if (!load_id.has_value()) {
          ok = false;
          break;
        }
        p.has_load = true;
        p.load_id = *load_id;
      }
      staged_.push_back(p);
    }
    if (ok) {
      for (Pending& p : staged_) pending_.push_back(p);
      ms.smq().pop();
      progressed_ = true;
    } else {
      // Release whatever we allocated and retry next cycle.
      for (Pending& p : staged_) {
        if (p.has_load) {
          // Entries are not ready yet; drop them by marking consumed.
          // (release_load requires readiness, so we simply leave them;
          // this path is unreachable because free_entries was checked.)
          HYMM_CHECK_MSG(false, "LSQ allocation failed despite headroom");
        }
      }
    }
  }

  // --- Pointer-guided prefetch of upcoming stationary rows ---
  const std::size_t depth = ms.config().op_prefetch_columns;
  std::size_t scanned = 0;  // bound per-cycle work over empty columns
  while (depth > 0 && pf_ahead_ < depth &&
         pf_col_ < params_.sparse->cols() && scanned < 64) {
    ++scanned;
    if (params_.sparse->col_nnz(pf_col_) == 0) {
      ++pf_col_;
      progressed_ = true;
      continue;
    }
    const Addr base =
        params_.b_region.line_of(pf_col_ + params_.col_offset, chunks_);
    bool issued_any = false;
    for (std::size_t chunk = 0; chunk < chunks_; ++chunk) {
      issued_any |= ms.dmb().prefetch(base + chunk * kLineBytes,
                                      params_.b_class, ms.now());
    }
    if (!issued_any && !ms.dram().can_accept_write(ms.now())) {
      break;  // channel saturated; try again next cycle
    }
    ++pf_ahead_;
    ++pf_col_;
    progressed_ = true;
  }

  // --- Stage transition ---
  if (ms.smq().finished() && pending_.empty() && !store_stalled_ &&
      ms.lsq().all_stores_drained()) {
    stage_ = params_.outputs_pinned ? Stage::kDone : Stage::kMergeSetup;
    progressed_ = true;
    // Merge/flush/writeback traffic is not attributable to a single
    // adjacency tile; it lands in the spatial residual bucket.
    HYMM_OBS(ms.observer(), spatial_unfocus());
  }

  // --- Resolve the cycle's cause ---
  if (attributed.has_value()) {
    cause_ = *attributed;
  } else if (!pending_.empty()) {
    // Freshly issued (or skipped) head: charge what it waits on.
    const Pending& head = pending_.front();
    cause_ = head.has_load
                 ? stall_cause_for(ms.lsq().load_wait_state(head.load_id))
                 : StallCause::kDmbMiss;  // pipeline fill bubble
  } else if (!ms.smq().finished()) {
    cause_ = ms.smq().has_ready() ? StallCause::kLsqFull
                                  : StallCause::kSmqBacklog;
  } else {
    cause_ = StallCause::kDrain;  // store/stage drain tail
  }
}

OpEngine::MergeRowSet::MergeRowSet(std::size_t capacity, NodeId rows)
    : capacity_(capacity),
      where_(rows),
      present_(rows, false),
      seen_(rows, false) {
  HYMM_CHECK(capacity_ > 0);
}

OpEngine::MergeRowSet::Result OpEngine::MergeRowSet::touch(NodeId row) {
  Result result;
  if (present_[row]) {
    lru_.move_to_back(where_[row]);
    result.access = Access::kHit;
    return result;
  }
  if (lru_.size() >= capacity_) {
    const NodeId victim = lru_.front_value();
    lru_.erase(lru_.front());
    present_[victim] = false;
    result.evicted = true;
    result.victim = victim;
  }
  result.access = seen_[row] ? Access::kRefetch : Access::kFreshMiss;
  seen_[row] = true;
  present_[row] = true;
  where_[row] = lru_.push_back(row);
  return result;
}

NodeId OpEngine::next_merge_line(const CscMatrix& sparse) {
  // Replays (row, chunk) pairs in the exact order records were
  // appended: traversal order, chunk-minor.
  while (merge_cursor_k_ >= sparse.col_nnz(merge_cursor_outer_)) {
    ++merge_cursor_outer_;
    merge_cursor_k_ = 0;
    HYMM_DCHECK(merge_cursor_outer_ < sparse.cols());
  }
  const NodeId row = sparse.col_rows(merge_cursor_outer_)[merge_cursor_k_];
  const auto line_id =
      static_cast<NodeId>(row * chunks_ + merge_cursor_chunk_);
  if (++merge_cursor_chunk_ == chunks_) {
    merge_cursor_chunk_ = 0;
    ++merge_cursor_k_;
  }
  return line_id;
}

void OpEngine::tick_merge(MemorySystem& ms) {
  // The whole stage is the paper's partial-output merge disruption;
  // cycles blocked on the record stream's first arrival or on channel
  // headroom are charged to the memory system, the rest to the merge.
  if (ms.now() < merge_ready_cycle_) {
    // Quiescent warm-up wait; next_event() exposes merge_ready_cycle_
    // so the fast path can jump straight to it.
    cause_ = StallCause::kDramLatency;
    return;
  }
  cause_ = StallCause::kMergeRmw;
  if (merged_records_ >= records_to_merge_) {
    stage_ = Stage::kFlush;
    progressed_ = true;
    return;
  }
  if (!ms.pe().can_issue(ms.now())) {
    // Time-flipping predicate: never quiescent while PE-blocked.
    progressed_ = true;
    return;
  }
  // Folding may evict a merged row (writeback) and may refetch an
  // earlier partial sum; both need channel headroom.
  if (!ms.dram().can_accept_write(ms.now())) {
    cause_ = StallCause::kDramBandwidth;
    return;
  }
  progressed_ = true;

  if (!params_.accumulate_in_buffer) {
    // Replay the traversal's row order: each record read-modifies the
    // output line it belongs to, rotating the buffer's working set.
    const NodeId line_id = next_merge_line(*params_.sparse);
    const MergeRowSet::Result access = merge_rows_->touch(line_id);
    if (access.evicted) {
      ms.dram().issue_write(
          params_.c_region.base + access.victim * kLineBytes,
          params_.c_final_class, ms.now());
    }
    if (access.access == MergeRowSet::Access::kRefetch) {
      ms.dram().issue_streaming_read(TrafficClass::kPartial, ms.now());
    }
  }

  // Stream the record itself (sequential readback of the spill heap).
  const std::uint64_t needed_bytes =
      (merged_records_ + 1) * merge_record_bytes_;
  while (merge_bytes_read_ < needed_bytes) {
    ms.dram().issue_streaming_read(TrafficClass::kPartial, ms.now());
    merge_bytes_read_ += kLineBytes;
  }
  ms.pe().merge_op(ms.now());
  HYMM_OBS(ms.observer(),
           observe_merge_depth(records_to_merge_ - merged_records_));
  ms.stats().note_partial_bytes(
      -static_cast<std::int64_t>(merge_record_bytes_));
  ++merged_records_;
  if (merged_records_ == records_to_merge_) stage_ = Stage::kFlush;
}

void OpEngine::tick_flush(MemorySystem& ms) {
  // Append mode: only the lines still resident in the merge working
  // set remain unwritten (evicted lines streamed out during kMerge).
  // Accumulate mode: DMB-resident partials first, then the rows whose
  // partials were merged from the spill heap.
  const std::uint64_t flush_target =
      !params_.accumulate_in_buffer && merge_rows_ != nullptr
          ? merge_rows_->resident()
          : static_cast<std::uint64_t>(rows_touched_) * chunks_;
  cause_ = StallCause::kDrain;
  if (flushed_lines_ >= flush_target) {
    stage_ = Stage::kDone;
    progressed_ = true;
    return;
  }
  if (!ms.dram().can_accept_write(ms.now())) {
    cause_ = StallCause::kDramBandwidth;
    return;
  }
  progressed_ = true;
  if (params_.accumulate_in_buffer) {
    if (!ms.dmb().writeback_one_partial(params_.c_final_class, ms.now())) {
      ms.dram().issue_write(
          params_.c_region.base + flushed_lines_ * kLineBytes,
          params_.c_final_class, ms.now());
    }
  } else {
    ms.dram().issue_write(
        params_.c_region.base + flushed_lines_ * kLineBytes,
        params_.c_final_class, ms.now());
  }
  ++flushed_lines_;
  if (flushed_lines_ == flush_target) stage_ = Stage::kDone;
}

}  // namespace hymm
