#include "core/gcn_model.hpp"

#include "common/check.hpp"
#include "linalg/gcn.hpp"

namespace hymm {

GcnModel::GcnModel(CsrMatrix a_hat, std::vector<DenseMatrix> weights)
    : a_hat_(std::move(a_hat)), weights_(std::move(weights)) {
  HYMM_CHECK(a_hat_.rows() == a_hat_.cols());
  HYMM_CHECK_MSG(!weights_.empty(), "need at least one layer");
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    if (l > 0) {
      HYMM_CHECK_MSG(weights_[l].rows() == weights_[l - 1].cols(),
                     "layer " << l << " input dimension does not chain");
    }
  }
}

GcnModel GcnModel::with_random_weights(CsrMatrix a_hat, NodeId in_dim,
                                       const std::vector<NodeId>& dims,
                                       std::uint64_t seed) {
  HYMM_CHECK(!dims.empty());
  std::vector<DenseMatrix> weights;
  NodeId prev = in_dim;
  for (std::size_t l = 0; l < dims.size(); ++l) {
    weights.push_back(DenseMatrix::random(prev, dims[l], seed + l));
    prev = dims[l];
  }
  return GcnModel(std::move(a_hat), std::move(weights));
}

GcnModel::InferenceResult GcnModel::run(Dataflow flow,
                                        const CsrMatrix& features,
                                        const AcceleratorConfig& config,
                                        bool verify) const {
  HYMM_CHECK(features.rows() == a_hat_.rows());
  HYMM_CHECK(features.cols() == weights_.front().rows());
  const Accelerator accelerator(config);

  InferenceResult result;
  CsrMatrix x = features;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    LayerRunResult layer =
        accelerator.run_layer(flow, a_hat_, x, weights_[l]);
    result.total_cycles += layer.stats.cycles;
    result.total_dram_bytes += layer.stats.dram_total_bytes();
    result.total_preprocess_ms += layer.preprocess_ms;
    const bool last = l + 1 == weights_.size();
    if (last) {
      result.output = layer.output;
    } else {
      DenseMatrix h = layer.output;
      relu_inplace(h);
      x = dense_to_csr(h);
    }
    result.layers.push_back(std::move(layer));
  }
  if (verify) {
    const DenseMatrix expected = reference(features);
    result.max_abs_err = DenseMatrix::max_abs_diff(result.output, expected);
    result.verified =
        DenseMatrix::allclose(result.output, expected, 1e-3, 1e-4);
  }
  return result;
}

DenseMatrix GcnModel::reference(const CsrMatrix& features) const {
  return gcn_inference_reference(a_hat_, features, weights_);
}

}  // namespace hymm
