#include "core/gcn_model.hpp"

#include "common/check.hpp"
#include "common/timer.hpp"
#include "linalg/gcn.hpp"

namespace hymm {

GcnModel::GcnModel(CsrMatrix a_hat, std::vector<DenseMatrix> weights)
    : a_hat_(std::move(a_hat)), weights_(std::move(weights)) {
  HYMM_CHECK(a_hat_.rows() == a_hat_.cols());
  HYMM_CHECK_MSG(!weights_.empty(), "need at least one layer");
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    if (l > 0) {
      HYMM_CHECK_MSG(weights_[l].rows() == weights_[l - 1].cols(),
                     "layer " << l << " input dimension does not chain");
    }
  }
}

GcnModel GcnModel::with_random_weights(CsrMatrix a_hat, NodeId in_dim,
                                       const std::vector<NodeId>& dims,
                                       std::uint64_t seed) {
  HYMM_CHECK(!dims.empty());
  std::vector<DenseMatrix> weights;
  NodeId prev = in_dim;
  for (std::size_t l = 0; l < dims.size(); ++l) {
    weights.push_back(DenseMatrix::random(prev, dims[l], seed + l));
    prev = dims[l];
  }
  return GcnModel(std::move(a_hat), std::move(weights));
}

GcnModel::InferenceResult GcnModel::run(const InferenceRequest& request) const {
  HYMM_CHECK_MSG(request.features != nullptr,
                 "InferenceRequest.features is required");
  const CsrMatrix& features = *request.features;
  HYMM_CHECK(features.rows() == a_hat_.rows());
  HYMM_CHECK(features.cols() == weights_.front().rows());
  const bool pass_sort =
      request.flow == Dataflow::kHybrid && request.sort != nullptr;
  if (pass_sort) {
    HYMM_CHECK_MSG(request.sorted_features != nullptr,
                   "InferenceRequest.sort without sorted_features");
    HYMM_CHECK(request.sort->perm.size() == a_hat_.rows());
  }
  const Accelerator accelerator(request.config);

  InferenceResult result;
  CsrMatrix x = features;        // original node order
  CsrMatrix x_sorted;            // x under request.sort (hybrid passthrough)
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    LayerRunRequest layer_request;
    layer_request.flow = request.flow;
    layer_request.a_hat = &a_hat_;
    layer_request.x = &x;
    layer_request.w = &weights_[l];
    layer_request.observer = request.observer;
    layer_request.checkpoints = request.checkpoints;
    if (pass_sort) {
      // The degree sort is computed once for the whole network (the
      // adjacency never changes between layers) — only the inner
      // layers' re-sparsified activations need a row permutation.
      layer_request.sort = request.sort;
      if (l == 0) {
        layer_request.sorted_features = request.sorted_features;
      } else {
        Timer permute_timer;
        x_sorted = permute_feature_rows(x, request.sort->perm);
        result.total_preprocess_ms += permute_timer.elapsed_ms();
        layer_request.sorted_features = &x_sorted;
      }
    }
    LayerRunResult layer = accelerator.run_layer(layer_request);
    result.total_cycles += layer.stats.cycles;
    result.total_dram_bytes += layer.stats.dram_total_bytes();
    // With a precomputed sort every layer reports the same shared
    // sort cost; charge it once instead of per layer.
    if (!pass_sort || l == 0) {
      result.total_preprocess_ms += layer.preprocess_ms;
    }
    const bool last = l + 1 == weights_.size();
    if (last) {
      result.output = layer.output;
    } else {
      DenseMatrix h = layer.output;
      relu_inplace(h);
      x = dense_to_csr(h);
    }
    result.layers.push_back(std::move(layer));
  }
  if (request.verify) {
    const DenseMatrix expected = reference(features);
    result.max_abs_err = DenseMatrix::max_abs_diff(result.output, expected);
    result.verified =
        DenseMatrix::allclose(result.output, expected, 1e-3, 1e-4);
  }
  return result;
}

GcnModel::InferenceResult GcnModel::run(Dataflow flow,
                                        const CsrMatrix& features,
                                        const AcceleratorConfig& config,
                                        bool verify) const {
  InferenceRequest request;
  request.flow = flow;
  request.features = &features;
  request.config = config;
  request.verify = verify;
  return run(request);
}

DenseMatrix GcnModel::reference(const CsrMatrix& features) const {
  return gcn_inference_reference(a_hat_, features, weights_);
}

}  // namespace hymm
