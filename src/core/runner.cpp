#include "core/runner.hpp"

#include <chrono>

#include "common/check.hpp"

namespace hymm {

ExperimentResult run_experiment(const ExperimentRequest& request) {
  HYMM_CHECK(request.workload != nullptr && request.a_hat != nullptr &&
             request.weights != nullptr && request.reference != nullptr);
  const GcnWorkload& workload = *request.workload;
  const AcceleratorConfig& config = request.config;
  const DenseMatrix& reference_output = *request.reference;

  if (request.sample > 0.0) {
    // Sampled mode: seeded band subset + extrapolation instead of the
    // full cycle-accurate run. No functional output, so the result is
    // never verified; observer and checkpoints do not apply.
    SampledLayerRequest sampled_request;
    sampled_request.flow = request.flow;
    sampled_request.a_hat = request.a_hat;
    sampled_request.x = &workload.features;
    sampled_request.w = request.weights;
    sampled_request.sort = request.sort;
    sampled_request.sorted_features = request.sorted_features;
    sampled_request.options.fraction = request.sample;
    sampled_request.options.seed = request.sample_seed;
    const auto sim_begin = std::chrono::steady_clock::now();
    const SampledLayerResult layer = run_layer_sampled(config, sampled_request);
    const auto sim_end = std::chrono::steady_clock::now();

    ExperimentResult r;
    r.sim_wall_ms =
        std::chrono::duration<double, std::milli>(sim_end - sim_begin)
            .count();
    r.dataset = workload.spec.name;
    r.abbrev = workload.spec.abbrev;
    r.scale = workload.scale;
    r.flow = request.flow;
    r.cycles = layer.stats.cycles;
    r.alu_utilization = layer.stats.alu_utilization();
    r.dmb_hit_rate = layer.stats.dmb_hit_rate();
    r.dram_total_bytes = layer.stats.dram_total_bytes();
    r.dram_read_bytes = layer.stats.dram_read_bytes;
    r.dram_write_bytes = layer.stats.dram_write_bytes;
    r.partial_bytes_peak = layer.stats.partial_bytes_peak;
    r.mac_ops = layer.stats.mac_ops;
    r.dram_peak_bytes_per_cycle = config.dram_bytes_per_cycle;
    r.combination_cycles = layer.combination_stats.cycles;
    r.aggregation_cycles = layer.aggregation_stats.cycles;
    r.preprocess_ms = layer.preprocess_ms;
    r.partition = layer.partition;
    r.stats = layer.stats;
    r.combination_stats = layer.combination_stats;
    r.aggregation_stats = layer.aggregation_stats;
    r.sample = layer.sample;
    return r;
  }

  Accelerator accelerator(config);
  LayerRunRequest layer_request;
  layer_request.flow = request.flow;
  layer_request.a_hat = request.a_hat;
  layer_request.x = &workload.features;
  layer_request.w = request.weights;
  layer_request.observer = request.observer;
  layer_request.sort = request.sort;
  layer_request.sorted_features = request.sorted_features;
  layer_request.route =
      request.flow == Dataflow::kHybrid ? request.route : nullptr;
  layer_request.checkpoints = request.checkpoints;
  const auto sim_begin = std::chrono::steady_clock::now();
  const LayerRunResult layer = accelerator.run_layer(layer_request);
  const auto sim_end = std::chrono::steady_clock::now();

  ExperimentResult r;
  r.sim_wall_ms =
      std::chrono::duration<double, std::milli>(sim_end - sim_begin)
          .count();
  r.dataset = workload.spec.name;
  r.abbrev = workload.spec.abbrev;
  r.scale = workload.scale;
  r.flow = request.flow;
  r.cycles = layer.stats.cycles;
  r.alu_utilization = layer.stats.alu_utilization();
  r.dmb_hit_rate = layer.stats.dmb_hit_rate();
  r.dram_total_bytes = layer.stats.dram_total_bytes();
  r.dram_read_bytes = layer.stats.dram_read_bytes;
  r.dram_write_bytes = layer.stats.dram_write_bytes;
  r.partial_bytes_peak = layer.stats.partial_bytes_peak;
  r.mac_ops = layer.stats.mac_ops;
  r.dram_peak_bytes_per_cycle = config.dram_bytes_per_cycle;
  r.combination_cycles = layer.combination_stats.cycles;
  r.aggregation_cycles = layer.aggregation_stats.cycles;
  r.preprocess_ms = layer.preprocess_ms;
  r.partition = layer.partition;
  r.stats = layer.stats;
  r.combination_stats = layer.combination_stats;
  r.aggregation_stats = layer.aggregation_stats;
  r.hybrid_info = layer.hybrid_info;
  r.checkpoint = layer.checkpoint;
  r.max_abs_err =
      DenseMatrix::max_abs_diff(layer.output, reference_output);
  r.verified = DenseMatrix::allclose(layer.output, reference_output,
                                     /*rtol=*/1e-3, /*atol=*/1e-4);
  if (request.observer != nullptr) {
    r.histograms = request.observer->take_run_histograms();
    if (request.observer->timeseries_enabled()) {
      r.timeseries = request.observer->take_timeseries();
    }
    if (request.observer->spatial_enabled()) {
      r.spatial = request.observer->take_spatial();
      if (!r.spatial.empty()) {
        // Conservation invariants of the spatial attribution: the
        // per-lane model retires exactly one array op per busy cycle,
        // every DRAM line lands in a tile or the residual, and every
        // accounted cycle is attributed somewhere.
        HYMM_DCHECK(r.spatial.array_busy_cycles ==
                    layer.stats.alu_busy_cycles);
        HYMM_DCHECK(r.spatial.total_dram_bytes() ==
                    layer.stats.dram_total_bytes());
        HYMM_DCHECK(r.spatial.total_cycles() == layer.stats.cycles);
      }
    }
  }
  return r;
}

const ExperimentResult& DataflowComparison::by_flow(Dataflow flow) const {
  for (const ExperimentResult& r : results) {
    if (r.flow == flow) return r;
  }
  HYMM_CHECK_MSG(false, "dataflow " << to_string(flow) << " not in run");
  return results.front();  // unreachable
}

DataflowComparison compare_dataflows(const DatasetSpec& spec,
                                     const AcceleratorConfig& config,
                                     const std::vector<Dataflow>& flows,
                                     double scale, std::uint64_t seed,
                                     Observer* obs) {
  const double effective_scale = scale < 0.0 ? default_scale(spec) : scale;
  const GcnWorkload workload = build_workload(spec, effective_scale, seed);

  const CsrMatrix a_hat = normalize_adjacency(workload.adjacency);
  const DenseMatrix weights = DenseMatrix::random(
      workload.spec.feature_length, workload.spec.layer_dim, seed + 7);
  const GcnLayerResult golden = gcn_layer_reference(
      a_hat, workload.features, weights, /*apply_relu=*/false);

  DataflowComparison comparison;
  comparison.spec = workload.spec;
  comparison.scale = effective_scale;
  for (const Dataflow flow : flows) {
    if (obs != nullptr) {
      obs->begin_run(to_string(flow) + "/" + workload.spec.abbrev);
    }
    ExperimentRequest request;
    request.workload = &workload;
    request.a_hat = &a_hat;
    request.weights = &weights;
    request.reference = &golden.aggregation;
    request.flow = flow;
    request.config = config;
    request.observer = obs;
    comparison.results.push_back(run_experiment(request));
  }
  return comparison;
}

}  // namespace hymm
