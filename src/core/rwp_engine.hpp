/// @file
/// Row-wise product engine (Fig 1a; represents GROW, and runs HyMM's
/// regions 2/3 and the combination phase of RWP-family architectures).
///
/// Per cycle: the SMQ supplies one (row, col, value) scalar; the LSQ
/// fetches the matching dense row B[col]; the PE array retires one
/// scalar x vector MAC into the output-stationary row accumulator
/// (modeled directly on the host output row); a row's last non-zero
/// triggers the output-row store.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>

#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "linalg/dense.hpp"

namespace hymm {

/// Inputs of one RwpEngine run. Dense rows wider than 16 floats span
/// multiple 64-byte lines; each non-zero then expands into one work
/// item per line chunk.
struct RwpEngineParams {
  const CsrMatrix* sparse = nullptr;  ///< A (aggregation) or X (combination)
  /// Traffic class the sparse operand's stream is accounted under.
  TrafficClass sparse_class = TrafficClass::kAdjacency;

  const DenseMatrix* b = nullptr;  ///< XW (aggregation) or W (combination)
  AddressRegion b_region;          ///< address range backing `b`
  /// Traffic class dense-row fetches are accounted under.
  TrafficClass b_class = TrafficClass::kCombined;

  DenseMatrix* c = nullptr;  ///< output, sized sparse->rows() x b->cols()
  AddressRegion c_region;    ///< address range backing `c`
  /// Traffic class output stores are accounted under.
  TrafficClass c_class = TrafficClass::kOutput;
  /// Output store policy (write-through by default).
  StoreKind c_store_kind = StoreKind::kThrough;

  /// Rebase for tiled inputs: local sparse row r writes global output
  /// row r + row_offset (HyMM region 2/3 runs rows [R1, n)).
  NodeId row_offset = 0;

  /// Column boundary for HyMM's region-2/3 attribution: retired MACs
  /// whose source column lies below the boundary count as region 2
  /// (hot columns), the rest as region 3. 0 (default) attributes
  /// everything to region 3.
  NodeId region2_col_boundary = 0;

  /// Maximum in-flight non-zeros (bounded further by LSQ capacity).
  std::size_t window = 64;

  /// Spatial attribution (obs/spatial.hpp): when the sparse operand is
  /// the adjacency matrix, retired MACs focus the observer's tile grid
  /// — columns below region2_col_boundary under `spatial_region2`, the
  /// rest under `spatial_region3` (pure RWP aggregations pass kRwp for
  /// both). Off for the combination phase.
  bool spatial_in_grid = false;
  /// Region label for MACs below region2_col_boundary.
  SpatialRegion spatial_region2 = SpatialRegion::kRwp;
  /// Region label for MACs at or past region2_col_boundary.
  SpatialRegion spatial_region3 = SpatialRegion::kRwp;
};

/// The row-wise-product dataflow engine.
class RwpEngine final : public Engine {
 public:
  /// The memory system is needed at construction to attach the SMQ
  /// stream. Parameter pointers must outlive the engine.
  RwpEngine(MemorySystem& ms, const RwpEngineParams& params);

  bool done(const MemorySystem& ms) const override;
  void tick(MemorySystem& ms) override;
  StallCause cycle_cause() const override { return cause_; }
  bool quiescent() const override { return !progressed_; }

  /// Exact MAC count below region2_col_boundary (per-region
  /// attribution of the hybrid's shared RWP phase).
  std::uint64_t region2_macs() const { return region2_macs_; }
  /// Exact MAC count at or past region2_col_boundary.
  std::uint64_t region3_macs() const { return region3_macs_; }

 private:
  struct Pending {
    NodeId row = 0;    // local sparse row
    NodeId col = 0;    // dense row index into B
    Value value = 0.0f;
    std::size_t chunk = 0;  // which 16-lane slice of the row
    bool last_of_row = false;
    LoadStoreQueue::EntryId load_id = 0;
  };

  void try_issue(MemorySystem& ms);
  void try_retire(MemorySystem& ms);
  void resolve_cause(const MemorySystem& ms);

  std::span<const Value> b_lanes(NodeId row, std::size_t chunk) const;
  std::span<Value> c_lanes(NodeId row, std::size_t chunk) const;

  RwpEngineParams params_;
  std::size_t chunks_ = 1;  // 64-byte lines per dense row
  std::deque<Pending> pending_;
  // Output-line stores the LSQ rejected; retried before any further
  // retirement.
  std::deque<Addr> pending_stores_;
  std::uint64_t retired_ = 0;
  std::uint64_t region2_macs_ = 0;
  std::uint64_t region3_macs_ = 0;

  // Cycle accounting: set by the retire path when it decides the
  // cycle's fate, resolved from queue state otherwise.
  std::optional<StallCause> attributed_;
  StallCause cause_ = StallCause::kDrain;
  // Fast-forward quiescence: set whenever a tick mutates engine or
  // memory-system state, or blocks on a time-flipping predicate
  // (PeArray::can_issue) and must therefore re-run next cycle.
  bool progressed_ = false;
};

}  // namespace hymm
