#include "core/accelerator.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "obs/hooks.hpp"
#include "core/op_engine.hpp"
#include "core/rwp_engine.hpp"
#include "graph/degree_sort.hpp"

namespace hymm {


Accelerator::Accelerator(const AcceleratorConfig& config) : config_(config) {
  config_.validate();
}

LayerRunResult Accelerator::run_layer(Dataflow flow, const CsrMatrix& a_hat,
                                      const CsrMatrix& x,
                                      const DenseMatrix& w,
                                      Observer* obs) const {
  LayerRunRequest request;
  request.flow = flow;
  request.a_hat = &a_hat;
  request.x = &x;
  request.w = &w;
  request.observer = obs;
  return run_layer(request);
}

LayerRunResult Accelerator::run_layer(const LayerRunRequest& request) const {
  HYMM_CHECK(request.a_hat != nullptr && request.x != nullptr &&
             request.w != nullptr);
  const Dataflow flow = request.flow;
  const CsrMatrix& a_hat = *request.a_hat;
  const CsrMatrix& x = *request.x;
  const DenseMatrix& w = *request.w;
  Observer* obs = request.observer;
  HYMM_CHECK(a_hat.rows() == a_hat.cols());
  HYMM_CHECK(a_hat.cols() == x.rows());
  HYMM_CHECK(x.cols() == w.rows());

  const NodeId n = a_hat.rows();
  // 64-byte lines per dense row; 1 for the paper's layer dimension 16.
  const std::size_t chunks =
      (static_cast<std::size_t>(w.cols()) + kLaneCount - 1) / kLaneCount;
  LayerRunResult result;
  result.flow = flow;

  // --- HyMM preprocessing: degree sorting + tiling ---
  const bool hybrid = flow == Dataflow::kHybrid;
  CsrMatrix sorted_a;
  CsrMatrix sorted_x;
  std::vector<NodeId> perm_local;
  std::span<const NodeId> perm;
  const CsrMatrix* a_used = &a_hat;
  const CsrMatrix* x_used = &x;
  TiledAdjacency tiled;
  if (hybrid) {
    if (request.sort != nullptr) {
      // Precomputed degree sort (shared immutably by the caller, e.g.
      // the sweep executor's WorkloadCache); only the region
      // partition and tiling remain, which depend on this config.
      HYMM_CHECK_MSG(request.sorted_features != nullptr,
                     "LayerRunRequest.sort without sorted_features");
      HYMM_CHECK(request.sort->perm.size() == n);
      HYMM_CHECK(request.sort->sorted.rows() == n);
      perm = request.sort->perm;
      a_used = &request.sort->sorted;
      x_used = request.sorted_features;
      result.partition = partition_regions(*a_used, config_, chunks);
      tiled = TiledAdjacency::build(*a_used, result.partition);
      result.preprocess_ms = request.sort->sort_cost_ms;
    } else {
      Timer timer;
      DegreeSortResult sort = degree_sort(a_hat);
      perm_local = std::move(sort.perm);
      perm = perm_local;
      sorted_a = std::move(sort.sorted);
      sorted_x = permute_feature_rows(x, perm);
      a_used = &sorted_a;
      x_used = &sorted_x;
      result.partition = partition_regions(*a_used, config_, chunks);
      tiled = TiledAdjacency::build(*a_used, result.partition);
      result.preprocess_ms = timer.elapsed_ms();
    }
  }

  // --- Memory system and address space ---
  MemorySystem ms(config_);
  if (obs != nullptr) ms.attach_observer(obs);
  // Spatial heatmap grid over the adjacency this layer streams — the
  // degree-sorted order for hybrid runs (tile coordinates then live
  // in sorted space; docs/schemas.md documents the caveat).
  HYMM_OBS(obs, spatial_begin(n, config_.pe_count));
  const AddressRegion w_region = ms.address_map().allocate(
      "W", static_cast<std::size_t>(w.rows()) * chunks * kLineBytes,
      TrafficClass::kWeights);
  const AddressRegion xw_region = ms.address_map().allocate(
      "XW", static_cast<std::size_t>(n) * chunks * kLineBytes,
      TrafficClass::kCombined);
  const AddressRegion axw_region = ms.address_map().allocate(
      "AXW", static_cast<std::size_t>(n) * chunks * kLineBytes,
      TrafficClass::kOutput);
  const AddressRegion spill_region = ms.address_map().allocate(
      "partial-spill",
      static_cast<std::size_t>((x.nnz() + a_hat.nnz() + 1024) * 128 *
                               chunks),
      TrafficClass::kPartial);

  DenseMatrix xw = DenseMatrix::zeros(n, w.cols());
  DenseMatrix axw = DenseMatrix::zeros(n, w.cols());

  // --- Combination phase: XW = X * W ---
  CscMatrix x_csc;  // OP architecture streams X column-wise
  if (flow == Dataflow::kOuterProduct) {
    x_csc = CscMatrix::from_csr(*x_used);
    OpEngineParams op;
    op.sparse = &x_csc;
    op.sparse_class = TrafficClass::kFeatures;
    op.b = &w;
    op.b_region = w_region;
    op.b_class = TrafficClass::kWeights;
    op.c = &xw;
    op.c_region = xw_region;
    op.c_final_class = TrafficClass::kCombined;
    op.spill_region = spill_region;
    op.accumulate_in_buffer = config_.op_baseline_accumulator;
    op.window = config_.engine_window;
    OpEngine engine(ms, op);
    run_phase(ms, engine);
  } else {
    RwpEngineParams rwp;
    rwp.sparse = x_used;
    rwp.sparse_class = TrafficClass::kFeatures;
    rwp.b = &w;
    rwp.b_region = w_region;
    rwp.b_class = TrafficClass::kWeights;
    rwp.c = &xw;
    rwp.c_region = xw_region;
    rwp.c_class = TrafficClass::kCombined;
    rwp.c_store_kind = StoreKind::kAllocate;
    rwp.window = config_.engine_window;
    RwpEngine engine(ms, rwp);
    run_phase(ms, engine);
  }
  result.combination_stats = ms.stats();
  result.combination_stats.cycles = ms.now();
  HYMM_OBS(obs, phase_span("combination", 0, ms.now()));
  const Cycle aggregation_start = ms.now();

  // --- Aggregation phase: AXW = A_hat * XW ---
  // W is dead from here on: Section IV-D evicts W before XW, so the
  // combination results survive in the unified buffer instead.
  ms.dmb().demote_class(TrafficClass::kWeights);
  CscMatrix a_csc;
  switch (flow) {
    case Dataflow::kRowWiseProduct: {
      RwpEngineParams rwp;
      rwp.sparse = a_used;
      rwp.sparse_class = TrafficClass::kAdjacency;
      rwp.b = &xw;
      rwp.b_region = xw_region;
      rwp.b_class = TrafficClass::kCombined;
      rwp.c = &axw;
      rwp.c_region = axw_region;
      rwp.c_class = TrafficClass::kOutput;
      rwp.c_store_kind = StoreKind::kThrough;
      rwp.window = config_.engine_window;
      // Pure RWP aggregation: every tile is an RWP tile.
      rwp.spatial_in_grid = true;
      rwp.spatial_region2 = SpatialRegion::kRwp;
      rwp.spatial_region3 = SpatialRegion::kRwp;
      RwpEngine engine(ms, rwp);
      run_phase(ms, engine);
      break;
    }
    case Dataflow::kOuterProduct: {
      a_csc = CscMatrix::from_csr(*a_used);
      OpEngineParams op;
      op.sparse = &a_csc;
      op.sparse_class = TrafficClass::kAdjacency;
      op.b = &xw;
      op.b_region = xw_region;
      op.b_class = TrafficClass::kCombined;
      op.c = &axw;
      op.c_region = axw_region;
      op.c_final_class = TrafficClass::kOutput;
      op.spill_region = spill_region;
      op.accumulate_in_buffer = config_.op_baseline_accumulator;
      op.window = config_.engine_window;
      // Pure OP aggregation: every tile is an OP tile.
      op.spatial_in_grid = true;
      op.spatial_region = SpatialRegion::kOp;
      OpEngine engine(ms, op);
      run_phase(ms, engine);
      break;
    }
    case Dataflow::kHybrid: {
      HybridAggregationParams params;
      params.tiled = &tiled;
      params.b = &xw;
      params.b_region = xw_region;
      params.b_class = TrafficClass::kCombined;
      params.c = &axw;
      params.c_region = axw_region;
      params.spill_region = spill_region;
      result.hybrid_info = run_hybrid_aggregation(ms, params);
      break;
    }
  }

  result.stats = ms.stats();
  result.stats.cycles = ms.now();
  result.aggregation_stats =
      stats_delta(result.stats, result.combination_stats);
  HYMM_OBS(obs, phase_span("aggregation", aggregation_start, ms.now()));

  // --- Return results in the original node order ---
  if (hybrid) {
    DenseMatrix xw_orig(n, w.cols());
    DenseMatrix axw_orig(n, w.cols());
    for (NodeId old_id = 0; old_id < n; ++old_id) {
      const NodeId new_id = perm[old_id];
      for (NodeId c = 0; c < w.cols(); ++c) {
        xw_orig.at(old_id, c) = xw.at(new_id, c);
        axw_orig.at(old_id, c) = axw.at(new_id, c);
      }
    }
    result.combination = std::move(xw_orig);
    result.output = std::move(axw_orig);
  } else {
    result.combination = std::move(xw);
    result.output = std::move(axw);
  }
  return result;
}

}  // namespace hymm
