#include "core/accelerator.hpp"

#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "obs/hooks.hpp"
#include "core/op_engine.hpp"
#include "core/rwp_engine.hpp"
#include "graph/degree_sort.hpp"
#include "graph/fingerprint.hpp"

namespace hymm {

namespace {

// The combination phase's warm state: the memory system at the
// phase boundary plus the host-side XW values the phase produced.
std::vector<std::byte> serialize_warm_state(const CheckpointKey& key,
                                            const MemorySystem& ms,
                                            const DenseMatrix& xw) {
  StateWriter w;
  ms.save_state(w);
  w.put_u64(static_cast<std::uint64_t>(xw.rows()));
  w.put_u64(static_cast<std::uint64_t>(xw.cols()));
  for (NodeId r = 0; r < xw.rows(); ++r) {
    for (NodeId c = 0; c < xw.cols(); ++c) w.put_f32(xw.at(r, c));
  }
  return seal_checkpoint(key, w.take());
}

// Restores into a freshly built MemorySystem (same config, regions
// allocated in the canonical order) and the zeroed XW matrix. False
// when the blob fails validation — the caller falls back to a cold
// combination run.
bool restore_warm_state(const std::vector<std::byte>& blob,
                        const CheckpointKey& key, MemorySystem& ms,
                        DenseMatrix& xw) {
  const std::byte* payload = nullptr;
  std::size_t payload_size = 0;
  if (!open_checkpoint(blob, key, &payload, &payload_size)) return false;
  StateReader r(payload, payload_size);
  ms.load_state(r);
  HYMM_CHECK(r.get_u64() == static_cast<std::uint64_t>(xw.rows()));
  HYMM_CHECK(r.get_u64() == static_cast<std::uint64_t>(xw.cols()));
  for (NodeId row = 0; row < xw.rows(); ++row) {
    for (NodeId c = 0; c < xw.cols(); ++c) xw.at(row, c) = r.get_f32();
  }
  HYMM_CHECK_MSG(r.exhausted(), "trailing bytes in checkpoint payload");
  return true;
}

}  // namespace

CheckpointKey combination_checkpoint_key(const CsrMatrix& x_used,
                                         const DenseMatrix& w,
                                         const AcceleratorConfig& config,
                                         Dataflow flow) {
  std::uint64_t workload = graph_fingerprint(x_used);
  std::uint64_t w_digest = fingerprint_combine(
      static_cast<std::uint64_t>(w.rows()),
      static_cast<std::uint64_t>(w.cols()));
  for (NodeId r = 0; r < w.rows(); ++r) {
    for (NodeId c = 0; c < w.cols(); ++c) {
      w_digest = fingerprint_combine(
          w_digest, std::bit_cast<std::uint32_t>(w.at(r, c)));
    }
  }
  workload = fingerprint_combine(workload, w_digest);
  // Only the engine kind matters for the combination phase: RWP and
  // hybrid share the RWP combination engine.
  const bool op_combination = flow == Dataflow::kOuterProduct;
  workload = fingerprint_combine(workload,
                                 static_cast<std::uint64_t>(op_combination));
  return CheckpointKey{workload, tuning_config_hash(config)};
}


Accelerator::Accelerator(const AcceleratorConfig& config) : config_(config) {
  config_.validate();
}

LayerRunResult Accelerator::run_layer(Dataflow flow, const CsrMatrix& a_hat,
                                      const CsrMatrix& x,
                                      const DenseMatrix& w,
                                      Observer* obs) const {
  LayerRunRequest request;
  request.flow = flow;
  request.a_hat = &a_hat;
  request.x = &x;
  request.w = &w;
  request.observer = obs;
  return run_layer(request);
}

LayerRunResult Accelerator::run_layer(const LayerRunRequest& request) const {
  HYMM_CHECK(request.a_hat != nullptr && request.x != nullptr &&
             request.w != nullptr);
  const Dataflow flow = request.flow;
  const CsrMatrix& a_hat = *request.a_hat;
  const CsrMatrix& x = *request.x;
  const DenseMatrix& w = *request.w;
  Observer* obs = request.observer;
  HYMM_CHECK(a_hat.rows() == a_hat.cols());
  HYMM_CHECK(a_hat.cols() == x.rows());
  HYMM_CHECK(x.cols() == w.rows());

  const NodeId n = a_hat.rows();
  // 64-byte lines per dense row; 1 for the paper's layer dimension 16.
  const std::size_t chunks =
      (static_cast<std::size_t>(w.cols()) + kLaneCount - 1) / kLaneCount;
  LayerRunResult result;
  result.flow = flow;

  // --- HyMM preprocessing: degree sorting + tiling ---
  const bool hybrid = flow == Dataflow::kHybrid;
  CsrMatrix sorted_a;
  CsrMatrix sorted_x;
  std::vector<NodeId> perm_local;
  std::span<const NodeId> perm;
  const CsrMatrix* a_used = &a_hat;
  const CsrMatrix* x_used = &x;
  TiledAdjacency tiled;
  RoutedAdjacency routed;
  // Splits the sorted adjacency either by the request's per-tile
  // routing map or by the global 3-region partition; fills
  // result.partition with the effective boundaries either way.
  const auto build_split = [&](const CsrMatrix& sorted) {
    if (request.route != nullptr) {
      routed = build_routed_adjacency(sorted, *request.route);
      result.partition = routed.partition;
    } else {
      result.partition = partition_regions(sorted, config_, chunks);
      tiled = TiledAdjacency::build(sorted, result.partition);
    }
  };
  if (hybrid) {
    if (request.sort != nullptr) {
      // Precomputed degree sort (shared immutably by the caller, e.g.
      // the sweep executor's WorkloadCache); only the region
      // partition and tiling remain, which depend on this config.
      HYMM_CHECK_MSG(request.sorted_features != nullptr,
                     "LayerRunRequest.sort without sorted_features");
      HYMM_CHECK(request.sort->perm.size() == n);
      HYMM_CHECK(request.sort->sorted.rows() == n);
      perm = request.sort->perm;
      a_used = &request.sort->sorted;
      x_used = request.sorted_features;
      build_split(*a_used);
      result.preprocess_ms = request.sort->sort_cost_ms;
    } else {
      Timer timer;
      DegreeSortResult sort = degree_sort(a_hat);
      perm_local = std::move(sort.perm);
      perm = perm_local;
      sorted_a = std::move(sort.sorted);
      sorted_x = permute_feature_rows(x, perm);
      a_used = &sorted_a;
      x_used = &sorted_x;
      build_split(*a_used);
      result.preprocess_ms = timer.elapsed_ms();
    }
  }

  // --- Memory system and address space ---
  MemorySystem ms(config_);
  if (obs != nullptr) ms.attach_observer(obs);
  // Spatial heatmap grid over the adjacency this layer streams — the
  // degree-sorted order for hybrid runs (tile coordinates then live
  // in sorted space; docs/schemas.md documents the caveat).
  HYMM_OBS(obs, spatial_begin(n, config_.pe_count));
  const AddressRegion w_region = ms.address_map().allocate(
      "W", static_cast<std::size_t>(w.rows()) * chunks * kLineBytes,
      TrafficClass::kWeights);
  const AddressRegion xw_region = ms.address_map().allocate(
      "XW", static_cast<std::size_t>(n) * chunks * kLineBytes,
      TrafficClass::kCombined);
  const AddressRegion axw_region = ms.address_map().allocate(
      "AXW", static_cast<std::size_t>(n) * chunks * kLineBytes,
      TrafficClass::kOutput);
  const AddressRegion spill_region = ms.address_map().allocate(
      "partial-spill",
      static_cast<std::size_t>((x.nnz() + a_hat.nnz() + 1024) * 128 *
                               chunks),
      TrafficClass::kPartial);

  DenseMatrix xw = DenseMatrix::zeros(n, w.cols());
  DenseMatrix axw = DenseMatrix::zeros(n, w.cols());

  // --- Combination phase: XW = X * W ---
  CscMatrix x_csc;  // OP architecture streams X column-wise
  if (flow == Dataflow::kOuterProduct) x_csc = CscMatrix::from_csr(*x_used);
  // The cold path, reusable against a private MemorySystem so the
  // checkpoint builder can run it off to the side. The region values
  // are identical for any MemorySystem that allocated the canonical
  // W/XW/AXW/spill sequence above (the address map is deterministic).
  const auto run_combination = [&](MemorySystem& sys, DenseMatrix& out_xw) {
    if (flow == Dataflow::kOuterProduct) {
      OpEngineParams op;
      op.sparse = &x_csc;
      op.sparse_class = TrafficClass::kFeatures;
      op.b = &w;
      op.b_region = w_region;
      op.b_class = TrafficClass::kWeights;
      op.c = &out_xw;
      op.c_region = xw_region;
      op.c_final_class = TrafficClass::kCombined;
      op.spill_region = spill_region;
      op.accumulate_in_buffer = config_.op_baseline_accumulator;
      op.window = config_.engine_window;
      OpEngine engine(sys, op);
      run_phase(sys, engine);
    } else {
      RwpEngineParams rwp;
      rwp.sparse = x_used;
      rwp.sparse_class = TrafficClass::kFeatures;
      rwp.b = &w;
      rwp.b_region = w_region;
      rwp.b_class = TrafficClass::kWeights;
      rwp.c = &out_xw;
      rwp.c_region = xw_region;
      rwp.c_class = TrafficClass::kCombined;
      rwp.c_store_kind = StoreKind::kAllocate;
      rwp.window = config_.engine_window;
      RwpEngine engine(sys, rwp);
      run_phase(sys, engine);
    }
  };
  // Observer runs are ineligible: a restored combination would skip
  // the phase's trace events and counter samples.
  CheckpointStore* ckpt = obs == nullptr ? request.checkpoints : nullptr;
  bool restored = false;
  if (ckpt != nullptr) {
    const CheckpointKey key =
        combination_checkpoint_key(*x_used, w, config_, flow);
    result.checkpoint.enabled = true;
    result.checkpoint.key = checkpoint_key_hex(key);
    bool built = false;
    const auto blob = ckpt->get_or_build(
        key,
        [&] {
          MemorySystem cold(config_);
          // Replicate the canonical region sequence so embedded
          // addresses match every restoring run.
          cold.address_map().allocate("W", w_region.bytes,
                                      TrafficClass::kWeights);
          cold.address_map().allocate("XW", xw_region.bytes,
                                      TrafficClass::kCombined);
          cold.address_map().allocate("AXW", axw_region.bytes,
                                      TrafficClass::kOutput);
          cold.address_map().allocate("partial-spill", spill_region.bytes,
                                      TrafficClass::kPartial);
          DenseMatrix cold_xw = DenseMatrix::zeros(n, w.cols());
          run_combination(cold, cold_xw);
          std::vector<std::byte> sealed =
              serialize_warm_state(key, cold, cold_xw);
#ifndef NDEBUG
          // Round-trip soundness: restoring the blob and re-serializing
          // must reproduce it byte for byte.
          MemorySystem check(config_);
          DenseMatrix check_xw = DenseMatrix::zeros(n, w.cols());
          HYMM_DCHECK(restore_warm_state(sealed, key, check, check_xw));
          HYMM_DCHECK(serialize_warm_state(key, check, check_xw) == sealed);
#endif
          return sealed;
        },
        &built);
    result.checkpoint.built = built;
    restored = blob != nullptr && restore_warm_state(*blob, key, ms, xw);
    result.checkpoint.restored = restored;
  }
  if (!restored) run_combination(ms, xw);
  result.combination_stats = ms.stats();
  result.combination_stats.cycles = ms.now();
  HYMM_OBS(obs, phase_span("combination", 0, ms.now()));
  const Cycle aggregation_start = ms.now();

  // --- Aggregation phase: AXW = A_hat * XW ---
  // W is dead from here on: Section IV-D evicts W before XW, so the
  // combination results survive in the unified buffer instead.
  ms.dmb().demote_class(TrafficClass::kWeights);
  CscMatrix a_csc;
  switch (flow) {
    case Dataflow::kRowWiseProduct: {
      RwpEngineParams rwp;
      rwp.sparse = a_used;
      rwp.sparse_class = TrafficClass::kAdjacency;
      rwp.b = &xw;
      rwp.b_region = xw_region;
      rwp.b_class = TrafficClass::kCombined;
      rwp.c = &axw;
      rwp.c_region = axw_region;
      rwp.c_class = TrafficClass::kOutput;
      rwp.c_store_kind = StoreKind::kThrough;
      rwp.window = config_.engine_window;
      // Pure RWP aggregation: every tile is an RWP tile.
      rwp.spatial_in_grid = true;
      rwp.spatial_region2 = SpatialRegion::kRwp;
      rwp.spatial_region3 = SpatialRegion::kRwp;
      RwpEngine engine(ms, rwp);
      run_phase(ms, engine);
      break;
    }
    case Dataflow::kOuterProduct: {
      a_csc = CscMatrix::from_csr(*a_used);
      OpEngineParams op;
      op.sparse = &a_csc;
      op.sparse_class = TrafficClass::kAdjacency;
      op.b = &xw;
      op.b_region = xw_region;
      op.b_class = TrafficClass::kCombined;
      op.c = &axw;
      op.c_region = axw_region;
      op.c_final_class = TrafficClass::kOutput;
      op.spill_region = spill_region;
      op.accumulate_in_buffer = config_.op_baseline_accumulator;
      op.window = config_.engine_window;
      // Pure OP aggregation: every tile is an OP tile.
      op.spatial_in_grid = true;
      op.spatial_region = SpatialRegion::kOp;
      OpEngine engine(ms, op);
      run_phase(ms, engine);
      break;
    }
    case Dataflow::kHybrid: {
      HybridAggregationParams params;
      if (request.route != nullptr) {
        params.routed = &routed;
      } else {
        params.tiled = &tiled;
      }
      params.b = &xw;
      params.b_region = xw_region;
      params.b_class = TrafficClass::kCombined;
      params.c = &axw;
      params.c_region = axw_region;
      params.spill_region = spill_region;
      result.hybrid_info = run_hybrid_aggregation(ms, params);
      break;
    }
  }

  result.stats = ms.stats();
  result.stats.cycles = ms.now();
  result.aggregation_stats =
      stats_delta(result.stats, result.combination_stats);
  HYMM_OBS(obs, phase_span("aggregation", aggregation_start, ms.now()));

  // --- Return results in the original node order ---
  if (hybrid) {
    DenseMatrix xw_orig(n, w.cols());
    DenseMatrix axw_orig(n, w.cols());
    for (NodeId old_id = 0; old_id < n; ++old_id) {
      const NodeId new_id = perm[old_id];
      for (NodeId c = 0; c < w.cols(); ++c) {
        xw_orig.at(old_id, c) = xw.at(new_id, c);
        axw_orig.at(old_id, c) = axw.at(new_id, c);
      }
    }
    result.combination = std::move(xw_orig);
    result.output = std::move(axw_orig);
  } else {
    result.combination = std::move(xw);
    result.output = std::move(axw);
  }
  return result;
}

}  // namespace hymm
