#include "core/hybrid_engine.hpp"

#include "common/check.hpp"
#include "obs/hooks.hpp"

namespace hymm {

HybridAggregationInfo run_hybrid_aggregation(
    MemorySystem& ms, const HybridAggregationParams& params) {
  HYMM_CHECK((params.tiled != nullptr) != (params.routed != nullptr));
  HYMM_CHECK(params.b != nullptr && params.c != nullptr);
  const RegionPartition& partition = params.routed != nullptr
                                         ? params.routed->partition
                                         : params.tiled->partition();
  const CscMatrix& op_csc = params.routed != nullptr
                                ? params.routed->op_csc
                                : params.tiled->region1_csc();
  const CsrMatrix& rwp_csr = params.routed != nullptr
                                 ? params.routed->rwp_csr
                                 : params.tiled->region23_csr();
  const NodeId rwp_row_offset = params.routed != nullptr
                                    ? params.routed->rwp_row_offset
                                    : partition.region1_rows;
  HYMM_CHECK(params.c->rows() == partition.nodes);

  HybridAggregationInfo info;
  info.pinned_rows = partition.region1_rows;
  const std::size_t chunks =
      (static_cast<std::size_t>(params.b->cols()) + kLaneCount - 1) /
      kLaneCount;

  // --- Phase 1: OP over region 1 with pinned outputs ---
  const bool accumulate = ms.config().near_memory_accumulator;
  const Cycle op_start = ms.now();
  SimStats before_op = ms.stats();
  before_op.cycles = ms.now();
  if (partition.region1_rows > 0 && op_csc.nnz() > 0) {
    if (accumulate) {
      for (NodeId r = 0; r < partition.region1_rows; ++r) {
        const Addr base = params.c_region.line_of(r, chunks);
        for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
          const bool pinned =
              ms.dmb().pin_partial(base + chunk * kLineBytes, ms.now());
          HYMM_CHECK_MSG(pinned,
                         "partition chose more region-1 rows than the DMB "
                         "can pin — partition_regions() must clamp this");
        }
      }
    }
    OpEngineParams op;
    op.sparse = &op_csc;
    op.sparse_class = TrafficClass::kAdjacency;
    op.b = params.b;
    op.b_region = params.b_region;
    op.b_class = params.b_class;
    op.c = params.c;
    op.c_region = params.c_region;
    op.c_final_class = TrafficClass::kOutput;
    op.spill_region = params.spill_region;
    op.accumulate_in_buffer = accumulate;
    op.outputs_pinned = accumulate;
    op.window = ms.config().engine_window;
    op.spatial_in_grid = true;
    op.spatial_region = SpatialRegion::kOp;
    OpEngine engine(ms, op);
    info.op_phase_cycles = run_phase(ms, engine);
    // Finished region-1 rows stream out exactly once.
    if (accumulate) ms.dmb().unpin_and_writeback_outputs(ms.now());
  }
  SimStats after_op = ms.stats();
  after_op.cycles = ms.now();
  info.op_phase_stats = stats_delta(after_op, before_op);
  HYMM_OBS(ms.observer(), region_span("region1 (OP)", op_start, ms.now()));

  // --- Phase 2: RWP over regions 2 and 3 ---
  const Cycle rwp_start = ms.now();
  if (rwp_csr.nnz() > 0) {
    RwpEngineParams rwp;
    rwp.sparse = &rwp_csr;
    rwp.sparse_class = TrafficClass::kAdjacency;
    rwp.b = params.b;
    rwp.b_region = params.b_region;
    rwp.b_class = params.b_class;
    rwp.c = params.c;
    rwp.c_region = params.c_region;
    rwp.c_class = TrafficClass::kOutput;
    rwp.c_store_kind = StoreKind::kThrough;
    rwp.row_offset = rwp_row_offset;
    rwp.region2_col_boundary = partition.region2_cols;
    rwp.window = ms.config().engine_window;
    // Spatial attribution follows the exact per-MAC region decision,
    // not the proportional region_stats split below.
    rwp.spatial_in_grid = true;
    rwp.spatial_region2 = SpatialRegion::kRwp;
    rwp.spatial_region3 = SpatialRegion::kRegion3;
    RwpEngine engine(ms, rwp);
    info.rwp_phase_cycles = run_phase(ms, engine);
    info.region2_macs = engine.region2_macs();
    info.region3_macs = engine.region3_macs();
  }
  SimStats after_rwp = ms.stats();
  after_rwp.cycles = ms.now();
  info.rwp_phase_stats = stats_delta(after_rwp, after_op);

  // --- Per-region breakdown ---
  info.region_stats[0] = info.op_phase_stats;
  const std::uint64_t rwp_macs = info.region2_macs + info.region3_macs;
  const double region2_share =
      rwp_macs == 0 ? 0.0
                    : static_cast<double>(info.region2_macs) /
                          static_cast<double>(rwp_macs);
  // Region 2 takes the scaled share; region 3 takes the remainder so
  // the two sum exactly to the RWP phase. MAC counts are exact.
  info.region_stats[1] = scale_stats(info.rwp_phase_stats, region2_share);
  info.region_stats[2] =
      stats_delta(info.rwp_phase_stats, info.region_stats[1]);
  info.region_stats[1].mac_ops = info.region2_macs;
  info.region_stats[2].mac_ops = info.region3_macs;

  if (Observer* obs = ms.observer(); obs != nullptr && rwp_macs > 0) {
    // Sub-span attribution mirrors the counter split: the RWP window
    // is divided proportionally to the per-region MAC counts.
    const Cycle split =
        rwp_start + static_cast<Cycle>(
                        static_cast<double>(ms.now() - rwp_start) *
                        region2_share);
    obs->region_span("region2 (RWP)", rwp_start, split);
    obs->region_span("region3 (RWP)", split, ms.now());
  }
  return info;
}

}  // namespace hymm
