#include "core/hybrid_engine.hpp"

#include "common/check.hpp"

namespace hymm {

HybridAggregationInfo run_hybrid_aggregation(
    MemorySystem& ms, const HybridAggregationParams& params) {
  HYMM_CHECK(params.tiled != nullptr && params.b != nullptr &&
             params.c != nullptr);
  const RegionPartition& partition = params.tiled->partition();
  HYMM_CHECK(params.c->rows() == partition.nodes);

  HybridAggregationInfo info;
  info.pinned_rows = partition.region1_rows;
  const std::size_t chunks =
      (static_cast<std::size_t>(params.b->cols()) + kLaneCount - 1) /
      kLaneCount;

  // --- Phase 1: OP over region 1 with pinned outputs ---
  const bool accumulate = ms.config().near_memory_accumulator;
  SimStats before_op = ms.stats();
  before_op.cycles = ms.now();
  if (partition.region1_rows > 0 &&
      params.tiled->region1_csc().nnz() > 0) {
    if (accumulate) {
      for (NodeId r = 0; r < partition.region1_rows; ++r) {
        const Addr base = params.c_region.line_of(r, chunks);
        for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
          const bool pinned =
              ms.dmb().pin_partial(base + chunk * kLineBytes, ms.now());
          HYMM_CHECK_MSG(pinned,
                         "partition chose more region-1 rows than the DMB "
                         "can pin — partition_regions() must clamp this");
        }
      }
    }
    OpEngineParams op;
    op.sparse = &params.tiled->region1_csc();
    op.sparse_class = TrafficClass::kAdjacency;
    op.b = params.b;
    op.b_region = params.b_region;
    op.b_class = params.b_class;
    op.c = params.c;
    op.c_region = params.c_region;
    op.c_final_class = TrafficClass::kOutput;
    op.spill_region = params.spill_region;
    op.accumulate_in_buffer = accumulate;
    op.outputs_pinned = accumulate;
    op.window = ms.config().engine_window;
    OpEngine engine(ms, op);
    info.op_phase_cycles = run_phase(ms, engine);
    // Finished region-1 rows stream out exactly once.
    if (accumulate) ms.dmb().unpin_and_writeback_outputs(ms.now());
  }
  SimStats after_op = ms.stats();
  after_op.cycles = ms.now();
  info.op_phase_stats = stats_delta(after_op, before_op);

  // --- Phase 2: RWP over regions 2 and 3 ---
  if (params.tiled->region23_csr().nnz() > 0) {
    RwpEngineParams rwp;
    rwp.sparse = &params.tiled->region23_csr();
    rwp.sparse_class = TrafficClass::kAdjacency;
    rwp.b = params.b;
    rwp.b_region = params.b_region;
    rwp.b_class = params.b_class;
    rwp.c = params.c;
    rwp.c_region = params.c_region;
    rwp.c_class = TrafficClass::kOutput;
    rwp.c_store_kind = StoreKind::kThrough;
    rwp.row_offset = partition.region1_rows;
    rwp.window = ms.config().engine_window;
    RwpEngine engine(ms, rwp);
    info.rwp_phase_cycles = run_phase(ms, engine);
  }
  SimStats after_rwp = ms.stats();
  after_rwp.cycles = ms.now();
  info.rwp_phase_stats = stats_delta(after_rwp, after_op);
  return info;
}

}  // namespace hymm
