/// @file
/// Experiment runner shared by the bench binaries, the examples and
/// the integration tests: builds a workload, simulates it under each
/// dataflow, verifies the functional output against the golden model
/// and distills the metrics the paper's figures report.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/accelerator.hpp"
#include "core/sampling.hpp"
#include "graph/datasets.hpp"
#include "linalg/gcn.hpp"
#include "obs/histogram.hpp"
#include "obs/spatial.hpp"
#include "obs/timeseries.hpp"

/// Everything in the HyMM reproduction — simulator, graph pipeline,
/// sweep harness and auto-tuner — lives in this namespace.
namespace hymm {

/// One evaluated tuner candidate, as recorded in the run report.
struct TuneCandidateInfo {
  double threshold = 0.0;        ///< candidate tiling threshold
  double model_cycles = 0.0;     ///< analytic cost-model estimate
  double measured_cycles = 0.0;  ///< simulated cycles; 0 if not simulated
};

/// Driver-level annotation describing how a result's tiling threshold
/// was chosen (src/tune/). Plain data: core does not depend on the
/// tuner library — drivers that ran the tuner attach the decision to
/// their hybrid results, and the JSON run report (hymm-run-report/4)
/// serializes it under "tune".
struct TuneInfo {
  bool enabled = false;          ///< false = fixed config threshold
  std::string mode;              ///< "analytic" | "measured"
  double fixed_threshold = 0.0;  ///< baseline before tuning
  double threshold = 0.0;        ///< threshold actually simulated
  bool cache_hit = false;        ///< decision served from the tune cache
  std::uint64_t simulations = 0; ///< candidate simulations this run paid
  std::string graph_fingerprint; ///< hex digest of the tuned workload
  std::string config_hash;       ///< hex digest of the timing config
  std::vector<TuneCandidateInfo> candidates;  ///< search detail (empty on hits)
};

/// Driver-level annotation describing how a hybrid result's per-tile
/// routing map was chosen (src/tune/router.hpp). Plain data, like
/// TuneInfo: core does not depend on the router library — drivers
/// that ran the TileRouter attach the decision (and a copy of the
/// map) to their hybrid results, and the JSON run report
/// (hymm-run-report/8) serializes it under "route".
struct RouteInfo {
  bool enabled = false;     ///< false = global 3-region split, no map
  std::string mode;         ///< "analytic" | "measured"
  /// True when the router fell back to the degenerate map (the global
  /// split won); the run is then bit-identical to --route=global.
  bool degenerate = true;
  bool cache_hit = false;   ///< decision served from the tune cache
  std::uint64_t simulations = 0;  ///< candidate simulations this run paid
  double global_threshold = 0.0;  ///< tiling threshold the map was built on
  double predicted_global_cycles = 0.0;  ///< cost model, degenerate map
  double predicted_tiled_cycles = 0.0;   ///< cost model, chosen map
  NodeId nodes = 0;          ///< adjacency dimension the map covers
  NodeId tile = 0;           ///< tile edge in nodes
  std::size_t grid_rows = 0; ///< routing grid rows (== cols)
  std::size_t grid_cols = 0; ///< routing grid cols
  NodeId op_rows = 0;        ///< pinned-output prefix of the map
  NodeId region2_cols = 0;   ///< RWP hot-column boundary of the map
  /// Per-tile chosen flow, row-major (0 = OP, 1 = RWP), for the
  /// report's routing-map attribution and render_heatmap
  /// --metric=route.
  std::vector<std::uint8_t> tile_flows;
  /// Cost-model cycle prediction per tile (row-major; empty when the
  /// map skipped the cost model). Compared against the actual spatial
  /// per-tile cycles when --spatial is on.
  std::vector<double> tile_predicted_cycles;
  /// Adjacency nonzeros per tile (row-major; empty when unknown).
  std::vector<std::uint64_t> tile_nnz;
  std::string graph_fingerprint; ///< hex digest of the routed workload
  std::string config_hash;       ///< hex digest of the timing config
};

/// Distilled metrics of one simulated (dataset, dataflow, config)
/// cell: the paper-figure numbers up front, full counter sets and
/// per-phase/per-region breakdowns behind them.
struct ExperimentResult {
  std::string dataset;  ///< full dataset name ("Cora")
  std::string abbrev;   ///< Table II abbreviation ("CR")
  double scale = 1.0;   ///< simulation scale factor (1 = full size)
  Dataflow flow = Dataflow::kRowWiseProduct;  ///< dataflow simulated

  Cycle cycles = 0;              ///< total layer cycles (Fig 7)
  double alu_utilization = 0.0;  ///< Fig 8
  double dmb_hit_rate = 0.0;     ///< Fig 9
  std::uint64_t dram_total_bytes = 0;  ///< Fig 11 (total)
  std::array<std::uint64_t, kTrafficClassCount> dram_read_bytes{};   ///< Fig 11 per class
  std::array<std::uint64_t, kTrafficClassCount> dram_write_bytes{};  ///< Fig 11 per class
  std::uint64_t partial_bytes_peak = 0;  ///< Fig 10
  std::uint64_t mac_ops = 0;             ///< retired multiply-accumulates

  /// Configured DRAM peak (bytes per cycle); with cycles and
  /// dram_total_bytes this yields the bandwidth-roofline utilization
  /// reported alongside the bottleneck verdict.
  std::uint64_t dram_peak_bytes_per_cycle = 0;
  /// Fraction of the DRAM bandwidth roofline this run consumed.
  double dram_bw_utilization() const {
    const double peak =
        static_cast<double>(dram_peak_bytes_per_cycle) *
        static_cast<double>(cycles);
    return peak > 0.0 ? static_cast<double>(dram_total_bytes) / peak : 0.0;
  }

  Cycle combination_cycles = 0;  ///< XW phase share of `cycles`
  Cycle aggregation_cycles = 0;  ///< A_hat*XW phase share of `cycles`
  double preprocess_ms = 0.0;  ///< Table II sorting cost (hybrid only)
  /// Host wall-clock of the simulation itself (run_layer, excluding
  /// workload build and verification) — the perf-gate artifact's
  /// wall-clock evidence. Machine-dependent; never gated on.
  double sim_wall_ms = 0.0;
  RegionPartition partition;   ///< hybrid only

  bool verified = false;     ///< matches the golden model
  double max_abs_err = 0.0;  ///< worst element error vs. the golden model

  /// Full whole-layer counter set (the fields above are the distilled
  /// figure metrics; this keeps everything for reports).
  SimStats stats;

  /// Per-phase counter deltas and the hybrid's per-region breakdown
  /// (hybrid_info.region_stats; zeroed for RWP/OP runs). The JSON run
  /// report serializes all of these.
  SimStats combination_stats;        ///< XW-phase counter delta
  SimStats aggregation_stats;        ///< aggregation-phase counter delta
  HybridAggregationInfo hybrid_info; ///< per-region stats (hybrid only)

  /// How the tiling threshold was picked (tune.enabled=false means the
  /// fixed config value was used). Filled by drivers, not by
  /// run_experiment itself.
  TuneInfo tune;

  /// How the per-tile routing map was chosen (route.enabled=false
  /// means the global 3-region split ran). Filled by drivers that ran
  /// the TileRouter, not by run_experiment itself. Serialized as the
  /// "route" object of hymm-run-report/8.
  RouteInfo route;

  /// Warm-state checkpoint interaction of the combination phase
  /// (sim/checkpoint.hpp); all-false unless the request passed a
  /// CheckpointStore. Serialized as the "checkpoint" object of
  /// hymm-run-report/8.
  LayerCheckpointInfo checkpoint;

  /// Sampled-mode annotation (core/sampling.hpp): enabled=false on
  /// exact runs. On sampled runs `cycles` and every counter above are
  /// ratio-estimator extrapolations with the error bars recorded
  /// here, `verified` is always false (band runs produce no
  /// functional output), and the run report labels the result
  /// `"sampled": true`. Serialized as the "sample" object of
  /// hymm-run-report/8.
  SampleInfo sample;

  /// Per-run latency/duration histograms (obs/histogram.hpp), taken
  /// from the request's observer after the layer ran. Empty when the
  /// request had no observer.
  RunHistograms histograms;

  /// Windowed time-series telemetry (obs/timeseries.hpp), taken from
  /// the request's observer. Empty unless the observer was built with
  /// ObserverOptions::timeseries (the --timeseries / HYMM_TIMESERIES
  /// knob). Serialized in the run report (hymm-run-report/5).
  TimeSeriesData timeseries;

  /// Spatial attribution (obs/spatial.hpp): per-PE-lane busy/MAC
  /// counters and the per-tile heatmap over the adjacency. Empty
  /// unless the observer was built with ObserverOptions::spatial (the
  /// --spatial / HYMM_SPATIAL knob). Serialized as the "spatial"
  /// object of hymm-run-report/8; conservation against `stats` is
  /// DCHECKed when taken.
  SpatialData spatial;

  /// Wall-clock the modeled hardware would take at `clock_ghz`.
  double runtime_ms(double clock_ghz = 1.0) const {
    return static_cast<double>(cycles) / (clock_ghz * 1e6);
  }
};

/// Everything one experiment needs, named instead of positional.
/// workload/a_hat/weights/reference are required and shared immutably
/// across flows (and, via the sweep executor's WorkloadCache, across
/// threads) to avoid rebuilding them. `observer` (optional) collects
/// metrics and trace events; it never affects timing. `sort` +
/// `sorted_features` optionally hand the hybrid its degree-sorting
/// preprocessing precomputed (see LayerRunRequest).
struct ExperimentRequest {
  const GcnWorkload* workload = nullptr;   ///< required: the input graph
  const CsrMatrix* a_hat = nullptr;        ///< required: normalized adjacency
  const DenseMatrix* weights = nullptr;    ///< required: layer weights
  const DenseMatrix* reference = nullptr;  ///< golden aggregation output
  Dataflow flow = Dataflow::kRowWiseProduct;  ///< dataflow to simulate
  AcceleratorConfig config;                ///< hardware parameters
  Observer* observer = nullptr;            ///< optional; never affects timing
  const DegreeSortResult* sort = nullptr;  ///< optional precomputed sort
  const CsrMatrix* sorted_features = nullptr;  ///< features under `sort`
  /// Optional per-tile routing map (core/routing.hpp), hybrid flow
  /// only: forwarded to LayerRunRequest::route. The map lives in
  /// degree-sorted coordinates and must cover the workload's node
  /// count. On sampled runs (`sample` > 0) the map is ignored — band
  /// extrapolation samples the global split — and the result's
  /// route annotation stays disabled.
  const TileRoutingMap* route = nullptr;
  /// Optional warm-state checkpoint store (sim/checkpoint.hpp): cells
  /// sharing a combination workload simulate it once and restore the
  /// boundary state bit-identically. Ignored when `observer` is set.
  CheckpointStore* checkpoints = nullptr;
  /// Sampled-simulation fraction (0 = exact run). When > 0 the layer
  /// runs in sampled mode (core/sampling.hpp): cycles/stalls/DRAM
  /// bytes are seeded-subset extrapolations with error bars, the
  /// result is never functionally verified, and observer/checkpoints
  /// are ignored.
  double sample = 0.0;
  /// Band-selection seed of sampled runs.
  std::uint64_t sample_seed = 42;
};

/// Simulates one GCN layer of the request's workload under its flow
/// and verifies the result against the golden reference.
ExperimentResult run_experiment(const ExperimentRequest& request);

/// All requested dataflows simulated on one shared workload build.
struct DataflowComparison {
  DatasetSpec spec;    ///< post-scaling
  double scale = 1.0;  ///< scale the workload was built at
  std::vector<ExperimentResult> results;  ///< one per requested flow

  /// The result for `flow`; aborts if it was not requested.
  const ExperimentResult& by_flow(Dataflow flow) const;
};

/// Builds the dataset's synthetic workload once and runs every
/// requested dataflow on it. `scale < 0` selects default_scale(spec).
/// With an observer, each flow becomes its own trace process group
/// (labelled "<flow>/<abbrev>") in the shared trace file.
DataflowComparison compare_dataflows(
    const DatasetSpec& spec, const AcceleratorConfig& config,
    const std::vector<Dataflow>& flows =
        {Dataflow::kOuterProduct, Dataflow::kRowWiseProduct,
         Dataflow::kHybrid},
    double scale = -1.0, std::uint64_t seed = 42, Observer* obs = nullptr);

}  // namespace hymm
