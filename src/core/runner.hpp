// Experiment runner shared by the bench binaries, the examples and
// the integration tests: builds a workload, simulates it under each
// dataflow, verifies the functional output against the golden model
// and distills the metrics the paper's figures report.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/accelerator.hpp"
#include "graph/datasets.hpp"
#include "linalg/gcn.hpp"

namespace hymm {

struct ExperimentResult {
  std::string dataset;
  std::string abbrev;
  double scale = 1.0;
  Dataflow flow = Dataflow::kRowWiseProduct;

  Cycle cycles = 0;
  double alu_utilization = 0.0;  // Fig 8
  double dmb_hit_rate = 0.0;     // Fig 9
  std::uint64_t dram_total_bytes = 0;  // Fig 11 (total)
  std::array<std::uint64_t, kTrafficClassCount> dram_read_bytes{};
  std::array<std::uint64_t, kTrafficClassCount> dram_write_bytes{};
  std::uint64_t partial_bytes_peak = 0;  // Fig 10
  std::uint64_t mac_ops = 0;

  // Configured DRAM peak (bytes per cycle); with cycles and
  // dram_total_bytes this yields the bandwidth-roofline utilization
  // reported alongside the bottleneck verdict.
  std::uint64_t dram_peak_bytes_per_cycle = 0;
  double dram_bw_utilization() const {
    const double peak =
        static_cast<double>(dram_peak_bytes_per_cycle) *
        static_cast<double>(cycles);
    return peak > 0.0 ? static_cast<double>(dram_total_bytes) / peak : 0.0;
  }

  Cycle combination_cycles = 0;
  Cycle aggregation_cycles = 0;
  double preprocess_ms = 0.0;  // Table II sorting cost (hybrid only)
  // Host wall-clock of the simulation itself (run_layer, excluding
  // workload build and verification) — the perf-gate artifact's
  // wall-clock evidence. Machine-dependent; never gated on.
  double sim_wall_ms = 0.0;
  RegionPartition partition;   // hybrid only

  bool verified = false;    // matches the golden model
  double max_abs_err = 0.0;

  // Full whole-layer counter set (the fields above are the distilled
  // figure metrics; this keeps everything for reports).
  SimStats stats;

  // Per-phase counter deltas and the hybrid's per-region breakdown
  // (hybrid_info.region_stats; zeroed for RWP/OP runs). The JSON run
  // report serializes all of these.
  SimStats combination_stats;
  SimStats aggregation_stats;
  HybridAggregationInfo hybrid_info;

  double runtime_ms(double clock_ghz = 1.0) const {
    return static_cast<double>(cycles) / (clock_ghz * 1e6);
  }
};

// Everything one experiment needs, named instead of positional.
// workload/a_hat/weights/reference are required and shared immutably
// across flows (and, via the sweep executor's WorkloadCache, across
// threads) to avoid rebuilding them. `observer` (optional) collects
// metrics and trace events; it never affects timing. `sort` +
// `sorted_features` optionally hand the hybrid its degree-sorting
// preprocessing precomputed (see LayerRunRequest).
struct ExperimentRequest {
  const GcnWorkload* workload = nullptr;
  const CsrMatrix* a_hat = nullptr;
  const DenseMatrix* weights = nullptr;
  const DenseMatrix* reference = nullptr;  // golden aggregation output
  Dataflow flow = Dataflow::kRowWiseProduct;
  AcceleratorConfig config;
  Observer* observer = nullptr;
  const DegreeSortResult* sort = nullptr;
  const CsrMatrix* sorted_features = nullptr;
};

// Simulates one GCN layer of the request's workload under its flow
// and verifies the result against the golden reference.
ExperimentResult run_experiment(const ExperimentRequest& request);

// Deprecated forwarding overload (kept for one PR while callers
// migrate to ExperimentRequest; new code should build a request).
ExperimentResult run_experiment(const GcnWorkload& workload,
                                const CsrMatrix& a_hat,
                                const DenseMatrix& weights,
                                const DenseMatrix& reference_output,
                                Dataflow flow,
                                const AcceleratorConfig& config,
                                Observer* obs = nullptr);

struct DataflowComparison {
  DatasetSpec spec;  // post-scaling
  double scale = 1.0;
  std::vector<ExperimentResult> results;  // one per requested flow

  const ExperimentResult& by_flow(Dataflow flow) const;
};

// Builds the dataset's synthetic workload once and runs every
// requested dataflow on it. `scale < 0` selects default_scale(spec).
// With an observer, each flow becomes its own trace process group
// (labelled "<flow>/<abbrev>") in the shared trace file.
DataflowComparison compare_dataflows(
    const DatasetSpec& spec, const AcceleratorConfig& config,
    const std::vector<Dataflow>& flows =
        {Dataflow::kOuterProduct, Dataflow::kRowWiseProduct,
         Dataflow::kHybrid},
    double scale = -1.0, std::uint64_t seed = 42, Observer* obs = nullptr);

}  // namespace hymm
