// Engine framework: the component bundle every dataflow engine runs
// against, and the cycle loop that advances a phase to completion.
#pragma once

#include <memory>

#include "common/config.hpp"
#include "obs/observer.hpp"
#include "sim/address_map.hpp"
#include "sim/dmb.hpp"
#include "sim/dram.hpp"
#include "sim/lsq.hpp"
#include "sim/pe.hpp"
#include "sim/smq.hpp"
#include "sim/stats.hpp"

namespace hymm {

// All hardware component models of one accelerator instance. The
// bundle persists across phases of a layer so the unified buffer and
// the LSQ keep their contents between combination and aggregation
// (Sections III and IV-B).
class MemorySystem {
 public:
  explicit MemorySystem(const AcceleratorConfig& config);

  const AcceleratorConfig& config() const { return config_; }
  SimStats& stats() { return stats_; }
  const SimStats& stats() const { return stats_; }
  AddressMap& address_map() { return address_map_; }
  Dram& dram() { return dram_; }
  const Dram& dram() const { return dram_; }
  DenseMatrixBuffer& dmb() { return dmb_; }
  const DenseMatrixBuffer& dmb() const { return dmb_; }
  LoadStoreQueue& lsq() { return lsq_; }
  const LoadStoreQueue& lsq() const { return lsq_; }
  SparseMatrixQueue& smq() { return smq_; }
  const SparseMatrixQueue& smq() const { return smq_; }
  PeArray& pe() { return pe_; }

  Cycle now() const { return now_; }

  // Wires the observability context into every component model and
  // starts counter-track sampling. nullptr detaches. Attaching never
  // changes timing: hooks only read simulator state.
  void attach_observer(Observer* obs);
  Observer* observer() const { return obs_; }

  // Delivers completions / retries / drains for the current cycle.
  // The phase loop calls this before the engine's tick.
  void tick_components();

  // Forces a counter-track sample right now (end of a phase, so the
  // final cumulative stall buckets reach the gauges and the trace).
  // Reads state only; never advances or mutates the simulation.
  void sample_observer();

  // Advances to the next cycle.
  void advance() { ++now_; }

 private:
  AcceleratorConfig config_;
  SimStats stats_;
  AddressMap address_map_;
  Dram dram_;
  DenseMatrixBuffer dmb_;
  LoadStoreQueue lsq_;
  SparseMatrixQueue smq_;
  PeArray pe_;
  Cycle now_ = 0;
  Observer* obs_ = nullptr;
  Cycle obs_next_sample_ = 0;
};

// A dataflow engine: one phase of SpDeMM work expressed as a
// per-cycle state machine.
class Engine {
 public:
  virtual ~Engine() = default;

  // All work retired and all queues the engine owns are empty.
  virtual bool done(const MemorySystem& ms) const = 0;

  // One cycle of engine work at ms.now().
  virtual void tick(MemorySystem& ms) = 0;

  // Cycle accounting: what the cycle just ticked was spent on. The
  // phase loop records exactly one cause per cycle, so per-phase
  // bucket sums equal per-phase cycle counts by construction.
  virtual StallCause cycle_cause() const = 0;
};

// Maps a blocked load's wait state to the stall bucket it charges.
// kReady maps to kDmbMiss: the data arrived this very cycle but the
// engine observed the pre-tick state — a pipeline ramp bubble charged
// to the buffer that delayed it.
inline StallCause stall_cause_for(LoadStoreQueue::LoadWait wait) {
  switch (wait) {
    case LoadStoreQueue::LoadWait::kDramFill:
      return StallCause::kDramLatency;
    case LoadStoreQueue::LoadWait::kUnissued:
      return StallCause::kDramBandwidth;
    case LoadStoreQueue::LoadWait::kDmbPending:
    case LoadStoreQueue::LoadWait::kReady:
      return StallCause::kDmbMiss;
  }
  return StallCause::kDmbMiss;
}

// Runs `engine` until done (plus store/DRAM drain). Throws CheckError
// when max_cycles elapse first — a hung engine is a bug, not a slow
// workload. Returns the cycles consumed by this phase.
Cycle run_phase(MemorySystem& ms, Engine& engine,
                Cycle max_cycles = 2'000'000'000);

}  // namespace hymm
