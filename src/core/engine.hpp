/// @file
/// Engine framework: the component bundle every dataflow engine runs
/// against, and the cycle loop that advances a phase to completion.
#pragma once

#include <algorithm>
#include <memory>

#include "common/config.hpp"
#include "obs/observer.hpp"
#include "sim/address_map.hpp"
#include "sim/dmb.hpp"
#include "sim/dram.hpp"
#include "sim/lsq.hpp"
#include "sim/pe.hpp"
#include "sim/smq.hpp"
#include "sim/stats.hpp"

namespace hymm {

class StateReader;
class StateWriter;

/// Event-driven fast-forward (see DESIGN.md section 5f). kOn skips
/// provably dead stall spans in run_phase; kOff keeps the legacy
/// cycle-by-cycle loop; kCheck runs the legacy loop but DCHECKs every
/// skip the fast path would have taken (span stays quiescent, cause
/// stays constant) — legacy-exact results plus soundness validation.
enum class FastForwardMode { kOff, kOn, kCheck };

/// Process-wide mode. Initialized lazily from the environment:
/// HYMM_NO_FASTFWD=1 selects kOff (and wins over everything),
/// HYMM_FASTFWD_CHECK=1 selects kCheck, default is kOn.
FastForwardMode fast_forward_mode();

/// Test override; pass-through to subsequent fast_forward_mode() calls.
void set_fast_forward_mode(FastForwardMode mode);

/// All hardware component models of one accelerator instance. The
/// bundle persists across phases of a layer so the unified buffer and
/// the LSQ keep their contents between combination and aggregation
/// (Sections III and IV-B).
class MemorySystem {
 public:
  /// Builds every component from the hardware parameters in `config`.
  explicit MemorySystem(const AcceleratorConfig& config);

  /// The hardware parameters this instance was built from.
  const AcceleratorConfig& config() const { return config_; }
  /// Mutable cycle/traffic counters of the current run.
  SimStats& stats() { return stats_; }
  /// Cycle/traffic counters of the current run.
  const SimStats& stats() const { return stats_; }
  /// Region allocator mapping operands to address ranges.
  AddressMap& address_map() { return address_map_; }
  /// Off-chip memory model.
  Dram& dram() { return dram_; }
  /// Off-chip memory model.
  const Dram& dram() const { return dram_; }
  /// Unified on-chip dense-matrix buffer.
  DenseMatrixBuffer& dmb() { return dmb_; }
  /// Unified on-chip dense-matrix buffer.
  const DenseMatrixBuffer& dmb() const { return dmb_; }
  /// Load/store queue in front of the DMB and DRAM.
  LoadStoreQueue& lsq() { return lsq_; }
  /// Load/store queue in front of the DMB and DRAM.
  const LoadStoreQueue& lsq() const { return lsq_; }
  /// Sparse-matrix queue streaming non-zeros to the engines.
  SparseMatrixQueue& smq() { return smq_; }
  /// Sparse-matrix queue streaming non-zeros to the engines.
  const SparseMatrixQueue& smq() const { return smq_; }
  /// PE array issue model.
  PeArray& pe() { return pe_; }

  /// Current simulated cycle.
  Cycle now() const { return now_; }

  /// Wires the observability context into every component model and
  /// starts counter-track sampling. nullptr detaches. Attaching never
  /// changes timing: hooks only read simulator state.
  void attach_observer(Observer* obs);
  /// The attached observer, or nullptr.
  Observer* observer() const { return obs_; }

  /// Delivers completions / retries / drains for the current cycle.
  /// The phase loop calls this before the engine's tick.
  void tick_components();

  /// True when none of the component ticks at the current cycle made
  /// an observable state change — together with an engine that made no
  /// progress, the precondition for fast-forwarding.
  bool components_quiescent() const {
    return !dram_.ticked_active() && !dmb_.ticked_active() &&
           !lsq_.ticked_active() && !smq_.ticked_active();
  }

  /// Earliest future cycle at which any component changes state on its
  /// own (kNoEvent when nothing is scheduled).
  Cycle next_component_event() const {
    return std::min(std::min(dram_.next_event(now_), dmb_.next_event(now_)),
                    std::min(lsq_.next_event(now_), smq_.next_event(now_)));
  }

  /// Jumps the clock from just after the current (already accounted)
  /// cycle straight to `target`, bulk-charging the skipped span to
  /// `cause`, replaying the periodic footprint samples the span would
  /// have taken (the footprint is constant across a quiescent span)
  /// and emitting one aggregated observer sample in place of the
  /// per-cycle ones. Preserves sum(stall buckets) == cycles.
  void fast_forward_to(Cycle target, StallCause cause);

  /// Forces a counter-track sample right now (end of a phase, so the
  /// final cumulative stall buckets reach the gauges and the trace).
  /// Reads state only; never advances or mutates the simulation.
  void sample_observer();

  /// Snapshot of the current component state for the windowed
  /// time-series (obs/timeseries.hpp). Pure read; the sampler calls it
  /// at due cycles and the fast-forward replay derives skipped-span
  /// samples from it.
  TimeSeriesSample timeseries_sample() const;

  /// Advances to the next cycle.
  void advance() { ++now_; }

  /// Warm-state checkpointing (sim/checkpoint.hpp): serializes the
  /// clock, the stats counters and every component's dynamic state.
  /// The address map is NOT serialized — restore requires a
  /// MemorySystem built from the same config whose regions were
  /// allocated in the same order with the same sizes, which the
  /// checkpoint key guarantees for the combination phase. Restoring
  /// must happen before an observer is attached (checkpointed runs are
  /// observer-free by construction; see Accelerator::run_layer).
  void save_state(StateWriter& w) const;
  /// Restores state saved by save_state; see its contract.
  void load_state(StateReader& r);

 private:
  AcceleratorConfig config_;
  SimStats stats_;
  AddressMap address_map_;
  Dram dram_;
  DenseMatrixBuffer dmb_;
  LoadStoreQueue lsq_;
  SparseMatrixQueue smq_;
  PeArray pe_;
  Cycle now_ = 0;
  Observer* obs_ = nullptr;
  Cycle obs_next_sample_ = 0;
};

/// A dataflow engine: one phase of SpDeMM work expressed as a
/// per-cycle state machine.
class Engine {
 public:
  virtual ~Engine() = default;

  /// All work retired and all queues the engine owns are empty.
  virtual bool done(const MemorySystem& ms) const = 0;

  /// One cycle of engine work at ms.now().
  virtual void tick(MemorySystem& ms) = 0;

  /// Cycle accounting: what the cycle just ticked was spent on. The
  /// phase loop records exactly one cause per cycle, so per-phase
  /// bucket sums equal per-phase cycle counts by construction.
  virtual StallCause cycle_cause() const = 0;

  /// Fast-forward contract (DESIGN.md section 5f). quiescent() is true
  /// when the tick that just ran made zero observable state changes
  /// AND the next tick is guaranteed to repeat that outcome until a
  /// component event or engine event arrives. Engines must return
  /// false whenever they are blocked on a predicate that flips with
  /// bare time (e.g. PeArray::can_issue). The default keeps unported
  /// engines on the legacy cycle-by-cycle path.
  virtual bool quiescent() const { return false; }

  /// Earliest future cycle at which the engine's own timers fire
  /// (kNoEvent when it has none); component events are tracked by the
  /// MemorySystem separately.
  virtual Cycle next_event(Cycle now) const {
    (void)now;
    return kNoEvent;
  }
};

/// Maps a blocked load's wait state to the stall bucket it charges.
/// kReady maps to kDmbMiss: the data arrived this very cycle but the
/// engine observed the pre-tick state — a pipeline ramp bubble charged
/// to the buffer that delayed it.
inline StallCause stall_cause_for(LoadStoreQueue::LoadWait wait) {
  switch (wait) {
    case LoadStoreQueue::LoadWait::kDramFill:
      return StallCause::kDramLatency;
    case LoadStoreQueue::LoadWait::kUnissued:
      return StallCause::kDramBandwidth;
    case LoadStoreQueue::LoadWait::kDmbPending:
    case LoadStoreQueue::LoadWait::kReady:
      return StallCause::kDmbMiss;
  }
  return StallCause::kDmbMiss;
}

/// Runs `engine` until done (plus store/DRAM drain). Throws CheckError
/// when max_cycles elapse first — a hung engine is a bug, not a slow
/// workload. Returns the cycles consumed by this phase.
///
/// Under FastForwardMode::kOn, whole stall spans where the engine and
/// every component are quiescent are jumped in one step; cycle counts,
/// stall vectors and DRAM byte counters are bit-identical to the
/// legacy loop (enforced by tests/test_fastforward.cpp and the
/// HYMM_FASTFWD_CHECK CI leg).
Cycle run_phase(MemorySystem& ms, Engine& engine,
                Cycle max_cycles = 2'000'000'000);

}  // namespace hymm
