#include "core/rwp_engine.hpp"

#include "common/check.hpp"
#include "obs/hooks.hpp"

namespace hymm {

namespace {
// 64-byte lines needed per dense row of `cols` floats.
std::size_t lines_per_row(NodeId cols) {
  return (static_cast<std::size_t>(cols) + kLaneCount - 1) / kLaneCount;
}
}  // namespace

RwpEngine::RwpEngine(MemorySystem& ms, const RwpEngineParams& params)
    : params_(params) {
  HYMM_CHECK(params_.sparse != nullptr && params_.b != nullptr &&
             params_.c != nullptr);
  HYMM_CHECK(params_.sparse->cols() == params_.b->rows());
  HYMM_CHECK(params_.c->cols() == params_.b->cols());
  HYMM_CHECK(params_.sparse->rows() + params_.row_offset <=
             params_.c->rows());
  HYMM_CHECK(params_.window > 0);
  chunks_ = lines_per_row(params_.b->cols());
  ms.smq().attach_csr(*params_.sparse, params_.sparse_class);
}

bool RwpEngine::done(const MemorySystem& ms) const {
  return ms.smq().finished() && pending_.empty() &&
         pending_stores_.empty();
}

void RwpEngine::tick(MemorySystem& ms) {
  attributed_.reset();
  progressed_ = false;
  try_retire(ms);
  try_issue(ms);
  resolve_cause(ms);
}

void RwpEngine::resolve_cause(const MemorySystem& ms) {
  // Priority: what the retire path decided > the head load's wait
  // state > why no work could be issued > end-of-phase drain.
  if (attributed_.has_value()) {
    cause_ = *attributed_;
    return;
  }
  if (!pending_.empty()) {
    cause_ = stall_cause_for(ms.lsq().load_wait_state(pending_.front().load_id));
    return;
  }
  if (!ms.smq().finished()) {
    // Nothing in flight: either the SMQ has a non-zero we could not
    // take (LSQ lacks headroom) or the SMQ itself is still streaming.
    cause_ = ms.smq().has_ready() ? StallCause::kLsqFull
                                  : StallCause::kSmqBacklog;
    return;
  }
  cause_ = StallCause::kDrain;
}

std::span<const Value> RwpEngine::b_lanes(NodeId row,
                                          std::size_t chunk) const {
  const auto full = params_.b->row(row);
  const std::size_t begin = chunk * kLaneCount;
  const std::size_t count = std::min(kLaneCount, full.size() - begin);
  return full.subspan(begin, count);
}

std::span<Value> RwpEngine::c_lanes(NodeId row, std::size_t chunk) const {
  const auto full = params_.c->row(row);
  const std::size_t begin = chunk * kLaneCount;
  const std::size_t count = std::min(kLaneCount, full.size() - begin);
  return full.subspan(begin, count);
}

void RwpEngine::try_issue(MemorySystem& ms) {
  // One SMQ entry per cycle ("LSQ reads a single scalar data from SMQ
  // and broadcasts it to all PEs", Section IV-C); a wide dense row
  // expands into one work item per 64-byte chunk.
  if (pending_.size() + chunks_ > params_.window) return;
  if (!ms.smq().has_ready()) return;
  // Keep headroom for stores: never fill the LSQ completely.
  if (ms.lsq().free_entries() < chunks_ + 1) return;
  const SmqEntry& entry = ms.smq().front();
  const Addr base = params_.b_region.line_of(entry.inner, chunks_);
  for (std::size_t chunk = 0; chunk < chunks_; ++chunk) {
    const auto load_id = ms.lsq().load(
        base + chunk * kLineBytes, params_.b_class, ms.now());
    HYMM_DCHECK(load_id.has_value());  // headroom was checked
    Pending p;
    p.row = entry.outer;
    p.col = entry.inner;
    p.value = entry.value;
    p.chunk = chunk;
    p.last_of_row = entry.last_of_outer && chunk + 1 == chunks_;
    p.load_id = *load_id;
    pending_.push_back(p);
  }
  ms.smq().pop();
  progressed_ = true;
}

void RwpEngine::try_retire(MemorySystem& ms) {
  // Pending output-line stores block retirement (the stationary
  // buffer still holds the finished row).
  while (!pending_stores_.empty()) {
    if (!ms.lsq().store(pending_stores_.front(), params_.c_class,
                        params_.c_store_kind, ms.now())) {
      attributed_ = StallCause::kLsqFull;
      return;
    }
    pending_stores_.pop_front();
    progressed_ = true;
  }
  if (pending_.empty()) return;
  Pending& head = pending_.front();
  if (!ms.lsq().is_ready(head.load_id)) return;
  if (!ms.pe().can_issue(ms.now())) {
    // can_issue flips with bare time: the very next cycle can retire,
    // so this cycle is never quiescent.
    progressed_ = true;
    attributed_ = StallCause::kAccumulatorConflict;
    return;
  }

  const NodeId out_row = head.row + params_.row_offset;
  if (params_.spatial_in_grid) {
    // Adjacency coordinate of the retiring non-zero; the region split
    // reuses the exact region2_col_boundary comparison below.
    HYMM_OBS(ms.observer(),
             spatial_mac(out_row, head.col,
                         head.col < params_.region2_col_boundary
                             ? params_.spatial_region2
                             : params_.spatial_region3,
                         head.chunk == 0));
  }
  ms.pe().mac(head.value, b_lanes(head.col, head.chunk),
              c_lanes(out_row, head.chunk), ms.now());
  ms.lsq().release_load(head.load_id);
  ++retired_;
  progressed_ = true;
  attributed_ = StallCause::kCompute;
  if (head.col < params_.region2_col_boundary) {
    ++region2_macs_;
  } else {
    ++region3_macs_;
  }
  HYMM_OBS(ms.observer(), observe_engine_window(pending_.size()));

  if (head.last_of_row) {
    const Addr base = params_.c_region.line_of(out_row, chunks_);
    for (std::size_t chunk = 0; chunk < chunks_; ++chunk) {
      pending_stores_.push_back(base + chunk * kLineBytes);
    }
  }
  pending_.pop_front();
  // Try to issue the first store in the same cycle (a one-line row
  // thus costs no extra cycle, matching the narrow-layer behaviour).
  while (!pending_stores_.empty()) {
    if (!ms.lsq().store(pending_stores_.front(), params_.c_class,
                        params_.c_store_kind, ms.now())) {
      return;
    }
    pending_stores_.pop_front();
  }
}

}  // namespace hymm
