#include "core/sampling.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "core/op_engine.hpp"
#include "core/rwp_engine.hpp"

namespace hymm {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// One simulated band: its non-zero weight and its counter delta
// (stats.cycles = cycles this band consumed on the shared machine).
struct BandRun {
  std::uint64_t nnz = 0;
  SimStats stats;
};

// Warm-start-corrected ratio extrapolation (see sampling.hpp file
// comment). All bands of a phase run back-to-back on one shared
// MemorySystem, so the first band pays the phase's compulsory misses
// (the W matrix, the hot XW rows) and later bands run warm, like the
// bulk of an exact run. With k >= 2 bands the estimate is
//   t = y_1 + R_warm * (X - x_1),   R_warm = sum_{i>=2} y_i / x_i
// — the cold band enters once, unscaled, and only the warm rate is
// extrapolated. With a single band only the plain ratio t = X/x_1 *
// y_1 is available (biased high by the then-extrapolated cold start).
PhaseSampleEstimate extrapolate(const std::vector<BandRun>& runs,
                                std::uint64_t bands_total,
                                std::uint64_t nnz_total) {
  PhaseSampleEstimate est;
  est.bands_total = bands_total;
  est.bands_simulated = runs.size();
  est.nnz_total = nnz_total;
  for (const BandRun& r : runs) est.nnz_simulated += r.nnz;
  if (runs.empty()) return est;

  const std::size_t k = runs.size();
  std::uint64_t warm_nnz = 0;
  SimStats warm_sum;
  for (std::size_t i = 1; i < k; ++i) {
    warm_nnz += runs[i].nnz;
    warm_sum.merge_phase(runs[i].stats);
  }

  if (k >= 2 && warm_nnz > 0 && nnz_total >= est.nnz_simulated) {
    const std::uint64_t rest_nnz = nnz_total - runs[0].nnz;
    const double scale = static_cast<double>(rest_nnz) /
                         static_cast<double>(warm_nnz);
    const double ratio = static_cast<double>(warm_sum.cycles) /
                         static_cast<double>(warm_nnz);
    est.stats = runs[0].stats;
    est.stats.merge_phase(scale_stats(warm_sum, scale));
    est.cycles_estimate = static_cast<double>(runs[0].stats.cycles) +
                          ratio * static_cast<double>(rest_nnz);
    // Ratio-estimator standard error over the warm bands, with
    // finite-population correction (kk of BB warm-role bands seen).
    const std::size_t kk = k - 1;
    if (kk >= 2) {
      double se2 = 0.0;
      for (std::size_t i = 1; i < k; ++i) {
        const double e = static_cast<double>(runs[i].stats.cycles) -
                         ratio * static_cast<double>(runs[i].nnz);
        se2 += e * e;
      }
      se2 /= static_cast<double>(kk - 1);
      const double big_b = static_cast<double>(bands_total - 1);
      const double f = static_cast<double>(kk) / big_b;
      est.cycles_stderr =
          big_b * std::sqrt(std::max(0.0, 1.0 - f) * se2 /
                            static_cast<double>(kk));
    }
    return est;
  }

  // Single-band (or degenerate) fallback: plain ratio over everything.
  SimStats sum = runs[0].stats;
  sum.merge_phase(warm_sum);
  double scale = 1.0;
  if (est.nnz_simulated > 0 && nnz_total > 0) {
    scale = static_cast<double>(nnz_total) /
            static_cast<double>(est.nnz_simulated);
  } else if (bands_total > 0) {
    scale = static_cast<double>(bands_total) / static_cast<double>(k);
  }
  est.cycles_estimate = static_cast<double>(sum.cycles) * scale;
  est.stats = scale_stats(sum, scale);
  return est;
}

// Sums two independent sub-phase estimates (the hybrid aggregation's
// region-1 OP and region-2/3 RWP passes): totals add, variances add.
PhaseSampleEstimate combine(const PhaseSampleEstimate& a,
                            const PhaseSampleEstimate& b) {
  PhaseSampleEstimate out;
  out.bands_total = a.bands_total + b.bands_total;
  out.bands_simulated = a.bands_simulated + b.bands_simulated;
  out.nnz_total = a.nnz_total + b.nnz_total;
  out.nnz_simulated = a.nnz_simulated + b.nnz_simulated;
  out.cycles_estimate = a.cycles_estimate + b.cycles_estimate;
  out.cycles_stderr = std::hypot(a.cycles_stderr, b.cycles_stderr);
  out.stats = a.stats;
  out.stats.merge_phase(b.stats);
  return out;
}

}  // namespace

double SampleInfo::cycles_stderr() const {
  return std::hypot(combination.cycles_stderr, aggregation.cycles_stderr);
}

double SampleInfo::rel_error_bound() const {
  const double estimate = cycles_estimate();
  return estimate > 0.0 ? 2.0 * cycles_stderr() / estimate : 0.0;
}

BandSelection select_sample_bands(NodeId extent, NodeId band_target,
                                  double fraction, std::uint64_t seed) {
  BandSelection sel;
  if (extent == 0) return sel;
  NodeId bands = std::min<NodeId>(std::max<NodeId>(band_target, 1), extent);
  const NodeId band_size = (extent + bands - 1) / bands;
  bands = (extent + band_size - 1) / band_size;  // drop empty tail bands
  sel.bands_total = bands;
  const auto k = static_cast<std::uint64_t>(std::clamp<double>(
      std::llround(fraction * static_cast<double>(bands)), 1.0,
      static_cast<double>(bands)));
  sel.selected.reserve(k);
  // Stratified selection: one seeded uniform draw per contiguous
  // stratum of bands, so low- and high-index bands (and with them the
  // degree-sorted graph's hubs and tail) are both represented.
  for (std::uint64_t s = 0; s < k; ++s) {
    const std::uint64_t lo = s * bands / k;
    const std::uint64_t hi = (s + 1) * bands / k;
    const std::uint64_t pick =
        lo + splitmix64(seed + 0x9e3779b97f4a7c15ULL * (s + 1)) % (hi - lo);
    const NodeId begin = static_cast<NodeId>(pick) * band_size;
    const NodeId end = std::min<NodeId>(extent, begin + band_size);
    sel.selected.emplace_back(begin, end);
  }
  return sel;
}

SampledLayerResult run_layer_sampled(const AcceleratorConfig& config,
                                     const SampledLayerRequest& request) {
  HYMM_CHECK(request.a_hat != nullptr && request.x != nullptr &&
             request.w != nullptr);
  HYMM_CHECK_MSG(
      request.options.fraction > 0.0 && request.options.fraction <= 1.0,
      "sample fraction must be in (0, 1]");
  const Dataflow flow = request.flow;
  const CsrMatrix& a_hat = *request.a_hat;
  const CsrMatrix& x = *request.x;
  const DenseMatrix& w = *request.w;
  HYMM_CHECK(a_hat.rows() == a_hat.cols());
  HYMM_CHECK(a_hat.cols() == x.rows());
  HYMM_CHECK(x.cols() == w.rows());

  const NodeId n = a_hat.rows();
  const std::size_t chunks =
      (static_cast<std::size_t>(w.cols()) + kLaneCount - 1) / kLaneCount;
  SampledLayerResult result;
  result.flow = flow;
  result.sample.enabled = true;
  result.sample.fraction = request.options.fraction;
  result.sample.seed = request.options.seed;

  // --- Preprocessing (mirrors Accelerator::run_layer) ---
  const bool hybrid = flow == Dataflow::kHybrid;
  CsrMatrix sorted_a;
  CsrMatrix sorted_x;
  const CsrMatrix* a_used = &a_hat;
  const CsrMatrix* x_used = &x;
  TiledAdjacency tiled;
  if (hybrid) {
    if (request.sort != nullptr) {
      HYMM_CHECK_MSG(request.sorted_features != nullptr,
                     "SampledLayerRequest.sort without sorted_features");
      a_used = &request.sort->sorted;
      x_used = request.sorted_features;
      result.partition = partition_regions(*a_used, config, chunks);
      tiled = TiledAdjacency::build(*a_used, result.partition);
      result.preprocess_ms = request.sort->sort_cost_ms;
    } else {
      Timer timer;
      DegreeSortResult sort = degree_sort(a_hat);
      sorted_a = std::move(sort.sorted);
      sorted_x = permute_feature_rows(x, sort.perm);
      a_used = &sorted_a;
      x_used = &sorted_x;
      result.partition = partition_regions(*a_used, config, chunks);
      tiled = TiledAdjacency::build(*a_used, result.partition);
      result.preprocess_ms = timer.elapsed_ms();
    }
  }

  // --- Canonical address layout (identical to an exact run) ---
  const std::size_t w_bytes =
      static_cast<std::size_t>(w.rows()) * chunks * kLineBytes;
  const std::size_t xw_bytes =
      static_cast<std::size_t>(n) * chunks * kLineBytes;
  const std::size_t spill_bytes =
      static_cast<std::size_t>((x.nnz() + a_hat.nnz() + 1024) * 128 * chunks);
  struct Regions {
    AddressRegion w, xw, axw, spill;
  };
  const auto alloc_regions = [&](MemorySystem& ms) {
    Regions r;
    r.w = ms.address_map().allocate("W", w_bytes, TrafficClass::kWeights);
    r.xw = ms.address_map().allocate("XW", xw_bytes, TrafficClass::kCombined);
    r.axw = ms.address_map().allocate("AXW", xw_bytes, TrafficClass::kOutput);
    r.spill = ms.address_map().allocate("partial-spill", spill_bytes,
                                        TrafficClass::kPartial);
    return r;
  };

  // Scratch operands: band MACs retire against these, but only the
  // sparsity pattern affects timing, so the values never matter and
  // nothing is reset between bands.
  DenseMatrix xw_scratch = DenseMatrix::zeros(n, w.cols());
  DenseMatrix axw_scratch = DenseMatrix::zeros(n, w.cols());

  const auto no_op = [](MemorySystem&, const Regions&) {};

  // One MemorySystem spans the whole sampled layer, like an exact
  // run: the combination bands leave their XW lines (and the W
  // working set) resident, so the aggregation bands start against the
  // same warm state the exact aggregation phase sees.
  MemorySystem ms(config);
  const Regions reg = alloc_regions(ms);

  // Runs one phase: band selection, back-to-back band simulation on
  // the shared MemorySystem (so warm-state reuse carries across bands
  // and phases), warm-start-corrected extrapolation. The epilogue's
  // one-time costs (the hybrid's pinned-output writeback) enter the
  // estimate once, unscaled, like in an exact run.
  const auto sample_phase = [&](NodeId extent, std::uint64_t nnz_total,
                                std::uint64_t phase_tag,
                                const auto& prologue, const auto& band,
                                const auto& epilogue) {
    // Adaptive floor (SampleOptions::min_nnz): small phases raise
    // their effective fraction toward 1 — a full simulation — since
    // extrapolating them saves nothing and biases most.
    double fraction = request.options.fraction;
    if (nnz_total > 0 && request.options.min_nnz > 0) {
      const double floor_fraction =
          static_cast<double>(request.options.min_nnz) /
          static_cast<double>(nnz_total);
      fraction = std::min(1.0, std::max(fraction, floor_fraction));
    }
    // Bands must amortize their engine restart (min_band_nnz).
    NodeId band_target = request.options.band_target;
    if (request.options.min_band_nnz > 0) {
      band_target = static_cast<NodeId>(std::clamp<std::uint64_t>(
          nnz_total / request.options.min_band_nnz, 1, band_target));
    }
    const BandSelection sel = select_sample_bands(
        extent, band_target, fraction,
        splitmix64(request.options.seed ^ phase_tag));
    prologue(ms, reg);
    std::vector<BandRun> runs;
    runs.reserve(sel.selected.size());
    for (const auto& [begin, end] : sel.selected) {
      SimStats before = ms.stats();
      before.cycles = ms.now();
      BandRun run;
      run.nnz = band(ms, reg, begin, end);
      SimStats after = ms.stats();
      after.cycles = ms.now();
      run.stats = stats_delta(after, before);
      runs.push_back(std::move(run));
    }
    SimStats before_epilogue = ms.stats();
    before_epilogue.cycles = ms.now();
    epilogue(ms, reg);
    SimStats after_epilogue = ms.stats();
    after_epilogue.cycles = ms.now();

    PhaseSampleEstimate est = extrapolate(runs, sel.bands_total, nnz_total);
    const SimStats one_time = stats_delta(after_epilogue, before_epilogue);
    est.stats.merge_phase(one_time);
    est.cycles_estimate += static_cast<double>(one_time.cycles);
    return est;
  };

  // --- Combination phase: XW = X * W ---
  CscMatrix x_csc;
  if (flow == Dataflow::kOuterProduct) x_csc = CscMatrix::from_csr(*x_used);
  const auto combination_band = [&](MemorySystem& ms, const Regions& reg,
                                    NodeId begin,
                                    NodeId end) -> std::uint64_t {
    if (flow == Dataflow::kOuterProduct) {
      const CscMatrix sub = x_csc.submatrix_cols(begin, end);
      if (sub.nnz() == 0) return 0;
      OpEngineParams op;
      op.sparse = &sub;
      op.sparse_class = TrafficClass::kFeatures;
      op.b = &w;
      op.b_region = reg.w;
      op.b_class = TrafficClass::kWeights;
      op.c = &xw_scratch;
      op.c_region = reg.xw;
      op.c_final_class = TrafficClass::kCombined;
      op.spill_region = reg.spill;
      op.accumulate_in_buffer = config.op_baseline_accumulator;
      op.col_offset = begin;
      op.window = config.engine_window;
      OpEngine engine(ms, op);
      run_phase(ms, engine);
      return sub.nnz();
    }
    const CsrMatrix sub = x_used->submatrix(begin, end, 0, x_used->cols());
    if (sub.nnz() == 0) return 0;
    RwpEngineParams rwp;
    rwp.sparse = &sub;
    rwp.sparse_class = TrafficClass::kFeatures;
    rwp.b = &w;
    rwp.b_region = reg.w;
    rwp.b_class = TrafficClass::kWeights;
    rwp.c = &xw_scratch;
    rwp.c_region = reg.xw;
    rwp.c_class = TrafficClass::kCombined;
    rwp.c_store_kind = StoreKind::kAllocate;
    rwp.row_offset = begin;
    rwp.window = config.engine_window;
    RwpEngine engine(ms, rwp);
    run_phase(ms, engine);
    return sub.nnz();
  };
  const NodeId comb_extent =
      flow == Dataflow::kOuterProduct ? x_csc.cols() : x_used->rows();
  result.sample.combination =
      sample_phase(comb_extent, x_used->nnz(), 0x636f6d62ULL /*"comb"*/,
                   no_op, combination_band, no_op);

  // --- Aggregation phase: AXW = A_hat * XW ---
  // Weights are dead after combination; demote them like an exact run
  // so aggregation's XW working set wins DMB capacity.
  ms.dmb().demote_class(TrafficClass::kWeights);
  switch (flow) {
    case Dataflow::kRowWiseProduct: {
      const auto band = [&](MemorySystem& ms, const Regions& reg,
                            NodeId begin, NodeId end) -> std::uint64_t {
        const CsrMatrix sub =
            a_used->submatrix(begin, end, 0, a_used->cols());
        if (sub.nnz() == 0) return 0;
        RwpEngineParams rwp;
        rwp.sparse = &sub;
        rwp.sparse_class = TrafficClass::kAdjacency;
        rwp.b = &xw_scratch;
        rwp.b_region = reg.xw;
        rwp.b_class = TrafficClass::kCombined;
        rwp.c = &axw_scratch;
        rwp.c_region = reg.axw;
        rwp.c_class = TrafficClass::kOutput;
        rwp.c_store_kind = StoreKind::kThrough;
        rwp.row_offset = begin;
        rwp.window = config.engine_window;
        RwpEngine engine(ms, rwp);
        run_phase(ms, engine);
        return sub.nnz();
      };
      result.sample.aggregation =
          sample_phase(n, a_used->nnz(), 0x61676772ULL /*"aggr"*/, no_op,
                       band, no_op);
      break;
    }
    case Dataflow::kOuterProduct: {
      const CscMatrix a_csc = CscMatrix::from_csr(*a_used);
      const auto band = [&](MemorySystem& ms, const Regions& reg,
                            NodeId begin, NodeId end) -> std::uint64_t {
        const CscMatrix sub = a_csc.submatrix_cols(begin, end);
        if (sub.nnz() == 0) return 0;
        OpEngineParams op;
        op.sparse = &sub;
        op.sparse_class = TrafficClass::kAdjacency;
        op.b = &xw_scratch;
        op.b_region = reg.xw;
        op.b_class = TrafficClass::kCombined;
        op.c = &axw_scratch;
        op.c_region = reg.axw;
        op.c_final_class = TrafficClass::kOutput;
        op.spill_region = reg.spill;
        op.accumulate_in_buffer = config.op_baseline_accumulator;
        op.col_offset = begin;
        op.window = config.engine_window;
        OpEngine engine(ms, op);
        run_phase(ms, engine);
        return sub.nnz();
      };
      result.sample.aggregation =
          sample_phase(n, a_used->nnz(), 0x61676772ULL, no_op, band, no_op);
      break;
    }
    case Dataflow::kHybrid: {
      const RegionPartition& partition = result.partition;
      const bool accumulate = config.near_memory_accumulator;
      // Region 1 (OP with pinned outputs): column bands of the CSC.
      // Pinning spans the whole band loop; the final writeback of the
      // pinned lines is the epilogue's one-time cost.
      const auto r1_prologue = [&](MemorySystem& ms, const Regions& reg) {
        if (!accumulate) return;
        for (NodeId r = 0; r < partition.region1_rows; ++r) {
          const Addr base = reg.axw.line_of(r, chunks);
          for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
            const bool pinned =
                ms.dmb().pin_partial(base + chunk * kLineBytes, ms.now());
            HYMM_CHECK_MSG(pinned, "region-1 rows exceed DMB pin capacity");
          }
        }
      };
      const auto r1_epilogue = [&](MemorySystem& ms, const Regions&) {
        if (accumulate) ms.dmb().unpin_and_writeback_outputs(ms.now());
      };
      const auto r1_band = [&](MemorySystem& ms, const Regions& reg,
                               NodeId begin, NodeId end) -> std::uint64_t {
        const CscMatrix sub =
            tiled.region1_csc().submatrix_cols(begin, end);
        if (sub.nnz() == 0) return 0;
        OpEngineParams op;
        op.sparse = &sub;
        op.sparse_class = TrafficClass::kAdjacency;
        op.b = &xw_scratch;
        op.b_region = reg.xw;
        op.b_class = TrafficClass::kCombined;
        op.c = &axw_scratch;
        op.c_region = reg.axw;
        op.c_final_class = TrafficClass::kOutput;
        op.spill_region = reg.spill;
        op.accumulate_in_buffer = accumulate;
        op.outputs_pinned = accumulate;
        op.col_offset = begin;
        op.window = config.engine_window;
        OpEngine engine(ms, op);
        run_phase(ms, engine);
        return sub.nnz();
      };
      const PhaseSampleEstimate r1 =
          partition.region1_rows > 0 && tiled.region1_csc().nnz() > 0
              ? sample_phase(n, tiled.region1_csc().nnz(),
                             0x72316f70ULL /*"r1op"*/, r1_prologue, r1_band,
                             r1_epilogue)
              : PhaseSampleEstimate{};

      // Regions 2/3 (RWP): row bands of the rebased CSR.
      const auto r23_band = [&](MemorySystem& ms, const Regions& reg,
                                NodeId begin, NodeId end) -> std::uint64_t {
        const CsrMatrix sub = tiled.region23_csr().submatrix(
            begin, end, 0, tiled.region23_csr().cols());
        if (sub.nnz() == 0) return 0;
        RwpEngineParams rwp;
        rwp.sparse = &sub;
        rwp.sparse_class = TrafficClass::kAdjacency;
        rwp.b = &xw_scratch;
        rwp.b_region = reg.xw;
        rwp.b_class = TrafficClass::kCombined;
        rwp.c = &axw_scratch;
        rwp.c_region = reg.axw;
        rwp.c_class = TrafficClass::kOutput;
        rwp.c_store_kind = StoreKind::kThrough;
        rwp.row_offset = partition.region1_rows + begin;
        rwp.region2_col_boundary = partition.region2_cols;
        rwp.window = config.engine_window;
        RwpEngine engine(ms, rwp);
        run_phase(ms, engine);
        return sub.nnz();
      };
      const PhaseSampleEstimate r23 =
          tiled.region23_csr().nnz() > 0
              ? sample_phase(tiled.region23_csr().rows(),
                             tiled.region23_csr().nnz(),
                             0x72323372ULL /*"r23r"*/, no_op, r23_band,
                             no_op)
              : PhaseSampleEstimate{};
      result.sample.aggregation = combine(r1, r23);
      break;
    }
  }

  result.combination_stats = result.sample.combination.stats;
  result.aggregation_stats = result.sample.aggregation.stats;
  result.stats = result.combination_stats;
  result.stats.merge_phase(result.aggregation_stats);
  return result;
}

}  // namespace hymm
