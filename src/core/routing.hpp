/// @file
/// Per-tile adaptive dataflow routing (ROADMAP item 2, docs/routing.md):
/// the generalization of the paper's global 3-region split. The
/// adjacency is 2D-tiled on the spatial-heatmap grid
/// (obs/spatial.hpp's `spatial_tile_edge`, so routing maps and
/// heatmaps share tile coordinates) and every tile is routed to OP or
/// RWP individually. The paper's partition is the degenerate special
/// case — a map whose tiles follow the global row boundary
/// reproduces today's TiledAdjacency bit-identically (locked by
/// tests/test_routing.cpp).
///
/// Layering: this header owns the *mechanism* (map format, routed
/// adjacency split, degenerate map). The *policy* — scoring tiles
/// with the roofline cost model and deciding when to deviate from the
/// global split — lives above core in src/tune/router.hpp, mirroring
/// the partition auto-tuner split.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"

namespace hymm {

/// Dataflow a routed tile executes under.
enum class TileFlow : std::uint8_t {
  kOp = 0,   ///< outer-product, outputs pinned in the DMB
  kRwp = 1,  ///< row-wise product, outputs streamed through
};

/// Stable JSON/report key for a tile flow ("op" / "rwp").
const char* tile_flow_key(TileFlow flow);

/// A per-tile routing decision over the degree-sorted adjacency,
/// produced by the TileRouter (src/tune/router.hpp) or by
/// `degenerate_routing_map`, and consumed by `build_routed_adjacency`
/// and the hybrid engine. Serialized as the "route" object of
/// hymm-run-report/8 and rendered by
/// `scripts/render_heatmap.py --metric=route`.
///
/// The grid is square with edge `tile` nodes (the spatial-heatmap
/// sizing). A nonzero (row, col) is OP-routed iff its tile's flow is
/// kOp *and* row < op_rows: pinned-output OP requires the output row
/// to live in the pinned DMB prefix, so kOp flows in tile bands at or
/// below op_rows have no effect. Everything else is RWP-routed, with
/// columns below `region2_cols` treated as region-2 (hot, cached XW
/// rows) and the rest as region-3.
struct TileRoutingMap {
  NodeId nodes = 0;          ///< adjacency dimension the grid covers
  NodeId tile = 0;           ///< tile edge in nodes (rows == cols)
  std::size_t grid_rows = 0; ///< ceil(nodes / tile)
  std::size_t grid_cols = 0; ///< ceil(nodes / tile)
  NodeId op_rows = 0;        ///< pinned-output prefix [0, op_rows)
  NodeId region2_cols = 0;   ///< RWP hot-column boundary
  /// Per-tile flow, row-major over the grid (grid_rows * grid_cols).
  std::vector<TileFlow> flows;
  /// True when the map reproduces the global 3-region split exactly
  /// (every tile band intersecting [0, op_rows) is kOp, the rest
  /// kRwp). Degenerate maps simulate bit-identically to the
  /// un-routed TiledAdjacency path.
  bool degenerate = true;
  /// Cost-model cycle prediction per tile (same row-major order);
  /// empty for maps that never went through the cost model (e.g.
  /// `degenerate_routing_map`). Report-only: never affects timing.
  std::vector<double> tile_predicted_cycles;
  /// Adjacency nonzeros per tile (same row-major order); empty when
  /// the map was built without tile statistics. Report-only.
  std::vector<std::uint64_t> tile_nnz;

  /// Row-major index of the tile containing adjacency entry
  /// (row, col).
  std::size_t tile_index(NodeId row, NodeId col) const;
  /// True when entry (row, col) executes under OP (tile flow is kOp
  /// and the output row lies in the pinned prefix).
  bool routes_to_op(NodeId row, NodeId col) const;
  /// Aborts unless the grid geometry, flow vector and boundaries are
  /// mutually consistent for an `nodes`-node adjacency.
  void validate() const;

  bool operator==(const TileRoutingMap&) const = default;
};

/// The degenerate router: a routing map that reproduces `partition`'s
/// global 3-region split exactly. Tile bands whose first row lies in
/// [0, region1_rows) are kOp (rows past the boundary inside such a
/// band are excluded by the op_rows guard), all other tiles kRwp.
/// `tile_override` follows the spatial tracker's convention (>= 2
/// forces that edge, else auto sizing).
TileRoutingMap degenerate_routing_map(const RegionPartition& partition,
                                      NodeId tile_override = 0);

/// The adjacency split a routing map induces: OP-routed entries as
/// CSC (rows [0, op_rows), OP traversal order), RWP-routed entries as
/// CSR, plus the effective RegionPartition the run reports. For a
/// degenerate map this equals TiledAdjacency::build's split
/// bit-for-bit, which is what makes the 3-region paper partition a
/// provable special case.
struct RoutedAdjacency {
  /// Effective partition after routing: region 1 counts the OP-routed
  /// nonzeros, regions 2/3 split the RWP-routed nonzeros at
  /// `region2_cols`. Per-region nnz sums to the adjacency nnz
  /// (checked in build_routed_adjacency).
  RegionPartition partition;
  /// OP-routed entries, shape op_rows x nodes, in CSC.
  CscMatrix op_csc;
  /// RWP-routed entries in CSR. When no RWP entry falls in the pinned
  /// prefix the matrix is rebased (local row 0 == global row
  /// `rwp_row_offset`); otherwise it keeps the full height with
  /// offset 0 — empty rows produce no SMQ work or stores.
  CsrMatrix rwp_csr;
  /// Global row of rwp_csr's local row 0.
  NodeId rwp_row_offset = 0;
};

/// Splits the degree-sorted adjacency according to `map`. Every
/// nonzero lands in exactly one of op_csc / rwp_csr (conservation is
/// HYMM_CHECKed), and the split is a pure function of (matrix, map) —
/// deterministic across sweep threads and fast-forward modes.
RoutedAdjacency build_routed_adjacency(const CsrMatrix& sorted_adjacency,
                                       const TileRoutingMap& map);

}  // namespace hymm
