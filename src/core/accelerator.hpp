/// @file
/// Top-level accelerator model: sequences the combination and
/// aggregation phases of one GCN layer on the shared memory system,
/// dispatching to the RWP / OP / hybrid engines per Table I:
///
///   architecture | combination | aggregation       | graph prep
///   RWP (GROW)   | RWP         | RWP               | none
///   OP (GCNAX)   | OP          | OP                | none
///   HyMM         | RWP         | OP (R1) + RWP     | degree sorting
#pragma once

#include "common/config.hpp"
#include "core/engine.hpp"
#include "core/hybrid_engine.hpp"
#include "graph/csr.hpp"
#include "graph/degree_sort.hpp"
#include "graph/partition.hpp"
#include "linalg/dense.hpp"
#include "sim/checkpoint.hpp"

namespace hymm {

/// How the combination phase of one run interacted with the warm-state
/// checkpoint store (sim/checkpoint.hpp). All-false when no store was
/// passed or the run was ineligible (observer attached).
struct LayerCheckpointInfo {
  bool enabled = false;   ///< a store was passed and the run is eligible
  bool restored = false;  ///< combination state restored from the blob
  bool built = false;     ///< this run simulated the cold combination
  std::string key;        ///< checkpoint_key_hex, empty when disabled
};

/// Outcome of one simulated GCN layer (`Accelerator::run_layer`).
struct LayerRunResult {
  Dataflow flow = Dataflow::kRowWiseProduct;  ///< dataflow that ran

  /// Functional combination output XW in the ORIGINAL node order
  /// (HyMM's internal degree-sorted order is un-permuted before
  /// returning).
  DenseMatrix combination;
  DenseMatrix output;  ///< A_hat * XW, pre-activation, original order

  SimStats stats;              ///< whole-layer counters
  SimStats combination_stats;  ///< combination-phase deltas
  SimStats aggregation_stats;  ///< aggregation-phase deltas

  /// Hybrid-only region split (zeroed otherwise).
  RegionPartition partition;
  /// Hybrid-only per-phase/per-region breakdown (zeroed otherwise).
  HybridAggregationInfo hybrid_info;
  double preprocess_ms = 0.0;  ///< degree-sorting cost (Table II)

  /// Warm-state checkpoint interaction of this run.
  LayerCheckpointInfo checkpoint;

  /// Wall-clock the modeled hardware would take at clock_ghz (1e6
  /// cycles = 1 ms at 1 GHz; convention shared repo-wide).
  double runtime_ms(double clock_ghz) const {
    return static_cast<double>(stats.cycles) / (clock_ghz * 1e6);
  }
};

/// Everything one layer run needs. The required inputs are a_hat
/// (n x n sparse), x (n x f sparse) and w (f x d dense; d > 16 spans
/// multiple lines per row). `observer` (optional) collects metrics and
/// trace events for the run; it never affects timing — cycle counts
/// are identical with or without an observer attached.
///
/// `sort` + `sorted_features` optionally supply the hybrid's
/// degree-sorting preprocessing precomputed (the WorkloadCache shares
/// one sort across every cell of a sweep): sort->sorted must be a_hat
/// symmetrically permuted by sort->perm and sorted_features the
/// feature rows under the same permutation. Ignored for the
/// homogeneous dataflows; when absent the hybrid sorts internally.
/// Simulated cycles are identical either way — sorting is host-side
/// preprocessing, only its wall-clock cost (preprocess_ms) differs.
struct LayerRunRequest {
  Dataflow flow = Dataflow::kRowWiseProduct;  ///< dataflow to simulate
  const CsrMatrix* a_hat = nullptr;           ///< required: adjacency
  const CsrMatrix* x = nullptr;               ///< required: features
  const DenseMatrix* w = nullptr;             ///< required: weights
  Observer* observer = nullptr;  ///< optional; never affects timing
  const DegreeSortResult* sort = nullptr;  ///< optional precomputed sort
  const CsrMatrix* sorted_features = nullptr;  ///< features under `sort`

  /// Optional per-tile routing map (core/routing.hpp), hybrid flow
  /// only: the aggregation phase splits the sorted adjacency by the
  /// map instead of the global partition_regions boundary. The map
  /// must cover this workload's node count (in degree-sorted
  /// coordinates). Ignored for the homogeneous dataflows.
  const TileRoutingMap* route = nullptr;

  /// Optional warm-state reuse (sim/checkpoint.hpp): runs sharing the
  /// same streamed inputs and timing config simulate the combination
  /// phase once and restore its end state afterwards, bit-identically.
  /// Ignored when an observer is attached — the restored run would
  /// miss the combination phase's trace events and counter samples.
  CheckpointStore* checkpoints = nullptr;
};

/// Key identifying the combination phase's warm state: the streamed
/// feature matrix (structure + values), the dense weights, the engine
/// kind the dataflow runs combination with, and the timing-model hash.
/// `x_used` must be the matrix actually streamed (the degree-sorted
/// features for hybrid runs). The tiling threshold is excluded via
/// tuning_config_hash, so every tuner candidate shares one checkpoint.
CheckpointKey combination_checkpoint_key(const CsrMatrix& x_used,
                                         const DenseMatrix& w,
                                         const AcceleratorConfig& config,
                                         Dataflow flow);

/// One accelerator instance: a config plus the layer sequencing logic.
class Accelerator {
 public:
  /// Captures the hardware parameters every layer run uses.
  explicit Accelerator(const AcceleratorConfig& config);

  /// The hardware parameters this instance was built with.
  const AcceleratorConfig& config() const { return config_; }

  /// Simulates one GCN layer H = a_hat * x * w (no activation).
  LayerRunResult run_layer(const LayerRunRequest& request) const;

  /// Convenience overload for callers without precomputed
  /// preprocessing (equivalent to filling a LayerRunRequest).
  LayerRunResult run_layer(Dataflow flow, const CsrMatrix& a_hat,
                           const CsrMatrix& x, const DenseMatrix& w,
                           Observer* obs = nullptr) const;

 private:
  AcceleratorConfig config_;
};

}  // namespace hymm
