/// @file
/// HyMM's hybrid aggregation (Sections III and IV): OP over region 1
/// with the partial-output rows pinned in the DMB and merged by the
/// near-memory accumulator, followed by RWP over regions 2 and 3.
/// "We propose executing the OP mode first to prevent partial outputs
/// from being evicted to off-chip memory" — the pin + phase order
/// below implement exactly that.
#pragma once

#include "core/engine.hpp"
#include "core/op_engine.hpp"
#include "core/routing.hpp"
#include "core/rwp_engine.hpp"
#include "graph/partition.hpp"
#include "linalg/dense.hpp"

namespace hymm {

/// Inputs of one hybrid aggregation run (`run_hybrid_aggregation`).
struct HybridAggregationParams {
  /// Paper-style global 3-region split (graph/partition.hpp).
  const TiledAdjacency* tiled = nullptr;

  /// Per-tile routed split (core/routing.hpp): the generalized form of
  /// `tiled`. Exactly one of the two must be set; with `routed` the
  /// engine takes its partition, OP block, RWP block and RWP row
  /// rebasing from the routing map's split. A degenerate routed split
  /// simulates bit-identically to the equivalent `tiled` one.
  const RoutedAdjacency* routed = nullptr;

  const DenseMatrix* b = nullptr;  ///< XW, row-per-node
  AddressRegion b_region;          ///< address range backing `b`
  /// Traffic class XW fetches are accounted under.
  TrafficClass b_class = TrafficClass::kCombined;

  DenseMatrix* c = nullptr;  ///< AXW output
  AddressRegion c_region;    ///< address range backing `c`

  /// Spill heap, used only by the no-accumulator ablation (the Fig 10
  /// "w/o accumulator" series): region 1 then appends partial records
  /// instead of pinning + merging in place.
  AddressRegion spill_region;
};

/// Per-phase and per-region outcome of one hybrid aggregation run.
struct HybridAggregationInfo {
  Cycle op_phase_cycles = 0;   ///< cycles spent in the OP phase
  Cycle rwp_phase_cycles = 0;  ///< cycles spent in the RWP phase
  NodeId pinned_rows = 0;      ///< region-1 rows pinned in the DMB
  /// Per-phase counter deltas (the OP phase includes the pin setup and
  /// the unpin writeback of the finished region-1 rows).
  SimStats op_phase_stats;
  /// RWP-phase counter deltas (regions 2 and 3 together).
  SimStats rwp_phase_stats;

  /// Per-region breakdown. region_stats[0] is the region-1 OP phase
  /// exactly; the shared RWP phase is split between region_stats[1]
  /// (hot columns below the region-2 boundary) and region_stats[2] by
  /// the exact per-region MAC counts the engine retires — mac_ops are
  /// exact, the remaining counters are attributed proportionally
  /// (region-2/3 non-zeros interleave within rows, so cycle-exact
  /// attribution is ill-defined; see DESIGN.md "Observability").
  std::array<SimStats, 3> region_stats{};
  std::uint64_t region2_macs = 0;  ///< exact region-2 MAC count
  std::uint64_t region3_macs = 0;  ///< exact region-3 MAC count
};

/// Runs both phases to completion on `ms` and returns per-phase cycle
/// counts. The caller provides a memory system that already holds
/// whatever the combination phase left in the unified buffer.
HybridAggregationInfo run_hybrid_aggregation(
    MemorySystem& ms, const HybridAggregationParams& params);

}  // namespace hymm
