#include "core/engine.hpp"

#include "common/check.hpp"

namespace hymm {

MemorySystem::MemorySystem(const AcceleratorConfig& config)
    : config_(config),
      dram_(config_, stats_),
      dmb_(config_, dram_, stats_),
      lsq_(config_, dmb_, stats_),
      smq_(config_, dram_, stats_),
      pe_(config_, stats_) {
  config_.validate();
}

void MemorySystem::attach_observer(Observer* obs) {
  obs_ = obs;
  dram_.set_observer(obs);
  dmb_.set_observer(obs);
  lsq_.set_observer(obs);
  smq_.set_observer(obs);
  pe_.set_observer(obs);
  obs_next_sample_ = now_;
}

void MemorySystem::tick_components() {
  dram_.tick(now_);
  dmb_.tick(now_);
  lsq_.tick(now_);
  smq_.tick(now_);
  stats_.maybe_sample_timeline(now_);
#ifndef HYMM_OBS_DISABLED
  if (obs_ != nullptr && now_ >= obs_next_sample_) {
    obs_->sample_tracks(now_, dmb_.resident_lines(),
                        stats_.partial_bytes_now,
                        lsq_.pending_loads() + lsq_.pending_stores(),
                        smq_.backlog(), stats_.stall_cycles);
    obs_next_sample_ = now_ + obs_->sample_interval();
  }
#endif
}

void MemorySystem::sample_observer() {
#ifndef HYMM_OBS_DISABLED
  if (obs_ == nullptr) return;
  obs_->sample_tracks(now_, dmb_.resident_lines(), stats_.partial_bytes_now,
                      lsq_.pending_loads() + lsq_.pending_stores(),
                      smq_.backlog(), stats_.stall_cycles);
  obs_next_sample_ = now_ + obs_->sample_interval();
#endif
}

Cycle run_phase(MemorySystem& ms, Engine& engine, Cycle max_cycles) {
  const Cycle start = ms.now();
  const Cycle stalls_before = ms.stats().stall_total();
  while (!engine.done(ms) || !ms.lsq().all_stores_drained() ||
         ms.dmb().has_pending_misses()) {
    HYMM_CHECK_MSG(ms.now() - start < max_cycles,
                   "engine exceeded " << max_cycles
                                      << " cycles — likely a deadlock");
    ms.tick_components();
    engine.tick(ms);
    ms.stats().account(engine.cycle_cause());
    ms.advance();
  }
  // Account trailing DRAM writes still in the bandwidth pipe.
  if (ms.dram().busy_until() > ms.now()) {
    ms.stats().account(StallCause::kDrain, ms.dram().busy_until() - ms.now());
    while (ms.now() < ms.dram().busy_until()) ms.advance();
  }
  ms.stats().cycles = ms.now();
  // The cross-cutting accounting invariant: this phase attributed
  // exactly as many bucket-cycles as it simulated.
  HYMM_DCHECK(ms.stats().stall_total() - stalls_before == ms.now() - start);
  ms.sample_observer();
  return ms.now() - start;
}

}  // namespace hymm
