#include "core/engine.hpp"

#include <atomic>
#include <cstdlib>

#include "common/check.hpp"
#include "obs/hooks.hpp"
#include "sim/checkpoint.hpp"

namespace hymm {

namespace {

bool env_flag_set(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

FastForwardMode mode_from_env() {
  if (env_flag_set("HYMM_NO_FASTFWD")) return FastForwardMode::kOff;
  if (env_flag_set("HYMM_FASTFWD_CHECK")) return FastForwardMode::kCheck;
  return FastForwardMode::kOn;
}

// -1 = not yet initialized from the environment.
std::atomic<int> g_fast_forward_mode{-1};

}  // namespace

FastForwardMode fast_forward_mode() {
  int mode = g_fast_forward_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = static_cast<int>(mode_from_env());
    g_fast_forward_mode.store(mode, std::memory_order_relaxed);
  }
  return static_cast<FastForwardMode>(mode);
}

void set_fast_forward_mode(FastForwardMode mode) {
  g_fast_forward_mode.store(static_cast<int>(mode),
                            std::memory_order_relaxed);
}

MemorySystem::MemorySystem(const AcceleratorConfig& config)
    : config_(config),
      dram_(config_, stats_),
      dmb_(config_, dram_, stats_),
      lsq_(config_, dmb_, stats_),
      smq_(config_, dram_, stats_),
      pe_(config_, stats_) {
  config_.validate();
}

void MemorySystem::attach_observer(Observer* obs) {
  obs_ = obs;
  dram_.set_observer(obs);
  dmb_.set_observer(obs);
  lsq_.set_observer(obs);
  smq_.set_observer(obs);
  pe_.set_observer(obs);
  obs_next_sample_ = now_;
}

void MemorySystem::tick_components() {
  dram_.tick(now_);
  dmb_.tick(now_);
  lsq_.tick(now_);
  smq_.tick(now_);
  stats_.maybe_sample_timeline(now_);
#ifndef HYMM_OBS_DISABLED
  if (obs_ != nullptr && now_ >= obs_next_sample_) {
    obs_->sample_tracks(now_, dmb_.resident_lines(),
                        stats_.partial_bytes_now,
                        lsq_.pending_loads() + lsq_.pending_stores(),
                        smq_.backlog(), stats_.stall_cycles);
    obs_next_sample_ = now_ + obs_->sample_interval();
  }
  if (obs_ != nullptr && obs_->timeseries_enabled() &&
      now_ >= obs_->timeseries().next_due()) {
    obs_->timeseries_record(timeseries_sample());
  }
#endif
}

TimeSeriesSample MemorySystem::timeseries_sample() const {
  TimeSeriesSample s;
  s.cycle = now_;
  s.lsq_depth = lsq_.pending_loads() + lsq_.pending_stores();
  s.smq_backlog = smq_.backlog();
  s.dmb_lines = dmb_.resident_lines();
  s.partial_bytes = stats_.partial_bytes_now;
  s.dmb_hits = stats_.dmb_read_hits + stats_.dmb_accumulate_hits;
  s.dmb_misses = stats_.dmb_read_misses + stats_.dmb_accumulate_misses;
  s.dram_bytes = stats_.dram_total_bytes();
  s.alu_busy_cycles = stats_.alu_busy_cycles;
  s.mac_ops = stats_.mac_ops;
  s.stall_cycles = stats_.stall_cycles;
  s.dram_peak_bytes_per_cycle = config_.dram_bytes_per_cycle;
  return s;
}

namespace {

void save_stats(StateWriter& w, const SimStats& s) {
  w.put_u64(s.cycles);
  for (const Cycle c : s.stall_cycles) w.put_u64(c);
  w.put_u64(s.skipped_cycles);
  w.put_u64(s.mac_ops);
  w.put_u64(s.alu_busy_cycles);
  w.put_u64(s.merge_adds);
  w.put_u64(s.dmb_read_hits);
  w.put_u64(s.dmb_read_misses);
  w.put_u64(s.dmb_accumulate_hits);
  w.put_u64(s.dmb_accumulate_misses);
  w.put_u64(s.dmb_evictions);
  w.put_u64(s.dmb_partial_spills);
  w.put_u64(s.lsq_loads);
  w.put_u64(s.lsq_stores);
  w.put_u64(s.lsq_forwards);
  for (const std::uint64_t b : s.dram_read_bytes) w.put_u64(b);
  for (const std::uint64_t b : s.dram_write_bytes) w.put_u64(b);
  w.put_u64(s.partial_bytes_now);
  w.put_u64(s.partial_bytes_peak);
  w.put_u64(s.partial_timeline.size());
  for (const auto& [cycle, bytes] : s.partial_timeline) {
    w.put_u64(cycle);
    w.put_u64(bytes);
  }
  w.put_u64(s.timeline_interval);
  w.put_u64(s.timeline_next_sample);
}

void load_stats(StateReader& r, SimStats& s) {
  s.cycles = r.get_u64();
  for (Cycle& c : s.stall_cycles) c = r.get_u64();
  s.skipped_cycles = r.get_u64();
  s.mac_ops = r.get_u64();
  s.alu_busy_cycles = r.get_u64();
  s.merge_adds = r.get_u64();
  s.dmb_read_hits = r.get_u64();
  s.dmb_read_misses = r.get_u64();
  s.dmb_accumulate_hits = r.get_u64();
  s.dmb_accumulate_misses = r.get_u64();
  s.dmb_evictions = r.get_u64();
  s.dmb_partial_spills = r.get_u64();
  s.lsq_loads = r.get_u64();
  s.lsq_stores = r.get_u64();
  s.lsq_forwards = r.get_u64();
  for (std::uint64_t& b : s.dram_read_bytes) b = r.get_u64();
  for (std::uint64_t& b : s.dram_write_bytes) b = r.get_u64();
  s.partial_bytes_now = r.get_u64();
  s.partial_bytes_peak = r.get_u64();
  s.partial_timeline.clear();
  const std::uint64_t timeline_count = r.get_u64();
  for (std::uint64_t i = 0; i < timeline_count; ++i) {
    const Cycle cycle = r.get_u64();
    const std::uint64_t bytes = r.get_u64();
    s.partial_timeline.emplace_back(cycle, bytes);
  }
  s.timeline_interval = r.get_u64();
  s.timeline_next_sample = r.get_u64();
}

}  // namespace

void MemorySystem::save_state(StateWriter& w) const {
  w.put_u64(now_);
  save_stats(w, stats_);
  dram_.save_state(w);
  dmb_.save_state(w);
  lsq_.save_state(w);
  smq_.save_state(w);
  pe_.save_state(w);
}

void MemorySystem::load_state(StateReader& r) {
  HYMM_CHECK_MSG(obs_ == nullptr,
                 "checkpoint restore with an observer attached");
  now_ = r.get_u64();
  load_stats(r, stats_);
  dram_.load_state(r);
  dmb_.load_state(r);
  lsq_.load_state(r);
  smq_.load_state(r);
  pe_.load_state(r);
  obs_next_sample_ = now_;
}

void MemorySystem::sample_observer() {
#ifndef HYMM_OBS_DISABLED
  if (obs_ == nullptr) return;
  obs_->sample_tracks(now_, dmb_.resident_lines(), stats_.partial_bytes_now,
                      lsq_.pending_loads() + lsq_.pending_stores(),
                      smq_.backlog(), stats_.stall_cycles);
  obs_next_sample_ = now_ + obs_->sample_interval();
  // End-of-phase time-series sample: run_phase calls this at the same
  // cycle under every fast-forward mode, so forcing here preserves
  // bit-identity.
  if (obs_->timeseries_enabled()) {
    obs_->timeseries_force(timeseries_sample());
  }
#endif
}

void MemorySystem::fast_forward_to(Cycle target, StallCause cause) {
  HYMM_DCHECK(target > now_ + 1);
  const Cycle span = target - now_ - 1;
  stats_.account(cause, span);
  stats_.skipped_cycles += span;
  // Spatial back-fill: the tile focus only moves at engine retire
  // events, which a quiescent span by definition lacks, so bulk-
  // charging the span to the current focus is exactly what the
  // per-cycle loop would have attributed.
  HYMM_OBS(obs_, spatial_cycles(span));
  // Replay the footprint samples cycles now_+1 .. target-1 would have
  // taken. Under per-cycle ticking a sample lands exactly at
  // timeline_next_sample (which is > now_ here: tick_components
  // already sampled the current cycle if it was due), so replaying at
  // those cycles with the constant footprint is bit-identical —
  // including the capacity thinning / interval doubling inside.
  while (stats_.timeline_next_sample <= target - 1) {
    stats_.maybe_sample_timeline(stats_.timeline_next_sample);
  }
#ifndef HYMM_OBS_DISABLED
  // One aggregated counter sample stands in for the per-cycle ones
  // the span would have emitted; the schedule then realigns to where
  // the per-cycle loop would have left it.
  if (obs_ != nullptr && obs_next_sample_ <= target - 1) {
    obs_->sample_tracks(obs_next_sample_, dmb_.resident_lines(),
                        stats_.partial_bytes_now,
                        lsq_.pending_loads() + lsq_.pending_stores(),
                        smq_.backlog(), stats_.stall_cycles);
    const Cycle interval = obs_->sample_interval();
    obs_next_sample_ +=
        interval * ((target - 1 - obs_next_sample_) / interval + 1);
  }
  // Replay every due time-series sample inside the skipped span with
  // the exact values the legacy loop would have seen. Across a
  // quiescent span only the charged stall bucket moves (one cycle per
  // cycle); a legacy sample at cycle c reads accounting through c-1,
  // and the post-bulk vector holds accounting through target-1, so the
  // charged bucket at c is the current value minus (target - c).
  if (obs_ != nullptr && obs_->timeseries_enabled() &&
      obs_->timeseries().next_due() <= target - 1) {
    TimeSeriesSample s = timeseries_sample();
    const auto ci = static_cast<std::size_t>(cause);
    const Cycle charged = stats_.stall_cycles[ci];
    while (obs_->timeseries().next_due() <= target - 1) {
      const Cycle c = obs_->timeseries().next_due();
      s.cycle = c;
      s.stall_cycles[ci] = charged - (target - c);
      obs_->timeseries_record(s);
    }
  }
#endif
  now_ = target;
}

Cycle run_phase(MemorySystem& ms, Engine& engine, Cycle max_cycles) {
  const Cycle start = ms.now();
  [[maybe_unused]] const Cycle stalls_before = ms.stats().stall_total();
  const FastForwardMode mode = fast_forward_mode();
  // kCheck: end and cause of the span the fast path would skip.
  Cycle check_until = 0;
  [[maybe_unused]] StallCause check_cause = StallCause::kDrain;
  while (!engine.done(ms) || !ms.lsq().all_stores_drained() ||
         ms.dmb().has_pending_misses()) {
    HYMM_CHECK_MSG(ms.now() - start < max_cycles,
                   "engine exceeded " << max_cycles
                                      << " cycles — likely a deadlock");
    ms.tick_components();
    engine.tick(ms);
    ms.stats().account(engine.cycle_cause());
    // Spatial attribution mirrors the stall accounting: one cycle to
    // the currently focused tile (or the residual bucket).
    HYMM_OBS(ms.observer(), spatial_cycles(1));
    if (mode == FastForwardMode::kOn) {
      if (engine.quiescent() && ms.components_quiescent()) {
        // Nothing changed this cycle and nothing can change before
        // the earliest event: jump there. Capping at the deadlock
        // horizon keeps a stuck engine (no events at all) tripping
        // the max_cycles check exactly like the legacy loop.
        const Cycle target =
            std::min(std::min(ms.next_component_event(),
                              engine.next_event(ms.now())),
                     start + max_cycles);
        if (target > ms.now() + 1) {
          ms.fast_forward_to(target, engine.cycle_cause());
          continue;  // the clock already sits on the event cycle
        }
      }
    } else if (mode == FastForwardMode::kCheck) {
      if (ms.now() < check_until) {
        // Inside a span the fast path would have skipped: prove it
        // dead — still quiescent, still charged to the same bucket.
        HYMM_DCHECK(engine.quiescent());
        HYMM_DCHECK(ms.components_quiescent());
        HYMM_DCHECK(engine.cycle_cause() == check_cause);
      } else if (engine.quiescent() && ms.components_quiescent()) {
        const Cycle target =
            std::min(std::min(ms.next_component_event(),
                              engine.next_event(ms.now())),
                     start + max_cycles);
        if (target > ms.now() + 1) {
          check_until = target;
          check_cause = engine.cycle_cause();
        }
      }
    }
    ms.advance();
  }
  // Account trailing DRAM writes still in the bandwidth pipe.
  if (ms.dram().busy_until() > ms.now()) {
    const Cycle drain = ms.dram().busy_until() - ms.now();
    ms.stats().account(StallCause::kDrain, drain);
    // Drain cycles flush traffic from many tiles; they land in the
    // spatial residual bucket (identical under every fast-forward
    // mode — this block never fast-forwards).
    HYMM_OBS(ms.observer(), spatial_unfocus());
    HYMM_OBS(ms.observer(), spatial_cycles(drain));
    while (ms.now() < ms.dram().busy_until()) ms.advance();
  }
  ms.stats().cycles = ms.now();
  // The cross-cutting accounting invariant: this phase attributed
  // exactly as many bucket-cycles as it simulated.
  HYMM_DCHECK(ms.stats().stall_total() - stalls_before == ms.now() - start);
  ms.sample_observer();
  return ms.now() - start;
}

}  // namespace hymm
