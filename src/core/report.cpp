#include "core/report.hpp"

#include <ostream>
#include <sstream>

#include "common/table.hpp"
#include "common/version.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace hymm {

namespace {

// "cause=12.3%" terms for every non-zero stall bucket, largest first
// is not needed — taxonomy order keeps related causes adjacent.
std::string stall_breakdown_string(const SimStats& stats) {
  const Cycle total = stats.stall_total();
  if (total == 0) return "none";
  std::ostringstream oss;
  bool first = true;
  for (std::size_t i = 0; i < kStallCauseCount; ++i) {
    const Cycle cycles = stats.stall_cycles[i];
    if (cycles == 0) continue;
    if (!first) oss << ", ";
    first = false;
    oss << stall_cause_key(static_cast<StallCause>(i)) << '='
        << Table::fmt_percent(
               static_cast<double>(cycles) / static_cast<double>(total), 1);
  }
  return oss.str();
}

}  // namespace

void print_stats_summary(const SimStats& stats, std::ostream& out,
                         const std::string& indent,
                         std::uint64_t peak_bytes_per_cycle) {
  out << indent << "cycles:          " << stats.cycles << '\n'
      << indent << "MAC ops:         " << stats.mac_ops << '\n'
      << indent << "ALU utilization: "
      << Table::fmt_percent(stats.alu_utilization(), 1) << '\n'
      << indent << "DMB hit rate:    "
      << Table::fmt_percent(stats.dmb_hit_rate(), 1) << " ("
      << stats.dmb_read_hits + stats.dmb_accumulate_hits << " hits / "
      << stats.dmb_read_misses + stats.dmb_accumulate_misses
      << " misses)\n"
      << indent << "LSQ forwards:    " << stats.lsq_forwards << '\n'
      << indent << "partial spills:  " << stats.dmb_partial_spills << '\n'
      << indent << "partial peak:    "
      << Table::fmt_bytes(static_cast<double>(stats.partial_bytes_peak))
      << '\n'
      << indent << "DRAM traffic:    "
      << Table::fmt_bytes(static_cast<double>(stats.dram_total_bytes()))
      << " (" << dram_breakdown_string(stats) << ")\n";
  if (stats.stall_total() > 0) {
    out << indent << "cycle breakdown: " << stall_breakdown_string(stats)
        << '\n'
        << indent << "bottleneck:      " << to_string(stats.bottleneck());
    if (peak_bytes_per_cycle > 0 && stats.cycles > 0) {
      const double bw_util =
          static_cast<double>(stats.dram_total_bytes()) /
          (static_cast<double>(peak_bytes_per_cycle) *
           static_cast<double>(stats.cycles));
      out << " (DRAM bandwidth roofline: "
          << Table::fmt_percent(bw_util, 1) << " of "
          << peak_bytes_per_cycle << "B/cycle)";
    }
    out << '\n';
  }
}

std::string dram_breakdown_string(const SimStats& stats) {
  std::ostringstream oss;
  bool first = true;
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    const std::uint64_t bytes =
        stats.dram_read_bytes[c] + stats.dram_write_bytes[c];
    if (bytes == 0) continue;
    if (!first) oss << ", ";
    first = false;
    oss << to_string(static_cast<TrafficClass>(c)) << '='
        << Table::fmt_bytes(static_cast<double>(bytes));
  }
  return first ? "none" : oss.str();
}

std::string csv_quote(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void write_results_csv(std::span<const ExperimentResult> results,
                       std::ostream& out) {
  out << "dataset,scale,flow,cycles,combination_cycles,aggregation_cycles,"
         "mac_ops,alu_utilization,dmb_hit_rate,partial_bytes_peak,"
         "preprocess_ms";
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    out << ",read_" << to_string(static_cast<TrafficClass>(c));
    out << ",write_" << to_string(static_cast<TrafficClass>(c));
  }
  out << ",dram_total_bytes,verified,max_abs_err";
  for (std::size_t i = 0; i < kStallCauseCount; ++i) {
    out << ",stall_" << stall_cause_key(static_cast<StallCause>(i));
  }
  out << ",bottleneck,dram_bw_utilization";
  // Latency quantiles (obs/histogram.hpp); all zero when the run had
  // no observer attached.
  out << ",lsq_lat_p50,lsq_lat_p99,lsq_lat_max"
         ",dram_lat_p50,dram_lat_p99,dram_lat_max";
  // Load-imbalance summary (obs/spatial.hpp); all zero unless the run
  // collected spatial attribution (--spatial / HYMM_SPATIAL).
  out << ",pe_max_over_mean,pe_cov,pe_gini"
         ",rowband_max_over_mean,rowband_cov,rowband_gini\n";
  for (const ExperimentResult& r : results) {
    out << csv_quote(r.abbrev) << ',' << r.scale << ','
        << csv_quote(to_string(r.flow)) << ',' << r.cycles << ','
        << r.combination_cycles << ',' << r.aggregation_cycles << ','
        << r.mac_ops << ',' << r.alu_utilization << ',' << r.dmb_hit_rate
        << ',' << r.partial_bytes_peak << ',' << r.preprocess_ms;
    for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
      out << ',' << r.dram_read_bytes[c] << ',' << r.dram_write_bytes[c];
    }
    out << ',' << r.dram_total_bytes << ',' << (r.verified ? 1 : 0) << ','
        << r.max_abs_err;
    for (std::size_t i = 0; i < kStallCauseCount; ++i) {
      out << ',' << r.stats.stall_cycles[i];
    }
    out << ',' << csv_quote(to_string(r.stats.bottleneck())) << ','
        << r.dram_bw_utilization();
    const LogHistogram& lsq = r.histograms.lsq_load_latency;
    const LogHistogram& dram = r.histograms.dram_read_latency;
    out << ',' << lsq.quantile(0.5) << ',' << lsq.quantile(0.99) << ','
        << lsq.max() << ',' << dram.quantile(0.5) << ','
        << dram.quantile(0.99) << ',' << dram.max();
    ImbalanceStats pe_imb;
    ImbalanceStats band_imb;
    if (!r.spatial.empty()) {
      pe_imb = compute_imbalance(r.spatial.lane_busy_cycles);
      const std::vector<std::uint64_t> bands = r.spatial.row_band_cycles();
      band_imb = compute_imbalance(bands);
    }
    out << ',' << pe_imb.max_over_mean << ',' << pe_imb.cov << ','
        << pe_imb.gini << ',' << band_imb.max_over_mean << ','
        << band_imb.cov << ',' << band_imb.gini << '\n';
  }
}

namespace {

void write_traffic_json(JsonWriter& w, std::string_view name,
                        const std::array<std::uint64_t, kTrafficClassCount>&
                            bytes_by_class) {
  w.key(name);
  w.begin_object();
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    w.field(to_string(static_cast<TrafficClass>(c)), bytes_by_class[c]);
  }
  w.end_object();
}

void write_stats_json(JsonWriter& w, const SimStats& s) {
  w.begin_object();
  w.field("cycles", std::uint64_t{s.cycles});
  w.field("mac_ops", s.mac_ops);
  w.field("alu_busy_cycles", std::uint64_t{s.alu_busy_cycles});
  w.field("merge_adds", s.merge_adds);
  w.field("dmb_read_hits", s.dmb_read_hits);
  w.field("dmb_read_misses", s.dmb_read_misses);
  w.field("dmb_accumulate_hits", s.dmb_accumulate_hits);
  w.field("dmb_accumulate_misses", s.dmb_accumulate_misses);
  w.field("dmb_evictions", s.dmb_evictions);
  w.field("dmb_partial_spills", s.dmb_partial_spills);
  w.field("lsq_loads", s.lsq_loads);
  w.field("lsq_stores", s.lsq_stores);
  w.field("lsq_forwards", s.lsq_forwards);
  write_traffic_json(w, "dram_read_bytes", s.dram_read_bytes);
  write_traffic_json(w, "dram_write_bytes", s.dram_write_bytes);
  w.field("dram_total_bytes", s.dram_total_bytes());
  w.field("partial_bytes_peak", s.partial_bytes_peak);
  w.field("alu_utilization", s.alu_utilization());
  w.field("dmb_hit_rate", s.dmb_hit_rate());
  w.key("stalls");
  w.begin_object();
  for (std::size_t i = 0; i < kStallCauseCount; ++i) {
    w.field(stall_cause_key(static_cast<StallCause>(i)),
            std::uint64_t{s.stall_cycles[i]});
  }
  w.end_object();
  w.field("stall_total", std::uint64_t{s.stall_total()});
  // Cycles covered by the event-driven fast-forward (docs/architecture.md);
  // a subset of `cycles`, already included in the stall buckets.
  w.field("skipped_cycles", std::uint64_t{s.skipped_cycles});
  w.field("bottleneck", to_string(s.bottleneck()));
  w.end_object();
}

// Schema /4: how the tiling threshold was chosen (docs/tuning.md).
// Only emitted when a tuner actually ran (tune.enabled).
void write_tune_json(JsonWriter& w, const TuneInfo& t) {
  w.begin_object();
  w.field("mode", t.mode);
  w.field("fixed_threshold", t.fixed_threshold);
  w.field("threshold", t.threshold);
  w.field("cache_hit", t.cache_hit);
  w.field("simulations", t.simulations);
  w.field("graph_fingerprint", t.graph_fingerprint);
  w.field("config_hash", t.config_hash);
  w.key("candidates");
  w.begin_array();
  for (const TuneCandidateInfo& c : t.candidates) {
    w.begin_object();
    w.field("threshold", c.threshold);
    w.field("model_cycles", c.model_cycles);
    w.field("measured_cycles", c.measured_cycles);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

// Schema /5: bounded-error quantile summary of one latency/duration
// histogram (docs/schemas.md "histograms").
void write_histogram_json(JsonWriter& w, const LogHistogram& h) {
  w.begin_object();
  w.field("count", h.count());
  w.field("min", h.min());
  w.field("max", h.max());
  w.field("mean", h.mean());
  w.field("p50", h.quantile(0.5));
  w.field("p90", h.quantile(0.9));
  w.field("p99", h.quantile(0.99));
  w.end_object();
}

void write_histograms_json(JsonWriter& w, const RunHistograms& h) {
  w.begin_object();
  w.key("lsq_load_latency");
  write_histogram_json(w, h.lsq_load_latency);
  w.key("dram_read_latency");
  write_histogram_json(w, h.dram_read_latency);
  w.key("dmb_fill_latency");
  write_histogram_json(w, h.dmb_fill_latency);
  w.key("phase_cycles");
  write_histogram_json(w, h.phase_cycles);
  w.end_object();
}

// Schema /5: the windowed time-series as parallel column arrays (one
// entry per sample), compact and trivially plottable.
void write_timeseries_json(JsonWriter& w, const TimeSeriesData& ts) {
  w.begin_object();
  w.field("interval", std::uint64_t{ts.interval});
  const auto column = [&](std::string_view name, auto&& get) {
    w.key(name);
    w.begin_array();
    for (const TimeSeriesSample& s : ts.samples) {
      w.value(std::uint64_t{get(s)});
    }
    w.end_array();
  };
  column("cycle", [](const TimeSeriesSample& s) { return s.cycle; });
  column("lsq_depth", [](const TimeSeriesSample& s) { return s.lsq_depth; });
  column("smq_backlog",
         [](const TimeSeriesSample& s) { return s.smq_backlog; });
  column("dmb_lines", [](const TimeSeriesSample& s) { return s.dmb_lines; });
  column("partial_bytes",
         [](const TimeSeriesSample& s) { return s.partial_bytes; });
  column("dmb_hits", [](const TimeSeriesSample& s) { return s.dmb_hits; });
  column("dmb_misses",
         [](const TimeSeriesSample& s) { return s.dmb_misses; });
  column("dram_bytes",
         [](const TimeSeriesSample& s) { return s.dram_bytes; });
  column("alu_busy_cycles",
         [](const TimeSeriesSample& s) { return s.alu_busy_cycles; });
  column("mac_ops", [](const TimeSeriesSample& s) { return s.mac_ops; });
  w.key("stalls");
  w.begin_object();
  for (std::size_t i = 0; i < kStallCauseCount; ++i) {
    w.key(stall_cause_key(static_cast<StallCause>(i)));
    w.begin_array();
    for (const TimeSeriesSample& s : ts.samples) {
      w.value(std::uint64_t{s.stall_cycles[i]});
    }
    w.end_array();
  }
  w.end_object();
  w.end_object();
}

// Schema /6: one imbalance summary (obs/spatial.hpp).
void write_imbalance_json(JsonWriter& w, const ImbalanceStats& s) {
  w.begin_object();
  w.field("count", static_cast<std::uint64_t>(s.count));
  w.field("mean", s.mean);
  w.field("max", s.max_value);
  w.field("max_over_mean", s.max_over_mean);
  w.field("cov", s.cov);
  w.field("gini", s.gini);
  w.end_object();
}

// Schema /6: the spatial attribution — per-region tile-grid counter
// arrays (row-major, grid_rows x grid_cols), the residual bucket,
// the per-PE-lane counters and the imbalance summaries
// (docs/schemas.md "spatial").
void write_spatial_json(JsonWriter& w, const SpatialData& sp) {
  const auto cells = [&](std::string_view name,
                         const std::vector<std::uint64_t>& v) {
    w.key(name);
    w.begin_array();
    for (const std::uint64_t x : v) w.value(x);
    w.end_array();
  };
  w.begin_object();
  w.field("nodes", std::uint64_t{sp.nodes});
  w.field("tile", std::uint64_t{sp.tile});
  w.field("grid_rows", static_cast<std::uint64_t>(sp.grid_rows));
  w.field("grid_cols", static_cast<std::uint64_t>(sp.grid_cols));
  w.key("regions");
  w.begin_object();
  for (std::size_t i = 0; i < kSpatialRegionCount; ++i) {
    const SpatialTileCounters& r = sp.regions[i];
    if (r.empty()) continue;
    w.key(spatial_region_key(static_cast<SpatialRegion>(i)));
    w.begin_object();
    cells("nnz", r.nnz);
    cells("macs", r.macs);
    cells("dmb_hits", r.dmb_hits);
    cells("dmb_misses", r.dmb_misses);
    cells("dram_bytes", r.dram_bytes);
    cells("cycles", r.cycles);
    w.end_object();
  }
  w.end_object();
  w.key("residual");
  w.begin_object();
  w.field("cycles", sp.residual_cycles);
  w.field("dram_bytes", sp.residual_dram_bytes);
  w.field("dmb_hits", sp.residual_dmb_hits);
  w.field("dmb_misses", sp.residual_dmb_misses);
  w.end_object();
  w.key("pe");
  w.begin_object();
  cells("busy_cycles", sp.lane_busy_cycles);
  cells("mac_ops", sp.lane_mac_ops);
  w.field("array_busy_cycles", sp.array_busy_cycles);
  w.end_object();
  w.key("imbalance");
  w.begin_object();
  w.key("pe_busy");
  write_imbalance_json(w, compute_imbalance(sp.lane_busy_cycles));
  w.key("row_band_cycles");
  write_imbalance_json(w, compute_imbalance(sp.row_band_cycles()));
  w.end_object();
  w.end_object();
}

// Schema /7: one phase's sampled-mode measurement + extrapolation
// (core/sampling.hpp; docs/performance.md has the estimator).
void write_phase_sample_json(JsonWriter& w, const PhaseSampleEstimate& p) {
  w.begin_object();
  w.field("bands_total", p.bands_total);
  w.field("bands_simulated", p.bands_simulated);
  w.field("nnz_total", p.nnz_total);
  w.field("nnz_simulated", p.nnz_simulated);
  w.field("cycles_estimate", p.cycles_estimate);
  w.field("cycles_stderr", p.cycles_stderr);
  w.end_object();
}

// Schema /7: the sampled-run annotation. Only emitted (together with
// the top-level "sampled": true label) on sampled runs.
void write_sample_json(JsonWriter& w, const SampleInfo& s) {
  w.begin_object();
  w.field("fraction", s.fraction);
  w.field("seed", s.seed);
  w.field("cycles_estimate", s.cycles_estimate());
  w.field("cycles_stderr", s.cycles_stderr());
  w.field("rel_error_bound", s.rel_error_bound());
  w.key("combination");
  write_phase_sample_json(w, s.combination);
  w.key("aggregation");
  write_phase_sample_json(w, s.aggregation);
  w.end_object();
}

// Schema /7: warm-state checkpoint interaction (sim/checkpoint.hpp).
// Only emitted when a CheckpointStore was attached to the run.
void write_checkpoint_json(JsonWriter& w, const LayerCheckpointInfo& c) {
  w.begin_object();
  w.field("restored", c.restored);
  w.field("built", c.built);
  w.field("key", c.key);
  w.end_object();
}

// Schema /8: the per-tile routing annotation (core/routing.hpp,
// docs/routing.md). Only emitted when a TileRouter actually ran
// (route.enabled); renders with
// `scripts/render_heatmap.py --metric=route`.
void write_route_json(JsonWriter& w, const RouteInfo& r) {
  w.begin_object();
  w.field("mode", r.mode);
  w.field("degenerate", r.degenerate);
  w.field("cache_hit", r.cache_hit);
  w.field("simulations", r.simulations);
  w.field("global_threshold", r.global_threshold);
  w.field("predicted_global_cycles", r.predicted_global_cycles);
  w.field("predicted_tiled_cycles", r.predicted_tiled_cycles);
  w.field("nodes", std::uint64_t{r.nodes});
  w.field("tile", std::uint64_t{r.tile});
  w.field("grid_rows", static_cast<std::uint64_t>(r.grid_rows));
  w.field("grid_cols", static_cast<std::uint64_t>(r.grid_cols));
  w.field("op_rows", std::uint64_t{r.op_rows});
  w.field("region2_cols", std::uint64_t{r.region2_cols});
  w.key("tile_flows");
  w.begin_array();
  for (const std::uint8_t f : r.tile_flows) w.value(std::uint64_t{f});
  w.end_array();
  if (!r.tile_predicted_cycles.empty()) {
    w.key("tile_predicted_cycles");
    w.begin_array();
    for (const double c : r.tile_predicted_cycles) w.value(c);
    w.end_array();
  }
  if (!r.tile_nnz.empty()) {
    w.key("tile_nnz");
    w.begin_array();
    for (const std::uint64_t n : r.tile_nnz) w.value(n);
    w.end_array();
  }
  w.field("graph_fingerprint", r.graph_fingerprint);
  w.field("config_hash", r.config_hash);
  w.end_object();
}

void write_partition_json(JsonWriter& w, const RegionPartition& p) {
  w.begin_object();
  w.field("nodes", std::uint64_t{p.nodes});
  w.field("region1_rows", std::uint64_t{p.region1_rows});
  w.field("region2_cols", std::uint64_t{p.region2_cols});
  w.field("nnz_region1", std::uint64_t{p.nnz_region1});
  w.field("nnz_region2", std::uint64_t{p.nnz_region2});
  w.field("nnz_region3", std::uint64_t{p.nnz_region3});
  w.end_object();
}

}  // namespace

void write_results_json(std::span<const ExperimentResult> results,
                        std::ostream& out,
                        const MetricsRegistry* metrics,
                        const TraceWriter* trace) {
  JsonWriter w(out);
  w.begin_object();
  w.field("schema", kRunReportSchema);
  w.key("results");
  w.begin_array();
  for (const ExperimentResult& r : results) {
    w.begin_object();
    w.field("dataset", r.dataset);
    w.field("abbrev", r.abbrev);
    w.field("scale", r.scale);
    w.field("flow", to_string(r.flow));
    w.field("cycles", std::uint64_t{r.cycles});
    w.field("combination_cycles", std::uint64_t{r.combination_cycles});
    w.field("aggregation_cycles", std::uint64_t{r.aggregation_cycles});
    w.field("preprocess_ms", r.preprocess_ms);
    w.field("sim_wall_ms", r.sim_wall_ms);
    w.field("verified", r.verified);
    w.field("max_abs_err", r.max_abs_err);
    w.field("dram_peak_bytes_per_cycle", r.dram_peak_bytes_per_cycle);
    w.field("dram_bw_utilization", r.dram_bw_utilization());
    w.field("sampled", r.sample.enabled);
    if (r.sample.enabled) {
      w.key("sample");
      write_sample_json(w, r.sample);
    }
    if (r.checkpoint.enabled) {
      w.key("checkpoint");
      write_checkpoint_json(w, r.checkpoint);
    }
    if (r.flow == Dataflow::kHybrid) {
      w.key("partition");
      write_partition_json(w, r.partition);
    }
    if (r.tune.enabled) {
      w.key("tune");
      write_tune_json(w, r.tune);
    }
    if (r.route.enabled) {
      w.key("route");
      write_route_json(w, r.route);
    }
    w.key("stats");
    write_stats_json(w, r.stats);
    w.key("combination");
    write_stats_json(w, r.combination_stats);
    w.key("aggregation");
    write_stats_json(w, r.aggregation_stats);
    if (r.flow == Dataflow::kHybrid) {
      w.key("regions");
      w.begin_array();
      for (const SimStats& region : r.hybrid_info.region_stats) {
        write_stats_json(w, region);
      }
      w.end_array();
    }
    if (!r.histograms.empty()) {
      w.key("histograms");
      write_histograms_json(w, r.histograms);
    }
    if (!r.timeseries.empty()) {
      w.key("timeseries");
      write_timeseries_json(w, r.timeseries);
    }
    if (!r.spatial.empty()) {
      w.key("spatial");
      write_spatial_json(w, r.spatial);
    }
    w.end_object();
  }
  w.end_array();
  if (metrics != nullptr && !metrics->empty()) {
    w.key("metrics");
    metrics->write_json(w);
  }
  if (trace != nullptr) {
    std::uint64_t skipped = 0;
    for (const ExperimentResult& r : results) {
      skipped += r.stats.skipped_cycles;
    }
    w.key("trace");
    w.begin_object();
    w.field("events", static_cast<std::uint64_t>(trace->event_count()));
    w.field("dropped_instants",
            static_cast<std::uint64_t>(trace->dropped_instants()));
    // Cycle-domain span the trace never saw per-cycle ticks for
    // (fast-forwarded; since schema /3).
    w.field("skipped_cycles", skipped);
    w.end_object();
  }
  w.end_object();
  out << '\n';
}

}  // namespace hymm
