#include "core/report.hpp"

#include <ostream>
#include <sstream>

#include "common/table.hpp"

namespace hymm {

void print_stats_summary(const SimStats& stats, std::ostream& out,
                         const std::string& indent) {
  out << indent << "cycles:          " << stats.cycles << '\n'
      << indent << "MAC ops:         " << stats.mac_ops << '\n'
      << indent << "ALU utilization: "
      << Table::fmt_percent(stats.alu_utilization(), 1) << '\n'
      << indent << "DMB hit rate:    "
      << Table::fmt_percent(stats.dmb_hit_rate(), 1) << " ("
      << stats.dmb_read_hits + stats.dmb_accumulate_hits << " hits / "
      << stats.dmb_read_misses + stats.dmb_accumulate_misses
      << " misses)\n"
      << indent << "LSQ forwards:    " << stats.lsq_forwards << '\n'
      << indent << "partial spills:  " << stats.dmb_partial_spills << '\n'
      << indent << "partial peak:    "
      << Table::fmt_bytes(static_cast<double>(stats.partial_bytes_peak))
      << '\n'
      << indent << "DRAM traffic:    "
      << Table::fmt_bytes(static_cast<double>(stats.dram_total_bytes()))
      << " (" << dram_breakdown_string(stats) << ")\n";
}

std::string dram_breakdown_string(const SimStats& stats) {
  std::ostringstream oss;
  bool first = true;
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    const std::uint64_t bytes =
        stats.dram_read_bytes[c] + stats.dram_write_bytes[c];
    if (bytes == 0) continue;
    if (!first) oss << ", ";
    first = false;
    oss << to_string(static_cast<TrafficClass>(c)) << '='
        << Table::fmt_bytes(static_cast<double>(bytes));
  }
  return first ? "none" : oss.str();
}

void write_results_csv(std::span<const ExperimentResult> results,
                       std::ostream& out) {
  out << "dataset,scale,flow,cycles,combination_cycles,aggregation_cycles,"
         "mac_ops,alu_utilization,dmb_hit_rate,partial_bytes_peak,"
         "preprocess_ms";
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    out << ",read_" << to_string(static_cast<TrafficClass>(c));
    out << ",write_" << to_string(static_cast<TrafficClass>(c));
  }
  out << ",dram_total_bytes,verified,max_abs_err\n";
  for (const ExperimentResult& r : results) {
    out << r.abbrev << ',' << r.scale << ',' << to_string(r.flow) << ','
        << r.cycles << ',' << r.combination_cycles << ','
        << r.aggregation_cycles << ',' << r.mac_ops << ','
        << r.alu_utilization << ',' << r.dmb_hit_rate << ','
        << r.partial_bytes_peak << ',' << r.preprocess_ms;
    for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
      out << ',' << r.dram_read_bytes[c] << ',' << r.dram_write_bytes[c];
    }
    out << ',' << r.dram_total_bytes << ',' << (r.verified ? 1 : 0) << ','
        << r.max_abs_err << '\n';
  }
}

}  // namespace hymm
