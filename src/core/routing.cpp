#include "core/routing.hpp"

#include <utility>

#include "common/check.hpp"
#include "obs/spatial.hpp"

namespace hymm {

const char* tile_flow_key(TileFlow flow) {
  switch (flow) {
    case TileFlow::kOp:
      return "op";
    case TileFlow::kRwp:
      return "rwp";
  }
  return "rwp";
}

std::size_t TileRoutingMap::tile_index(NodeId row, NodeId col) const {
  HYMM_DCHECK(row < nodes && col < nodes);
  return (row / tile) * grid_cols + (col / tile);
}

bool TileRoutingMap::routes_to_op(NodeId row, NodeId col) const {
  return row < op_rows && flows[tile_index(row, col)] == TileFlow::kOp;
}

void TileRoutingMap::validate() const {
  HYMM_CHECK(nodes > 0 && tile > 0);
  HYMM_CHECK(grid_rows == (nodes + tile - 1) / tile);
  HYMM_CHECK(grid_cols == grid_rows);
  HYMM_CHECK(flows.size() == grid_rows * grid_cols);
  HYMM_CHECK(op_rows <= nodes && region2_cols <= nodes);
  HYMM_CHECK(tile_predicted_cycles.empty() ||
             tile_predicted_cycles.size() == flows.size());
  HYMM_CHECK(tile_nnz.empty() || tile_nnz.size() == flows.size());
}

TileRoutingMap degenerate_routing_map(const RegionPartition& partition,
                                      NodeId tile_override) {
  TileRoutingMap map;
  map.nodes = partition.nodes;
  map.tile = spatial_tile_edge(partition.nodes, tile_override);
  map.grid_rows = (partition.nodes + map.tile - 1) / map.tile;
  map.grid_cols = map.grid_rows;
  map.op_rows = partition.region1_rows;
  map.region2_cols = partition.region2_cols;
  map.degenerate = true;
  map.flows.resize(map.grid_rows * map.grid_cols, TileFlow::kRwp);
  // Tile bands whose first row is below the OP boundary are OP; the
  // op_rows guard in routes_to_op keeps rows past the boundary inside
  // a straddling band on the RWP side, so the split matches the
  // global partition exactly.
  for (std::size_t band = 0; band < map.grid_rows; ++band) {
    if (static_cast<NodeId>(band) * map.tile < map.op_rows) {
      for (std::size_t c = 0; c < map.grid_cols; ++c) {
        map.flows[band * map.grid_cols + c] = TileFlow::kOp;
      }
    }
  }
  return map;
}

RoutedAdjacency build_routed_adjacency(const CsrMatrix& sorted_adjacency,
                                       const TileRoutingMap& map) {
  map.validate();
  HYMM_CHECK(sorted_adjacency.rows() == sorted_adjacency.cols());
  HYMM_CHECK(sorted_adjacency.rows() == map.nodes);

  const NodeId n = map.nodes;
  const NodeId op_rows = map.op_rows;

  std::vector<EdgeCount> op_ptr;
  op_ptr.reserve(static_cast<std::size_t>(op_rows) + 1);
  op_ptr.push_back(0);
  std::vector<NodeId> op_cols;
  std::vector<Value> op_vals;

  // RWP-routed entries collected in global row order; whether any of
  // them fall in the pinned prefix decides the rebasing below.
  std::vector<EdgeCount> rwp_prefix_nnz(op_rows, 0);
  std::vector<NodeId> rwp_cols;
  std::vector<Value> rwp_vals;
  bool rwp_in_prefix = false;

  for (NodeId r = 0; r < op_rows; ++r) {
    const auto cols = sorted_adjacency.row_cols(r);
    const auto vals = sorted_adjacency.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (map.routes_to_op(r, cols[i])) {
        op_cols.push_back(cols[i]);
        op_vals.push_back(vals[i]);
      } else {
        ++rwp_prefix_nnz[r];
        rwp_cols.push_back(cols[i]);
        rwp_vals.push_back(vals[i]);
        rwp_in_prefix = true;
      }
    }
    op_ptr.push_back(static_cast<EdgeCount>(op_cols.size()));
  }

  RoutedAdjacency routed;
  routed.rwp_row_offset = rwp_in_prefix ? 0 : op_rows;
  const NodeId rwp_rows = n - routed.rwp_row_offset;

  std::vector<EdgeCount> rwp_ptr;
  rwp_ptr.reserve(static_cast<std::size_t>(rwp_rows) + 1);
  rwp_ptr.push_back(0);
  if (rwp_in_prefix) {
    EdgeCount running = 0;
    for (NodeId r = 0; r < op_rows; ++r) {
      running += rwp_prefix_nnz[r];
      rwp_ptr.push_back(running);
    }
  }
  for (NodeId r = op_rows; r < n; ++r) {
    const auto cols = sorted_adjacency.row_cols(r);
    const auto vals = sorted_adjacency.row_values(r);
    rwp_cols.insert(rwp_cols.end(), cols.begin(), cols.end());
    rwp_vals.insert(rwp_vals.end(), vals.begin(), vals.end());
    rwp_ptr.push_back(static_cast<EdgeCount>(rwp_cols.size()));
  }

  const EdgeCount op_nnz = static_cast<EdgeCount>(op_cols.size());
  routed.op_csc = CscMatrix::from_csr(CsrMatrix::from_parts(
      op_rows, n, std::move(op_ptr), std::move(op_cols),
      std::move(op_vals)));

  routed.partition.nodes = n;
  routed.partition.region1_rows = op_rows;
  routed.partition.region2_cols = map.region2_cols;
  routed.partition.nnz_region1 = op_nnz;
  for (const NodeId c : rwp_cols) {
    if (c < map.region2_cols) {
      ++routed.partition.nnz_region2;
    } else {
      ++routed.partition.nnz_region3;
    }
  }
  routed.rwp_csr = CsrMatrix::from_parts(rwp_rows, n, std::move(rwp_ptr),
                                         std::move(rwp_cols),
                                         std::move(rwp_vals));

  // Conservation: every adjacency nonzero routed exactly once.
  HYMM_CHECK(routed.partition.total_nnz() == sorted_adjacency.nnz());
  return routed;
}

}  // namespace hymm
