/// @file
/// Open-loop GCN serving model: a seeded Poisson request generator on
/// the simulated clock feeds a bounded FIFO queue of inference
/// requests (one RequestClass each), and a single accelerator-backed
/// server dispatches them in batches of consecutive same-class
/// requests — followers of a batch share the leader's weight fetches,
/// and every member keeps each layer's XW output resident between
/// combination and aggregation (cost_model.hpp). Per-request service
/// cycles come from exact per-class simulations minus the analytic
/// savings, so the whole run is deterministic: bit-identical for a
/// fixed seed at any worker thread count and under HYMM_NO_FASTFWD.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "obs/histogram.hpp"
#include "serve/cost_model.hpp"
#include "serve/request.hpp"

namespace hymm {

/// Everything one serving run needs, named instead of positional.
struct ServeConfig {
  Dataflow flow = Dataflow::kHybrid;  ///< dataflow every request runs
  AcceleratorConfig accel;            ///< hardware parameters
  std::uint64_t requests = 256;       ///< arrivals to generate
  /// Open-loop Poisson arrival rate, in requests per second of
  /// modeled time at accel.clock_ghz.
  double arrival_rate = 2000.0;
  std::size_t queue_capacity = 64;  ///< waiting requests before drops
  std::size_t max_batch = 4;        ///< leader + followers per dispatch
  bool buffer_reuse = true;         ///< keep XW resident between phases
  std::uint64_t seed = 42;          ///< arrival/class-pick RNG seed
  unsigned threads = 0;  ///< class-cost simulation workers (0 = auto)
  /// Optional warm-state checkpoint store (sim/checkpoint.hpp) for
  /// the class-cost simulations; must outlive run_serve.
  CheckpointStore* checkpoints = nullptr;
};

/// The lifecycle of one generated request, in arrival order. Dropped
/// requests (queue full on arrival) carry only id/class/arrival.
struct RequestRecord {
  std::uint64_t id = 0;         ///< arrival index
  std::size_t class_index = 0;  ///< index into ServeResult::class_costs
  bool dropped = false;         ///< rejected by the bounded queue
  Cycle arrival = 0;            ///< generator timestamp
  Cycle start = 0;              ///< service start (after queue wait)
  Cycle completion = 0;         ///< service end
  Cycle service_cycles = 0;     ///< standalone cycles minus savings
  Cycle wait_cycles = 0;        ///< start - arrival
  Cycle latency_cycles = 0;     ///< completion - arrival
  std::uint64_t batch_id = 0;   ///< dispatch the request rode in
  std::size_t batch_position = 0;  ///< 0 = batch leader
  RequestSavings savings;       ///< cycles/bytes this request avoided
};

/// One point of the queue-depth timeseries (sampled at every arrival
/// and dispatch event, decimated to <= 512 points).
struct QueueSample {
  Cycle cycle = 0;              ///< event timestamp
  std::uint64_t depth = 0;      ///< waiting requests after the event
  std::uint64_t in_flight = 0;  ///< batch members being served
};

/// Everything a serving run produced.
struct ServeResult {
  std::vector<ClassCost> class_costs;   ///< per-class standalone costs
  std::vector<RequestRecord> requests;  ///< every arrival, in order
  LogHistogram latency;   ///< completion - arrival, served requests
  LogHistogram wait;      ///< start - arrival, served requests
  LogHistogram service;   ///< per-request service cycles
  std::vector<QueueSample> queue_depth;  ///< decimated event series

  std::uint64_t served = 0;   ///< requests that completed
  std::uint64_t dropped = 0;  ///< requests the bounded queue rejected
  std::uint64_t batches = 0;  ///< dispatches issued
  Cycle makespan = 0;         ///< last completion cycle
  Cycle busy_cycles = 0;      ///< cycles the server was serving

  /// DRAM-traffic conservation ledger: for every served request,
  /// standalone == charged + reuse_saved + batch_saved (HYMM_CHECKed
  /// by run_serve; the JSON report re-states the identity).
  std::uint64_t standalone_bytes = 0;  ///< sum of class standalone traffic
  std::uint64_t charged_bytes = 0;     ///< traffic the serving run pays
  std::uint64_t reuse_saved_bytes = 0; ///< XW writeback+re-read avoided
  std::uint64_t batch_saved_bytes = 0; ///< weight re-fetches avoided
  Cycle standalone_cycles = 0;  ///< sum of served standalone cycles
  Cycle saved_cycles = 0;       ///< total service-cycle reduction

  /// Served requests per second of modeled time at `clock_ghz`.
  double throughput_rps(double clock_ghz = 1.0) const {
    if (makespan == 0) return 0.0;
    return static_cast<double>(served) * clock_ghz * 1e9 /
           static_cast<double>(makespan);
  }
  /// Fraction of the makespan the server spent serving.
  double utilization() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(busy_cycles) /
                               static_cast<double>(makespan);
  }
};

/// Runs the full serving pipeline: simulates each class's standalone
/// cost (parallel across classes; see simulate_class_costs), then
/// plays the open-loop arrival process through the bounded queue and
/// batching scheduler on the simulated clock. Deterministic for a
/// fixed (classes, weights, config).
ServeResult run_serve(const std::vector<RequestClass>& classes,
                      const std::vector<DenseMatrix>& weights,
                      const ServeConfig& config);

}  // namespace hymm
