#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/check.hpp"

namespace hymm {

namespace {

// Pre-generated arrival: timestamp plus the class the pick stream
// drew. Generated before the event loop so the arrival process is
// independent of scheduling decisions (open loop).
struct Arrival {
  Cycle cycle = 0;
  std::size_t class_index = 0;
};

std::vector<Arrival> generate_arrivals(const ServeConfig& config,
                                       const std::vector<ClassCost>& costs) {
  // Separate streams so adding a knob to one never perturbs the
  // other: seed+1 drives inter-arrival gaps, seed+2 the class mix.
  Rng gap_rng(config.seed + 1);
  Rng class_rng(config.seed + 2);
  const double clock_hz = config.accel.clock_ghz * 1e9;
  const double mean_gap = clock_hz / config.arrival_rate;
  double total_weight = 0.0;
  for (const ClassCost& cost : costs) total_weight += cost.weight;
  HYMM_CHECK_MSG(total_weight > 0.0, "class-mix weights sum to zero");

  std::vector<Arrival> arrivals;
  arrivals.reserve(config.requests);
  Cycle now = 0;
  for (std::uint64_t i = 0; i < config.requests; ++i) {
    // Exponential inter-arrival via inversion; floored at one cycle
    // so timestamps strictly increase.
    const double u = gap_rng.next_double();
    const double gap = -std::log(1.0 - u) * mean_gap;
    now += std::max<Cycle>(static_cast<Cycle>(gap), 1);
    Arrival arrival;
    arrival.cycle = now;
    double pick = class_rng.next_double() * total_weight;
    std::size_t index = 0;
    for (; index + 1 < costs.size(); ++index) {
      pick -= costs[index].weight;
      if (pick < 0.0) break;
    }
    arrival.class_index = index;
    arrivals.push_back(arrival);
  }
  return arrivals;
}

// Decimates an event series to <= limit points by repeated halving
// (keep every other sample) — deterministic and order-preserving.
void decimate(std::vector<QueueSample>& samples, std::size_t limit) {
  while (samples.size() > limit) {
    std::vector<QueueSample> kept;
    kept.reserve((samples.size() + 1) / 2);
    for (std::size_t i = 0; i < samples.size(); i += 2) {
      kept.push_back(samples[i]);
    }
    samples.swap(kept);
  }
}

}  // namespace

ServeResult run_serve(const std::vector<RequestClass>& classes,
                      const std::vector<DenseMatrix>& weights,
                      const ServeConfig& config) {
  HYMM_CHECK_MSG(config.requests > 0, "ServeConfig.requests must be > 0");
  HYMM_CHECK_MSG(config.arrival_rate > 0.0,
                 "ServeConfig.arrival_rate must be > 0");
  HYMM_CHECK_MSG(config.max_batch > 0, "ServeConfig.max_batch must be > 0");
  HYMM_CHECK_MSG(config.queue_capacity > 0,
                 "ServeConfig.queue_capacity must be > 0");

  ServeResult result;
  result.class_costs =
      simulate_class_costs(classes, weights, config.flow, config.accel,
                           config.threads, config.checkpoints);
  // Per-(class, position) savings depend only on the class and on
  // whether the member is the leader — precompute both variants.
  std::vector<RequestSavings> leader_savings;
  std::vector<RequestSavings> follower_savings;
  for (const ClassCost& cost : result.class_costs) {
    leader_savings.push_back(
        batch_member_savings(cost, 0, config.buffer_reuse, config.accel));
    follower_savings.push_back(
        batch_member_savings(cost, 1, config.buffer_reuse, config.accel));
  }

  const std::vector<Arrival> arrivals =
      generate_arrivals(config, result.class_costs);
  result.requests.resize(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    result.requests[i].id = i;
    result.requests[i].class_index = arrivals[i].class_index;
    result.requests[i].arrival = arrivals[i].cycle;
  }

  std::vector<QueueSample> samples;
  std::deque<std::size_t> queue;  // waiting request indices, FIFO
  // The last dispatched batch's service window, for in-flight
  // attribution of samples taken while it runs.
  Cycle batch_begin = 0, batch_end = 0;
  std::uint64_t batch_size = 0;
  const auto in_flight_at = [&](Cycle t) -> std::uint64_t {
    return (t >= batch_begin && t < batch_end) ? batch_size : 0;
  };
  const auto sample = [&](Cycle t) {
    samples.push_back(QueueSample{t, queue.size(), in_flight_at(t)});
  };

  std::size_t next_arrival = 0;
  const auto admit_until = [&](Cycle t) {
    // Admit every arrival at or before t, in arrival order; the
    // bounded queue drops what does not fit.
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].cycle <= t) {
      RequestRecord& record = result.requests[next_arrival];
      if (queue.size() >= config.queue_capacity) {
        record.dropped = true;
        ++result.dropped;
      } else {
        queue.push_back(next_arrival);
      }
      sample(record.arrival);
      ++next_arrival;
    }
  };

  Cycle server_free = 0;
  while (next_arrival < arrivals.size() || !queue.empty()) {
    if (queue.empty()) {
      // Idle server: jump to the next arrival.
      admit_until(arrivals[next_arrival].cycle);
      continue;
    }
    const Cycle start = std::max(
        server_free, result.requests[queue.front()].arrival);
    // Everything that arrived while the previous batch was in service
    // (or before this start) is waiting when the batch forms.
    admit_until(start);

    // Batch = leader + consecutive same-class requests, strict FIFO
    // (no reordering around an incompatible request).
    const std::size_t leader_class =
        result.requests[queue.front()].class_index;
    std::vector<std::size_t> batch;
    while (batch.size() < config.max_batch && !queue.empty() &&
           result.requests[queue.front()].class_index == leader_class) {
      batch.push_back(queue.front());
      queue.pop_front();
    }

    batch_begin = start;
    batch_size = batch.size();
    Cycle member_start = start;
    for (std::size_t position = 0; position < batch.size(); ++position) {
      RequestRecord& record = result.requests[batch[position]];
      const ClassCost& cost = result.class_costs[record.class_index];
      record.savings = position == 0
                           ? leader_savings[record.class_index]
                           : follower_savings[record.class_index];
      record.service_cycles =
          cost.standalone_cycles - record.savings.saved_cycles;
      record.batch_id = result.batches;
      record.batch_position = position;
      record.start = member_start;
      record.completion = member_start + record.service_cycles;
      record.wait_cycles = record.start - record.arrival;
      record.latency_cycles = record.completion - record.arrival;
      member_start = record.completion;

      result.latency.observe(record.latency_cycles);
      result.wait.observe(record.wait_cycles);
      result.service.observe(record.service_cycles);
      ++result.served;
      result.standalone_cycles += cost.standalone_cycles;
      result.saved_cycles += record.savings.saved_cycles;
      result.standalone_bytes += cost.standalone_dram_bytes;
      result.reuse_saved_bytes += record.savings.reuse_saved_bytes;
      result.batch_saved_bytes += record.savings.batch_saved_bytes;
      const std::uint64_t saved_bytes = record.savings.reuse_saved_bytes +
                                        record.savings.batch_saved_bytes;
      HYMM_CHECK(saved_bytes <= cost.standalone_dram_bytes);
      result.charged_bytes += cost.standalone_dram_bytes - saved_bytes;
    }
    batch_end = member_start;
    server_free = batch_end;
    result.busy_cycles += batch_end - batch_begin;
    result.makespan = std::max(result.makespan, batch_end);
    ++result.batches;
    sample(start);
  }

  // Conservation: the serving run's DRAM ledger must account for
  // every byte the standalone runs would have paid.
  HYMM_CHECK(result.charged_bytes + result.reuse_saved_bytes +
                 result.batch_saved_bytes ==
             result.standalone_bytes);
  HYMM_CHECK(result.served + result.dropped == config.requests);

  decimate(samples, 512);
  result.queue_depth = std::move(samples);
  return result;
}

}  // namespace hymm
