/// @file
/// Request classes for the GCN serving model: the kinds of inference
/// query an open-loop client mix can issue against one shared
/// GcnModel — the full graph, or a sampled subgraph (the
/// "neighbourhood query" shape of production GNN serving). Every
/// class is immutable after construction and shared read-only by the
/// cost library and the request generator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "graph/datasets.hpp"

namespace hymm {

/// One kind of inference request the serving mix can draw: a named
/// (sub)graph with its normalized adjacency and feature rows. The
/// layer weights are NOT part of the class — every class runs the
/// same shared weight chain, which is what makes request batching
/// amortize weight fetches across classes of the same batch.
struct RequestClass {
  std::string name;        ///< e.g. "full", "half", "small"
  double weight = 1.0;     ///< class-mix probability weight (> 0)
  NodeId nodes = 0;        ///< node count of the (sub)graph
  CsrMatrix a_hat;         ///< normalized (sub)adjacency, self-loops added
  CsrMatrix features;      ///< feature rows of the class's nodes
};

/// Induced-subgraph sample of `target_nodes` nodes grown by BFS from
/// seeded random start nodes (new starts are drawn when a component
/// is exhausted), with node ids rebased to visit order. Returns the
/// raw induced adjacency and the matching feature rows; deterministic
/// for a fixed (adjacency, features, target_nodes, seed).
struct SampledSubgraph {
  CsrMatrix adjacency;  ///< induced subgraph, ids rebased to [0, target)
  CsrMatrix features;   ///< the sampled nodes' feature rows, same order
};

/// Draws the sample (see SampledSubgraph). target_nodes is clamped to
/// [1, adjacency.rows()].
SampledSubgraph sample_subgraph(const CsrMatrix& adjacency,
                                const CsrMatrix& features,
                                NodeId target_nodes, std::uint64_t seed);

/// The standard serving class mix over one workload, heaviest query
/// rarest: "full" (the whole graph, weight 1), "half" (a ~50% BFS
/// sample, weight 3) and "small" (a ~12.5% BFS sample, weight 6).
/// Samples are deterministic in `seed`; subgraph adjacencies are
/// normalized independently (the induced subgraph of a normalized
/// matrix is not itself correctly normalized).
std::vector<RequestClass> build_request_classes(const GcnWorkload& workload,
                                                std::uint64_t seed);

}  // namespace hymm
