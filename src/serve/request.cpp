#include "serve/request.hpp"

#include <algorithm>
#include <deque>

#include "common/check.hpp"
#include "graph/coo.hpp"
#include "linalg/gcn.hpp"

namespace hymm {

SampledSubgraph sample_subgraph(const CsrMatrix& adjacency,
                                const CsrMatrix& features,
                                NodeId target_nodes, std::uint64_t seed) {
  const NodeId n = adjacency.rows();
  HYMM_CHECK(adjacency.cols() == n);
  HYMM_CHECK(features.rows() == n);
  target_nodes = std::clamp<NodeId>(target_nodes, 1, n);

  Rng rng(seed);
  // new_id[old] == kUnvisited marks unsampled nodes; sampled nodes get
  // ids in BFS visit order so the subgraph keeps locality structure.
  constexpr NodeId kUnvisited = ~NodeId{0};
  std::vector<NodeId> new_id(n, kUnvisited);
  std::vector<NodeId> picked;  // visit order: new -> old
  picked.reserve(target_nodes);
  std::deque<NodeId> frontier;
  while (picked.size() < target_nodes) {
    if (frontier.empty()) {
      // Component exhausted (or first start): draw a fresh unvisited
      // seed. Linear probing from a random point keeps this O(n)
      // total and deterministic.
      NodeId start = static_cast<NodeId>(rng.next_below(n));
      while (new_id[start] != kUnvisited) start = (start + 1) % n;
      new_id[start] = static_cast<NodeId>(picked.size());
      picked.push_back(start);
      frontier.push_back(start);
      if (picked.size() >= target_nodes) break;
    }
    const NodeId node = frontier.front();
    frontier.pop_front();
    for (const NodeId neighbour : adjacency.row_cols(node)) {
      if (new_id[neighbour] != kUnvisited) continue;
      new_id[neighbour] = static_cast<NodeId>(picked.size());
      picked.push_back(neighbour);
      frontier.push_back(neighbour);
      if (picked.size() >= target_nodes) break;
    }
  }

  SampledSubgraph sample;
  CooMatrix sub_adj(target_nodes, target_nodes);
  for (NodeId new_row = 0; new_row < target_nodes; ++new_row) {
    const NodeId old_row = picked[new_row];
    const auto cols = adjacency.row_cols(old_row);
    const auto values = adjacency.row_values(old_row);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const NodeId mapped = new_id[cols[i]];
      if (mapped == kUnvisited) continue;  // edge leaves the sample
      sub_adj.add(new_row, mapped, values[i]);
    }
  }
  sample.adjacency = CsrMatrix::from_coo(std::move(sub_adj));

  CooMatrix sub_features(target_nodes, features.cols());
  for (NodeId new_row = 0; new_row < target_nodes; ++new_row) {
    const NodeId old_row = picked[new_row];
    const auto cols = features.row_cols(old_row);
    const auto values = features.row_values(old_row);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      sub_features.add(new_row, cols[i], values[i]);
    }
  }
  sample.features = CsrMatrix::from_coo(std::move(sub_features));
  return sample;
}

std::vector<RequestClass> build_request_classes(const GcnWorkload& workload,
                                                std::uint64_t seed) {
  const NodeId n = workload.adjacency.rows();
  std::vector<RequestClass> classes;

  RequestClass full;
  full.name = "full";
  full.weight = 1.0;
  full.nodes = n;
  full.a_hat = normalize_adjacency(workload.adjacency);
  full.features = workload.features;
  classes.push_back(std::move(full));

  const auto add_sampled = [&](const std::string& name, double weight,
                               NodeId target, std::uint64_t sample_seed) {
    SampledSubgraph sample = sample_subgraph(
        workload.adjacency, workload.features, target, sample_seed);
    RequestClass cls;
    cls.name = name;
    cls.weight = weight;
    cls.nodes = sample.adjacency.rows();
    cls.a_hat = normalize_adjacency(sample.adjacency);
    cls.features = std::move(sample.features);
    classes.push_back(std::move(cls));
  };
  // Floors keep the samples meaningful on tiny test graphs.
  add_sampled("half", 3.0, std::max<NodeId>(n / 2, std::min<NodeId>(n, 32)),
              seed + 1);
  add_sampled("small", 6.0, std::max<NodeId>(n / 8, std::min<NodeId>(n, 16)),
              seed + 2);
  return classes;
}

}  // namespace hymm
