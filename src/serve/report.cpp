#include "serve/report.hpp"

#include <ostream>

#include "common/table.hpp"
#include "common/version.hpp"
#include "obs/json.hpp"

namespace hymm {

namespace {

void write_quantiles(JsonWriter& w, const char* name,
                     const LogHistogram& h) {
  w.key(name);
  w.begin_object();
  w.field("count", h.count());
  w.field("mean", h.mean());
  w.field("p50", h.quantile(0.50));
  w.field("p90", h.quantile(0.90));
  w.field("p99", h.quantile(0.99));
  w.field("max", h.max());
  w.end_object();
}

std::string quantile_line(const LogHistogram& h) {
  return "p50 " + std::to_string(h.quantile(0.50)) + "  p90 " +
         std::to_string(h.quantile(0.90)) + "  p99 " +
         std::to_string(h.quantile(0.99)) + "  max " +
         std::to_string(h.max());
}

}  // namespace

void print_serve_summary(const ServeResult& result,
                         const ServeConfig& config,
                         const ServeReportMeta& meta, std::ostream& out) {
  out << "Serving " << meta.spec.name << " (x" << meta.scale << " scale, "
      << to_string(config.flow) << ", seed " << meta.seed << ")\n"
      << "  open loop: " << config.arrival_rate << " req/s, "
      << config.requests << " arrivals, queue cap "
      << config.queue_capacity << ", batch <= " << config.max_batch
      << ", XW reuse " << (config.buffer_reuse ? "on" : "off") << "\n\n";

  Table classes({"Class", "Nodes", "Standalone cycles", "DRAM",
                 "Mix weight", "Verified"});
  for (const ClassCost& cost : result.class_costs) {
    classes.add_row(
        {cost.name, std::to_string(cost.nodes),
         std::to_string(cost.standalone_cycles),
         Table::fmt_bytes(static_cast<double>(cost.standalone_dram_bytes)),
         Table::fmt(cost.weight, 1), cost.verified ? "yes" : "NO"});
  }
  classes.print(out);

  const double clock = config.accel.clock_ghz;
  out << "\nserved " << result.served << " / dropped " << result.dropped
      << " in " << result.batches << " batches; makespan "
      << result.makespan << " cycles ("
      << Table::fmt(static_cast<double>(result.makespan) / (clock * 1e6), 2)
      << " ms @" << clock << "GHz)\n"
      << "throughput " << Table::fmt(result.throughput_rps(clock), 1)
      << " req/s, utilization "
      << Table::fmt_percent(result.utilization(), 1) << "\n"
      << "latency (cycles):  " << quantile_line(result.latency) << "\n"
      << "queue wait:        " << quantile_line(result.wait) << "\n"
      << "service:           " << quantile_line(result.service) << "\n"
      << "DRAM ledger: standalone "
      << Table::fmt_bytes(static_cast<double>(result.standalone_bytes))
      << " = charged "
      << Table::fmt_bytes(static_cast<double>(result.charged_bytes))
      << " + reuse-saved "
      << Table::fmt_bytes(static_cast<double>(result.reuse_saved_bytes))
      << " + batch-saved "
      << Table::fmt_bytes(static_cast<double>(result.batch_saved_bytes))
      << "\ncycles saved by reuse+batching: " << result.saved_cycles
      << " of " << result.standalone_cycles << " standalone ("
      << Table::fmt_percent(
             result.standalone_cycles > 0
                 ? static_cast<double>(result.saved_cycles) /
                       static_cast<double>(result.standalone_cycles)
                 : 0.0,
             1)
      << ")\n";
}

void write_serve_csv(const ServeResult& result, std::ostream& out) {
  out << "id,class,arrival,dropped,start,completion,service_cycles,"
         "wait_cycles,latency_cycles,batch,batch_position\n";
  for (const RequestRecord& r : result.requests) {
    out << r.id << ',' << result.class_costs[r.class_index].name << ','
        << r.arrival << ',' << (r.dropped ? 1 : 0) << ',';
    if (r.dropped) {
      out << ",,,,,,\n";
      continue;
    }
    out << r.start << ',' << r.completion << ',' << r.service_cycles << ','
        << r.wait_cycles << ',' << r.latency_cycles << ',' << r.batch_id
        << ',' << r.batch_position << '\n';
  }
}

void write_serve_json(const ServeResult& result, const ServeConfig& config,
                      const ServeReportMeta& meta, std::ostream& out) {
  JsonWriter w(out);
  w.begin_object();
  w.field("schema", kServeReportSchema);
  w.field("dataset", meta.spec.name);
  w.field("abbrev", meta.spec.abbrev);
  w.field("scale", meta.scale);
  w.field("flow", to_string(config.flow));
  w.field("seed", meta.seed);
  w.field("clock_ghz", config.accel.clock_ghz);

  w.key("config");
  w.begin_object();
  w.field("arrival_rate_rps", config.arrival_rate);
  w.field("requests", config.requests);
  w.field("queue_capacity", std::uint64_t{config.queue_capacity});
  w.field("max_batch", std::uint64_t{config.max_batch});
  w.field("buffer_reuse", config.buffer_reuse);
  w.end_object();

  w.key("classes");
  w.begin_array();
  for (const ClassCost& cost : result.class_costs) {
    w.begin_object();
    w.field("name", cost.name);
    w.field("weight", cost.weight);
    w.field("nodes", std::uint64_t{cost.nodes});
    w.field("standalone_cycles", std::uint64_t{cost.standalone_cycles});
    w.field("standalone_dram_bytes", cost.standalone_dram_bytes);
    w.field("preprocess_ms", cost.preprocess_ms);
    w.field("verified", cost.verified);
    w.field("max_abs_err", cost.max_abs_err);
    w.key("layers");
    w.begin_array();
    for (const LayerCost& layer : cost.layers) {
      w.begin_object();
      w.field("cycles", std::uint64_t{layer.cycles});
      w.field("comb_mem_stall", std::uint64_t{layer.comb_mem_stall});
      w.field("agg_mem_stall", std::uint64_t{layer.agg_mem_stall});
      w.field("weight_read_bytes", layer.weight_read_bytes);
      w.field("xw_write_bytes", layer.xw_write_bytes);
      w.field("xw_read_bytes", layer.xw_read_bytes);
      w.field("xw_footprint_bytes", layer.xw_footprint_bytes);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("summary");
  w.begin_object();
  w.field("served", result.served);
  w.field("dropped", result.dropped);
  w.field("batches", result.batches);
  w.field("makespan_cycles", std::uint64_t{result.makespan});
  w.field("busy_cycles", std::uint64_t{result.busy_cycles});
  w.field("utilization", result.utilization());
  w.field("throughput_rps", result.throughput_rps(config.accel.clock_ghz));
  write_quantiles(w, "latency_cycles", result.latency);
  write_quantiles(w, "wait_cycles", result.wait);
  write_quantiles(w, "service_cycles", result.service);
  w.end_object();

  // The conservation identity (standalone == charged + reuse_saved +
  // batch_saved) is HYMM_CHECKed by run_serve and re-validated by
  // scripts/check_schema.py.
  w.key("traffic");
  w.begin_object();
  w.field("standalone_bytes", result.standalone_bytes);
  w.field("charged_bytes", result.charged_bytes);
  w.field("reuse_saved_bytes", result.reuse_saved_bytes);
  w.field("batch_saved_bytes", result.batch_saved_bytes);
  w.field("standalone_cycles", std::uint64_t{result.standalone_cycles});
  w.field("saved_cycles", std::uint64_t{result.saved_cycles});
  w.end_object();

  w.key("queue_depth");
  w.begin_array();
  for (const QueueSample& s : result.queue_depth) {
    w.begin_object();
    w.field("cycle", std::uint64_t{s.cycle});
    w.field("depth", s.depth);
    w.field("in_flight", s.in_flight);
    w.end_object();
  }
  w.end_array();

  w.key("requests");
  w.begin_array();
  for (const RequestRecord& r : result.requests) {
    w.begin_object();
    w.field("id", r.id);
    w.field("class", result.class_costs[r.class_index].name);
    w.field("arrival", std::uint64_t{r.arrival});
    w.field("dropped", r.dropped);
    if (!r.dropped) {
      w.field("start", std::uint64_t{r.start});
      w.field("completion", std::uint64_t{r.completion});
      w.field("service_cycles", std::uint64_t{r.service_cycles});
      w.field("wait_cycles", std::uint64_t{r.wait_cycles});
      w.field("latency_cycles", std::uint64_t{r.latency_cycles});
      w.field("batch", r.batch_id);
      w.field("batch_position", std::uint64_t{r.batch_position});
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

}  // namespace hymm
