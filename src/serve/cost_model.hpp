/// @file
/// Per-class serving cost library: each request class's multi-layer
/// inference is simulated exactly once (cycle-accurate, verified
/// against the golden model), and the scheduler's batching /
/// inter-layer buffer-reuse savings are derived analytically from the
/// measured per-layer DRAM traffic and memory-stall budgets. All
/// savings arithmetic is integer and conservation-checked: saved
/// traffic never exceeds the traffic the standalone run actually
/// paid, and saved cycles never exceed the phase's memory-stall
/// cycles (you cannot save compute by skipping a fetch).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "linalg/dense.hpp"
#include "serve/request.hpp"

namespace hymm {

class CheckpointStore;  // sim/checkpoint.hpp

/// One layer's serving-relevant costs, distilled from the exact
/// simulation of the class's standalone inference.
struct LayerCost {
  Cycle cycles = 0;            ///< standalone layer cycles
  Cycle comb_mem_stall = 0;    ///< combination-phase memory-group stalls
  Cycle agg_mem_stall = 0;     ///< aggregation-phase memory-group stalls
  std::uint64_t weight_read_bytes = 0;  ///< DRAM reads of W (whole layer)
  std::uint64_t xw_write_bytes = 0;     ///< combination's XW writebacks
  std::uint64_t xw_read_bytes = 0;      ///< aggregation's XW re-reads
  std::uint64_t xw_footprint_bytes = 0; ///< line-rounded XW size (n x d)
};

/// One class's standalone cost: the exact per-layer simulation totals
/// the savings model subtracts from.
struct ClassCost {
  std::string name;            ///< RequestClass::name
  double weight = 1.0;         ///< class-mix probability weight
  NodeId nodes = 0;            ///< (sub)graph node count
  std::vector<LayerCost> layers;        ///< per-layer breakdown
  Cycle standalone_cycles = 0;          ///< sum of layer cycles
  std::uint64_t standalone_dram_bytes = 0;  ///< sum of layer DRAM bytes
  double preprocess_ms = 0.0;  ///< host-side preprocessing (hybrid sort)
  bool verified = false;       ///< output matched GcnModel::reference
  double max_abs_err = 0.0;    ///< worst element error vs. the reference
};

/// Simulates every class's full multi-layer inference exactly (one
/// GcnModel per class, all sharing `weights`) and distills LayerCost
/// /ClassCost. Classes simulate concurrently on `threads` workers
/// (sweep parallel_for; 0 = auto) — each class writes only its own
/// indexed slot, so results are bit-identical at any thread count.
/// Hybrid runs hand the model a precomputed degree sort through the
/// InferenceRequest passthrough (sorted once per class, not per
/// layer). `checkpoints` (optional) is a warm-state checkpoint store
/// (sim/checkpoint.hpp) threaded into every layer run: repeated
/// serving processes over the same classes restore each layer-0
/// combination from disk instead of re-simulating its warm-up.
std::vector<ClassCost> simulate_class_costs(
    const std::vector<RequestClass>& classes,
    const std::vector<DenseMatrix>& weights, Dataflow flow,
    const AcceleratorConfig& config, unsigned threads,
    CheckpointStore* checkpoints = nullptr);

/// Cycle/traffic savings one batch member gets relative to its
/// class's standalone run. Bytes split by mechanism so the report's
/// conservation identity (standalone == charged + reuse + batch) is
/// checkable per request.
struct RequestSavings {
  Cycle saved_cycles = 0;              ///< total service-cycle reduction
  std::uint64_t reuse_saved_bytes = 0; ///< XW writeback+re-read avoided
  std::uint64_t batch_saved_bytes = 0; ///< weight re-fetch avoided
};

/// Savings for the batch member at `position` (0 = the leader, which
/// pays the full weight fetch; followers share it). Inter-layer
/// buffer reuse applies to every member of every batch when the
/// layer's XW footprint fits the DMB slice the scheduler may pin
/// (config.dmb_pin_fraction * dmb_bytes): the combination's XW
/// writeback and the aggregation's XW re-read are served on chip
/// instead of through DRAM. Saved cycles are bounded per phase by the
/// measured memory-stall budget, and the weight-fetch saving draws
/// from whatever combination-stall budget reuse left over — the
/// mechanisms never double-count a stall cycle. DCHECKs enforce
/// saved_cycles <= standalone_cycles and saved bytes <= the matching
/// standalone traffic.
RequestSavings batch_member_savings(const ClassCost& cost,
                                    std::size_t position, bool buffer_reuse,
                                    const AcceleratorConfig& config);

}  // namespace hymm
