#include "serve/cost_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stall.hpp"
#include "core/gcn_model.hpp"
#include "graph/degree_sort.hpp"
#include "sweep/sweep.hpp"

namespace hymm {

namespace {

constexpr std::size_t cls_index(TrafficClass cls) {
  return static_cast<std::size_t>(cls);
}

ClassCost simulate_one(const RequestClass& cls,
                       const std::vector<DenseMatrix>& weights,
                       Dataflow flow, const AcceleratorConfig& config,
                       CheckpointStore* checkpoints) {
  const GcnModel model(cls.a_hat, weights);

  GcnModel::InferenceRequest request;
  request.flow = flow;
  request.features = &cls.features;
  request.config = config;
  request.verify = true;
  request.checkpoints = checkpoints;
  // Hybrid: sort once here and share it across the model's layers via
  // the request passthrough.
  DegreeSortResult sort;
  CsrMatrix sorted_features;
  if (flow == Dataflow::kHybrid) {
    sort = degree_sort(cls.a_hat);
    sorted_features = permute_feature_rows(cls.features, sort.perm);
    request.sort = &sort;
    request.sorted_features = &sorted_features;
  }
  const GcnModel::InferenceResult result = model.run(request);

  ClassCost cost;
  cost.name = cls.name;
  cost.weight = cls.weight;
  cost.nodes = cls.nodes;
  cost.standalone_cycles = result.total_cycles;
  cost.standalone_dram_bytes = result.total_dram_bytes;
  cost.preprocess_ms = result.total_preprocess_ms;
  cost.verified = result.verified;
  cost.max_abs_err = result.max_abs_err;
  for (const LayerRunResult& layer : result.layers) {
    LayerCost lc;
    lc.cycles = layer.stats.cycles;
    lc.comb_mem_stall =
        stall_group_memory(layer.combination_stats.stall_cycles);
    lc.agg_mem_stall =
        stall_group_memory(layer.aggregation_stats.stall_cycles);
    lc.weight_read_bytes =
        layer.stats.dram_read_bytes[cls_index(TrafficClass::kWeights)];
    lc.xw_write_bytes =
        layer.combination_stats
            .dram_write_bytes[cls_index(TrafficClass::kCombined)];
    lc.xw_read_bytes =
        layer.aggregation_stats
            .dram_read_bytes[cls_index(TrafficClass::kCombined)];
    const std::size_t chunks =
        (static_cast<std::size_t>(layer.combination.cols()) + kLaneCount -
         1) /
        kLaneCount;
    lc.xw_footprint_bytes = static_cast<std::uint64_t>(cls.nodes) * chunks *
                            kLineBytes;
    cost.layers.push_back(lc);
  }
  return cost;
}

}  // namespace

std::vector<ClassCost> simulate_class_costs(
    const std::vector<RequestClass>& classes,
    const std::vector<DenseMatrix>& weights, Dataflow flow,
    const AcceleratorConfig& config, unsigned threads,
    CheckpointStore* checkpoints) {
  HYMM_CHECK_MSG(!classes.empty(), "no request classes");
  std::vector<ClassCost> costs(classes.size());
  // Indexed slots: each class writes only costs[i], so the result is
  // bit-identical at any thread count.
  parallel_for(classes.size(), threads, [&](std::size_t i) {
    costs[i] = simulate_one(classes[i], weights, flow, config, checkpoints);
  });
  return costs;
}

RequestSavings batch_member_savings(const ClassCost& cost,
                                    std::size_t position, bool buffer_reuse,
                                    const AcceleratorConfig& config) {
  const std::uint64_t bpc =
      std::max<std::uint64_t>(config.dram_bytes_per_cycle, 1);
  const std::uint64_t resident_budget = static_cast<std::uint64_t>(
      config.dmb_pin_fraction * static_cast<double>(config.dmb_bytes));

  RequestSavings savings;
  for (const LayerCost& layer : cost.layers) {
    Cycle comb_budget = layer.comb_mem_stall;
    Cycle agg_budget = layer.agg_mem_stall;
    if (buffer_reuse && layer.xw_footprint_bytes <= resident_budget) {
      // XW stays pinned between the phases: the combination's
      // writeback and the aggregation's re-read never touch DRAM.
      const Cycle comb_saved = std::min<Cycle>(
          layer.xw_write_bytes / bpc, comb_budget);
      const Cycle agg_saved =
          std::min<Cycle>(layer.xw_read_bytes / bpc, agg_budget);
      comb_budget -= comb_saved;
      agg_budget -= agg_saved;
      savings.saved_cycles += comb_saved + agg_saved;
      savings.reuse_saved_bytes +=
          layer.xw_write_bytes + layer.xw_read_bytes;
    }
    if (position > 0) {
      // Follower: the leader already fetched W this layer; the saving
      // draws from whatever combination stall budget reuse left.
      const Cycle weight_saved = std::min<Cycle>(
          layer.weight_read_bytes / bpc, comb_budget);
      savings.saved_cycles += weight_saved;
      savings.batch_saved_bytes += layer.weight_read_bytes;
    }
  }
  HYMM_DCHECK(savings.saved_cycles <= cost.standalone_cycles);
  HYMM_DCHECK(savings.reuse_saved_bytes + savings.batch_saved_bytes <=
              cost.standalone_dram_bytes);
  return savings;
}

}  // namespace hymm
