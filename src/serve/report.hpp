/// @file
/// Serving-run report renderers: the stdout summary (throughput,
/// utilization, latency quantiles, class table), the per-request CSV
/// and the hymm-serve-report/1 JSON artifact (docs/schemas.md;
/// validated by scripts/check_schema.py).
#pragma once

#include <iosfwd>

#include "graph/datasets.hpp"
#include "serve/server.hpp"

namespace hymm {

/// Workload identification the writers stamp into every report.
struct ServeReportMeta {
  DatasetSpec spec;    ///< post-scaling dataset the classes were built from
  double scale = 1.0;  ///< applied scale factor
  std::uint64_t seed = 42;  ///< workload + arrival seed
};

/// Human-readable summary: config echo, per-class cost table, queue /
/// batching counters and the p50/p90/p99/max latency block.
void print_serve_summary(const ServeResult& result,
                         const ServeConfig& config,
                         const ServeReportMeta& meta, std::ostream& out);

/// One CSV row per generated request (RFC 4180; dropped requests keep
/// empty timing columns).
void write_serve_csv(const ServeResult& result, std::ostream& out);

/// The hymm-serve-report/1 JSON document: config, classes, summary
/// quantiles, the DRAM conservation ledger, the queue-depth series
/// and every per-request record.
void write_serve_json(const ServeResult& result, const ServeConfig& config,
                      const ServeReportMeta& meta, std::ostream& out);

}  // namespace hymm
