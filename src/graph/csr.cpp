#include "graph/csr.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace hymm {

CsrMatrix CsrMatrix::from_coo(CooMatrix coo) {
  if (!coo.is_canonical()) coo.sort_and_merge();
  CsrMatrix m;
  m.rows_ = coo.rows();
  m.cols_ = coo.cols();
  m.row_ptr_.assign(static_cast<std::size_t>(m.rows_) + 1, 0);
  m.col_idx_.reserve(coo.nnz());
  m.values_.reserve(coo.nnz());
  for (const Triplet& t : coo.entries()) {
    ++m.row_ptr_[t.row + 1];
    m.col_idx_.push_back(t.col);
    m.values_.push_back(t.value);
  }
  std::partial_sum(m.row_ptr_.begin(), m.row_ptr_.end(), m.row_ptr_.begin());
  return m;
}

CsrMatrix CsrMatrix::from_parts(NodeId rows, NodeId cols,
                                std::vector<EdgeCount> row_ptr,
                                std::vector<NodeId> col_idx,
                                std::vector<Value> values) {
  HYMM_CHECK(row_ptr.size() == static_cast<std::size_t>(rows) + 1);
  HYMM_CHECK(row_ptr.front() == 0);
  HYMM_CHECK(row_ptr.back() == col_idx.size());
  HYMM_CHECK(col_idx.size() == values.size());
  HYMM_CHECK(std::is_sorted(row_ptr.begin(), row_ptr.end()));
  for (const NodeId c : col_idx) HYMM_CHECK(c < cols);
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

EdgeCount CsrMatrix::row_nnz(NodeId row) const {
  HYMM_DCHECK(row < rows_);
  return row_ptr_[row + 1] - row_ptr_[row];
}

std::span<const NodeId> CsrMatrix::row_cols(NodeId row) const {
  HYMM_DCHECK(row < rows_);
  return {col_idx_.data() + row_ptr_[row],
          static_cast<std::size_t>(row_nnz(row))};
}

std::span<const Value> CsrMatrix::row_values(NodeId row) const {
  HYMM_DCHECK(row < rows_);
  return {values_.data() + row_ptr_[row],
          static_cast<std::size_t>(row_nnz(row))};
}

std::vector<EdgeCount> CsrMatrix::column_nnz() const {
  std::vector<EdgeCount> counts(cols_, 0);
  for (const NodeId c : col_idx_) ++counts[c];
  return counts;
}

CooMatrix CsrMatrix::to_coo() const {
  CooMatrix coo(rows_, cols_);
  coo.reserve(nnz());
  for (NodeId r = 0; r < rows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.add(r, cols[k], vals[k]);
    }
  }
  return coo;
}

CsrMatrix CsrMatrix::transpose() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(static_cast<std::size_t>(cols_) + 1, 0);
  for (const NodeId c : col_idx_) ++t.row_ptr_[c + 1];
  std::partial_sum(t.row_ptr_.begin(), t.row_ptr_.end(), t.row_ptr_.begin());
  t.col_idx_.resize(col_idx_.size());
  t.values_.resize(values_.size());
  std::vector<EdgeCount> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (NodeId r = 0; r < rows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const EdgeCount slot = cursor[cols[k]]++;
      t.col_idx_[slot] = r;
      t.values_[slot] = vals[k];
    }
  }
  // Column-major traversal of a row-sorted matrix yields row-sorted
  // output per transposed row, so the result is canonical by
  // construction.
  return t;
}

CsrMatrix CsrMatrix::submatrix(NodeId row_begin, NodeId row_end,
                               NodeId col_begin, NodeId col_end) const {
  HYMM_CHECK(row_begin <= row_end && row_end <= rows_);
  HYMM_CHECK(col_begin <= col_end && col_end <= cols_);
  CsrMatrix m;
  m.rows_ = row_end - row_begin;
  m.cols_ = col_end - col_begin;
  m.row_ptr_.assign(static_cast<std::size_t>(m.rows_) + 1, 0);
  for (NodeId r = row_begin; r < row_end; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] >= col_begin && cols[k] < col_end) {
        m.col_idx_.push_back(cols[k] - col_begin);
        m.values_.push_back(vals[k]);
        ++m.row_ptr_[r - row_begin + 1];
      }
    }
  }
  std::partial_sum(m.row_ptr_.begin(), m.row_ptr_.end(), m.row_ptr_.begin());
  return m;
}

CsrMatrix CsrMatrix::permute_symmetric(std::span<const NodeId> perm) const {
  HYMM_CHECK_MSG(rows_ == cols_, "symmetric permutation needs a square matrix");
  HYMM_CHECK(perm.size() == rows_);
  // Single pass instead of a COO round trip: output row perm[r] is
  // exactly input row r with relabelled columns, so only a per-row
  // column sort is needed (perm is a bijection and the input is
  // canonical — no duplicates can arise, and no values are merged, so
  // the result is bit-identical to the COO path).
  CsrMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_ptr_.assign(static_cast<std::size_t>(rows_) + 1, 0);
  for (NodeId r = 0; r < rows_; ++r) m.row_ptr_[perm[r] + 1] = row_nnz(r);
  std::partial_sum(m.row_ptr_.begin(), m.row_ptr_.end(), m.row_ptr_.begin());
  m.col_idx_.resize(col_idx_.size());
  m.values_.resize(values_.size());
  std::vector<std::pair<NodeId, Value>> scratch;
  for (NodeId r = 0; r < rows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_values(r);
    scratch.clear();
    scratch.reserve(cols.size());
    for (std::size_t k = 0; k < cols.size(); ++k) {
      scratch.emplace_back(perm[cols[k]], vals[k]);
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const EdgeCount base = m.row_ptr_[perm[r]];
    for (std::size_t k = 0; k < scratch.size(); ++k) {
      m.col_idx_[base + k] = scratch[k].first;
      m.values_[base + k] = scratch[k].second;
    }
  }
  return m;
}

CsrMatrix CsrMatrix::permute_rows(std::span<const NodeId> perm) const {
  HYMM_CHECK(perm.size() == rows_);
  // Row reordering only: each row's column run is copied verbatim (it
  // stays sorted), so no COO round trip or sort is needed.
  CsrMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_ptr_.assign(static_cast<std::size_t>(rows_) + 1, 0);
  for (NodeId r = 0; r < rows_; ++r) m.row_ptr_[perm[r] + 1] = row_nnz(r);
  std::partial_sum(m.row_ptr_.begin(), m.row_ptr_.end(), m.row_ptr_.begin());
  m.col_idx_.resize(col_idx_.size());
  m.values_.resize(values_.size());
  for (NodeId r = 0; r < rows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_values(r);
    const EdgeCount base = m.row_ptr_[perm[r]];
    std::copy(cols.begin(), cols.end(), m.col_idx_.begin() + base);
    std::copy(vals.begin(), vals.end(), m.values_.begin() + base);
  }
  return m;
}

std::size_t CsrMatrix::storage_bytes() const {
  const std::size_t ptr_bytes = (static_cast<std::size_t>(rows_) + 1) * 4;
  const std::size_t idx_bytes = col_idx_.size() * 4;
  const std::size_t val_bytes = values_.size() * sizeof(Value);
  return ptr_bytes + idx_bytes + val_bytes;
}

CscMatrix CscMatrix::from_csr(const CsrMatrix& csr) {
  return CscMatrix(csr.transpose());
}

CscMatrix CscMatrix::from_coo(CooMatrix coo) {
  return from_csr(CsrMatrix::from_coo(std::move(coo)));
}

}  // namespace hymm
