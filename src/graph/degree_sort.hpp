// Degree-sorting preprocessor (the paper's only graph preprocessing,
// Table I row "Graph preprocessing: Degree sorting"). Produces the
// permutation that renumbers nodes in descending degree order, which
// concentrates the dense part of the adjacency matrix into the
// top-left regions of Fig 2b.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace hymm {

// Returns perm with new_id = perm[old_id]; nodes are ordered by
// descending row degree, ties broken by ascending old id (stable and
// deterministic).
std::vector<NodeId> degree_sort_permutation(const CsrMatrix& adjacency);

// Inverse of a permutation (new_id -> old_id).
std::vector<NodeId> invert_permutation(std::span<const NodeId> perm);

struct DegreeSortResult {
  CsrMatrix sorted;              // symmetric permutation applied
  std::vector<NodeId> perm;      // old -> new
  double sort_cost_ms = 0.0;     // wall-clock preprocessing cost
};

// Applies degree sorting to a square adjacency matrix and measures the
// host-side cost (Table II "Sorting cost (ms)").
DegreeSortResult degree_sort(const CsrMatrix& adjacency);

// Applies a row permutation to a rectangular row-store (e.g. the
// feature matrix) so it matches a renumbered adjacency.
CsrMatrix permute_feature_rows(const CsrMatrix& features,
                               std::span<const NodeId> perm);

// Alternative orderings for reordering studies (cf. Balaji & Lucia,
// "When is graph reordering an optimization?", the paper's [25]):

// Breadth-first renumbering from the highest-degree node (components
// visited in decreasing-degree order of their seeds). Improves
// neighbourhood locality without sorting by degree.
std::vector<NodeId> bfs_permutation(const CsrMatrix& adjacency);

// Uniformly random renumbering (the locality-destroying baseline).
std::vector<NodeId> random_permutation_of(NodeId nodes,
                                          std::uint64_t seed);

}  // namespace hymm
