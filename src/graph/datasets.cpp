#include "graph/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.hpp"
#include "graph/generator.hpp"

namespace hymm {

const std::vector<DatasetSpec>& paper_datasets() {
  // Values transcribed from Table II.
  static const std::vector<DatasetSpec> datasets = {
      {"Cora", "CR", 2708, 10556, 0.9873, 1433, 16},
      {"Amazon-Photo", "AP", 7650, 238162, 0.6526, 745, 16},
      {"Amazon-Computers", "AC", 13752, 491722, 0.6516, 767, 16},
      {"Computer-Science", "CS", 18333, 163788, 0.9912, 6805, 16},
      {"Physics", "PH", 34493, 495924, 0.9961, 8415, 16},
      {"Flickr", "FR", 89250, 899756, 0.5361, 500, 16},
      {"Yelp", "YP", 716847, 13954819, 0.9999, 300, 16},
  };
  return datasets;
}

std::optional<DatasetSpec> find_dataset(const std::string& name_or_abbrev) {
  for (const DatasetSpec& spec : paper_datasets()) {
    if (spec.name == name_or_abbrev || spec.abbrev == name_or_abbrev) {
      return spec;
    }
  }
  return std::nullopt;
}

DatasetSpec scale_dataset(const DatasetSpec& spec, double scale) {
  HYMM_CHECK_MSG(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  if (scale == 1.0) return spec;
  DatasetSpec scaled = spec;
  scaled.nodes = std::max<NodeId>(
      16, static_cast<NodeId>(std::llround(spec.nodes * scale)));
  scaled.edges = std::max<EdgeCount>(
      scaled.nodes,
      static_cast<EdgeCount>(std::llround(
          static_cast<double>(spec.edges) * scale)));
  return scaled;
}

double default_scale(const DatasetSpec& spec) {
  const char* full = std::getenv("HYMM_FULL_DATASETS");
  if (full != nullptr && full[0] == '1') return 1.0;
  if (spec.abbrev == "FR") return 0.25;
  if (spec.abbrev == "YP") return 0.04;
  return 1.0;
}

GcnWorkload build_workload(const DatasetSpec& spec, double scale,
                           std::uint64_t seed) {
  const DatasetSpec scaled = scale_dataset(spec, scale);
  GcnWorkload workload;
  workload.spec = scaled;
  workload.scale = scale;

  GraphSpec graph_spec;
  graph_spec.nodes = scaled.nodes;
  graph_spec.edges = scaled.edges;
  graph_spec.seed = seed;
  workload.adjacency = generate_power_law_graph(graph_spec);

  FeatureSpec feature_spec;
  feature_spec.nodes = scaled.nodes;
  feature_spec.feature_length = scaled.feature_length;
  feature_spec.density = scaled.feature_density();
  feature_spec.seed = seed + 1;
  workload.features = generate_features(feature_spec);
  return workload;
}

}  // namespace hymm
