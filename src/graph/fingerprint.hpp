/// @file
/// Stable fingerprints for the tuning cache (docs/schemas.md,
/// `hymm-tune-cache/2`). A cached threshold is only valid for the
/// exact sparse structure it was tuned on and for the exact timing
/// model it was measured under, so cache keys pair a graph
/// fingerprint with a config hash. Both are plain FNV/splitmix-style
/// 64-bit digests: stable across processes and platforms (they hash
/// the logical contents, never pointers or iteration order), and
/// cheap relative to even one candidate simulation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/config.hpp"
#include "graph/csr.hpp"

namespace hymm {

/// Order-sensitive digest of a sparse matrix's full logical content:
/// dimensions, row pointers, column indices and values (hashed by bit
/// pattern, so -0.0 and 0.0 differ — fingerprints are identity checks,
/// not numeric comparisons). Two CsrMatrix objects compare equal iff
/// their fingerprints match (modulo 64-bit collisions).
std::uint64_t graph_fingerprint(const CsrMatrix& matrix);

/// Digest of every AcceleratorConfig field that can change simulated
/// cycle counts, EXCEPT `tiling_threshold` — the threshold is the
/// *output* of tuning, so including it would make every cached
/// decision key on itself and never hit. Observability knobs
/// (trace_path/json_path/obs_sample_interval) are excluded too: they
/// never affect timing, and a run that merely turns tracing on must
/// still reuse the cached threshold.
std::uint64_t tuning_config_hash(const AcceleratorConfig& config);

/// Combines two digests (e.g. a graph fingerprint with a weights-shape
/// digest) into one, non-commutatively.
std::uint64_t fingerprint_combine(std::uint64_t a, std::uint64_t b);

/// Formats a digest as "0x%016x". JSON numbers are doubles (53-bit
/// integer range), so 64-bit digests are persisted as hex strings.
std::string fingerprint_hex(std::uint64_t digest);

/// Parses the fingerprint_hex format back ("0x" prefix required);
/// nullopt on malformed input.
std::optional<std::uint64_t> parse_fingerprint_hex(std::string_view text);

}  // namespace hymm
