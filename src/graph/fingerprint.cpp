#include "graph/fingerprint.hpp"

#include <bit>
#include <cstdio>

namespace hymm {

namespace {

// splitmix64 finalizer: cheap, well-distributed 64-bit mixer.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Digest {
 public:
  void add(std::uint64_t v) { state_ = mix64(state_ ^ mix64(v)); }
  void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }
  void add(float v) {
    add(static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(v)));
  }
  void add(bool v) { add(static_cast<std::uint64_t>(v)); }
  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = 0x48794d4d5475ULL;  // "HyMMTu"
};

}  // namespace

std::uint64_t graph_fingerprint(const CsrMatrix& matrix) {
  Digest d;
  d.add(static_cast<std::uint64_t>(matrix.rows()));
  d.add(static_cast<std::uint64_t>(matrix.cols()));
  d.add(static_cast<std::uint64_t>(matrix.nnz()));
  for (const EdgeCount p : matrix.row_ptr()) {
    d.add(static_cast<std::uint64_t>(p));
  }
  for (const NodeId c : matrix.col_idx()) {
    d.add(static_cast<std::uint64_t>(c));
  }
  for (const Value v : matrix.values()) d.add(v);
  return d.value();
}

std::uint64_t tuning_config_hash(const AcceleratorConfig& c) {
  Digest d;
  d.add(static_cast<std::uint64_t>(c.pe_count));
  d.add(static_cast<std::uint64_t>(c.lanes_per_pe));
  d.add(c.clock_ghz);
  d.add(static_cast<std::uint64_t>(c.dmb_bytes));
  d.add(static_cast<std::uint64_t>(c.dmb_mshr_entries));
  d.add(static_cast<std::uint64_t>(c.op_prefetch_columns));
  d.add(static_cast<std::uint64_t>(c.dmb_read_queue_entries));
  d.add(static_cast<std::uint64_t>(c.dmb_write_queue_entries));
  d.add(static_cast<std::uint64_t>(c.dmb_hit_latency));
  d.add(static_cast<std::uint64_t>(c.eviction_policy));
  d.add(c.near_memory_accumulator);
  d.add(static_cast<std::uint64_t>(c.engine_window));
  d.add(c.op_baseline_accumulator);
  d.add(static_cast<std::uint64_t>(c.smq_pointer_bytes));
  d.add(static_cast<std::uint64_t>(c.smq_index_bytes));
  d.add(static_cast<std::uint64_t>(c.lsq_entries));
  d.add(static_cast<std::uint64_t>(c.lsq_entry_bytes));
  d.add(c.lsq_store_to_load_forwarding);
  d.add(static_cast<std::uint64_t>(c.dram_bytes_per_cycle));
  d.add(static_cast<std::uint64_t>(c.dram_latency));
  d.add(static_cast<std::uint64_t>(c.dram_queue_entries));
  d.add(static_cast<std::uint64_t>(c.dram_write_buffer_lines));
  // tiling_threshold deliberately omitted (it is the tuning output);
  // dmb_pin_fraction stays in — it changes the clamp geometry.
  d.add(c.dmb_pin_fraction);
  return d.value();
}

std::uint64_t fingerprint_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ mix64(b));
}

std::string fingerprint_hex(std::uint64_t digest) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

std::optional<std::uint64_t> parse_fingerprint_hex(std::string_view text) {
  if (text.size() != 18 || text.substr(0, 2) != "0x") return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : text.substr(2)) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return std::nullopt;
  }
  return v;
}

}  // namespace hymm
