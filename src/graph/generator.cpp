#include "graph/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace hymm {

namespace {

// Packs an undirected edge into a dedup key.
std::uint64_t edge_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

// Samples an index from a cumulative weight array via binary search.
NodeId sample_node(const std::vector<double>& cumulative, Rng& rng) {
  const double u = rng.next_double() * cumulative.back();
  const auto it =
      std::upper_bound(cumulative.begin(), cumulative.end(), u);
  const auto idx = static_cast<std::size_t>(it - cumulative.begin());
  return static_cast<NodeId>(std::min(idx, cumulative.size() - 1));
}

std::vector<NodeId> random_permutation(NodeId n, Rng& rng) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (NodeId i = n; i > 1; --i) {
    const auto j = static_cast<NodeId>(rng.next_below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

CsrMatrix build_from_pairs(NodeId nodes,
                           const std::vector<std::uint64_t>& pair_keys,
                           bool symmetric, bool shuffle_ids, Rng& rng) {
  std::vector<NodeId> perm;
  if (shuffle_ids) perm = random_permutation(nodes, rng);
  CooMatrix coo(nodes, nodes);
  for (const std::uint64_t key : pair_keys) {
    NodeId a = static_cast<NodeId>(key >> 32);
    NodeId b = static_cast<NodeId>(key & 0xFFFFFFFFu);
    if (shuffle_ids) {
      a = perm[a];
      b = perm[b];
    }
    coo.add(a, b, 1.0f);
    if (symmetric) coo.add(b, a, 1.0f);
  }
  coo.sort_and_merge();
  return CsrMatrix::from_coo(std::move(coo));
}

}  // namespace

CsrMatrix generate_power_law_graph(const GraphSpec& spec) {
  HYMM_CHECK_MSG(spec.nodes >= 2, "need at least two nodes");
  HYMM_CHECK_MSG(spec.skew >= 0.0 && spec.skew < 2.0,
                 "skew must be in [0, 2); higher values starve the "
                 "pair sampler through dedup collisions");
  const EdgeCount max_pairs =
      static_cast<EdgeCount>(spec.nodes) * (spec.nodes - 1) / 2;
  const EdgeCount target_pairs =
      std::min(max_pairs, spec.symmetric ? (spec.edges + 1) / 2 : spec.edges);

  std::vector<double> cumulative(spec.nodes);
  double acc = 0.0;
  for (NodeId i = 0; i < spec.nodes; ++i) {
    acc += std::pow(static_cast<double>(i) + 1.0, -spec.skew);
    cumulative[i] = acc;
  }

  Rng rng(spec.seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(target_pairs) * 2);
  std::vector<std::uint64_t> pairs;
  pairs.reserve(target_pairs);

  // Rejection-sample distinct non-loop pairs. The attempt budget keeps
  // the generator total even for adversarial specs; in practice the
  // paper's graphs are >99 % sparse and duplicates are rare.
  const EdgeCount max_attempts = 40 * target_pairs + 1000;
  EdgeCount attempts = 0;
  while (pairs.size() < target_pairs && attempts < max_attempts) {
    ++attempts;
    const NodeId a = sample_node(cumulative, rng);
    const NodeId b = sample_node(cumulative, rng);
    if (a == b) continue;
    const std::uint64_t key = edge_key(a, b);
    if (seen.insert(key).second) pairs.push_back(key);
  }

  CsrMatrix adj =
      build_from_pairs(spec.nodes, pairs, spec.symmetric, spec.shuffle_ids,
                       rng);
  // If symmetric and the requested edge count is odd we may overshoot
  // by one; that is within the documented tolerance.
  return adj;
}

CsrMatrix generate_uniform_graph(NodeId nodes, EdgeCount edges,
                                 std::uint64_t seed, bool symmetric) {
  HYMM_CHECK_MSG(nodes >= 2, "need at least two nodes");
  const EdgeCount max_pairs =
      static_cast<EdgeCount>(nodes) * (nodes - 1) / 2;
  const EdgeCount target_pairs =
      std::min(max_pairs, symmetric ? (edges + 1) / 2 : edges);
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> pairs;
  pairs.reserve(target_pairs);
  const EdgeCount max_attempts = 40 * target_pairs + 1000;
  EdgeCount attempts = 0;
  while (pairs.size() < target_pairs && attempts < max_attempts) {
    ++attempts;
    const auto a = static_cast<NodeId>(rng.next_below(nodes));
    const auto b = static_cast<NodeId>(rng.next_below(nodes));
    if (a == b) continue;
    const std::uint64_t key = edge_key(a, b);
    if (seen.insert(key).second) pairs.push_back(key);
  }
  return build_from_pairs(nodes, pairs, symmetric, /*shuffle_ids=*/false,
                          rng);
}

CsrMatrix generate_rmat_graph(const RmatSpec& spec) {
  HYMM_CHECK_MSG(spec.nodes >= 2, "need at least two nodes");
  const double sum = spec.a + spec.b + spec.c + spec.d;
  HYMM_CHECK_MSG(sum > 0.99 && sum < 1.01,
                 "R-MAT quadrant probabilities must sum to 1, got " << sum);
  int levels = 0;
  while ((NodeId{1} << levels) < spec.nodes) ++levels;

  const EdgeCount max_pairs =
      static_cast<EdgeCount>(spec.nodes) * (spec.nodes - 1) / 2;
  const EdgeCount target_pairs =
      std::min(max_pairs, spec.symmetric ? (spec.edges + 1) / 2 : spec.edges);

  Rng rng(spec.seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(target_pairs) * 2);
  std::vector<std::uint64_t> pairs;
  pairs.reserve(target_pairs);

  const EdgeCount max_attempts = 40 * target_pairs + 1000;
  EdgeCount attempts = 0;
  while (pairs.size() < target_pairs && attempts < max_attempts) {
    ++attempts;
    NodeId u = 0, v = 0;
    for (int level = 0; level < levels; ++level) {
      const double p = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (p < spec.a) {
        // top-left quadrant: both bits 0
      } else if (p < spec.a + spec.b) {
        v |= 1;
      } else if (p < spec.a + spec.b + spec.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v || u >= spec.nodes || v >= spec.nodes) continue;
    const std::uint64_t key = edge_key(u, v);
    if (seen.insert(key).second) pairs.push_back(key);
  }
  return build_from_pairs(spec.nodes, pairs, spec.symmetric,
                          spec.shuffle_ids, rng);
}

CsrMatrix generate_features(const FeatureSpec& spec) {
  HYMM_CHECK(spec.nodes > 0);
  HYMM_CHECK(spec.feature_length > 0);
  HYMM_CHECK_MSG(spec.density >= 0.0 && spec.density <= 1.0,
                 "density is a fraction");
  Rng rng(spec.seed);
  const double per_row =
      static_cast<double>(spec.feature_length) * spec.density;

  std::vector<EdgeCount> row_ptr(static_cast<std::size_t>(spec.nodes) + 1, 0);
  std::vector<NodeId> col_idx;
  std::vector<Value> values;
  col_idx.reserve(static_cast<std::size_t>(per_row * spec.nodes) + spec.nodes);
  values.reserve(col_idx.capacity());

  // Error-diffused per-row counts keep the total nnz within one of
  // round(nodes * feature_length * density).
  double carry = 0.0;
  std::unordered_set<NodeId> picked;
  for (NodeId r = 0; r < spec.nodes; ++r) {
    carry += per_row;
    auto k = static_cast<NodeId>(carry);
    carry -= static_cast<double>(k);
    k = std::min<NodeId>(k, spec.feature_length);

    // Floyd's algorithm: k distinct columns out of feature_length.
    picked.clear();
    for (NodeId j = spec.feature_length - k; j < spec.feature_length; ++j) {
      const auto t = static_cast<NodeId>(rng.next_below(j + 1));
      if (!picked.insert(t).second) picked.insert(j);
    }
    std::vector<NodeId> cols(picked.begin(), picked.end());
    std::sort(cols.begin(), cols.end());
    for (const NodeId c : cols) {
      col_idx.push_back(c);
      values.push_back(static_cast<Value>(rng.next_double(0.1, 1.0)));
    }
    row_ptr[r + 1] = col_idx.size();
  }
  return CsrMatrix::from_parts(spec.nodes, spec.feature_length,
                               std::move(row_ptr), std::move(col_idx),
                               std::move(values));
}

double top_degree_edge_share(const CsrMatrix& adjacency, double fraction) {
  HYMM_CHECK(fraction >= 0.0 && fraction <= 1.0);
  if (adjacency.nnz() == 0) return 0.0;
  std::vector<EdgeCount> degrees(adjacency.rows());
  for (NodeId r = 0; r < adjacency.rows(); ++r) degrees[r] = adjacency.row_nnz(r);
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  const auto top =
      static_cast<std::size_t>(fraction * static_cast<double>(degrees.size()));
  EdgeCount sum = 0;
  for (std::size_t i = 0; i < top && i < degrees.size(); ++i) sum += degrees[i];
  return static_cast<double>(sum) / static_cast<double>(adjacency.nnz());
}

}  // namespace hymm
