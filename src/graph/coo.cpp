#include "graph/coo.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hymm {

CooMatrix::CooMatrix(NodeId rows, NodeId cols) : rows_(rows), cols_(cols) {}

void CooMatrix::add(NodeId row, NodeId col, Value value) {
  HYMM_CHECK_MSG(row < rows_ && col < cols_,
                 "entry (" << row << "," << col << ") out of bounds for "
                           << rows_ << "x" << cols_);
  entries_.push_back(Triplet{row, col, value});
}

void CooMatrix::sort_and_merge() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size();) {
    Triplet merged = entries_[i];
    std::size_t j = i + 1;
    while (j < entries_.size() && entries_[j].row == merged.row &&
           entries_[j].col == merged.col) {
      merged.value += entries_[j].value;
      ++j;
    }
    entries_[out++] = merged;
    i = j;
  }
  entries_.resize(out);
}

bool CooMatrix::is_canonical() const {
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const auto& a = entries_[i - 1];
    const auto& b = entries_[i];
    const bool ordered = a.row < b.row || (a.row == b.row && a.col < b.col);
    if (!ordered) return false;
  }
  return true;
}

}  // namespace hymm
