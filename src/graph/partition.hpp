// Region partitioning and the HyMM tiled storage format (paper
// Sections III, IV-E and Fig 2b).
//
// After degree sorting, the adjacency matrix splits into:
//   region 1 — rows [0, region1_rows): high-degree output rows,
//              processed in OP mode with partial outputs pinned
//              on-chip;
//   region 2 — rows [region1_rows, n) x cols [0, region2_cols):
//              high-degree input columns, processed in RWP mode with
//              the hot XW rows cached;
//   region 3 — the remaining extremely sparse block, also RWP.
#pragma once

#include <cstddef>

#include "common/config.hpp"
#include "graph/csr.hpp"

namespace hymm {

struct RegionPartition {
  NodeId nodes = 0;
  NodeId region1_rows = 0;  // OP rows
  NodeId region2_cols = 0;  // RWP hot-column boundary
  EdgeCount nnz_region1 = 0;
  EdgeCount nnz_region2 = 0;
  EdgeCount nnz_region3 = 0;

  EdgeCount total_nnz() const {
    return nnz_region1 + nnz_region2 + nnz_region3;
  }
};

// Chooses the region boundaries for a degree-sorted adjacency matrix.
// The tiling threshold caps both boundaries at a fraction of the node
// count (paper: 20 %); each is further clamped so the corresponding
// working set (AXW rows for region 1, XW rows for region 2) fits in
// the DMB ("if the DMB is smaller than 20% of graph's nodes, the
// tiling is adjusted", Section IV-E). out_row_lines is the number of
// 64-byte lines per dense output row (1 for layer dimension 16).
RegionPartition partition_regions(const CsrMatrix& sorted_adjacency,
                                  const AcceleratorConfig& config,
                                  std::size_t out_row_lines = 1);

// HyMM's tiled storage: region 1 kept in CSC (OP traversal order),
// the remaining rows in CSR (RWP traversal order). This is the
// "CSC (region 1), CSR (others)" compression row of Table I.
class TiledAdjacency {
 public:
  static TiledAdjacency build(const CsrMatrix& sorted_adjacency,
                              const RegionPartition& partition);

  const RegionPartition& partition() const { return partition_; }

  // Rows [0, region1_rows) over all columns, in CSC.
  const CscMatrix& region1_csc() const { return region1_; }

  // Rows [region1_rows, n) over all columns, in CSR (rows rebased so
  // local row 0 is global row region1_rows).
  const CsrMatrix& region23_csr() const { return region23_; }

  // Bytes of the tiled format: both compressed blocks plus the tile
  // descriptor. Compared against the flat CSR/CSC footprint to
  // reproduce Fig 6.
  std::size_t storage_bytes() const;

 private:
  RegionPartition partition_;
  CscMatrix region1_;
  CsrMatrix region23_;
};

// Fig 6 data point: relative storage overhead of the tiled format
// versus the flat compressed matrix, e.g. 0.102 (=10.2 %) for Cora in
// the paper.
double tiled_storage_overhead(const CsrMatrix& sorted_adjacency,
                              const RegionPartition& partition);

}  // namespace hymm
