#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "common/check.hpp"

namespace hymm {

namespace {

bool is_comment_or_blank(const std::string& line) {
  for (const char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '#' || c == '%';
  }
  return true;  // blank
}

std::ifstream open_input(const std::string& path) {
  std::ifstream in(path);
  HYMM_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  return in;
}

std::ofstream open_output(const std::string& path) {
  std::ofstream out(path);
  HYMM_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  return out;
}

}  // namespace

CsrMatrix load_edge_list(std::istream& in, const EdgeListOptions& options) {
  std::vector<Triplet> triplets;
  NodeId max_id = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_comment_or_blank(line)) continue;
    std::istringstream ls(line);
    long long src = 0, dst = 0;
    double weight = 1.0;
    HYMM_CHECK_MSG(static_cast<bool>(ls >> src >> dst),
                   "edge list line " << line_no << " is malformed: '"
                                     << line << "'");
    ls >> weight;  // optional third column
    HYMM_CHECK_MSG(src >= 0 && dst >= 0,
                   "edge list line " << line_no << " has negative ids");
    const auto u = static_cast<NodeId>(src);
    const auto v = static_cast<NodeId>(dst);
    if (options.drop_self_loops && u == v) continue;
    max_id = std::max({max_id, u, v});
    triplets.push_back(Triplet{u, v, static_cast<Value>(weight)});
    if (options.symmetrize && u != v) {
      triplets.push_back(Triplet{v, u, static_cast<Value>(weight)});
    }
  }
  const NodeId nodes =
      options.nodes > 0 ? options.nodes
                        : (triplets.empty() ? 0 : max_id + 1);
  HYMM_CHECK_MSG(options.nodes == 0 || max_id < options.nodes,
                 "edge list references node " << max_id
                                              << " but nodes = "
                                              << options.nodes);
  CooMatrix coo(nodes, nodes);
  for (const Triplet& t : triplets) coo.add(t.row, t.col, t.value);
  coo.sort_and_merge();
  return CsrMatrix::from_coo(std::move(coo));
}

CsrMatrix load_edge_list_file(const std::string& path,
                              const EdgeListOptions& options) {
  auto in = open_input(path);
  return load_edge_list(in, options);
}

void save_edge_list(const CsrMatrix& matrix, std::ostream& out) {
  out << "# HyMM edge list: " << matrix.rows() << " nodes, "
      << matrix.nnz() << " edges\n";
  for (NodeId r = 0; r < matrix.rows(); ++r) {
    const auto cols = matrix.row_cols(r);
    const auto vals = matrix.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << r << ' ' << cols[k] << ' ' << vals[k] << '\n';
    }
  }
}

void save_edge_list_file(const CsrMatrix& matrix, const std::string& path) {
  auto out = open_output(path);
  save_edge_list(matrix, out);
}

CsrMatrix load_sparse_matrix(std::istream& in) {
  std::string line;
  // Header (skipping leading comments).
  NodeId rows = 0, cols = 0;
  EdgeCount nnz = 0;
  bool have_header = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.rfind("%%HyMMSparse", 0) == 0) {
      std::istringstream hs(line.substr(12));
      HYMM_CHECK_MSG(static_cast<bool>(hs >> rows >> cols >> nnz),
                     "bad %%HyMMSparse header: '" << line << "'");
      have_header = true;
      break;
    }
    HYMM_CHECK_MSG(is_comment_or_blank(line),
                   "expected %%HyMMSparse header, got '" << line << "'");
  }
  HYMM_CHECK_MSG(have_header, "missing %%HyMMSparse header");

  CooMatrix coo(rows, cols);
  EdgeCount seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    ++line_no;
    if (is_comment_or_blank(line)) continue;
    std::istringstream ls(line);
    long long r = 0, c = 0;
    double v = 0.0;
    HYMM_CHECK_MSG(static_cast<bool>(ls >> r >> c >> v),
                   "sparse matrix line " << line_no << " is malformed: '"
                                         << line << "'");
    HYMM_CHECK_MSG(r >= 0 && c >= 0, "negative index at line " << line_no);
    coo.add(static_cast<NodeId>(r), static_cast<NodeId>(c),
            static_cast<Value>(v));
    ++seen;
  }
  HYMM_CHECK_MSG(seen == nnz, "sparse matrix truncated: header promised "
                                  << nnz << " entries, found " << seen);
  coo.sort_and_merge();
  return CsrMatrix::from_coo(std::move(coo));
}

CsrMatrix load_sparse_matrix_file(const std::string& path) {
  auto in = open_input(path);
  return load_sparse_matrix(in);
}

void save_sparse_matrix(const CsrMatrix& matrix, std::ostream& out) {
  out << "%%HyMMSparse " << matrix.rows() << ' ' << matrix.cols() << ' '
      << matrix.nnz() << '\n';
  for (NodeId r = 0; r < matrix.rows(); ++r) {
    const auto cols = matrix.row_cols(r);
    const auto vals = matrix.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << r << ' ' << cols[k] << ' ' << vals[k] << '\n';
    }
  }
}

void save_sparse_matrix_file(const CsrMatrix& matrix,
                             const std::string& path) {
  auto out = open_output(path);
  save_sparse_matrix(matrix, out);
}

}  // namespace hymm
