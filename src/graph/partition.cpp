#include "graph/partition.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace hymm {

RegionPartition partition_regions(const CsrMatrix& sorted_adjacency,
                                  const AcceleratorConfig& config,
                                  std::size_t out_row_lines) {
  HYMM_CHECK(sorted_adjacency.rows() == sorted_adjacency.cols());
  HYMM_CHECK(out_row_lines > 0);
  config.validate();

  const NodeId n = sorted_adjacency.rows();
  RegionPartition p;
  p.nodes = n;

  const auto threshold_rows = static_cast<NodeId>(
      std::ceil(config.tiling_threshold * static_cast<double>(n)));

  // Region 1: the pinned AXW rows must fit in the pinnable share of
  // the DMB.
  const auto pinnable_lines = static_cast<std::size_t>(
      config.dmb_pin_fraction * static_cast<double>(config.dmb_lines()));
  const auto max_r1 =
      static_cast<NodeId>(std::min<std::size_t>(pinnable_lines / out_row_lines, n));
  p.region1_rows = std::min(threshold_rows, max_r1);

  // Region 2: the hot XW rows must fit in the whole DMB.
  const auto max_c2 = static_cast<NodeId>(
      std::min<std::size_t>(config.dmb_lines() / out_row_lines, n));
  p.region2_cols = std::min(threshold_rows, max_c2);

  for (NodeId r = 0; r < n; ++r) {
    if (r < p.region1_rows) {
      p.nnz_region1 += sorted_adjacency.row_nnz(r);
      continue;
    }
    for (const NodeId c : sorted_adjacency.row_cols(r)) {
      if (c < p.region2_cols) {
        ++p.nnz_region2;
      } else {
        ++p.nnz_region3;
      }
    }
  }
  HYMM_CHECK(p.total_nnz() == sorted_adjacency.nnz());
  return p;
}

TiledAdjacency TiledAdjacency::build(const CsrMatrix& sorted_adjacency,
                                     const RegionPartition& partition) {
  HYMM_CHECK(sorted_adjacency.rows() == partition.nodes);
  TiledAdjacency tiled;
  tiled.partition_ = partition;
  const NodeId n = sorted_adjacency.rows();
  const NodeId r1 = partition.region1_rows;
  tiled.region1_ =
      CscMatrix::from_csr(sorted_adjacency.submatrix(0, r1, 0, n));
  tiled.region23_ = sorted_adjacency.submatrix(r1, n, 0, n);
  return tiled;
}

std::size_t TiledAdjacency::storage_bytes() const {
  // Tile descriptor: region boundaries plus per-block metadata. Small
  // and constant; the measurable overhead is the duplicated pointer
  // arrays of the two compressed blocks.
  constexpr std::size_t kDescriptorBytes = 32;
  return region1_.storage_bytes() + region23_.storage_bytes() +
         kDescriptorBytes;
}

double tiled_storage_overhead(const CsrMatrix& sorted_adjacency,
                              const RegionPartition& partition) {
  const TiledAdjacency tiled =
      TiledAdjacency::build(sorted_adjacency, partition);
  const auto flat = static_cast<double>(sorted_adjacency.storage_bytes());
  const auto tiled_bytes = static_cast<double>(tiled.storage_bytes());
  return tiled_bytes / flat - 1.0;
}

}  // namespace hymm
