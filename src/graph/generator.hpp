// Synthetic graph and sparse-feature generators.
//
// The paper evaluates on PyTorch-Geometric datasets; those are not
// redistributable here, so we generate graphs that match the
// statistics the paper's mechanisms depend on: node count, edge
// count, and a power-law degree distribution in which the top 20 % of
// nodes hold more than 70 % of the edges (paper Fig 2). See DESIGN.md
// section 3 for the substitution rationale.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace hymm {

struct GraphSpec {
  NodeId nodes = 0;
  // Number of stored non-zeros in the adjacency matrix (directed
  // edge slots; an undirected edge contributes two).
  EdgeCount edges = 0;
  // Chung-Lu weight exponent: node i's connection weight is
  // (i+1)^-skew before shuffling. After pair deduplication, 1.2
  // yields a top-20 % edge share of 75-83 % on the paper's graph
  // sizes, matching Fig 2's ">70 %" observation. Must be in [0, 2).
  double skew = 1.2;
  // Mirror every sampled edge so the adjacency is symmetric
  // (undirected graph), as in the paper's datasets.
  bool symmetric = true;
  // Shuffle node ids so the stored order is NOT degree-sorted; the
  // baselines must see an unsorted graph (HyMM sorts explicitly).
  bool shuffle_ids = true;
  std::uint64_t seed = 1;
};

// Chung-Lu style power-law random graph with unit edge weights and no
// self loops. The returned matrix has exactly spec.nodes rows/cols;
// the non-zero count approaches spec.edges (duplicate samples are
// merged, so it can land slightly below; the generator oversamples to
// compensate and a tolerance test pins the accuracy).
CsrMatrix generate_power_law_graph(const GraphSpec& spec);

// Erdos-Renyi style uniform random graph (baseline for tests and the
// dataflow-comparison example).
CsrMatrix generate_uniform_graph(NodeId nodes, EdgeCount edges,
                                 std::uint64_t seed, bool symmetric = true);

struct RmatSpec {
  NodeId nodes = 0;   // rounded up internally to a power of two for
                      // the recursive split; extra ids stay isolated
  EdgeCount edges = 0;
  // Quadrant probabilities (Chakrabarti et al.); must sum to ~1.
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  bool symmetric = true;
  bool shuffle_ids = true;
  std::uint64_t seed = 1;
};

// Recursive-matrix (R-MAT) generator — the other standard scale-free
// model in the accelerator literature; produces community structure
// in addition to a skewed degree distribution.
CsrMatrix generate_rmat_graph(const RmatSpec& spec);

struct FeatureSpec {
  NodeId nodes = 0;
  NodeId feature_length = 0;
  // Fraction of entries that are non-zero (1 - "feature sparsity" in
  // the paper's Table II).
  double density = 1.0;
  std::uint64_t seed = 1;
};

// Sparse node-feature matrix (nodes x feature_length) with uniformly
// placed non-zeros of value in [0.1, 1); total nnz equals
// round(nodes * feature_length * density) distributed near-evenly
// across rows.
CsrMatrix generate_features(const FeatureSpec& spec);

// Share of all non-zeros held by the top `fraction` of rows by
// row-degree (Fig 2's metric: fraction = 0.20).
double top_degree_edge_share(const CsrMatrix& adjacency, double fraction);

}  // namespace hymm
