#include "graph/degree_sort.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace hymm {

std::vector<NodeId> degree_sort_permutation(const CsrMatrix& adjacency) {
  HYMM_CHECK_MSG(adjacency.rows() == adjacency.cols(),
                 "adjacency must be square");
  const NodeId n = adjacency.rows();
  // Precompute degrees once; the comparator runs O(n log n) times.
  std::vector<EdgeCount> degree(n);
  for (NodeId r = 0; r < n; ++r) degree[r] = adjacency.row_nnz(r);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return degree[a] > degree[b];
  });
  // order[new] = old; invert to get perm[old] = new.
  std::vector<NodeId> perm(n);
  for (NodeId new_id = 0; new_id < n; ++new_id) perm[order[new_id]] = new_id;
  return perm;
}

std::vector<NodeId> invert_permutation(std::span<const NodeId> perm) {
  constexpr NodeId kUnset = ~NodeId{0};
  std::vector<NodeId> inv(perm.size(), kUnset);
  for (NodeId i = 0; i < perm.size(); ++i) {
    HYMM_CHECK_MSG(perm[i] < perm.size(), "not a permutation: value "
                                              << perm[i] << " out of range");
    HYMM_CHECK_MSG(inv[perm[i]] == kUnset,
                   "not a permutation: value " << perm[i] << " repeats");
    inv[perm[i]] = i;
  }
  return inv;
}

DegreeSortResult degree_sort(const CsrMatrix& adjacency) {
  Timer timer;
  DegreeSortResult result;
  result.perm = degree_sort_permutation(adjacency);
  result.sorted = adjacency.permute_symmetric(result.perm);
  result.sort_cost_ms = timer.elapsed_ms();
  return result;
}

CsrMatrix permute_feature_rows(const CsrMatrix& features,
                               std::span<const NodeId> perm) {
  return features.permute_rows(perm);
}

std::vector<NodeId> bfs_permutation(const CsrMatrix& adjacency) {
  HYMM_CHECK_MSG(adjacency.rows() == adjacency.cols(),
                 "adjacency must be square");
  const NodeId n = adjacency.rows();
  // Seed order: nodes by decreasing degree, so the densest component
  // is numbered first.
  std::vector<EdgeCount> degree(n);
  for (NodeId r = 0; r < n; ++r) degree[r] = adjacency.row_nnz(r);
  std::vector<NodeId> seeds(n);
  std::iota(seeds.begin(), seeds.end(), NodeId{0});
  std::stable_sort(seeds.begin(), seeds.end(), [&](NodeId a, NodeId b) {
    return degree[a] > degree[b];
  });

  std::vector<NodeId> perm(n);
  std::vector<bool> visited(n, false);
  std::vector<NodeId> queue;
  queue.reserve(n);
  NodeId next_id = 0;
  for (const NodeId seed : seeds) {
    if (visited[seed]) continue;
    visited[seed] = true;
    queue.push_back(seed);
    for (std::size_t head = queue.size() - 1; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      perm[u] = next_id++;
      for (const NodeId v : adjacency.row_cols(u)) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  HYMM_DCHECK(next_id == n);
  return perm;
}

std::vector<NodeId> random_permutation_of(NodeId nodes,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> perm(nodes);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (NodeId i = nodes; i > 1; --i) {
    const auto j = static_cast<NodeId>(rng.next_below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace hymm
