// Coordinate-list sparse matrix: the interchange format produced by
// the graph generators and consumed by the compressed formats.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace hymm {

struct Triplet {
  NodeId row = 0;
  NodeId col = 0;
  Value value = 0.0f;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(NodeId rows, NodeId cols);

  NodeId rows() const { return rows_; }
  NodeId cols() const { return cols_; }
  EdgeCount nnz() const { return entries_.size(); }

  const std::vector<Triplet>& entries() const { return entries_; }

  // Pre-sizes the entry list for a known nnz (the generators and
  // converters know theirs up front).
  void reserve(EdgeCount nnz) { entries_.reserve(nnz); }

  // Appends one entry; indices are bounds-checked.
  void add(NodeId row, NodeId col, Value value);

  // Sorts entries by (row, col) and sums duplicates in place.
  // Entries whose merged value is exactly zero are kept (an explicit
  // zero is still a stored non-zero for dataflow purposes).
  void sort_and_merge();

  // True when entries are sorted by (row, col) with no duplicates.
  bool is_canonical() const;

 private:
  NodeId rows_ = 0;
  NodeId cols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace hymm
