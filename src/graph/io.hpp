// Plain-text graph and sparse-matrix I/O, so users can feed real
// datasets (e.g. exported from PyTorch-Geometric) to the simulator
// instead of the synthetic stand-ins.
//
// Formats:
//  * Edge list — one "src dst [weight]" triple per line; '#' or '%'
//    comment lines are skipped. Node ids are 0-based. Missing weights
//    default to 1.0. `load_edge_list` can symmetrize on load.
//  * Sparse matrix ("%%HyMMSparse rows cols nnz" header followed by
//    "row col value" lines) — a lossless CSR dump used for features.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace hymm {

struct EdgeListOptions {
  // Mirror every edge (u, v) as (v, u); duplicates merge.
  bool symmetrize = false;
  // Node count; 0 infers max id + 1 from the data.
  NodeId nodes = 0;
  // Drop u == v entries (adjacency matrices usually exclude them).
  bool drop_self_loops = false;
};

// Parses an edge list from a stream / file. Throws CheckError on
// malformed input (with the offending line number).
CsrMatrix load_edge_list(std::istream& in,
                         const EdgeListOptions& options = {});
CsrMatrix load_edge_list_file(const std::string& path,
                              const EdgeListOptions& options = {});

// Writes "src dst weight" lines (one per stored non-zero).
void save_edge_list(const CsrMatrix& matrix, std::ostream& out);
void save_edge_list_file(const CsrMatrix& matrix, const std::string& path);

// Lossless sparse-matrix round trip (keeps explicit shape, unlike an
// edge list).
CsrMatrix load_sparse_matrix(std::istream& in);
CsrMatrix load_sparse_matrix_file(const std::string& path);
void save_sparse_matrix(const CsrMatrix& matrix, std::ostream& out);
void save_sparse_matrix_file(const CsrMatrix& matrix,
                             const std::string& path);

}  // namespace hymm
