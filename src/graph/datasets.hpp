// Registry of the paper's evaluation workloads (Table II) and
// builders for their synthetic stand-ins.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace hymm {

struct DatasetSpec {
  std::string name;          // e.g. "Amazon-Photo"
  std::string abbrev;        // e.g. "AP"
  NodeId nodes = 0;
  EdgeCount edges = 0;       // stored non-zeros of the adjacency
  double feature_sparsity = 0.0;  // fraction of zero feature entries
  NodeId feature_length = 0;
  NodeId layer_dim = 16;     // GCN hidden dimension (Table II)

  double adjacency_sparsity() const {
    const double total =
        static_cast<double>(nodes) * static_cast<double>(nodes);
    return 1.0 - static_cast<double>(edges) / total;
  }
  double feature_density() const { return 1.0 - feature_sparsity; }
};

// The seven Table II datasets, in paper order:
// Cora (CR), Amazon-Photo (AP), Amazon-Computers (AC),
// Computer-Science (CS), Physics (PH), Flickr (FR), Yelp (YP).
const std::vector<DatasetSpec>& paper_datasets();

// Lookup by abbreviation ("AP") or full name; nullopt when unknown.
std::optional<DatasetSpec> find_dataset(const std::string& name_or_abbrev);

// Returns the spec scaled to `scale` (0 < scale <= 1): node and edge
// counts shrink proportionally (preserving average degree), feature
// statistics are untouched. scale == 1 returns the spec unchanged.
DatasetSpec scale_dataset(const DatasetSpec& spec, double scale);

// Default simulation scale for a dataset: 1.0 for the five small
// graphs; Flickr and Yelp are reduced so the full bench suite runs in
// minutes (DESIGN.md section 3). HYMM_FULL_DATASETS=1 forces 1.0.
double default_scale(const DatasetSpec& spec);

struct GcnWorkload {
  DatasetSpec spec;          // post-scaling spec
  double scale = 1.0;        // applied scale factor
  CsrMatrix adjacency;       // unsorted, symmetric, unit weights
  CsrMatrix features;        // nodes x feature_length sparse matrix
};

// Generates the synthetic stand-in for a dataset at the given scale.
// Deterministic for a fixed (spec, scale, seed).
GcnWorkload build_workload(const DatasetSpec& spec, double scale = 1.0,
                           std::uint64_t seed = 42);

}  // namespace hymm
