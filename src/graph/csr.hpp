// Compressed sparse row matrix: the RWP engines' native format and the
// canonical in-memory representation of graphs and sparse features.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/coo.hpp"

namespace hymm {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  // Builds from a canonicalized COO (sorted, duplicates merged). The
  // input is canonicalized by this call if needed.
  static CsrMatrix from_coo(CooMatrix coo);

  // Builds directly from raw arrays (sizes are validated).
  static CsrMatrix from_parts(NodeId rows, NodeId cols,
                              std::vector<EdgeCount> row_ptr,
                              std::vector<NodeId> col_idx,
                              std::vector<Value> values);

  NodeId rows() const { return rows_; }
  NodeId cols() const { return cols_; }
  EdgeCount nnz() const { return col_idx_.size(); }

  const std::vector<EdgeCount>& row_ptr() const { return row_ptr_; }
  const std::vector<NodeId>& col_idx() const { return col_idx_; }
  const std::vector<Value>& values() const { return values_; }

  EdgeCount row_nnz(NodeId row) const;
  std::span<const NodeId> row_cols(NodeId row) const;
  std::span<const Value> row_values(NodeId row) const;

  // Non-zero count per column (the transpose's row degrees).
  std::vector<EdgeCount> column_nnz() const;

  CooMatrix to_coo() const;
  CsrMatrix transpose() const;

  // Extracts rows [row_begin, row_end) and columns [col_begin, col_end)
  // as a new matrix of that shape (indices are rebased).
  CsrMatrix submatrix(NodeId row_begin, NodeId row_end, NodeId col_begin,
                      NodeId col_end) const;

  // Applies a symmetric permutation: entry (r, c) moves to
  // (perm[r], perm[c]). perm must be a permutation of [0, rows) and
  // the matrix must be square.
  CsrMatrix permute_symmetric(std::span<const NodeId> perm) const;

  // Applies a row permutation only: row r moves to perm[r].
  CsrMatrix permute_rows(std::span<const NodeId> perm) const;

  // Storage footprint of the format itself: pointers (one per row + 1)
  // plus (index, value) pairs. ptr/idx entries are 4 bytes each, as in
  // the paper's SMQ entries.
  std::size_t storage_bytes() const;

  friend bool operator==(const CsrMatrix&, const CsrMatrix&) = default;

 private:
  NodeId rows_ = 0;
  NodeId cols_ = 0;
  std::vector<EdgeCount> row_ptr_;  // size rows_ + 1
  std::vector<NodeId> col_idx_;     // size nnz
  std::vector<Value> values_;       // size nnz
};

// Compressed sparse column matrix: the OP engines' native format.
// Internally stores the transpose in CSR layout; accessors present the
// column-major view.
class CscMatrix {
 public:
  CscMatrix() = default;

  static CscMatrix from_csr(const CsrMatrix& csr);
  static CscMatrix from_coo(CooMatrix coo);

  NodeId rows() const { return transposed_.cols(); }
  NodeId cols() const { return transposed_.rows(); }
  EdgeCount nnz() const { return transposed_.nnz(); }

  const std::vector<EdgeCount>& col_ptr() const {
    return transposed_.row_ptr();
  }
  const std::vector<NodeId>& row_idx() const { return transposed_.col_idx(); }
  const std::vector<Value>& values() const { return transposed_.values(); }

  EdgeCount col_nnz(NodeId col) const { return transposed_.row_nnz(col); }
  std::span<const NodeId> col_rows(NodeId col) const {
    return transposed_.row_cols(col);
  }
  std::span<const Value> col_values(NodeId col) const {
    return transposed_.row_values(col);
  }

  CsrMatrix to_csr() const { return transposed_.transpose(); }

  // Extracts columns [col_begin, col_end) with the full row range.
  // Column ids are rebased to zero; row ids are unchanged. Used by the
  // sampled-simulation bands (core/sampling.hpp) together with
  // OpEngineParams::col_offset.
  CscMatrix submatrix_cols(NodeId col_begin, NodeId col_end) const {
    return CscMatrix(
        transposed_.submatrix(col_begin, col_end, 0, transposed_.cols()));
  }

  std::size_t storage_bytes() const { return transposed_.storage_bytes(); }

  friend bool operator==(const CscMatrix&, const CscMatrix&) = default;

 private:
  explicit CscMatrix(CsrMatrix transposed)
      : transposed_(std::move(transposed)) {}

  CsrMatrix transposed_;
};

}  // namespace hymm
