// Top-down cycle-accounting taxonomy: every simulated cycle of every
// engine is attributed to exactly one cause. The attribution happens
// in the engines (they know why they could not retire work) and is
// enforced structurally by run_phase — one bucket per loop iteration,
// so per-phase bucket sums equal per-phase cycle counts by
// construction. Attribution priority when multiple causes coincide is
// documented in DESIGN.md "Cycle accounting".
//
// Lives in common/ (not sim/) so the observability library can name
// the buckets without depending on the simulator models.
#pragma once

#include <span>
#include <string>

#include "common/types.hpp"

namespace hymm {

enum class StallCause : std::uint8_t {
  kCompute = 0,          // a MAC retired this cycle
  kMergeRmw,             // partial-output merge work (OP merge stage)
  kDramLatency,          // head load's miss fill in flight from DRAM
  kDramBandwidth,        // channel / write-buffer / MSHR saturation
  kLsqFull,              // LSQ allocation blocked retirement or issue
  kSmqBacklog,           // sparse stream starved (no decoded entry)
  kDmbMiss,              // head load pending inside the DMB pipeline
  kAccumulatorConflict,  // near-memory accumulate store blocked
  kDrain,                // end-of-phase drain / final output flush
};
inline constexpr std::size_t kStallCauseCount = 9;

// Snake-case key used in JSON reports, CSV headers and trace tracks
// (e.g. "dram_latency").
const char* stall_cause_key(StallCause cause);
std::string to_string(StallCause cause);

// Bottleneck verdict derived from a stall vector: the paper's
// memory-bound vs. merge-bound vs. compute-bound axis.
enum class Bottleneck {
  kComputeBound,  // compute dominates
  kMemoryBound,   // dram_latency + dram_bandwidth + lsq_full +
                  // smq_backlog + dmb_miss + drain dominate
  kMergeBound,    // merge_rmw + accumulator_conflict dominate
};

std::string to_string(Bottleneck verdict);

// Group sums over a kStallCauseCount-sized stall vector.
Cycle stall_group_compute(std::span<const Cycle> stalls);
Cycle stall_group_memory(std::span<const Cycle> stalls);
Cycle stall_group_merge(std::span<const Cycle> stalls);

// Argmax of the three groups; ties resolve memory > merge > compute
// (the most common claim wins ambiguous splits).
Bottleneck classify_bottleneck(std::span<const Cycle> stalls);

}  // namespace hymm
