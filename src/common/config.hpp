// Accelerator configuration (Table III of the paper plus model knobs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace hymm {

// Which SpDeMM dataflow an engine runs (Section II-B / Table I).
enum class Dataflow {
  kRowWiseProduct,  // RWP — Gustavson, represents GROW
  kOuterProduct,    // OP — OuterSpace-style, represents GCNAX
  kHybrid,          // HyMM: OP for region 1, RWP for regions 2 and 3
};

std::string to_string(Dataflow dataflow);

// Victim selection inside the dense matrix buffer.
enum class EvictionPolicy {
  kLru,   // paper default (Section IV-D)
  kFifo,  // ablation
};

std::string to_string(EvictionPolicy policy);

// How a driver picks the hybrid tiling threshold (src/tune/). Lives
// here (not in src/tune/) so option parsing in hymm_sweep can carry
// the mode without depending on the tuner library.
enum class AutotuneMode {
  kOff,       // fixed config.tiling_threshold (paper default: 20 %)
  kAnalytic,  // cost-model argmin over the canonical candidate list
  kMeasured,  // simulate every candidate, pick the cycle-minimal one
};

std::string to_string(AutotuneMode mode);

// Parses "off" / "analytic" / "measured" (the --autotune= /
// HYMM_AUTOTUNE values); nullopt for anything else.
std::optional<AutotuneMode> parse_autotune_mode(std::string_view text);

// How a driver picks the hybrid's adjacency split (src/tune/
// router.hpp). Like AutotuneMode, the enum lives here so option
// parsing in hymm_sweep can carry the mode without depending on the
// router library.
enum class RouteMode {
  kGlobal,         // the paper's global 3-region split (default)
  kTilesAnalytic,  // per-tile map from the cost model; no simulation
  kTilesMeasured,  // per-tile map only if it wins a measured head-to-head
};

std::string to_string(RouteMode mode);

// Parses "global" / "tiles" / "tiles:analytic" / "tiles:measured"
// (the --route= / HYMM_ROUTE values; bare "tiles" means
// "tiles:analytic"); nullopt for anything else.
std::optional<RouteMode> parse_route_mode(std::string_view text);

// All microarchitectural parameters of the simulated accelerator.
// Defaults reproduce Table III and Section IV of the paper.
struct AcceleratorConfig {
  // --- Compute ---
  std::size_t pe_count = 16;          // MAC units (Table III)
  std::size_t lanes_per_pe = 1;       // each PE owns one f32 lane
  double clock_ghz = 1.0;             // 16 MACs * 2 ops * 1 GHz = 32 GFLOPS

  // --- Dense matrix buffer (DMB) ---
  std::size_t dmb_bytes = 256 * 1024;  // Table III: 256 KB
  std::size_t dmb_mshr_entries = 16;
  // Depth of the OP engines' pointer-guided prefetch of upcoming
  // stationary rows (the SMQ pointer buffer exposes future column
  // ids, making the OP input stream sequential — Section III). 0
  // disables prefetching (ablation).
  std::size_t op_prefetch_columns = 128;
  std::size_t dmb_read_queue_entries = 16;
  std::size_t dmb_write_queue_entries = 16;
  Cycle dmb_hit_latency = 2;
  EvictionPolicy eviction_policy = EvictionPolicy::kLru;
  // Near-memory accumulator that merges partial-output lines in place
  // (Section IV-D "Write with accumulation") — HyMM's mechanism.
  // Turned off, the hybrid's region-1 OP phase degrades to
  // append-and-merge, reproducing the "w/o accumulator" series of
  // Fig 10.
  bool near_memory_accumulator = true;

  // In-flight non-zero window of the dataflow engines (bounded by the
  // LSQ capacity; the paper's latency-hiding argument of Section IV-B
  // relies on the LSQ running far ahead of a missed head entry).
  std::size_t engine_window = 120;

  // Whether the OP *baseline* gets the near-memory accumulator. The
  // paper's "traditional outer product implementations" (Fig 10) do
  // not: every partial product is written out and merged in a later
  // pass. On (ablation) gives the OP baseline HyMM's accumulator.
  bool op_baseline_accumulator = false;

  // --- Sparse matrix queue (SMQ) ---
  std::size_t smq_pointer_bytes = 4 * 1024;   // Table III / Section V
  std::size_t smq_index_bytes = 12 * 1024;

  // --- Load/store queue (LSQ) ---
  std::size_t lsq_entries = 128;        // Table III
  std::size_t lsq_entry_bytes = 68;     // Table III
  bool lsq_store_to_load_forwarding = true;

  // --- Off-chip memory ---
  // 64 GB/s at 1 GHz equals one 64-byte line per cycle (Section IV).
  std::size_t dram_bytes_per_cycle = 64;
  Cycle dram_latency = 100;
  std::size_t dram_queue_entries = 64;
  // Write-buffer depth: writers stall once the channel is booked this
  // many line-slots ahead (back-pressure for spill storms).
  std::size_t dram_write_buffer_lines = 64;

  // --- HyMM preprocessing (Section IV-E) ---
  // Maximum tiling size as a fraction of graph nodes; clamped so the
  // region-1 output rows (OP) and region-2 input rows (RWP) fit in
  // the DMB.
  double tiling_threshold = 0.20;
  // Fraction of the DMB the hybrid engine is willing to pin for
  // region-1 partial-output rows (the rest keeps servicing reads).
  double dmb_pin_fraction = 0.75;

  // --- Observability (never affects timing) ---
  // When non-empty, the driver writes a Chrome-trace-event /
  // Perfetto-compatible trace of the run here (1 cycle = 1 us).
  std::string trace_path;
  // When non-empty, the driver writes the JSON run report here.
  std::string json_path;
  // Cycles between counter-track samples (DMB occupancy, partial
  // bytes, LSQ depth, SMQ backlog).
  Cycle obs_sample_interval = 64;

  // Derived quantities.
  std::size_t dmb_lines() const { return dmb_bytes / kLineBytes; }
  double gflops() const {
    return static_cast<double>(pe_count) * 2.0 * clock_ghz;
  }

  // Throws CheckError when a parameter combination is unbuildable
  // (e.g. buffers smaller than one line).
  void validate() const;
};

}  // namespace hymm
