// Deterministic pseudo-random number generation.
//
// All synthetic datasets must be reproducible across platforms and
// standard-library versions, so we implement a fixed algorithm
// (xoshiro256**) instead of relying on std::mt19937 + distribution
// implementations whose output is not pinned by the standard.
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace hymm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over the full 64-bit range.
  std::uint64_t next_u64();

  // Uniform over [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform over [0, 1).
  double next_double();

  // Uniform over [lo, hi).
  double next_double(double lo, double hi);

  // Bernoulli trial with probability p (clamped to [0, 1]).
  bool next_bool(double p);

  // Standard normal via Box-Muller (deterministic pairing).
  double next_gaussian();

 private:
  std::uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace hymm
