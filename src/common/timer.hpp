// Wall-clock timer for host-side preprocessing costs (Table II's
// "Sorting cost (ms)" column).
#pragma once

#include <chrono>

namespace hymm {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hymm
