// Error-checking macros used across the library.
//
// HYMM_CHECK is always on (argument validation at public interfaces,
// cheap invariants); HYMM_DCHECK compiles out in release builds and is
// used on hot simulator paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hymm {

// Thrown for violated preconditions / invariants. Deriving from
// std::logic_error: these indicate a bug in the caller (or in us),
// not an environmental failure.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace hymm

#define HYMM_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::hymm::detail::check_failed(#expr, __FILE__, __LINE__, "");      \
    }                                                                   \
  } while (false)

#define HYMM_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream hymm_oss_;                                     \
      hymm_oss_ << msg;                                                 \
      ::hymm::detail::check_failed(#expr, __FILE__, __LINE__,           \
                                   hymm_oss_.str());                    \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define HYMM_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define HYMM_DCHECK(expr) HYMM_CHECK(expr)
#endif
