// Small-buffer vector for per-entry waiter lists. A DMB MSHR or LSQ
// ready set almost always holds one element (secondary misses are
// rare), but std::vector pays one heap allocation per miss for it —
// per-phase profile showed the allocator high in the MSHR churn. The
// first N elements live inline; only the rare overflow spills to the
// heap.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hymm {

template <typename T, std::size_t N>
class SmallVec {
 public:
  SmallVec() = default;

  void push_back(const T& v) {
    if (size_ < N) {
      inline_[size_] = v;
    } else {
      spill_.push_back(v);
    }
    ++size_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](std::size_t i) const {
    return i < N ? inline_[i] : spill_[i - N];
  }

  void clear() {
    spill_.clear();
    size_ = 0;
  }

  // Minimal iteration support (range-for over const elements).
  class const_iterator {
   public:
    const_iterator(const SmallVec* v, std::size_t i) : v_(v), i_(i) {}
    const T& operator*() const { return (*v_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const SmallVec* v_;
    std::size_t i_;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

 private:
  std::array<T, N> inline_{};
  std::vector<T> spill_;
  std::size_t size_ = 0;
};

}  // namespace hymm
