#include "common/stall.hpp"

namespace hymm {

const char* stall_cause_key(StallCause cause) {
  switch (cause) {
    case StallCause::kCompute: return "compute";
    case StallCause::kMergeRmw: return "merge_rmw";
    case StallCause::kDramLatency: return "dram_latency";
    case StallCause::kDramBandwidth: return "dram_bandwidth";
    case StallCause::kLsqFull: return "lsq_full";
    case StallCause::kSmqBacklog: return "smq_backlog";
    case StallCause::kDmbMiss: return "dmb_miss";
    case StallCause::kAccumulatorConflict: return "accumulator_conflict";
    case StallCause::kDrain: return "drain";
  }
  return "?";
}

std::string to_string(StallCause cause) { return stall_cause_key(cause); }

std::string to_string(Bottleneck verdict) {
  switch (verdict) {
    case Bottleneck::kComputeBound: return "compute-bound";
    case Bottleneck::kMemoryBound: return "memory-bound";
    case Bottleneck::kMergeBound: return "merge-bound";
  }
  return "?";
}

namespace {
Cycle at(std::span<const Cycle> stalls, StallCause cause) {
  const auto i = static_cast<std::size_t>(cause);
  return i < stalls.size() ? stalls[i] : 0;
}
}  // namespace

Cycle stall_group_compute(std::span<const Cycle> stalls) {
  return at(stalls, StallCause::kCompute);
}

Cycle stall_group_memory(std::span<const Cycle> stalls) {
  return at(stalls, StallCause::kDramLatency) +
         at(stalls, StallCause::kDramBandwidth) +
         at(stalls, StallCause::kLsqFull) +
         at(stalls, StallCause::kSmqBacklog) +
         at(stalls, StallCause::kDmbMiss) + at(stalls, StallCause::kDrain);
}

Cycle stall_group_merge(std::span<const Cycle> stalls) {
  return at(stalls, StallCause::kMergeRmw) +
         at(stalls, StallCause::kAccumulatorConflict);
}

Bottleneck classify_bottleneck(std::span<const Cycle> stalls) {
  const Cycle memory = stall_group_memory(stalls);
  const Cycle merge = stall_group_merge(stalls);
  const Cycle compute = stall_group_compute(stalls);
  if (memory >= merge && memory >= compute) return Bottleneck::kMemoryBound;
  if (merge >= compute) return Bottleneck::kMergeBound;
  return Bottleneck::kComputeBound;
}

}  // namespace hymm
