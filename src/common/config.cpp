#include "common/config.hpp"

#include "common/check.hpp"

namespace hymm {

std::string to_string(Dataflow dataflow) {
  switch (dataflow) {
    case Dataflow::kRowWiseProduct: return "RWP";
    case Dataflow::kOuterProduct: return "OP";
    case Dataflow::kHybrid: return "HyMM";
  }
  return "?";
}

std::string to_string(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru: return "LRU";
    case EvictionPolicy::kFifo: return "FIFO";
  }
  return "?";
}

std::string to_string(AutotuneMode mode) {
  switch (mode) {
    case AutotuneMode::kOff: return "off";
    case AutotuneMode::kAnalytic: return "analytic";
    case AutotuneMode::kMeasured: return "measured";
  }
  return "?";
}

std::optional<AutotuneMode> parse_autotune_mode(std::string_view text) {
  if (text == "off") return AutotuneMode::kOff;
  if (text == "analytic") return AutotuneMode::kAnalytic;
  if (text == "measured") return AutotuneMode::kMeasured;
  return std::nullopt;
}

std::string to_string(RouteMode mode) {
  switch (mode) {
    case RouteMode::kGlobal: return "global";
    case RouteMode::kTilesAnalytic: return "tiles:analytic";
    case RouteMode::kTilesMeasured: return "tiles:measured";
  }
  return "?";
}

std::optional<RouteMode> parse_route_mode(std::string_view text) {
  if (text == "global") return RouteMode::kGlobal;
  if (text == "tiles" || text == "tiles:analytic") {
    return RouteMode::kTilesAnalytic;
  }
  if (text == "tiles:measured") return RouteMode::kTilesMeasured;
  return std::nullopt;
}

void AcceleratorConfig::validate() const {
  HYMM_CHECK_MSG(pe_count > 0, "need at least one PE");
  HYMM_CHECK_MSG(clock_ghz > 0.0, "clock must be positive");
  HYMM_CHECK_MSG(dmb_bytes >= kLineBytes, "DMB smaller than one line");
  HYMM_CHECK_MSG(dmb_mshr_entries > 0, "need at least one MSHR");
  HYMM_CHECK_MSG(dmb_read_queue_entries > 0, "empty DMB read queue");
  HYMM_CHECK_MSG(dmb_write_queue_entries > 0, "empty DMB write queue");
  HYMM_CHECK_MSG(smq_pointer_bytes >= kLineBytes, "SMQ pointer buffer tiny");
  HYMM_CHECK_MSG(smq_index_bytes >= kLineBytes, "SMQ index buffer tiny");
  HYMM_CHECK_MSG(lsq_entries > 0, "empty LSQ");
  HYMM_CHECK_MSG(engine_window > 0, "zero engine window");
  HYMM_CHECK_MSG(engine_window < lsq_entries,
                 "engine window must leave LSQ headroom for stores");
  HYMM_CHECK_MSG(dram_bytes_per_cycle > 0, "zero DRAM bandwidth");
  HYMM_CHECK_MSG(dram_queue_entries > 0, "empty DRAM queue");
  HYMM_CHECK_MSG(dram_write_buffer_lines > 0, "empty DRAM write buffer");
  HYMM_CHECK_MSG(tiling_threshold >= 0.0 && tiling_threshold <= 1.0,
                 "tiling threshold must be a fraction");
  HYMM_CHECK_MSG(dmb_pin_fraction > 0.0 && dmb_pin_fraction <= 1.0,
                 "pin fraction must be in (0, 1]");
  HYMM_CHECK_MSG(obs_sample_interval > 0, "zero observability sample interval");
}

}  // namespace hymm
