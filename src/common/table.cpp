#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace hymm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HYMM_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  HYMM_CHECK_MSG(cells.size() == header_.size(),
                 "row has " << cells.size() << " cells, header has "
                            << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 != row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 != row.size()) os << ',';
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string Table::fmt_percent(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string Table::fmt_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return fmt(bytes, u == 0 ? 0 : 2) + units[u];
}

}  // namespace hymm
