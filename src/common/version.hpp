// Single source of truth for the JSON schema versions this build
// writes (docs/schemas.md has the specs). Readers that accept older
// versions (obs/diff.cpp, scripts/perf_compare, scripts/
// check_schema.py) list their own compatibility sets; the tune-cache
// schema lives with its owner (TuneCache::kSchema).
#pragma once

namespace hymm {

// Run reports written by write_json_report (core/report.cpp).
inline constexpr const char* kRunReportSchema = "hymm-run-report/8";
// Perf snapshots written by bench/perf_regression.
inline constexpr const char* kBenchSchema = "hymm-bench/3";
// Serving reports written by write_serve_json (serve/report.cpp) for
// bench/serve_bench.
inline constexpr const char* kServeReportSchema = "hymm-serve-report/1";

}  // namespace hymm
