// Minimal fixed-width table printer used by the benchmark harnesses to
// emit the rows of the paper's tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hymm {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Every row must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  // Renders with per-column auto width, a header underline and two
  // spaces between columns.
  void print(std::ostream& os) const;

  // Renders as comma-separated values (no quoting; callers keep cells
  // free of commas).
  void print_csv(std::ostream& os) const;

  // Number formatting helpers shared by the bench binaries.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_percent(double fraction, int precision = 1);
  static std::string fmt_bytes(double bytes);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hymm
