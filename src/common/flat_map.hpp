// Open-addressing hash map for the simulator's per-cycle hot paths
// (DMB line/MSHR directories, LSQ entry tables). The per-tick retry
// loops perform several membership probes per in-flight load, and
// std::unordered_map's prime-modulo bucketing plus node indirection
// dominated the profile there. This map uses 64-bit keys, a mixed
// power-of-two index, linear probing and backward-shift deletion, so
// a probe is one or two contiguous cache lines.
//
// Storage is struct-of-arrays: keys, occupancy bytes and values live
// in three parallel arrays. A probe (find/contains) walks only the
// key and occupancy arrays — eight keys per cache line regardless of
// sizeof(Value) — and touches the value array once, on the final hit.
// With the AoS layout a DMB LineState or LSQ entry payload rode along
// on every probe step and wasted most of each fetched line.
//
// Scope is deliberately narrow:
//  - keys are std::uint64_t (Addr, LoadStoreQueue::EntryId),
//  - Value must be default-constructible and move-assignable,
//  - find() returns Value* (nullptr when absent), not an iterator,
//  - no insertion/erasure inside for_each (collect keys, then erase).
//
// Iteration order is unspecified and differs from unordered_map; the
// simulator only iterates these tables for order-independent
// aggregation (flush/unpin writeback counters), which
// tests/test_fastforward.cpp's bit-identity sweep double-checks.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace hymm {

template <typename Value>
class FlatMap {
 public:
  explicit FlatMap(std::size_t expected = 0) { rehash(table_size_for(expected)); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void reserve(std::size_t expected) {
    const std::size_t want = table_size_for(expected);
    if (want > keys_.size()) rehash(want);
  }

  Value* find(std::uint64_t key) {
    std::size_t i = home_of(key);
    while (used_[i]) {
      if (keys_[i] == key) return &values_[i];
      i = next(i);
    }
    return nullptr;
  }
  const Value* find(std::uint64_t key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }
  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  Value& at(std::uint64_t key) {
    Value* v = find(key);
    HYMM_DCHECK(v != nullptr);
    return *v;
  }

  // Inserts key -> value; overwrites an existing mapping.
  Value& emplace(std::uint64_t key, Value value) {
    maybe_grow();
    std::size_t i = home_of(key);
    while (used_[i]) {
      if (keys_[i] == key) {
        values_[i] = std::move(value);
        return values_[i];
      }
      i = next(i);
    }
    used_[i] = 1;
    keys_[i] = key;
    values_[i] = std::move(value);
    ++size_;
    return values_[i];
  }

  // Default-constructs the mapping when absent (counter-map idiom).
  Value& operator[](std::uint64_t key) {
    if (Value* v = find(key)) return *v;
    return emplace(key, Value{});
  }

  // Returns true when the key was present. Backward-shift deletion
  // keeps probe chains contiguous without tombstones.
  bool erase(std::uint64_t key) {
    std::size_t i = home_of(key);
    while (used_[i]) {
      if (keys_[i] == key) {
        erase_slot(i);
        return true;
      }
      i = next(i);
    }
    return false;
  }

  void clear() {
    if (size_ == 0) return;
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    size_ = 0;
  }

  // Visits every entry as f(key, Value&). The callback must not
  // insert into or erase from this map.
  template <typename F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (used_[i]) f(keys_[i], values_[i]);
    }
  }
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (used_[i]) f(keys_[i], values_[i]);
    }
  }

 private:
  static std::size_t table_size_for(std::size_t expected) {
    // Keep the load factor under ~0.5 at the expected population.
    std::size_t n = 16;
    while (n < expected * 2) n *= 2;
    return n;
  }

  std::size_t home_of(std::uint64_t k) const {
    // splitmix64 finalizer: full avalanche so line addresses (low
    // bits all zero) spread across the table.
    k ^= k >> 30;
    k *= 0xbf58476d1ce4e5b9ULL;
    k ^= k >> 27;
    k *= 0x94d049bb133111ebULL;
    k ^= k >> 31;
    return static_cast<std::size_t>(k) & mask_;
  }
  std::size_t next(std::size_t i) const { return (i + 1) & mask_; }

  void maybe_grow() {
    if ((size_ + 1) * 2 > keys_.size()) rehash(keys_.size() * 2);
  }

  void rehash(std::size_t new_size) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    std::vector<Value> old_values = std::move(values_);
    keys_.assign(new_size, 0);
    used_.assign(new_size, 0);
    values_.assign(new_size, Value{});
    mask_ = new_size - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_used[i]) emplace(old_keys[i], std::move(old_values[i]));
    }
  }

  void erase_slot(std::size_t hole) {
    std::size_t i = hole;  // current hole position
    std::size_t j = hole;  // scan cursor
    while (true) {
      j = next(j);
      if (!used_[j]) break;
      // Shift j back into the hole unless its home slot lies
      // cyclically in (i, j] — then the move would park it before
      // its probe chain and lookups would miss it.
      const std::size_t home = home_of(keys_[j]);
      const bool home_in_gap = ((j - home) & mask_) < ((j - i) & mask_);
      if (!home_in_gap) {
        keys_[i] = keys_[j];
        values_[i] = std::move(values_[j]);
        i = j;
      }
    }
    used_[i] = 0;
    values_[i] = Value{};
    --size_;
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint8_t> used_;
  std::vector<Value> values_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hymm
