// Fundamental scalar types shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hymm {

// Graph node / matrix row-column index. 32 bits covers the largest
// paper dataset (Yelp, 716 847 nodes) with ample headroom.
using NodeId = std::uint32_t;

// Count of edges / non-zeros. Yelp has 14 M edges; 64 bits keeps all
// derived byte counters overflow-free.
using EdgeCount = std::uint64_t;

// Simulator cycle count.
using Cycle = std::uint64_t;

// Logical byte address in the accelerator's DRAM address space.
using Addr = std::uint64_t;

// Feature / matrix value type. The paper's PEs are single-precision.
using Value = float;

inline constexpr std::size_t kLineBytes = 64;  // DMB / DRAM transfer unit
inline constexpr std::size_t kLaneCount = 16;  // floats per 64-byte line

// Sentinel returned by the components' next_event() horizon when no
// future cycle is scheduled to change their observable state.
inline constexpr Cycle kNoEvent = ~Cycle{0};

}  // namespace hymm
