// Index-based doubly-linked recency list for the simulator's LRU hot
// paths (DMB data/partial recency tiers, the OP engine's merge row
// set). Nodes live in one contiguous vector and links are 32-bit
// indices, so a touch (erase + reinsert at the hot end) rewrites six
// ints in place instead of a std::list node delete + allocate, and a
// handle stays valid for the node's whole lifetime — holders never
// need re-pointing when neighbours move.
//
// Front = coldest (next eviction victim), back = hottest. Handles are
// indices into the node pool; erased nodes go on a free list and the
// handle may be reused by a later push_back.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace hymm {

template <typename T>
class LruList {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNil = 0xffffffffu;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Appends at the hot end; returns the node's stable handle.
  Handle push_back(T value) {
    const Handle h = acquire();
    Node& n = nodes_[h];
    n.value = value;
    n.prev = tail_;
    n.next = kNil;
    if (tail_ != kNil) {
      nodes_[tail_].next = h;
    } else {
      head_ = h;
    }
    tail_ = h;
    ++size_;
    return h;
  }

  // Unlinks the node; the handle becomes invalid (and reusable).
  void erase(Handle h) {
    unlink(h);
    release(h);
  }

  // Moves an existing node to the hot end (the LRU "touch").
  void move_to_back(Handle h) {
    if (tail_ == h) return;
    unlink(h);
    Node& n = nodes_[h];
    n.prev = tail_;
    n.next = kNil;
    nodes_[tail_].next = h;  // list is non-empty: h was just unlinked
    tail_ = h;
    ++size_;
  }

  // Moves an existing node to the cold end (demotion).
  void move_to_front(Handle h) {
    if (head_ == h) return;
    unlink(h);
    Node& n = nodes_[h];
    n.next = head_;
    n.prev = kNil;
    nodes_[head_].prev = h;
    head_ = h;
    ++size_;
  }

  // Cold-to-hot traversal cursors. next()/value() require a live
  // handle obtained from front() or next().
  Handle front() const { return head_; }
  Handle next(Handle h) const { return nodes_[h].next; }
  const T& value(Handle h) const { return nodes_[h].value; }

  const T& front_value() const {
    HYMM_DCHECK(head_ != kNil);
    return nodes_[head_].value;
  }

  void clear() {
    nodes_.clear();
    head_ = tail_ = free_ = kNil;
    size_ = 0;
  }

  // Visits values cold-to-hot as f(value). The callback must not
  // mutate the list.
  template <typename F>
  void for_each(F&& f) const {
    for (Handle h = head_; h != kNil; h = nodes_[h].next) f(nodes_[h].value);
  }

 private:
  struct Node {
    T value{};
    Handle prev = kNil;
    Handle next = kNil;
  };

  Handle acquire() {
    if (free_ != kNil) {
      const Handle h = free_;
      free_ = nodes_[h].next;
      return h;
    }
    nodes_.push_back(Node{});
    return static_cast<Handle>(nodes_.size() - 1);
  }

  void release(Handle h) {
    nodes_[h].next = free_;
    free_ = h;
  }

  void unlink(Handle h) {
    Node& n = nodes_[h];
    if (n.prev != kNil) {
      nodes_[n.prev].next = n.next;
    } else {
      HYMM_DCHECK(head_ == h);
      head_ = n.next;
    }
    if (n.next != kNil) {
      nodes_[n.next].prev = n.prev;
    } else {
      HYMM_DCHECK(tail_ == h);
      tail_ = n.prev;
    }
    --size_;
  }

  std::vector<Node> nodes_;
  Handle head_ = kNil;
  Handle tail_ = kNil;
  Handle free_ = kNil;
  std::size_t size_ = 0;
};

}  // namespace hymm
