#include "common/timer.hpp"

// Header-only; this translation unit exists so the build exposes one
// object per public header and catches header self-containment issues.
