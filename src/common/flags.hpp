// Strict command-line / environment value parsing shared by hymm_sim
// and the bench binaries: the whole value must parse and land in
// range, otherwise a UsageError names the offending flag (bare strtod
// / atof would silently take "abc" as 0). Drivers catch UsageError at
// the top of main and exit(2).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hymm {

// A malformed flag or environment value. what() names the offender
// and the expected range; drivers print it and exit(2).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Parses an unsigned integer in [min_value, max_value]; `flag` is the
// name reported on failure (e.g. "--seed" or "HYMM_THREADS").
std::uint64_t parse_u64_value(const std::string& flag,
                              const std::string& value,
                              std::uint64_t min_value,
                              std::uint64_t max_value = UINT64_MAX);

// Parses a floating-point number in [min_value, max_value].
double parse_double_value(const std::string& flag, const std::string& value,
                          double min_value, double max_value);

}  // namespace hymm
