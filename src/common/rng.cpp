#include "common/rng.hpp"

#include <cmath>

namespace hymm {

namespace {

// splitmix64: expands a single seed into well-distributed state words.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  HYMM_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 high bits -> [0, 1) double.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  HYMM_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  const double v = next_double();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * 3.14159265358979323846 * v;
  spare_gaussian_ = r * std::sin(theta);
  has_spare_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace hymm
