// Bump allocator for per-phase / per-band transient buffers. The
// sampled-simulation and checkpoint paths allocate many short-lived
// scratch blocks with identical lifetimes (all dead at the end of the
// band or the serialization pass); a bump pointer over reusable
// chunks turns those into pointer increments and makes release a
// single reset() instead of N frees.
//
// Only trivially-destructible element types are supported: reset()
// never runs destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace hymm {

class BumpArena {
 public:
  explicit BumpArena(std::size_t chunk_bytes = 1 << 16)
      : chunk_bytes_(chunk_bytes) {}

  // Allocates a zero-initialized span of n elements aligned for T.
  template <typename T>
  std::span<T> allocate(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without destructors");
    if (n == 0) return {};
    const std::size_t bytes = n * sizeof(T);
    std::byte* p = allocate_bytes(bytes, alignof(T));
    T* first = reinterpret_cast<T*>(p);
    for (std::size_t i = 0; i < n; ++i) new (first + i) T{};
    return {first, n};
  }

  // Reclaims everything allocated since construction or the previous
  // reset; chunks are kept for reuse, so a steady-state phase loop
  // stops hitting the heap after its first iteration.
  void reset() {
    chunk_ = 0;
    offset_ = 0;
  }

  // Total bytes currently backing the arena (diagnostics).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::byte* allocate_bytes(std::size_t bytes, std::size_t align) {
    while (true) {
      if (chunk_ < chunks_.size()) {
        Chunk& c = chunks_[chunk_];
        const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= c.size) {
          offset_ = aligned + bytes;
          return c.data.get() + aligned;
        }
        ++chunk_;
        offset_ = 0;
        continue;
      }
      const std::size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
    }
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   // current chunk index
  std::size_t offset_ = 0;  // bump offset within the current chunk
};

}  // namespace hymm
