#include "common/check.hpp"

namespace hymm::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream oss;
  oss << "HYMM_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw CheckError(oss.str());
}

}  // namespace hymm::detail
