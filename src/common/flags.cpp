#include "common/flags.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace hymm {

std::uint64_t parse_u64_value(const std::string& flag,
                              const std::string& value,
                              std::uint64_t min_value,
                              std::uint64_t max_value) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || errno != 0 ||
      value.front() == '-' || parsed < min_value || parsed > max_value) {
    std::ostringstream oss;
    oss << "invalid value '" << value << "' for " << flag
        << " (expected integer >= " << min_value << ")";
    throw UsageError(oss.str());
  }
  return parsed;
}

double parse_double_value(const std::string& flag, const std::string& value,
                          double min_value, double max_value) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() || errno != 0 ||
      !(parsed >= min_value && parsed <= max_value)) {
    std::ostringstream oss;
    oss << "invalid value '" << value << "' for " << flag
        << " (expected number in [" << min_value << ", " << max_value
        << "])";
    throw UsageError(oss.str());
  }
  return parsed;
}

}  // namespace hymm
