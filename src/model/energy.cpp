#include "model/energy.hpp"

#include <cmath>

#include "common/check.hpp"

namespace hymm {

namespace {

double sram_access_pj(double base_pj_64kb, std::size_t capacity_bytes) {
  const double ratio =
      static_cast<double>(capacity_bytes) / (64.0 * 1024.0);
  return base_pj_64kb * std::sqrt(std::max(ratio, 1.0 / 64.0));
}

constexpr double kPjToUj = 1e-6;

}  // namespace

double EnergyReport::average_power_w(double clock_ghz, Cycle cycles) const {
  if (cycles == 0) return 0.0;
  const double seconds =
      static_cast<double>(cycles) / (clock_ghz * 1e9);
  return total_uj * 1e-6 / seconds;
}

EnergyReport estimate_energy(const SimStats& stats,
                             const AcceleratorConfig& config,
                             const EnergyCoefficients& coefficients) {
  config.validate();
  EnergyReport report;

  // PE array: MACs plus merge adds.
  const double pe_uj =
      (static_cast<double>(stats.mac_ops) * coefficients.mac_pj +
       static_cast<double>(stats.merge_adds) * coefficients.merge_add_pj) *
      kPjToUj;
  report.components.push_back({"PE Array", pe_uj});

  // DMB: every hit, accumulate, miss fill and eviction touches the
  // array once.
  const std::uint64_t dmb_accesses =
      stats.dmb_read_hits + stats.dmb_read_misses +
      stats.dmb_accumulate_hits + stats.dmb_accumulate_misses +
      stats.dmb_evictions;
  const double dmb_uj =
      static_cast<double>(dmb_accesses) *
      sram_access_pj(coefficients.sram_pj_per_access_64kb,
                     config.dmb_bytes) *
      kPjToUj;
  report.components.push_back({"DMB", dmb_uj});

  // SMQ: one buffer access per 64 bytes of compressed stream.
  const std::uint64_t smq_bytes =
      stats.dram_read_bytes[static_cast<std::size_t>(
          TrafficClass::kAdjacency)] +
      stats.dram_read_bytes[static_cast<std::size_t>(
          TrafficClass::kFeatures)];
  const double smq_uj =
      static_cast<double>(smq_bytes / kLineBytes) *
      sram_access_pj(coefficients.sram_pj_per_access_64kb,
                     config.smq_pointer_bytes + config.smq_index_bytes) *
      kPjToUj;
  report.components.push_back({"SMQ", smq_uj});

  // LSQ: one CAM/array access per load and store.
  const double lsq_uj =
      static_cast<double>(stats.lsq_loads + stats.lsq_stores) *
      sram_access_pj(coefficients.sram_pj_per_access_64kb,
                     config.lsq_entries * config.lsq_entry_bytes) *
      kPjToUj;
  report.components.push_back({"LSQ", lsq_uj});

  // Off-chip DRAM.
  const double dram_uj = static_cast<double>(stats.dram_total_bytes()) *
                         coefficients.dram_pj_per_byte * kPjToUj;
  report.components.push_back({"DRAM", dram_uj});

  // Static energy.
  const double static_uj = static_cast<double>(stats.cycles) *
                           coefficients.static_pj_per_cycle * kPjToUj;
  report.components.push_back({"Static", static_uj});

  for (const ComponentEnergy& c : report.components) {
    report.total_uj += c.energy_uj;
  }
  return report;
}

}  // namespace hymm
