// Counter-driven energy model.
//
// The paper reports area only, but its baselines (GCNAX, GROW) are
// evaluated on energy too, so a reproduction repo needs one: this
// model folds a run's SimStats into component energies using
// per-event coefficients in the style of those papers (compute pJ per
// MAC, SRAM pJ per access scaled by capacity, DRAM pJ per byte, plus
// static power per cycle). Coefficients are order-of-magnitude 40 nm
// estimates documented below — swap them for measured numbers if you
// have silicon.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/stats.hpp"

namespace hymm {

struct EnergyCoefficients {
  // Compute (per 16-lane scalar-vector op).
  double mac_pj = 8.0;        // 16 FP32 MACs @ ~0.5 pJ each (40 nm)
  double merge_add_pj = 4.0;  // 16 FP32 adds

  // On-chip SRAM, per 64-byte access, for a 64 KB array; scales with
  // sqrt(capacity/64KB) like CACTI's access energy roughly does.
  double sram_pj_per_access_64kb = 12.0;

  // Off-chip DRAM per byte (DDR4-class).
  double dram_pj_per_byte = 20.0;

  // Static/leakage + clock per cycle for the whole accelerator.
  double static_pj_per_cycle = 5.0;
};

struct ComponentEnergy {
  std::string name;
  double energy_uj = 0.0;  // microjoules
};

struct EnergyReport {
  std::vector<ComponentEnergy> components;
  double total_uj = 0.0;

  // Average power at the configured clock (W = uJ * MHz / cycles).
  double average_power_w(double clock_ghz, Cycle cycles) const;
};

// Folds a run's counters into an energy estimate. DMB accesses are
// read hits + accumulate ops + evictions; SMQ accesses are derived
// from the adjacency/feature stream bytes; LSQ from load/store
// counts.
EnergyReport estimate_energy(const SimStats& stats,
                             const AcceleratorConfig& config,
                             const EnergyCoefficients& coefficients = {});

}  // namespace hymm
