#include "model/area.hpp"

#include <sstream>

#include "common/check.hpp"

namespace hymm {

namespace {

// Coefficients calibrated against Table III (paper configuration:
// 16 MACs, 256 KB DMB, 4+12 KB SMQ, 128 x 68 B LSQ).
constexpr double kMacArea7nm = 0.006 / 16.0;          // mm^2 per MAC
constexpr double kDmbArea7nmPerKb = 0.077 / 256.0;    // dual-ported SRAM
constexpr double kSmqArea7nmPerKb = 0.008 / 16.0;     // single-ported SRAM
constexpr double kLsqArea7nmPerEntry = 0.009 / 128.0; // searchable queue
constexpr double kOthersArea7nm = 0.004;              // control, NoC, misc

// Per-component 7 nm -> 40 nm scale factors implied by Table III.
constexpr double kPeScale = 0.21 / 0.006;
constexpr double kDmbScale = 2.39 / 0.077;
constexpr double kSmqScale = 0.254 / 0.008;
constexpr double kLsqScale = 0.292 / 0.009;
constexpr double kOthersScale = 0.129 / 0.004;

std::string kb_string(std::size_t bytes) {
  std::ostringstream oss;
  oss << bytes / 1024 << " KB";
  return oss.str();
}

}  // namespace

AreaReport estimate_area(const AcceleratorConfig& config) {
  config.validate();
  AreaReport report;

  const double pe_7nm = kMacArea7nm * static_cast<double>(config.pe_count);
  report.components.push_back(
      {"PE Array", std::to_string(config.pe_count) + " MAC", pe_7nm,
       pe_7nm * kPeScale});

  const double dmb_kb = static_cast<double>(config.dmb_bytes) / 1024.0;
  const double dmb_7nm = kDmbArea7nmPerKb * dmb_kb;
  report.components.push_back(
      {"DMB", kb_string(config.dmb_bytes), dmb_7nm, dmb_7nm * kDmbScale});

  const std::size_t smq_bytes =
      config.smq_pointer_bytes + config.smq_index_bytes;
  const double smq_7nm =
      kSmqArea7nmPerKb * static_cast<double>(smq_bytes) / 1024.0;
  report.components.push_back(
      {"SMQ", kb_string(smq_bytes), smq_7nm, smq_7nm * kSmqScale});

  const double lsq_7nm =
      kLsqArea7nmPerEntry * static_cast<double>(config.lsq_entries);
  std::ostringstream lsq_cfg;
  lsq_cfg << config.lsq_entries << " Entries, " << config.lsq_entry_bytes
          << "B/Entry";
  report.components.push_back(
      {"LSQ", lsq_cfg.str(), lsq_7nm, lsq_7nm * kLsqScale});

  report.components.push_back(
      {"Others", "-", kOthersArea7nm, kOthersArea7nm * kOthersScale});

  for (const ComponentArea& c : report.components) {
    report.total_7nm_mm2 += c.area_7nm_mm2;
    report.total_40nm_mm2 += c.area_40nm_mm2;
  }
  return report;
}

}  // namespace hymm
