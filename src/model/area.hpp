// Analytic area model (paper Table III).
//
// The paper synthesizes HyMM with Synopsys Design Compiler on the
// ASAP 7 nm PDK and sizes memories with CACTI 7.0, then scales to
// TSMC 40 nm to compare against prior accelerators. Neither tool is
// redistributable, so this model uses per-component coefficients
// calibrated to reproduce Table III exactly at the paper's
// configuration and to extrapolate linearly for design-space sweeps
// (DESIGN.md section 3).
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"

namespace hymm {

struct ComponentArea {
  std::string name;           // "PE Array", "DMB", ...
  std::string configuration;  // "16 MAC", "256 KB", ...
  double area_7nm_mm2 = 0.0;
  double area_40nm_mm2 = 0.0;
};

struct AreaReport {
  std::vector<ComponentArea> components;
  double total_7nm_mm2 = 0.0;
  double total_40nm_mm2 = 0.0;
};

// Estimates component and total areas for an accelerator
// configuration. With the default AcceleratorConfig this reproduces
// the paper's Table III.
AreaReport estimate_area(const AcceleratorConfig& config);

// Reference totals the paper reports for the baselines' accelerators
// (Section V): GCNAX 6.51 mm^2, GROW 2.291 mm^2 (40 nm).
inline constexpr double kGcnaxArea40nm = 6.51;
inline constexpr double kGrowArea40nm = 2.291;

}  // namespace hymm
