#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace hymm {

std::size_t LogHistogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // Octave e = floor(log2(value)) >= kSubBucketBits; the top
  // kSubBucketBits+1 bits select one of kSubBuckets buckets whose
  // width is 2^(e - kSubBucketBits).
  const unsigned e = std::bit_width(value) - 1;
  const unsigned shift = e - kSubBucketBits;
  return static_cast<std::size_t>((value >> shift) + shift * kSubBuckets);
}

std::uint64_t LogHistogram::bucket_lower(std::size_t index) {
  if (index < kSubBuckets) return index;
  const unsigned shift =
      static_cast<unsigned>(index / kSubBuckets) - 1;
  return (static_cast<std::uint64_t>(index) - shift * kSubBuckets) << shift;
}

std::uint64_t LogHistogram::bucket_upper(std::size_t index) {
  if (index < kSubBuckets) return index;
  const unsigned shift =
      static_cast<unsigned>(index / kSubBuckets) - 1;
  return bucket_lower(index) + ((std::uint64_t{1} << shift) - 1);
}

void LogHistogram::observe(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  const std::size_t index = bucket_index(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  buckets_[index] += weight;
  count_ += weight;
  sum_ += value * weight;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double LogHistogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) /
                           static_cast<double>(count_);
}

std::uint64_t LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  HYMM_DCHECK(q >= 0.0 && q <= 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

std::vector<LogHistogram::Bucket> LogHistogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    out.push_back(Bucket{bucket_lower(i), bucket_upper(i), buckets_[i]});
  }
  return out;
}

void LogHistogram::reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = ~std::uint64_t{0};
  max_ = 0;
}

}  // namespace hymm
