/// @file
/// Log-bucketed HDR-style histogram:
/// records unsigned samples — memory-request latencies, phase
/// durations — into geometrically growing buckets with a bounded
/// relative error, so p50/p90/p99 queries stay cheap and exact-enough
/// for attribution no matter how many samples a run produces.
///
/// Bucket scheme (kSubBucketBits = 5, i.e. 32 sub-buckets per octave):
///   values < 32            one bucket per value (exact)
///   values in [2^e, 2^e+1) 32 buckets of width 2^(e-5)
/// so every estimate falls within a factor of (1 + 2^-5) = 3.125% of
/// the true value. min/max/count/sum are tracked exactly; quantile()
/// returns the inclusive upper edge of the rank's bucket, capped at
/// the exact max. merge() adds bucket-wise and is exact: a merged
/// histogram equals one that observed both sample streams directly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace hymm {

/// Log-bucketed histogram with bounded relative quantile error.
class LogHistogram {
 public:
  /// Sub-buckets per octave as a power of two; 5 bounds the relative
  /// quantile error at 2^-5 = 3.125%.
  static constexpr unsigned kSubBucketBits = 5;
  /// Sub-buckets per octave (2^kSubBucketBits).
  static constexpr std::uint64_t kSubBuckets = 1u << kSubBucketBits;

  /// Index of the bucket holding `value` (0 is the bucket for 0).
  static std::size_t bucket_index(std::uint64_t value);
  /// Inclusive lower edge of bucket `index`.
  static std::uint64_t bucket_lower(std::size_t index);
  /// Inclusive upper edge of bucket `index`.
  static std::uint64_t bucket_upper(std::size_t index);

  /// Records `value` `weight` times.
  void observe(std::uint64_t value, std::uint64_t weight = 1);

  /// Bucket-wise sum; exact (equivalent to observing both streams).
  void merge(const LogHistogram& other);

  std::uint64_t count() const { return count_; }  ///< samples observed
  std::uint64_t sum() const { return sum_; }  ///< sum of all samples
  bool empty() const { return count_ == 0; }  ///< no samples yet
  /// Exact minimum; 0 when the histogram is empty.
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }  ///< exact maximum
  double mean() const;  ///< sum / count, 0 when empty

  /// Value at quantile q in [0, 1]: the inclusive upper edge of the
  /// bucket holding the ceil(q * count)-th smallest sample, capped at
  /// the exact max — so quantile(v) >= true value and
  /// quantile(v) <= true value * (1 + 2^-kSubBucketBits). Returns 0
  /// when empty; quantile(1) is the exact max.
  std::uint64_t quantile(double q) const;

  /// One occupied bucket (serialization and test introspection).
  struct Bucket {
    std::uint64_t lower = 0;  ///< inclusive lower edge
    std::uint64_t upper = 0;  ///< inclusive upper edge
    std::uint64_t count = 0;  ///< samples in [lower, upper]
  };
  /// Occupied buckets in increasing value order.
  std::vector<Bucket> nonzero_buckets() const;

  void reset();  ///< clears all samples and extremes

 private:
  // Grown on demand to the highest observed bucket index.
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// The per-run latency/duration histograms an Observer collects (one
/// set per simulated run; reset by Observer::begin_run and handed to
/// the ExperimentResult by run_experiment). All values are cycles.
struct RunHistograms {
  /// LSQ load allocation -> data ready, as the engine sees it (DMB hit
  /// latency, miss fills, retry queueing). Store-to-load forwards are
  /// satisfied without a memory request and are not recorded.
  LogHistogram lsq_load_latency;
  /// DRAM read issue -> completion delivery (queueing + fixed latency).
  LogHistogram dram_read_latency;
  /// DMB MSHR allocation -> fill install (the buffer-side view of a
  /// miss, including bandwidth queueing ahead of the fill).
  LogHistogram dmb_fill_latency;
  /// Durations of the combination/aggregation phase spans and the
  /// hybrid's region sub-spans.
  LogHistogram phase_cycles;

  /// True when every member histogram is empty.
  bool empty() const {
    return lsq_load_latency.empty() && dram_read_latency.empty() &&
           dmb_fill_latency.empty() && phase_cycles.empty();
  }
};

}  // namespace hymm
