/// @file
/// Run-diff root-cause analysis (the hymm_diff tool, bench/hymm_diff):
/// loads two run reports — hymm-run-report/4..8 or hymm-bench/1..3
/// snapshots — pairs their runs by (abbrev, flow) and attributes
/// each pair's cycle delta to (phase-or-region x stall bucket). The
/// per-phase stall vectors sum exactly to the per-phase cycle counts
/// (the simulator's cycle-accounting invariant), so the attribution
/// rows sum exactly to the cycle delta: no residual bucket, no
/// estimate. When both /6 reports carry a "spatial" tile grid of the
/// same geometry, the per-tile cycle deltas are ranked as a second
/// table (where in the adjacency did the cycles move).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hymm {

struct JsonValue;

/// One phase (or hybrid region) of a run with its stall breakdown.
/// `cycles` is the sum of the stall buckets, which per-phase equals
/// the simulated cycle count by the accounting invariant.
struct PhaseBreakdown {
  std::string name;  ///< "combination", "aggregation", "region1", "total"
  double cycles = 0.0;  ///< phase cycle count
  std::map<std::string, double> stalls;  ///< stall-cause key -> cycles
};

/// The run report's "spatial" tile grid reduced to what the diff
/// needs: per-tile cycles and DRAM bytes, summed across the hybrid
/// regions (row-major, rows x cols). Empty (rows == 0) when the run
/// carried no spatial attribution.
struct TileGrid {
  std::size_t rows = 0;  ///< grid rows
  std::size_t cols = 0;  ///< grid columns
  double tile = 0.0;  ///< tile edge in nodes
  std::vector<double> cycles;      ///< per-tile cycles, row-major
  std::vector<double> dram_bytes;  ///< per-tile DRAM bytes, row-major

  bool empty() const { return rows == 0; }  ///< no spatial data
};

/// One (dataset, dataflow) run normalized out of either report kind.
struct RunSnapshot {
  std::string abbrev;  ///< dataset abbreviation
  std::string flow;    ///< dataflow name
  double cycles = 0.0;       ///< total simulated cycles
  double sim_wall_ms = 0.0;  ///< host wall-clock of the simulation
  double skipped_cycles = 0.0;  ///< fast-forwarded cycles
  std::vector<PhaseBreakdown> phases;  ///< per-phase stall breakdowns
  TileGrid tiles;  ///< spatial grid (since /6); empty otherwise
};

/// A parsed + normalized report. `kind` is "run-report" or "bench";
/// diffing requires the same kind on both sides (any supported
/// version).
struct ReportSnapshot {
  std::string schema;  ///< schema string of the source document
  std::string kind;    ///< "run-report" or "bench"
  std::vector<RunSnapshot> runs;  ///< normalized runs
};

/// Normalizes a parsed JSON document. For run reports, a hybrid run's
/// aggregation phase is replaced by its per-region split when regions
/// are present (the regions sum exactly to the aggregation phase); a
/// bench/1 snapshot becomes a single "total" phase. Returns nullopt
/// and fills *error on an unsupported schema or malformed document.
std::optional<ReportSnapshot> normalize_report(const JsonValue& doc,
                                               std::string* error);

/// Convenience: read + parse + normalize a report file.
std::optional<ReportSnapshot> load_report(const std::string& path,
                                          std::string* error);

/// One attribution row of a run pair's diff.
struct DiffRow {
  std::string phase;  ///< phase or region name
  std::string cause;  ///< stall-cause key
  double base = 0.0;     ///< cycles in the base report
  double current = 0.0;  ///< cycles in the current report
  double delta = 0.0;  ///< current - base
};

/// One tile of a run pair's spatial-grid diff.
struct TileDiffRow {
  std::size_t row = 0;  ///< tile-grid row (row-band index)
  std::size_t col = 0;  ///< tile-grid column
  double base_cycles = 0.0;     ///< tile cycles in the base report
  double current_cycles = 0.0;  ///< tile cycles in the current report
  double cycle_delta = 0.0;       ///< current - base
  double dram_bytes_delta = 0.0;  ///< current - base
};

/// The diff of one (abbrev, flow) pair present in both reports.
struct RunDiff {
  std::string abbrev;  ///< dataset abbreviation
  std::string flow;    ///< dataflow name
  double base_cycles = 0.0;     ///< total cycles, base side
  double current_cycles = 0.0;  ///< total cycles, current side
  double sim_wall_ms_delta = 0.0;     ///< wall-clock delta
  double skipped_cycles_delta = 0.0;  ///< fast-forward coverage delta
  std::vector<DiffRow> rows;  ///< ranked by |delta|, largest first
  /// Per-tile cycle deltas, ranked by |delta| largest first. Only
  /// filled when both sides carry a spatial grid of identical
  /// geometry (rows, cols, tile); zero-delta tiles are skipped.
  std::vector<TileDiffRow> tile_rows;

  double cycle_delta() const { return current_cycles - base_cycles; }  ///< current - base
};

/// Pairs runs by (abbrev, flow) and builds the ranked attribution rows
/// for each pair. Runs present in only one report are skipped (the
/// printer reports them).
std::vector<RunDiff> diff_reports(const ReportSnapshot& base,
                                  const ReportSnapshot& current);

/// Prints the ranked root-cause table for every diffed run: one row
/// per (phase, stall cause) with base/current cycles, the delta and
/// its share of the total cycle delta. `max_rows` caps the rows shown
/// per run (0 = all).
void print_diff(const std::vector<RunDiff>& diffs, std::ostream& out,
                std::size_t max_rows = 10);

}  // namespace hymm
