#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace hymm {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- Validator -----------------------------------------------------

namespace {

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool run() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        const char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(
                             text_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    consume('-');
    if (consume('0')) {
      // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (consume('.')) {
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_is_valid(std::string_view text) {
  return JsonValidator(text).run();
}

// --- Parser --------------------------------------------------------

namespace {

// Recursive-descent parser over the same grammar as JsonValidator,
// building a JsonValue tree instead of only checking shape.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue root;
    if (!value(root)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;
    return root;
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.string_value);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.bool_value = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.bool_value = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        out.kind = JsonValue::Kind::kNumber;
        return number(out.number_value);
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue member;
      if (!value(member)) return false;
      out.object_members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue item;
      if (!value(item)) return false;
      out.array_items.push_back(std::move(item));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  static void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  bool string(std::string& out) {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return false;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code_point = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) return false;
            const char h = text_[pos_++];
            code_point <<= 4;
            if (h >= '0' && h <= '9') code_point |= h - '0';
            else if (h >= 'a' && h <= 'f') code_point |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code_point |= h - 'A' + 10;
            else return false;
          }
          // Surrogate pairs are not combined (nothing this repo emits
          // leaves the BMP); each half round-trips as its own unit.
          append_utf8(out, code_point);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool number(double& out) {
    const std::size_t begin = pos_;
    consume('-');
    if (consume('0')) {
      // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (consume('.')) {
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    out = std::strtod(std::string(text_.substr(begin, pos_ - begin)).c_str(),
                      nullptr);
    return true;
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, member] : object_members) {
    if (name == key) return &member;
  }
  return nullptr;
}

std::string JsonValue::get_string(std::string_view key,
                                  const std::string& fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_string() ? member->string_value
                                                  : fallback;
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_number() ? member->number_value
                                                  : fallback;
}

std::optional<JsonValue> json_parse(std::string_view text) {
  return JsonParser(text).run();
}

// --- Writer --------------------------------------------------------

JsonWriter::JsonWriter(std::ostream& out, bool pretty)
    : out_(out), pretty_(pretty) {}

void JsonWriter::indent() {
  if (!pretty_) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (!stack_.back().first) out_ << ',';
  stack_.back().first = false;
  indent();
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Level{});
}

void JsonWriter::end_object() {
  HYMM_DCHECK(!stack_.empty());
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Level{});
}

void JsonWriter::end_array() {
  HYMM_DCHECK(!stack_.empty());
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ << ']';
}

void JsonWriter::key(std::string_view name) {
  HYMM_DCHECK(!after_key_);
  before_value();
  out_ << '"' << json_escape(name) << "\":" << (pretty_ ? " " : "");
  after_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  before_value();
  out_ << '"' << json_escape(s) << '"';
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ << buf;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

}  // namespace hymm
