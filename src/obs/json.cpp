#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace hymm {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- Validator -----------------------------------------------------

namespace {

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool run() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        const char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(
                             text_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    consume('-');
    if (consume('0')) {
      // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (consume('.')) {
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_is_valid(std::string_view text) {
  return JsonValidator(text).run();
}

// --- Writer --------------------------------------------------------

JsonWriter::JsonWriter(std::ostream& out, bool pretty)
    : out_(out), pretty_(pretty) {}

void JsonWriter::indent() {
  if (!pretty_) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (!stack_.back().first) out_ << ',';
  stack_.back().first = false;
  indent();
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Level{});
}

void JsonWriter::end_object() {
  HYMM_DCHECK(!stack_.empty());
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Level{});
}

void JsonWriter::end_array() {
  HYMM_DCHECK(!stack_.empty());
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ << ']';
}

void JsonWriter::key(std::string_view name) {
  HYMM_DCHECK(!after_key_);
  before_value();
  out_ << '"' << json_escape(name) << "\":" << (pretty_ ? " " : "");
  after_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  before_value();
  out_ << '"' << json_escape(s) << '"';
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ << buf;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

}  // namespace hymm
