#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "common/check.hpp"
#include "obs/json.hpp"

namespace hymm {

void TraceWriter::set_process_name(int pid, std::string name) {
  Event e;
  e.ph = 'M';
  e.pid = pid;
  e.name = "process_name";
  e.arg_key = "name";
  e.arg_str = std::move(name);
  metadata_.push_back(std::move(e));
}

void TraceWriter::set_thread_name(int pid, int tid, std::string name) {
  Event e;
  e.ph = 'M';
  e.pid = pid;
  e.tid = tid;
  e.name = "thread_name";
  e.arg_key = "name";
  e.arg_str = std::move(name);
  metadata_.push_back(std::move(e));
}

void TraceWriter::duration(int pid, int tid, std::string name, Cycle begin,
                           Cycle end) {
  HYMM_DCHECK(end >= begin);
  Event e;
  e.ph = 'X';
  e.ts = begin;
  e.dur = end - begin;
  e.pid = pid;
  e.tid = tid;
  e.name = std::move(name);
  events_.push_back(std::move(e));
}

void TraceWriter::counter(int pid, std::string track, std::string series,
                          Cycle ts, std::uint64_t value) {
  Event e;
  e.ph = 'C';
  e.ts = ts;
  e.pid = pid;
  e.name = std::move(track);
  e.arg_key = std::move(series);
  e.arg_u64 = value;
  events_.push_back(std::move(e));
}

void TraceWriter::instant(int pid, std::string name, Cycle ts) {
  if (instant_count_ >= kMaxInstantEvents) {
    ++dropped_instants_;
    return;
  }
  ++instant_count_;
  Event e;
  e.ph = 'i';
  e.ts = ts;
  e.pid = pid;
  e.name = std::move(name);
  events_.push_back(std::move(e));
}

void TraceWriter::write(std::ostream& out) const {
  // Chrome's JSON importer tolerates any order, but downstream tools
  // (and our own acceptance test) want monotone timestamps.
  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) { return a->ts < b->ts; });

  JsonWriter w(out, /*pretty=*/false);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  const auto emit = [&w](const Event& e) {
    w.begin_object();
    w.field("name", std::string_view(e.name));
    w.key("ph");
    w.value(std::string_view(&e.ph, 1));
    w.field("pid", e.pid);
    w.field("tid", e.tid);
    if (e.ph != 'M') w.field("ts", static_cast<std::uint64_t>(e.ts));
    if (e.ph == 'X') w.field("dur", static_cast<std::uint64_t>(e.dur));
    if (e.ph == 'i') w.field("s", "t");  // thread-scoped instant
    if (!e.arg_key.empty()) {
      w.key("args");
      w.begin_object();
      if (e.ph == 'M') {
        w.field(e.arg_key, std::string_view(e.arg_str));
      } else {
        w.field(e.arg_key, e.arg_u64);
      }
      w.end_object();
    }
    w.end_object();
  };
  for (const Event& e : metadata_) emit(e);
  for (const Event* e : ordered) emit(*e);
  w.end_array();
  w.field("displayTimeUnit", "ms");
  if (dropped_instants_ > 0) {
    w.field("droppedInstantEvents",
            static_cast<std::uint64_t>(dropped_instants_));
  }
  w.end_object();
  out << '\n';
}

}  // namespace hymm
