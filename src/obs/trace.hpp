/// @file
/// Cycle-domain trace emitter: buffers simulator events and
/// serializes them as Chrome trace-event JSON, the format Perfetto
/// (https://ui.perfetto.dev) and chrome://tracing open directly. One
/// simulated cycle maps to one microsecond of trace time, so cycle
/// numbers read directly off the Perfetto ruler.
///
/// Event kinds used:
///   "X" complete events — phase / region sub-phase durations
///   "C" counter events  — occupancy tracks (DMB lines, partial bytes,
///                         LSQ depth, SMQ backlog)
///   "i" instant events  — point occurrences (partial spills,
///                         evictions)
///   "M" metadata events — process/thread naming (one process per
///                         simulated run, so several runs share a file)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace hymm {

/// Buffers trace events during simulation and writes one Chrome
/// trace-event JSON document at the end.
class TraceWriter {
 public:
  /// Instant events beyond this many are dropped (a long run can evict
  /// millions of times; the trace stays openable). The drop count is
  /// recorded in the emitted metadata.
  static constexpr std::size_t kMaxInstantEvents = 1 << 18;

  /// Names a process group; subsequent events carry `pid`.
  void set_process_name(int pid, std::string name);
  /// Names a thread within process group `pid`.
  void set_thread_name(int pid, int tid, std::string name);

  /// Duration ("X") event spanning [begin, end] cycles.
  void duration(int pid, int tid, std::string name, Cycle begin, Cycle end);

  /// Counter ("C") sample: one series point on track `track`.
  void counter(int pid, std::string track, std::string series, Cycle ts,
               std::uint64_t value);

  /// Instant ("i") event.
  void instant(int pid, std::string name, Cycle ts);

  /// Number of buffered events (metadata excluded).
  std::size_t event_count() const { return events_.size(); }
  /// Instant events discarded past kMaxInstantEvents.
  std::size_t dropped_instants() const { return dropped_instants_; }

  /// Serializes {"traceEvents": [...]} with events stable-sorted by
  /// timestamp (metadata first), so `ts` is monotonically ordered.
  void write(std::ostream& out) const;

 private:
  struct Event {
    char ph = 'i';
    Cycle ts = 0;
    Cycle dur = 0;  // X only
    int pid = 0;
    int tid = 0;
    std::string name;
    std::string arg_key;    // C: series name; M: metadata arg
    std::uint64_t arg_u64 = 0;
    std::string arg_str;    // M only
  };

  std::vector<Event> events_;
  std::vector<Event> metadata_;
  std::size_t instant_count_ = 0;
  std::size_t dropped_instants_ = 0;
};

}  // namespace hymm
