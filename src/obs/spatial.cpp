#include "obs/spatial.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace hymm {

const char* spatial_region_key(SpatialRegion region) {
  switch (region) {
    case SpatialRegion::kOp:
      return "op";
    case SpatialRegion::kRwp:
      return "rwp";
    case SpatialRegion::kRegion3:
      return "region3";
    case SpatialRegion::kOther:
      return "other";
  }
  return "other";
}

ImbalanceStats compute_imbalance(std::span<const std::uint64_t> values) {
  ImbalanceStats s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  std::uint64_t total = 0;
  for (const std::uint64_t v : values) {
    total += v;
    s.max_value = std::max(s.max_value, v);
  }
  if (total == 0) {
    return s;
  }
  const double n = static_cast<double>(values.size());
  s.mean = static_cast<double>(total) / n;
  s.max_over_mean = static_cast<double>(s.max_value) / s.mean;

  double var = 0.0;
  for (const std::uint64_t v : values) {
    const double d = static_cast<double>(v) - s.mean;
    var += d * d;
  }
  s.cov = std::sqrt(var / n) / s.mean;

  // Gini via the sorted-rank identity:
  //   G = (2 * sum_i i * x_(i)) / (n * sum x) - (n + 1) / n
  // with 1-based ranks over ascending x. 0 for uniform work, -> 1 as
  // all work concentrates on one unit.
  std::vector<std::uint64_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
  }
  s.gini = 2.0 * weighted / (n * static_cast<double>(total)) - (n + 1.0) / n;
  if (s.gini < 0.0) {
    s.gini = 0.0;  // guard float round-off on uniform vectors
  }
  return s;
}

namespace {

std::uint64_t vector_sum(const std::vector<std::uint64_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
}

}  // namespace

NodeId spatial_tile_edge(NodeId nodes, NodeId tile_override) {
  NodeId tile = tile_override >= 2 ? tile_override : 0;
  if (tile == 0) {
    tile = static_cast<NodeId>(
        (nodes + SpatialTracker::kAutoGridSide - 1) /
        SpatialTracker::kAutoGridSide);
  }
  // Raise the tile edge until the grid fits kMaxGridSide per side —
  // bounds memory and report size on huge graphs and tiny overrides.
  const NodeId min_tile = static_cast<NodeId>(
      (nodes + SpatialTracker::kMaxGridSide - 1) /
      SpatialTracker::kMaxGridSide);
  return std::max<NodeId>({tile, min_tile, 1});
}

std::uint64_t SpatialData::grid_cycles() const {
  std::uint64_t total = 0;
  for (const SpatialTileCounters& r : regions) {
    total += vector_sum(r.cycles);
  }
  return total;
}

std::uint64_t SpatialData::grid_dram_bytes() const {
  std::uint64_t total = 0;
  for (const SpatialTileCounters& r : regions) {
    total += vector_sum(r.dram_bytes);
  }
  return total;
}

std::uint64_t SpatialData::grid_macs() const {
  std::uint64_t total = 0;
  for (const SpatialTileCounters& r : regions) {
    total += vector_sum(r.macs);
  }
  return total;
}

std::uint64_t SpatialData::grid_nnz() const {
  std::uint64_t total = 0;
  for (const SpatialTileCounters& r : regions) {
    total += vector_sum(r.nnz);
  }
  return total;
}

std::uint64_t SpatialData::grid_dmb_hits() const {
  std::uint64_t total = 0;
  for (const SpatialTileCounters& r : regions) {
    total += vector_sum(r.dmb_hits);
  }
  return total;
}

std::uint64_t SpatialData::grid_dmb_misses() const {
  std::uint64_t total = 0;
  for (const SpatialTileCounters& r : regions) {
    total += vector_sum(r.dmb_misses);
  }
  return total;
}

std::vector<std::uint64_t> SpatialData::row_band_cycles() const {
  std::vector<std::uint64_t> bands(grid_rows, 0);
  for (const SpatialTileCounters& r : regions) {
    if (r.cycles.empty()) {
      continue;
    }
    for (std::size_t row = 0; row < grid_rows; ++row) {
      for (std::size_t col = 0; col < grid_cols; ++col) {
        bands[row] += r.cycles[row * grid_cols + col];
      }
    }
  }
  return bands;
}

std::uint64_t SpatialData::region_nnz(SpatialRegion region) const {
  return vector_sum(regions[static_cast<std::size_t>(region)].nnz);
}

void SpatialTracker::begin(NodeId nodes, std::size_t pe_count) {
  if (!enabled_ || nodes == 0) {
    return;
  }
  data_ = SpatialData{};
  data_.nodes = nodes;

  const NodeId tile = spatial_tile_edge(nodes, tile_override_);
  data_.tile = tile;
  data_.grid_rows = (nodes + tile - 1) / tile;
  data_.grid_cols = data_.grid_rows;

  data_.lane_busy_cycles.assign(pe_count, 0);
  data_.lane_mac_ops.assign(pe_count, 0);

  focused_ = false;
  active_ = true;
}

void SpatialTracker::reset() {
  data_ = SpatialData{};
  focused_ = false;
  active_ = false;
}

std::size_t SpatialTracker::cell_index(NodeId row, NodeId col) const {
  HYMM_DCHECK(row < data_.nodes && col < data_.nodes);
  return (row / data_.tile) * data_.grid_cols + (col / data_.tile);
}

SpatialTileCounters& SpatialTracker::region_cells(SpatialRegion region) {
  SpatialTileCounters& r = data_.regions[static_cast<std::size_t>(region)];
  if (r.empty()) {
    const std::size_t cells = data_.grid_rows * data_.grid_cols;
    r.nnz.assign(cells, 0);
    r.macs.assign(cells, 0);
    r.dmb_hits.assign(cells, 0);
    r.dmb_misses.assign(cells, 0);
    r.dram_bytes.assign(cells, 0);
    r.cycles.assign(cells, 0);
  }
  return r;
}

void SpatialTracker::on_mac(NodeId row, NodeId col, SpatialRegion region,
                            bool first_chunk) {
  if (!active_) {
    return;
  }
  focused_ = true;
  focus_region_ = static_cast<std::size_t>(region);
  focus_cell_ = cell_index(row, col);
  SpatialTileCounters& r = region_cells(region);
  ++r.macs[focus_cell_];
  if (first_chunk) {
    ++r.nnz[focus_cell_];
  }
}

void SpatialTracker::unfocus() { focused_ = false; }

void SpatialTracker::on_pe_op(std::size_t lanes, bool is_mac) {
  if (!active_) {
    return;
  }
  ++data_.array_busy_cycles;
  const std::size_t n = std::min(lanes, data_.lane_busy_cycles.size());
  for (std::size_t i = 0; i < n; ++i) {
    ++data_.lane_busy_cycles[i];
    if (is_mac) {
      ++data_.lane_mac_ops[i];
    }
  }
}

void SpatialTracker::on_dram_bytes(std::uint64_t bytes) {
  if (!active_) {
    return;
  }
  if (focused_) {
    data_.regions[focus_region_].dram_bytes[focus_cell_] += bytes;
  } else {
    data_.residual_dram_bytes += bytes;
  }
}

void SpatialTracker::on_dmb_hit() {
  if (!active_) {
    return;
  }
  if (focused_) {
    ++data_.regions[focus_region_].dmb_hits[focus_cell_];
  } else {
    ++data_.residual_dmb_hits;
  }
}

void SpatialTracker::on_dmb_miss() {
  if (!active_) {
    return;
  }
  if (focused_) {
    ++data_.regions[focus_region_].dmb_misses[focus_cell_];
  } else {
    ++data_.residual_dmb_misses;
  }
}

void SpatialTracker::account_cycles(std::uint64_t n) {
  if (!active_) {
    return;
  }
  if (focused_) {
    data_.regions[focus_region_].cycles[focus_cell_] += n;
  } else {
    data_.residual_cycles += n;
  }
}

SpatialData SpatialTracker::take() {
  SpatialData out = std::move(data_);
  reset();
  return out;
}

}  // namespace hymm
