#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/table.hpp"
#include "obs/json.hpp"

namespace hymm {

namespace {

// Reads a "stalls" object into the map; returns the bucket sum.
double read_stalls(const JsonValue* stalls,
                   std::map<std::string, double>* out) {
  double total = 0.0;
  if (stalls == nullptr || !stalls->is_object()) return total;
  for (const auto& [cause, value] : stalls->object_members) {
    if (!value.is_number()) continue;
    (*out)[cause] = value.number_value;
    total += value.number_value;
  }
  return total;
}

// One phase from an object carrying a "stalls" member (a bench/2
// phase object or a run-report SimStats object). The phase's cycles
// are the stall-bucket sum — exactly the phase's simulated cycles by
// the accounting invariant, which is what makes the attribution rows
// sum exactly to the cycle delta.
PhaseBreakdown read_phase(const std::string& name, const JsonValue& obj) {
  PhaseBreakdown phase;
  phase.name = name;
  phase.cycles = read_stalls(obj.find("stalls"), &phase.stalls);
  return phase;
}

void read_region_phases(const JsonValue* regions, RunSnapshot* run) {
  for (std::size_t i = 0; i < regions->array_items.size(); ++i) {
    run->phases.push_back(read_phase("region" + std::to_string(i + 1),
                                     regions->array_items[i]));
  }
}

// Accumulates one region's per-cell array into `out` (resized to
// `cells` on first use; short or missing arrays contribute zeros).
void accumulate_cells(const JsonValue* arr, std::size_t cells,
                      std::vector<double>* out) {
  if (arr == nullptr || !arr->is_array()) return;
  if (out->size() != cells) out->assign(cells, 0.0);
  const std::size_t n = std::min(cells, arr->array_items.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (arr->array_items[i].is_number()) {
      (*out)[i] += arr->array_items[i].number_value;
    }
  }
}

// The /6 "spatial" object reduced to a region-summed tile grid of
// cycles and DRAM bytes. Malformed geometry yields an empty grid.
TileGrid read_tile_grid(const JsonValue* spatial) {
  TileGrid grid;
  if (spatial == nullptr || !spatial->is_object()) return grid;
  const auto rows = static_cast<std::size_t>(spatial->get_number("grid_rows"));
  const auto cols = static_cast<std::size_t>(spatial->get_number("grid_cols"));
  if (rows == 0 || cols == 0) return grid;
  grid.rows = rows;
  grid.cols = cols;
  grid.tile = spatial->get_number("tile");
  const std::size_t cells = rows * cols;
  grid.cycles.assign(cells, 0.0);
  grid.dram_bytes.assign(cells, 0.0);
  const JsonValue* regions = spatial->find("regions");
  if (regions != nullptr && regions->is_object()) {
    for (const auto& [name, region] : regions->object_members) {
      (void)name;
      if (!region.is_object()) continue;
      accumulate_cells(region.find("cycles"), cells, &grid.cycles);
      accumulate_cells(region.find("dram_bytes"), cells, &grid.dram_bytes);
    }
  }
  return grid;
}

std::optional<ReportSnapshot> normalize_run_report(const JsonValue& doc,
                                                   std::string* error) {
  ReportSnapshot report;
  report.schema = doc.get_string("schema");
  report.kind = "run-report";
  const JsonValue* results = doc.find("results");
  if (results == nullptr || !results->is_array()) {
    if (error != nullptr) *error = "run report has no \"results\" array";
    return std::nullopt;
  }
  for (const JsonValue& r : results->array_items) {
    RunSnapshot run;
    run.abbrev = r.get_string("abbrev");
    run.flow = r.get_string("flow");
    run.cycles = r.get_number("cycles");
    run.sim_wall_ms = r.get_number("sim_wall_ms");
    if (const JsonValue* stats = r.find("stats")) {
      run.skipped_cycles = stats->get_number("skipped_cycles");
    }
    if (const JsonValue* combination = r.find("combination")) {
      run.phases.push_back(read_phase("combination", *combination));
    }
    const JsonValue* regions = r.find("regions");
    if (regions != nullptr && regions->is_array() &&
        !regions->array_items.empty()) {
      // The hybrid's regions sum exactly to its aggregation phase;
      // the split is strictly more informative, so it replaces the
      // whole-phase row.
      read_region_phases(regions, &run);
    } else if (const JsonValue* aggregation = r.find("aggregation")) {
      run.phases.push_back(read_phase("aggregation", *aggregation));
    }
    run.tiles = read_tile_grid(r.find("spatial"));
    report.runs.push_back(std::move(run));
  }
  return report;
}

std::optional<ReportSnapshot> normalize_bench(const JsonValue& doc,
                                              std::string* error) {
  ReportSnapshot report;
  report.schema = doc.get_string("schema");
  report.kind = "bench";
  const JsonValue* runs = doc.find("runs");
  if (runs == nullptr || !runs->is_array()) {
    if (error != nullptr) *error = "bench snapshot has no \"runs\" array";
    return std::nullopt;
  }
  for (const JsonValue& r : runs->array_items) {
    RunSnapshot run;
    run.abbrev = r.get_string("abbrev");
    run.flow = r.get_string("flow");
    run.cycles = r.get_number("cycles");
    run.sim_wall_ms = r.get_number("sim_wall_ms");
    run.skipped_cycles = r.get_number("skipped_cycles");
    const JsonValue* combination = r.find("combination");
    const JsonValue* aggregation = r.find("aggregation");
    if (combination != nullptr || aggregation != nullptr) {
      // hymm-bench/2: per-phase breakdown.
      if (combination != nullptr) {
        run.phases.push_back(read_phase("combination", *combination));
      }
      const JsonValue* regions = r.find("regions");
      if (regions != nullptr && regions->is_array() &&
          !regions->array_items.empty()) {
        read_region_phases(regions, &run);
      } else if (aggregation != nullptr) {
        run.phases.push_back(read_phase("aggregation", *aggregation));
      }
    } else {
      // hymm-bench/1: only the whole-run stall vector exists.
      run.phases.push_back(read_phase("total", r));
    }
    report.runs.push_back(std::move(run));
  }
  return report;
}

}  // namespace

std::optional<ReportSnapshot> normalize_report(const JsonValue& doc,
                                               std::string* error) {
  const std::string schema = doc.get_string("schema");
  if (schema == "hymm-run-report/4" || schema == "hymm-run-report/5" ||
      schema == "hymm-run-report/6" || schema == "hymm-run-report/7" ||
      schema == "hymm-run-report/8") {
    return normalize_run_report(doc, error);
  }
  if (schema == "hymm-bench/1" || schema == "hymm-bench/2" ||
      schema == "hymm-bench/3") {
    return normalize_bench(doc, error);
  }
  if (error != nullptr) {
    *error = "unsupported schema \"" + schema + "\"";
  }
  return std::nullopt;
}

std::optional<ReportSnapshot> load_report(const std::string& path,
                                          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::optional<JsonValue> doc = json_parse(buffer.str());
  if (!doc.has_value()) {
    if (error != nullptr) *error = path + " is not valid JSON";
    return std::nullopt;
  }
  std::string inner;
  std::optional<ReportSnapshot> report = normalize_report(*doc, &inner);
  if (!report.has_value() && error != nullptr) {
    *error = path + ": " + inner;
  }
  return report;
}

std::vector<RunDiff> diff_reports(const ReportSnapshot& base,
                                  const ReportSnapshot& current) {
  std::vector<RunDiff> diffs;
  for (const RunSnapshot& b : base.runs) {
    const auto match =
        std::find_if(current.runs.begin(), current.runs.end(),
                     [&](const RunSnapshot& c) {
                       return c.abbrev == b.abbrev && c.flow == b.flow;
                     });
    if (match == current.runs.end()) continue;
    const RunSnapshot& c = *match;

    RunDiff diff;
    diff.abbrev = b.abbrev;
    diff.flow = b.flow;
    diff.base_cycles = b.cycles;
    diff.current_cycles = c.cycles;
    diff.sim_wall_ms_delta = c.sim_wall_ms - b.sim_wall_ms;
    diff.skipped_cycles_delta = c.skipped_cycles - b.skipped_cycles;

    // Union of (phase, cause) cells across both sides; a phase or
    // cause missing from one side contributes zero there, so the rows
    // still sum exactly to the cycle delta.
    std::map<std::pair<std::string, std::string>,
             std::pair<double, double>>
        cells;
    for (const PhaseBreakdown& phase : b.phases) {
      for (const auto& [cause, cycles] : phase.stalls) {
        cells[{phase.name, cause}].first += cycles;
      }
    }
    for (const PhaseBreakdown& phase : c.phases) {
      for (const auto& [cause, cycles] : phase.stalls) {
        cells[{phase.name, cause}].second += cycles;
      }
    }
    for (const auto& [key, values] : cells) {
      DiffRow row;
      row.phase = key.first;
      row.cause = key.second;
      row.base = values.first;
      row.current = values.second;
      row.delta = values.second - values.first;
      diff.rows.push_back(std::move(row));
    }
    std::stable_sort(diff.rows.begin(), diff.rows.end(),
                     [](const DiffRow& a, const DiffRow& b) {
                       return std::abs(a.delta) > std::abs(b.delta);
                     });

    // Spatial tile-grid delta ranking: only meaningful when both
    // sides attributed over the same geometry (otherwise cell indices
    // name different adjacency blocks).
    if (!b.tiles.empty() && c.tiles.rows == b.tiles.rows &&
        c.tiles.cols == b.tiles.cols && c.tiles.tile == b.tiles.tile) {
      const std::size_t cells = b.tiles.rows * b.tiles.cols;
      for (std::size_t i = 0; i < cells; ++i) {
        TileDiffRow row;
        row.row = i / b.tiles.cols;
        row.col = i % b.tiles.cols;
        row.base_cycles = b.tiles.cycles[i];
        row.current_cycles = c.tiles.cycles[i];
        row.cycle_delta = row.current_cycles - row.base_cycles;
        row.dram_bytes_delta =
            c.tiles.dram_bytes[i] - b.tiles.dram_bytes[i];
        if (row.cycle_delta == 0.0 && row.dram_bytes_delta == 0.0) {
          continue;
        }
        diff.tile_rows.push_back(row);
      }
      std::stable_sort(diff.tile_rows.begin(), diff.tile_rows.end(),
                       [](const TileDiffRow& a, const TileDiffRow& b) {
                         return std::abs(a.cycle_delta) >
                                std::abs(b.cycle_delta);
                       });
    }
    diffs.push_back(std::move(diff));
  }
  return diffs;
}

void print_diff(const std::vector<RunDiff>& diffs, std::ostream& out,
                std::size_t max_rows) {
  for (const RunDiff& diff : diffs) {
    const double delta = diff.cycle_delta();
    out << diff.abbrev << '/' << diff.flow << ": cycles "
        << static_cast<std::int64_t>(diff.base_cycles) << " -> "
        << static_cast<std::int64_t>(diff.current_cycles);
    if (diff.base_cycles > 0) {
      out << " (" << Table::fmt_percent(delta / diff.base_cycles, 2)
          << ')';
    }
    out << ", sim_wall_ms " << Table::fmt(diff.sim_wall_ms_delta, 1)
        << ", skipped_cycles "
        << static_cast<std::int64_t>(diff.skipped_cycles_delta) << '\n';
    std::string line;
    if (delta == 0.0) {
      out << "  no cycle delta\n";
    } else {
      Table table({"phase", "stall", "base", "current", "delta", "share"});
      std::size_t shown = 0;
      double omitted = 0.0;
      std::size_t omitted_rows = 0;
      for (const DiffRow& row : diff.rows) {
        if (row.delta == 0.0) continue;
        if (max_rows != 0 && shown >= max_rows) {
          omitted += row.delta;
          ++omitted_rows;
          continue;
        }
        ++shown;
        table.add_row({row.phase, row.cause,
                       std::to_string(static_cast<std::int64_t>(row.base)),
                       std::to_string(static_cast<std::int64_t>(row.current)),
                       std::to_string(static_cast<std::int64_t>(row.delta)),
                       Table::fmt_percent(row.delta / delta, 1)});
      }
      if (omitted_rows > 0) {
        table.add_row({"(other)", "-", "-", "-",
                       std::to_string(static_cast<std::int64_t>(omitted)),
                       Table::fmt_percent(omitted / delta, 1)});
      }
      std::ostringstream rendered;
      table.print(rendered);
      // Indent the table under the run header.
      std::istringstream lines(rendered.str());
      while (std::getline(lines, line)) out << "  " << line << '\n';
    }

    if (!diff.tile_rows.empty()) {
      out << "  spatial tiles with the largest cycle deltas:\n";
      Table tiles({"tile", "base", "current", "delta", "dram_bytes"});
      std::size_t shown = 0;
      for (const TileDiffRow& row : diff.tile_rows) {
        if (max_rows != 0 && shown >= max_rows) break;
        ++shown;
        tiles.add_row(
            {"(" + std::to_string(row.row) + "," + std::to_string(row.col) +
                 ")",
             std::to_string(static_cast<std::int64_t>(row.base_cycles)),
             std::to_string(static_cast<std::int64_t>(row.current_cycles)),
             std::to_string(static_cast<std::int64_t>(row.cycle_delta)),
             std::to_string(
                 static_cast<std::int64_t>(row.dram_bytes_delta))});
      }
      std::ostringstream tiles_rendered;
      tiles.print(tiles_rendered);
      std::istringstream tile_lines(tiles_rendered.str());
      while (std::getline(tile_lines, line)) out << "  " << line << '\n';
      if (diff.tile_rows.size() > shown) {
        out << "  (" << diff.tile_rows.size() - shown
            << " more tiles omitted)\n";
      }
    }
  }
}

}  // namespace hymm
