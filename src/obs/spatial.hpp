/// @file
/// Spatial attribution layer: answers
/// *where* cycles, DRAM bytes and DMB traffic go — per PE lane and per
/// adjacency-matrix tile — where the stall profiler (common/stall.hpp)
/// and the time-series sampler (obs/timeseries.hpp) only answer *when*
/// and *why*.
///
/// Model: the engines mark the adjacency coordinate of every retired
/// MAC as the tracker's *focus* (row-block x col-block tile plus the
/// hybrid region the nonzero belongs to). Every subsequent cycle, DRAM
/// line transfer and DMB hit/miss is attributed to the focused tile
/// until the next MAC moves the focus or the engine clears it (merge /
/// flush / drain work and the whole combination phase land in the
/// `residual` bucket instead, so the grid plus the residual always sum
/// to the run totals — DCHECKed in run_experiment). PE lanes are
/// modeled positionally: an op engaging L lanes busies lanes [0, L).
///
/// Determinism: focus only changes at engine retire events, which the
/// fast-forward contract never skips, so a quiescent span has constant
/// focus and `fast_forward_to` can bulk-attribute the whole span —
/// spatial counters are bit-identical under HYMM_NO_FASTFWD and at any
/// sweep thread count (one tracker per Observer, groups serialized).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace hymm {

/// Which engine pass touched a tile. Mirrors the hybrid partition
/// (docs/tuning.md): region 1 rows run OP, region 2 columns RWP with
/// resident features, region 3 the RWP remainder. Pure OP / pure RWP
/// aggregations attribute everything to kOp / kRwp; kOther holds
/// grid-resident work that is not a MAC stream (unused as a focus —
/// it is the serialization key for the residual bucket).
enum class SpatialRegion : std::uint8_t {
  kOp = 0,       ///< region-1 outer-product pass
  kRwp = 1,      ///< region-2 (hot columns) row-wise pass
  kRegion3 = 2,  ///< region-3 (remainder) row-wise pass
  kOther = 3,    ///< residual serialization key; never a focus
};

/// Number of SpatialRegion values.
inline constexpr std::size_t kSpatialRegionCount = 4;

/// Stable JSON/report key for a region ("op", "rwp", "region3",
/// "other").
const char* spatial_region_key(SpatialRegion region);

/// Per-tile counters for one region, row-major over the grid. Vectors
/// are either empty (region never touched) or grid_rows * grid_cols
/// long.
struct SpatialTileCounters {
  std::vector<std::uint64_t> nnz;         ///< adjacency nonzeros retired (first chunk)
  std::vector<std::uint64_t> macs;        ///< MAC ops retired (all feature chunks)
  std::vector<std::uint64_t> dmb_hits;    ///< DMB read+accumulate hits while focused
  std::vector<std::uint64_t> dmb_misses;  ///< DMB read+accumulate misses while focused
  std::vector<std::uint64_t> dram_bytes;  ///< DRAM line bytes (reads+writes) while focused
  std::vector<std::uint64_t> cycles;      ///< cycles attributed while focused

  bool empty() const { return macs.empty(); }  ///< region never touched
  bool operator==(const SpatialTileCounters&) const = default;  ///< memberwise
};

/// Load-imbalance analytics over one vector of per-unit work (per-PE
/// busy cycles, per-tile-row-band cycles, per-shard anything).
struct ImbalanceStats {
  std::size_t count = 0;          ///< number of units
  double mean = 0.0;              ///< mean work per unit
  std::uint64_t max_value = 0;    ///< heaviest unit
  double max_over_mean = 0.0;     ///< max / mean; 1.0 is perfectly balanced
  double cov = 0.0;               ///< coefficient of variation (stddev / mean)
  double gini = 0.0;              ///< Gini coefficient in [0, 1)

  bool operator==(const ImbalanceStats&) const = default;  ///< memberwise
};

/// max/mean, CoV and Gini of `values`. All ratios are 0 when the
/// vector is empty or sums to zero (no work means no imbalance).
ImbalanceStats compute_imbalance(std::span<const std::uint64_t> values);

/// Tile edge (in nodes) the spatial grid uses for an `nodes` x `nodes`
/// adjacency: the explicit override when >= 2, else ~nodes/32
/// (SpatialTracker::kAutoGridSide), always raised until the grid fits
/// kMaxGridSide per side. The per-tile dataflow router
/// (src/core/routing.hpp) sizes its routing grid with the same
/// function so routing maps and spatial heatmaps share tile
/// coordinates.
NodeId spatial_tile_edge(NodeId nodes, NodeId tile_override);

/// One run's spatial attribution, handed from the Observer's tracker
/// to ExperimentResult::spatial and serialized as the "spatial" object
/// of hymm-run-report/8 (docs/schemas.md).
struct SpatialData {
  NodeId nodes = 0;          ///< adjacency dimension the grid covers
  NodeId tile = 0;           ///< tile edge in nodes (rows == cols)
  std::size_t grid_rows = 0; ///< ceil(nodes / tile)
  std::size_t grid_cols = 0; ///< ceil(nodes / tile)

  /// Per-region tile grids, indexed by SpatialRegion. A region whose
  /// counters were never touched stays empty.
  std::array<SpatialTileCounters, kSpatialRegionCount> regions;

  /// Work that happened while no tile was focused: the combination
  /// phase, OP merge/flush streams, output writeback and end-of-phase
  /// drains. Keeping it explicit makes the conservation invariants
  /// exact: grid + residual == run totals.
  std::uint64_t residual_cycles = 0;
  std::uint64_t residual_dram_bytes = 0;   ///< unfocused DRAM bytes
  std::uint64_t residual_dmb_hits = 0;     ///< unfocused DMB hits
  std::uint64_t residual_dmb_misses = 0;   ///< unfocused DMB misses

  /// Per-PE-lane busy cycles (an op engaging L lanes busies [0, L)).
  std::vector<std::uint64_t> lane_busy_cycles;
  /// Per-PE-lane MAC op counts (merge adds busy a lane without a MAC).
  std::vector<std::uint64_t> lane_mac_ops;
  /// Array-level busy cycles (one per retired op); must equal
  /// SimStats::alu_busy_cycles — DCHECKed in run_experiment.
  std::uint64_t array_busy_cycles = 0;

  bool empty() const { return nodes == 0; }  ///< no grid was sized
  bool operator==(const SpatialData&) const = default;  ///< memberwise

  // Grid-wide sums across regions (conservation-invariant side).
  std::uint64_t grid_cycles() const;      ///< sum of tile cycles
  std::uint64_t grid_dram_bytes() const;  ///< sum of tile DRAM bytes
  std::uint64_t grid_macs() const;        ///< sum of tile MACs
  std::uint64_t grid_nnz() const;         ///< sum of tile nonzeros
  std::uint64_t grid_dmb_hits() const;    ///< sum of tile DMB hits
  std::uint64_t grid_dmb_misses() const;  ///< sum of tile DMB misses

  /// grid + residual == run cycles (conservation invariant).
  std::uint64_t total_cycles() const { return grid_cycles() + residual_cycles; }
  /// grid + residual == run DRAM bytes (conservation invariant).
  std::uint64_t total_dram_bytes() const {
    return grid_dram_bytes() + residual_dram_bytes;
  }

  /// Cycles summed per tile row band (across regions and columns);
  /// the per-row-band axis of the imbalance analytics.
  std::vector<std::uint64_t> row_band_cycles() const;

  /// Nonzeros summed per region (partition cross-check in tests).
  std::uint64_t region_nnz(SpatialRegion region) const;
};

/// Observer-owned spatial accumulator. Lifecycle mirrors TimeSeries:
/// constructed from ObserverOptions, reset by Observer::begin_run,
/// configured per layer by Accelerator::run_layer (spatial_begin) and
/// drained into the ExperimentResult by run_experiment (take).
class SpatialTracker {
 public:
  SpatialTracker() = default;  ///< disabled tracker
  /// Tracker honoring the --spatial knob and tile override.
  SpatialTracker(bool enabled, NodeId tile_override)
      : enabled_(enabled), tile_override_(tile_override) {}

  bool enabled() const { return enabled_; }  ///< collection requested
  /// True once begin() sized a grid for the current run.
  bool active() const { return active_; }

  /// Sizes the grid for one layer run of an `nodes` x `nodes`
  /// adjacency on a `pe_count`-lane array and clears all counters.
  /// Tile edge: the explicit override when >= 2, else ~nodes/32
  /// (clamped so the grid never exceeds kMaxGridSide per side).
  void begin(NodeId nodes, std::size_t pe_count);
  /// Drops all state; the tracker waits for the next begin().
  void reset();

  // --- Attribution hooks (all no-ops until begin()) ---

  /// A MAC retired for adjacency nonzero (row, col) in `region`:
  /// counts it and moves the focus to its tile. `first_chunk` marks
  /// the first feature chunk (== one adjacency nonzero).
  void on_mac(NodeId row, NodeId col, SpatialRegion region, bool first_chunk);
  /// Clears the focus: subsequent cycles/bytes land in the residual.
  void unfocus();

  /// One retired PE-array op engaging `lanes` lanes ([0, lanes)).
  void on_pe_op(std::size_t lanes, bool is_mac);

  void on_dram_bytes(std::uint64_t bytes);  ///< DRAM traffic while focused
  void on_dmb_hit();    ///< DMB hit while focused
  void on_dmb_miss();   ///< DMB miss while focused

  /// Attributes `n` cycles to the focused tile (or the residual).
  /// Called once per simulated cycle by run_phase and once per span by
  /// fast_forward_to — the focus is constant across a quiescent span,
  /// so the bulk charge is exact.
  void account_cycles(std::uint64_t n);

  const SpatialData& data() const { return data_; }  ///< live counters
  /// Hands the finished data over and deactivates until begin().
  SpatialData take();

  /// Grid clamp: tile is raised until ceil(nodes/tile) fits.
  static constexpr std::size_t kMaxGridSide = 128;
  /// Auto mode targets this many tiles per side.
  static constexpr std::size_t kAutoGridSide = 32;

 private:
  std::size_t cell_index(NodeId row, NodeId col) const;
  SpatialTileCounters& region_cells(SpatialRegion region);

  bool enabled_ = false;
  NodeId tile_override_ = 0;
  bool active_ = false;
  SpatialData data_;

  bool focused_ = false;
  std::size_t focus_region_ = 0;
  std::size_t focus_cell_ = 0;
};

}  // namespace hymm
