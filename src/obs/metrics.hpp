/// @file
/// Metrics registry: named counters, gauges and
/// fixed-bucket histograms that hardware component models update
/// through cheap macro-guarded hook points (see obs/hooks.hpp). The
/// registry is attribution-oriented — it answers "how many / how deep
/// / how big" questions the aggregate SimStats counters cannot, and
/// serializes into the JSON run report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace hymm {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }  ///< increment
  std::uint64_t value() const { return value_; }  ///< current count

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value plus the running maximum (high-water mark).
class Gauge {
 public:
  /// Records `v` and updates the high-water mark.
  void set(std::int64_t v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  std::int64_t value() const { return value_; }  ///< last written value
  std::int64_t max_value() const { return max_; }  ///< high-water mark

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

/// Fixed-bucket histogram over unsigned samples. `upper_bounds` are
/// inclusive bucket upper edges in increasing order; an implicit
/// overflow bucket catches everything above the last bound.
class Histogram {
 public:
  /// Fixes the bucket edges for the histogram's lifetime.
  explicit Histogram(std::vector<std::uint64_t> upper_bounds);

  void observe(std::uint64_t sample);  ///< records one sample

  std::uint64_t count() const { return count_; }  ///< samples observed
  std::uint64_t sum() const { return sum_; }  ///< sum of all samples
  double mean() const;  ///< sum / count, 0 when empty
  /// Inclusive bucket upper edges, as configured.
  const std::vector<std::uint64_t>& upper_bounds() const { return bounds_; }
  /// buckets().size() == upper_bounds().size() + 1 (overflow last).
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// Name-indexed instrument store. Handles returned by the accessors
/// stay valid for the registry's lifetime (node-based map), so hot
/// paths cache the pointer once and pay a bare increment per event.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);  ///< get-or-create by name
  Gauge& gauge(std::string_view name);      ///< get-or-create by name
  /// Creates the histogram on first use; later calls with the same
  /// name return the existing instance (bounds are fixed at creation).
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> upper_bounds);

  /// Lookup without creating; nullptr when absent.
  const Counter* find_counter(std::string_view name) const;
  /// Lookup without creating; nullptr when absent.
  const Gauge* find_gauge(std::string_view name) const;
  /// Lookup without creating; nullptr when absent.
  const Histogram* find_histogram(std::string_view name) const;

  /// True when no instrument has been created.
  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Nested {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// object (keys sorted — std::map iteration order).
  void write_json(JsonWriter& w) const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace hymm
