/// @file
/// Observability context: one Observer carries the metrics registry
/// and the trace writer for a set of simulated runs. Hardware
/// component models hold a nullable Observer* and report events
/// through the HYMM_OBS macro (obs/hooks.hpp); with no observer
/// attached the hooks cost one pointer compare, and the observer never
/// feeds back into timing, so simulated cycle counts are bit-identical
/// with observability on or off.
///
/// Naming scheme (documented in DESIGN.md "Observability"):
///   counters    <component>.<event>    e.g. dmb.evictions
///   gauges      <component>.<level>    e.g. lsq.depth
///   histograms  <component>.<dist>     e.g. smq.row_degree
///   trace tracks "DMB occupancy", "partial bytes", "LSQ depth",
///                "SMQ backlog"; phase spans on thread "phases",
///                region sub-phases on thread "regions".
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "common/stall.hpp"
#include "common/types.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/spatial.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace hymm {

/// What one Observer collects.
struct ObserverOptions {
  /// Collect trace events (the metrics registry is always on once an
  /// observer is attached).
  bool trace = false;
  /// Cycles between counter-track samples; bounds trace size on long
  /// runs. Sampling reads state, never mutates it.
  Cycle sample_interval = 64;
  /// Windowed time-series telemetry (obs/timeseries.hpp): snapshot the
  /// per-component gauges every timeseries_interval cycles. Off by
  /// default — the series rides --timeseries / HYMM_TIMESERIES.
  bool timeseries = false;
  Cycle timeseries_interval = 256;  ///< cycles between snapshots
  /// Spatial attribution (obs/spatial.hpp): per-PE-lane busy/MAC
  /// counters and the per-tile heatmap over the adjacency. Off by
  /// default — rides --spatial / HYMM_SPATIAL.
  bool spatial = false;
  /// Explicit tile edge in nodes; 0 picks ~nodes/32 automatically.
  NodeId spatial_tile = 0;
};

/// The observability context one set of runs reports into.
class Observer {
 public:
  /// Builds the registry, trace writer and trackers per `options`.
  explicit Observer(ObserverOptions options = {});

  MetricsRegistry& metrics() { return metrics_; }  ///< instrument store
  const MetricsRegistry& metrics() const { return metrics_; }  ///< instrument store
  TraceWriter& trace() { return trace_; }  ///< trace event buffer
  const TraceWriter& trace() const { return trace_; }  ///< trace event buffer

  bool tracing() const { return options_.trace; }  ///< trace collection on
  /// Cycles between counter-track samples.
  Cycle sample_interval() const { return options_.sample_interval; }

  /// Starts a new trace process group (one per simulated run, labelled
  /// e.g. "HyMM" or "RWP/cora") so several runs share one trace file.
  void begin_run(const std::string& label);
  int run_pid() const { return pid_; }  ///< current run's trace pid

  // --- Component hook points (cached handles; no map lookups) ---
  void on_dmb_eviction(Cycle now);   ///< DMB line evicted
  void on_partial_spill(Cycle now);  ///< partial-output line spilled
  void on_dmb_prefetch();            ///< DMB prefetch issued
  void on_lsq_forward();             ///< store-to-load forward
  void on_lsq_reject();              ///< LSQ allocation rejected
  void on_dram_read();               ///< DRAM read request issued
  void on_dram_write();              ///< DRAM write request issued
  void on_smq_refill();              ///< SMQ buffer refilled
  /// PE-array MAC retire; carries the engaged lane count so the
  /// spatial tracker can model per-lane busy/MAC occupancy.
  void on_pe_mac(std::size_t lanes);
  /// PE-array merge-add retire with the engaged lane count.
  void on_pe_merge(std::size_t lanes);
  /// DMB read/accumulate hit, attributed to the focused tile.
  void on_dmb_hit();
  /// DMB read/accumulate miss, attributed to the focused tile.
  void on_dmb_miss();
  void observe_row_degree(std::uint64_t nnz);  ///< smq.row_degree sample
  /// Merge-stage records outstanding (op.merge_queue_depth sample).
  void observe_merge_depth(std::uint64_t records_outstanding);
  /// Engine in-flight window occupancy sample.
  void observe_engine_window(std::uint64_t pending);

  // --- Per-run latency histograms (obs/histogram.hpp) ---
  /// LSQ load allocation -> data ready (forwards are never recorded:
  /// they are satisfied without a memory request).
  void observe_load_latency(Cycle cycles);
  /// DRAM read issue -> completion delivery.
  void observe_dram_read_latency(Cycle cycles);
  /// DMB MSHR allocation -> fill install.
  void observe_dmb_fill_latency(Cycle cycles);

  /// The current run's latency histograms.
  const RunHistograms& run_histograms() const { return run_hist_; }
  /// Hands the current run's histograms over and starts fresh ones
  /// (run_experiment moves them into the ExperimentResult).
  RunHistograms take_run_histograms();

  // --- Windowed time-series telemetry (obs/timeseries.hpp) ---
  bool timeseries_enabled() const { return options_.timeseries; }  ///< on?
  TimeSeries& timeseries() { return timeseries_; }  ///< live series
  const TimeSeries& timeseries() const { return timeseries_; }  ///< live series

  /// Records one scheduled sample (called by MemorySystem when a tick
  /// reaches TimeSeries::next_due(), and by the fast-forward replay
  /// for every due cycle inside a skipped span) and, when tracing,
  /// emits the windowed utilization counter tracks derived from the
  /// previous sample.
  void timeseries_record(const TimeSeriesSample& s);
  /// Off-schedule end-of-phase sample (deduplicated per cycle).
  void timeseries_force(const TimeSeriesSample& s);
  /// Hands the finished series over and resets the schedule.
  TimeSeriesData take_timeseries();

  // --- Spatial attribution (obs/spatial.hpp) ---
  bool spatial_enabled() const { return options_.spatial; }  ///< on?
  SpatialTracker& spatial() { return spatial_; }  ///< live tracker
  const SpatialTracker& spatial() const { return spatial_; }  ///< live tracker

  /// Sizes the tracker's grid for one layer run (called by
  /// Accelerator::run_layer once the adjacency dimension is known).
  void spatial_begin(NodeId nodes, std::size_t pe_count);
  /// Engine hook: a MAC retired for adjacency nonzero (row, col) in
  /// `region`; moves the tile focus.
  void spatial_mac(NodeId row, NodeId col, SpatialRegion region,
                   bool first_chunk);
  /// Engine hook: subsequent work is not tile-attributable (merge /
  /// flush / drain); lands in the residual bucket.
  void spatial_unfocus();
  /// Attributes `n` cycles to the focused tile (run_phase per cycle,
  /// fast_forward_to per skipped span).
  void spatial_cycles(std::uint64_t n);
  /// Hands the finished spatial data over (run_experiment moves it
  /// into the ExperimentResult).
  SpatialData take_spatial();

  /// Counter-track sample, called by MemorySystem every
  /// sample_interval cycles. `stall_cycles` is the cumulative
  /// per-cause cycle-accounting vector (kStallCauseCount entries).
  void sample_tracks(Cycle now, std::uint64_t dmb_lines,
                     std::uint64_t partial_bytes, std::uint64_t lsq_depth,
                     std::uint64_t smq_backlog,
                     std::span<const Cycle> stall_cycles);

  /// Duration event for a whole phase (combination/aggregation).
  void phase_span(const std::string& name, Cycle begin, Cycle end);
  /// Duration event for a hybrid region sub-phase.
  void region_span(const std::string& name, Cycle begin, Cycle end);

 private:
  // Emits the derived windowed counter tracks for one recorded
  // sample (trace builds only).
  void trace_timeseries_sample(const TimeSeriesSample& s);

  ObserverOptions options_;
  MetricsRegistry metrics_;
  TraceWriter trace_;
  TimeSeries timeseries_;
  SpatialTracker spatial_;
  RunHistograms run_hist_;
  TimeSeriesSample ts_prev_;
  bool ts_has_prev_ = false;
  int pid_ = 0;
  bool run_started_ = false;

  // Cached instrument handles (stable for the registry's lifetime).
  Counter* dmb_evictions_;
  Counter* dmb_partial_spills_;
  Counter* dmb_prefetches_;
  Counter* lsq_forwards_;
  Counter* lsq_rejects_;
  Counter* dram_reads_;
  Counter* dram_writes_;
  Counter* smq_refills_;
  Counter* pe_macs_;
  Counter* pe_merges_;
  Gauge* dmb_occupancy_gauge_;
  Gauge* partial_bytes_gauge_;
  Gauge* lsq_depth_gauge_;
  Gauge* smq_backlog_gauge_;
  std::array<Gauge*, kStallCauseCount> stall_gauges_{};
  Histogram* row_degree_;
  Histogram* merge_depth_;
  Histogram* engine_window_;
  Histogram* dmb_occupancy_hist_;
};

}  // namespace hymm
