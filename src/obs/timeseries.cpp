#include "obs/timeseries.hpp"

#include <utility>

#include "common/check.hpp"

namespace hymm {

TimeSeries::TimeSeries(Cycle interval, std::size_t capacity)
    : initial_interval_(interval), interval_(interval), capacity_(capacity) {
  HYMM_CHECK(interval > 0);
  HYMM_CHECK(capacity >= 2);
  samples_.reserve(capacity);
}

void TimeSeries::record(const TimeSeriesSample& s) {
  HYMM_DCHECK(s.cycle >= next_due_);
  append(s);
}

void TimeSeries::record_forced(const TimeSeriesSample& s) {
  if (has_last_ && s.cycle == last_cycle_) return;
  append(s);
}

void TimeSeries::append(const TimeSeriesSample& s) {
  HYMM_DCHECK(!has_last_ || s.cycle > last_cycle_);
  samples_.push_back(s);
  has_last_ = true;
  last_cycle_ = s.cycle;
  next_due_ = s.cycle + interval_;
  if (samples_.size() >= capacity_) {
    // Thin to every other sample and halve the rate (the decimation
    // SimStats::partial_timeline uses) — deterministic in the record
    // sequence, so fast-forward replay stays bit-identical.
    std::size_t out = 0;
    for (std::size_t i = 0; i < samples_.size(); i += 2) {
      samples_[out++] = samples_[i];
    }
    samples_.resize(out);
    interval_ *= 2;
  }
}

TimeSeriesData TimeSeries::take() {
  TimeSeriesData data;
  data.interval = interval_;
  data.samples = std::move(samples_);
  reset();
  return data;
}

void TimeSeries::reset() {
  samples_.clear();
  interval_ = initial_interval_;
  next_due_ = 0;
  has_last_ = false;
  last_cycle_ = 0;
}

}  // namespace hymm
