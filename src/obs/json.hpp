// Minimal JSON utilities for the observability layer: a streaming
// writer (used by the trace emitter and the run-report writer) and a
// strict well-formedness checker (used by tests to validate emitted
// documents). No external dependencies.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace hymm {

// Escapes `s` for embedding inside a JSON string literal (the
// surrounding quotes are not included).
std::string json_escape(std::string_view s);

// Strict recursive-descent well-formedness check of a complete JSON
// document (RFC 8259 values; no trailing garbage).
bool json_is_valid(std::string_view text);

// Streaming writer for nested JSON documents. The caller drives
// structure explicitly:
//
//   JsonWriter w(out);
//   w.begin_object();
//   w.field("cycles", std::uint64_t{42});
//   w.key("dram"); w.begin_object(); ... w.end_object();
//   w.end_object();
//
// Numbers that are not finite are emitted as null (JSON has no NaN).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = true);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  template <typename T>
  void field(std::string_view name, T v) {
    key(name);
    value(v);
  }

 private:
  void before_value();
  void indent();

  std::ostream& out_;
  bool pretty_;
  struct Level {
    bool first = true;
  };
  std::vector<Level> stack_;
  bool after_key_ = false;
};

}  // namespace hymm
