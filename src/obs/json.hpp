/// @file
/// Minimal JSON utilities for the observability layer: a streaming
/// writer (used by the trace emitter and the run-report writer), a
/// strict well-formedness checker (used by tests to validate emitted
/// documents) and a small value parser (used by the tuning cache to
/// read its own persisted files back). No external dependencies.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hymm {

/// Escapes `s` for embedding inside a JSON string literal (the
/// surrounding quotes are not included).
std::string json_escape(std::string_view s);

/// Strict recursive-descent well-formedness check of a complete JSON
/// document (RFC 8259 values; no trailing garbage).
bool json_is_valid(std::string_view text);

/// Parsed JSON value tree. Numbers are kept as doubles (every value
/// this repo persists — cycle counts included — fits a double's 53-bit
/// integer range; 64-bit hashes are persisted as hex *strings* for
/// exactly this reason). Object member order is preserved.
struct JsonValue {
  /// JSON value kinds (RFC 8259).
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;      ///< which alternative is active
  bool bool_value = false;      ///< payload for kBool
  double number_value = 0.0;    ///< payload for kNumber
  std::string string_value;     ///< payload for kString
  std::vector<JsonValue> array_items;  ///< payload for kArray
  /// Payload for kObject, in document order.
  std::vector<std::pair<std::string, JsonValue>> object_members;

  bool is_object() const { return kind == Kind::kObject; }  ///< kind test
  bool is_array() const { return kind == Kind::kArray; }    ///< kind test
  bool is_string() const { return kind == Kind::kString; }  ///< kind test
  bool is_number() const { return kind == Kind::kNumber; }  ///< kind test

  /// Object member lookup (first match); nullptr when absent or when
  /// this value is not an object.
  const JsonValue* find(std::string_view key) const;

  /// Typed member accessor: the fallback when the member is absent or
  /// has the wrong type.
  std::string get_string(std::string_view key,
                         const std::string& fallback = {}) const;
  /// Typed member accessor: the fallback when the member is absent or
  /// has the wrong type.
  double get_number(std::string_view key, double fallback = 0.0) const;
};

/// Parses a complete JSON document (same strict grammar json_is_valid
/// accepts; \uXXXX escapes are decoded to UTF-8). nullopt on any
/// syntax error or trailing garbage.
std::optional<JsonValue> json_parse(std::string_view text);

/// Streaming writer for nested JSON documents. The caller drives
/// structure explicitly:
///
///   JsonWriter w(out);
///   w.begin_object();
///   w.field("cycles", std::uint64_t{42});
///   w.key("dram"); w.begin_object(); ... w.end_object();
///   w.end_object();
///
/// Numbers that are not finite are emitted as null (JSON has no NaN).
class JsonWriter {
 public:
  /// Writes to `out`; `pretty` adds newlines and two-space indents.
  explicit JsonWriter(std::ostream& out, bool pretty = true);

  void begin_object();  ///< opens `{`
  void end_object();    ///< closes `}`
  void begin_array();   ///< opens `[`
  void end_array();     ///< closes `]`

  /// Emits an object key; the next value() is its member value.
  void key(std::string_view name);

  void value(std::string_view s);  ///< string value (escaped)
  void value(const char* s) { value(std::string_view(s)); }  ///< string value
  void value(double v);         ///< number; non-finite emits null
  void value(std::uint64_t v);  ///< unsigned integer value
  void value(std::int64_t v);   ///< signed integer value
  void value(int v) { value(static_cast<std::int64_t>(v)); }  ///< int value
  void value(bool v);  ///< boolean value
  void null();         ///< null value

  /// key(name) + value(v) in one call.
  template <typename T>
  void field(std::string_view name, T v) {
    key(name);
    value(v);
  }

 private:
  void before_value();
  void indent();

  std::ostream& out_;
  bool pretty_;
  struct Level {
    bool first = true;
  };
  std::vector<Level> stack_;
  bool after_key_ = false;
};

}  // namespace hymm
