/// @file
/// Hook-point macro for the hardware component models. Usage:
///
///   HYMM_OBS(obs_, on_dmb_eviction(now));
///
/// expands to a null-guarded call on the component's Observer*. With
/// no observer attached the cost is one pointer compare; compiling
/// with -DHYMM_OBS_DISABLED removes the hooks entirely (the
/// zero-overhead build). Hooks must only READ simulator state — they
/// are forbidden from feeding back into timing, which keeps cycle
/// counts bit-identical whether or not observability is enabled.
#pragma once

#include "obs/observer.hpp"

#ifndef HYMM_OBS_DISABLED
/// Null-guarded observer hook call: invokes `(obs_ptr)->call` when
/// `obs_ptr` is non-null; compiles to nothing with
/// -DHYMM_OBS_DISABLED.
#define HYMM_OBS(obs_ptr, call)            \
  do {                                     \
    if ((obs_ptr) != nullptr) {            \
      (obs_ptr)->call;                     \
    }                                      \
  } while (0)
#else
#define HYMM_OBS(obs_ptr, call) \
  do {                          \
  } while (0)
#endif
