/// @file
/// Windowed time-series telemetry: a
/// fixed-schedule sampler that snapshots per-component gauges and
/// cumulative counters every `interval` simulated cycles into a
/// capacity-bounded series. When the capacity is reached the series
/// thins to every other sample and doubles the interval (the same
/// decimation SimStats::partial_timeline uses), so memory stays
/// bounded for arbitrarily long runs.
///
/// Determinism contract: the sampling schedule is driven purely by the
/// simulated clock — MemorySystem records a sample whenever a tick
/// reaches next_due(), and MemorySystem::fast_forward_to replays every
/// due sample inside a skipped span with the exact per-cycle values
/// the legacy loop would have seen (a quiescent span only advances the
/// charged stall bucket by one per cycle; everything else is
/// constant). Series are therefore bit-identical between fast-forward
/// and HYMM_NO_FASTFWD runs, and across sweep thread counts (each run
/// has its own Observer-owned TimeSeries).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/stall.hpp"
#include "common/types.hpp"

namespace hymm {

/// One snapshot of the memory system: instantaneous occupancy gauges
/// plus cumulative counters (windowed rates — DMB hit rate, DRAM
/// bandwidth, ALU utilization, stall mix — are differences between
/// consecutive samples).
struct TimeSeriesSample {
  Cycle cycle = 0;  ///< simulated cycle the snapshot was taken at

  // Instantaneous gauges.
  std::uint64_t lsq_depth = 0;      ///< pending loads + stores
  std::uint64_t smq_backlog = 0;    ///< decoded entries awaiting consumption
  std::uint64_t dmb_lines = 0;      ///< resident buffer lines
  std::uint64_t partial_bytes = 0;  ///< live partial-output footprint

  // Cumulative counters (monotone within a run).
  std::uint64_t dmb_hits = 0;    ///< read + accumulate hits
  std::uint64_t dmb_misses = 0;  ///< read + accumulate misses
  std::uint64_t dram_bytes = 0;  ///< total DRAM traffic, all classes
  std::uint64_t alu_busy_cycles = 0;  ///< cumulative busy PE cycles
  std::uint64_t mac_ops = 0;          ///< cumulative retired MACs
  std::array<Cycle, kStallCauseCount> stall_cycles{};  ///< cycle accounting

  /// Configured DRAM peak (constant per run; carried so trace emission
  /// can derive bandwidth utilization without reaching into config).
  std::uint64_t dram_peak_bytes_per_cycle = 0;

  bool operator==(const TimeSeriesSample&) const = default;  ///< memberwise
};

/// A finished series as stored in an ExperimentResult and the JSON run
/// report ("timeseries" object, since schema hymm-run-report/5).
struct TimeSeriesData {
  Cycle interval = 0;  ///< final sampling interval (after decimation)
  std::vector<TimeSeriesSample> samples;  ///< increasing cycle order
  bool empty() const { return samples.empty(); }  ///< no samples
};

/// The live ring-buffered series one Observer owns. The schedule is
/// explicit (next_due / interval) so MemorySystem can drive sampling
/// from both the per-cycle tick path and the fast-forward replay path.
class TimeSeries {
 public:
  /// Default maximum sample count before decimation kicks in.
  static constexpr std::size_t kDefaultCapacity = 512;

  /// Samples every `interval` cycles into at most `capacity` slots.
  explicit TimeSeries(Cycle interval = 256,
                      std::size_t capacity = kDefaultCapacity);

  /// Next cycle at or after which a sample is due.
  Cycle next_due() const { return next_due_; }
  Cycle interval() const { return interval_; }  ///< current interval

  /// Appends a sample (requires s.cycle >= next_due()) and advances the
  /// schedule to s.cycle + interval(). Thins to every other sample and
  /// doubles the interval when the capacity is reached.
  void record(const TimeSeriesSample& s);

  /// Off-schedule sample (end of a phase): records `s` unless a sample
  /// for the same cycle was already taken, then realigns the schedule.
  void record_forced(const TimeSeriesSample& s);

  /// Samples recorded so far, increasing cycle order.
  const std::vector<TimeSeriesSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }  ///< no samples yet

  /// Moves the series out (for an ExperimentResult) and resets the
  /// schedule for the next run.
  TimeSeriesData take();

  /// Clears samples and restores the initial interval and schedule.
  void reset();

 private:
  void append(const TimeSeriesSample& s);

  Cycle initial_interval_;
  Cycle interval_;
  Cycle next_due_ = 0;
  std::size_t capacity_;
  std::vector<TimeSeriesSample> samples_;
  bool has_last_ = false;
  Cycle last_cycle_ = 0;  // last recorded cycle (survives thinning)
};

}  // namespace hymm
