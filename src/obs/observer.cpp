#include "obs/observer.hpp"

#include <cstdio>
#include <utility>

namespace hymm {

namespace {

std::vector<std::uint64_t> pow2_bounds(std::uint64_t lo, std::uint64_t hi) {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = lo; b <= hi; b *= 2) bounds.push_back(b);
  return bounds;
}

}  // namespace

Observer::Observer(ObserverOptions options)
    : options_(options),
      timeseries_(options.timeseries_interval > 0
                      ? options.timeseries_interval
                      : Cycle{1}),
      spatial_(options.spatial, options.spatial_tile) {
  dmb_evictions_ = &metrics_.counter("dmb.evictions");
  dmb_partial_spills_ = &metrics_.counter("dmb.partial_spills");
  dmb_prefetches_ = &metrics_.counter("dmb.prefetches");
  lsq_forwards_ = &metrics_.counter("lsq.forwards");
  lsq_rejects_ = &metrics_.counter("lsq.load_rejects");
  dram_reads_ = &metrics_.counter("dram.reads");
  dram_writes_ = &metrics_.counter("dram.writes");
  smq_refills_ = &metrics_.counter("smq.refills");
  pe_macs_ = &metrics_.counter("pe.mac_ops");
  pe_merges_ = &metrics_.counter("pe.merge_adds");
  dmb_occupancy_gauge_ = &metrics_.gauge("dmb.occupancy_lines");
  partial_bytes_gauge_ = &metrics_.gauge("partial.bytes");
  lsq_depth_gauge_ = &metrics_.gauge("lsq.depth");
  smq_backlog_gauge_ = &metrics_.gauge("smq.backlog");
  for (std::size_t i = 0; i < kStallCauseCount; ++i) {
    stall_gauges_[i] = &metrics_.gauge(
        std::string("stall.") +
        stall_cause_key(static_cast<StallCause>(i)));
  }
  // Row degree spans isolated nodes (0–1) to social-network hubs.
  row_degree_ = &metrics_.histogram("smq.row_degree", pow2_bounds(1, 4096));
  merge_depth_ =
      &metrics_.histogram("op.merge_queue_depth", pow2_bounds(1, 1 << 20));
  engine_window_ =
      &metrics_.histogram("engine.window_occupancy", pow2_bounds(1, 256));
  dmb_occupancy_hist_ =
      &metrics_.histogram("dmb.set_occupancy", pow2_bounds(16, 1 << 16));
}

void Observer::begin_run(const std::string& label) {
  if (run_started_) ++pid_;
  run_started_ = true;
  // Per-run instruments start clean even if the previous run's series
  // was never taken (e.g. a driver that only wanted the trace).
  timeseries_.reset();
  spatial_.reset();
  run_hist_ = RunHistograms{};
  ts_has_prev_ = false;
  if (!options_.trace) return;
  trace_.set_process_name(pid_, label);
  trace_.set_thread_name(pid_, 0, "phases");
  trace_.set_thread_name(pid_, 1, "regions");
}

void Observer::on_dmb_eviction(Cycle now) {
  dmb_evictions_->add();
  if (options_.trace) trace_.instant(pid_, "eviction", now);
}

void Observer::on_partial_spill(Cycle now) {
  dmb_partial_spills_->add();
  if (options_.trace) trace_.instant(pid_, "partial spill", now);
}

void Observer::on_dmb_prefetch() { dmb_prefetches_->add(); }
void Observer::on_lsq_forward() { lsq_forwards_->add(); }
void Observer::on_lsq_reject() { lsq_rejects_->add(); }

void Observer::on_dram_read() {
  dram_reads_->add();
  // Every DRAM transfer moves exactly one line; attributing here
  // keeps the tile-grid byte sum exact by construction.
  spatial_.on_dram_bytes(kLineBytes);
}

void Observer::on_dram_write() {
  dram_writes_->add();
  spatial_.on_dram_bytes(kLineBytes);
}

void Observer::on_smq_refill() { smq_refills_->add(); }

void Observer::on_pe_mac(std::size_t lanes) {
  pe_macs_->add();
  spatial_.on_pe_op(lanes, /*is_mac=*/true);
}

void Observer::on_pe_merge(std::size_t lanes) {
  pe_merges_->add();
  spatial_.on_pe_op(lanes, /*is_mac=*/false);
}

void Observer::on_dmb_hit() { spatial_.on_dmb_hit(); }
void Observer::on_dmb_miss() { spatial_.on_dmb_miss(); }

void Observer::observe_row_degree(std::uint64_t nnz) {
  row_degree_->observe(nnz);
}

void Observer::observe_merge_depth(std::uint64_t records_outstanding) {
  merge_depth_->observe(records_outstanding);
}

void Observer::observe_engine_window(std::uint64_t pending) {
  engine_window_->observe(pending);
}

void Observer::observe_load_latency(Cycle cycles) {
  run_hist_.lsq_load_latency.observe(cycles);
}

void Observer::observe_dram_read_latency(Cycle cycles) {
  run_hist_.dram_read_latency.observe(cycles);
}

void Observer::observe_dmb_fill_latency(Cycle cycles) {
  run_hist_.dmb_fill_latency.observe(cycles);
}

RunHistograms Observer::take_run_histograms() {
  RunHistograms out = std::move(run_hist_);
  run_hist_ = RunHistograms{};
  return out;
}

void Observer::timeseries_record(const TimeSeriesSample& s) {
  timeseries_.record(s);
  trace_timeseries_sample(s);
}

void Observer::timeseries_force(const TimeSeriesSample& s) {
  if (ts_has_prev_ && s.cycle == ts_prev_.cycle) return;
  timeseries_.record_forced(s);
  trace_timeseries_sample(s);
}

TimeSeriesData Observer::take_timeseries() {
  ts_has_prev_ = false;
  return timeseries_.take();
}

void Observer::spatial_begin(NodeId nodes, std::size_t pe_count) {
  spatial_.begin(nodes, pe_count);
}

void Observer::spatial_mac(NodeId row, NodeId col, SpatialRegion region,
                           bool first_chunk) {
  spatial_.on_mac(row, col, region, first_chunk);
}

void Observer::spatial_unfocus() { spatial_.unfocus(); }

void Observer::spatial_cycles(std::uint64_t n) {
  spatial_.account_cycles(n);
}

SpatialData Observer::take_spatial() { return spatial_.take(); }

void Observer::trace_timeseries_sample(const TimeSeriesSample& s) {
  if (options_.trace) {
    trace_.counter(pid_, "TS LSQ depth", "entries", s.cycle, s.lsq_depth);
    trace_.counter(pid_, "TS SMQ backlog", "entries", s.cycle,
                   s.smq_backlog);
    trace_.counter(pid_, "TS DMB lines", "lines", s.cycle, s.dmb_lines);
    trace_.counter(pid_, "TS partial bytes", "bytes", s.cycle,
                   s.partial_bytes);
    if (ts_has_prev_ && s.cycle > ts_prev_.cycle) {
      // Windowed rates over the span since the previous sample. The
      // trace keeps its own prev copy so storage decimation in the
      // TimeSeries never changes what the counter tracks show.
      const double span =
          static_cast<double>(s.cycle - ts_prev_.cycle);
      const std::uint64_t hits = s.dmb_hits - ts_prev_.dmb_hits;
      const std::uint64_t misses = s.dmb_misses - ts_prev_.dmb_misses;
      const double hit_rate =
          (hits + misses) == 0
              ? 0.0
              : 100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses);
      trace_.counter(pid_, "TS DMB hit rate", "%", s.cycle, hit_rate);
      trace_.counter(pid_, "TS ALU util", "%", s.cycle,
                     100.0 *
                         static_cast<double>(s.alu_busy_cycles -
                                             ts_prev_.alu_busy_cycles) /
                         span);
      if (s.dram_peak_bytes_per_cycle > 0) {
        trace_.counter(
            pid_, "TS DRAM BW util", "%", s.cycle,
            100.0 *
                static_cast<double>(s.dram_bytes - ts_prev_.dram_bytes) /
                (span *
                 static_cast<double>(s.dram_peak_bytes_per_cycle)));
      }
    }
  }
  ts_prev_ = s;
  ts_has_prev_ = true;
}

void Observer::sample_tracks(Cycle now, std::uint64_t dmb_lines,
                             std::uint64_t partial_bytes,
                             std::uint64_t lsq_depth,
                             std::uint64_t smq_backlog,
                             std::span<const Cycle> stall_cycles) {
  dmb_occupancy_gauge_->set(static_cast<std::int64_t>(dmb_lines));
  partial_bytes_gauge_->set(static_cast<std::int64_t>(partial_bytes));
  lsq_depth_gauge_->set(static_cast<std::int64_t>(lsq_depth));
  smq_backlog_gauge_->set(static_cast<std::int64_t>(smq_backlog));
  dmb_occupancy_hist_->observe(dmb_lines);
  for (std::size_t i = 0;
       i < stall_cycles.size() && i < stall_gauges_.size(); ++i) {
    stall_gauges_[i]->set(static_cast<std::int64_t>(stall_cycles[i]));
  }
  if (!options_.trace) return;
  trace_.counter(pid_, "DMB occupancy", "lines", now, dmb_lines);
  trace_.counter(pid_, "partial bytes", "bytes", now, partial_bytes);
  trace_.counter(pid_, "LSQ depth", "entries", now, lsq_depth);
  trace_.counter(pid_, "SMQ backlog", "entries", now, smq_backlog);
  // One cumulative counter series per stall bucket: in the Perfetto
  // UI the slope of "stall <cause>" is the fraction of cycles that
  // cause is costing right now.
  for (std::size_t i = 0;
       i < stall_cycles.size() && i < stall_gauges_.size(); ++i) {
    trace_.counter(pid_,
                   std::string("stall ") +
                       stall_cause_key(static_cast<StallCause>(i)),
                   "cycles", now, stall_cycles[i]);
  }
  if (spatial_.active()) {
    // One cumulative counter per PE lane: in the Perfetto UI the
    // slope of "PE NN busy" is that lane's utilization right now.
    const std::vector<std::uint64_t>& lanes =
        spatial_.data().lane_busy_cycles;
    char name[16];
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      std::snprintf(name, sizeof name, "PE %02zu busy", i);
      trace_.counter(pid_, name, "cycles", now, lanes[i]);
    }
  }
}

void Observer::phase_span(const std::string& name, Cycle begin, Cycle end) {
  run_hist_.phase_cycles.observe(end - begin);
  if (options_.trace) trace_.duration(pid_, 0, name, begin, end);
}

void Observer::region_span(const std::string& name, Cycle begin, Cycle end) {
  run_hist_.phase_cycles.observe(end - begin);
  if (options_.trace) trace_.duration(pid_, 1, name, begin, end);
}

}  // namespace hymm
