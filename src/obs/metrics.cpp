#include "obs/metrics.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hymm {

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {
  HYMM_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be increasing");
}

void Histogram::observe(std::uint64_t sample) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += sample;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(
    std::string_view name, std::vector<std::uint64_t> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::string(name), Histogram(std::move(upper_bounds)))
      .first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c.value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name);
    w.begin_object();
    w.field("value", g.value());
    w.field("max", g.max_value());
    w.end_object();
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("mean", h.mean());
    w.key("upper_bounds");
    w.begin_array();
    for (const std::uint64_t b : h.upper_bounds()) w.value(b);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (const std::uint64_t b : h.buckets()) w.value(b);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace hymm
