#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/flags.hpp"

namespace hymm {

std::vector<SweepCell> SweepSpec::cells() const {
  std::vector<SweepCell> cells;
  const std::size_t dataset_count = datasets.size() + workloads.size();
  cells.reserve(dataset_count * configs.size() * flows.size());
  HYMM_CHECK_MSG(!configs.empty(), "SweepSpec with no configs");
  HYMM_CHECK_MSG(!flows.empty(), "SweepSpec with no flows");
  HYMM_CHECK_MSG(dataset_count > 0, "SweepSpec with no workloads");
  HYMM_CHECK_MSG(routes.empty() || routes.size() == configs.size(),
                 "SweepSpec.routes must be empty or parallel to configs");
  const auto expand = [&](const DatasetSpec& spec, double effective_scale,
                          std::shared_ptr<const PreparedWorkload> prepared) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      for (const Dataflow flow : flows) {
        SweepCell cell;
        cell.index = cells.size();
        cell.spec = spec;
        cell.scale = effective_scale;
        cell.seed = seed;
        cell.config_index = c;
        cell.config = configs[c];
        cell.flow = flow;
        cell.prepared = prepared;
        if (!routes.empty()) cell.route = routes[c];
        cells.push_back(std::move(cell));
      }
    }
  };
  for (const DatasetSpec& spec : datasets) {
    expand(spec, scale.value_or(default_scale(spec)), nullptr);
  }
  for (const std::shared_ptr<const PreparedWorkload>& prepared : workloads) {
    HYMM_CHECK(prepared != nullptr);
    expand(prepared->workload().spec, prepared->workload().scale, prepared);
  }
  return cells;
}

unsigned resolve_thread_count(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("HYMM_THREADS")) {
    const unsigned parsed = static_cast<unsigned>(
        parse_u64_value("HYMM_THREADS", env, 0, 4096));
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const unsigned workers = std::min<unsigned>(
      resolve_thread_count(threads), static_cast<unsigned>(count));
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options)) {}

SweepRun SweepRunner::run(const SweepSpec& spec) {
  const std::vector<SweepCell> cells = spec.cells();

  SweepRun run;
  run.cells.resize(cells.size());

  // --- Group cells (one Observer + serial execution per group) ---
  std::unordered_map<std::string, std::size_t> group_index;
  for (const SweepCell& cell : cells) {
    const std::string key = options_.group_key
                                ? options_.group_key(cell)
                                : "cell:" + std::to_string(cell.index);
    const auto [it, inserted] =
        group_index.emplace(key, run.groups.size());
    if (inserted) run.groups.push_back(SweepGroup{key, {}, nullptr});
    run.groups[it->second].cells.push_back(cell.index);
  }

  // --- Execute groups on a worker pool ---
  std::mutex start_mutex;
  const auto run_group = [&](SweepGroup& group) {
    if (options_.observe) {
      group.observer = std::make_shared<Observer>(options_.observer_options);
    }
    if (options_.on_group_start) {
      const std::lock_guard<std::mutex> lock(start_mutex);
      options_.on_group_start(cells[group.cells.front()]);
    }
    for (const std::size_t index : group.cells) {
      const SweepCell& cell = cells[index];
      const std::shared_ptr<const PreparedWorkload> prepared =
          cell.prepared != nullptr
              ? cell.prepared
              : cache_.get(cell.spec, cell.scale, cell.seed);
      if (group.observer != nullptr) {
        group.observer->begin_run(to_string(cell.flow) + "/" +
                                  prepared->workload().spec.abbrev);
      }
      ExperimentRequest request;
      request.workload = &prepared->workload();
      request.a_hat = &prepared->a_hat();
      request.weights = &prepared->weights();
      request.reference = &prepared->reference();
      request.flow = cell.flow;
      request.config = cell.config;
      request.observer = group.observer.get();
      request.checkpoints = options_.checkpoints;
      request.sample = options_.sample;
      request.sample_seed = cell.seed;
      if (cell.flow == Dataflow::kHybrid) {
        request.sort = &prepared->sort();
        request.sorted_features = &prepared->sorted_features();
        request.route = cell.route.get();
      }
      SweepCellResult& slot = run.cells[index];
      slot.cell = cell;
      slot.scaled_spec = prepared->workload().spec;
      slot.result = run_experiment(request);
    }
  };

  const unsigned threads = std::min<unsigned>(
      resolve_thread_count(options_.threads),
      static_cast<unsigned>(run.groups.size()));
  if (threads <= 1) {
    for (SweepGroup& group : run.groups) run_group(group);
    return run;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto worker = [&] {
    for (;;) {
      const std::size_t gi = next.fetch_add(1);
      if (gi >= run.groups.size()) return;
      try {
        run_group(run.groups[gi]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return run;
}

}  // namespace hymm
