#include "sweep/workload_cache.hpp"

#include <sstream>
#include <utility>

namespace hymm {

PreparedWorkload::PreparedWorkload(const DatasetSpec& spec, double scale,
                                   std::uint64_t seed)
    : PreparedWorkload(build_workload(spec, scale, seed), seed) {}

PreparedWorkload::PreparedWorkload(GcnWorkload workload, std::uint64_t seed)
    : workload_(std::move(workload)),
      seed_(seed),
      a_hat_(normalize_adjacency(workload_.adjacency)),
      // Same seed derivation compare_dataflows has always used, so
      // cached sweeps reproduce the historical cycle counts exactly.
      weights_(DenseMatrix::random(workload_.features.cols(),
                                   workload_.spec.layer_dim, seed + 7)),
      golden_(gcn_layer_reference(a_hat_, workload_.features, weights_,
                                  /*apply_relu=*/false)) {}

void PreparedWorkload::ensure_sorted() const {
  std::call_once(sort_once_, [this] {
    sort_ = degree_sort(a_hat_);
    sorted_features_ = permute_feature_rows(workload_.features, sort_.perm);
  });
}

const DegreeSortResult& PreparedWorkload::sort() const {
  ensure_sorted();
  return sort_;
}

const CsrMatrix& PreparedWorkload::sorted_features() const {
  ensure_sorted();
  return sorted_features_;
}

std::string WorkloadCache::key_of(const DatasetSpec& spec, double scale,
                                  std::uint64_t seed) {
  // The spec's identity fields all feed build_workload, so they all
  // key the cache (two same-abbrev specs with edited stats differ).
  std::ostringstream oss;
  oss << spec.abbrev << '|' << spec.name << '|' << spec.nodes << '|'
      << spec.edges << '|' << spec.feature_length << '|' << spec.layer_dim
      << '|' << spec.feature_sparsity << '|' << scale << '|' << seed;
  return oss.str();
}

std::shared_ptr<const PreparedWorkload> WorkloadCache::get(
    const DatasetSpec& spec, double scale, std::uint64_t seed) {
  const std::string key = key_of(spec, scale, seed);
  std::shared_ptr<Entry> entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<Entry>& slot = entries_[key];
    if (slot == nullptr) slot = std::make_shared<Entry>();
    entry = slot;
  }
  // The build runs outside the map lock so distinct keys build in
  // parallel; call_once serializes same-key callers onto one build
  // (and retries on a failed/throwing build).
  std::call_once(entry->once, [&] {
    entry->value =
        std::make_shared<const PreparedWorkload>(spec, scale, seed);
    builds_.fetch_add(1);
  });
  return entry->value;
}

}  // namespace hymm
