/// @file
/// Parallel sweep executor: runs independent (dataset, scale,
/// dataflow, config, seed) simulation cells concurrently and
/// deterministically. A SweepSpec describes the grid, SweepRunner
/// schedules cells onto worker threads (HYMM_THREADS; 1 = the serial
/// path), and results come back in stable grid order with per-cell
/// cycles and counters bit-identical to a serial run regardless of
/// thread count — each cell simulates on private state, sharing only
/// the immutable PreparedWorkload from the WorkloadCache.
///
/// Observability: observers are never shared across threads. Cells
/// mapping to the same group key share one Observer and run serially
/// in grid order on one worker (e.g. one trace file per dataset); by
/// default every cell is its own group, giving full parallelism.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/runner.hpp"
#include "obs/observer.hpp"
#include "sweep/workload_cache.hpp"

namespace hymm {

/// One point of the grid. `index` is the cell's position in stable
/// grid order (dataset-major, then config, then flow).
struct SweepCell {
  std::size_t index = 0;             ///< position in stable grid order
  DatasetSpec spec;                  ///< pre-scaling registry spec
  double scale = 1.0;                ///< effective scale
  std::uint64_t seed = 42;           ///< workload seed
  std::size_t config_index = 0;      ///< position in SweepSpec::configs
  AcceleratorConfig config;          ///< hardware parameters for this cell
  Dataflow flow = Dataflow::kRowWiseProduct;  ///< dataflow for this cell
  /// Pre-built workload (set when the spec came from
  /// SweepSpec::workloads); null cells build through the cache.
  std::shared_ptr<const PreparedWorkload> prepared;
  /// Per-tile routing map for this cell's config
  /// (SweepSpec::routes[config_index]); null = global split. Hybrid
  /// cells forward it to ExperimentRequest::route.
  std::shared_ptr<const TileRoutingMap> route;
};

/// The grid: datasets x configs x flows at one (scale, seed). The
/// workload axis is either registry specs (built and cached on
/// demand) or pre-built workloads (e.g. loaded from an edge list);
/// when both are given the prepared workloads follow the specs.
struct SweepSpec {
  std::vector<DatasetSpec> datasets;  ///< registry workload axis
  std::vector<std::shared_ptr<const PreparedWorkload>> workloads;  ///< pre-built workload axis
  std::vector<AcceleratorConfig> configs = {AcceleratorConfig{}};  ///< config axis
  /// Dataflow axis; defaults to all three.
  std::vector<Dataflow> flows = {Dataflow::kOuterProduct,
                                 Dataflow::kRowWiseProduct,
                                 Dataflow::kHybrid};
  /// Per-config routing maps (core/routing.hpp), parallel to
  /// `configs`: routes[i] is attached to every cell of configs[i]
  /// (null entries and an empty vector mean the global split). This
  /// is how the TileRouter's measured mode races a routed candidate
  /// against the global one through the executor.
  std::vector<std::shared_ptr<const TileRoutingMap>> routes;
  /// Scale applied to every dataset; nullopt selects each dataset's
  /// default_scale. Ignored for pre-built workloads.
  std::optional<double> scale;
  std::uint64_t seed = 42;  ///< workload seed for every cell

  /// Expands the grid in stable order (dataset-major, config, flow).
  std::vector<SweepCell> cells() const;
};

/// One cell plus its simulation outcome.
struct SweepCellResult {
  SweepCell cell;           ///< the grid point that produced this
  DatasetSpec scaled_spec;  ///< post-scaling spec (workload.spec)
  ExperimentResult result;  ///< the simulated metrics
};

/// Cells that shared one Observer (ran serially on one worker), in
/// grid order of their first cell. `observer` is null unless
/// SweepOptions::observe was set.
struct SweepGroup {
  std::string key;                 ///< the group_key the cells mapped to
  std::vector<std::size_t> cells;  ///< indices into SweepRun::cells
  std::shared_ptr<Observer> observer;  ///< shared instrument; may be null
};

/// Everything a sweep produced.
struct SweepRun {
  std::vector<SweepCellResult> cells;  ///< stable grid order
  std::vector<SweepGroup> groups;      ///< observer/serialization groups
};

/// Execution knobs for SweepRunner.
struct SweepOptions {
  /// Worker threads. 0 = auto: HYMM_THREADS when set (validated;
  /// UsageError on garbage), else std::thread::hardware_concurrency.
  /// 1 runs everything on the calling thread (today's serial path).
  unsigned threads = 0;
  /// Create one Observer per group (metrics + optional trace).
  bool observe = false;
  ObserverOptions observer_options;  ///< instruments for each group observer
  /// Maps a cell to its observer/serialization group; cells with equal
  /// keys run serially in grid order sharing one Observer. Default:
  /// every cell is its own group.
  std::function<std::string(const SweepCell&)> group_key;
  /// Called (under a lock, from worker threads, in completion order)
  /// when a group starts simulating — progress reporting.
  std::function<void(const SweepCell& first_cell)> on_group_start;
  /// Optional warm-state checkpoint store (sim/checkpoint.hpp),
  /// shared across every cell and worker: cells whose combination
  /// workload matches simulate that phase once and restore its end
  /// state bit-identically. Cells with observers skip checkpointing
  /// on their own. The store must outlive run().
  CheckpointStore* checkpoints = nullptr;
  /// Sampled-simulation fraction applied to every cell (0 = exact
  /// runs; see core/sampling.hpp). Sampled cells extrapolate with
  /// error bars, are never functionally verified, and ignore
  /// observers and checkpoints.
  double sample = 0.0;
};

/// Resolves a requested thread count: 0 = HYMM_THREADS env (strictly
/// validated) falling back to hardware_concurrency; always >= 1.
unsigned resolve_thread_count(unsigned requested);

/// Runs body(i) for every i in [0, count) on up to `threads` workers
/// (0 = resolve_thread_count's auto policy; 1 = the calling thread).
/// Indices are claimed from an atomic counter, so the set of calls —
/// and therefore the result — is independent of the schedule as long
/// as body(i) writes only to its own index-i slot (the same
/// discipline SweepRunner follows; the serving cost library builds
/// its per-class simulations through this). Worker exceptions are
/// rethrown on the calling thread (the first one wins).
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& body);

/// Schedules a SweepSpec grid onto worker threads (see file comment
/// for the determinism and observer-group rules).
class SweepRunner {
 public:
  /// Captures the options; threads spin up per run() call.
  explicit SweepRunner(SweepOptions options = {});

  /// Runs every cell of the grid; returns when all cells finished.
  /// Worker exceptions are rethrown on the calling thread.
  SweepRun run(const SweepSpec& spec);

  /// The cache workloads are built through (shared across run()s).
  WorkloadCache& cache() { return cache_; }

 private:
  SweepOptions options_;
  WorkloadCache cache_;
};

}  // namespace hymm
