/// @file
/// Shared, immutable workload state for sweeps. Every (spec, scale,
/// seed) cell of a sweep needs the same synthetic workload, normalized
/// adjacency, weight matrix, golden reference and (for the hybrid)
/// degree sort — building them once and sharing them read-only across
/// worker threads is what makes a dataset x dataflow x config grid
/// cheap. See DESIGN.md "Sweep executor".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/datasets.hpp"
#include "graph/degree_sort.hpp"
#include "linalg/gcn.hpp"

namespace hymm {

/// One fully-built workload, immutable after construction (the lazy
/// degree sort is internally synchronized). Always held by shared_ptr
/// so concurrent sweep cells can alias it safely.
class PreparedWorkload {
 public:
  /// Builds the synthetic workload for a registry spec.
  PreparedWorkload(const DatasetSpec& spec, double scale,
                   std::uint64_t seed);
  /// Wraps an externally-built workload (e.g. loaded from an edge
  /// list); computes a_hat, weights and the golden reference from it.
  PreparedWorkload(GcnWorkload workload, std::uint64_t seed);

  PreparedWorkload(const PreparedWorkload&) = delete;  ///< not copyable: alias via shared_ptr
  PreparedWorkload& operator=(const PreparedWorkload&) = delete;  ///< not copyable

  const GcnWorkload& workload() const { return workload_; }  ///< the input graph + features
  const CsrMatrix& a_hat() const { return a_hat_; }           ///< normalized adjacency
  const DenseMatrix& weights() const { return weights_; }     ///< seed-derived layer weights
  /// Golden pre-activation layer output (the verification reference).
  const DenseMatrix& reference() const { return golden_.aggregation; }
  const GcnLayerResult& golden() const { return golden_; }    ///< full golden layer result
  std::uint64_t seed() const { return seed_; }                ///< seed the build used

  /// The hybrid's degree-sorting preprocessing, built on first use
  /// (homogeneous-only sweeps never pay for it) and thread-safe:
  /// concurrent callers block until the single build finishes.
  const DegreeSortResult& sort() const;
  const CsrMatrix& sorted_features() const;

 private:
  void ensure_sorted() const;

  GcnWorkload workload_;
  std::uint64_t seed_ = 0;
  CsrMatrix a_hat_;
  DenseMatrix weights_;
  GcnLayerResult golden_;

  mutable std::once_flag sort_once_;
  mutable DegreeSortResult sort_;
  mutable CsrMatrix sorted_features_;
};

/// Thread-safe cache of PreparedWorkloads keyed on (spec, scale,
/// seed): concurrent get() calls for the same key block on one build
/// (never duplicate it) and share the result immutably.
class WorkloadCache {
 public:
  /// The workload for (spec, scale, seed), building it exactly once.
  std::shared_ptr<const PreparedWorkload> get(const DatasetSpec& spec,
                                              double scale,
                                              std::uint64_t seed);

  /// Number of workloads actually built (for tests: stays 1 per key no
  /// matter how many threads ask).
  std::size_t build_count() const { return builds_.load(); }

  /// The cache key get() files a workload under.
  static std::string key_of(const DatasetSpec& spec, double scale,
                            std::uint64_t seed);

 private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const PreparedWorkload> value;
  };

  std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::atomic<std::size_t> builds_{0};
};

}  // namespace hymm
