/// @file
/// Unified bench configuration: the knobs every bench binary and
/// hymm_sim share, parsed once from the environment and --key=value
/// args instead of each binary re-reading getenv.
///
///   env                 flag               meaning
///   HYMM_DATASETS       --datasets=CR,AP   subset of Table II workloads
///   HYMM_FULL_DATASETS  --full-datasets    simulate FR/YP at full size
///   HYMM_SCALE          --scale=0.1        scale override (0 < s <= 1)
///   HYMM_TRACE_DIR      --trace-dir=DIR    Perfetto trace per dataset
///   HYMM_JSON_DIR       --json-dir=DIR     JSON run report per dataset
///   HYMM_TIMESERIES     --timeseries[=N]   windowed telemetry every N
///                                          cycles (bare flag / "1" =
///                                          256; "0" = off)
///   HYMM_SPATIAL        --spatial[=TILE]   per-PE / per-tile spatial
///                                          attribution (bare flag /
///                                          "1" = auto tile size;
///                                          N >= 2 = a TILE-node tile
///                                          edge; "0" = off)
///   HYMM_THREADS        --threads=N        sweep workers (0 = auto)
///                       --seed=N           workload seed (default 42)
///   HYMM_AUTOTUNE       --autotune[=MODE]  partition auto-tuner mode:
///                                          off|analytic|measured (bare
///                                          --autotune = measured);
///                                          mutually exclusive with a
///                                          tiles --route mode
///   HYMM_ROUTE          --route[=MODE]     per-tile dataflow routing:
///                                          global|tiles|tiles:analytic|
///                                          tiles:measured (bare --route
///                                          and "tiles" = tiles:analytic)
///   HYMM_TUNE_CACHE     --tune-cache=FILE  hymm-tune-cache/2 file the
///                                          tuner and tile router persist
///                                          decisions in
///   HYMM_ARRIVAL_RATE   --arrival-rate=R   serving: open-loop Poisson
///                                          arrival rate in requests per
///                                          second of modeled time
///   HYMM_REQUESTS       --requests=N       serving: arrivals to generate
///   HYMM_BATCH          --batch=B          serving: max requests batched
///                                          behind one weight fetch
///   HYMM_QUEUE_CAP      --queue-cap=N      serving: bounded queue
///                                          capacity (excess arrivals
///                                          are dropped)
///   HYMM_REUSE          --reuse=0|1        serving: inter-layer XW
///                                          buffer reuse on/off
///   HYMM_SAMPLE         --sample[=F]       sampled simulation: simulate
///                                          a seeded fraction F of tile
///                                          bands per phase and
///                                          extrapolate (0 < F <= 1;
///                                          bare --sample = 0.25;
///                                          "0" = off)
///   HYMM_CHECKPOINT_DIR --checkpoint-dir=D warm-state checkpoint
///                                          directory (sim/checkpoint);
///                                          created if missing, must be
///                                          writable
///
/// Flags accept "--flag value" and "--flag=value" and win over the
/// environment. Unknown dataset tokens and malformed numbers fail
/// fast with a UsageError naming the bad value — no silent fallback.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/flags.hpp"
#include "graph/datasets.hpp"

namespace hymm {

/// The bench/driver knobs shared by every binary, parsed once from
/// HYMM_* environment variables and --key=value arguments. Flags win
/// over the environment; every value is validated up front (a bad one
/// throws UsageError naming it — no silent fallback).
struct BenchOptions {
  std::vector<DatasetSpec> datasets;  ///< resolved selection; never empty
  /// Whether the user narrowed the selection (HYMM_DATASETS or
  /// --datasets); binaries that default to a dataset subset honour an
  /// explicit selection instead.
  bool datasets_explicit = false;
  std::optional<double> scale;        ///< nullopt = per-dataset default
  bool full_datasets = false;         ///< simulate FR/YP at full size
  std::string trace_dir;              ///< Perfetto trace dir; empty = off
  std::string json_dir;               ///< JSON report dir; empty = off
  /// Windowed time-series sampling interval in cycles; 0 = off. Bare
  /// --timeseries (or HYMM_TIMESERIES=1) selects the default 256.
  std::uint64_t timeseries_interval = 0;
  /// Spatial attribution (obs/spatial.hpp): 0 = off, 1 = on with an
  /// automatically sized tile grid, N >= 2 = on with an N-node tile
  /// edge. Bare --spatial (or HYMM_SPATIAL=1) selects auto sizing.
  std::uint64_t spatial_tile = 0;
  unsigned threads = 0;               ///< 0 = HYMM_THREADS/auto
  std::uint64_t seed = 42;
  /// Partition auto-tuner (src/tune/): how hybrid cells pick their
  /// tiling threshold. kOff keeps the config's fixed value. A
  /// non-kOff mode combined with a tiles route mode is a UsageError:
  /// the router tunes the global threshold itself, so the combination
  /// would be ambiguous.
  AutotuneMode autotune = AutotuneMode::kOff;
  /// Per-tile dataflow routing (src/tune/router.hpp): how hybrid
  /// cells split the adjacency. kGlobal keeps the paper's 3-region
  /// partition; the tiles modes build a TileRoutingMap per workload.
  RouteMode route = RouteMode::kGlobal;
  /// Tune-cache file (hymm-tune-cache/2); empty = in-memory only.
  /// Shared by the threshold tuner and the tile router.
  std::string tune_cache;

  // --- Serving knobs (src/serve/; consumed by serve_bench) ---
  /// Open-loop Poisson arrival rate in requests per second of modeled
  /// time at the config's clock; 0 = the binary's default. Strictly
  /// positive when given.
  double arrival_rate = 0.0;
  /// Number of arrivals the request generator produces; 0 = the
  /// binary's default.
  std::uint64_t requests = 0;
  /// Maximum requests batched behind one weight fetch; 0 = the
  /// binary's default.
  std::uint64_t batch = 0;
  /// Bounded request-queue capacity (waiting requests; arrivals
  /// beyond it are dropped); 0 = the binary's default.
  std::uint64_t queue_capacity = 0;
  /// Inter-layer XW buffer reuse in the serving model; nullopt = the
  /// binary's default (on).
  std::optional<bool> serve_reuse;

  /// Sampled-simulation fraction (core/sampling.hpp): 0 = exact mode,
  /// otherwise the fraction of tile bands simulated per phase
  /// (0 < sample <= 1). Bare --sample selects the default 0.25.
  /// Out-of-range values throw UsageError — no clamping.
  double sample = 0.0;
  /// Warm-state checkpoint directory (sim/checkpoint.hpp); empty =
  /// checkpointing off. Validated at parse time: the directory is
  /// created if missing and probed for writability; an unwritable path
  /// throws UsageError naming it.
  std::string checkpoint_dir;

  /// Effective scale for one dataset: the override, else 1.0 under
  /// --full-datasets, else the dataset's bench default.
  double scale_for(const DatasetSpec& spec) const;
  /// True when any observer-backed output was requested (trace or
  /// report dirs, the windowed time-series, or spatial attribution).
  bool observing() const {
    return !trace_dir.empty() || !json_dir.empty() ||
           timeseries_interval > 0 || spatial_tile > 0;
  }

  /// getenv-shaped hook so tests can inject an environment.
  using EnvGetter = std::function<const char*(const char*)>;

  /// Testable core. Parses `args` (argv[1..]) and the HYMM_* variables
  /// via `env`; throws UsageError on any bad value. When `unrecognized`
  /// is non-null, flags this parser doesn't own (plus their would-be
  /// values) are passed through in order for the caller to handle;
  /// when null an unknown flag is an error.
  static BenchOptions parse(const std::vector<std::string>& args,
                            const EnvGetter& env,
                            std::vector<std::string>* unrecognized = nullptr);

  /// main() entry point: ::getenv + argv; prints the UsageError to
  /// stderr and exits 2 on a bad flag or environment value.
  static BenchOptions from_env_and_args(
      int argc, char** argv, std::vector<std::string>* unrecognized = nullptr);
};

}  // namespace hymm
