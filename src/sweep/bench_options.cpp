#include "sweep/bench_options.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace hymm {

namespace {

// Splits a comma-separated dataset list; every non-empty token must
// name a registry dataset (abbreviation or full name).
std::vector<DatasetSpec> parse_dataset_list(const std::string& source,
                                            const std::string& value) {
  std::vector<DatasetSpec> selected;
  std::stringstream ss(value);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    const std::optional<DatasetSpec> spec = find_dataset(token);
    if (!spec) {
      std::ostringstream oss;
      oss << "unknown dataset '" << token << "' in " << source
          << " (expected";
      for (const DatasetSpec& d : paper_datasets()) oss << ' ' << d.abbrev;
      oss << ")";
      throw UsageError(oss.str());
    }
    selected.push_back(*spec);
  }
  return selected;
}

double parse_scale(const std::string& source, const std::string& value) {
  const double scale = parse_double_value(source, value, 0.0, 1.0);
  if (scale == 0.0) {
    throw UsageError("invalid value '" + value + "' for " + source +
                     " (must be > 0)");
  }
  return scale;
}

bool env_truthy(const char* value) {
  return value != nullptr && value[0] == '1';
}

AutotuneMode parse_autotune(const std::string& source,
                            const std::string& value) {
  const std::optional<AutotuneMode> mode = parse_autotune_mode(value);
  if (!mode) {
    throw UsageError("invalid value '" + value + "' for " + source +
                     " (expected off, analytic or measured)");
  }
  return *mode;
}

RouteMode parse_route(const std::string& source, const std::string& value) {
  const std::optional<RouteMode> mode = parse_route_mode(value);
  if (!mode) {
    throw UsageError("invalid value '" + value + "' for " + source +
                     " (expected global, tiles, tiles:analytic or "
                     "tiles:measured)");
  }
  return *mode;
}

// "0" = off, "1" = on at the default 256-cycle interval, N >= 2 = a
// custom interval of N cycles.
std::uint64_t parse_timeseries(const std::string& source,
                               const std::string& value) {
  const std::uint64_t n = parse_u64_value(source, value, 0);
  return n == 1 ? 256 : n;
}

// "0" = off, "1" = on with auto tile sizing, N >= 2 = on with an
// N-node tile edge (obs/spatial.hpp clamps the resulting grid).
std::uint64_t parse_spatial(const std::string& source,
                            const std::string& value) {
  return parse_u64_value(source, value, 0);
}

// Strictly positive arrival rate (requests per second of modeled
// time); an open-loop generator with rate 0 would never arrive.
double parse_arrival_rate(const std::string& source,
                          const std::string& value) {
  const double rate = parse_double_value(source, value, 0.0, 1e12);
  if (rate <= 0.0) {
    throw UsageError("invalid value '" + value + "' for " + source +
                     " (must be > 0)");
  }
  return rate;
}

// "0" = exact mode, otherwise a fraction in (0, 1] of tile bands to
// simulate per phase. No clamping: 1.5 or -0.2 are errors.
double parse_sample(const std::string& source, const std::string& value) {
  const double fraction = parse_double_value(source, value, 0.0, 1.0);
  // parse_double_value already rejects values outside [0, 1]; the only
  // in-range value that is not a legal fraction is handled by 0 = off.
  return fraction;
}

// Validates a checkpoint directory eagerly: create it if missing and
// probe writability with a temp file, so a bad --checkpoint-dir fails
// at startup naming the path instead of silently running cold.
std::string parse_checkpoint_dir(const std::string& source,
                                 const std::string& value) {
  if (value.empty()) {
    throw UsageError("invalid value '' for " + source +
                     " (expected a directory path)");
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(value, ec);
  const fs::path probe =
      fs::path(value) / ".hymm_ckpt_probe";
  bool writable = false;
  {
    std::ofstream out(probe, std::ios::binary | std::ios::trunc);
    out << 'x';
    out.close();
    writable = out.good();
  }
  fs::remove(probe, ec);
  if (!writable) {
    throw UsageError("invalid value '" + value + "' for " + source +
                     " (directory is not writable)");
  }
  return value;
}

}  // namespace

double BenchOptions::scale_for(const DatasetSpec& spec) const {
  if (scale) return *scale;
  if (full_datasets) return 1.0;
  return default_scale(spec);
}

BenchOptions BenchOptions::parse(const std::vector<std::string>& args,
                                 const EnvGetter& env,
                                 std::vector<std::string>* unrecognized) {
  BenchOptions options;

  // --- Environment first (flags override below) ---
  if (const char* v = env("HYMM_DATASETS")) {
    options.datasets = parse_dataset_list("HYMM_DATASETS", v);
  }
  if (const char* v = env("HYMM_SCALE")) {
    options.scale = parse_scale("HYMM_SCALE", v);
  }
  options.full_datasets = env_truthy(env("HYMM_FULL_DATASETS"));
  if (const char* v = env("HYMM_TRACE_DIR")) options.trace_dir = v;
  if (const char* v = env("HYMM_JSON_DIR")) options.json_dir = v;
  if (const char* v = env("HYMM_TIMESERIES")) {
    options.timeseries_interval = parse_timeseries("HYMM_TIMESERIES", v);
  }
  if (const char* v = env("HYMM_SPATIAL")) {
    options.spatial_tile = parse_spatial("HYMM_SPATIAL", v);
  }
  if (const char* v = env("HYMM_THREADS")) {
    options.threads = static_cast<unsigned>(
        parse_u64_value("HYMM_THREADS", v, 0, 4096));
  }
  if (const char* v = env("HYMM_AUTOTUNE")) {
    options.autotune = parse_autotune("HYMM_AUTOTUNE", v);
  }
  if (const char* v = env("HYMM_ROUTE")) {
    options.route = parse_route("HYMM_ROUTE", v);
  }
  if (const char* v = env("HYMM_TUNE_CACHE")) options.tune_cache = v;
  if (const char* v = env("HYMM_ARRIVAL_RATE")) {
    options.arrival_rate = parse_arrival_rate("HYMM_ARRIVAL_RATE", v);
  }
  if (const char* v = env("HYMM_REQUESTS")) {
    options.requests = parse_u64_value("HYMM_REQUESTS", v, 1, 100'000'000);
  }
  if (const char* v = env("HYMM_BATCH")) {
    options.batch = parse_u64_value("HYMM_BATCH", v, 1, 4096);
  }
  if (const char* v = env("HYMM_QUEUE_CAP")) {
    options.queue_capacity =
        parse_u64_value("HYMM_QUEUE_CAP", v, 1, 1u << 20);
  }
  if (const char* v = env("HYMM_REUSE")) {
    options.serve_reuse = parse_u64_value("HYMM_REUSE", v, 0, 1) != 0;
  }
  if (const char* v = env("HYMM_SAMPLE")) {
    options.sample = parse_sample("HYMM_SAMPLE", v);
  }
  if (const char* v = env("HYMM_CHECKPOINT_DIR")) {
    options.checkpoint_dir = parse_checkpoint_dir("HYMM_CHECKPOINT_DIR", v);
  }

  // --- --key=value / --key value flags ---
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string arg = args[i];
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('=');
        eq != std::string::npos && arg.rfind("--", 0) == 0) {
      inline_value = arg.substr(eq + 1);
      arg.resize(eq);
    }
    const auto next = [&]() -> std::string {
      if (inline_value && !inline_value->empty()) return *inline_value;
      if (inline_value || i + 1 >= args.size()) {
        throw UsageError("missing value for " + arg);
      }
      return args[++i];
    };
    if (arg == "--datasets") {
      options.datasets = parse_dataset_list("--datasets", next());
    } else if (arg == "--scale") {
      options.scale = parse_scale("--scale", next());
    } else if (arg == "--full-datasets") {
      options.full_datasets = true;
    } else if (arg == "--trace-dir") {
      options.trace_dir = next();
    } else if (arg == "--json-dir") {
      options.json_dir = next();
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(
          parse_u64_value("--threads", next(), 0, 4096));
    } else if (arg == "--seed") {
      options.seed = parse_u64_value("--seed", next(), 0);
    } else if (arg == "--timeseries") {
      // Value optional: bare --timeseries means the default interval
      // (never consumes the following argument).
      options.timeseries_interval = parse_timeseries(
          "--timeseries", inline_value ? *inline_value : "1");
    } else if (arg == "--spatial") {
      // Value optional: bare --spatial means auto tile sizing (never
      // consumes the following argument).
      options.spatial_tile =
          parse_spatial("--spatial", inline_value ? *inline_value : "1");
    } else if (arg == "--autotune") {
      // Value optional: bare --autotune means the full measured
      // search (never consumes the following argument).
      options.autotune = parse_autotune(
          "--autotune", inline_value ? *inline_value : "measured");
    } else if (arg == "--route") {
      // Value optional: bare --route means tiles:analytic (never
      // consumes the following argument).
      options.route =
          parse_route("--route", inline_value ? *inline_value : "tiles");
    } else if (arg == "--tune-cache") {
      options.tune_cache = next();
    } else if (arg == "--arrival-rate") {
      options.arrival_rate = parse_arrival_rate("--arrival-rate", next());
    } else if (arg == "--requests") {
      options.requests =
          parse_u64_value("--requests", next(), 1, 100'000'000);
    } else if (arg == "--batch") {
      options.batch = parse_u64_value("--batch", next(), 1, 4096);
    } else if (arg == "--queue-cap") {
      options.queue_capacity =
          parse_u64_value("--queue-cap", next(), 1, 1u << 20);
    } else if (arg == "--reuse") {
      options.serve_reuse = parse_u64_value("--reuse", next(), 0, 1) != 0;
    } else if (arg == "--sample") {
      // Value optional: bare --sample means the default 0.25 fraction
      // (never consumes the following argument).
      options.sample = parse_sample(
          "--sample", inline_value ? *inline_value : "0.25");
    } else if (arg == "--checkpoint-dir") {
      options.checkpoint_dir = parse_checkpoint_dir("--checkpoint-dir", next());
    } else if (unrecognized != nullptr) {
      // Pass the flag through untouched (original spelling), plus any
      // following non-flag tokens that may be its values.
      unrecognized->push_back(args[i]);
      while (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
        unrecognized->push_back(args[++i]);
      }
    } else {
      throw UsageError("unknown argument " + args[i]);
    }
  }

  if (options.route != RouteMode::kGlobal &&
      options.autotune != AutotuneMode::kOff) {
    throw UsageError(
        "--route=" + to_string(options.route) + " conflicts with --autotune=" +
        to_string(options.autotune) +
        " (the tile router tunes the global threshold itself; drop one)");
  }
  options.datasets_explicit = !options.datasets.empty();
  if (options.datasets.empty()) options.datasets = paper_datasets();
  return options;
}

BenchOptions BenchOptions::from_env_and_args(
    int argc, char** argv, std::vector<std::string>* unrecognized) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<std::size_t>(argc) - 1 : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  try {
    return parse(
        args, [](const char* name) { return std::getenv(name); },
        unrecognized);
  } catch (const UsageError& e) {
    std::cerr << e.what() << "\n";
    std::exit(2);
  }
}

}  // namespace hymm
