#include "linalg/gcn.hpp"

#include <cmath>

#include "common/check.hpp"
#include "linalg/spdemm.hpp"

namespace hymm {

CsrMatrix normalize_adjacency(const CsrMatrix& adjacency,
                              bool add_self_loops) {
  HYMM_CHECK(adjacency.rows() == adjacency.cols());
  const NodeId n = adjacency.rows();
  CooMatrix coo = adjacency.to_coo();
  if (add_self_loops) {
    for (NodeId i = 0; i < n; ++i) coo.add(i, i, 1.0f);
    coo.sort_and_merge();
  }
  // Degree = row sum of |values| (unit-weight graphs: the degree).
  std::vector<double> degree(n, 0.0);
  for (const Triplet& t : coo.entries()) degree[t.row] += std::abs(t.value);
  std::vector<double> inv_sqrt(n, 0.0);
  for (NodeId i = 0; i < n; ++i) {
    inv_sqrt[i] = degree[i] > 0.0 ? 1.0 / std::sqrt(degree[i]) : 0.0;
  }
  CooMatrix normalized(n, n);
  for (const Triplet& t : coo.entries()) {
    const auto v = static_cast<Value>(t.value * inv_sqrt[t.row] *
                                      inv_sqrt[t.col]);
    normalized.add(t.row, t.col, v);
  }
  return CsrMatrix::from_coo(std::move(normalized));
}

void relu_inplace(DenseMatrix& m) {
  for (NodeId r = 0; r < m.rows(); ++r) {
    for (Value& v : m.row(r)) {
      if (v < 0.0f) v = 0.0f;
    }
  }
}

CsrMatrix dense_to_csr(const DenseMatrix& m) {
  CooMatrix coo(m.rows(), m.cols());
  for (NodeId r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (NodeId c = 0; c < m.cols(); ++c) {
      if (row[c] != 0.0f) coo.add(r, c, row[c]);
    }
  }
  return CsrMatrix::from_coo(std::move(coo));
}

GcnLayerResult gcn_layer_reference(const CsrMatrix& a_hat,
                                   const CsrMatrix& features,
                                   const DenseMatrix& weights,
                                   bool apply_relu) {
  HYMM_CHECK(a_hat.rows() == a_hat.cols());
  HYMM_CHECK(a_hat.cols() == features.rows());
  HYMM_CHECK(features.cols() == weights.rows());
  GcnLayerResult result;
  result.combination = sparse_times_dense(features, weights);
  result.aggregation = spdemm_row_wise(a_hat, result.combination);
  result.activation = result.aggregation;
  if (apply_relu) relu_inplace(result.activation);
  return result;
}

DenseMatrix gcn_inference_reference(const CsrMatrix& a_hat,
                                    const CsrMatrix& features,
                                    const std::vector<DenseMatrix>& weights) {
  HYMM_CHECK_MSG(!weights.empty(), "need at least one layer");
  CsrMatrix x = features;
  DenseMatrix h;
  for (std::size_t l = 0; l < weights.size(); ++l) {
    const bool last = l + 1 == weights.size();
    GcnLayerResult layer =
        gcn_layer_reference(a_hat, x, weights[l], /*apply_relu=*/!last);
    h = std::move(layer.activation);
    if (!last) x = dense_to_csr(h);
  }
  return h;
}

}  // namespace hymm
