#include "linalg/spdemm.hpp"

#include "common/check.hpp"

namespace hymm {

DenseMatrix spdemm_row_wise(const CsrMatrix& a, const DenseMatrix& b) {
  HYMM_CHECK_MSG(a.cols() == b.rows(), "shape mismatch: A is "
                                           << a.rows() << "x" << a.cols()
                                           << ", B has " << b.rows()
                                           << " rows");
  DenseMatrix c(a.rows(), b.cols());
  for (NodeId i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    auto out = c.row(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Value scalar = vals[k];
      const auto in = b.row(cols[k]);
      for (NodeId d = 0; d < b.cols(); ++d) out[d] += scalar * in[d];
    }
  }
  return c;
}

DenseMatrix spdemm_outer(const CscMatrix& a, const DenseMatrix& b) {
  HYMM_CHECK_MSG(a.cols() == b.rows(), "shape mismatch: A is "
                                           << a.rows() << "x" << a.cols()
                                           << ", B has " << b.rows()
                                           << " rows");
  DenseMatrix c(a.rows(), b.cols());
  for (NodeId j = 0; j < a.cols(); ++j) {
    const auto rows = a.col_rows(j);
    const auto vals = a.col_values(j);
    const auto in = b.row(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const Value scalar = vals[k];
      auto out = c.row(rows[k]);
      for (NodeId d = 0; d < b.cols(); ++d) out[d] += scalar * in[d];
    }
  }
  return c;
}

DenseMatrix sparse_times_dense(const CsrMatrix& x, const DenseMatrix& w) {
  return spdemm_row_wise(x, w);
}

DenseMatrix dense_times_dense(const DenseMatrix& a, const DenseMatrix& b) {
  HYMM_CHECK(a.cols() == b.rows());
  DenseMatrix c(a.rows(), b.cols());
  for (NodeId i = 0; i < a.rows(); ++i) {
    for (NodeId k = 0; k < a.cols(); ++k) {
      const Value scalar = a.at(i, k);
      if (scalar == 0.0f) continue;
      const auto in = b.row(k);
      auto out = c.row(i);
      for (NodeId d = 0; d < b.cols(); ++d) out[d] += scalar * in[d];
    }
  }
  return c;
}

}  // namespace hymm
