// Row-major dense matrix used for weights, combination outputs and
// golden-model results.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace hymm {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(NodeId rows, NodeId cols);

  static DenseMatrix zeros(NodeId rows, NodeId cols);
  // Uniform values in [-0.5, 0.5) — Glorot-style weight init range.
  static DenseMatrix random(NodeId rows, NodeId cols, std::uint64_t seed);

  NodeId rows() const { return rows_; }
  NodeId cols() const { return cols_; }

  Value& at(NodeId r, NodeId c);
  Value at(NodeId r, NodeId c) const;

  std::span<Value> row(NodeId r);
  std::span<const Value> row(NodeId r) const;

  const std::vector<Value>& data() const { return data_; }

  void fill(Value v);

  // Max absolute difference over all entries (shapes must match).
  static double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b);

  // Relative closeness test: |a - b| <= atol + rtol * |b| elementwise.
  static bool allclose(const DenseMatrix& a, const DenseMatrix& b,
                       double rtol = 1e-4, double atol = 1e-5);

  friend bool operator==(const DenseMatrix&, const DenseMatrix&) = default;

 private:
  NodeId rows_ = 0;
  NodeId cols_ = 0;
  std::vector<Value> data_;
};

}  // namespace hymm
