#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace hymm {

DenseMatrix::DenseMatrix(NodeId rows, NodeId cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, 0.0f) {}

DenseMatrix DenseMatrix::zeros(NodeId rows, NodeId cols) {
  return DenseMatrix(rows, cols);
}

DenseMatrix DenseMatrix::random(NodeId rows, NodeId cols,
                                std::uint64_t seed) {
  DenseMatrix m(rows, cols);
  Rng rng(seed);
  for (Value& v : m.data_) {
    v = static_cast<Value>(rng.next_double(-0.5, 0.5));
  }
  return m;
}

Value& DenseMatrix::at(NodeId r, NodeId c) {
  HYMM_DCHECK(r < rows_ && c < cols_);
  return data_[static_cast<std::size_t>(r) * cols_ + c];
}

Value DenseMatrix::at(NodeId r, NodeId c) const {
  HYMM_DCHECK(r < rows_ && c < cols_);
  return data_[static_cast<std::size_t>(r) * cols_ + c];
}

std::span<Value> DenseMatrix::row(NodeId r) {
  HYMM_DCHECK(r < rows_);
  return {data_.data() + static_cast<std::size_t>(r) * cols_, cols_};
}

std::span<const Value> DenseMatrix::row(NodeId r) const {
  HYMM_DCHECK(r < rows_);
  return {data_.data() + static_cast<std::size_t>(r) * cols_, cols_};
}

void DenseMatrix::fill(Value v) { std::fill(data_.begin(), data_.end(), v); }

double DenseMatrix::max_abs_diff(const DenseMatrix& a, const DenseMatrix& b) {
  HYMM_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    worst = std::max(worst,
                     std::abs(static_cast<double>(a.data_[i]) - b.data_[i]));
  }
  return worst;
}

bool DenseMatrix::allclose(const DenseMatrix& a, const DenseMatrix& b,
                           double rtol, double atol) {
  HYMM_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    const double diff =
        std::abs(static_cast<double>(a.data_[i]) - b.data_[i]);
    if (diff > atol + rtol * std::abs(static_cast<double>(b.data_[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace hymm
