// Reference (host-side, untimed) SpDeMM kernels. These are the golden
// models the cycle-level engines are verified against, and they also
// mirror the two dataflows of paper Fig 1 so the dataflow order of
// operations itself is unit-testable.
#pragma once

#include "graph/csr.hpp"
#include "linalg/dense.hpp"

namespace hymm {

// Row-wise product (Fig 1a): C[i,:] = sum_j A[i,j] * B[j,:], computed
// one output row at a time with an output-stationary accumulator.
DenseMatrix spdemm_row_wise(const CsrMatrix& a, const DenseMatrix& b);

// Outer product (Fig 1b): for each column j of A, scatter
// A[i,j] * B[j,:] into C[i,:]; partial outputs accumulate in C.
DenseMatrix spdemm_outer(const CscMatrix& a, const DenseMatrix& b);

// Sparse x sparse-row-store x dense used by the combination phase:
// XW = X * W where X is sparse (CSR) and W dense.
DenseMatrix sparse_times_dense(const CsrMatrix& x, const DenseMatrix& w);

// Dense x dense reference for small tests.
DenseMatrix dense_times_dense(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace hymm
