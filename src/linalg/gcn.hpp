// Golden GCN inference model: H = sigma(A_hat * X * W), evaluated
// combination-first exactly as the accelerator does (Section II-A).
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "linalg/dense.hpp"

namespace hymm {

// A_hat = D^-1/2 (A + I) D^-1/2 (Kipf-Welling symmetric
// normalization). add_self_loops=false normalizes the matrix as-is
// (rows/cols with zero degree are left untouched).
CsrMatrix normalize_adjacency(const CsrMatrix& adjacency,
                              bool add_self_loops = true);

// ReLU applied in place.
void relu_inplace(DenseMatrix& m);

// Converts a dense matrix to CSR, dropping exact zeros — used to feed
// one layer's activation into the next layer's sparse combination.
CsrMatrix dense_to_csr(const DenseMatrix& m);

struct GcnLayerResult {
  DenseMatrix combination;  // XW
  DenseMatrix aggregation;  // A_hat * XW (pre-activation)
  DenseMatrix activation;   // ReLU(A_hat * XW), or aggregation when
                            // apply_relu is false
};

// One layer, combination-first. a_hat must be nodes x nodes and
// features nodes x in_dim; weights in_dim x out_dim.
GcnLayerResult gcn_layer_reference(const CsrMatrix& a_hat,
                                   const CsrMatrix& features,
                                   const DenseMatrix& weights,
                                   bool apply_relu = true);

// Full multi-layer inference; weights[l] maps layer l's input
// dimension to its output dimension. The last layer skips ReLU.
DenseMatrix gcn_inference_reference(const CsrMatrix& a_hat,
                                    const CsrMatrix& features,
                                    const std::vector<DenseMatrix>& weights);

}  // namespace hymm
