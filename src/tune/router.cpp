#include "tune/router.hpp"

#include <utility>
#include <vector>

#include "common/check.hpp"
#include "graph/fingerprint.hpp"
#include "graph/partition.hpp"
#include "obs/spatial.hpp"
#include "sweep/sweep.hpp"
#include "tune/cost_model.hpp"

namespace hymm {

namespace {

// RouteInfo/report mode string for a tiles mode.
std::string route_mode_label(RouteMode mode) {
  switch (mode) {
    case RouteMode::kGlobal: return "global";
    case RouteMode::kTilesAnalytic: return "analytic";
    case RouteMode::kTilesMeasured: return "measured";
  }
  return "?";
}

// Cache mode string ("route:analytic" / "route:measured") — prefixed
// so router verdicts share the tune-cache file with threshold
// decisions without key collisions.
std::string route_cache_mode(RouteMode mode) {
  return "route:" + route_mode_label(mode);
}

}  // namespace

RouteInfo to_route_info(const RouteDecision& decision) {
  RouteInfo info;
  info.enabled = decision.mode != RouteMode::kGlobal;
  if (!info.enabled) return info;
  info.mode = route_mode_label(decision.mode);
  info.degenerate = decision.degenerate;
  info.cache_hit = decision.cache_hit;
  info.simulations = decision.simulations;
  info.global_threshold = decision.global_threshold;
  info.predicted_global_cycles = decision.predicted_global_cycles;
  info.predicted_tiled_cycles = decision.predicted_tiled_cycles;
  info.graph_fingerprint = fingerprint_hex(decision.graph_fingerprint);
  info.config_hash = fingerprint_hex(decision.config_hash);
  HYMM_CHECK_MSG(decision.map != nullptr,
                 "tiles-mode RouteDecision without a map");
  const TileRoutingMap& map = *decision.map;
  info.nodes = map.nodes;
  info.tile = map.tile;
  info.grid_rows = map.grid_rows;
  info.grid_cols = map.grid_cols;
  info.op_rows = map.op_rows;
  info.region2_cols = map.region2_cols;
  info.tile_flows.reserve(map.flows.size());
  for (const TileFlow flow : map.flows) {
    info.tile_flows.push_back(static_cast<std::uint8_t>(flow));
  }
  info.tile_predicted_cycles = map.tile_predicted_cycles;
  info.tile_nnz = map.tile_nnz;
  return info;
}

TileRouter::TileRouter(std::string cache_path)
    : tuner_(std::move(cache_path)) {}

AcceleratorConfig TileRouter::apply(const AcceleratorConfig& config,
                                    const RouteDecision& decision) {
  AcceleratorConfig routed = config;
  if (decision.mode != RouteMode::kGlobal) {
    routed.tiling_threshold = decision.global_threshold;
  }
  return routed;
}

RouteDecision TileRouter::route(
    std::shared_ptr<const PreparedWorkload> workload,
    const AcceleratorConfig& config, RouteMode mode, unsigned threads,
    CheckpointStore* checkpoints) {
  HYMM_CHECK(workload != nullptr);
  RouteDecision decision;
  decision.mode = mode;
  decision.global_threshold = config.tiling_threshold;
  if (mode == RouteMode::kGlobal) return decision;

  decision.graph_fingerprint = workload_fingerprint(*workload);
  decision.config_hash = tuning_config_hash(config);

  // Step 1 — tune the global threshold analytically (shared cache,
  // mode "analytic"): the per-tile map refines the *tuned* split, so
  // the ablation's per-tile-vs-global-tuned comparison is apples to
  // apples.
  const TuneDecision tuned_threshold = tuner_.tune(
      workload, config, AutotuneMode::kAnalytic, threads, checkpoints);
  decision.global_threshold = tuned_threshold.threshold;
  const AcceleratorConfig tuned = Tuner::apply(config, tuned_threshold);

  // Step 2 — rebuild the candidate and degenerate maps. This is a
  // pure function of (workload, tuned config), so cache hits rebuild
  // the identical map with zero simulations.
  const CsrMatrix& sorted = workload->sort().sorted;
  const std::size_t dense_cols = workload->weights().cols();
  const std::size_t lines = dense_row_lines(dense_cols);
  const RegionPartition partition = partition_regions(sorted, tuned, lines);
  const NodeId tile = spatial_tile_edge(partition.nodes, 0);
  const TileStats stats =
      collect_tile_stats(sorted, tile, partition.region2_cols);

  TileRoutingMap degenerate = degenerate_routing_map(partition, stats.tile);
  degenerate.tile_nnz = stats.nnz;
  TileRoutingMap candidate =
      route_tiles_by_cost(stats, partition, tuned, dense_cols);
  const CostEstimate global_cost =
      estimate_routed_cost(stats, degenerate, tuned, dense_cols);
  const CostEstimate tiled_cost =
      estimate_routed_cost(stats, candidate, tuned, dense_cols);
  decision.predicted_global_cycles = global_cost.cycles;
  decision.predicted_tiled_cycles = tiled_cost.cycles;

  const std::string mode_name = route_cache_mode(mode);
  if (const auto hit = tuner_.cache().lookup(decision.graph_fingerprint,
                                             decision.config_hash,
                                             mode_name)) {
    decision.cache_hit = true;
    const bool use_tiles = hit->route_kind == "tiles";
    decision.degenerate = !use_tiles;
    decision.map = std::make_shared<TileRoutingMap>(
        use_tiles ? std::move(candidate) : std::move(degenerate));
    return decision;
  }

  // Step 3 — decide. The global split is the baseline; the per-tile
  // map must be strictly better under the mode's metric to displace
  // it (ties keep the paper partition).
  bool use_tiles = false;
  double decided_cycles = global_cost.cycles;
  if (!candidate.degenerate) {
    if (mode == RouteMode::kTilesAnalytic) {
      use_tiles = tiled_cost.cycles < global_cost.cycles;
      decided_cycles = use_tiles ? tiled_cost.cycles : global_cost.cycles;
    } else {
      // Measured: race the candidate map against the plain global
      // split through the simulator (two hybrid cells, same tuned
      // config, shared combination checkpoint).
      SweepSpec spec;
      spec.workloads = {workload};
      spec.flows = {Dataflow::kHybrid};
      spec.configs = {tuned, tuned};
      spec.routes = {nullptr, std::make_shared<TileRoutingMap>(candidate)};
      SweepOptions options;
      options.threads = threads;
      options.checkpoints = checkpoints;
      SweepRunner runner(options);
      const SweepRun run = runner.run(spec);
      HYMM_CHECK(run.cells.size() == 2);
      double global_cycles = 0.0;
      double tiled_cycles = 0.0;
      for (const SweepCellResult& cell : run.cells) {
        const double cycles = static_cast<double>(cell.result.cycles);
        if (cell.cell.config_index == 0) {
          global_cycles = cycles;
        } else {
          tiled_cycles = cycles;
        }
      }
      decision.simulations = run.cells.size();
      measured_simulations_.fetch_add(run.cells.size());
      use_tiles = tiled_cycles < global_cycles;
      decided_cycles = use_tiles ? tiled_cycles : global_cycles;
    }
  }
  decision.degenerate = !use_tiles;

  TuneCacheEntry entry;
  entry.graph_fingerprint = decision.graph_fingerprint;
  entry.config_hash = decision.config_hash;
  entry.mode = mode_name;
  entry.threshold = decision.global_threshold;
  entry.cycles = decided_cycles;
  entry.dataset = workload->workload().spec.abbrev;
  entry.route_kind = use_tiles ? "tiles" : "global";
  entry.tile = stats.tile;
  tuner_.cache().insert(entry);

  decision.map = std::make_shared<TileRoutingMap>(
      use_tiles ? std::move(candidate) : std::move(degenerate));
  return decision;
}

}  // namespace hymm
