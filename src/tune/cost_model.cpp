#include "tune/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace hymm {

std::size_t dense_row_lines(std::size_t dense_cols) {
  return (dense_cols + kLaneCount - 1) / kLaneCount;
}

CostEstimate estimate_hybrid_cost(const CsrMatrix& sorted_adjacency,
                                  const AcceleratorConfig& config,
                                  double threshold,
                                  std::size_t dense_cols) {
  HYMM_CHECK(threshold >= 0.0 && threshold <= 1.0);
  HYMM_CHECK(dense_cols > 0);

  CostEstimate e;
  e.threshold = threshold;

  AcceleratorConfig candidate = config;
  candidate.tiling_threshold = threshold;
  const std::size_t lines = dense_row_lines(dense_cols);
  e.partition = partition_regions(sorted_adjacency, candidate, lines);

  const double n = static_cast<double>(e.partition.nodes);
  const double nnz = static_cast<double>(e.partition.total_nnz());
  const double nnz1 = static_cast<double>(e.partition.nnz_region1);
  const double nnz3 = static_cast<double>(e.partition.nnz_region3);
  const double r1 = static_cast<double>(e.partition.region1_rows);
  const double c2 = static_cast<double>(e.partition.region2_cols);
  const double row_bytes = static_cast<double>(lines * kLineBytes);

  // --- Region 1 (OP, outputs pinned on-chip) ---------------------
  // The OP engines stream XW rows for the distinct columns present in
  // the region-1 block. Columns are drawn by nnz1 edges over n
  // possible columns; the expected distinct-column count is the
  // coupon-collector estimate n * (1 - exp(-nnz1 / n)). The pointer
  // -guided prefetch makes that stream sequential, so each distinct
  // row is fetched once. Pinned partial outputs never spill, but the
  // r1 finished rows are written back once.
  const double distinct1 =
      n > 0.0 ? n * (1.0 - std::exp(-nnz1 / n)) : 0.0;
  e.op_bytes = distinct1 * row_bytes + r1 * row_bytes;

  // --- Region 2 (RWP over the hot columns) -----------------------
  // The c2 hot XW rows fit in the DMB by construction (that is the
  // clamp), so each is filled once and then reused for all nnz2
  // accesses.
  e.rwp_hot_bytes = c2 * row_bytes;

  // --- Region 3 (RWP remainder) ----------------------------------
  // Pessimistic: columns beyond c2 are the low-degree tail with
  // little reuse, and whatever reuse LRU salvages is workload
  // dependent — assume every access misses. This term is what makes
  // small thresholds expensive (threshold 0 puts ALL traffic here)
  // and it shrinks monotonically as the boundaries grow.
  e.rwp_cold_bytes = nnz3 * row_bytes;

  // --- Common traffic --------------------------------------------
  // The adjacency itself streams exactly once in every mode (4-byte
  // index + 4-byte value per stored non-zero, as in the SMQ entry
  // layout), and the n - r1 RWP output rows are written back once.
  const double adjacency_bytes = nnz * 8.0;
  const double rwp_output_bytes = (n - r1) * row_bytes;
  e.dram_bytes = e.op_bytes + e.rwp_hot_bytes + e.rwp_cold_bytes +
                 adjacency_bytes + rwp_output_bytes;

  // --- Roofline ---------------------------------------------------
  e.compute_cycles = nnz * static_cast<double>(lines);
  e.memory_cycles =
      e.dram_bytes / static_cast<double>(config.dram_bytes_per_cycle);
  // Cold misses: every distinct region-1 row, every hot-row fill and
  // every pessimistic region-3 access pays dram_latency, overlapped
  // across the MSHR file.
  const double cold_misses = distinct1 + c2 + nnz3;
  e.latency_cycles = cold_misses *
                     static_cast<double>(config.dram_latency) /
                     static_cast<double>(config.dmb_mshr_entries);
  e.cycles =
      std::max({e.compute_cycles, e.memory_cycles, e.latency_cycles});
  return e;
}

std::vector<CostEstimate> estimate_candidates(
    const CsrMatrix& sorted_adjacency, const AcceleratorConfig& config,
    const std::vector<double>& thresholds, std::size_t dense_cols) {
  std::vector<CostEstimate> out;
  out.reserve(thresholds.size());
  for (const double t : thresholds) {
    out.push_back(
        estimate_hybrid_cost(sorted_adjacency, config, t, dense_cols));
  }
  return out;
}

TileStats collect_tile_stats(const CsrMatrix& sorted_adjacency,
                             NodeId tile_edge, NodeId hot_cols) {
  HYMM_CHECK(sorted_adjacency.rows() == sorted_adjacency.cols());
  HYMM_CHECK(tile_edge > 0);
  TileStats s;
  s.nodes = sorted_adjacency.rows();
  s.tile = tile_edge;
  s.grid_rows = (s.nodes + tile_edge - 1) / tile_edge;
  s.grid_cols = s.grid_rows;
  s.hot_cols = hot_cols;
  s.nnz.assign(s.grid_rows * s.grid_cols, 0);
  s.hot_nnz.assign(s.grid_rows * s.grid_cols, 0);
  for (NodeId r = 0; r < s.nodes; ++r) {
    const std::size_t band = (r / tile_edge) * s.grid_cols;
    for (const NodeId c : sorted_adjacency.row_cols(r)) {
      const std::size_t cell = band + c / tile_edge;
      ++s.nnz[cell];
      if (c < hot_cols) {
        ++s.hot_nnz[cell];
      }
    }
  }
  return s;
}

namespace {

// Coupon-collector estimate of the distinct values drawn by `nnz`
// samples over a `universe`-sized range (the same estimate the global
// model applies to region-1 columns, here per tile / per band).
double expected_distinct(double nnz, double universe) {
  return universe > 0.0 ? universe * (1.0 - std::exp(-nnz / universe)) : 0.0;
}

// Width of column band `j` (the last band may be cut short).
double band_width(const TileStats& stats, std::size_t j) {
  const NodeId begin = static_cast<NodeId>(j) * stats.tile;
  const NodeId end =
      std::min<NodeId>(begin + stats.tile, stats.nodes);
  return static_cast<double>(end - begin);
}

}  // namespace

TileRoutingMap route_tiles_by_cost(const TileStats& stats,
                                   const RegionPartition& partition,
                                   const AcceleratorConfig& config,
                                   std::size_t dense_cols) {
  HYMM_CHECK(stats.nodes == partition.nodes);
  HYMM_CHECK(stats.hot_cols == partition.region2_cols);
  TileRoutingMap map = degenerate_routing_map(partition, stats.tile);
  HYMM_CHECK(map.grid_rows == stats.grid_rows && map.tile == stats.tile);
  const double row_bytes =
      static_cast<double>(dense_row_lines(dense_cols) * kLineBytes);
  map.tile_nnz = stats.nnz;
  map.tile_predicted_cycles.assign(map.flows.size(), 0.0);

  const double bw = static_cast<double>(config.dram_bytes_per_cycle);
  for (std::size_t i = 0; i < map.grid_rows; ++i) {
    const NodeId row_begin = static_cast<NodeId>(i) * map.tile;
    if (row_begin >= map.op_rows) {
      break;  // bands past the pinned prefix are RWP already
    }
    const NodeId row_end = std::min<NodeId>(row_begin + map.tile, map.nodes);
    // Only the prefix share of a straddling band is up for routing;
    // rows past op_rows run RWP regardless of the tile flow.
    const double height = static_cast<double>(row_end - row_begin);
    const double prefix_height =
        static_cast<double>(std::min(row_end, map.op_rows) - row_begin);
    const double prefix_frac = prefix_height / height;
    for (std::size_t j = 0; j < map.grid_cols; ++j) {
      const std::size_t cell = i * map.grid_cols + j;
      const double nnz =
          static_cast<double>(stats.nnz[cell]) * prefix_frac;
      const double cold =
          static_cast<double>(stats.nnz[cell] - stats.hot_nnz[cell]) *
          prefix_frac;
      const double op_bytes =
          expected_distinct(nnz, band_width(stats, j)) * row_bytes;
      const double rwp_bytes =
          cold * row_bytes +
          expected_distinct(nnz, prefix_height) * row_bytes;
      // Strictly-cheaper displaces: ties (including empty tiles) keep
      // the degenerate OP choice.
      if (rwp_bytes < op_bytes) {
        map.flows[cell] = TileFlow::kRwp;
        map.degenerate = false;
      }
      map.tile_predicted_cycles[cell] =
          std::min(op_bytes, rwp_bytes) / bw;
    }
  }
  // RWP bands: report the cold-miss roofline share per tile.
  for (std::size_t i = 0; i < map.grid_rows; ++i) {
    const NodeId row_begin = static_cast<NodeId>(i) * map.tile;
    for (std::size_t j = 0; j < map.grid_cols; ++j) {
      const std::size_t cell = i * map.grid_cols + j;
      if (map.flows[cell] != TileFlow::kRwp || row_begin < map.op_rows) {
        continue;
      }
      const double cold =
          static_cast<double>(stats.nnz[cell] - stats.hot_nnz[cell]);
      map.tile_predicted_cycles[cell] = cold * row_bytes / bw;
    }
  }
  return map;
}

CostEstimate estimate_routed_cost(const TileStats& stats,
                                  const TileRoutingMap& map,
                                  const AcceleratorConfig& config,
                                  std::size_t dense_cols) {
  map.validate();
  HYMM_CHECK(stats.nodes == map.nodes && stats.tile == map.tile);
  HYMM_CHECK(stats.hot_cols == map.region2_cols);

  const std::size_t lines = dense_row_lines(dense_cols);
  const double row_bytes = static_cast<double>(lines * kLineBytes);
  const double n = static_cast<double>(map.nodes);
  const double r1 = static_cast<double>(map.op_rows);
  const double c2 = static_cast<double>(map.region2_cols);

  // OP-routed nonzeros accumulated per column band (the OP engine
  // streams region-1 CSC column by column, so distinct columns are
  // fetched once across the whole prefix); RWP-routed nonzeros split
  // hot/cold, with the prefix share of each straddling band
  // apportioned proportionally.
  std::vector<double> op_col_nnz(map.grid_cols, 0.0);
  std::vector<double> prefix_rwp_nnz(map.grid_rows, 0.0);
  double total_nnz = 0.0;
  double op_nnz = 0.0;
  double rwp_hot = 0.0;
  double rwp_cold = 0.0;
  for (std::size_t i = 0; i < map.grid_rows; ++i) {
    const NodeId row_begin = static_cast<NodeId>(i) * map.tile;
    const NodeId row_end = std::min<NodeId>(row_begin + map.tile, map.nodes);
    const double height = static_cast<double>(row_end - row_begin);
    const double prefix_frac =
        row_begin >= map.op_rows
            ? 0.0
            : static_cast<double>(std::min(row_end, map.op_rows) -
                                  row_begin) /
                  height;
    for (std::size_t j = 0; j < map.grid_cols; ++j) {
      const std::size_t cell = i * map.grid_cols + j;
      const double nnz = static_cast<double>(stats.nnz[cell]);
      const double hot = static_cast<double>(stats.hot_nnz[cell]);
      total_nnz += nnz;
      const bool op_tile = map.flows[cell] == TileFlow::kOp;
      const double to_op = op_tile ? nnz * prefix_frac : 0.0;
      const double to_rwp = nnz - to_op;
      op_col_nnz[j] += to_op;
      op_nnz += to_op;
      const double rwp_share = nnz > 0.0 ? to_rwp / nnz : 0.0;
      rwp_hot += hot * rwp_share;
      rwp_cold += (nnz - hot) * rwp_share;
      if (!op_tile && prefix_frac > 0.0) {
        prefix_rwp_nnz[i] += nnz * prefix_frac;
      }
    }
  }

  CostEstimate e;
  e.threshold = n > 0.0 ? r1 / n : 0.0;
  e.partition.nodes = map.nodes;
  e.partition.region1_rows = map.op_rows;
  e.partition.region2_cols = map.region2_cols;
  e.partition.nnz_region1 = static_cast<EdgeCount>(op_nnz + 0.5);
  e.partition.nnz_region2 = static_cast<EdgeCount>(rwp_hot + 0.5);
  e.partition.nnz_region3 = static_cast<EdgeCount>(rwp_cold + 0.5);

  // OP phase: one fetch per expected distinct column per band, plus
  // the one-shot writeback of the r1 finished rows.
  double distinct1 = 0.0;
  for (std::size_t j = 0; j < map.grid_cols; ++j) {
    distinct1 += expected_distinct(op_col_nnz[j], band_width(stats, j));
  }
  e.op_bytes = distinct1 * row_bytes + r1 * row_bytes;

  // RWP phase: hot rows fill once (the c2 clamp guarantees they fit),
  // the cold tail pessimistically all-misses.
  e.rwp_hot_bytes = c2 * row_bytes;
  e.rwp_cold_bytes = rwp_cold * row_bytes;

  // Mixed rows — prefix rows populated by RWP-routed tiles — are
  // written back by the OP unpin *and* stored again by the RWP
  // write-through path; charge the extra store per expected populated
  // row.
  double mixed_row_stores = 0.0;
  for (std::size_t i = 0; i < map.grid_rows; ++i) {
    if (prefix_rwp_nnz[i] <= 0.0) {
      continue;
    }
    const NodeId row_begin = static_cast<NodeId>(i) * map.tile;
    const NodeId row_end = std::min<NodeId>(row_begin + map.tile, map.nodes);
    const double prefix_height =
        static_cast<double>(std::min(row_end, map.op_rows) - row_begin);
    mixed_row_stores += expected_distinct(prefix_rwp_nnz[i], prefix_height);
  }

  const double adjacency_bytes = total_nnz * 8.0;
  const double rwp_output_bytes =
      (n - r1) * row_bytes + mixed_row_stores * row_bytes;
  e.dram_bytes = e.op_bytes + e.rwp_hot_bytes + e.rwp_cold_bytes +
                 adjacency_bytes + rwp_output_bytes;

  e.compute_cycles = total_nnz * static_cast<double>(lines);
  e.memory_cycles =
      e.dram_bytes / static_cast<double>(config.dram_bytes_per_cycle);
  const double cold_misses = distinct1 + c2 + rwp_cold;
  e.latency_cycles = cold_misses *
                     static_cast<double>(config.dram_latency) /
                     static_cast<double>(config.dmb_mshr_entries);
  e.cycles =
      std::max({e.compute_cycles, e.memory_cycles, e.latency_cycles});
  return e;
}

}  // namespace hymm
