#include "tune/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace hymm {

std::size_t dense_row_lines(std::size_t dense_cols) {
  return (dense_cols + kLaneCount - 1) / kLaneCount;
}

CostEstimate estimate_hybrid_cost(const CsrMatrix& sorted_adjacency,
                                  const AcceleratorConfig& config,
                                  double threshold,
                                  std::size_t dense_cols) {
  HYMM_CHECK(threshold >= 0.0 && threshold <= 1.0);
  HYMM_CHECK(dense_cols > 0);

  CostEstimate e;
  e.threshold = threshold;

  AcceleratorConfig candidate = config;
  candidate.tiling_threshold = threshold;
  const std::size_t lines = dense_row_lines(dense_cols);
  e.partition = partition_regions(sorted_adjacency, candidate, lines);

  const double n = static_cast<double>(e.partition.nodes);
  const double nnz = static_cast<double>(e.partition.total_nnz());
  const double nnz1 = static_cast<double>(e.partition.nnz_region1);
  const double nnz3 = static_cast<double>(e.partition.nnz_region3);
  const double r1 = static_cast<double>(e.partition.region1_rows);
  const double c2 = static_cast<double>(e.partition.region2_cols);
  const double row_bytes = static_cast<double>(lines * kLineBytes);

  // --- Region 1 (OP, outputs pinned on-chip) ---------------------
  // The OP engines stream XW rows for the distinct columns present in
  // the region-1 block. Columns are drawn by nnz1 edges over n
  // possible columns; the expected distinct-column count is the
  // coupon-collector estimate n * (1 - exp(-nnz1 / n)). The pointer
  // -guided prefetch makes that stream sequential, so each distinct
  // row is fetched once. Pinned partial outputs never spill, but the
  // r1 finished rows are written back once.
  const double distinct1 =
      n > 0.0 ? n * (1.0 - std::exp(-nnz1 / n)) : 0.0;
  e.op_bytes = distinct1 * row_bytes + r1 * row_bytes;

  // --- Region 2 (RWP over the hot columns) -----------------------
  // The c2 hot XW rows fit in the DMB by construction (that is the
  // clamp), so each is filled once and then reused for all nnz2
  // accesses.
  e.rwp_hot_bytes = c2 * row_bytes;

  // --- Region 3 (RWP remainder) ----------------------------------
  // Pessimistic: columns beyond c2 are the low-degree tail with
  // little reuse, and whatever reuse LRU salvages is workload
  // dependent — assume every access misses. This term is what makes
  // small thresholds expensive (threshold 0 puts ALL traffic here)
  // and it shrinks monotonically as the boundaries grow.
  e.rwp_cold_bytes = nnz3 * row_bytes;

  // --- Common traffic --------------------------------------------
  // The adjacency itself streams exactly once in every mode (4-byte
  // index + 4-byte value per stored non-zero, as in the SMQ entry
  // layout), and the n - r1 RWP output rows are written back once.
  const double adjacency_bytes = nnz * 8.0;
  const double rwp_output_bytes = (n - r1) * row_bytes;
  e.dram_bytes = e.op_bytes + e.rwp_hot_bytes + e.rwp_cold_bytes +
                 adjacency_bytes + rwp_output_bytes;

  // --- Roofline ---------------------------------------------------
  e.compute_cycles = nnz * static_cast<double>(lines);
  e.memory_cycles =
      e.dram_bytes / static_cast<double>(config.dram_bytes_per_cycle);
  // Cold misses: every distinct region-1 row, every hot-row fill and
  // every pessimistic region-3 access pays dram_latency, overlapped
  // across the MSHR file.
  const double cold_misses = distinct1 + c2 + nnz3;
  e.latency_cycles = cold_misses *
                     static_cast<double>(config.dram_latency) /
                     static_cast<double>(config.dmb_mshr_entries);
  e.cycles =
      std::max({e.compute_cycles, e.memory_cycles, e.latency_cycles});
  return e;
}

std::vector<CostEstimate> estimate_candidates(
    const CsrMatrix& sorted_adjacency, const AcceleratorConfig& config,
    const std::vector<double>& thresholds, std::size_t dense_cols) {
  std::vector<CostEstimate> out;
  out.reserve(thresholds.size());
  for (const double t : thresholds) {
    out.push_back(
        estimate_hybrid_cost(sorted_adjacency, config, t, dense_cols));
  }
  return out;
}

}  // namespace hymm
