#include "tune/tune_cache.hpp"

#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "graph/fingerprint.hpp"

namespace hymm {

TuneCache::TuneCache(std::string path) : path_(std::move(path)) {
  std::lock_guard<std::mutex> lock(mutex_);
  load_locked();
}

std::optional<TuneCacheEntry> TuneCache::lookup(
    std::uint64_t graph_fingerprint, std::uint64_t config_hash,
    const std::string& mode) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const TuneCacheEntry& e : entries_) {
    if (e.graph_fingerprint == graph_fingerprint &&
        e.config_hash == config_hash && e.mode == mode) {
      return e;
    }
  }
  return std::nullopt;
}

void TuneCache::insert(const TuneCacheEntry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (TuneCacheEntry& e : entries_) {
    if (e.graph_fingerprint == entry.graph_fingerprint &&
        e.config_hash == entry.config_hash && e.mode == entry.mode) {
      e = entry;
      save_locked();
      return;
    }
  }
  entries_.push_back(entry);
  save_locked();
}

std::size_t TuneCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::string TuneCache::to_json() const {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.field("schema", kSchema);
  w.key("entries");
  w.begin_array();
  for (const TuneCacheEntry& e : entries_) {
    w.begin_object();
    w.field("graph_fingerprint", fingerprint_hex(e.graph_fingerprint));
    w.field("config_hash", fingerprint_hex(e.config_hash));
    w.field("mode", e.mode);
    w.field("threshold", e.threshold);
    w.field("cycles", e.cycles);
    w.field("dataset", e.dataset);
    w.field("route_kind", e.route_kind);
    w.field("tile", e.tile);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
  return out.str();
}

void TuneCache::load_locked() {
  if (path_.empty()) return;
  std::ifstream in(path_);
  if (!in) return;  // absent file: start empty
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::optional<JsonValue> doc = json_parse(buf.str());
  if (!doc || !doc->is_object()) return;
  if (doc->get_string("schema") != kSchema) return;
  const JsonValue* entries = doc->find("entries");
  if (entries == nullptr || !entries->is_array()) return;
  for (const JsonValue& item : entries->array_items) {
    if (!item.is_object()) continue;
    const auto fp = parse_fingerprint_hex(item.get_string("graph_fingerprint"));
    const auto ch = parse_fingerprint_hex(item.get_string("config_hash"));
    const std::string mode = item.get_string("mode");
    const JsonValue* threshold = item.find("threshold");
    if (!fp || !ch || mode.empty() || threshold == nullptr ||
        !threshold->is_number()) {
      continue;  // malformed entry: skip, keep the rest
    }
    TuneCacheEntry e;
    e.graph_fingerprint = *fp;
    e.config_hash = *ch;
    e.mode = mode;
    e.threshold = threshold->number_value;
    e.cycles = item.get_number("cycles");
    e.dataset = item.get_string("dataset");
    e.route_kind = item.get_string("route_kind");
    e.tile = static_cast<std::uint64_t>(item.get_number("tile"));
    entries_.push_back(std::move(e));
  }
}

void TuneCache::save_locked() const {
  if (path_.empty()) return;
  std::ofstream out(path_, std::ios::trunc);
  if (!out) return;  // unwritable path: stay memory-only
  out << to_json();
}

}  // namespace hymm
