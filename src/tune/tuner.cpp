#include "tune/tuner.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "sweep/sweep.hpp"
#include "graph/fingerprint.hpp"

namespace hymm {

std::vector<double> candidate_thresholds() {
  return {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.35, 0.50};
}

std::uint64_t workload_fingerprint(const PreparedWorkload& workload) {
  std::uint64_t fp = graph_fingerprint(workload.a_hat());
  fp = fingerprint_combine(fp, graph_fingerprint(workload.workload().features));
  fp = fingerprint_combine(
      fp, (static_cast<std::uint64_t>(workload.weights().rows()) << 32) |
              static_cast<std::uint64_t>(workload.weights().cols()));
  return fingerprint_combine(fp, workload.seed());
}

namespace {

// The search's candidate list: the canonical thresholds plus the
// config's own fixed threshold (so the baseline is always in the
// running, even for non-default configs).
std::vector<double> search_candidates(double fixed_threshold) {
  std::vector<double> thresholds = candidate_thresholds();
  const bool present =
      std::any_of(thresholds.begin(), thresholds.end(), [&](double t) {
        return std::abs(t - fixed_threshold) < 1e-12;
      });
  if (!present) {
    thresholds.push_back(fixed_threshold);
    std::sort(thresholds.begin(), thresholds.end());
  }
  return thresholds;
}

// Index of the fixed threshold inside the search list.
std::size_t fixed_index(const std::vector<double>& thresholds,
                        double fixed_threshold) {
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    if (std::abs(thresholds[i] - fixed_threshold) < 1e-12) return i;
  }
  HYMM_CHECK_MSG(false, "fixed threshold missing from candidates");
  return 0;
}

// Selection shared by both modes: start from the fixed baseline and
// only move on a strictly smaller metric — ties keep the default.
void pick_best(const std::vector<double>& thresholds,
               const std::vector<double>& metric, std::size_t fixed,
               TuneDecision& decision) {
  std::size_t best = fixed;
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    if (metric[i] < metric[best]) best = i;
  }
  decision.threshold = thresholds[best];
  decision.best_cycles = metric[best];
}

}  // namespace

TuneInfo to_tune_info(const TuneDecision& decision) {
  TuneInfo info;
  info.enabled = decision.mode != AutotuneMode::kOff;
  info.mode = to_string(decision.mode);
  info.fixed_threshold = decision.fixed_threshold;
  info.threshold = decision.threshold;
  info.cache_hit = decision.cache_hit;
  info.simulations = decision.simulations;
  info.graph_fingerprint = fingerprint_hex(decision.graph_fingerprint);
  info.config_hash = fingerprint_hex(decision.config_hash);
  info.candidates.reserve(decision.candidates.size());
  for (const TuneCandidate& c : decision.candidates) {
    info.candidates.push_back({c.threshold, c.model_cycles, c.measured_cycles});
  }
  return info;
}

Tuner::Tuner(std::string cache_path) : cache_(std::move(cache_path)) {}

AcceleratorConfig Tuner::apply(const AcceleratorConfig& config,
                               const TuneDecision& decision) {
  AcceleratorConfig tuned = config;
  tuned.tiling_threshold = decision.threshold;
  return tuned;
}

TuneDecision Tuner::tune(std::shared_ptr<const PreparedWorkload> workload,
                         const AcceleratorConfig& config, AutotuneMode mode,
                         unsigned threads, CheckpointStore* checkpoints) {
  HYMM_CHECK(workload != nullptr);
  TuneDecision decision;
  decision.mode = mode;
  decision.fixed_threshold = config.tiling_threshold;
  decision.threshold = config.tiling_threshold;
  if (mode == AutotuneMode::kOff) return decision;

  decision.graph_fingerprint = workload_fingerprint(*workload);
  decision.config_hash = tuning_config_hash(config);

  const std::string mode_name = to_string(mode);
  if (const auto hit = cache_.lookup(decision.graph_fingerprint,
                                     decision.config_hash, mode_name)) {
    decision.cache_hit = true;
    decision.threshold = hit->threshold;
    decision.best_cycles = hit->cycles;
    return decision;
  }

  const std::vector<double> thresholds =
      search_candidates(decision.fixed_threshold);
  const std::size_t fixed = fixed_index(thresholds, decision.fixed_threshold);
  const std::size_t dense_cols = workload->weights().cols();

  // Analytic estimates are computed in both modes (they are cheap and
  // the report shows model-vs-measured side by side).
  const std::vector<CostEstimate> estimates = estimate_candidates(
      workload->sort().sorted, config, thresholds, dense_cols);
  decision.candidates.resize(thresholds.size());
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    decision.candidates[i].threshold = thresholds[i];
    decision.candidates[i].model_cycles = estimates[i].cycles;
  }

  if (mode == AutotuneMode::kAnalytic) {
    std::vector<double> metric(thresholds.size());
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
      metric[i] = estimates[i].cycles;
    }
    pick_best(thresholds, metric, fixed, decision);
  } else {
    // Measured: one hybrid sweep cell per candidate threshold, all
    // sharing the immutable workload (and its once-built degree sort)
    // through the sweep executor.
    SweepSpec spec;
    spec.workloads = {workload};
    spec.flows = {Dataflow::kHybrid};
    spec.configs.clear();
    for (const double t : thresholds) {
      AcceleratorConfig candidate = config;
      candidate.tiling_threshold = t;
      spec.configs.push_back(candidate);
    }
    SweepOptions options;
    options.threads = threads;
    // All candidates share one combination checkpoint: they differ
    // only in tiling_threshold, which tuning_config_hash excludes.
    options.checkpoints = checkpoints;
    SweepRunner runner(options);
    const SweepRun run = runner.run(spec);
    HYMM_CHECK(run.cells.size() == thresholds.size());

    std::vector<double> metric(thresholds.size());
    for (const SweepCellResult& cell : run.cells) {
      const std::size_t i = cell.cell.config_index;
      metric[i] = static_cast<double>(cell.result.cycles);
      decision.candidates[i].measured_cycles =
          static_cast<double>(cell.result.cycles);
    }
    decision.simulations = run.cells.size();
    measured_simulations_.fetch_add(run.cells.size());
    pick_best(thresholds, metric, fixed, decision);
  }

  TuneCacheEntry entry;
  entry.graph_fingerprint = decision.graph_fingerprint;
  entry.config_hash = decision.config_hash;
  entry.mode = mode_name;
  entry.threshold = decision.threshold;
  entry.cycles = decision.best_cycles;
  entry.dataset = workload->workload().spec.abbrev;
  cache_.insert(entry);
  return decision;
}

}  // namespace hymm
