/// @file
/// The per-tile dataflow router: the policy layer above the
/// core/routing.hpp mechanism, mirroring the threshold auto-tuner's
/// shape (tune/tuner.hpp). For a concrete workload it decides which
/// TileRoutingMap the hybrid engine should run, in one of two modes:
///
///   - RouteMode::kTilesAnalytic — tune the global threshold
///     analytically, score every tile with the roofline cost model
///     (tune/cost_model.hpp) and keep the per-tile map only when its
///     routed roofline beats the degenerate map's. No simulation.
///   - RouteMode::kTilesMeasured — same candidate map, but the
///     decision races it against the global split through the real
///     simulator (two hybrid sweep cells) and keeps it only on a
///     strictly smaller cycle count.
///
/// Both modes share the tuner's selection discipline: the global
/// split is the baseline and is only displaced by a *strictly* better
/// per-tile map, so a routed run can never be worse than
/// --route=global under the mode's own metric. When the global split
/// wins, the decision still carries the *degenerate* map — drivers
/// pass it to the engine, which reproduces the un-routed partition
/// bit-identically (tests/test_routing.cpp) while keeping the routed
/// code path exercised.
///
/// Decisions persist in the same TuneCache file as threshold
/// decisions (schema hymm-tune-cache/2) under the mode strings
/// "route:analytic" / "route:measured"; a repeat run rebuilds the map
/// deterministically from the cached verdict with zero simulations.
/// See docs/routing.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "core/routing.hpp"
#include "core/runner.hpp"
#include "sweep/workload_cache.hpp"
#include "tune/tuner.hpp"

namespace hymm {

/// The router's verdict for one (workload, config, mode) question.
struct RouteDecision {
  RouteMode mode = RouteMode::kGlobal;  ///< mode the decision ran in
  /// True when the router fell back to the degenerate map (the global
  /// split won the comparison).
  bool degenerate = true;
  bool cache_hit = false;  ///< verdict served from the tune cache
  std::uint64_t simulations = 0;  ///< simulator runs this call paid for
  /// Tiling threshold the map was built on (the analytic tuner's
  /// choice for this workload, not necessarily the config's fixed
  /// default).
  double global_threshold = 0.0;
  double predicted_global_cycles = 0.0;  ///< routed roofline, degenerate map
  double predicted_tiled_cycles = 0.0;   ///< routed roofline, candidate map
  std::uint64_t graph_fingerprint = 0;  ///< workload_fingerprint() digest
  std::uint64_t config_hash = 0;        ///< tuning_config_hash() digest
  /// The map to run. Null only for RouteMode::kGlobal; for the tiles
  /// modes it is always set (the degenerate map when the global split
  /// won) and drivers forward it to ExperimentRequest::route /
  /// SweepSpec::routes.
  std::shared_ptr<const TileRoutingMap> map;
};

/// Converts a decision into the RouteInfo annotation drivers attach
/// to hybrid ExperimentResults for the run report ("route" object of
/// hymm-run-report/8). kGlobal maps to enabled=false. Never attach
/// route info to sampled results — the sampled path ignores routing.
RouteInfo to_route_info(const RouteDecision& decision);

/// Stateful router bound to one tune-cache file (or memory-only when
/// the path is empty) — safe to share with a Tuner pointing at the
/// same path, since router entries live under their own mode strings.
/// Thread-safe like the Tuner: the cache is internally locked and
/// measured races use their own SweepRunner.
class TileRouter {
 public:
  /// `cache_path` — the `hymm-tune-cache/2` file to load and persist
  /// decisions in; empty keeps decisions in memory only.
  explicit TileRouter(std::string cache_path = {});

  /// Answers "which routing map should this workload run with?".
  /// The global threshold is tuned analytically first (through the
  /// shared cache, mode "analytic"), the map is built at that
  /// threshold on the spatial-heatmap tile grid, and the mode's
  /// comparison decides whether it survives. `threads` and
  /// `checkpoints` only matter for measured misses (the two-cell
  /// race), exactly like Tuner::tune. kGlobal returns the baseline
  /// decision (null map) without touching the cache.
  RouteDecision route(std::shared_ptr<const PreparedWorkload> workload,
                      const AcceleratorConfig& config, RouteMode mode,
                      unsigned threads = 1,
                      CheckpointStore* checkpoints = nullptr);

  /// `config` with the decision's global threshold applied — what the
  /// routed cells should actually run (the map's op_rows were derived
  /// from this threshold, and partition_regions must agree).
  static AcceleratorConfig apply(const AcceleratorConfig& config,
                                 const RouteDecision& decision);

  /// Total race simulations this router has paid for (cache hits and
  /// analytic decisions add zero) — the test hook for "second run
  /// skips simulation".
  std::uint64_t measured_simulations() const {
    return measured_simulations_.load();
  }

  TuneCache& cache() { return tuner_.cache(); }  ///< shared decision cache

 private:
  Tuner tuner_;
  std::atomic<std::uint64_t> measured_simulations_{0};
};

}  // namespace hymm
