/// @file
/// Persisted tuning decisions (`hymm-tune-cache/2` JSON; spec in
/// docs/schemas.md). A cache file maps (graph fingerprint, config
/// hash, mode) to the tuned threshold, so a second `--autotune`
/// invocation on the same workload skips the candidate search
/// entirely — for measured mode that means zero simulations. The
/// per-tile router (tune/router.hpp) shares the same key space under
/// "route:analytic" / "route:measured" modes, persisting a compact
/// map descriptor (route_kind + tile edge + threshold) from which the
/// routing map is rebuilt deterministically on a hit.
///
/// Invalidation is structural, not temporal: a key is the exact
/// identity of the tuned question, so any change to the graph or the
/// timing-relevant config produces a different key and simply misses.
/// Unreadable files, wrong schema strings and malformed entries are
/// ignored (treated as empty), never fatal — a stale cache must not
/// be able to break a run.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace hymm {

/// One persisted decision.
struct TuneCacheEntry {
  std::uint64_t graph_fingerprint = 0;  ///< fingerprint of the sorted A_hat
  std::uint64_t config_hash = 0;        ///< tuning_config_hash() digest
  std::string mode;                     ///< "analytic" | "measured"
  double threshold = 0.0;               ///< the tuned tiling threshold
  double cycles = 0.0;     ///< winning cycles (measured) or estimate
  std::string dataset;     ///< informational label, not part of the key
  /// Router verdict: "" for plain threshold decisions, "global" when
  /// the degenerate map won, "tiles" when the per-tile map did
  /// (hymm-tune-cache/2).
  std::string route_kind;
  /// Routing-grid tile edge in nodes the verdict was computed on; 0
  /// for plain threshold decisions.
  std::uint64_t tile = 0;
};

/// Thread-safe load/lookup/insert over one cache file. All methods
/// are safe to call concurrently from sweep workers.
class TuneCache {
 public:
  /// Schema identifier written to and required from cache files.
  /// Files declaring the retired /1 schema are treated as empty
  /// (structural invalidation — a miss, never an error).
  static constexpr const char* kSchema = "hymm-tune-cache/2";

  /// Binds the cache to `path` and loads whatever valid entries the
  /// file holds. An empty path makes the cache memory-only (nothing
  /// is ever written to disk).
  explicit TuneCache(std::string path = {});

  /// Finds the decision for an exact (fingerprint, config, mode) key.
  std::optional<TuneCacheEntry> lookup(std::uint64_t graph_fingerprint,
                                       std::uint64_t config_hash,
                                       const std::string& mode) const;

  /// Inserts or replaces the entry with the same key and, when the
  /// cache is file-backed, rewrites the file.
  void insert(const TuneCacheEntry& entry);

  /// Number of valid entries currently held.
  std::size_t size() const;

  const std::string& path() const { return path_; }  ///< bound file; empty = memory-only

  /// Serializes the current entries as a `hymm-tune-cache/2`
  /// document (exposed for tests; insert() calls it internally).
  std::string to_json() const;

 private:
  void load_locked();
  void save_locked() const;

  std::string path_;
  mutable std::mutex mutex_;
  std::vector<TuneCacheEntry> entries_;
};

}  // namespace hymm
