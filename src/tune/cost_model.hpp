/// @file
/// Analytical cost model of the hybrid aggregation phase as a
/// function of the tiling threshold. A pure function of the sorted
/// adjacency's degree statistics plus the buffer geometry in
/// AcceleratorConfig — no simulator state — so it is unit-testable
/// against measured cycles and cheap enough to evaluate for every
/// candidate threshold on every graph. Full derivation: docs/tuning.md.
///
/// Shape of the model (roofline over three bounds):
///   - compute: every stored non-zero of A_hat touches one dense XW
///     row of `out_row_lines` 64-byte lines; the 16-lane PE array
///     retires one line per cycle, so nnz * out_row_lines cycles.
///   - DRAM bandwidth: estimated traffic of the three regions (OP
///     merge traffic for region 1, one-shot hot-row fills for
///     region 2, pessimistic all-miss streams for region 3) divided
///     by dram_bytes_per_cycle.
///   - DRAM latency: cold misses overlapped across dmb_mshr_entries
///     in-flight lines.
/// The threshold only moves the traffic term — which is exactly why
/// the measured cycle curve is flat wherever traffic is not the
/// binding bound, and why the model's job is mainly to avoid the
/// regions where it is (e.g. threshold 0 = no pinned OP rows).
#pragma once

#include <cstddef>
#include <vector>

#include "common/config.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"

namespace hymm {

/// One evaluated candidate. All byte/cycle figures are estimates in
/// doubles; `partition` holds the clamped region boundaries actually
/// implied by the candidate threshold (the same partition_regions()
/// clamp the simulator applies, so model and simulator can never
/// disagree about geometry).
struct CostEstimate {
  double threshold = 0.0;      ///< requested candidate threshold
  RegionPartition partition;   ///< clamped boundaries for it

  double op_bytes = 0.0;       ///< region-1 stream + merge traffic
  double rwp_hot_bytes = 0.0;  ///< region-2 one-shot hot-row fills
  double rwp_cold_bytes = 0.0; ///< region-3 pessimistic miss traffic
  double dram_bytes = 0.0;     ///< total, incl. adjacency + outputs

  double compute_cycles = 0.0; ///< MAC lower bound
  double memory_cycles = 0.0;  ///< dram_bytes / dram_bytes_per_cycle
  double latency_cycles = 0.0; ///< cold misses / MSHR parallelism
  double cycles = 0.0;         ///< max of the three bounds
};

/// Lines per dense output/XW row for a given dense column count —
/// the same `ceil(cols / 16)` the accelerator and partition clamp
/// use. Exposed so callers pass partition_regions() a consistent
/// out_row_lines.
std::size_t dense_row_lines(std::size_t dense_cols);

/// Evaluates one candidate threshold on a degree-sorted adjacency.
/// `dense_cols` is the dense operand's column count (the GCN layer
/// dimension). The config's own tiling_threshold is ignored; the
/// candidate is used instead.
CostEstimate estimate_hybrid_cost(const CsrMatrix& sorted_adjacency,
                                  const AcceleratorConfig& config,
                                  double threshold,
                                  std::size_t dense_cols);

/// Evaluates every candidate and returns the estimates in candidate
/// order (no argmin here; the tuner applies its own tie-breaking).
std::vector<CostEstimate> estimate_candidates(
    const CsrMatrix& sorted_adjacency, const AcceleratorConfig& config,
    const std::vector<double>& thresholds, std::size_t dense_cols);

}  // namespace hymm
