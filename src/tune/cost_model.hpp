/// @file
/// Analytical cost model of the hybrid aggregation phase as a
/// function of the tiling threshold. A pure function of the sorted
/// adjacency's degree statistics plus the buffer geometry in
/// AcceleratorConfig — no simulator state — so it is unit-testable
/// against measured cycles and cheap enough to evaluate for every
/// candidate threshold on every graph. Full derivation: docs/tuning.md.
///
/// Shape of the model (roofline over three bounds):
///   - compute: every stored non-zero of A_hat touches one dense XW
///     row of `out_row_lines` 64-byte lines; the 16-lane PE array
///     retires one line per cycle, so nnz * out_row_lines cycles.
///   - DRAM bandwidth: estimated traffic of the three regions (OP
///     merge traffic for region 1, one-shot hot-row fills for
///     region 2, pessimistic all-miss streams for region 3) divided
///     by dram_bytes_per_cycle.
///   - DRAM latency: cold misses overlapped across dmb_mshr_entries
///     in-flight lines.
/// The threshold only moves the traffic term — which is exactly why
/// the measured cycle curve is flat wherever traffic is not the
/// binding bound, and why the model's job is mainly to avoid the
/// regions where it is (e.g. threshold 0 = no pinned OP rows).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "core/routing.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"

namespace hymm {

/// One evaluated candidate. All byte/cycle figures are estimates in
/// doubles; `partition` holds the clamped region boundaries actually
/// implied by the candidate threshold (the same partition_regions()
/// clamp the simulator applies, so model and simulator can never
/// disagree about geometry).
struct CostEstimate {
  double threshold = 0.0;      ///< requested candidate threshold
  RegionPartition partition;   ///< clamped boundaries for it

  double op_bytes = 0.0;       ///< region-1 stream + merge traffic
  double rwp_hot_bytes = 0.0;  ///< region-2 one-shot hot-row fills
  double rwp_cold_bytes = 0.0; ///< region-3 pessimistic miss traffic
  double dram_bytes = 0.0;     ///< total, incl. adjacency + outputs

  double compute_cycles = 0.0; ///< MAC lower bound
  double memory_cycles = 0.0;  ///< dram_bytes / dram_bytes_per_cycle
  double latency_cycles = 0.0; ///< cold misses / MSHR parallelism
  double cycles = 0.0;         ///< max of the three bounds
};

/// Lines per dense output/XW row for a given dense column count —
/// the same `ceil(cols / 16)` the accelerator and partition clamp
/// use. Exposed so callers pass partition_regions() a consistent
/// out_row_lines.
std::size_t dense_row_lines(std::size_t dense_cols);

/// Evaluates one candidate threshold on a degree-sorted adjacency.
/// `dense_cols` is the dense operand's column count (the GCN layer
/// dimension). The config's own tiling_threshold is ignored; the
/// candidate is used instead.
CostEstimate estimate_hybrid_cost(const CsrMatrix& sorted_adjacency,
                                  const AcceleratorConfig& config,
                                  double threshold,
                                  std::size_t dense_cols);

/// Evaluates every candidate and returns the estimates in candidate
/// order (no argmin here; the tuner applies its own tie-breaking).
std::vector<CostEstimate> estimate_candidates(
    const CsrMatrix& sorted_adjacency, const AcceleratorConfig& config,
    const std::vector<double>& thresholds, std::size_t dense_cols);

/// Per-tile nonzero statistics over the routing grid — one CSR pass,
/// shared by the per-tile scoring and the routed roofline below. The
/// grid geometry matches TileRoutingMap / the spatial heatmap
/// (obs/spatial.hpp's `spatial_tile_edge`). Derivation:
/// docs/routing.md.
struct TileStats {
  NodeId nodes = 0;          ///< adjacency dimension
  NodeId tile = 0;           ///< tile edge in nodes
  std::size_t grid_rows = 0; ///< ceil(nodes / tile)
  std::size_t grid_cols = 0; ///< ceil(nodes / tile)
  NodeId hot_cols = 0;       ///< hot-column boundary the split used
  /// Nonzeros per tile, row-major over the grid.
  std::vector<std::uint64_t> nnz;
  /// Nonzeros per tile with column below `hot_cols` (the region-2
  /// "hot" share; the remainder is the pessimistic all-miss tail).
  std::vector<std::uint64_t> hot_nnz;
};

/// One pass over the sorted adjacency binning nonzeros into the
/// `tile_edge` grid, splitting each tile's count at `hot_cols`.
TileStats collect_tile_stats(const CsrMatrix& sorted_adjacency,
                             NodeId tile_edge, NodeId hot_cols);

/// Scores OP-vs-RWP per tile on `partition`'s boundaries and returns
/// the routing map: tiles in the pinned prefix keep OP only while the
/// per-tile roofline bytes favor it, everything else routes RWP.
/// Per-tile byte scores (docs/routing.md):
///   OP:  distinct-column coupon-collector within the tile's column
///        band — w * (1 - exp(-nnz / w)) XW-row fetches;
///   RWP: the tile's cold (past-hot-boundary) nonzeros all miss, plus
///        one extra output writeback per prefix row the tile
///        populates (mixed rows are stored by both phases).
/// Ties keep the degenerate OP choice, so an all-OP-favored graph
/// reproduces the global split exactly (map.degenerate == true).
TileRoutingMap route_tiles_by_cost(const TileStats& stats,
                                   const RegionPartition& partition,
                                   const AcceleratorConfig& config,
                                   std::size_t dense_cols);

/// Roofline estimate of the aggregation cycles under a routing map —
/// the routed generalization of estimate_hybrid_cost, used by the
/// TileRouter to compare a candidate map against the degenerate one
/// with the same estimator (apples to apples). Straddling tile bands
/// are split proportionally between the phases.
CostEstimate estimate_routed_cost(const TileStats& stats,
                                  const TileRoutingMap& map,
                                  const AcceleratorConfig& config,
                                  std::size_t dense_cols);

}  // namespace hymm
