/// @file
/// The per-graph partition auto-tuner. Picks the hybrid tiling
/// threshold for a concrete workload instead of trusting the fixed
/// paper default (20 %), in one of two modes:
///
///   - AutotuneMode::kAnalytic — evaluate the cost model
///     (tune/cost_model.hpp) on every candidate threshold and keep
///     the estimate-minimal one. No simulation; milliseconds.
///   - AutotuneMode::kMeasured — run every candidate through the real
///     simulator as a SweepSpec (one hybrid cell per candidate,
///     fanned across SweepRunner workers) and keep the cycle-minimal
///     one. Exact; costs |candidates| simulations on a miss.
///
/// Both modes share one selection rule: the fixed threshold from the
/// config is always a candidate and is only displaced by a *strictly*
/// better one, so a tuned run can never be worse than the fixed
/// baseline under the mode's own metric (ties keep the paper
/// default). Decisions are persisted in a TuneCache keyed by
/// (workload fingerprint, config hash, mode); a repeat run is a
/// lookup with zero simulations. See docs/tuning.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/runner.hpp"
#include "sweep/workload_cache.hpp"
#include "tune/cost_model.hpp"
#include "tune/tune_cache.hpp"

namespace hymm {

/// The canonical candidate thresholds every tuning search (and the
/// tiling ablation) sweeps: {0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.35,
/// 0.50}. Includes the paper's fixed 20 % so tuned-vs-fixed is an
/// argmin-vs-member comparison, and 0 so the "no OP region" corner
/// stays covered. Thresholds beyond 0.50 are pointless on the paper
/// graphs: the DMB clamp has long since bound both regions.
std::vector<double> candidate_thresholds();

/// Content fingerprint of a prepared workload: its normalized
/// adjacency, feature structure, weight shape and seed combined. Two
/// workloads with equal fingerprints are the same tuning problem.
std::uint64_t workload_fingerprint(const PreparedWorkload& workload);

/// One candidate's outcome inside a decision.
struct TuneCandidate {
  double threshold = 0.0;        ///< candidate tiling threshold
  double model_cycles = 0.0;     ///< analytic estimate (both modes)
  double measured_cycles = 0.0;  ///< simulated cycles; 0 if not simulated
};

/// The tuner's verdict for one (workload, config, mode) question.
struct TuneDecision {
  AutotuneMode mode = AutotuneMode::kOff;  ///< mode the search ran in
  double fixed_threshold = 0.0;  ///< config.tiling_threshold going in
  double threshold = 0.0;        ///< chosen tiling threshold
  double best_cycles = 0.0;  ///< winner's metric (cycles or estimate)
  bool cache_hit = false;    ///< true when served from the TuneCache
  std::uint64_t simulations = 0;  ///< simulator runs this call paid for
  std::uint64_t graph_fingerprint = 0;  ///< workload_fingerprint() digest
  std::uint64_t config_hash = 0;        ///< tuning_config_hash() digest
  /// Every evaluated candidate, in search order. Empty on cache hits
  /// (the cache stores only the verdict).
  std::vector<TuneCandidate> candidates;
};

/// Converts a decision into the plain TuneInfo annotation drivers
/// attach to hybrid ExperimentResults for the run report (the kOff
/// decision maps to enabled=false, i.e. no "tune" object).
TuneInfo to_tune_info(const TuneDecision& decision);

/// Stateful tuner bound to one cache file (or memory-only when the
/// path is empty). Thread-safe: the cache is internally locked and
/// measured searches use their own SweepRunner.
class Tuner {
 public:
  /// `cache_path` — the `hymm-tune-cache/2` file to load and persist
  /// decisions in; empty keeps decisions in memory only.
  explicit Tuner(std::string cache_path = {});

  /// Answers "which threshold should this workload run with?".
  /// `config.tiling_threshold` is read as the fixed baseline;
  /// `threads` only matters for measured misses (0 = HYMM_THREADS /
  /// auto, like SweepOptions). kOff returns the fixed threshold
  /// without touching the cache. `checkpoints` (optional) is handed
  /// to the measured search's sweep: every candidate differs only in
  /// tiling_threshold — which tuning_config_hash deliberately
  /// excludes — so all candidates restore one shared combination
  /// checkpoint instead of re-simulating the XW phase per candidate.
  TuneDecision tune(std::shared_ptr<const PreparedWorkload> workload,
                    const AcceleratorConfig& config, AutotuneMode mode,
                    unsigned threads = 1,
                    CheckpointStore* checkpoints = nullptr);

  /// `config` with the decision's threshold applied — what sweep
  /// cells should actually run.
  static AcceleratorConfig apply(const AcceleratorConfig& config,
                                 const TuneDecision& decision);

  /// Total candidate simulations this tuner has paid for (cache hits
  /// add zero) — the test hook for "second run skips simulation".
  std::uint64_t measured_simulations() const {
    return measured_simulations_.load();
  }

  TuneCache& cache() { return cache_; }  ///< the underlying decision cache

 private:
  TuneCache cache_;
  std::atomic<std::uint64_t> measured_simulations_{0};
};

}  // namespace hymm
