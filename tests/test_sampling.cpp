// Sampled-simulation mode (core/sampling.hpp): the seeded band
// selection is deterministic and well-formed, extrapolated counters
// keep the exact stall-bucket invariant, sampled cycle estimates stay
// within the documented relative-error bound of the exact run
// (docs/performance.md), and sampled results are labeled — never
// verified — all the way up through run_experiment and the sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

#include "common/check.hpp"
#include "core/accelerator.hpp"
#include "core/runner.hpp"
#include "core/sampling.hpp"
#include "graph/datasets.hpp"
#include "graph/generator.hpp"
#include "linalg/gcn.hpp"
#include "sweep/sweep.hpp"
#include "sweep/workload_cache.hpp"

namespace hymm {
namespace {

// The documented per-(dataset, flow) relative cycle-error bound of
// sampled mode (docs/performance.md); the CI cross-check leg asserts
// the same bound on the full perf-gate workload.
constexpr double kRelErrorBound = 0.10;

struct Problem {
  CsrMatrix a_hat;
  CsrMatrix x;
  DenseMatrix w;
};

// Big enough that sampling (with the floors lowered below) actually
// extrapolates instead of collapsing to a full simulation.
Problem make_problem(NodeId nodes = 600, EdgeCount edges = 9000,
                     NodeId features = 128, double density = 0.35,
                     std::uint64_t seed = 42) {
  GraphSpec gspec;
  gspec.nodes = nodes;
  gspec.edges = edges;
  gspec.seed = seed;
  Problem p;
  p.a_hat = normalize_adjacency(generate_power_law_graph(gspec));
  FeatureSpec fspec;
  fspec.nodes = nodes;
  fspec.feature_length = features;
  fspec.density = density;
  fspec.seed = seed + 1;
  p.x = generate_features(fspec);
  p.w = DenseMatrix::random(features, 16, seed + 2);
  return p;
}

// Floors lowered so this problem size genuinely samples (the defaults
// would run it exactly — the right behavior in production, but no
// test coverage of the estimator).
SampleOptions sampling_options(double fraction = 0.25,
                               std::uint64_t seed = 42) {
  SampleOptions options;
  options.fraction = fraction;
  options.seed = seed;
  options.min_nnz = 4096;
  options.min_band_nnz = 1024;
  return options;
}

SampledLayerResult run_sampled(const Problem& p, Dataflow flow,
                               const SampleOptions& options) {
  SampledLayerRequest request;
  request.flow = flow;
  request.a_hat = &p.a_hat;
  request.x = &p.x;
  request.w = &p.w;
  request.options = options;
  return run_layer_sampled(AcceleratorConfig{}, request);
}

TEST(SelectSampleBands, DeterministicAndWellFormed) {
  const BandSelection a = select_sample_bands(1000, 16, 0.25, 7);
  const BandSelection b = select_sample_bands(1000, 16, 0.25, 7);
  EXPECT_EQ(a.bands_total, b.bands_total);
  EXPECT_EQ(a.selected, b.selected);

  EXPECT_EQ(a.bands_total, 16u);
  EXPECT_EQ(a.selected.size(), 4u);  // round(0.25 * 16)
  NodeId prev_end = 0;
  for (const auto& [begin, end] : a.selected) {
    EXPECT_LT(begin, end);
    EXPECT_LE(end, 1000u);
    EXPECT_GE(begin, prev_end);  // ascending, disjoint
    prev_end = end;
  }
}

TEST(SelectSampleBands, StratifiedSelectionSpansTheExtent) {
  // One pick per contiguous stratum: with k = 4 of 16 bands, each
  // quarter of the extent contributes exactly one band.
  const BandSelection sel = select_sample_bands(1600, 16, 0.25, 123);
  ASSERT_EQ(sel.selected.size(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    const NodeId stratum_begin = static_cast<NodeId>(s * 400);
    const NodeId stratum_end = static_cast<NodeId>((s + 1) * 400);
    EXPECT_GE(sel.selected[s].first, stratum_begin);
    EXPECT_LT(sel.selected[s].first, stratum_end);
  }
}

TEST(SelectSampleBands, FullFractionCoversEverything) {
  const BandSelection sel = select_sample_bands(1003, 16, 1.0, 9);
  EXPECT_EQ(sel.selected.size(), sel.bands_total);
  NodeId covered = 0;
  NodeId expected_begin = 0;
  for (const auto& [begin, end] : sel.selected) {
    EXPECT_EQ(begin, expected_begin);  // contiguous, in order
    covered += end - begin;
    expected_begin = end;
  }
  EXPECT_EQ(covered, 1003u);
}

TEST(SelectSampleBands, EdgeCases) {
  EXPECT_TRUE(select_sample_bands(0, 16, 0.5, 1).selected.empty());

  // Tiny fraction still simulates at least one band.
  const BandSelection tiny = select_sample_bands(1000, 16, 0.001, 1);
  EXPECT_EQ(tiny.selected.size(), 1u);

  // Extent smaller than the band target: one row per band.
  const BandSelection narrow = select_sample_bands(5, 16, 1.0, 1);
  EXPECT_EQ(narrow.bands_total, 5u);
  EXPECT_EQ(narrow.selected.size(), 5u);
}

// The headline guarantee, on the real workload it is documented for:
// the extrapolated cycle estimate lands within the documented bound
// of the exact simulation for every flow on full-scale Cora with
// production SampleOptions (docs/performance.md; the CI cross-check
// leg asserts the same bound on the full CR+CS perf workload).
TEST(SampledSimulation, CyclesWithinDocumentedBoundOfExactOnCora) {
  const PreparedWorkload prepared(*find_dataset("CR"), 1.0, 42);
  Accelerator exact{AcceleratorConfig{}};

  for (Dataflow flow : {Dataflow::kOuterProduct, Dataflow::kRowWiseProduct,
                        Dataflow::kHybrid}) {
    SCOPED_TRACE(to_string(flow));
    LayerRunRequest exact_request;
    exact_request.flow = flow;
    exact_request.a_hat = &prepared.a_hat();
    exact_request.x = &prepared.workload().features;
    exact_request.w = &prepared.weights();
    exact_request.sort = &prepared.sort();
    exact_request.sorted_features = &prepared.sorted_features();
    const LayerRunResult truth = exact.run_layer(exact_request);

    SampledLayerRequest request;
    request.flow = flow;
    request.a_hat = &prepared.a_hat();
    request.x = &prepared.workload().features;
    request.w = &prepared.weights();
    request.sort = &prepared.sort();
    request.sorted_features = &prepared.sorted_features();
    // Production defaults: fraction 0.25, seed 42, adaptive floors on.
    const SampledLayerResult sampled =
        run_layer_sampled(AcceleratorConfig{}, request);
    ASSERT_TRUE(sampled.sample.enabled);
    ASSERT_GT(sampled.stats.cycles, 0u);

    const double rel_err =
        std::abs(static_cast<double>(sampled.stats.cycles) -
                 static_cast<double>(truth.stats.cycles)) /
        static_cast<double>(truth.stats.cycles);
    EXPECT_LE(rel_err, kRelErrorBound)
        << "exact " << truth.stats.cycles << " sampled "
        << sampled.stats.cycles;
  }
}

class SampledFlows : public ::testing::TestWithParam<Dataflow> {};

// Extrapolation must preserve the simulator's accounting identity
// exactly: per phase and whole-layer, the stall buckets sum to the
// cycle count (scale_stats absorbs rounding residue).
TEST_P(SampledFlows, ExtrapolatedStatsKeepStallInvariant) {
  const Problem p = make_problem();
  const SampledLayerResult r =
      run_sampled(p, GetParam(), sampling_options());
  EXPECT_EQ(r.combination_stats.stall_total(), r.combination_stats.cycles);
  EXPECT_EQ(r.aggregation_stats.stall_total(), r.aggregation_stats.cycles);
  EXPECT_EQ(r.stats.stall_total(), r.stats.cycles);
  EXPECT_EQ(r.stats.cycles,
            r.combination_stats.cycles + r.aggregation_stats.cycles);
}

// Fixed (request, config, seed) must reproduce bit-identically; a
// different seed draws different bands.
TEST_P(SampledFlows, DeterministicForFixedSeed) {
  const Problem p = make_problem();
  const SampledLayerResult a =
      run_sampled(p, GetParam(), sampling_options(0.25, 7));
  const SampledLayerResult b =
      run_sampled(p, GetParam(), sampling_options(0.25, 7));
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.stall_cycles, b.stats.stall_cycles);
  EXPECT_EQ(a.stats.dram_total_bytes(), b.stats.dram_total_bytes());
  EXPECT_DOUBLE_EQ(a.sample.cycles_estimate(), b.sample.cycles_estimate());
}

// Sampling bookkeeping: simulated band/nnz counts are labeled, the
// estimate is the phase sum, and partial coverage means the phases
// really were subsampled.
TEST_P(SampledFlows, EstimateAnnotationsAreConsistent) {
  const Problem p = make_problem();
  const SampledLayerResult r =
      run_sampled(p, GetParam(), sampling_options());
  const SampleInfo& s = r.sample;
  ASSERT_TRUE(s.enabled);
  EXPECT_DOUBLE_EQ(s.fraction, 0.25);

  for (const PhaseSampleEstimate* phase : {&s.combination, &s.aggregation}) {
    EXPECT_LE(phase->bands_simulated, phase->bands_total);
    EXPECT_LE(phase->nnz_simulated, phase->nnz_total);
    EXPECT_GE(phase->cycles_estimate, 0.0);
    EXPECT_GE(phase->cycles_stderr, 0.0);
  }
  // The combination phase is large enough here that sampling must
  // actually have subsampled it.
  EXPECT_LT(s.combination.bands_simulated, s.combination.bands_total);
  EXPECT_LT(s.combination.nnz_simulated, s.combination.nnz_total);
  EXPECT_NEAR(s.cycles_estimate(),
              s.combination.cycles_estimate + s.aggregation.cycles_estimate,
              1e-9);
  EXPECT_DOUBLE_EQ(
      s.cycles_stderr(),
      std::hypot(s.combination.cycles_stderr, s.aggregation.cycles_stderr));
  if (s.cycles_estimate() > 0.0) {
    EXPECT_DOUBLE_EQ(s.rel_error_bound(),
                     2.0 * s.cycles_stderr() / s.cycles_estimate());
  }
}

// fraction = 1 simulates every band: full coverage, zero variance.
TEST_P(SampledFlows, FullFractionHasFullCoverageAndZeroStderr) {
  const Problem p = make_problem();
  const SampledLayerResult r =
      run_sampled(p, GetParam(), sampling_options(1.0));
  const SampleInfo& s = r.sample;
  EXPECT_EQ(s.combination.bands_simulated, s.combination.bands_total);
  EXPECT_EQ(s.combination.nnz_simulated, s.combination.nnz_total);
  EXPECT_EQ(s.aggregation.bands_simulated, s.aggregation.bands_total);
  EXPECT_EQ(s.aggregation.nnz_simulated, s.aggregation.nnz_total);
  EXPECT_DOUBLE_EQ(s.combination.cycles_stderr, 0.0);
  EXPECT_DOUBLE_EQ(s.aggregation.cycles_stderr, 0.0);
}

// The adaptive floors: a phase below min_nnz raises its effective
// fraction to full coverage (exact phase), whatever the request said.
TEST(SampledSimulation, SmallPhasesCollapseToExactSimulation) {
  const Problem p = make_problem(120, 900, 32, 0.2, 5);
  SampleOptions options;  // production defaults: min_nnz = 1 << 16
  options.fraction = 0.1;
  const SampledLayerResult r =
      run_sampled(p, Dataflow::kRowWiseProduct, options);
  EXPECT_EQ(r.sample.combination.nnz_simulated,
            r.sample.combination.nnz_total);
  EXPECT_EQ(r.sample.aggregation.nnz_simulated,
            r.sample.aggregation.nnz_total);
}

TEST(SampledSimulation, RejectsOutOfRangeFraction) {
  const Problem p = make_problem(60, 300, 16, 0.3, 3);
  SampledLayerRequest request;
  request.flow = Dataflow::kRowWiseProduct;
  request.a_hat = &p.a_hat;
  request.x = &p.x;
  request.w = &p.w;
  request.options.fraction = 1.5;
  EXPECT_THROW(run_layer_sampled(AcceleratorConfig{}, request), CheckError);
  request.options.fraction = 0.0;
  EXPECT_THROW(run_layer_sampled(AcceleratorConfig{}, request), CheckError);
}

INSTANTIATE_TEST_SUITE_P(AllDataflows, SampledFlows,
                         ::testing::Values(Dataflow::kOuterProduct,
                                           Dataflow::kRowWiseProduct,
                                           Dataflow::kHybrid),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

// run_experiment in sampled mode: the result is labeled, never
// verified, and carries the extrapolated counters.
TEST(SampledExperiment, RunnerLabelsSampledResults) {
  const PreparedWorkload prepared(*find_dataset("CR"), 0.25, 42);
  ExperimentRequest request;
  request.workload = &prepared.workload();
  request.a_hat = &prepared.a_hat();
  request.weights = &prepared.weights();
  request.reference = &prepared.reference();
  request.flow = Dataflow::kRowWiseProduct;
  request.sample = 0.5;
  request.sample_seed = 11;

  const ExperimentResult r = run_experiment(request);
  EXPECT_TRUE(r.sample.enabled);
  EXPECT_DOUBLE_EQ(r.sample.fraction, 0.5);
  EXPECT_EQ(r.sample.seed, 11u);
  EXPECT_FALSE(r.verified);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_EQ(r.cycles, r.stats.cycles);
  EXPECT_EQ(r.combination_cycles + r.aggregation_cycles, r.cycles);
  EXPECT_EQ(r.stats.stall_total(), r.stats.cycles);
}

// The sweep applies the sampling knob to every cell, and sampled
// sweeps stay thread-count invariant like exact ones.
TEST(SampledSweep, ThreadCountDoesNotChangeSampledResults) {
  SweepSpec spec;
  spec.datasets = {*find_dataset("CR")};
  spec.scale = 0.25;
  spec.seed = 42;

  SweepOptions serial;
  serial.threads = 1;
  serial.sample = 0.5;
  const SweepRun base = SweepRunner(serial).run(spec);

  SweepOptions parallel;
  parallel.threads = 4;
  parallel.sample = 0.5;
  const SweepRun threaded = SweepRunner(parallel).run(spec);

  ASSERT_EQ(base.cells.size(), threaded.cells.size());
  for (std::size_t i = 0; i < base.cells.size(); ++i) {
    const ExperimentResult& a = base.cells[i].result;
    const ExperimentResult& b = threaded.cells[i].result;
    SCOPED_TRACE(a.abbrev + "/" + to_string(a.flow));
    EXPECT_TRUE(a.sample.enabled);
    EXPECT_TRUE(b.sample.enabled);
    EXPECT_FALSE(a.verified);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.stall_cycles, b.stats.stall_cycles);
    EXPECT_EQ(a.dram_total_bytes, b.dram_total_bytes);
  }
}

}  // namespace
}  // namespace hymm
