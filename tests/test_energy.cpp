// Tests for the energy model and the alternative orderings.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "core/runner.hpp"
#include "graph/degree_sort.hpp"
#include "graph/generator.hpp"
#include "model/energy.hpp"

namespace hymm {
namespace {

TEST(Energy, ZeroStatsZeroEnergy) {
  const EnergyReport report =
      estimate_energy(SimStats{}, AcceleratorConfig{});
  EXPECT_DOUBLE_EQ(report.total_uj, 0.0);
  EXPECT_DOUBLE_EQ(report.average_power_w(1.0, 0), 0.0);
}

TEST(Energy, ComponentsSumToTotal) {
  SimStats stats;
  stats.cycles = 1000;
  stats.mac_ops = 500;
  stats.merge_adds = 100;
  stats.dmb_read_hits = 400;
  stats.lsq_loads = 400;
  stats.lsq_stores = 100;
  stats.dram_read_bytes[0] = 64 * 100;
  const EnergyReport report = estimate_energy(stats, AcceleratorConfig{});
  double sum = 0.0;
  for (const ComponentEnergy& c : report.components) sum += c.energy_uj;
  EXPECT_DOUBLE_EQ(report.total_uj, sum);
  EXPECT_GT(report.total_uj, 0.0);
  EXPECT_EQ(report.components.size(), 6u);  // PE/DMB/SMQ/LSQ/DRAM/Static
}

TEST(Energy, ScalesWithWork) {
  SimStats one;
  one.cycles = 100;
  one.mac_ops = 100;
  SimStats two = one;
  two.mac_ops = 200;
  const AcceleratorConfig config;
  EXPECT_GT(estimate_energy(two, config).total_uj,
            estimate_energy(one, config).total_uj);
}

TEST(Energy, DramCoefficientDominatesSpillHeavyRuns) {
  SimStats spilly;
  spilly.cycles = 1000;
  spilly.mac_ops = 100;
  spilly.dram_write_bytes[static_cast<std::size_t>(
      TrafficClass::kPartial)] = 10 * 1024 * 1024;
  const EnergyReport report =
      estimate_energy(spilly, AcceleratorConfig{});
  const auto dram = std::find_if(
      report.components.begin(), report.components.end(),
      [](const ComponentEnergy& c) { return c.name == "DRAM"; });
  ASSERT_NE(dram, report.components.end());
  EXPECT_GT(dram->energy_uj, report.total_uj * 0.9);
}

TEST(Energy, AveragePowerUsesClock) {
  EnergyReport report;
  report.total_uj = 1.0;  // 1 uJ over 1000 cycles @1 GHz = 1 us -> 1 W
  EXPECT_NEAR(report.average_power_w(1.0, 1000), 1.0, 1e-9);
  EXPECT_NEAR(report.average_power_w(2.0, 1000), 2.0, 1e-9);
}

TEST(Energy, EndToEndHymmCheaperThanOp) {
  const DatasetSpec cora = *find_dataset("CR");
  const AcceleratorConfig config;
  const DataflowComparison cmp = compare_dataflows(
      cora, config, {Dataflow::kOuterProduct, Dataflow::kHybrid}, 0.25, 3);
  const double op_uj =
      estimate_energy(cmp.by_flow(Dataflow::kOuterProduct).stats, config)
          .total_uj;
  const double hymm_uj =
      estimate_energy(cmp.by_flow(Dataflow::kHybrid).stats, config)
          .total_uj;
  EXPECT_LT(hymm_uj, op_uj);
}

CsrMatrix ordering_graph() {
  GraphSpec spec;
  spec.nodes = 400;
  spec.edges = 3200;
  spec.seed = 77;
  return generate_power_law_graph(spec);
}

TEST(Orderings, BfsPermutationIsBijective) {
  const CsrMatrix a = ordering_graph();
  const auto perm = bfs_permutation(a);
  EXPECT_NO_THROW(invert_permutation(perm));
  EXPECT_EQ(perm.size(), a.rows());
}

TEST(Orderings, BfsCoversIsolatedNodes) {
  CooMatrix coo(6, 6);
  coo.add(0, 1, 1.0f);
  coo.add(1, 0, 1.0f);
  // Nodes 2..5 are isolated; BFS must still number them.
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  const auto perm = bfs_permutation(a);
  EXPECT_NO_THROW(invert_permutation(perm));
}

TEST(Orderings, BfsImprovesNeighbourIdLocality) {
  // Average |perm[u] - perm[v]| over edges should shrink vs random.
  const CsrMatrix a = ordering_graph();
  auto mean_span = [&](const std::vector<NodeId>& perm) {
    double total = 0.0;
    for (NodeId r = 0; r < a.rows(); ++r) {
      for (const NodeId c : a.row_cols(r)) {
        const double d = static_cast<double>(perm[r]) - perm[c];
        total += d < 0 ? -d : d;
      }
    }
    return total / static_cast<double>(a.nnz());
  };
  const double bfs_span = mean_span(bfs_permutation(a));
  const double random_span =
      mean_span(random_permutation_of(a.rows(), 5));
  EXPECT_LT(bfs_span, random_span * 0.8);
}

TEST(Orderings, RandomPermutationDeterministicPerSeed) {
  EXPECT_EQ(random_permutation_of(100, 1), random_permutation_of(100, 1));
  EXPECT_NE(random_permutation_of(100, 1), random_permutation_of(100, 2));
  EXPECT_NO_THROW(invert_permutation(random_permutation_of(100, 1)));
}

}  // namespace
}  // namespace hymm
