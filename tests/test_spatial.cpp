// Spatial attribution acceptance suite (obs/spatial.hpp): the
// imbalance math and SpatialTracker unit behavior, plus the tentpole
// contracts — timing bit-identical with the tracker on or off, the
// three conservation invariants (PE busy, DRAM bytes, cycles) per
// dataflow, the hybrid region-nnz cross-check against the partition,
// and spatial counters bit-identical under every fast-forward mode
// and sweep thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/runner.hpp"
#include "graph/datasets.hpp"
#include "graph/degree_sort.hpp"
#include "linalg/gcn.hpp"
#include "obs/observer.hpp"
#include "obs/spatial.hpp"
#include "sweep/sweep.hpp"

namespace hymm {
namespace {

// --- Imbalance analytics unit math ---

TEST(Imbalance, EmptyVectorIsAllZero) {
  const ImbalanceStats s = compute_imbalance({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max_value, 0u);
  EXPECT_EQ(s.max_over_mean, 0.0);
  EXPECT_EQ(s.cov, 0.0);
  EXPECT_EQ(s.gini, 0.0);
}

TEST(Imbalance, AllZeroWorkHasNoImbalance) {
  const std::vector<std::uint64_t> v{0, 0, 0};
  const ImbalanceStats s = compute_imbalance(v);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.max_value, 0u);
  EXPECT_EQ(s.max_over_mean, 0.0);
  EXPECT_EQ(s.cov, 0.0);
  EXPECT_EQ(s.gini, 0.0);
}

TEST(Imbalance, UniformWorkIsPerfectlyBalanced) {
  const std::vector<std::uint64_t> v{5, 5, 5, 5};
  const ImbalanceStats s = compute_imbalance(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_EQ(s.max_value, 5u);
  EXPECT_DOUBLE_EQ(s.max_over_mean, 1.0);
  EXPECT_DOUBLE_EQ(s.cov, 0.0);
  EXPECT_DOUBLE_EQ(s.gini, 0.0);
}

TEST(Imbalance, KnownSkewedVector) {
  // {1,2,3,4}: mean 2.5, max/mean 1.6, Gini 0.25, CoV sqrt(1.25)/2.5.
  const std::vector<std::uint64_t> v{4, 1, 3, 2};  // order must not matter
  const ImbalanceStats s = compute_imbalance(v);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_EQ(s.max_value, 4u);
  EXPECT_DOUBLE_EQ(s.max_over_mean, 1.6);
  EXPECT_NEAR(s.cov, 0.4472135955, 1e-9);
  EXPECT_DOUBLE_EQ(s.gini, 0.25);
}

TEST(Imbalance, AllWorkOnOneUnit) {
  // {0,0,0,10}: max/mean 4, CoV sqrt(3), Gini (n-1)/n = 0.75.
  const std::vector<std::uint64_t> v{0, 0, 0, 10};
  const ImbalanceStats s = compute_imbalance(v);
  EXPECT_DOUBLE_EQ(s.max_over_mean, 4.0);
  EXPECT_NEAR(s.cov, 1.7320508076, 1e-9);
  EXPECT_DOUBLE_EQ(s.gini, 0.75);
}

// --- SpatialTracker unit behavior ---

TEST(SpatialTrackerTest, DisabledTrackerStaysInert) {
  SpatialTracker t(/*enabled=*/false, /*tile_override=*/0);
  t.begin(100, 4);
  EXPECT_FALSE(t.active());
  t.account_cycles(10);
  EXPECT_TRUE(t.data().empty());
}

TEST(SpatialTrackerTest, ExplicitTileOverrideSizesTheGrid) {
  SpatialTracker t(/*enabled=*/true, /*tile_override=*/10);
  t.begin(100, 4);
  ASSERT_TRUE(t.active());
  EXPECT_EQ(t.data().tile, 10u);
  EXPECT_EQ(t.data().grid_rows, 10u);
  EXPECT_EQ(t.data().grid_cols, 10u);
}

TEST(SpatialTrackerTest, AutoTileTargetsThirtyTwoTilesPerSide) {
  SpatialTracker t(/*enabled=*/true, /*tile_override=*/0);
  t.begin(100, 4);
  // ceil(100/32) = 4-node tiles, ceil(100/4) = 25 tiles per side.
  EXPECT_EQ(t.data().tile, 4u);
  EXPECT_EQ(t.data().grid_rows, 25u);
}

TEST(SpatialTrackerTest, TinyTilesAreClampedToTheMaxGridSide) {
  SpatialTracker t(/*enabled=*/true, /*tile_override=*/2);
  t.begin(100000, 4);
  EXPECT_LE(t.data().grid_rows, SpatialTracker::kMaxGridSide);
  EXPECT_GE(t.data().tile, 2u);
  // The raised tile still covers every node.
  EXPECT_GE(t.data().grid_rows * t.data().tile, 100000u);
}

TEST(SpatialTrackerTest, FocusAttributionAndResidualConservation) {
  SpatialTracker t(/*enabled=*/true, /*tile_override=*/4);
  t.begin(8, 2);  // 2x2 grid

  // MAC at (0,0) focuses tile 0 of the OP region.
  t.on_mac(0, 0, SpatialRegion::kOp, /*first_chunk=*/true);
  t.account_cycles(3);
  t.on_dram_bytes(64);
  t.on_dmb_hit();

  // MAC at (5,5) moves the focus to tile (1,1) of the RWP region; the
  // second feature chunk is a MAC but not a new nonzero.
  t.on_mac(5, 5, SpatialRegion::kRwp, /*first_chunk=*/true);
  t.on_mac(5, 5, SpatialRegion::kRwp, /*first_chunk=*/false);
  t.account_cycles(2);
  t.on_dmb_miss();

  // Drain work lands in the residual once the focus clears.
  t.unfocus();
  t.account_cycles(7);
  t.on_dram_bytes(128);

  // PE ops: one 2-lane MAC, one 1-lane merge add.
  t.on_pe_op(2, /*is_mac=*/true);
  t.on_pe_op(1, /*is_mac=*/false);

  const SpatialData d = t.take();
  const SpatialTileCounters& op =
      d.regions[static_cast<std::size_t>(SpatialRegion::kOp)];
  const SpatialTileCounters& rwp =
      d.regions[static_cast<std::size_t>(SpatialRegion::kRwp)];
  ASSERT_FALSE(op.empty());
  ASSERT_FALSE(rwp.empty());
  EXPECT_EQ(op.nnz[0], 1u);
  EXPECT_EQ(op.cycles[0], 3u);
  EXPECT_EQ(op.dram_bytes[0], 64u);
  EXPECT_EQ(op.dmb_hits[0], 1u);
  EXPECT_EQ(rwp.nnz[3], 1u);
  EXPECT_EQ(rwp.macs[3], 2u);
  EXPECT_EQ(rwp.cycles[3], 2u);
  EXPECT_EQ(rwp.dmb_misses[3], 1u);
  EXPECT_EQ(d.residual_cycles, 7u);
  EXPECT_EQ(d.residual_dram_bytes, 128u);

  // Conservation: grid + residual equals everything charged.
  EXPECT_EQ(d.total_cycles(), 12u);
  EXPECT_EQ(d.total_dram_bytes(), 192u);
  EXPECT_EQ(d.grid_nnz(), 2u);
  EXPECT_EQ(d.grid_macs(), 3u);

  // Positional lane model: lane 0 busy for both ops, lane 1 for the
  // 2-lane MAC only; merge adds busy a lane without a MAC.
  EXPECT_EQ(d.array_busy_cycles, 2u);
  ASSERT_EQ(d.lane_busy_cycles.size(), 2u);
  EXPECT_EQ(d.lane_busy_cycles[0], 2u);
  EXPECT_EQ(d.lane_busy_cycles[1], 1u);
  EXPECT_EQ(d.lane_mac_ops[0], 1u);
  EXPECT_EQ(d.lane_mac_ops[1], 1u);

  // take() deactivated the tracker; further hooks are no-ops.
  EXPECT_FALSE(t.active());
  t.account_cycles(99);
  EXPECT_TRUE(t.data().empty());
}

TEST(SpatialTrackerTest, RowBandCyclesSumAcrossRegionsAndColumns) {
  SpatialTracker t(/*enabled=*/true, /*tile_override=*/4);
  t.begin(8, 2);
  t.on_mac(0, 0, SpatialRegion::kOp, true);
  t.account_cycles(10);
  t.on_mac(0, 5, SpatialRegion::kRwp, true);  // row band 0, column 1
  t.account_cycles(5);
  t.on_mac(6, 2, SpatialRegion::kRwp, true);  // row band 1
  t.account_cycles(2);
  const std::vector<std::uint64_t> bands = t.take().row_band_cycles();
  ASSERT_EQ(bands.size(), 2u);
  EXPECT_EQ(bands[0], 15u);
  EXPECT_EQ(bands[1], 2u);
}

// --- Simulation-level contracts ---

// Restores the process-wide fast-forward mode on scope exit.
class ModeGuard {
 public:
  ModeGuard() : saved_(fast_forward_mode()) {}
  ~ModeGuard() { set_fast_forward_mode(saved_); }

 private:
  FastForwardMode saved_;
};

struct Fixture {
  GcnWorkload workload;
  CsrMatrix a_hat;
  DenseMatrix weights;
  DenseMatrix reference;
};

Fixture build_fixture(double scale) {
  const DatasetSpec spec = *find_dataset("CR");
  Fixture f;
  f.workload = build_workload(spec, scale, /*seed=*/42);
  f.a_hat = normalize_adjacency(f.workload.adjacency);
  f.weights = DenseMatrix::random(f.workload.spec.feature_length,
                                  f.workload.spec.layer_dim, 49);
  f.reference =
      gcn_layer_reference(f.a_hat, f.workload.features, f.weights, false)
          .aggregation;
  return f;
}

ExperimentResult run_with_observer(const Fixture& f, Dataflow flow,
                                   Observer* obs) {
  ExperimentRequest request;
  request.workload = &f.workload;
  request.a_hat = &f.a_hat;
  request.weights = &f.weights;
  request.reference = &f.reference;
  request.flow = flow;
  request.config = AcceleratorConfig{};
  request.observer = obs;
  return run_experiment(request);
}

ExperimentResult run_with_spatial(const Fixture& f, Dataflow flow) {
  ObserverOptions options;
  options.spatial = true;
  Observer obs(options);
  obs.begin_run("spatial");
  return run_with_observer(f, flow, &obs);
}

// The tracker must not perturb timing: with spatial attribution on,
// cycles, stall accounting and DRAM traffic are bit-identical to a
// bare run, and a bare run carries no spatial data.
TEST(SpatialSim, TrackerNeverAffectsTiming) {
  const Fixture f = build_fixture(0.1);
  for (const Dataflow flow :
       {Dataflow::kRowWiseProduct, Dataflow::kOuterProduct,
        Dataflow::kHybrid}) {
    SCOPED_TRACE(to_string(flow));
    const ExperimentResult bare = run_with_observer(f, flow, nullptr);
    const ExperimentResult sampled = run_with_spatial(f, flow);
    EXPECT_EQ(bare.cycles, sampled.cycles);
    EXPECT_EQ(bare.stats.stall_cycles, sampled.stats.stall_cycles);
    EXPECT_EQ(bare.dram_total_bytes, sampled.dram_total_bytes);
    EXPECT_TRUE(bare.spatial.empty());
    ASSERT_FALSE(sampled.spatial.empty());
  }
}

// The three conservation invariants of the issue, per dataflow:
// per-PE busy cycles roll up to the aggregate PE-busy counter, the
// tile grid's DRAM bytes plus the residual equal the run's DRAM
// bytes, and tile cycles plus the residual equal the run cycles.
TEST(SpatialSim, CountersConserveRunTotals) {
  const Fixture f = build_fixture(0.1);
  for (const Dataflow flow :
       {Dataflow::kRowWiseProduct, Dataflow::kOuterProduct,
        Dataflow::kHybrid}) {
    SCOPED_TRACE(to_string(flow));
    const ExperimentResult r = run_with_spatial(f, flow);
    ASSERT_FALSE(r.spatial.empty());

    // PE busy: the array-level counter matches SimStats exactly, and
    // the positional lane model stays within it (lane 0 engages on
    // every retired op).
    EXPECT_EQ(r.spatial.array_busy_cycles, r.stats.alu_busy_cycles);
    ASSERT_EQ(r.spatial.lane_busy_cycles.size(),
              AcceleratorConfig{}.pe_count);
    EXPECT_EQ(r.spatial.lane_busy_cycles[0], r.spatial.array_busy_cycles);
    for (const std::uint64_t lane : r.spatial.lane_busy_cycles) {
      EXPECT_LE(lane, r.spatial.array_busy_cycles);
    }

    // DRAM bytes and cycles: grid + residual == run totals.
    EXPECT_EQ(r.spatial.total_dram_bytes(), r.stats.dram_total_bytes());
    EXPECT_EQ(r.spatial.total_cycles(), r.stats.cycles);

    // The aggregation phase retires one MAC stream per adjacency
    // nonzero, so the grid's MAC count never exceeds the run's.
    EXPECT_GT(r.spatial.grid_macs(), 0u);
    EXPECT_LE(r.spatial.grid_macs(), r.mac_ops);
  }
}

// Every aggregation nonzero lands in exactly one tile of exactly one
// region: pure flows cover the adjacency in their own region, and the
// hybrid's per-region nonzero counts reproduce the partition.
TEST(SpatialSim, RegionNnzMatchesThePartition) {
  const Fixture f = build_fixture(0.1);
  const EdgeCount nnz = f.a_hat.nnz();

  const ExperimentResult rwp =
      run_with_spatial(f, Dataflow::kRowWiseProduct);
  EXPECT_EQ(rwp.spatial.grid_nnz(), nnz);
  EXPECT_EQ(rwp.spatial.region_nnz(SpatialRegion::kRwp), nnz);

  const ExperimentResult op = run_with_spatial(f, Dataflow::kOuterProduct);
  EXPECT_EQ(op.spatial.grid_nnz(), nnz);
  EXPECT_EQ(op.spatial.region_nnz(SpatialRegion::kOp), nnz);

  const ExperimentResult hybrid = run_with_spatial(f, Dataflow::kHybrid);
  EXPECT_EQ(hybrid.spatial.grid_nnz(), nnz);
  EXPECT_EQ(hybrid.spatial.region_nnz(SpatialRegion::kOp),
            hybrid.partition.nnz_region1);
  EXPECT_EQ(hybrid.spatial.region_nnz(SpatialRegion::kRwp),
            hybrid.partition.nnz_region2);
  EXPECT_EQ(hybrid.spatial.region_nnz(SpatialRegion::kRegion3),
            hybrid.partition.nnz_region3);
}

// The tentpole bit-identity guarantee: the focus only moves at retire
// events, which fast-forward never skips, so the whole SpatialData —
// every tile counter, the residual and the lane vectors — compares
// equal field-for-field across fast-forward modes.
TEST(SpatialSim, SpatialBitIdenticalUnderFastForward) {
  ModeGuard guard;
  const Fixture f = build_fixture(0.1);
  for (const Dataflow flow :
       {Dataflow::kRowWiseProduct, Dataflow::kOuterProduct,
        Dataflow::kHybrid}) {
    SCOPED_TRACE(to_string(flow));
    std::vector<SpatialData> runs;
    for (const FastForwardMode mode :
         {FastForwardMode::kOff, FastForwardMode::kOn,
          FastForwardMode::kCheck}) {
      set_fast_forward_mode(mode);
      runs.push_back(run_with_spatial(f, flow).spatial);
    }
    ASSERT_FALSE(runs[0].empty());
    EXPECT_EQ(runs[0], runs[1]);  // off vs on
    EXPECT_EQ(runs[0], runs[2]);  // off vs check
  }
}

// Per-cell spatial data must be independent of the sweep thread
// count: each run has its own Observer-owned tracker, drained per
// cell.
TEST(SpatialSim, SweepSpatialIndependentOfThreadCount) {
  SweepSpec spec;
  spec.datasets = {*find_dataset("CR")};
  spec.scale = 0.1;
  spec.flows = {Dataflow::kRowWiseProduct, Dataflow::kOuterProduct,
                Dataflow::kHybrid};

  const auto run_at = [&spec](unsigned threads) {
    SweepOptions options;
    options.threads = threads;
    options.observe = true;
    options.observer_options.spatial = true;
    SweepRunner runner(options);
    return runner.run(spec);
  };

  const SweepRun serial = run_at(1);
  const SweepRun parallel = run_at(4);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const ExperimentResult& a = serial.cells[i].result;
    const ExperimentResult& b = parallel.cells[i].result;
    SCOPED_TRACE(a.abbrev + "/" + to_string(a.flow));
    EXPECT_EQ(a.cycles, b.cycles);
    ASSERT_FALSE(a.spatial.empty());
    EXPECT_EQ(a.spatial, b.spatial);
  }
}

// An explicit tile override reaches the tracker through
// ObserverOptions and reshapes the reported grid.
TEST(SpatialSim, TileOverrideControlsGridGeometry) {
  const Fixture f = build_fixture(0.1);
  ObserverOptions options;
  options.spatial = true;
  options.spatial_tile = 64;
  Observer obs(options);
  obs.begin_run("spatial");
  const ExperimentResult r =
      run_with_observer(f, Dataflow::kHybrid, &obs);
  ASSERT_FALSE(r.spatial.empty());
  EXPECT_EQ(r.spatial.tile, 64u);
  EXPECT_EQ(r.spatial.grid_rows,
            (r.spatial.nodes + 63) / 64);
}

}  // namespace
}  // namespace hymm
