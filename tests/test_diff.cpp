// hymm_diff root-cause engine acceptance suite (obs/diff.hpp): report
// normalization across the supported schemas, the exact-attribution
// guarantee (rows sum to the cycle delta with no residual), and the
// headline acceptance criterion — an injected single-bucket stall
// delta is attributed to the right (phase, bucket) with >= 90% share.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "obs/diff.hpp"
#include "obs/json.hpp"

namespace hymm {
namespace {

// A minimal hymm-bench/2 snapshot: one CR/HyMM run whose phase stall
// vectors are fully spelled out so tests can inject precise deltas.
std::string bench2_snapshot(double agg_dram_latency,
                            double comb_compute = 90000.0,
                            double skipped = 120000.0,
                            double wall_ms = 10.0) {
  std::ostringstream oss;
  oss << R"({
  "schema": "hymm-bench/2",
  "rev": "test",
  "runs": [
    {
      "abbrev": "CR",
      "flow": "HyMM",
      "cycles": )"
      << (comb_compute + 10000.0 + agg_dram_latency + 42000.0 + 8000.0)
      << R"(,
      "sim_wall_ms": )"
      << wall_ms << R"(,
      "skipped_cycles": )"
      << skipped << R"(,
      "combination": {
        "cycles": )"
      << (comb_compute + 10000.0) << R"(,
        "stalls": { "compute": )"
      << comb_compute << R"(, "smq_backlog": 10000 }
      },
      "aggregation": {
        "cycles": )"
      << (agg_dram_latency + 42000.0 + 8000.0) << R"(,
        "stalls": {
          "compute": 42000,
          "dram_latency": )"
      << agg_dram_latency << R"(,
          "merge_rmw": 8000
        }
      }
    }
  ]
})";
  return oss.str();
}

ReportSnapshot parse_snapshot(const std::string& text) {
  const std::optional<JsonValue> doc = json_parse(text);
  EXPECT_TRUE(doc.has_value());
  std::string error;
  const std::optional<ReportSnapshot> report =
      normalize_report(*doc, &error);
  EXPECT_TRUE(report.has_value()) << error;
  return *report;
}

TEST(DiffNormalize, Bench2PhasesCarryStallVectors) {
  const ReportSnapshot report = parse_snapshot(bench2_snapshot(30000.0));
  EXPECT_EQ(report.kind, "bench");
  EXPECT_EQ(report.schema, "hymm-bench/2");
  ASSERT_EQ(report.runs.size(), 1u);
  const RunSnapshot& run = report.runs[0];
  EXPECT_EQ(run.abbrev, "CR");
  EXPECT_EQ(run.flow, "HyMM");
  EXPECT_DOUBLE_EQ(run.skipped_cycles, 120000.0);
  ASSERT_EQ(run.phases.size(), 2u);
  EXPECT_EQ(run.phases[0].name, "combination");
  // Phase cycles are the stall-bucket sum (the accounting invariant).
  EXPECT_DOUBLE_EQ(run.phases[0].cycles, 100000.0);
  EXPECT_EQ(run.phases[1].name, "aggregation");
  EXPECT_DOUBLE_EQ(run.phases[1].stalls.at("dram_latency"), 30000.0);
}

TEST(DiffNormalize, Bench1FallsBackToTotalPhase) {
  const ReportSnapshot report = parse_snapshot(R"({
    "schema": "hymm-bench/1",
    "runs": [
      { "abbrev": "CR", "flow": "RWP", "cycles": 500,
        "stalls": { "compute": 300, "dram_latency": 200 } }
    ]
  })");
  ASSERT_EQ(report.runs.size(), 1u);
  ASSERT_EQ(report.runs[0].phases.size(), 1u);
  EXPECT_EQ(report.runs[0].phases[0].name, "total");
  EXPECT_DOUBLE_EQ(report.runs[0].phases[0].cycles, 500.0);
}

TEST(DiffNormalize, RunReportHybridRegionsReplaceAggregation) {
  const ReportSnapshot report = parse_snapshot(R"({
    "schema": "hymm-run-report/5",
    "results": [
      {
        "abbrev": "CR", "flow": "HyMM", "cycles": 1000,
        "stats": { "skipped_cycles": 640 },
        "combination": { "stalls": { "compute": 400 } },
        "aggregation": { "stalls": { "compute": 600 } },
        "regions": [
          { "stalls": { "compute": 250 } },
          { "stalls": { "compute": 350 } }
        ]
      }
    ]
  })");
  EXPECT_EQ(report.kind, "run-report");
  ASSERT_EQ(report.runs.size(), 1u);
  const RunSnapshot& run = report.runs[0];
  EXPECT_DOUBLE_EQ(run.skipped_cycles, 640.0);
  // combination + region1 + region2; the whole-phase aggregation row
  // is replaced by its exact per-region split.
  ASSERT_EQ(run.phases.size(), 3u);
  EXPECT_EQ(run.phases[1].name, "region1");
  EXPECT_EQ(run.phases[2].name, "region2");
  EXPECT_DOUBLE_EQ(run.phases[1].cycles + run.phases[2].cycles, 600.0);
}

// A minimal hymm-run-report/6 report: one CR/HyMM run with a 2x2
// spatial grid whose per-cell cycles the tests can vary.
std::string report6_with_spatial(double cell0_cycles,
                                 double cell3_cycles = 100.0) {
  std::ostringstream oss;
  oss << R"({
    "schema": "hymm-run-report/6",
    "results": [
      {
        "abbrev": "CR", "flow": "HyMM", "cycles": 1000,
        "stats": { "skipped_cycles": 0,
                   "stalls": { "compute": 1000 } },
        "combination": { "stalls": { "compute": 400 } },
        "aggregation": { "stalls": { "compute": 600 } },
        "spatial": {
          "nodes": 100, "tile": 50, "grid_rows": 2, "grid_cols": 2,
          "regions": {
            "op": { "cycles": [)"
      << cell0_cycles << R"(, 0, 0, 0],
                    "dram_bytes": [64, 0, 0, 0] },
            "rwp": { "cycles": [0, 0, 0, )"
      << cell3_cycles << R"(],
                     "dram_bytes": [0, 0, 0, 128] }
          },
          "residual": { "cycles": 0, "dram_bytes": 0 },
          "pe": { "busy_cycles": [1, 2], "mac_ops": [1, 2],
                  "array_busy_cycles": 3 }
        }
      }
    ]
  })";
  return oss.str();
}

TEST(DiffNormalize, RunReport6SpatialBecomesARegionSummedTileGrid) {
  const ReportSnapshot report =
      parse_snapshot(report6_with_spatial(900.0));
  ASSERT_EQ(report.runs.size(), 1u);
  const TileGrid& tiles = report.runs[0].tiles;
  ASSERT_FALSE(tiles.empty());
  EXPECT_EQ(tiles.rows, 2u);
  EXPECT_EQ(tiles.cols, 2u);
  EXPECT_DOUBLE_EQ(tiles.tile, 50.0);
  // Cells sum across the op and rwp regions.
  ASSERT_EQ(tiles.cycles.size(), 4u);
  EXPECT_DOUBLE_EQ(tiles.cycles[0], 900.0);
  EXPECT_DOUBLE_EQ(tiles.cycles[3], 100.0);
  EXPECT_DOUBLE_EQ(tiles.dram_bytes[0], 64.0);
  EXPECT_DOUBLE_EQ(tiles.dram_bytes[3], 128.0);
}

TEST(DiffNormalize, RunReport5WithoutSpatialHasEmptyTiles) {
  const ReportSnapshot report = parse_snapshot(R"({
    "schema": "hymm-run-report/5",
    "results": [
      { "abbrev": "CR", "flow": "RWP", "cycles": 500,
        "stats": { "stalls": { "compute": 500 } } }
    ]
  })");
  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_TRUE(report.runs[0].tiles.empty());
}

TEST(DiffReports, RanksTileDeltasWhenGeometriesMatch) {
  const ReportSnapshot base = parse_snapshot(report6_with_spatial(900.0));
  const ReportSnapshot current =
      parse_snapshot(report6_with_spatial(600.0, 400.0));
  const std::vector<RunDiff> diffs = diff_reports(base, current);
  ASSERT_EQ(diffs.size(), 1u);
  ASSERT_EQ(diffs[0].tile_rows.size(), 2u);
  // Largest |cycle delta| first: tile (0,0) moved -300, (1,1) +300.
  EXPECT_EQ(diffs[0].tile_rows[0].row, 0u);
  EXPECT_EQ(diffs[0].tile_rows[0].col, 0u);
  EXPECT_DOUBLE_EQ(diffs[0].tile_rows[0].cycle_delta, -300.0);
  EXPECT_EQ(diffs[0].tile_rows[1].row, 1u);
  EXPECT_EQ(diffs[0].tile_rows[1].col, 1u);
  EXPECT_DOUBLE_EQ(diffs[0].tile_rows[1].cycle_delta, 300.0);
}

TEST(DiffReports, SkipsTileDeltasWhenOneSideLacksSpatial) {
  const ReportSnapshot base = parse_snapshot(report6_with_spatial(900.0));
  ReportSnapshot current = base;
  current.runs[0].tiles = TileGrid{};
  EXPECT_TRUE(diff_reports(current, base)[0].tile_rows.empty());
}

TEST(DiffPrint, RendersTileDeltaTable) {
  const ReportSnapshot base = parse_snapshot(report6_with_spatial(900.0));
  const ReportSnapshot current =
      parse_snapshot(report6_with_spatial(600.0, 400.0));
  std::ostringstream out;
  print_diff(diff_reports(base, current), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("spatial tiles"), std::string::npos) << text;
  EXPECT_NE(text.find("(0,0)"), std::string::npos) << text;
  EXPECT_NE(text.find("(1,1)"), std::string::npos) << text;
}

TEST(DiffNormalize, RejectsUnsupportedSchema) {
  const std::optional<JsonValue> doc =
      json_parse(R"({ "schema": "hymm-bench/99", "runs": [] })");
  ASSERT_TRUE(doc.has_value());
  std::string error;
  EXPECT_FALSE(normalize_report(*doc, &error).has_value());
  EXPECT_NE(error.find("hymm-bench/99"), std::string::npos);
}

// The acceptance criterion: inject a 30000-cycle regression into one
// (phase, bucket) cell and require the diff to rank that cell first
// with >= 90% of the delta attributed to it.
TEST(DiffReports, AttributesInjectedStallDeltaToTheRightCell) {
  const ReportSnapshot base = parse_snapshot(
      bench2_snapshot(/*agg_dram_latency=*/30000.0));
  // Candidate: dram_latency regresses by 30000, compute drifts by a
  // comparatively tiny 500, fast-forward skipped less.
  const ReportSnapshot current = parse_snapshot(bench2_snapshot(
      /*agg_dram_latency=*/60000.0, /*comb_compute=*/90500.0,
      /*skipped=*/110000.0, /*wall_ms=*/14.0));

  const std::vector<RunDiff> diffs = diff_reports(base, current);
  ASSERT_EQ(diffs.size(), 1u);
  const RunDiff& diff = diffs[0];
  EXPECT_DOUBLE_EQ(diff.cycle_delta(), 30500.0);
  EXPECT_DOUBLE_EQ(diff.sim_wall_ms_delta, 4.0);
  EXPECT_DOUBLE_EQ(diff.skipped_cycles_delta, -10000.0);

  // Rows sum exactly to the cycle delta: no residual bucket.
  double row_sum = 0.0;
  for (const DiffRow& row : diff.rows) row_sum += row.delta;
  EXPECT_DOUBLE_EQ(row_sum, diff.cycle_delta());

  // Top-ranked row is the injected cell, holding >= 90% of the delta.
  ASSERT_FALSE(diff.rows.empty());
  const DiffRow& top = diff.rows.front();
  EXPECT_EQ(top.phase, "aggregation");
  EXPECT_EQ(top.cause, "dram_latency");
  EXPECT_DOUBLE_EQ(top.delta, 30000.0);
  EXPECT_GE(top.delta / diff.cycle_delta(), 0.9);
}

TEST(DiffReports, SkipsRunsMissingFromOneSide) {
  const ReportSnapshot base = parse_snapshot(bench2_snapshot(30000.0));
  const ReportSnapshot empty = parse_snapshot(
      R"({ "schema": "hymm-bench/2", "runs": [] })");
  EXPECT_TRUE(diff_reports(base, empty).empty());
  EXPECT_TRUE(diff_reports(empty, base).empty());
}

TEST(DiffPrint, RendersRankedTableAndShares) {
  const ReportSnapshot base = parse_snapshot(bench2_snapshot(30000.0));
  const ReportSnapshot current = parse_snapshot(bench2_snapshot(60000.0));
  std::ostringstream out;
  print_diff(diff_reports(base, current), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("CR/HyMM"), std::string::npos);
  EXPECT_NE(text.find("dram_latency"), std::string::npos);
  EXPECT_NE(text.find("aggregation"), std::string::npos);
  EXPECT_NE(text.find("30000"), std::string::npos);
  EXPECT_NE(text.find("100.0%"), std::string::npos);
}

TEST(DiffPrint, ReportsNoCycleDelta) {
  const ReportSnapshot report = parse_snapshot(bench2_snapshot(30000.0));
  std::ostringstream out;
  print_diff(diff_reports(report, report), out);
  EXPECT_NE(out.str().find("no cycle delta"), std::string::npos);
}

TEST(DiffPrint, CapsRowsAndAggregatesTheRest) {
  // Base/current differ in every bucket; max_rows=1 folds the rest
  // into an "(other)" row so the shares still total 100%.
  const ReportSnapshot base = parse_snapshot(bench2_snapshot(
      30000.0, /*comb_compute=*/90000.0));
  const ReportSnapshot current = parse_snapshot(bench2_snapshot(
      60000.0, /*comb_compute=*/95000.0));
  std::ostringstream out;
  print_diff(diff_reports(base, current), out, /*max_rows=*/1);
  const std::string text = out.str();
  EXPECT_NE(text.find("dram_latency"), std::string::npos);
  EXPECT_NE(text.find("(other)"), std::string::npos);
}

}  // namespace
}  // namespace hymm
