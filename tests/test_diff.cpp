// hymm_diff root-cause engine acceptance suite (obs/diff.hpp): report
// normalization across the supported schemas, the exact-attribution
// guarantee (rows sum to the cycle delta with no residual), and the
// headline acceptance criterion — an injected single-bucket stall
// delta is attributed to the right (phase, bucket) with >= 90% share.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "obs/diff.hpp"
#include "obs/json.hpp"

namespace hymm {
namespace {

// A minimal hymm-bench/2 snapshot: one CR/HyMM run whose phase stall
// vectors are fully spelled out so tests can inject precise deltas.
std::string bench2_snapshot(double agg_dram_latency,
                            double comb_compute = 90000.0,
                            double skipped = 120000.0,
                            double wall_ms = 10.0) {
  std::ostringstream oss;
  oss << R"({
  "schema": "hymm-bench/2",
  "rev": "test",
  "runs": [
    {
      "abbrev": "CR",
      "flow": "HyMM",
      "cycles": )"
      << (comb_compute + 10000.0 + agg_dram_latency + 42000.0 + 8000.0)
      << R"(,
      "sim_wall_ms": )"
      << wall_ms << R"(,
      "skipped_cycles": )"
      << skipped << R"(,
      "combination": {
        "cycles": )"
      << (comb_compute + 10000.0) << R"(,
        "stalls": { "compute": )"
      << comb_compute << R"(, "smq_backlog": 10000 }
      },
      "aggregation": {
        "cycles": )"
      << (agg_dram_latency + 42000.0 + 8000.0) << R"(,
        "stalls": {
          "compute": 42000,
          "dram_latency": )"
      << agg_dram_latency << R"(,
          "merge_rmw": 8000
        }
      }
    }
  ]
})";
  return oss.str();
}

ReportSnapshot parse_snapshot(const std::string& text) {
  const std::optional<JsonValue> doc = json_parse(text);
  EXPECT_TRUE(doc.has_value());
  std::string error;
  const std::optional<ReportSnapshot> report =
      normalize_report(*doc, &error);
  EXPECT_TRUE(report.has_value()) << error;
  return *report;
}

TEST(DiffNormalize, Bench2PhasesCarryStallVectors) {
  const ReportSnapshot report = parse_snapshot(bench2_snapshot(30000.0));
  EXPECT_EQ(report.kind, "bench");
  EXPECT_EQ(report.schema, "hymm-bench/2");
  ASSERT_EQ(report.runs.size(), 1u);
  const RunSnapshot& run = report.runs[0];
  EXPECT_EQ(run.abbrev, "CR");
  EXPECT_EQ(run.flow, "HyMM");
  EXPECT_DOUBLE_EQ(run.skipped_cycles, 120000.0);
  ASSERT_EQ(run.phases.size(), 2u);
  EXPECT_EQ(run.phases[0].name, "combination");
  // Phase cycles are the stall-bucket sum (the accounting invariant).
  EXPECT_DOUBLE_EQ(run.phases[0].cycles, 100000.0);
  EXPECT_EQ(run.phases[1].name, "aggregation");
  EXPECT_DOUBLE_EQ(run.phases[1].stalls.at("dram_latency"), 30000.0);
}

TEST(DiffNormalize, Bench1FallsBackToTotalPhase) {
  const ReportSnapshot report = parse_snapshot(R"({
    "schema": "hymm-bench/1",
    "runs": [
      { "abbrev": "CR", "flow": "RWP", "cycles": 500,
        "stalls": { "compute": 300, "dram_latency": 200 } }
    ]
  })");
  ASSERT_EQ(report.runs.size(), 1u);
  ASSERT_EQ(report.runs[0].phases.size(), 1u);
  EXPECT_EQ(report.runs[0].phases[0].name, "total");
  EXPECT_DOUBLE_EQ(report.runs[0].phases[0].cycles, 500.0);
}

TEST(DiffNormalize, RunReportHybridRegionsReplaceAggregation) {
  const ReportSnapshot report = parse_snapshot(R"({
    "schema": "hymm-run-report/5",
    "results": [
      {
        "abbrev": "CR", "flow": "HyMM", "cycles": 1000,
        "stats": { "skipped_cycles": 640 },
        "combination": { "stalls": { "compute": 400 } },
        "aggregation": { "stalls": { "compute": 600 } },
        "regions": [
          { "stalls": { "compute": 250 } },
          { "stalls": { "compute": 350 } }
        ]
      }
    ]
  })");
  EXPECT_EQ(report.kind, "run-report");
  ASSERT_EQ(report.runs.size(), 1u);
  const RunSnapshot& run = report.runs[0];
  EXPECT_DOUBLE_EQ(run.skipped_cycles, 640.0);
  // combination + region1 + region2; the whole-phase aggregation row
  // is replaced by its exact per-region split.
  ASSERT_EQ(run.phases.size(), 3u);
  EXPECT_EQ(run.phases[1].name, "region1");
  EXPECT_EQ(run.phases[2].name, "region2");
  EXPECT_DOUBLE_EQ(run.phases[1].cycles + run.phases[2].cycles, 600.0);
}

TEST(DiffNormalize, RejectsUnsupportedSchema) {
  const std::optional<JsonValue> doc =
      json_parse(R"({ "schema": "hymm-bench/99", "runs": [] })");
  ASSERT_TRUE(doc.has_value());
  std::string error;
  EXPECT_FALSE(normalize_report(*doc, &error).has_value());
  EXPECT_NE(error.find("hymm-bench/99"), std::string::npos);
}

// The acceptance criterion: inject a 30000-cycle regression into one
// (phase, bucket) cell and require the diff to rank that cell first
// with >= 90% of the delta attributed to it.
TEST(DiffReports, AttributesInjectedStallDeltaToTheRightCell) {
  const ReportSnapshot base = parse_snapshot(
      bench2_snapshot(/*agg_dram_latency=*/30000.0));
  // Candidate: dram_latency regresses by 30000, compute drifts by a
  // comparatively tiny 500, fast-forward skipped less.
  const ReportSnapshot current = parse_snapshot(bench2_snapshot(
      /*agg_dram_latency=*/60000.0, /*comb_compute=*/90500.0,
      /*skipped=*/110000.0, /*wall_ms=*/14.0));

  const std::vector<RunDiff> diffs = diff_reports(base, current);
  ASSERT_EQ(diffs.size(), 1u);
  const RunDiff& diff = diffs[0];
  EXPECT_DOUBLE_EQ(diff.cycle_delta(), 30500.0);
  EXPECT_DOUBLE_EQ(diff.sim_wall_ms_delta, 4.0);
  EXPECT_DOUBLE_EQ(diff.skipped_cycles_delta, -10000.0);

  // Rows sum exactly to the cycle delta: no residual bucket.
  double row_sum = 0.0;
  for (const DiffRow& row : diff.rows) row_sum += row.delta;
  EXPECT_DOUBLE_EQ(row_sum, diff.cycle_delta());

  // Top-ranked row is the injected cell, holding >= 90% of the delta.
  ASSERT_FALSE(diff.rows.empty());
  const DiffRow& top = diff.rows.front();
  EXPECT_EQ(top.phase, "aggregation");
  EXPECT_EQ(top.cause, "dram_latency");
  EXPECT_DOUBLE_EQ(top.delta, 30000.0);
  EXPECT_GE(top.delta / diff.cycle_delta(), 0.9);
}

TEST(DiffReports, SkipsRunsMissingFromOneSide) {
  const ReportSnapshot base = parse_snapshot(bench2_snapshot(30000.0));
  const ReportSnapshot empty = parse_snapshot(
      R"({ "schema": "hymm-bench/2", "runs": [] })");
  EXPECT_TRUE(diff_reports(base, empty).empty());
  EXPECT_TRUE(diff_reports(empty, base).empty());
}

TEST(DiffPrint, RendersRankedTableAndShares) {
  const ReportSnapshot base = parse_snapshot(bench2_snapshot(30000.0));
  const ReportSnapshot current = parse_snapshot(bench2_snapshot(60000.0));
  std::ostringstream out;
  print_diff(diff_reports(base, current), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("CR/HyMM"), std::string::npos);
  EXPECT_NE(text.find("dram_latency"), std::string::npos);
  EXPECT_NE(text.find("aggregation"), std::string::npos);
  EXPECT_NE(text.find("30000"), std::string::npos);
  EXPECT_NE(text.find("100.0%"), std::string::npos);
}

TEST(DiffPrint, ReportsNoCycleDelta) {
  const ReportSnapshot report = parse_snapshot(bench2_snapshot(30000.0));
  std::ostringstream out;
  print_diff(diff_reports(report, report), out);
  EXPECT_NE(out.str().find("no cycle delta"), std::string::npos);
}

TEST(DiffPrint, CapsRowsAndAggregatesTheRest) {
  // Base/current differ in every bucket; max_rows=1 folds the rest
  // into an "(other)" row so the shares still total 100%.
  const ReportSnapshot base = parse_snapshot(bench2_snapshot(
      30000.0, /*comb_compute=*/90000.0));
  const ReportSnapshot current = parse_snapshot(bench2_snapshot(
      60000.0, /*comb_compute=*/95000.0));
  std::ostringstream out;
  print_diff(diff_reports(base, current), out, /*max_rows=*/1);
  const std::string text = out.str();
  EXPECT_NE(text.find("dram_latency"), std::string::npos);
  EXPECT_NE(text.find("(other)"), std::string::npos);
}

}  // namespace
}  // namespace hymm
