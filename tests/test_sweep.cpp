// Sweep-executor invariants: a multi-threaded sweep returns results
// in stable grid order with per-cell counters bit-identical to the
// serial path, the WorkloadCache builds each (spec, scale, seed) key
// exactly once no matter how many threads race on it, and observer
// groups serialize their cells in grid order.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/runner.hpp"
#include "linalg/gcn.hpp"
#include "sweep/sweep.hpp"
#include "sweep/workload_cache.hpp"

namespace hymm {
namespace {

SweepSpec small_grid() {
  SweepSpec spec;
  spec.datasets = {*find_dataset("CR"), *find_dataset("AP")};
  AcceleratorConfig small_dmb;
  small_dmb.dmb_bytes = 64 * 1024;
  spec.configs = {AcceleratorConfig{}, small_dmb};
  spec.scale = 0.05;
  spec.seed = 3;
  return spec;
}

// Every counter a perf snapshot or figure reads must be bit-identical
// between a serial and a 4-worker run of the same grid.
TEST(SweepDeterminism, ThreadCountDoesNotChangeResults) {
  const SweepSpec spec = small_grid();

  SweepOptions serial_options;
  serial_options.threads = 1;
  SweepRunner serial(serial_options);
  const SweepRun base = serial.run(spec);

  SweepOptions parallel_options;
  parallel_options.threads = 4;
  SweepRunner parallel(parallel_options);
  const SweepRun threaded = parallel.run(spec);

  ASSERT_EQ(base.cells.size(), threaded.cells.size());
  ASSERT_EQ(base.cells.size(),
            spec.datasets.size() * spec.configs.size() * spec.flows.size());
  for (std::size_t i = 0; i < base.cells.size(); ++i) {
    const ExperimentResult& a = base.cells[i].result;
    const ExperimentResult& b = threaded.cells[i].result;
    SCOPED_TRACE(a.abbrev + "/" + to_string(a.flow) + " cell " +
                 std::to_string(i));
    EXPECT_EQ(base.cells[i].cell.index, i);
    EXPECT_EQ(threaded.cells[i].cell.index, i);
    EXPECT_EQ(a.abbrev, b.abbrev);
    EXPECT_EQ(a.flow, b.flow);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.mac_ops, b.mac_ops);
    EXPECT_EQ(a.dram_total_bytes, b.dram_total_bytes);
    EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
    EXPECT_EQ(a.dram_write_bytes, b.dram_write_bytes);
    EXPECT_EQ(a.partial_bytes_peak, b.partial_bytes_peak);
    EXPECT_EQ(a.stats.stall_cycles, b.stats.stall_cycles);
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
  }
}

// The threaded sweep must match the historical serial path
// (compare_dataflows) cycle-for-cycle, including the hybrid whose
// degree sort the sweep precomputes and shares.
TEST(SweepDeterminism, MatchesCompareDataflows) {
  const DatasetSpec cr = *find_dataset("CR");

  SweepSpec spec;
  spec.datasets = {cr};
  spec.scale = 0.25;
  spec.seed = 42;
  SweepOptions options;
  options.threads = 4;
  SweepRunner runner(options);
  const SweepRun run = runner.run(spec);

  const DataflowComparison reference =
      compare_dataflows(cr, AcceleratorConfig{}, spec.flows, 0.25, 42);
  ASSERT_EQ(run.cells.size(), reference.results.size());
  for (std::size_t i = 0; i < run.cells.size(); ++i) {
    const ExperimentResult& a = run.cells[i].result;
    const ExperimentResult& b = reference.results[i];
    SCOPED_TRACE(to_string(b.flow));
    EXPECT_EQ(a.flow, b.flow);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dram_total_bytes, b.dram_total_bytes);
    EXPECT_EQ(a.stats.stall_cycles, b.stats.stall_cycles);
  }
}

// Cells expand dataset-major, then config, then flow, with index
// equal to the position — the contract bench_common's [config][dataset]
// indexing decodes.
TEST(SweepSpecTest, CellsExpandInStableGridOrder) {
  const SweepSpec spec = small_grid();
  const std::vector<SweepCell> cells = spec.cells();
  ASSERT_EQ(cells.size(), 2u * 2u * 3u);
  std::size_t i = 0;
  for (std::size_t d = 0; d < spec.datasets.size(); ++d) {
    for (std::size_t c = 0; c < spec.configs.size(); ++c) {
      for (const Dataflow flow : spec.flows) {
        SCOPED_TRACE(i);
        EXPECT_EQ(cells[i].index, i);
        EXPECT_EQ(cells[i].spec.abbrev, spec.datasets[d].abbrev);
        EXPECT_EQ(cells[i].config_index, c);
        EXPECT_EQ(cells[i].flow, flow);
        EXPECT_EQ(cells[i].scale, 0.05);
        EXPECT_EQ(cells[i].seed, 3u);
        ++i;
      }
    }
  }
}

// One grid's worth of flows and configs shares a single workload
// build per dataset.
TEST(SweepRunnerTest, CacheBuildsOncePerDataset) {
  const SweepSpec spec = small_grid();
  SweepOptions options;
  options.threads = 4;
  SweepRunner runner(options);
  runner.run(spec);
  EXPECT_EQ(runner.cache().build_count(), spec.datasets.size());
}

// Cells mapped to one group share an Observer and run serially in
// grid order; groups come back ordered by their first cell.
TEST(SweepRunnerTest, GroupsShareOneObserverAndKeepGridOrder) {
  SweepSpec spec;
  spec.datasets = {*find_dataset("CR")};
  spec.scale = 0.05;

  SweepOptions options;
  options.threads = 4;
  options.observe = true;
  options.group_key = [](const SweepCell&) { return std::string("all"); };
  SweepRunner runner(options);
  const SweepRun run = runner.run(spec);

  ASSERT_EQ(run.groups.size(), 1u);
  const SweepGroup& group = run.groups.front();
  EXPECT_NE(group.observer, nullptr);
  ASSERT_EQ(group.cells.size(), spec.flows.size());
  for (std::size_t i = 0; i < group.cells.size(); ++i) {
    EXPECT_EQ(group.cells[i], i);
  }
  // The shared observer saw one run per flow (pid 0-based, bumped on
  // every begin_run after the first).
  EXPECT_EQ(group.observer->run_pid(),
            static_cast<int>(spec.flows.size()) - 1);
}

// A worker exception surfaces on the calling thread instead of being
// swallowed (here: a grid whose dataset cannot be built).
TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 4u}) {
    std::vector<std::atomic<int>> hits(100);
    parallel_for(hits.size(), threads,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const std::atomic<int>& hit : hits) EXPECT_EQ(hit.load(), 1);
  }
  // Zero items is a no-op, not a hang.
  parallel_for(0, 4, [](std::size_t) { FAIL() << "body ran for count=0"; });
}

TEST(ParallelForTest, PropagatesTheFirstException) {
  EXPECT_THROW(parallel_for(8, 4,
                            [](std::size_t i) {
                              if (i % 2 == 1) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(SweepRunnerTest, WorkerExceptionsPropagate) {
  SweepSpec spec;
  spec.datasets = {*find_dataset("CR")};
  spec.scale = 0.05;
  spec.configs[0].dmb_bytes = 0;  // rejected by the accelerator's checks
  SweepOptions options;
  options.threads = 2;
  SweepRunner runner(options);
  EXPECT_THROW(runner.run(spec), std::exception);
}

// The request API is deterministic: running the identical request
// twice produces bit-identical results. (The deprecated positional
// run_experiment overload this used to compare against is gone.)
TEST(ExperimentRequestTest, RepeatedRequestIsDeterministic) {
  PreparedWorkload prepared(*find_dataset("CR"), 0.1, 42);

  ExperimentRequest request;
  request.workload = &prepared.workload();
  request.a_hat = &prepared.a_hat();
  request.weights = &prepared.weights();
  request.reference = &prepared.reference();
  request.flow = Dataflow::kRowWiseProduct;
  const ExperimentResult first = run_experiment(request);
  const ExperimentResult second = run_experiment(request);

  EXPECT_EQ(first.cycles, second.cycles);
  EXPECT_EQ(first.dram_total_bytes, second.dram_total_bytes);
  EXPECT_EQ(first.stats.stall_cycles, second.stats.stall_cycles);
  EXPECT_TRUE(first.verified);
}

// Handing the hybrid its precomputed degree sort must not change the
// simulated cycles — sorting is host-side preprocessing.
TEST(ExperimentRequestTest, PrecomputedSortDoesNotChangeCycles) {
  PreparedWorkload prepared(*find_dataset("CR"), 0.1, 42);

  ExperimentRequest request;
  request.workload = &prepared.workload();
  request.a_hat = &prepared.a_hat();
  request.weights = &prepared.weights();
  request.reference = &prepared.reference();
  request.flow = Dataflow::kHybrid;
  const ExperimentResult internal_sort = run_experiment(request);

  request.sort = &prepared.sort();
  request.sorted_features = &prepared.sorted_features();
  const ExperimentResult precomputed_sort = run_experiment(request);

  EXPECT_EQ(internal_sort.cycles, precomputed_sort.cycles);
  EXPECT_EQ(internal_sort.dram_total_bytes,
            precomputed_sort.dram_total_bytes);
  EXPECT_EQ(internal_sort.stats.stall_cycles,
            precomputed_sort.stats.stall_cycles);
  EXPECT_TRUE(precomputed_sort.verified);
}

TEST(WorkloadCacheTest, ConcurrentGetsBuildOnce) {
  WorkloadCache cache;
  const DatasetSpec cr = *find_dataset("CR");

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const PreparedWorkload>> seen(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      seen[t] = cache.get(cr, 0.05, 7);
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(cache.build_count(), 1u);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);  // same shared instance, not a copy
  }
}

TEST(WorkloadCacheTest, DistinctKeysBuildSeparately) {
  WorkloadCache cache;
  const DatasetSpec cr = *find_dataset("CR");
  const auto a = cache.get(cr, 0.05, 7);
  const auto b = cache.get(cr, 0.05, 8);   // different seed
  const auto c = cache.get(cr, 0.10, 7);   // different scale
  const auto again = cache.get(cr, 0.05, 7);
  EXPECT_EQ(cache.build_count(), 3u);
  EXPECT_EQ(a, again);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(WorkloadCacheTest, PreparedWorkloadMatchesManualBuild) {
  const DatasetSpec cr = *find_dataset("CR");
  PreparedWorkload prepared(cr, 0.1, 42);

  const GcnWorkload manual = build_workload(cr, 0.1, 42);
  const CsrMatrix a_hat = normalize_adjacency(manual.adjacency);
  const DenseMatrix weights = DenseMatrix::random(
      manual.features.cols(), manual.spec.layer_dim, 42 + 7);

  EXPECT_EQ(prepared.workload().adjacency.nnz(), manual.adjacency.nnz());
  EXPECT_EQ(prepared.a_hat().nnz(), a_hat.nnz());
  ASSERT_EQ(prepared.weights().rows(), weights.rows());
  ASSERT_EQ(prepared.weights().cols(), weights.cols());
  for (NodeId r = 0; r < weights.rows(); ++r) {
    for (NodeId c = 0; c < weights.cols(); ++c) {
      EXPECT_EQ(prepared.weights().at(r, c), weights.at(r, c));
    }
  }
}

TEST(ResolveThreadCountTest, ExplicitRequestWins) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  EXPECT_GE(resolve_thread_count(0), 1u);
}

}  // namespace
}  // namespace hymm
