// Tests for the Load/Store Queue: capacity, store-to-load
// forwarding, store draining and miss latency hiding.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "sim/lsq.hpp"

namespace hymm {
namespace {

struct Fixture {
  explicit Fixture(std::size_t entries = 8, bool forwarding = true) {
    config.lsq_entries = entries;
    config.lsq_store_to_load_forwarding = forwarding;
    config.dram_latency = 10;
    config.dmb_hit_latency = 2;
    config.dmb_bytes = 16 * kLineBytes;
    dram = std::make_unique<Dram>(config, stats);
    dmb = std::make_unique<DenseMatrixBuffer>(config, *dram, stats);
    lsq = std::make_unique<LoadStoreQueue>(config, *dmb, stats);
  }

  void step(Cycle t) {
    dram->tick(t);
    dmb->tick(t);
    lsq->tick(t);
  }

  Cycle run_until_ready(LoadStoreQueue::EntryId id, Cycle from,
                        Cycle limit = 100) {
    for (Cycle t = from; t < from + limit; ++t) {
      step(t);
      if (lsq->is_ready(id)) return t;
    }
    ADD_FAILURE() << "load " << id << " never ready";
    return 0;
  }

  AcceleratorConfig config;
  SimStats stats;
  std::unique_ptr<Dram> dram;
  std::unique_ptr<DenseMatrixBuffer> dmb;
  std::unique_ptr<LoadStoreQueue> lsq;
};

constexpr Addr L(std::uint64_t i) { return 0x1000 + i * kLineBytes; }

TEST(Lsq, LoadMissCompletesThroughDmb) {
  Fixture f;
  const auto id = f.lsq->load(L(0), TrafficClass::kCombined, 0);
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(f.lsq->is_ready(*id));
  const Cycle done = f.run_until_ready(*id, 0);
  EXPECT_GE(done, f.config.dram_latency);
  f.lsq->release_load(*id);
  EXPECT_EQ(f.lsq->pending_loads(), 0u);
}

TEST(Lsq, CapacitySharedBetweenLoadsAndStores) {
  Fixture f(/*entries=*/4);
  EXPECT_TRUE(f.lsq->store(L(0), TrafficClass::kOutput,
                           StoreKind::kThrough, 0));
  EXPECT_TRUE(f.lsq->store(L(1), TrafficClass::kOutput,
                           StoreKind::kThrough, 0));
  auto a = f.lsq->load(L(2), TrafficClass::kCombined, 0);
  auto b = f.lsq->load(L(3), TrafficClass::kCombined, 0);
  EXPECT_TRUE(a.has_value());
  EXPECT_TRUE(b.has_value());
  EXPECT_EQ(f.lsq->free_entries(), 0u);
  EXPECT_FALSE(f.lsq->load(L(4), TrafficClass::kCombined, 0).has_value());
  EXPECT_FALSE(f.lsq->store(L(5), TrafficClass::kOutput,
                            StoreKind::kThrough, 0));
}

TEST(Lsq, StoreToLoadForwardingIsImmediate) {
  Fixture f;
  ASSERT_TRUE(f.lsq->store(L(0), TrafficClass::kCombined,
                           StoreKind::kAllocate, 0));
  const auto id = f.lsq->load(L(0), TrafficClass::kCombined, 0);
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(f.lsq->is_ready(*id));  // no memory round trip
  EXPECT_EQ(f.stats.lsq_forwards, 1u);
  f.lsq->release_load(*id);
}

TEST(Lsq, ForwardingDisabledGoesToMemory) {
  Fixture f(/*entries=*/8, /*forwarding=*/false);
  ASSERT_TRUE(f.lsq->store(L(0), TrafficClass::kCombined,
                           StoreKind::kAllocate, 0));
  const auto id = f.lsq->load(L(0), TrafficClass::kCombined, 0);
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(f.lsq->is_ready(*id));
  EXPECT_EQ(f.stats.lsq_forwards, 0u);
  // Store drains first tick and allocates the line, so the load hits.
  f.run_until_ready(*id, 0);
}

TEST(Lsq, ForwardingPersistsAfterDrainUntilReplaced) {
  // Section IV-B forwards from any matching LSQ entry; draining the
  // store does not invalidate it (output addresses are write-once).
  Fixture f(/*entries=*/4);
  ASSERT_TRUE(f.lsq->store(L(0), TrafficClass::kCombined,
                           StoreKind::kAllocate, 0));
  f.step(0);  // store drains into the DMB
  EXPECT_TRUE(f.lsq->all_stores_drained());
  const auto id = f.lsq->load(L(0), TrafficClass::kCombined, 1);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(f.stats.lsq_forwards, 1u);
  EXPECT_TRUE(f.lsq->is_ready(*id));
  f.lsq->release_load(*id);

  // Four newer stores push L(0) out of the 4-entry forward window.
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(f.lsq->store(L(i), TrafficClass::kOutput,
                             StoreKind::kThrough, 2));
    f.step(1 + i);
  }
  const auto later = f.lsq->load(L(0), TrafficClass::kCombined, 10);
  ASSERT_TRUE(later.has_value());
  EXPECT_EQ(f.stats.lsq_forwards, 1u);  // no longer forwardable
  // But the DMB still holds the line, so it is a fast hit.
  const Cycle done = f.run_until_ready(*later, 10);
  EXPECT_LE(done, 10 + f.config.dmb_hit_latency + 1);
}

TEST(Lsq, StoresDrainOnePerCycle) {
  Fixture f;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(f.lsq->store(L(i), TrafficClass::kOutput,
                             StoreKind::kThrough, 0));
  }
  f.step(0);
  EXPECT_FALSE(f.lsq->all_stores_drained());
  f.step(1);
  f.step(2);
  EXPECT_TRUE(f.lsq->all_stores_drained());
  EXPECT_EQ(f.stats.dram_write_bytes[static_cast<std::size_t>(
                TrafficClass::kOutput)],
            3 * kLineBytes);
}

TEST(Lsq, YoungerLoadsOvertakeMissedLoads) {
  // Section IV-B: "While a missed load instruction waits ... subsequent
  // load instructions targeting addresses already present in the LSQ
  // can continue execution."
  Fixture f;
  ASSERT_TRUE(f.lsq->store(L(1), TrafficClass::kCombined,
                           StoreKind::kAllocate, 0));
  const auto slow = f.lsq->load(L(0), TrafficClass::kCombined, 0);
  const auto fast = f.lsq->load(L(1), TrafficClass::kCombined, 0);
  ASSERT_TRUE(slow.has_value() && fast.has_value());
  EXPECT_TRUE(f.lsq->is_ready(*fast));   // forwarded immediately
  EXPECT_FALSE(f.lsq->is_ready(*slow));  // still in flight
}

TEST(Lsq, AccumulateStoreReachesAccumulator) {
  Fixture f;
  ASSERT_TRUE(f.lsq->store(L(0), TrafficClass::kPartial,
                           StoreKind::kAccumulate, 0));
  f.step(0);
  EXPECT_EQ(f.stats.dmb_accumulate_misses, 1u);  // allocated fresh
  ASSERT_TRUE(f.lsq->store(L(0), TrafficClass::kPartial,
                           StoreKind::kAccumulate, 1));
  f.step(1);
  EXPECT_EQ(f.stats.dmb_accumulate_hits, 1u);
}

TEST(Lsq, ReleaseUnknownOrUnreadyThrows) {
  Fixture f;
  EXPECT_THROW(f.lsq->release_load(999), CheckError);
  const auto id = f.lsq->load(L(0), TrafficClass::kCombined, 0);
  ASSERT_TRUE(id.has_value());
  EXPECT_THROW(f.lsq->release_load(*id), CheckError);  // not ready yet
}

TEST(Lsq, CountsLoadsAndStores) {
  Fixture f;
  (void)f.lsq->load(L(0), TrafficClass::kCombined, 0);
  (void)f.lsq->store(L(1), TrafficClass::kOutput, StoreKind::kThrough, 0);
  EXPECT_EQ(f.stats.lsq_loads, 1u);
  EXPECT_EQ(f.stats.lsq_stores, 1u);
}

}  // namespace
}  // namespace hymm
