// Tests for the edge-list / sparse-matrix I/O: round trips, format
// options and malformed-input diagnostics.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "graph/generator.hpp"
#include "graph/io.hpp"

namespace hymm {
namespace {

TEST(EdgeList, ParsesTriplesAndComments) {
  std::istringstream in(
      "# a comment\n"
      "% another comment\n"
      "\n"
      "0 1 2.5\n"
      "2 0\n");
  const CsrMatrix m = load_edge_list(in);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_FLOAT_EQ(m.row_values(0)[0], 2.5f);
  EXPECT_FLOAT_EQ(m.row_values(2)[0], 1.0f);  // default weight
}

TEST(EdgeList, SymmetrizeAndSelfLoopOptions) {
  std::istringstream in("0 1\n1 1\n");
  EdgeListOptions options;
  options.symmetrize = true;
  options.drop_self_loops = true;
  const CsrMatrix m = load_edge_list(in, options);
  EXPECT_EQ(m.nnz(), 2u);  // (0,1) and (1,0); self loop dropped
  EXPECT_EQ(m.transpose(), m);
}

TEST(EdgeList, ExplicitNodeCount) {
  std::istringstream in("0 1\n");
  EdgeListOptions options;
  options.nodes = 10;
  const CsrMatrix m = load_edge_list(in, options);
  EXPECT_EQ(m.rows(), 10u);

  std::istringstream overflow("0 12\n");
  EdgeListOptions tight;
  tight.nodes = 4;
  EXPECT_THROW(load_edge_list(overflow, tight), CheckError);
}

TEST(EdgeList, MalformedLinesThrowWithLineNumber) {
  std::istringstream in("0 1\nbroken line\n");
  try {
    load_edge_list(in);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(EdgeList, NegativeIdsRejected) {
  std::istringstream in("-1 2\n");
  EXPECT_THROW(load_edge_list(in), CheckError);
}

TEST(EdgeList, DuplicateEdgesMergeWeights) {
  std::istringstream in("0 1 1.0\n0 1 2.0\n");
  const CsrMatrix m = load_edge_list(in);
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_FLOAT_EQ(m.row_values(0)[0], 3.0f);
}

TEST(EdgeList, RoundTripThroughText) {
  GraphSpec spec;
  spec.nodes = 120;
  spec.edges = 900;
  spec.seed = 4;
  const CsrMatrix original = generate_power_law_graph(spec);
  std::stringstream buffer;
  save_edge_list(original, buffer);
  EdgeListOptions options;
  options.nodes = original.rows();
  const CsrMatrix loaded = load_edge_list(buffer, options);
  EXPECT_EQ(loaded, original);
}

TEST(SparseMatrix, RoundTripPreservesShapeAndValues) {
  FeatureSpec spec;
  spec.nodes = 40;
  spec.feature_length = 25;
  spec.density = 0.3;
  spec.seed = 9;
  const CsrMatrix original = generate_features(spec);
  std::stringstream buffer;
  save_sparse_matrix(original, buffer);
  const CsrMatrix loaded = load_sparse_matrix(buffer);
  EXPECT_EQ(loaded.rows(), original.rows());
  EXPECT_EQ(loaded.cols(), original.cols());
  EXPECT_EQ(loaded.nnz(), original.nnz());
  // Values survive the text round trip to float precision.
  for (NodeId r = 0; r < original.rows(); ++r) {
    const auto ov = original.row_values(r);
    const auto lv = loaded.row_values(r);
    ASSERT_EQ(ov.size(), lv.size());
    for (std::size_t k = 0; k < ov.size(); ++k) {
      EXPECT_NEAR(ov[k], lv[k], 1e-5);
    }
  }
}

TEST(SparseMatrix, EmptyMatrixRoundTrip) {
  const CsrMatrix empty = CsrMatrix::from_coo(CooMatrix(5, 7));
  std::stringstream buffer;
  save_sparse_matrix(empty, buffer);
  const CsrMatrix loaded = load_sparse_matrix(buffer);
  EXPECT_EQ(loaded.rows(), 5u);
  EXPECT_EQ(loaded.cols(), 7u);
  EXPECT_EQ(loaded.nnz(), 0u);
}

TEST(SparseMatrix, MissingHeaderRejected) {
  std::istringstream in("0 0 1.0\n");
  EXPECT_THROW(load_sparse_matrix(in), CheckError);
}

TEST(SparseMatrix, TruncatedBodyRejected) {
  std::istringstream in("%%HyMMSparse 3 3 2\n0 0 1.0\n");
  EXPECT_THROW(load_sparse_matrix(in), CheckError);
}

TEST(IoFiles, MissingFileThrows) {
  EXPECT_THROW(load_edge_list_file("/nonexistent/path.txt"), CheckError);
  EXPECT_THROW(load_sparse_matrix_file("/nonexistent/path.txt"),
               CheckError);
}

TEST(IoFiles, FileRoundTrip) {
  GraphSpec spec;
  spec.nodes = 30;
  spec.edges = 120;
  spec.seed = 2;
  const CsrMatrix original = generate_power_law_graph(spec);
  const std::string path = "/tmp/hymm_io_test_edges.txt";
  save_edge_list_file(original, path);
  EdgeListOptions options;
  options.nodes = original.rows();
  EXPECT_EQ(load_edge_list_file(path, options), original);
}

}  // namespace
}  // namespace hymm
