// Tests for the Dense Matrix Buffer: hit/miss paths, MSHR behaviour,
// class-aware eviction, pinning, accumulation and footprint tracking.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/dmb.hpp"

namespace hymm {
namespace {

struct Fixture {
  explicit Fixture(std::size_t lines = 4, std::size_t mshrs = 2,
                   EvictionPolicy policy = EvictionPolicy::kLru) {
    config.dmb_bytes = lines * kLineBytes;
    config.dmb_mshr_entries = mshrs;
    config.dmb_hit_latency = 2;
    config.dram_latency = 10;
    config.eviction_policy = policy;
    dram = std::make_unique<Dram>(config, stats);
    dmb = std::make_unique<DenseMatrixBuffer>(config, *dram, stats);
  }

  // Runs one simulated cycle and returns the waiters that became
  // ready during it.
  std::vector<std::uint64_t> step(Cycle t) {
    dram->tick(t);
    dmb->tick(t);
    return dmb->ready_waiters();
  }

  // Steps until `tag` becomes ready (bounded); returns the cycle.
  Cycle wait_for(std::uint64_t tag, Cycle from, Cycle limit = 100) {
    for (Cycle t = from; t < from + limit; ++t) {
      for (const auto ready : step(t)) {
        if (ready == tag) return t;
      }
    }
    ADD_FAILURE() << "tag " << tag << " never became ready";
    return 0;
  }

  AcceleratorConfig config;
  SimStats stats;
  std::unique_ptr<Dram> dram;
  std::unique_ptr<DenseMatrixBuffer> dmb;
};

constexpr Addr L(std::uint64_t i) { return 0x1000 + i * kLineBytes; }

TEST(Dmb, MissThenHitLatency) {
  Fixture f;
  // Cold miss: DRAM latency applies.
  EXPECT_EQ(f.dmb->read(L(0), TrafficClass::kCombined, 7, 0),
            DenseMatrixBuffer::ReadResult::kMiss);
  const Cycle fill = f.wait_for(7, 0);
  EXPECT_GE(fill, f.config.dram_latency);
  // Now resident: hit latency applies.
  EXPECT_EQ(f.dmb->read(L(0), TrafficClass::kCombined, 8, fill),
            DenseMatrixBuffer::ReadResult::kHit);
  EXPECT_EQ(f.wait_for(8, fill + 1), fill + f.config.dmb_hit_latency);
  EXPECT_EQ(f.stats.dmb_read_hits, 1u);
  EXPECT_EQ(f.stats.dmb_read_misses, 1u);
}

TEST(Dmb, SecondaryMissPiggybacksOnMshr) {
  Fixture f;
  EXPECT_EQ(f.dmb->read(L(0), TrafficClass::kCombined, 1, 0),
            DenseMatrixBuffer::ReadResult::kMiss);
  EXPECT_EQ(f.dmb->read(L(0), TrafficClass::kCombined, 2, 0),
            DenseMatrixBuffer::ReadResult::kMiss);
  // Both waiters complete with ONE DRAM read.
  std::vector<std::uint64_t> ready;
  for (Cycle t = 0; t < 30; ++t) {
    const auto r = f.step(t);
    ready.insert(ready.end(), r.begin(), r.end());
  }
  EXPECT_EQ(ready.size(), 2u);
  EXPECT_EQ(f.stats.dram_read_bytes[static_cast<std::size_t>(
                TrafficClass::kCombined)],
            kLineBytes);
}

TEST(Dmb, MshrExhaustionRejects) {
  Fixture f(/*lines=*/4, /*mshrs=*/2);
  EXPECT_EQ(f.dmb->read(L(0), TrafficClass::kCombined, 1, 0),
            DenseMatrixBuffer::ReadResult::kMiss);
  EXPECT_EQ(f.dmb->read(L(1), TrafficClass::kCombined, 2, 0),
            DenseMatrixBuffer::ReadResult::kMiss);
  EXPECT_EQ(f.dmb->read(L(2), TrafficClass::kCombined, 3, 0),
            DenseMatrixBuffer::ReadResult::kReject);
  EXPECT_TRUE(f.dmb->has_pending_misses());
}

TEST(Dmb, PartialLinesOutliveDataLines) {
  // Section IV-D: eviction retains partial outputs; data lines (W,
  // XW, ...) are victimized first even when the partial is older.
  Fixture f(/*lines=*/2);
  ASSERT_TRUE(f.dmb->accumulate(L(0), 0));  // partial, oldest
  ASSERT_TRUE(f.dmb->write_allocate(L(1), TrafficClass::kWeights, 0));
  ASSERT_TRUE(f.dmb->write_allocate(L(2), TrafficClass::kCombined, 1));
  EXPECT_TRUE(f.dmb->contains(L(0)));
  EXPECT_FALSE(f.dmb->contains(L(1)));
  EXPECT_TRUE(f.dmb->contains(L(2)));
  EXPECT_EQ(f.stats.dmb_evictions, 1u);
  EXPECT_EQ(f.stats.dmb_partial_spills, 0u);
}

TEST(Dmb, DataLinesShareOneLruAcrossClasses) {
  // The hot working set survives regardless of class: touching the
  // weights line makes the older combined line the victim.
  Fixture f(/*lines=*/2);
  ASSERT_TRUE(f.dmb->write_allocate(L(0), TrafficClass::kWeights, 0));
  ASSERT_TRUE(f.dmb->write_allocate(L(1), TrafficClass::kCombined, 1));
  EXPECT_EQ(f.dmb->read(L(0), TrafficClass::kWeights, 9, 2),
            DenseMatrixBuffer::ReadResult::kHit);
  ASSERT_TRUE(f.dmb->write_allocate(L(2), TrafficClass::kCombined, 3));
  EXPECT_TRUE(f.dmb->contains(L(0)));
  EXPECT_FALSE(f.dmb->contains(L(1)));
}

TEST(Dmb, DirtyEvictionStallsUnderWriteBackPressure) {
  AcceleratorConfig cfg;
  cfg.dmb_bytes = 1 * kLineBytes;
  cfg.dram_write_buffer_lines = 2;
  SimStats stats;
  Dram dram(cfg, stats);
  DenseMatrixBuffer dmb(cfg, dram, stats);
  // Saturate the write buffer.
  dram.issue_write(0x10000, TrafficClass::kOutput, 0);
  dram.issue_write(0x10040, TrafficClass::kOutput, 0);
  dram.issue_write(0x10080, TrafficClass::kOutput, 0);
  ASSERT_FALSE(dram.can_accept_write(0));
  ASSERT_TRUE(dmb.write_allocate(L(0), TrafficClass::kCombined, 0));
  // Evicting the dirty line would need a write slot: rejected now...
  EXPECT_FALSE(dmb.write_allocate(L(1), TrafficClass::kCombined, 0));
  // ...but succeeds once the channel catches up.
  EXPECT_TRUE(dmb.write_allocate(L(1), TrafficClass::kCombined, 10));
}

TEST(Dmb, DirtyEvictionWritesBack) {
  Fixture f(/*lines=*/1);
  ASSERT_TRUE(f.dmb->write_allocate(L(0), TrafficClass::kCombined, 0));
  ASSERT_TRUE(f.dmb->write_allocate(L(1), TrafficClass::kCombined, 1));
  EXPECT_EQ(f.stats.dram_write_bytes[static_cast<std::size_t>(
                TrafficClass::kCombined)],
            kLineBytes);
}

TEST(Dmb, LruOrderWithinClass) {
  Fixture f(/*lines=*/2);
  ASSERT_TRUE(f.dmb->write_allocate(L(0), TrafficClass::kCombined, 0));
  ASSERT_TRUE(f.dmb->write_allocate(L(1), TrafficClass::kCombined, 1));
  // Touch L(0) so L(1) becomes the LRU victim.
  EXPECT_EQ(f.dmb->read(L(0), TrafficClass::kCombined, 9, 2),
            DenseMatrixBuffer::ReadResult::kHit);
  ASSERT_TRUE(f.dmb->write_allocate(L(2), TrafficClass::kCombined, 3));
  EXPECT_TRUE(f.dmb->contains(L(0)));
  EXPECT_FALSE(f.dmb->contains(L(1)));
}

TEST(Dmb, FifoPolicyIgnoresTouches) {
  Fixture f(/*lines=*/2, /*mshrs=*/2, EvictionPolicy::kFifo);
  ASSERT_TRUE(f.dmb->write_allocate(L(0), TrafficClass::kCombined, 0));
  ASSERT_TRUE(f.dmb->write_allocate(L(1), TrafficClass::kCombined, 1));
  EXPECT_EQ(f.dmb->read(L(0), TrafficClass::kCombined, 9, 2),
            DenseMatrixBuffer::ReadResult::kHit);
  ASSERT_TRUE(f.dmb->write_allocate(L(2), TrafficClass::kCombined, 3));
  // FIFO: the oldest insertion (L0) is evicted despite the touch.
  EXPECT_FALSE(f.dmb->contains(L(0)));
  EXPECT_TRUE(f.dmb->contains(L(1)));
}

TEST(Dmb, AccumulateHitMergesInPlace) {
  Fixture f;
  ASSERT_TRUE(f.dmb->accumulate(L(0), 0));  // allocates
  EXPECT_EQ(f.stats.dmb_accumulate_misses, 1u);
  EXPECT_EQ(f.stats.partial_bytes_now, kLineBytes);
  ASSERT_TRUE(f.dmb->accumulate(L(0), 1));  // merges
  EXPECT_EQ(f.stats.dmb_accumulate_hits, 1u);
  EXPECT_EQ(f.stats.merge_adds, 1u);
  EXPECT_EQ(f.stats.partial_bytes_now, kLineBytes);  // no growth
}

TEST(Dmb, PartialSpillCountedAndFootprintRetained) {
  Fixture f(/*lines=*/2);
  ASSERT_TRUE(f.dmb->accumulate(L(0), 0));
  ASSERT_TRUE(f.dmb->accumulate(L(1), 0));
  // Third partial evicts one of the first two (both dirty partials).
  ASSERT_TRUE(f.dmb->accumulate(L(2), 1));
  EXPECT_EQ(f.stats.dmb_partial_spills, 1u);
  EXPECT_EQ(f.stats.partial_bytes_now, 3 * kLineBytes);  // still live
  EXPECT_EQ(f.stats.dram_write_bytes[static_cast<std::size_t>(
                TrafficClass::kPartial)],
            kLineBytes);
}

TEST(Dmb, PinnedLinesAreNeverEvicted) {
  Fixture f(/*lines=*/2);
  ASSERT_TRUE(f.dmb->pin_partial(L(0), 0));
  ASSERT_TRUE(f.dmb->pin_partial(L(1), 0));
  EXPECT_EQ(f.dmb->pinned_lines(), 2u);
  // Everything pinned: a new allocation must fail.
  EXPECT_FALSE(f.dmb->write_allocate(L(2), TrafficClass::kCombined, 1));
  // Accumulating into a pinned line keeps succeeding.
  EXPECT_TRUE(f.dmb->accumulate(L(0), 2));
  EXPECT_EQ(f.stats.dmb_accumulate_hits, 1u);
}

TEST(Dmb, UnpinWritesOutputsAndShrinksFootprint) {
  Fixture f(/*lines=*/4);
  ASSERT_TRUE(f.dmb->pin_partial(L(0), 0));
  ASSERT_TRUE(f.dmb->pin_partial(L(1), 0));
  EXPECT_EQ(f.stats.partial_bytes_now, 2 * kLineBytes);
  f.dmb->unpin_and_writeback_outputs(5);
  EXPECT_EQ(f.dmb->pinned_lines(), 0u);
  EXPECT_EQ(f.stats.partial_bytes_now, 0u);
  EXPECT_EQ(f.stats.dram_write_bytes[static_cast<std::size_t>(
                TrafficClass::kOutput)],
            2 * kLineBytes);
  EXPECT_EQ(f.dmb->resident_lines(), 0u);
}

TEST(Dmb, WritebackOnePartialDrainsResidents) {
  Fixture f(/*lines=*/4);
  ASSERT_TRUE(f.dmb->accumulate(L(0), 0));
  ASSERT_TRUE(f.dmb->accumulate(L(1), 0));
  EXPECT_TRUE(f.dmb->writeback_one_partial(TrafficClass::kCombined, 1));
  EXPECT_TRUE(f.dmb->writeback_one_partial(TrafficClass::kCombined, 2));
  EXPECT_FALSE(f.dmb->writeback_one_partial(TrafficClass::kCombined, 3));
  EXPECT_EQ(f.stats.partial_bytes_now, 0u);
  EXPECT_EQ(f.stats.dram_write_bytes[static_cast<std::size_t>(
                TrafficClass::kCombined)],
            2 * kLineBytes);
}

TEST(Dmb, FillInstallsCleanLine) {
  Fixture f;
  f.dmb->read(L(0), TrafficClass::kWeights, 1, 0);
  f.wait_for(1, 0);
  EXPECT_TRUE(f.dmb->contains(L(0)));
  // Clean line: evicting it must not write back.
  f.dmb->reset_contents();
  EXPECT_EQ(f.stats.dram_total_write_bytes(), 0u);
}

TEST(Dmb, ResetRequiresUnpinned) {
  Fixture f;
  ASSERT_TRUE(f.dmb->pin_partial(L(0), 0));
  EXPECT_THROW(f.dmb->reset_contents(), CheckError);
  f.dmb->unpin_and_writeback_outputs(1);
  EXPECT_NO_THROW(f.dmb->reset_contents());
}

TEST(Dmb, PrefetchInstallsAfterLatencyWithoutMshr) {
  Fixture f(/*lines=*/4, /*mshrs=*/1);
  // Occupy the single MSHR with an unrelated miss.
  ASSERT_EQ(f.dmb->read(L(9), TrafficClass::kCombined, 1, 0),
            DenseMatrixBuffer::ReadResult::kMiss);
  // A prefetch still goes out (no MSHR needed).
  EXPECT_TRUE(f.dmb->prefetch(L(0), TrafficClass::kCombined, 0));
  // Duplicate prefetches are no-ops.
  EXPECT_FALSE(f.dmb->prefetch(L(0), TrafficClass::kCombined, 0));
  // A demand read of the prefetched line is treated as a hit whose
  // data arrives with the prefetch.
  EXPECT_EQ(f.dmb->read(L(0), TrafficClass::kCombined, 2, 1),
            DenseMatrixBuffer::ReadResult::kHit);
  const Cycle done = f.wait_for(2, 1);
  EXPECT_GE(done, f.config.dram_latency);
  EXPECT_TRUE(f.dmb->contains(L(0)));
  // Prefetching a resident line is a no-op.
  EXPECT_FALSE(f.dmb->prefetch(L(0), TrafficClass::kCombined, done));
}

TEST(Dmb, PrefetchCountsBandwidthBytes) {
  Fixture f;
  ASSERT_TRUE(f.dmb->prefetch(L(0), TrafficClass::kCombined, 0));
  EXPECT_EQ(f.stats.dram_read_bytes[static_cast<std::size_t>(
                TrafficClass::kCombined)],
            kLineBytes);
  // No double fetch on the demand access.
  f.dmb->read(L(0), TrafficClass::kCombined, 1, 0);
  EXPECT_EQ(f.stats.dram_read_bytes[static_cast<std::size_t>(
                TrafficClass::kCombined)],
            kLineBytes);
  EXPECT_EQ(f.stats.dmb_read_hits, 1u);
}

TEST(Dmb, DemoteClassMakesItsLinesVictimsFirst) {
  Fixture f(/*lines=*/3);
  ASSERT_TRUE(f.dmb->write_allocate(L(0), TrafficClass::kWeights, 0));
  ASSERT_TRUE(f.dmb->write_allocate(L(1), TrafficClass::kCombined, 1));
  ASSERT_TRUE(f.dmb->write_allocate(L(2), TrafficClass::kWeights, 2));
  // Without demotion, LRU would evict L(0); after demoting weights,
  // both weight lines go before the (older-than-L2) combined line.
  f.dmb->demote_class(TrafficClass::kWeights);
  ASSERT_TRUE(f.dmb->write_allocate(L(3), TrafficClass::kCombined, 3));
  ASSERT_TRUE(f.dmb->write_allocate(L(4), TrafficClass::kCombined, 4));
  EXPECT_FALSE(f.dmb->contains(L(0)));
  EXPECT_FALSE(f.dmb->contains(L(2)));
  EXPECT_TRUE(f.dmb->contains(L(1)));
}

TEST(Dmb, DemotePartialClassRejected) {
  Fixture f;
  EXPECT_THROW(f.dmb->demote_class(TrafficClass::kPartial), CheckError);
}

TEST(Dmb, FlushDirtyWritesEachDirtyLineOnce) {
  Fixture f(/*lines=*/4);
  ASSERT_TRUE(f.dmb->write_allocate(L(0), TrafficClass::kCombined, 0));
  ASSERT_TRUE(f.dmb->write_allocate(L(1), TrafficClass::kWeights, 0));
  f.dmb->flush_dirty(1);
  EXPECT_EQ(f.stats.dram_total_write_bytes(), 2 * kLineBytes);
  // Second flush: nothing dirty anymore.
  f.dmb->flush_dirty(2);
  EXPECT_EQ(f.stats.dram_total_write_bytes(), 2 * kLineBytes);
}

}  // namespace
}  // namespace hymm
