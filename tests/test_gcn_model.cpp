// Tests for the multi-layer GcnModel API and the report renderers.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "core/gcn_model.hpp"
#include "core/report.hpp"
#include "graph/generator.hpp"
#include "linalg/gcn.hpp"

namespace hymm {
namespace {

CsrMatrix small_a_hat(NodeId nodes = 80, std::uint64_t seed = 3) {
  GraphSpec spec;
  spec.nodes = nodes;
  spec.edges = nodes * 6;
  spec.seed = seed;
  return normalize_adjacency(generate_power_law_graph(spec));
}

CsrMatrix small_features(NodeId nodes, NodeId dim, std::uint64_t seed) {
  FeatureSpec spec;
  spec.nodes = nodes;
  spec.feature_length = dim;
  spec.density = 0.3;
  spec.seed = seed;
  return generate_features(spec);
}

TEST(GcnModel, ValidatesLayerChain) {
  CsrMatrix a_hat = small_a_hat();
  EXPECT_THROW(GcnModel(a_hat, {}), CheckError);
  // 32 -> 16 then 8 -> 4: the chain is broken.
  EXPECT_THROW(GcnModel(a_hat, {DenseMatrix::random(32, 16, 1),
                                DenseMatrix::random(8, 4, 2)}),
               CheckError);
  // Output dimensions above 16 are allowed (multi-line rows).
  EXPECT_NO_THROW(GcnModel(a_hat, {DenseMatrix::random(32, 20, 1)}));
  EXPECT_NO_THROW(GcnModel(a_hat, {DenseMatrix::random(32, 16, 1),
                                   DenseMatrix::random(16, 4, 2)}));
}

TEST(GcnModel, WithRandomWeightsBuildsChain) {
  const GcnModel model =
      GcnModel::with_random_weights(small_a_hat(), 48, {16, 8, 4}, 7);
  ASSERT_EQ(model.layer_count(), 3u);
  EXPECT_EQ(model.weights()[0].rows(), 48u);
  EXPECT_EQ(model.weights()[0].cols(), 16u);
  EXPECT_EQ(model.weights()[2].cols(), 4u);
}

class GcnModelAllFlows : public ::testing::TestWithParam<Dataflow> {};

TEST_P(GcnModelAllFlows, TwoLayerInferenceVerifies) {
  const CsrMatrix a_hat = small_a_hat();
  const GcnModel model =
      GcnModel::with_random_weights(a_hat, 40, {16, 8}, 11);
  const CsrMatrix x = small_features(a_hat.rows(), 40, 12);
  GcnModel::InferenceRequest request;
  request.flow = GetParam();
  request.features = &x;
  const GcnModel::InferenceResult result = model.run(request);
  EXPECT_TRUE(result.verified) << "max err " << result.max_abs_err;
  ASSERT_EQ(result.layers.size(), 2u);
  EXPECT_EQ(result.total_cycles,
            result.layers[0].stats.cycles + result.layers[1].stats.cycles);
  EXPECT_GT(result.total_dram_bytes, 0u);
  EXPECT_EQ(result.output.rows(), a_hat.rows());
  EXPECT_EQ(result.output.cols(), 8u);
}

INSTANTIATE_TEST_SUITE_P(Dataflows, GcnModelAllFlows,
                         ::testing::Values(Dataflow::kRowWiseProduct,
                                           Dataflow::kOuterProduct,
                                           Dataflow::kHybrid),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(GcnModel, ReferenceMatchesStandaloneReference) {
  const CsrMatrix a_hat = small_a_hat(50, 5);
  const CsrMatrix x = small_features(50, 30, 6);
  const std::vector<DenseMatrix> weights = {DenseMatrix::random(30, 16, 7),
                                            DenseMatrix::random(16, 4, 8)};
  const GcnModel model(a_hat, weights);
  EXPECT_TRUE(DenseMatrix::allclose(
      model.reference(x), gcn_inference_reference(a_hat, x, weights)));
}

TEST(GcnModel, HybridPaysPreprocessingPerLayer) {
  const CsrMatrix a_hat = small_a_hat();
  const GcnModel model =
      GcnModel::with_random_weights(a_hat, 24, {16, 8}, 13);
  const CsrMatrix x = small_features(a_hat.rows(), 24, 14);
  const auto result = model.run(Dataflow::kHybrid, x, AcceleratorConfig{});
  EXPECT_GT(result.total_preprocess_ms, 0.0);
  const auto baseline =
      model.run(Dataflow::kRowWiseProduct, x, AcceleratorConfig{});
  EXPECT_EQ(baseline.total_preprocess_ms, 0.0);
}

// The deprecated positional overload must stay exactly equivalent to
// a request with only flow/features/config/verify set until it is
// removed.
TEST(GcnModel, PositionalOverloadMatchesRequestApi) {
  const CsrMatrix a_hat = small_a_hat();
  const GcnModel model =
      GcnModel::with_random_weights(a_hat, 32, {16, 8}, 21);
  const CsrMatrix x = small_features(a_hat.rows(), 32, 22);
  for (const Dataflow flow : {Dataflow::kRowWiseProduct,
                              Dataflow::kOuterProduct, Dataflow::kHybrid}) {
    GcnModel::InferenceRequest request;
    request.flow = flow;
    request.features = &x;
    const auto via_request = model.run(request);
    const auto via_positional = model.run(flow, x, AcceleratorConfig{});
    EXPECT_EQ(via_request.total_cycles, via_positional.total_cycles);
    EXPECT_EQ(via_request.total_dram_bytes, via_positional.total_dram_bytes);
    EXPECT_TRUE(DenseMatrix::allclose(via_request.output,
                                      via_positional.output));
  }
}

// A precomputed degree sort handed through the request changes only
// the host-side preprocessing cost, never the simulated cycles.
TEST(GcnModel, HybridSortPassthroughKeepsCyclesIdentical) {
  const CsrMatrix a_hat = small_a_hat();
  const GcnModel model =
      GcnModel::with_random_weights(a_hat, 24, {16, 8}, 23);
  const CsrMatrix x = small_features(a_hat.rows(), 24, 24);

  GcnModel::InferenceRequest plain;
  plain.flow = Dataflow::kHybrid;
  plain.features = &x;
  const auto baseline = model.run(plain);

  const DegreeSortResult sort = degree_sort(a_hat);
  const CsrMatrix x_sorted = permute_feature_rows(x, sort.perm);
  GcnModel::InferenceRequest presorted = plain;
  presorted.sort = &sort;
  presorted.sorted_features = &x_sorted;
  const auto result = model.run(presorted);

  EXPECT_EQ(result.total_cycles, baseline.total_cycles);
  EXPECT_EQ(result.total_dram_bytes, baseline.total_dram_bytes);
  EXPECT_TRUE(result.verified) << "max err " << result.max_abs_err;
  // sorted_features is required whenever a sort is passed.
  GcnModel::InferenceRequest missing = presorted;
  missing.sorted_features = nullptr;
  EXPECT_THROW(model.run(missing), CheckError);
}

// Pins the runtime_ms convention shared with ExperimentResult:
// cycles / (clock_ghz * 1e6) milliseconds.
TEST(GcnModel, RuntimeMsConventionPinned) {
  GcnModel::InferenceResult result;
  result.total_cycles = 2'000'000;
  EXPECT_DOUBLE_EQ(result.runtime_ms(1.0), 2.0);  // 2M cycles @1GHz = 2ms
  EXPECT_DOUBLE_EQ(result.runtime_ms(2.0), 1.0);  // twice the clock, half
  EXPECT_DOUBLE_EQ(result.runtime_ms(), result.runtime_ms(1.0));
}

TEST(GcnModel, ShapeMismatchesRejected) {
  const CsrMatrix a_hat = small_a_hat();
  const GcnModel model = GcnModel::with_random_weights(a_hat, 24, {16}, 1);
  const CsrMatrix wrong_dim = small_features(a_hat.rows(), 25, 2);
  EXPECT_THROW(model.run(Dataflow::kRowWiseProduct, wrong_dim,
                         AcceleratorConfig{}),
               CheckError);
  const CsrMatrix wrong_nodes = small_features(a_hat.rows() + 1, 24, 3);
  EXPECT_THROW(model.run(Dataflow::kRowWiseProduct, wrong_nodes,
                         AcceleratorConfig{}),
               CheckError);
  // The request API requires features.
  GcnModel::InferenceRequest request;
  EXPECT_THROW(model.run(request), CheckError);
}

TEST(Report, StatsSummaryMentionsKeyCounters) {
  SimStats stats;
  stats.cycles = 1234;
  stats.mac_ops = 777;
  stats.alu_busy_cycles = 617;
  stats.dram_read_bytes[static_cast<std::size_t>(TrafficClass::kCombined)] =
      128;
  stats.partial_bytes_peak = 4096;
  std::ostringstream out;
  print_stats_summary(stats, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("1234"), std::string::npos);
  EXPECT_NE(s.find("777"), std::string::npos);
  EXPECT_NE(s.find("50.0%"), std::string::npos);  // utilization
  EXPECT_NE(s.find("XW=128B"), std::string::npos);
}

TEST(Report, DramBreakdownSkipsEmptyClasses) {
  SimStats stats;
  EXPECT_EQ(dram_breakdown_string(stats), "none");
  stats.dram_write_bytes[static_cast<std::size_t>(TrafficClass::kOutput)] =
      64;
  EXPECT_EQ(dram_breakdown_string(stats), "AXW=64B");
}

TEST(Report, CsvHasHeaderAndOneRowPerResult) {
  ExperimentResult r;
  r.abbrev = "CR";
  r.flow = Dataflow::kHybrid;
  r.cycles = 42;
  r.verified = true;
  std::ostringstream out;
  write_results_csv(std::vector<ExperimentResult>{r, r}, out);
  const std::string s = out.str();
  std::size_t lines = 0;
  for (const char c : s) lines += c == '\n';
  EXPECT_EQ(lines, 3u);  // header + 2 rows
  EXPECT_NE(s.find("dataset,scale,flow"), std::string::npos);
  EXPECT_NE(s.find("CR,1,HyMM,42"), std::string::npos);
}

}  // namespace
}  // namespace hymm
