// Tests for the golden GCN model: normalization, activation, layer
// and multi-layer inference.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "graph/generator.hpp"
#include "linalg/gcn.hpp"
#include "linalg/spdemm.hpp"

namespace hymm {
namespace {

CsrMatrix path_graph3() {
  // 0 - 1 - 2 undirected path.
  CooMatrix coo(3, 3);
  coo.add(0, 1, 1.0f);
  coo.add(1, 0, 1.0f);
  coo.add(1, 2, 1.0f);
  coo.add(2, 1, 1.0f);
  return CsrMatrix::from_coo(std::move(coo));
}

TEST(NormalizeAdjacency, SymmetricNormalizationWithSelfLoops) {
  const CsrMatrix a_hat = normalize_adjacency(path_graph3(), true);
  // With self loops: deg(0)=2, deg(1)=3, deg(2)=2.
  // a_hat[0][1] = 1/sqrt(2*3).
  bool found = false;
  const auto cols = a_hat.row_cols(0);
  const auto vals = a_hat.row_values(0);
  for (std::size_t k = 0; k < cols.size(); ++k) {
    if (cols[k] == 1) {
      EXPECT_NEAR(vals[k], 1.0 / std::sqrt(6.0), 1e-6);
      found = true;
    }
    if (cols[k] == 0) {
      EXPECT_NEAR(vals[k], 0.5, 1e-6);  // self loop: 1/sqrt(2*2)
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(a_hat.nnz(), 4u + 3u);  // edges + self loops
}

TEST(NormalizeAdjacency, RowSumsBoundedBySqrtDegree) {
  // For D^-1/2 (A+I) D^-1/2 each term is 1/sqrt(d_i d_j) <= 1/sqrt(d_i),
  // so a row of degree d_i sums to at most sqrt(d_i).
  GraphSpec spec;
  spec.nodes = 200;
  spec.edges = 1600;
  spec.seed = 31;
  const CsrMatrix a = generate_power_law_graph(spec);
  const CsrMatrix a_hat = normalize_adjacency(a, true);
  for (NodeId r = 0; r < a_hat.rows(); ++r) {
    double sum = 0.0;
    for (const Value v : a_hat.row_values(r)) {
      EXPECT_GT(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      sum += v;
    }
    const double degree = static_cast<double>(a.row_nnz(r)) + 1.0;
    EXPECT_LE(sum, std::sqrt(degree) + 1e-5);
  }
}

TEST(NormalizeAdjacency, SymmetricOutput) {
  GraphSpec spec;
  spec.nodes = 100;
  spec.edges = 700;
  spec.seed = 5;
  const CsrMatrix a = generate_power_law_graph(spec);
  const CsrMatrix a_hat = normalize_adjacency(a, true);
  EXPECT_EQ(a_hat.transpose(), a_hat);
}

TEST(NormalizeAdjacency, WithoutSelfLoopsKeepsPattern) {
  const CsrMatrix a_hat = normalize_adjacency(path_graph3(), false);
  EXPECT_EQ(a_hat.nnz(), 4u);
}

TEST(NormalizeAdjacency, IsolatedNodesSurvive) {
  CooMatrix coo(3, 3);
  coo.add(0, 1, 1.0f);
  coo.add(1, 0, 1.0f);
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  // Node 2 is isolated; without self loops its degree is zero.
  const CsrMatrix a_hat = normalize_adjacency(a, false);
  EXPECT_EQ(a_hat.row_nnz(2), 0u);
}

TEST(Relu, ClampsNegatives) {
  DenseMatrix m = DenseMatrix::zeros(2, 2);
  m.at(0, 0) = -1.5f;
  m.at(0, 1) = 2.0f;
  m.at(1, 0) = -0.1f;
  relu_inplace(m);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 0.0f);
}

TEST(DenseToCsr, DropsExactZeros) {
  DenseMatrix m = DenseMatrix::zeros(2, 3);
  m.at(0, 2) = 1.0f;
  m.at(1, 0) = -2.0f;
  const CsrMatrix s = dense_to_csr(m);
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_EQ(s.row_cols(0)[0], 2u);
  EXPECT_FLOAT_EQ(s.row_values(1)[0], -2.0f);
}

TEST(GcnLayer, MatchesManualComposition) {
  GraphSpec gspec;
  gspec.nodes = 60;
  gspec.edges = 400;
  gspec.seed = 7;
  const CsrMatrix a = generate_power_law_graph(gspec);
  const CsrMatrix a_hat = normalize_adjacency(a);
  FeatureSpec fspec;
  fspec.nodes = 60;
  fspec.feature_length = 40;
  fspec.density = 0.2;
  fspec.seed = 8;
  const CsrMatrix x = generate_features(fspec);
  const DenseMatrix w = DenseMatrix::random(40, 16, 9);

  const GcnLayerResult layer = gcn_layer_reference(a_hat, x, w, true);
  const DenseMatrix xw = sparse_times_dense(x, w);
  const DenseMatrix axw = spdemm_row_wise(a_hat, xw);
  EXPECT_TRUE(DenseMatrix::allclose(layer.combination, xw));
  EXPECT_TRUE(DenseMatrix::allclose(layer.aggregation, axw));
  // Activation is elementwise ReLU of the aggregation.
  for (NodeId r = 0; r < axw.rows(); ++r) {
    for (NodeId c = 0; c < axw.cols(); ++c) {
      EXPECT_FLOAT_EQ(layer.activation.at(r, c),
                      std::max(0.0f, axw.at(r, c)));
    }
  }
}

TEST(GcnLayer, ShapeChecks) {
  const CsrMatrix a_hat = normalize_adjacency(path_graph3());
  FeatureSpec fspec;
  fspec.nodes = 4;  // mismatched with the 3-node graph
  fspec.feature_length = 8;
  fspec.density = 0.5;
  fspec.seed = 1;
  const CsrMatrix x = generate_features(fspec);
  const DenseMatrix w = DenseMatrix::random(8, 4, 2);
  EXPECT_THROW(gcn_layer_reference(a_hat, x, w), CheckError);
}

TEST(GcnInference, TwoLayersComposeThroughRelu) {
  GraphSpec gspec;
  gspec.nodes = 40;
  gspec.edges = 250;
  gspec.seed = 17;
  const CsrMatrix a_hat =
      normalize_adjacency(generate_power_law_graph(gspec));
  FeatureSpec fspec;
  fspec.nodes = 40;
  fspec.feature_length = 24;
  fspec.density = 0.4;
  fspec.seed = 18;
  const CsrMatrix x = generate_features(fspec);
  const std::vector<DenseMatrix> weights = {
      DenseMatrix::random(24, 16, 19), DenseMatrix::random(16, 8, 20)};

  const DenseMatrix h2 = gcn_inference_reference(a_hat, x, weights);
  // Manual composition.
  GcnLayerResult l1 = gcn_layer_reference(a_hat, x, weights[0], true);
  const CsrMatrix h1 = dense_to_csr(l1.activation);
  GcnLayerResult l2 = gcn_layer_reference(a_hat, h1, weights[1], false);
  EXPECT_TRUE(DenseMatrix::allclose(h2, l2.aggregation));
  // Last layer skips ReLU, so negatives may appear.
  EXPECT_EQ(h2.rows(), 40u);
  EXPECT_EQ(h2.cols(), 8u);
}

TEST(GcnInference, RequiresAtLeastOneLayer) {
  const CsrMatrix a_hat = normalize_adjacency(path_graph3());
  FeatureSpec fspec;
  fspec.nodes = 3;
  fspec.feature_length = 4;
  fspec.density = 1.0;
  fspec.seed = 1;
  const CsrMatrix x = generate_features(fspec);
  EXPECT_THROW(gcn_inference_reference(a_hat, x, {}), CheckError);
}

}  // namespace
}  // namespace hymm
