// Integration tests: the full accelerator (combination + aggregation)
// under every dataflow, verified against the golden GCN model, plus
// the experiment runner.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/accelerator.hpp"
#include "core/runner.hpp"
#include "graph/datasets.hpp"
#include "graph/generator.hpp"
#include "linalg/gcn.hpp"

namespace hymm {
namespace {

struct Problem {
  CsrMatrix a_hat;
  CsrMatrix x;
  DenseMatrix w;
  DenseMatrix expected;  // pre-activation aggregation
};

Problem make_problem(NodeId nodes, EdgeCount edges, NodeId features,
                     double feature_density, std::uint64_t seed) {
  GraphSpec gspec;
  gspec.nodes = nodes;
  gspec.edges = edges;
  gspec.seed = seed;
  Problem p;
  p.a_hat = normalize_adjacency(generate_power_law_graph(gspec));
  FeatureSpec fspec;
  fspec.nodes = nodes;
  fspec.feature_length = features;
  fspec.density = feature_density;
  fspec.seed = seed + 1;
  p.x = generate_features(fspec);
  p.w = DenseMatrix::random(features, 16, seed + 2);
  p.expected =
      gcn_layer_reference(p.a_hat, p.x, p.w, /*apply_relu=*/false)
          .aggregation;
  return p;
}

class AllDataflows : public ::testing::TestWithParam<Dataflow> {};

TEST_P(AllDataflows, LayerOutputMatchesGoldenModel) {
  const Problem p = make_problem(150, 1200, 64, 0.2, 42);
  Accelerator accelerator{AcceleratorConfig{}};
  const LayerRunResult result =
      accelerator.run_layer(GetParam(), p.a_hat, p.x, p.w);
  EXPECT_TRUE(DenseMatrix::allclose(result.output, p.expected, 1e-3, 1e-4))
      << to_string(GetParam()) << " max err "
      << DenseMatrix::max_abs_diff(result.output, p.expected);
  EXPECT_GT(result.stats.cycles, 0u);
  EXPECT_GT(result.stats.mac_ops, 0u);
  EXPECT_GT(result.combination_stats.cycles, 0u);
  EXPECT_GT(result.aggregation_stats.cycles, 0u);
  EXPECT_EQ(result.stats.cycles, result.combination_stats.cycles +
                                     result.aggregation_stats.cycles);
}

TEST_P(AllDataflows, CombinationMatchesGoldenModel) {
  const Problem p = make_problem(100, 700, 48, 0.3, 7);
  Accelerator accelerator{AcceleratorConfig{}};
  const LayerRunResult result =
      accelerator.run_layer(GetParam(), p.a_hat, p.x, p.w);
  const DenseMatrix xw =
      gcn_layer_reference(p.a_hat, p.x, p.w, false).combination;
  EXPECT_TRUE(DenseMatrix::allclose(result.combination, xw, 1e-3, 1e-4));
}

TEST_P(AllDataflows, MacCountEqualsNnzWork) {
  const Problem p = make_problem(80, 600, 32, 0.25, 9);
  Accelerator accelerator{AcceleratorConfig{}};
  const LayerRunResult result =
      accelerator.run_layer(GetParam(), p.a_hat, p.x, p.w);
  // Exactly one scalar-vector MAC per non-zero of X (combination)
  // plus one per non-zero of A_hat (aggregation).
  EXPECT_EQ(result.stats.mac_ops, p.x.nnz() + p.a_hat.nnz());
}

INSTANTIATE_TEST_SUITE_P(Dataflows, AllDataflows,
                         ::testing::Values(Dataflow::kRowWiseProduct,
                                           Dataflow::kOuterProduct,
                                           Dataflow::kHybrid),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Accelerator, HybridReportsPartitionAndPreprocessing) {
  const Problem p = make_problem(200, 2000, 32, 0.2, 11);
  Accelerator accelerator{AcceleratorConfig{}};
  const LayerRunResult result =
      accelerator.run_layer(Dataflow::kHybrid, p.a_hat, p.x, p.w);
  EXPECT_EQ(result.partition.nodes, 200u);
  EXPECT_EQ(result.partition.region1_rows, 40u);  // 20% of 200
  EXPECT_GE(result.preprocess_ms, 0.0);
  EXPECT_EQ(result.hybrid_info.pinned_rows, 40u);
}

TEST(Accelerator, BaselinesDoNotPreprocess) {
  const Problem p = make_problem(60, 400, 24, 0.3, 13);
  Accelerator accelerator{AcceleratorConfig{}};
  const LayerRunResult result =
      accelerator.run_layer(Dataflow::kRowWiseProduct, p.a_hat, p.x, p.w);
  EXPECT_EQ(result.preprocess_ms, 0.0);
  EXPECT_EQ(result.partition.nodes, 0u);
}

TEST(Accelerator, ShapeValidation) {
  const Problem p = make_problem(50, 300, 24, 0.3, 17);
  Accelerator accelerator{AcceleratorConfig{}};
  const DenseMatrix bad_w = DenseMatrix::random(99, 16, 1);
  EXPECT_THROW(
      accelerator.run_layer(Dataflow::kRowWiseProduct, p.a_hat, p.x, bad_w),
      CheckError);
}

TEST(Accelerator, WideLayerDimensionVerifies) {
  // Layer dimension 32 = two lines per dense row; every dataflow must
  // still match the golden model.
  GraphSpec gspec;
  gspec.nodes = 80;
  gspec.edges = 600;
  gspec.seed = 29;
  const CsrMatrix a_hat = normalize_adjacency(generate_power_law_graph(gspec));
  FeatureSpec fspec;
  fspec.nodes = 80;
  fspec.feature_length = 40;
  fspec.density = 0.3;
  fspec.seed = 30;
  const CsrMatrix x = generate_features(fspec);
  const DenseMatrix w = DenseMatrix::random(40, 32, 31);
  const DenseMatrix expected =
      gcn_layer_reference(a_hat, x, w, false).aggregation;
  Accelerator accelerator{AcceleratorConfig{}};
  for (const Dataflow flow :
       {Dataflow::kRowWiseProduct, Dataflow::kOuterProduct,
        Dataflow::kHybrid}) {
    const LayerRunResult r = accelerator.run_layer(flow, a_hat, x, w);
    EXPECT_TRUE(DenseMatrix::allclose(r.output, expected, 1e-3, 1e-4))
        << to_string(flow);
    // Two chunk MACs per non-zero.
    EXPECT_EQ(r.stats.mac_ops, (x.nnz() + a_hat.nnz()) * 2)
        << to_string(flow);
  }
}

TEST(Accelerator, DramTrafficIsConsistent) {
  const Problem p = make_problem(120, 900, 40, 0.25, 19);
  for (const Dataflow flow :
       {Dataflow::kRowWiseProduct, Dataflow::kOuterProduct,
        Dataflow::kHybrid}) {
    Accelerator accelerator{AcceleratorConfig{}};
    const LayerRunResult r = accelerator.run_layer(flow, p.a_hat, p.x, p.w);
    // Total bytes equal the per-class sums.
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kTrafficClassCount; ++i) {
      sum += r.stats.dram_read_bytes[i] + r.stats.dram_write_bytes[i];
    }
    EXPECT_EQ(sum, r.stats.dram_total_bytes());
    // Output writes cover at least the touched output rows once.
    EXPECT_GT(r.stats.dram_write_bytes[static_cast<std::size_t>(
                  TrafficClass::kOutput)],
              0u)
        << to_string(flow);
    // ALU can never be busy more than one op per cycle.
    EXPECT_LE(r.stats.alu_busy_cycles, r.stats.cycles);
  }
}

TEST(Accelerator, HybridUnpermutesOutputRows) {
  // Use wildly asymmetric node degrees so a permutation bug would
  // misplace rows.
  const Problem p = make_problem(90, 1000, 24, 0.4, 23);
  Accelerator accelerator{AcceleratorConfig{}};
  const LayerRunResult hybrid =
      accelerator.run_layer(Dataflow::kHybrid, p.a_hat, p.x, p.w);
  const LayerRunResult rwp =
      accelerator.run_layer(Dataflow::kRowWiseProduct, p.a_hat, p.x, p.w);
  EXPECT_TRUE(
      DenseMatrix::allclose(hybrid.output, rwp.output, 1e-3, 1e-4));
}

TEST(Runner, ExperimentVerifiesAndFillsMetrics) {
  DatasetSpec spec = paper_datasets()[0];  // Cora
  const DataflowComparison comparison = compare_dataflows(
      spec, AcceleratorConfig{},
      {Dataflow::kOuterProduct, Dataflow::kRowWiseProduct, Dataflow::kHybrid},
      /*scale=*/0.05, /*seed=*/1);
  ASSERT_EQ(comparison.results.size(), 3u);
  for (const ExperimentResult& r : comparison.results) {
    EXPECT_TRUE(r.verified) << to_string(r.flow) << " err " << r.max_abs_err;
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.dram_total_bytes, 0u);
    EXPECT_GT(r.alu_utilization, 0.0);
    EXPECT_LE(r.alu_utilization, 1.0);
    EXPECT_GE(r.dmb_hit_rate, 0.0);
    EXPECT_LE(r.dmb_hit_rate, 1.0);
  }
  EXPECT_EQ(&comparison.by_flow(Dataflow::kHybrid),
            &comparison.results[2]);
  EXPECT_THROW(
      compare_dataflows(spec, AcceleratorConfig{}, {}, 0.05, 1)
          .by_flow(Dataflow::kHybrid),
      CheckError);
}

TEST(Runner, HybridNeverSlowerThanBothBaselinesOnSkewedGraph) {
  // The paper's headline claim in miniature: on a power-law graph
  // that fits the simulator budget, HyMM at least matches the best
  // homogeneous dataflow.
  DatasetSpec spec = paper_datasets()[1];  // Amazon-Photo
  const DataflowComparison comparison =
      compare_dataflows(spec, AcceleratorConfig{},
                        {Dataflow::kOuterProduct, Dataflow::kRowWiseProduct,
                         Dataflow::kHybrid},
                        /*scale=*/0.1, /*seed=*/2);
  const auto& op = comparison.by_flow(Dataflow::kOuterProduct);
  const auto& rwp = comparison.by_flow(Dataflow::kRowWiseProduct);
  const auto& hymm = comparison.by_flow(Dataflow::kHybrid);
  EXPECT_LT(hymm.cycles, op.cycles);
  EXPECT_LE(hymm.cycles, static_cast<Cycle>(rwp.cycles * 1.05));
  EXPECT_LT(hymm.dram_total_bytes, op.dram_total_bytes);
}

}  // namespace
}  // namespace hymm
