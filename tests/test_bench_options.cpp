// BenchOptions parsing: the shared bench knobs must fail fast with a
// UsageError naming the bad value (no silent fallback to all datasets
// or the default scale), flags must win over the environment, and
// unowned flags must pass through for the caller.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sweep/bench_options.hpp"

namespace hymm {
namespace {

// Fake environment backed by a map; missing names return nullptr like
// ::getenv.
class FakeEnv {
 public:
  explicit FakeEnv(std::map<std::string, std::string> vars)
      : vars_(std::move(vars)) {}

  BenchOptions::EnvGetter getter() const {
    return [this](const char* name) -> const char* {
      const auto it = vars_.find(name);
      return it == vars_.end() ? nullptr : it->second.c_str();
    };
  }

 private:
  std::map<std::string, std::string> vars_;
};

BenchOptions parse(std::vector<std::string> args,
                   std::map<std::string, std::string> env = {},
                   std::vector<std::string>* unrecognized = nullptr) {
  const FakeEnv fake(std::move(env));
  return BenchOptions::parse(args, fake.getter(), unrecognized);
}

std::string error_of(std::vector<std::string> args,
                     std::map<std::string, std::string> env = {}) {
  try {
    parse(std::move(args), std::move(env));
  } catch (const UsageError& e) {
    return e.what();
  }
  return "";
}

TEST(BenchOptionsTest, DefaultsToAllPaperDatasets) {
  const BenchOptions opts = parse({});
  EXPECT_EQ(opts.datasets.size(), paper_datasets().size());
  EXPECT_FALSE(opts.datasets_explicit);
  EXPECT_FALSE(opts.scale.has_value());
  EXPECT_FALSE(opts.full_datasets);
  EXPECT_EQ(opts.threads, 0u);
  EXPECT_EQ(opts.seed, 42u);
}

TEST(BenchOptionsTest, EnvDatasetSelection) {
  const BenchOptions opts = parse({}, {{"HYMM_DATASETS", "CR,AP"}});
  ASSERT_EQ(opts.datasets.size(), 2u);
  EXPECT_EQ(opts.datasets[0].abbrev, "CR");
  EXPECT_EQ(opts.datasets[1].abbrev, "AP");
  EXPECT_TRUE(opts.datasets_explicit);
}

// The historical bug: unknown tokens used to silently fall back to
// all seven datasets. They must fail fast naming the token.
TEST(BenchOptionsTest, UnknownDatasetTokenFailsFast) {
  const std::string err = error_of({}, {{"HYMM_DATASETS", "CR,bogus"}});
  EXPECT_NE(err.find("bogus"), std::string::npos) << err;
  EXPECT_NE(err.find("HYMM_DATASETS"), std::string::npos) << err;

  const std::string flag_err = error_of({"--datasets", "nope"});
  EXPECT_NE(flag_err.find("nope"), std::string::npos) << flag_err;
  EXPECT_NE(flag_err.find("--datasets"), std::string::npos) << flag_err;
}

// The historical bug: HYMM_SCALE was parsed with atof, so
// HYMM_SCALE=fast silently meant "default scale".
TEST(BenchOptionsTest, MalformedScaleFailsFast) {
  const std::string err = error_of({}, {{"HYMM_SCALE", "fast"}});
  EXPECT_NE(err.find("fast"), std::string::npos) << err;
  EXPECT_NE(err.find("HYMM_SCALE"), std::string::npos) << err;

  EXPECT_NE(error_of({"--scale", "0"}), "");    // zero rejected
  EXPECT_NE(error_of({"--scale", "1.5"}), "");  // above 1 rejected
  EXPECT_EQ(*parse({"--scale", "0.25"}).scale, 0.25);
}

TEST(BenchOptionsTest, MalformedThreadsFailsFast) {
  const std::string err = error_of({}, {{"HYMM_THREADS", "many"}});
  EXPECT_NE(err.find("many"), std::string::npos) << err;
  EXPECT_NE(err.find("HYMM_THREADS"), std::string::npos) << err;
  EXPECT_NE(error_of({"--threads", "-2"}), "");
  EXPECT_EQ(parse({"--threads", "8"}).threads, 8u);
}

TEST(BenchOptionsTest, FlagsWinOverEnvironment) {
  const BenchOptions opts =
      parse({"--datasets=AC", "--scale=0.5", "--threads=2"},
            {{"HYMM_DATASETS", "CR,AP"},
             {"HYMM_SCALE", "0.1"},
             {"HYMM_THREADS", "7"}});
  ASSERT_EQ(opts.datasets.size(), 1u);
  EXPECT_EQ(opts.datasets[0].abbrev, "AC");
  EXPECT_EQ(*opts.scale, 0.5);
  EXPECT_EQ(opts.threads, 2u);
}

TEST(BenchOptionsTest, ScaleForPrecedence) {
  const DatasetSpec fr = *find_dataset("FR");  // scaled by default

  BenchOptions defaults = parse({});
  EXPECT_EQ(defaults.scale_for(fr), default_scale(fr));

  const BenchOptions full = parse({"--full-datasets"});
  EXPECT_TRUE(full.full_datasets);
  EXPECT_EQ(full.scale_for(fr), 1.0);

  // An explicit scale overrides --full-datasets.
  const BenchOptions both = parse({"--full-datasets", "--scale", "0.3"});
  EXPECT_EQ(both.scale_for(fr), 0.3);
}

TEST(BenchOptionsTest, TraceAndJsonDirs) {
  const BenchOptions opts = parse({"--trace-dir", "/tmp/t"},
                                  {{"HYMM_JSON_DIR", "/tmp/j"}});
  EXPECT_EQ(opts.trace_dir, "/tmp/t");
  EXPECT_EQ(opts.json_dir, "/tmp/j");
  EXPECT_TRUE(opts.observing());
  EXPECT_FALSE(parse({}).observing());
}

// The spatial heatmap knob: off by default, bare --spatial means
// auto tile sizing (and never consumes the following argument), =N
// picks an explicit tile edge, =0 turns it back off.
TEST(BenchOptionsTest, SpatialKnob) {
  EXPECT_EQ(parse({}).spatial_tile, 0u);

  const BenchOptions bare = parse({"--spatial"});
  EXPECT_EQ(bare.spatial_tile, 1u);
  EXPECT_TRUE(bare.observing());

  EXPECT_EQ(parse({"--spatial=64"}).spatial_tile, 64u);
  EXPECT_EQ(parse({"--spatial=0"}).spatial_tile, 0u);
  EXPECT_FALSE(parse({"--spatial=0"}).observing());

  std::vector<std::string> rest;
  const BenchOptions opts = parse({"--spatial", "--seed=9"}, {}, &rest);
  EXPECT_EQ(opts.spatial_tile, 1u);
  EXPECT_EQ(opts.seed, 9u);
  EXPECT_TRUE(rest.empty());

  EXPECT_EQ(parse({}, {{"HYMM_SPATIAL", "32"}}).spatial_tile, 32u);
  // Flags win over the environment.
  EXPECT_EQ(parse({"--spatial=16"}, {{"HYMM_SPATIAL", "32"}}).spatial_tile,
            16u);

  const std::string err = error_of({}, {{"HYMM_SPATIAL", "huge"}});
  EXPECT_NE(err.find("huge"), std::string::npos) << err;
  EXPECT_NE(err.find("HYMM_SPATIAL"), std::string::npos) << err;
  EXPECT_NE(error_of({"--spatial=banana"}), "");
}

TEST(BenchOptionsTest, UnrecognizedFlagsPassThrough) {
  std::vector<std::string> rest;
  const BenchOptions opts =
      parse({"--out", "file.json", "--seed=9", "--rev", "abc"}, {}, &rest);
  EXPECT_EQ(opts.seed, 9u);
  EXPECT_EQ(rest,
            (std::vector<std::string>{"--out", "file.json", "--rev", "abc"}));
}

TEST(BenchOptionsTest, UnknownFlagIsErrorWithoutPassthrough) {
  const std::string err = error_of({"--frobnicate"});
  EXPECT_NE(err.find("--frobnicate"), std::string::npos) << err;
}

TEST(BenchOptionsTest, MissingValueIsError) {
  EXPECT_NE(error_of({"--datasets"}), "");
  EXPECT_NE(error_of({"--scale="}), "");
}

TEST(BenchOptionsTest, ServeKnobDefaultsAreUnset) {
  const BenchOptions opts = parse({});
  EXPECT_EQ(opts.arrival_rate, 0.0);
  EXPECT_EQ(opts.requests, 0u);
  EXPECT_EQ(opts.batch, 0u);
  EXPECT_EQ(opts.queue_capacity, 0u);
  EXPECT_FALSE(opts.serve_reuse.has_value());
}

TEST(BenchOptionsTest, ServeKnobsParseFromFlags) {
  const BenchOptions opts =
      parse({"--arrival-rate=2500.5", "--requests", "96", "--batch=8",
             "--queue-cap=32", "--reuse=0"});
  EXPECT_DOUBLE_EQ(opts.arrival_rate, 2500.5);
  EXPECT_EQ(opts.requests, 96u);
  EXPECT_EQ(opts.batch, 8u);
  EXPECT_EQ(opts.queue_capacity, 32u);
  ASSERT_TRUE(opts.serve_reuse.has_value());
  EXPECT_FALSE(*opts.serve_reuse);
}

TEST(BenchOptionsTest, ServeKnobsParseFromEnvAndFlagsWin) {
  const std::map<std::string, std::string> env = {
      {"HYMM_ARRIVAL_RATE", "1000"}, {"HYMM_REQUESTS", "10"},
      {"HYMM_BATCH", "2"},           {"HYMM_QUEUE_CAP", "4"},
      {"HYMM_REUSE", "1"}};
  const BenchOptions from_env = parse({}, env);
  EXPECT_DOUBLE_EQ(from_env.arrival_rate, 1000.0);
  EXPECT_EQ(from_env.requests, 10u);
  EXPECT_EQ(from_env.batch, 2u);
  EXPECT_EQ(from_env.queue_capacity, 4u);
  ASSERT_TRUE(from_env.serve_reuse.has_value());
  EXPECT_TRUE(*from_env.serve_reuse);

  const BenchOptions overridden =
      parse({"--arrival-rate=2000", "--requests=20"}, env);
  EXPECT_DOUBLE_EQ(overridden.arrival_rate, 2000.0);
  EXPECT_EQ(overridden.requests, 20u);
  EXPECT_EQ(overridden.batch, 2u);  // env survives where no flag given
}

TEST(BenchOptionsTest, ServeKnobsFailFastOnBadValues) {
  const std::string rate_err = error_of({}, {{"HYMM_ARRIVAL_RATE", "0"}});
  EXPECT_NE(rate_err.find("HYMM_ARRIVAL_RATE"), std::string::npos)
      << rate_err;
  EXPECT_NE(error_of({"--arrival-rate=-5"}), "");
  EXPECT_NE(error_of({"--arrival-rate=banana"}), "");
  EXPECT_NE(error_of({"--requests=0"}), "");
  EXPECT_NE(error_of({"--batch=0"}), "");
  EXPECT_NE(error_of({"--batch=100000"}), "");
  EXPECT_NE(error_of({"--queue-cap=0"}), "");
  EXPECT_NE(error_of({"--reuse=2"}), "");
  const std::string reuse_err = error_of({}, {{"HYMM_REUSE", "maybe"}});
  EXPECT_NE(reuse_err.find("HYMM_REUSE"), std::string::npos) << reuse_err;
}

// Sampled-simulation knob: off by default, bare --sample means the
// default 0.25 fraction (and never consumes the following argument),
// out-of-range or malformed fractions fail fast naming the value —
// no clamping, no silent fallback to exact mode.
TEST(BenchOptionsTest, SampleKnob) {
  EXPECT_EQ(parse({}).sample, 0.0);

  EXPECT_DOUBLE_EQ(parse({"--sample"}).sample, 0.25);
  EXPECT_DOUBLE_EQ(parse({"--sample=0.5"}).sample, 0.5);
  EXPECT_DOUBLE_EQ(parse({"--sample=1"}).sample, 1.0);
  // 0 = exact mode, legal from the environment and the flag.
  EXPECT_DOUBLE_EQ(parse({"--sample=0"}).sample, 0.0);

  std::vector<std::string> rest;
  const BenchOptions opts = parse({"--sample", "--seed=9"}, {}, &rest);
  EXPECT_DOUBLE_EQ(opts.sample, 0.25);
  EXPECT_EQ(opts.seed, 9u);
  EXPECT_TRUE(rest.empty());

  EXPECT_DOUBLE_EQ(parse({}, {{"HYMM_SAMPLE", "0.1"}}).sample, 0.1);
  // Flags win over the environment.
  EXPECT_DOUBLE_EQ(parse({"--sample=0.75"}, {{"HYMM_SAMPLE", "0.1"}}).sample,
                   0.75);

  const std::string high = error_of({"--sample=1.5"});
  EXPECT_NE(high.find("1.5"), std::string::npos) << high;
  EXPECT_NE(high.find("--sample"), std::string::npos) << high;
  EXPECT_NE(error_of({"--sample=-0.2"}), "");
  const std::string junk = error_of({"--sample=abc"});
  EXPECT_NE(junk.find("abc"), std::string::npos) << junk;
  const std::string env_err = error_of({}, {{"HYMM_SAMPLE", "lots"}});
  EXPECT_NE(env_err.find("HYMM_SAMPLE"), std::string::npos) << env_err;
  EXPECT_NE(env_err.find("lots"), std::string::npos) << env_err;
}

// Routing knob: global by default, bare --route means tiles:analytic
// (and never consumes the following argument), bad values fail fast
// naming the source, and combining the router with the threshold
// auto-tuner is a contradiction the parser rejects.
TEST(BenchOptionsTest, RouteKnob) {
  EXPECT_EQ(parse({}).route, RouteMode::kGlobal);

  EXPECT_EQ(parse({"--route"}).route, RouteMode::kTilesAnalytic);
  EXPECT_EQ(parse({"--route=global"}).route, RouteMode::kGlobal);
  EXPECT_EQ(parse({"--route=tiles"}).route, RouteMode::kTilesAnalytic);
  EXPECT_EQ(parse({"--route=tiles:analytic"}).route,
            RouteMode::kTilesAnalytic);
  EXPECT_EQ(parse({"--route=tiles:measured"}).route,
            RouteMode::kTilesMeasured);

  std::vector<std::string> rest;
  const BenchOptions bare = parse({"--route", "--seed=9"}, {}, &rest);
  EXPECT_EQ(bare.route, RouteMode::kTilesAnalytic);
  EXPECT_EQ(bare.seed, 9u);
  EXPECT_TRUE(rest.empty());

  EXPECT_EQ(parse({}, {{"HYMM_ROUTE", "tiles:measured"}}).route,
            RouteMode::kTilesMeasured);
  // Flags win over the environment.
  EXPECT_EQ(parse({"--route=global"}, {{"HYMM_ROUTE", "tiles"}}).route,
            RouteMode::kGlobal);

  const std::string err = error_of({}, {{"HYMM_ROUTE", "mesh"}});
  EXPECT_NE(err.find("mesh"), std::string::npos) << err;
  EXPECT_NE(err.find("HYMM_ROUTE"), std::string::npos) << err;
  EXPECT_NE(error_of({"--route=banana"}), "");
}

// The router tunes the global threshold itself, so combining it with
// --autotune is ambiguous and must be rejected naming both knobs.
TEST(BenchOptionsTest, RouteConflictsWithAutotune) {
  const std::string err = error_of({"--route=tiles", "--autotune=analytic"});
  EXPECT_NE(err.find("--route"), std::string::npos) << err;
  EXPECT_NE(err.find("--autotune"), std::string::npos) << err;

  const std::string env_err =
      error_of({}, {{"HYMM_ROUTE", "tiles"}, {"HYMM_AUTOTUNE", "measured"}});
  EXPECT_NE(env_err, "");

  // Either knob alone (or autotune explicitly off) is fine.
  EXPECT_EQ(parse({"--route=tiles", "--autotune=off"}).route,
            RouteMode::kTilesAnalytic);
  EXPECT_EQ(parse({"--autotune=analytic"}).autotune,
            AutotuneMode::kAnalytic);
}

// Checkpoint-directory knob: validated eagerly at parse time — the
// directory is created if missing and probed for writability, so a
// bad path fails at startup naming it instead of silently running
// cold.
TEST(BenchOptionsTest, CheckpointDirKnob) {
  EXPECT_TRUE(parse({}).checkpoint_dir.empty());

  const std::string dir =
      ::testing::TempDir() + "hymm_ckpt_opt_test/nested";
  std::filesystem::remove_all(::testing::TempDir() + "hymm_ckpt_opt_test");
  const BenchOptions opts = parse({"--checkpoint-dir=" + dir});
  EXPECT_EQ(opts.checkpoint_dir, dir);
  // Missing directories are created, not rejected.
  EXPECT_TRUE(std::filesystem::is_directory(dir));

  EXPECT_EQ(parse({}, {{"HYMM_CHECKPOINT_DIR", dir}}).checkpoint_dir, dir);

  EXPECT_NE(error_of({"--checkpoint-dir="}), "");
  // A path whose parent is a *file* cannot become a directory.
  const std::string file_path = dir + "/blocker";
  { std::ofstream(file_path) << 'x'; }
  const std::string err = error_of({"--checkpoint-dir", file_path + "/sub"});
  EXPECT_NE(err.find("--checkpoint-dir"), std::string::npos) << err;
  std::filesystem::remove_all(::testing::TempDir() + "hymm_ckpt_opt_test");
}

}  // namespace
}  // namespace hymm
