// Tests for the dense matrix and the reference SpDeMM kernels,
// including the property that the row-wise and outer-product
// dataflows compute identical results.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "linalg/dense.hpp"
#include "linalg/spdemm.hpp"

namespace hymm {
namespace {

CsrMatrix random_sparse(NodeId rows, NodeId cols, double density,
                        std::uint64_t seed) {
  FeatureSpec spec;
  spec.nodes = rows;
  spec.feature_length = cols;
  spec.density = density;
  spec.seed = seed;
  return generate_features(spec);
}

TEST(DenseMatrix, ZerosAndFill) {
  DenseMatrix m = DenseMatrix::zeros(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (NodeId r = 0; r < 3; ++r) {
    for (NodeId c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(m.at(r, c), 0.0f);
  }
  m.fill(2.5f);
  EXPECT_FLOAT_EQ(m.at(2, 3), 2.5f);
}

TEST(DenseMatrix, RandomDeterministicAndInRange) {
  const DenseMatrix a = DenseMatrix::random(10, 8, 42);
  const DenseMatrix b = DenseMatrix::random(10, 8, 42);
  EXPECT_EQ(a, b);
  for (const Value v : a.data()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
  }
}

TEST(DenseMatrix, RowSpanAliasesStorage) {
  DenseMatrix m = DenseMatrix::zeros(2, 3);
  m.row(1)[2] = 7.0f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 7.0f);
}

TEST(DenseMatrix, MaxAbsDiffAndAllclose) {
  DenseMatrix a = DenseMatrix::zeros(2, 2);
  DenseMatrix b = DenseMatrix::zeros(2, 2);
  b.at(1, 1) = 1e-6f;
  EXPECT_NEAR(DenseMatrix::max_abs_diff(a, b), 1e-6, 1e-9);
  EXPECT_TRUE(DenseMatrix::allclose(a, b));
  b.at(0, 0) = 1.0f;
  EXPECT_FALSE(DenseMatrix::allclose(a, b));
}

TEST(DenseMatrix, ShapeMismatchThrows) {
  const DenseMatrix a = DenseMatrix::zeros(2, 2);
  const DenseMatrix b = DenseMatrix::zeros(2, 3);
  EXPECT_THROW(DenseMatrix::max_abs_diff(a, b), CheckError);
}

TEST(Spdemm, RowWiseHandComputed) {
  // A = [[2, 0], [0, 3]], B = [[1, 2], [3, 4]].
  CooMatrix coo(2, 2);
  coo.add(0, 0, 2.0f);
  coo.add(1, 1, 3.0f);
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  DenseMatrix b = DenseMatrix::zeros(2, 2);
  b.at(0, 0) = 1.0f;
  b.at(0, 1) = 2.0f;
  b.at(1, 0) = 3.0f;
  b.at(1, 1) = 4.0f;
  const DenseMatrix c = spdemm_row_wise(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 9.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 12.0f);
}

TEST(Spdemm, ShapeMismatchThrows) {
  const CsrMatrix a = random_sparse(4, 5, 0.5, 1);
  const DenseMatrix b = DenseMatrix::zeros(6, 2);
  EXPECT_THROW(spdemm_row_wise(a, b), CheckError);
}

TEST(Spdemm, EmptyMatrixGivesZeroOutput) {
  const CsrMatrix a = random_sparse(4, 4, 0.0, 2);
  const DenseMatrix b = DenseMatrix::random(4, 3, 3);
  const DenseMatrix c = spdemm_row_wise(a, b);
  for (const Value v : c.data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Spdemm, DenseTimesDenseMatchesSparsePath) {
  const CsrMatrix a = random_sparse(12, 9, 1.0, 4);
  const DenseMatrix b = DenseMatrix::random(9, 7, 5);
  // Convert the fully dense sparse matrix to DenseMatrix.
  DenseMatrix ad = DenseMatrix::zeros(12, 9);
  for (NodeId r = 0; r < 12; ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      ad.at(r, cols[k]) = vals[k];
    }
  }
  const DenseMatrix via_sparse = spdemm_row_wise(a, b);
  const DenseMatrix via_dense = dense_times_dense(ad, b);
  EXPECT_TRUE(DenseMatrix::allclose(via_sparse, via_dense, 1e-5, 1e-6));
}

// Property: both dataflows produce the same product, across shapes
// and densities (the functional equivalence Fig 1 illustrates).
class DataflowEquivalence
    : public ::testing::TestWithParam<
          std::tuple<NodeId, NodeId, NodeId, double>> {};

TEST_P(DataflowEquivalence, RowWiseEqualsOuter) {
  const auto [m, k, n, density] = GetParam();
  const CsrMatrix a = random_sparse(m, k, density, m * 7 + k);
  const DenseMatrix b = DenseMatrix::random(k, n, n + 100);
  const DenseMatrix via_rwp = spdemm_row_wise(a, b);
  const DenseMatrix via_op = spdemm_outer(CscMatrix::from_csr(a), b);
  EXPECT_TRUE(DenseMatrix::allclose(via_rwp, via_op, 1e-4, 1e-5))
      << "max diff " << DenseMatrix::max_abs_diff(via_rwp, via_op);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndDensities, DataflowEquivalence,
    ::testing::Values(std::make_tuple(1, 1, 1, 1.0),
                      std::make_tuple(16, 16, 16, 0.1),
                      std::make_tuple(50, 30, 16, 0.05),
                      std::make_tuple(30, 50, 8, 0.3),
                      std::make_tuple(100, 100, 16, 0.02),
                      std::make_tuple(64, 200, 4, 0.5),
                      std::make_tuple(200, 64, 16, 0.9)));

}  // namespace
}  // namespace hymm
