// Serving-pipeline invariants: a fixed seed produces bit-identical
// per-request cycle/latency sequences at any worker thread count and
// with fast-forward disabled, the bounded queue drops (never blocks)
// under overload, batching/reuse savings respect the DRAM-traffic
// conservation ledger, and the hymm-serve-report/1 JSON is valid.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "core/engine.hpp"
#include "core/gcn_model.hpp"
#include "linalg/gcn.hpp"
#include "obs/json.hpp"
#include "serve/report.hpp"
#include "serve/server.hpp"

namespace hymm {
namespace {

GcnWorkload tiny_workload() {
  const DatasetSpec spec = *find_dataset("CR");
  return build_workload(spec, /*scale=*/0.05, /*seed=*/42);
}

std::vector<DenseMatrix> tiny_weights(const GcnWorkload& workload,
                                      const CsrMatrix& a_hat) {
  return GcnModel::with_random_weights(a_hat, workload.spec.feature_length,
                                       {16, 8}, 42)
      .weights();
}

ServeConfig tiny_config() {
  ServeConfig config;
  config.requests = 48;
  config.arrival_rate = 50'000.0;  // busy but not saturated
  config.queue_capacity = 64;
  config.max_batch = 4;
  config.seed = 42;
  return config;
}

// The per-request schedule two runs produced must be bit-identical.
void expect_identical_records(const ServeResult& a, const ServeResult& b) {
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const RequestRecord& ra = a.requests[i];
    const RequestRecord& rb = b.requests[i];
    EXPECT_EQ(ra.class_index, rb.class_index) << "request " << i;
    EXPECT_EQ(ra.dropped, rb.dropped) << "request " << i;
    EXPECT_EQ(ra.arrival, rb.arrival) << "request " << i;
    EXPECT_EQ(ra.start, rb.start) << "request " << i;
    EXPECT_EQ(ra.completion, rb.completion) << "request " << i;
    EXPECT_EQ(ra.service_cycles, rb.service_cycles) << "request " << i;
    EXPECT_EQ(ra.latency_cycles, rb.latency_cycles) << "request " << i;
    EXPECT_EQ(ra.batch_id, rb.batch_id) << "request " << i;
    EXPECT_EQ(ra.batch_position, rb.batch_position) << "request " << i;
  }
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.charged_bytes, b.charged_bytes);
  EXPECT_EQ(a.saved_cycles, b.saved_cycles);
}

class ServeFixture : public ::testing::Test {
 protected:
  ServeFixture()
      : workload_(tiny_workload()),
        classes_(build_request_classes(workload_, 42)),
        weights_(tiny_weights(workload_, classes_.front().a_hat)) {}

  GcnWorkload workload_;
  std::vector<RequestClass> classes_;
  std::vector<DenseMatrix> weights_;
};

TEST_F(ServeFixture, DeterministicAcrossThreadCounts) {
  ServeConfig config = tiny_config();
  config.threads = 1;
  const ServeResult serial = run_serve(classes_, weights_, config);
  config.threads = 4;
  const ServeResult parallel = run_serve(classes_, weights_, config);
  expect_identical_records(serial, parallel);
}

TEST_F(ServeFixture, DeterministicUnderFastForwardOff) {
  const ServeConfig config = tiny_config();
  const ServeResult fast = run_serve(classes_, weights_, config);
  const FastForwardMode prior = fast_forward_mode();
  set_fast_forward_mode(FastForwardMode::kOff);
  const ServeResult slow = run_serve(classes_, weights_, config);
  set_fast_forward_mode(prior);
  expect_identical_records(fast, slow);
}

TEST_F(ServeFixture, BoundedQueueDropsUnderOverload) {
  ServeConfig config = tiny_config();
  config.queue_capacity = 1;
  config.arrival_rate = 10'000'000.0;  // far beyond service capacity
  const ServeResult result = run_serve(classes_, weights_, config);
  EXPECT_GT(result.dropped, 0u);
  EXPECT_GT(result.served, 0u);
  EXPECT_EQ(result.served + result.dropped, config.requests);
  for (const RequestRecord& r : result.requests) {
    if (r.dropped) continue;
    EXPECT_GE(r.start, r.arrival);
    EXPECT_EQ(r.latency_cycles, r.wait_cycles + r.service_cycles);
  }
}

// Batching equivalence: the per-class simulations behind the serving
// run are real verified inferences — every class's output matched
// GcnModel::reference within the model's standard tolerance.
TEST_F(ServeFixture, EveryClassCostIsVerifiedAgainstReference) {
  const ServeResult result =
      run_serve(classes_, weights_, tiny_config());
  ASSERT_EQ(result.class_costs.size(), classes_.size());
  for (const ClassCost& cost : result.class_costs) {
    EXPECT_TRUE(cost.verified)
        << cost.name << " max err " << cost.max_abs_err;
    EXPECT_GT(cost.standalone_cycles, 0u);
    EXPECT_GT(cost.standalone_dram_bytes, 0u);
  }
}

TEST_F(ServeFixture, NoReuseNoBatchingMeansStandaloneService) {
  ServeConfig config = tiny_config();
  config.buffer_reuse = false;
  config.max_batch = 1;
  const ServeResult result = run_serve(classes_, weights_, config);
  EXPECT_EQ(result.saved_cycles, 0u);
  EXPECT_EQ(result.reuse_saved_bytes, 0u);
  EXPECT_EQ(result.batch_saved_bytes, 0u);
  EXPECT_EQ(result.charged_bytes, result.standalone_bytes);
  for (const RequestRecord& r : result.requests) {
    if (r.dropped) continue;
    EXPECT_EQ(r.service_cycles,
              result.class_costs[r.class_index].standalone_cycles);
  }
}

TEST_F(ServeFixture, ConservationLedgerBalances) {
  ServeConfig config = tiny_config();
  config.arrival_rate = 1'000'000.0;  // force queues, hence batches
  const ServeResult result = run_serve(classes_, weights_, config);
  EXPECT_EQ(result.charged_bytes + result.reuse_saved_bytes +
                result.batch_saved_bytes,
            result.standalone_bytes);
  EXPECT_LE(result.saved_cycles, result.standalone_cycles);
  // With overload the FIFO must form at least one multi-request batch.
  EXPECT_LT(result.batches, result.served);
  for (const RequestRecord& r : result.requests) {
    if (r.dropped || r.batch_position == 0) continue;
    EXPECT_GT(r.savings.batch_saved_bytes, 0u)
        << "follower " << r.id << " shared no weight fetch";
  }
}

TEST_F(ServeFixture, ServeReportJsonIsValid) {
  const ServeConfig config = tiny_config();
  const ServeResult result = run_serve(classes_, weights_, config);
  const ServeReportMeta meta{workload_.spec, workload_.scale, config.seed};
  std::ostringstream json;
  write_serve_json(result, config, meta, json);
  EXPECT_TRUE(json_is_valid(json.str())) << json.str().substr(0, 400);
  std::ostringstream csv;
  write_serve_csv(result, csv);
  // Header plus one row per generated request.
  std::size_t lines = 0;
  for (const char c : csv.str()) lines += c == '\n';
  EXPECT_EQ(lines, 1 + result.requests.size());
  std::ostringstream summary;
  print_serve_summary(result, config, meta, summary);
  EXPECT_NE(summary.str().find("throughput"), std::string::npos);
}

TEST(ServeRequest, SampledSubgraphIsDeterministicAndWellFormed) {
  const GcnWorkload workload = tiny_workload();
  const SampledSubgraph a =
      sample_subgraph(workload.adjacency, workload.features, 40, 7);
  const SampledSubgraph b =
      sample_subgraph(workload.adjacency, workload.features, 40, 7);
  EXPECT_EQ(a.adjacency.rows(), 40u);
  EXPECT_EQ(a.features.rows(), 40u);
  EXPECT_EQ(a.adjacency.nnz(), b.adjacency.nnz());
  EXPECT_EQ(a.features.nnz(), b.features.nnz());
  const SampledSubgraph other =
      sample_subgraph(workload.adjacency, workload.features, 40, 8);
  // A different seed samples a different neighbourhood (node count is
  // fixed; edge structure almost surely differs on a power-law graph).
  EXPECT_NE(a.adjacency.nnz(), other.adjacency.nnz());
}

TEST(ServeConfigChecks, RejectsDegenerateConfigs) {
  const GcnWorkload workload = tiny_workload();
  const std::vector<RequestClass> classes =
      build_request_classes(workload, 42);
  const std::vector<DenseMatrix> weights =
      tiny_weights(workload, classes.front().a_hat);
  ServeConfig config = tiny_config();
  config.requests = 0;
  EXPECT_THROW(run_serve(classes, weights, config), CheckError);
  config = tiny_config();
  config.arrival_rate = 0.0;
  EXPECT_THROW(run_serve(classes, weights, config), CheckError);
  config = tiny_config();
  config.max_batch = 0;
  EXPECT_THROW(run_serve(classes, weights, config), CheckError);
  config = tiny_config();
  config.queue_capacity = 0;
  EXPECT_THROW(run_serve(classes, weights, config), CheckError);
}

}  // namespace
}  // namespace hymm
