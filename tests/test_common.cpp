// Unit tests for src/common: RNG determinism and distributions,
// configuration validation, check macros and the table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/flat_map.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace hymm {
namespace {

TEST(Check, ThrowsWithExpressionAndMessage) {
  try {
    HYMM_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

TEST(Check, PassingExpressionDoesNotThrow) {
  EXPECT_NO_THROW(HYMM_CHECK(2 + 2 == 4));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), CheckError);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianHasZeroMeanUnitVariance) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
}

TEST(Config, DefaultsMatchTableIII) {
  const AcceleratorConfig config;
  EXPECT_EQ(config.pe_count, 16u);
  EXPECT_EQ(config.dmb_bytes, 256u * 1024u);
  EXPECT_EQ(config.smq_pointer_bytes, 4u * 1024u);
  EXPECT_EQ(config.smq_index_bytes, 12u * 1024u);
  EXPECT_EQ(config.lsq_entries, 128u);
  EXPECT_EQ(config.lsq_entry_bytes, 68u);
  EXPECT_EQ(config.dram_bytes_per_cycle, 64u);  // 64 GB/s at 1 GHz
  EXPECT_DOUBLE_EQ(config.tiling_threshold, 0.20);
  EXPECT_DOUBLE_EQ(config.gflops(), 32.0);  // Section V
  EXPECT_EQ(config.dmb_lines(), 4096u);
  EXPECT_NO_THROW(config.validate());
}

TEST(Config, ValidateRejectsBadParameters) {
  AcceleratorConfig c;
  c.pe_count = 0;
  EXPECT_THROW(c.validate(), CheckError);
  c = AcceleratorConfig{};
  c.dmb_bytes = 8;
  EXPECT_THROW(c.validate(), CheckError);
  c = AcceleratorConfig{};
  c.tiling_threshold = 1.5;
  EXPECT_THROW(c.validate(), CheckError);
  c = AcceleratorConfig{};
  c.dmb_pin_fraction = 0.0;
  EXPECT_THROW(c.validate(), CheckError);
}

TEST(Config, DataflowNames) {
  EXPECT_EQ(to_string(Dataflow::kRowWiseProduct), "RWP");
  EXPECT_EQ(to_string(Dataflow::kOuterProduct), "OP");
  EXPECT_EQ(to_string(Dataflow::kHybrid), "HyMM");
  EXPECT_EQ(to_string(EvictionPolicy::kLru), "LRU");
  EXPECT_EQ(to_string(EvictionPolicy::kFifo), "FIFO");
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_percent(0.917, 1), "91.7%");
  EXPECT_EQ(Table::fmt_bytes(512), "512B");
  EXPECT_EQ(Table::fmt_bytes(256.0 * 1024), "256.00KB");
}

TEST(Types, LineGeometry) {
  EXPECT_EQ(kLineBytes, 64u);
  EXPECT_EQ(kLaneCount, 16u);
  EXPECT_EQ(kLineBytes, kLaneCount * sizeof(Value));
}

TEST(FlatMap, InsertFindEraseRoundTrip) {
  FlatMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(42), nullptr);
  map.emplace(42, 7);
  map.emplace(0, 1);  // key 0 is a valid key, not a sentinel
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 7);
  EXPECT_EQ(*map.find(0), 1);
  EXPECT_EQ(map.size(), 2u);
  map.emplace(42, 8);  // overwrite, not duplicate
  EXPECT_EQ(*map.find(42), 8);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_TRUE(map.erase(42));
  EXPECT_FALSE(map.erase(42));
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_EQ(*map.find(0), 1);
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<std::uint32_t> counts;
  ++counts[5];
  ++counts[5];
  ++counts[9];
  EXPECT_EQ(counts[5], 2u);
  EXPECT_EQ(counts[9], 1u);
  EXPECT_EQ(counts.size(), 2u);
}

// Mirror model check across growth and backward-shift deletion: the
// map must agree with std::map on a deterministic churn workload
// (including 64-byte-aligned "line address" keys that stress the
// low-bit-zero hashing case).
TEST(FlatMap, MatchesReferenceModelUnderChurn) {
  FlatMap<std::uint64_t> map;
  std::map<std::uint64_t, std::uint64_t> model;
  Rng rng(123);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = (rng.next_below(512)) * 64;
    const auto op = rng.next_below(3);
    if (op == 0) {
      map.emplace(key, step);
      model[key] = static_cast<std::uint64_t>(step);
    } else if (op == 1) {
      EXPECT_EQ(map.erase(key), model.erase(key) > 0);
    } else {
      const std::uint64_t* found = map.find(key);
      const auto it = model.find(key);
      ASSERT_EQ(found != nullptr, it != model.end());
      if (found != nullptr) EXPECT_EQ(*found, it->second);
    }
    ASSERT_EQ(map.size(), model.size());
  }
  // Full-content sweep via for_each.
  std::size_t visited = 0;
  map.for_each([&](std::uint64_t key, std::uint64_t& value) {
    ++visited;
    const auto it = model.find(key);
    ASSERT_NE(it, model.end());
    EXPECT_EQ(value, it->second);
  });
  EXPECT_EQ(visited, model.size());
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(64), nullptr);
}

}  // namespace
}  // namespace hymm
