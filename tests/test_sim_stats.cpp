// SimStats unit tests: divide-by-zero guards on the derived metrics,
// the decimating partial-output timeline, phase merging semantics and
// the scale/delta helpers used by the hybrid's per-region attribution.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hpp"

namespace hymm {
namespace {

// Regression: an empty run (zero cycles) must report 0.0 utilization,
// never NaN — the CSV/JSON reports feed these straight to plots.
TEST(SimStatsGuards, EmptyRunUtilizationIsZeroNotNan) {
  const SimStats s;
  ASSERT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.alu_utilization(), 0.0);
  EXPECT_FALSE(std::isnan(s.alu_utilization()));
  EXPECT_EQ(s.dram_bandwidth_utilization(64), 0.0);
  EXPECT_FALSE(std::isnan(s.dram_bandwidth_utilization(64)));
  EXPECT_EQ(s.dmb_hit_rate(), 0.0);
  EXPECT_FALSE(std::isnan(s.dmb_hit_rate()));
}

TEST(SimStatsGuards, ZeroBandwidthChannelIsZeroNotInf) {
  SimStats s;
  s.cycles = 100;
  s.dram_read_bytes[0] = 6400;
  EXPECT_EQ(s.dram_bandwidth_utilization(0), 0.0);
}

TEST(SimStatsGuards, NonEmptyRunComputesRatios) {
  SimStats s;
  s.cycles = 200;
  s.alu_busy_cycles = 50;
  s.dram_read_bytes[1] = 6400;
  s.dram_write_bytes[2] = 6400;
  EXPECT_DOUBLE_EQ(s.alu_utilization(), 0.25);
  EXPECT_DOUBLE_EQ(s.dram_bandwidth_utilization(64), 1.0);
}

TEST(SimStatsTimeline, SamplesAtIntervalBoundaries) {
  SimStats s;
  s.timeline_interval = 256;
  s.partial_bytes_now = 7;
  s.maybe_sample_timeline(0);
  s.maybe_sample_timeline(100);  // before next boundary: skipped
  s.maybe_sample_timeline(256);
  ASSERT_EQ(s.partial_timeline.size(), 2u);
  EXPECT_EQ(s.partial_timeline[0].first, 0u);
  EXPECT_EQ(s.partial_timeline[1].first, 256u);
  EXPECT_EQ(s.partial_timeline[1].second, 7u);
}

// Filling the buffer to kTimelineCapacity must thin it to every other
// sample and double the interval, keeping memory bounded forever.
TEST(SimStatsTimeline, ThinsAndDoublesIntervalAtCapacity) {
  SimStats s;
  const Cycle initial_interval = s.timeline_interval;
  for (std::size_t i = 0; i < SimStats::kTimelineCapacity; ++i) {
    s.partial_bytes_now = i;
    s.maybe_sample_timeline(static_cast<Cycle>(i) * initial_interval);
  }
  // The capacity-th sample triggered the decimation.
  EXPECT_EQ(s.partial_timeline.size(), SimStats::kTimelineCapacity / 2);
  EXPECT_EQ(s.timeline_interval, initial_interval * 2);
  // Survivors are the even-indexed originals, still sorted by cycle.
  for (std::size_t i = 0; i < s.partial_timeline.size(); ++i) {
    EXPECT_EQ(s.partial_timeline[i].first,
              static_cast<Cycle>(2 * i) * initial_interval);
    EXPECT_EQ(s.partial_timeline[i].second, 2 * i);
  }
}

TEST(SimStatsTimeline, RepeatedDecimationKeepsBufferBounded) {
  SimStats s;
  const Cycle step = s.timeline_interval;
  for (std::size_t i = 0; i < 20 * SimStats::kTimelineCapacity; ++i) {
    s.maybe_sample_timeline(static_cast<Cycle>(i) * step);
  }
  EXPECT_LT(s.partial_timeline.size(), SimStats::kTimelineCapacity);
  EXPECT_GT(s.timeline_interval, step);
}

TEST(SimStatsTimeline, FractionAbove) {
  SimStats s;
  EXPECT_EQ(s.timeline_fraction_above(0), 0.0);  // empty: no samples
  s.partial_timeline = {{0, 10}, {256, 20}, {512, 30}, {768, 40}};
  EXPECT_DOUBLE_EQ(s.timeline_fraction_above(25), 0.5);
  EXPECT_DOUBLE_EQ(s.timeline_fraction_above(40), 0.0);  // strict >
  EXPECT_DOUBLE_EQ(s.timeline_fraction_above(0), 1.0);
}

// merge_phase adds counters but takes the MAX of the partial-output
// peaks: phases run back to back on the same buffer, so their peaks
// never coexist and summing would overstate the footprint (Fig 10).
TEST(SimStatsMerge, PartialPeakTakesMaxNotSum) {
  SimStats total;
  total.cycles = 100;
  total.partial_bytes_peak = 4096;
  total.partial_bytes_now = 128;
  SimStats phase;
  phase.cycles = 50;
  phase.partial_bytes_peak = 1024;
  phase.partial_bytes_now = 64;
  total.merge_phase(phase);
  EXPECT_EQ(total.cycles, 150u);
  EXPECT_EQ(total.partial_bytes_peak, 4096u);  // max, not 5120
  EXPECT_EQ(total.partial_bytes_now, 64u);     // latest state wins
  SimStats bigger;
  bigger.partial_bytes_peak = 9000;
  total.merge_phase(bigger);
  EXPECT_EQ(total.partial_bytes_peak, 9000u);
}

TEST(SimStatsMerge, AdditiveCountersSum) {
  SimStats a, b;
  a.mac_ops = 3;
  a.dram_read_bytes[0] = 64;
  b.mac_ops = 4;
  b.dram_read_bytes[0] = 128;
  b.dram_write_bytes[5] = 256;
  a.merge_phase(b);
  EXPECT_EQ(a.mac_ops, 7u);
  EXPECT_EQ(a.dram_read_bytes[0], 192u);
  EXPECT_EQ(a.dram_write_bytes[5], 256u);
}

// scale_stats + stats_delta are the hybrid's region-2/3 attribution
// primitives: the scaled part and its remainder must sum back exactly
// to the original, whatever the rounding did.
TEST(SimStatsScale, ScalePlusRemainderIsExact) {
  SimStats s;
  s.cycles = 1001;
  s.mac_ops = 777;
  s.alu_busy_cycles = 333;
  s.dmb_read_hits = 13;
  s.lsq_loads = 99;
  s.dram_read_bytes[1] = 640;
  s.dram_write_bytes[4] = 64;
  const SimStats part = scale_stats(s, 0.37);
  const SimStats rest = stats_delta(s, part);
  EXPECT_EQ(part.cycles + rest.cycles, s.cycles);
  EXPECT_EQ(part.mac_ops + rest.mac_ops, s.mac_ops);
  EXPECT_EQ(part.alu_busy_cycles + rest.alu_busy_cycles, s.alu_busy_cycles);
  EXPECT_EQ(part.dmb_read_hits + rest.dmb_read_hits, s.dmb_read_hits);
  EXPECT_EQ(part.lsq_loads + rest.lsq_loads, s.lsq_loads);
  EXPECT_EQ(part.dram_read_bytes[1] + rest.dram_read_bytes[1],
            s.dram_read_bytes[1]);
  EXPECT_EQ(part.dram_write_bytes[4] + rest.dram_write_bytes[4],
            s.dram_write_bytes[4]);
}

TEST(SimStatsScale, EndpointsAreIdentityAndZero) {
  SimStats s;
  s.cycles = 500;
  s.mac_ops = 123;
  const SimStats zero = scale_stats(s, 0.0);
  EXPECT_EQ(zero.cycles, 0u);
  EXPECT_EQ(zero.mac_ops, 0u);
  const SimStats all = scale_stats(s, 1.0);
  EXPECT_EQ(all.cycles, 500u);
  EXPECT_EQ(all.mac_ops, 123u);
}

}  // namespace
}  // namespace hymm
