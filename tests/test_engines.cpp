// Functional + timing sanity tests for the cycle-level dataflow
// engines: every engine must compute exactly what the reference
// kernels compute, across random workloads, while its counters stay
// self-consistent.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "core/engine.hpp"
#include "core/hybrid_engine.hpp"
#include "core/op_engine.hpp"
#include "core/rwp_engine.hpp"
#include "graph/degree_sort.hpp"
#include "graph/generator.hpp"
#include "linalg/spdemm.hpp"

namespace hymm {
namespace {

struct Workbench {
  explicit Workbench(const AcceleratorConfig& cfg = AcceleratorConfig{})
      : ms(cfg) {}

  // Allocates the B (dense input) and C (output) regions for a given
  // sparse x dense product.
  void allocate(NodeId b_rows, NodeId c_rows) {
    b_region = ms.address_map().allocate("B", b_rows * kLineBytes,
                                         TrafficClass::kCombined);
    c_region = ms.address_map().allocate("C", c_rows * kLineBytes,
                                         TrafficClass::kOutput);
    spill_region = ms.address_map().allocate("spill", 1 << 24,
                                             TrafficClass::kPartial);
  }

  MemorySystem ms;
  AddressRegion b_region, c_region, spill_region;
};

CsrMatrix random_sparse(NodeId rows, NodeId cols, double density,
                        std::uint64_t seed) {
  FeatureSpec spec;
  spec.nodes = rows;
  spec.feature_length = cols;
  spec.density = density;
  spec.seed = seed;
  return generate_features(spec);
}

TEST(RwpEngine, ComputesReferenceProduct) {
  const CsrMatrix a = random_sparse(40, 32, 0.15, 1);
  const DenseMatrix b = DenseMatrix::random(32, 16, 2);
  DenseMatrix c = DenseMatrix::zeros(40, 16);

  Workbench wb;
  wb.allocate(32, 40);
  RwpEngineParams params;
  params.sparse = &a;
  params.b = &b;
  params.b_region = wb.b_region;
  params.c = &c;
  params.c_region = wb.c_region;
  RwpEngine engine(wb.ms, params);
  const Cycle cycles = run_phase(wb.ms, engine);

  EXPECT_TRUE(DenseMatrix::allclose(c, spdemm_row_wise(a, b)));
  EXPECT_GE(cycles, a.nnz());  // one MAC per cycle at best
  EXPECT_EQ(wb.ms.stats().mac_ops, a.nnz());
}

TEST(RwpEngine, WritesOneOutputLinePerNonEmptyRow) {
  const CsrMatrix a = random_sparse(30, 30, 0.1, 3);
  const DenseMatrix b = DenseMatrix::random(30, 16, 4);
  DenseMatrix c = DenseMatrix::zeros(30, 16);
  NodeId nonempty = 0;
  for (NodeId r = 0; r < a.rows(); ++r) {
    if (a.row_nnz(r) > 0) ++nonempty;
  }

  Workbench wb;
  wb.allocate(30, 30);
  RwpEngineParams params;
  params.sparse = &a;
  params.b = &b;
  params.b_region = wb.b_region;
  params.c = &c;
  params.c_region = wb.c_region;
  params.c_store_kind = StoreKind::kThrough;
  RwpEngine engine(wb.ms, params);
  run_phase(wb.ms, engine);

  EXPECT_EQ(wb.ms.stats().dram_write_bytes[static_cast<std::size_t>(
                TrafficClass::kOutput)],
            static_cast<std::uint64_t>(nonempty) * kLineBytes);
}

TEST(RwpEngine, SmallBufferStillCorrectJustSlower) {
  const CsrMatrix a = random_sparse(60, 60, 0.2, 5);
  const DenseMatrix b = DenseMatrix::random(60, 16, 6);

  AcceleratorConfig big;
  AcceleratorConfig small = big;
  small.dmb_bytes = 4 * kLineBytes;

  Cycle cycles_big = 0, cycles_small = 0;
  for (auto* cfg : {&big, &small}) {
    DenseMatrix c = DenseMatrix::zeros(60, 16);
    Workbench wb(*cfg);
    wb.allocate(60, 60);
    RwpEngineParams params;
    params.sparse = &a;
    params.b = &b;
    params.b_region = wb.b_region;
    params.c = &c;
    params.c_region = wb.c_region;
    RwpEngine engine(wb.ms, params);
    const Cycle cycles = run_phase(wb.ms, engine);
    EXPECT_TRUE(DenseMatrix::allclose(c, spdemm_row_wise(a, b)));
    (cfg == &big ? cycles_big : cycles_small) = cycles;
  }
  EXPECT_GT(cycles_small, cycles_big);
}

TEST(RwpEngine, WideDenseRowsSpanMultipleLines) {
  // 40-float rows = 3 lines per row: each non-zero costs three MACs
  // and three line loads.
  const CsrMatrix a = random_sparse(20, 20, 0.25, 7);
  const DenseMatrix b = DenseMatrix::random(20, 40, 8);
  DenseMatrix c = DenseMatrix::zeros(20, 40);
  Workbench wb;
  wb.allocate(20 * 3, 20 * 3);
  RwpEngineParams params;
  params.sparse = &a;
  params.b = &b;
  params.b_region = wb.b_region;
  params.c = &c;
  params.c_region = wb.c_region;
  RwpEngine engine(wb.ms, params);
  const Cycle cycles = run_phase(wb.ms, engine);
  EXPECT_TRUE(DenseMatrix::allclose(c, spdemm_row_wise(a, b)));
  EXPECT_GE(cycles, a.nnz() * 3);  // three chunk ops per non-zero
}

// (OpEngine wide-row coverage lives below, after op_params().)

OpEngineParams op_params(Workbench& wb, const CscMatrix& a,
                         const DenseMatrix& b, DenseMatrix& c) {
  OpEngineParams params;
  params.sparse = &a;
  params.b = &b;
  params.b_region = wb.b_region;
  params.c = &c;
  params.c_region = wb.c_region;
  params.spill_region = wb.spill_region;
  return params;
}

TEST(OpEngine, ComputesReferenceProductWithAccumulator) {
  const CsrMatrix a_csr = random_sparse(40, 32, 0.15, 11);
  const CscMatrix a = CscMatrix::from_csr(a_csr);
  const DenseMatrix b = DenseMatrix::random(32, 16, 12);
  DenseMatrix c = DenseMatrix::zeros(40, 16);

  Workbench wb;
  wb.allocate(32, 40);
  OpEngineParams params = op_params(wb, a, b, c);
  OpEngine engine(wb.ms, params);
  run_phase(wb.ms, engine);

  EXPECT_TRUE(DenseMatrix::allclose(c, spdemm_outer(a, b)));
  EXPECT_EQ(wb.ms.stats().mac_ops, a.nnz());
  // Every touched row flushed exactly once as output.
  EXPECT_EQ(wb.ms.stats().dram_write_bytes[static_cast<std::size_t>(
                TrafficClass::kOutput)],
            static_cast<std::uint64_t>(engine.rows_touched()) * kLineBytes);
}

TEST(OpEngine, AppendModeCountsRecordsAndMergesAll) {
  const CsrMatrix a_csr = random_sparse(50, 40, 0.1, 13);
  const CscMatrix a = CscMatrix::from_csr(a_csr);
  const DenseMatrix b = DenseMatrix::random(40, 16, 14);
  DenseMatrix c = DenseMatrix::zeros(50, 16);

  Workbench wb;
  wb.allocate(40, 50);
  OpEngineParams params = op_params(wb, a, b, c);
  params.accumulate_in_buffer = false;
  OpEngine engine(wb.ms, params);
  run_phase(wb.ms, engine);

  EXPECT_TRUE(DenseMatrix::allclose(c, spdemm_outer(a, b)));
  // One 68-byte record per non-zero, all merged back.
  EXPECT_EQ(engine.spill_records_merged(), a.nnz());
  EXPECT_EQ(wb.ms.stats().partial_bytes_now, 0u);
  EXPECT_EQ(wb.ms.stats().partial_bytes_peak,
            static_cast<std::uint64_t>(a.nnz()) * 68u);
}

TEST(OpEngine, AccumulatorShrinksPartialFootprint) {
  const CsrMatrix a_csr = random_sparse(64, 64, 0.3, 15);
  const CscMatrix a = CscMatrix::from_csr(a_csr);
  const DenseMatrix b = DenseMatrix::random(64, 16, 16);

  std::uint64_t peak_with = 0, peak_without = 0;
  for (const bool with_acc : {true, false}) {
    DenseMatrix c = DenseMatrix::zeros(64, 16);
    Workbench wb;
    wb.allocate(64, 64);
    OpEngineParams params = op_params(wb, a, b, c);
    params.accumulate_in_buffer = with_acc;
    OpEngine engine(wb.ms, params);
    run_phase(wb.ms, engine);
    (with_acc ? peak_with : peak_without) =
        wb.ms.stats().partial_bytes_peak;
  }
  // Fig 10's mechanism: the accumulator bounds live partial state by
  // touched rows instead of by non-zero count.
  EXPECT_LT(peak_with, peak_without);
}

TEST(OpEngine, TinyBufferSpillsAndStaysCorrect) {
  AcceleratorConfig cfg;
  cfg.dmb_bytes = 8 * kLineBytes;  // far fewer lines than output rows
  const CsrMatrix a_csr = random_sparse(100, 80, 0.08, 17);
  const CscMatrix a = CscMatrix::from_csr(a_csr);
  const DenseMatrix b = DenseMatrix::random(80, 16, 18);
  DenseMatrix c = DenseMatrix::zeros(100, 16);

  Workbench wb(cfg);
  wb.allocate(80, 100);
  OpEngineParams params = op_params(wb, a, b, c);
  OpEngine engine(wb.ms, params);
  run_phase(wb.ms, engine);

  EXPECT_TRUE(DenseMatrix::allclose(c, spdemm_outer(a, b)));
  EXPECT_GT(wb.ms.stats().dmb_partial_spills, 0u);
  EXPECT_EQ(engine.spill_records_merged(),
            wb.ms.stats().dmb_partial_spills);
  EXPECT_EQ(wb.ms.stats().partial_bytes_now, 0u);
}

TEST(OpEngine, WideDenseRowsSpanMultipleLines) {
  const CsrMatrix a_csr = random_sparse(24, 18, 0.2, 21);
  const CscMatrix a = CscMatrix::from_csr(a_csr);
  const DenseMatrix b = DenseMatrix::random(18, 33, 22);  // 3 lines/row
  DenseMatrix c = DenseMatrix::zeros(24, 33);
  Workbench wb;
  wb.allocate(18 * 3, 24 * 3);
  OpEngineParams params = op_params(wb, a, b, c);
  OpEngine engine(wb.ms, params);
  run_phase(wb.ms, engine);
  EXPECT_TRUE(DenseMatrix::allclose(c, spdemm_outer(a, b)));

  // And append mode as well.
  DenseMatrix c2 = DenseMatrix::zeros(24, 33);
  Workbench wb2;
  wb2.allocate(18 * 3, 24 * 3);
  OpEngineParams params2 = op_params(wb2, a, b, c2);
  params2.accumulate_in_buffer = false;
  OpEngine engine2(wb2.ms, params2);
  run_phase(wb2.ms, engine2);
  EXPECT_TRUE(DenseMatrix::allclose(c2, spdemm_outer(a, b)));
  EXPECT_EQ(engine2.spill_records_merged(), a.nnz() * 3);
}

TEST(HybridAggregation, MatchesReferenceOnSortedGraph) {
  GraphSpec spec;
  spec.nodes = 200;
  spec.edges = 2400;
  spec.seed = 19;
  const CsrMatrix sorted = degree_sort(generate_power_law_graph(spec)).sorted;
  const AcceleratorConfig cfg;
  const RegionPartition partition = partition_regions(sorted, cfg);
  const TiledAdjacency tiled = TiledAdjacency::build(sorted, partition);
  const DenseMatrix b = DenseMatrix::random(200, 16, 20);
  DenseMatrix c = DenseMatrix::zeros(200, 16);

  Workbench wb(cfg);
  wb.allocate(200, 200);
  HybridAggregationParams params;
  params.tiled = &tiled;
  params.b = &b;
  params.b_region = wb.b_region;
  params.c = &c;
  params.c_region = wb.c_region;
  const HybridAggregationInfo info = run_hybrid_aggregation(wb.ms, params);

  EXPECT_TRUE(DenseMatrix::allclose(c, spdemm_row_wise(sorted, b)));
  EXPECT_EQ(info.pinned_rows, partition.region1_rows);
  EXPECT_GT(info.op_phase_cycles, 0u);
  EXPECT_GT(info.rwp_phase_cycles, 0u);
  // Pinned region-1 rows never spill.
  EXPECT_EQ(wb.ms.stats().dmb_partial_spills, 0u);
  EXPECT_EQ(wb.ms.stats().partial_bytes_now, 0u);
  // Region-1 partials all merged on-chip.
  EXPECT_GT(wb.ms.stats().dmb_accumulate_hits, 0u);
  // Per-phase deltas partition the totals.
  EXPECT_EQ(info.op_phase_stats.cycles, info.op_phase_cycles);
  EXPECT_EQ(info.rwp_phase_stats.cycles, info.rwp_phase_cycles);
  EXPECT_EQ(info.op_phase_stats.mac_ops + info.rwp_phase_stats.mac_ops,
            wb.ms.stats().mac_ops);
  EXPECT_EQ(info.op_phase_stats.mac_ops, partition.nnz_region1);
  EXPECT_EQ(info.rwp_phase_stats.mac_ops,
            partition.nnz_region2 + partition.nnz_region3);
}

// Property sweep: all three aggregation paths agree with the
// reference across graph shapes and buffer sizes.
struct EngineSweepParam {
  NodeId nodes;
  EdgeCount edges;
  std::size_t dmb_lines;
};

class EngineSweep : public ::testing::TestWithParam<EngineSweepParam> {};

TEST_P(EngineSweep, AllEnginesMatchReference) {
  const auto p = GetParam();
  GraphSpec spec;
  spec.nodes = p.nodes;
  spec.edges = p.edges;
  spec.seed = p.nodes + p.edges;
  const CsrMatrix a = generate_power_law_graph(spec);
  const DenseMatrix b = DenseMatrix::random(p.nodes, 16, 99);
  const DenseMatrix expected = spdemm_row_wise(a, b);

  AcceleratorConfig cfg;
  cfg.dmb_bytes = p.dmb_lines * kLineBytes;

  {  // RWP
    DenseMatrix c = DenseMatrix::zeros(p.nodes, 16);
    Workbench wb(cfg);
    wb.allocate(p.nodes, p.nodes);
    RwpEngineParams params;
    params.sparse = &a;
    params.b = &b;
    params.b_region = wb.b_region;
    params.c = &c;
    params.c_region = wb.c_region;
    RwpEngine engine(wb.ms, params);
    run_phase(wb.ms, engine);
    EXPECT_TRUE(DenseMatrix::allclose(c, expected)) << "RWP mismatch";
  }
  {  // OP
    const CscMatrix a_csc = CscMatrix::from_csr(a);
    DenseMatrix c = DenseMatrix::zeros(p.nodes, 16);
    Workbench wb(cfg);
    wb.allocate(p.nodes, p.nodes);
    OpEngineParams params = op_params(wb, a_csc, b, c);
    OpEngine engine(wb.ms, params);
    run_phase(wb.ms, engine);
    EXPECT_TRUE(DenseMatrix::allclose(c, expected)) << "OP mismatch";
  }
  {  // Hybrid (on the sorted graph; compare in sorted space)
    const DegreeSortResult sort = degree_sort(a);
    const RegionPartition partition = partition_regions(sort.sorted, cfg);
    const TiledAdjacency tiled = TiledAdjacency::build(sort.sorted, partition);
    // Permute B rows to sorted order.
    DenseMatrix b_sorted(p.nodes, 16);
    for (NodeId old_id = 0; old_id < p.nodes; ++old_id) {
      for (NodeId d = 0; d < 16; ++d) {
        b_sorted.at(sort.perm[old_id], d) = b.at(old_id, d);
      }
    }
    DenseMatrix c = DenseMatrix::zeros(p.nodes, 16);
    Workbench wb(cfg);
    wb.allocate(p.nodes, p.nodes);
    HybridAggregationParams params;
    params.tiled = &tiled;
    params.b = &b_sorted;
    params.b_region = wb.b_region;
    params.c = &c;
    params.c_region = wb.c_region;
    run_hybrid_aggregation(wb.ms, params);
    EXPECT_TRUE(
        DenseMatrix::allclose(c, spdemm_row_wise(sort.sorted, b_sorted)))
        << "Hybrid mismatch";
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndBuffers, EngineSweep,
    ::testing::Values(EngineSweepParam{16, 40, 4096},
                      EngineSweepParam{100, 800, 4096},
                      EngineSweepParam{100, 800, 16},
                      EngineSweepParam{300, 4000, 64},
                      EngineSweepParam{500, 3000, 4096},
                      EngineSweepParam{500, 12000, 128}));

}  // namespace
}  // namespace hymm
