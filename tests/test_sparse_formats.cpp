// Unit and property tests for the COO/CSR/CSC formats and their
// conversions.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace hymm {
namespace {

CooMatrix random_coo(NodeId rows, NodeId cols, EdgeCount entries,
                     std::uint64_t seed) {
  CooMatrix coo(rows, cols);
  Rng rng(seed);
  for (EdgeCount e = 0; e < entries; ++e) {
    coo.add(static_cast<NodeId>(rng.next_below(rows)),
            static_cast<NodeId>(rng.next_below(cols)),
            static_cast<Value>(rng.next_double(-1.0, 1.0)));
  }
  coo.sort_and_merge();
  return coo;
}

TEST(Coo, AddBoundsChecked) {
  CooMatrix coo(2, 3);
  EXPECT_NO_THROW(coo.add(1, 2, 1.0f));
  EXPECT_THROW(coo.add(2, 0, 1.0f), CheckError);
  EXPECT_THROW(coo.add(0, 3, 1.0f), CheckError);
}

TEST(Coo, SortAndMergeSumsDuplicates) {
  CooMatrix coo(3, 3);
  coo.add(1, 1, 2.0f);
  coo.add(0, 2, 1.0f);
  coo.add(1, 1, 3.0f);
  coo.sort_and_merge();
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_TRUE(coo.is_canonical());
  EXPECT_EQ(coo.entries()[0], (Triplet{0, 2, 1.0f}));
  EXPECT_EQ(coo.entries()[1], (Triplet{1, 1, 5.0f}));
}

TEST(Coo, IsCanonicalDetectsDisorder) {
  CooMatrix coo(3, 3);
  coo.add(1, 0, 1.0f);
  coo.add(0, 0, 1.0f);
  EXPECT_FALSE(coo.is_canonical());
  coo.sort_and_merge();
  EXPECT_TRUE(coo.is_canonical());
}

TEST(Csr, FromCooRoundTrip) {
  CooMatrix coo = random_coo(20, 30, 100, 1);
  const CsrMatrix csr = CsrMatrix::from_coo(coo);
  CooMatrix back = csr.to_coo();
  EXPECT_EQ(back.entries(), coo.entries());
  EXPECT_EQ(csr.rows(), 20u);
  EXPECT_EQ(csr.cols(), 30u);
}

TEST(Csr, FromPartsValidates) {
  // row_ptr must start at 0, end at nnz, be monotone; col indices in
  // range.
  EXPECT_THROW(
      CsrMatrix::from_parts(2, 2, {0, 1}, {0}, {1.0f}),  // short row_ptr
      CheckError);
  EXPECT_THROW(
      CsrMatrix::from_parts(2, 2, {0, 2, 1}, {0, 1}, {1.0f, 1.0f}),
      CheckError);
  EXPECT_THROW(
      CsrMatrix::from_parts(2, 2, {0, 1, 2}, {0, 5}, {1.0f, 1.0f}),
      CheckError);
  EXPECT_NO_THROW(
      CsrMatrix::from_parts(2, 2, {0, 1, 2}, {0, 1}, {1.0f, 1.0f}));
}

TEST(Csr, RowAccessors) {
  CooMatrix coo(3, 4);
  coo.add(0, 1, 1.0f);
  coo.add(0, 3, 2.0f);
  coo.add(2, 0, 3.0f);
  const CsrMatrix csr = CsrMatrix::from_coo(std::move(coo));
  EXPECT_EQ(csr.row_nnz(0), 2u);
  EXPECT_EQ(csr.row_nnz(1), 0u);
  EXPECT_EQ(csr.row_nnz(2), 1u);
  EXPECT_EQ(csr.row_cols(0)[1], 3u);
  EXPECT_FLOAT_EQ(csr.row_values(2)[0], 3.0f);
}

TEST(Csr, TransposeIsInvolution) {
  const CsrMatrix csr = CsrMatrix::from_coo(random_coo(17, 23, 80, 2));
  const CsrMatrix back = csr.transpose().transpose();
  EXPECT_EQ(csr, back);
}

TEST(Csr, TransposeSwapsCoordinates) {
  const CsrMatrix csr = CsrMatrix::from_coo(random_coo(10, 12, 40, 3));
  const CsrMatrix t = csr.transpose();
  EXPECT_EQ(t.rows(), csr.cols());
  EXPECT_EQ(t.cols(), csr.rows());
  for (NodeId r = 0; r < csr.rows(); ++r) {
    const auto cols = csr.row_cols(r);
    const auto vals = csr.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const auto tcols = t.row_cols(cols[k]);
      const auto tvals = t.row_values(cols[k]);
      bool found = false;
      for (std::size_t j = 0; j < tcols.size(); ++j) {
        if (tcols[j] == r && tvals[j] == vals[k]) found = true;
      }
      EXPECT_TRUE(found) << "entry (" << r << "," << cols[k] << ") lost";
    }
  }
}

TEST(Csr, ColumnNnzMatchesTranspose) {
  const CsrMatrix csr = CsrMatrix::from_coo(random_coo(15, 9, 60, 4));
  const auto counts = csr.column_nnz();
  const CsrMatrix t = csr.transpose();
  ASSERT_EQ(counts.size(), csr.cols());
  for (NodeId c = 0; c < csr.cols(); ++c) {
    EXPECT_EQ(counts[c], t.row_nnz(c));
  }
}

TEST(Csr, SubmatrixExtractsAndRebases) {
  CooMatrix coo(4, 4);
  coo.add(0, 0, 1.0f);
  coo.add(1, 2, 2.0f);
  coo.add(2, 1, 3.0f);
  coo.add(3, 3, 4.0f);
  const CsrMatrix csr = CsrMatrix::from_coo(std::move(coo));
  const CsrMatrix sub = csr.submatrix(1, 3, 1, 4);
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_EQ(sub.cols(), 3u);
  ASSERT_EQ(sub.nnz(), 2u);
  // (1,2)->(0,1) and (2,1)->(1,0)
  EXPECT_EQ(sub.row_cols(0)[0], 1u);
  EXPECT_FLOAT_EQ(sub.row_values(0)[0], 2.0f);
  EXPECT_EQ(sub.row_cols(1)[0], 0u);
  EXPECT_FLOAT_EQ(sub.row_values(1)[0], 3.0f);
}

TEST(Csr, SubmatrixBoundsChecked) {
  const CsrMatrix csr = CsrMatrix::from_coo(random_coo(4, 4, 6, 5));
  EXPECT_THROW(csr.submatrix(3, 2, 0, 4), CheckError);
  EXPECT_THROW(csr.submatrix(0, 5, 0, 4), CheckError);
}

TEST(Csr, SubmatrixPartitionPreservesAllEntries) {
  const CsrMatrix csr = CsrMatrix::from_coo(random_coo(30, 30, 200, 6));
  const NodeId split = 12;
  const CsrMatrix top = csr.submatrix(0, split, 0, 30);
  const CsrMatrix bottom = csr.submatrix(split, 30, 0, 30);
  EXPECT_EQ(top.nnz() + bottom.nnz(), csr.nnz());
}

TEST(Csr, PermuteSymmetricPreservesValuesUnderRelabeling) {
  CooMatrix coo(3, 3);
  coo.add(0, 1, 1.0f);
  coo.add(1, 2, 2.0f);
  const CsrMatrix csr = CsrMatrix::from_coo(std::move(coo));
  // perm: 0->2, 1->0, 2->1
  const std::vector<NodeId> perm = {2, 0, 1};
  const CsrMatrix p = csr.permute_symmetric(perm);
  ASSERT_EQ(p.nnz(), 2u);
  // (0,1)->(2,0); (1,2)->(0,1)
  EXPECT_EQ(p.row_cols(2)[0], 0u);
  EXPECT_FLOAT_EQ(p.row_values(2)[0], 1.0f);
  EXPECT_EQ(p.row_cols(0)[0], 1u);
  EXPECT_FLOAT_EQ(p.row_values(0)[0], 2.0f);
}

TEST(Csr, PermuteSymmetricRequiresSquare) {
  const CsrMatrix csr = CsrMatrix::from_coo(random_coo(3, 4, 5, 7));
  const std::vector<NodeId> perm = {0, 1, 2};
  EXPECT_THROW(csr.permute_symmetric(perm), CheckError);
}

TEST(Csr, StorageBytesFormula) {
  const CsrMatrix csr = CsrMatrix::from_coo(random_coo(10, 10, 30, 8));
  const std::size_t expected = (10 + 1) * 4 + csr.nnz() * 4 +
                               csr.nnz() * sizeof(Value);
  EXPECT_EQ(csr.storage_bytes(), expected);
}

TEST(Csc, FromCsrExposesColumnView) {
  CooMatrix coo(3, 3);
  coo.add(0, 1, 1.0f);
  coo.add(2, 1, 2.0f);
  coo.add(1, 0, 3.0f);
  const CsrMatrix csr = CsrMatrix::from_coo(std::move(coo));
  const CscMatrix csc = CscMatrix::from_csr(csr);
  EXPECT_EQ(csc.rows(), 3u);
  EXPECT_EQ(csc.cols(), 3u);
  EXPECT_EQ(csc.nnz(), 3u);
  EXPECT_EQ(csc.col_nnz(1), 2u);
  EXPECT_EQ(csc.col_rows(1)[0], 0u);
  EXPECT_EQ(csc.col_rows(1)[1], 2u);
  EXPECT_FLOAT_EQ(csc.col_values(1)[1], 2.0f);
}

TEST(Csc, RoundTripThroughCsr) {
  const CsrMatrix csr = CsrMatrix::from_coo(random_coo(25, 19, 120, 9));
  const CscMatrix csc = CscMatrix::from_csr(csr);
  EXPECT_EQ(csc.to_csr(), csr);
}

// Property sweep: round trips hold across sizes and densities.
class FormatRoundTrip
    : public ::testing::TestWithParam<std::tuple<NodeId, NodeId, EdgeCount>> {
};

TEST_P(FormatRoundTrip, CooCsrCscAgree) {
  const auto [rows, cols, entries] = GetParam();
  CooMatrix coo = random_coo(rows, cols, entries, rows * 31 + cols);
  const CsrMatrix csr = CsrMatrix::from_coo(coo);
  EXPECT_EQ(csr.to_coo().entries(), coo.entries());
  EXPECT_EQ(CscMatrix::from_csr(csr).to_csr(), csr);
  EXPECT_EQ(csr.transpose().transpose(), csr);
  EXPECT_EQ(csr.nnz(), coo.nnz());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FormatRoundTrip,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(5, 5, 0),
                      std::make_tuple(8, 3, 20), std::make_tuple(3, 8, 20),
                      std::make_tuple(64, 64, 500),
                      std::make_tuple(200, 100, 2000),
                      std::make_tuple(1000, 1000, 5000)));

}  // namespace
}  // namespace hymm
