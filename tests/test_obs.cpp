// Observability layer tests: JSON utilities, metrics registry, trace
// emitter, and the acceptance properties of a traced simulation —
// valid JSON, monotone timestamps, the expected duration events and
// counter tracks, and bit-identical cycle counts with tracing on/off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "graph/generator.hpp"
#include "linalg/gcn.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"

namespace hymm {
namespace {

// --- JSON utilities ---

TEST(Json, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
}

TEST(Json, ValidatorAcceptsWellFormedDocuments) {
  EXPECT_TRUE(json_is_valid("{}"));
  EXPECT_TRUE(json_is_valid("[1, 2.5, -3e4, \"s\", true, false, null]"));
  EXPECT_TRUE(json_is_valid("{\"a\": {\"b\": [{}]}, \"c\": \"\\u00e9\"}"));
}

TEST(Json, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(json_is_valid(""));
  EXPECT_FALSE(json_is_valid("{"));
  EXPECT_FALSE(json_is_valid("{\"a\": 1,}"));
  EXPECT_FALSE(json_is_valid("[1 2]"));
  EXPECT_FALSE(json_is_valid("{} trailing"));
  EXPECT_FALSE(json_is_valid("\"unterminated"));
  EXPECT_FALSE(json_is_valid("01"));
  EXPECT_FALSE(json_is_valid("nan"));
}

TEST(Json, WriterProducesValidNestedDocument) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.field("str", "va\"lue");
  w.field("num", std::uint64_t{18446744073709551615ull});
  w.field("neg", std::int64_t{-5});
  w.field("flag", true);
  w.key("arr");
  w.begin_array();
  w.value(1.5);
  w.null();
  w.begin_object();
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(json_is_valid(out.str())) << out.str();
  EXPECT_NE(out.str().find("18446744073709551615"), std::string::npos);
}

TEST(Json, WriterEmitsNullForNonFiniteNumbers) {
  std::ostringstream out;
  JsonWriter w(out, /*pretty=*/false);
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

// --- Metrics registry ---

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());

  Counter& c = reg.counter("dmb.evictions");
  c.add();
  c.add(4);
  EXPECT_EQ(reg.counter("dmb.evictions").value(), 5u);
  EXPECT_EQ(&reg.counter("dmb.evictions"), &c);  // stable handle

  Gauge& g = reg.gauge("lsq.depth");
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max_value(), 7);

  Histogram& h = reg.histogram("smq.row_degree", {1, 4, 16});
  h.observe(1);    // bucket 0 (inclusive upper bound)
  h.observe(2);    // bucket 1
  h.observe(16);   // bucket 2
  h.observe(100);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 119u);
  EXPECT_DOUBLE_EQ(h.mean(), 119.0 / 4.0);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);

  EXPECT_FALSE(reg.empty());
  EXPECT_NE(reg.find_counter("dmb.evictions"), nullptr);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("lsq.depth")->max_value(), 7);
  EXPECT_EQ(reg.find_histogram("smq.row_degree")->count(), 4u);
}

TEST(Metrics, WriteJsonIsValidAndComplete) {
  MetricsRegistry reg;
  reg.counter("a.count").add(2);
  reg.gauge("b.level").set(9);
  reg.histogram("c.dist", {10, 100}).observe(42);
  std::ostringstream out;
  JsonWriter w(out);
  reg.write_json(w);
  const std::string doc = out.str();
  EXPECT_TRUE(json_is_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"a.count\""), std::string::npos);
  EXPECT_NE(doc.find("\"b.level\""), std::string::npos);
  EXPECT_NE(doc.find("\"c.dist\""), std::string::npos);
  EXPECT_NE(doc.find("\"upper_bounds\""), std::string::npos);
}

// --- Trace writer ---

// Extracts every "ts":N in serialization order (metadata events carry
// no ts, so this is exactly the sorted event stream).
std::vector<std::uint64_t> extract_timestamps(const std::string& doc) {
  std::vector<std::uint64_t> ts;
  const std::string needle = "\"ts\":";
  for (std::size_t pos = doc.find(needle); pos != std::string::npos;
       pos = doc.find(needle, pos + 1)) {
    ts.push_back(std::strtoull(doc.c_str() + pos + needle.size(),
                               nullptr, 10));
  }
  return ts;
}

std::size_t count_occurrences(const std::string& doc,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = doc.find(needle); pos != std::string::npos;
       pos = doc.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}

TEST(Trace, WriteSortsEventsAndEmitsValidJson) {
  TraceWriter t;
  t.set_process_name(1, "run");
  t.duration(1, 0, "late", 500, 600);
  t.counter(1, "track", "v", 250, 42);
  t.instant(1, "blip", 10);
  std::ostringstream out;
  t.write(out);
  const std::string doc = out.str();
  EXPECT_TRUE(json_is_valid(doc)) << doc;
  const auto ts = extract_timestamps(doc);
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  // Metadata precedes timed events.
  EXPECT_LT(doc.find("process_name"), doc.find("\"blip\""));
}

TEST(Trace, InstantEventsAreCappedWithDropAccounting) {
  TraceWriter t;
  for (std::size_t i = 0; i < TraceWriter::kMaxInstantEvents + 10; ++i) {
    t.instant(0, "e", i);
  }
  EXPECT_EQ(t.event_count(), TraceWriter::kMaxInstantEvents);
  EXPECT_EQ(t.dropped_instants(), 10u);
  std::ostringstream out;
  t.write(out);
  EXPECT_NE(out.str().find("\"droppedInstantEvents\":10"),
            std::string::npos);
}

// --- Traced simulation acceptance ---

struct Problem {
  CsrMatrix a_hat;
  CsrMatrix x;
  DenseMatrix w;
};

Problem make_problem(NodeId nodes, EdgeCount edges, std::uint64_t seed) {
  GraphSpec gspec;
  gspec.nodes = nodes;
  gspec.edges = edges;
  gspec.seed = seed;
  Problem p;
  p.a_hat = normalize_adjacency(generate_power_law_graph(gspec));
  FeatureSpec fspec;
  fspec.nodes = nodes;
  fspec.feature_length = 64;
  fspec.density = 0.2;
  fspec.seed = seed + 1;
  p.x = generate_features(fspec);
  p.w = DenseMatrix::random(64, 16, seed + 2);
  return p;
}

class TracedDataflows : public ::testing::TestWithParam<Dataflow> {};

// The observer must never feed back into timing: simulated cycle
// counts are bit-identical with tracing on, metrics only, or no
// observer at all.
TEST_P(TracedDataflows, CyclesIdenticalWithAndWithoutObserver) {
  const Problem p = make_problem(120, 900, 7);
  const Accelerator accelerator{AcceleratorConfig{}};

  const LayerRunResult bare =
      accelerator.run_layer(GetParam(), p.a_hat, p.x, p.w);

  ObserverOptions metrics_only;
  metrics_only.trace = false;
  Observer quiet(metrics_only);
  const LayerRunResult with_metrics =
      accelerator.run_layer(GetParam(), p.a_hat, p.x, p.w, &quiet);

  ObserverOptions tracing;
  tracing.trace = true;
  Observer loud(tracing);
  loud.begin_run("test");
  const LayerRunResult with_trace =
      accelerator.run_layer(GetParam(), p.a_hat, p.x, p.w, &loud);

  EXPECT_EQ(bare.stats.cycles, with_metrics.stats.cycles);
  EXPECT_EQ(bare.stats.cycles, with_trace.stats.cycles);
  EXPECT_EQ(bare.stats.mac_ops, with_trace.stats.mac_ops);
  EXPECT_EQ(bare.stats.dram_total_bytes(),
            with_trace.stats.dram_total_bytes());
  EXPECT_EQ(bare.combination_stats.cycles,
            with_trace.combination_stats.cycles);
  EXPECT_EQ(bare.aggregation_stats.cycles,
            with_trace.aggregation_stats.cycles);
}

INSTANTIATE_TEST_SUITE_P(AllFlows, TracedDataflows,
                         ::testing::Values(Dataflow::kRowWiseProduct,
                                           Dataflow::kOuterProduct,
                                           Dataflow::kHybrid));

TEST(TracedRun, HybridTraceHasPhasesRegionsAndCounterTracks) {
  const Problem p = make_problem(120, 900, 7);
  const Accelerator accelerator{AcceleratorConfig{}};
  ObserverOptions oopts;
  oopts.trace = true;
  Observer obs(oopts);
  obs.begin_run("HyMM/test");
  accelerator.run_layer(Dataflow::kHybrid, p.a_hat, p.x, p.w, &obs);

  std::ostringstream out;
  obs.trace().write(out);
  const std::string doc = out.str();

  ASSERT_TRUE(json_is_valid(doc));
  // Timestamps are monotonically ordered after serialization.
  const auto ts = extract_timestamps(doc);
  ASSERT_FALSE(ts.empty());
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));

  // Phase and region duration events.
  EXPECT_NE(doc.find("\"name\":\"combination\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"aggregation\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"region1 (OP)\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"region2 (RWP)\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"region3 (RWP)\",\"ph\":\"X\""),
            std::string::npos);

  // At least 3 counter tracks, each with multiple samples.
  for (const char* track :
       {"\"name\":\"DMB occupancy\",\"ph\":\"C\"",
        "\"name\":\"partial bytes\",\"ph\":\"C\"",
        "\"name\":\"LSQ depth\",\"ph\":\"C\"",
        "\"name\":\"SMQ backlog\",\"ph\":\"C\""}) {
    EXPECT_GT(count_occurrences(doc, track), 1u) << track;
  }

  // The registry filled in alongside the trace.
  const Counter* macs = obs.metrics().find_counter("pe.mac_ops");
  ASSERT_NE(macs, nullptr);
  EXPECT_GT(macs->value(), 0u);
  const Histogram* degrees =
      obs.metrics().find_histogram("smq.row_degree");
  ASSERT_NE(degrees, nullptr);
  EXPECT_GT(degrees->count(), 0u);
}

TEST(TracedRun, MultipleRunsGetDistinctProcessGroups) {
  const Problem p = make_problem(60, 300, 3);
  const Accelerator accelerator{AcceleratorConfig{}};
  ObserverOptions oopts;
  oopts.trace = true;
  Observer obs(oopts);
  obs.begin_run("first");
  const int pid1 = obs.run_pid();
  accelerator.run_layer(Dataflow::kRowWiseProduct, p.a_hat, p.x, p.w, &obs);
  obs.begin_run("second");
  const int pid2 = obs.run_pid();
  accelerator.run_layer(Dataflow::kOuterProduct, p.a_hat, p.x, p.w, &obs);
  EXPECT_NE(pid1, pid2);

  std::ostringstream out;
  obs.trace().write(out);
  const std::string doc = out.str();
  ASSERT_TRUE(json_is_valid(doc));
  EXPECT_NE(doc.find("\"name\":\"first\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"second\""), std::string::npos);
  // ts stays monotone even with two runs interleaved in one file.
  const auto ts = extract_timestamps(doc);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
}

// With an observer attached but tracing off, the trace buffer stays
// empty (the registry is the only cost).
TEST(TracedRun, MetricsOnlyObserverBuffersNoEvents) {
  const Problem p = make_problem(60, 300, 3);
  const Accelerator accelerator{AcceleratorConfig{}};
  Observer obs;  // trace defaults to false
  accelerator.run_layer(Dataflow::kHybrid, p.a_hat, p.x, p.w, &obs);
  EXPECT_EQ(obs.trace().event_count(), 0u);
  EXPECT_FALSE(obs.metrics().empty());
}

}  // namespace
}  // namespace hymm
