// LogHistogram acceptance suite (obs/histogram.hpp): bucket geometry,
// exact small-value behavior, the merge-equals-direct-observation
// guarantee, and the bounded-error quantile contract
//   true <= quantile(q) <= true * (1 + 2^-kSubBucketBits)
// checked against an exact sorted-sample oracle on random streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "obs/histogram.hpp"

namespace hymm {
namespace {

TEST(LogHistogram, EmptyHistogramReportsZeros) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

TEST(LogHistogram, SingleSampleIsExactAtEveryQuantile) {
  LogHistogram h;
  h.observe(12345);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 12345u);
  EXPECT_EQ(h.min(), 12345u);
  EXPECT_EQ(h.max(), 12345u);
  EXPECT_DOUBLE_EQ(h.mean(), 12345.0);
  // Every quantile of a one-sample distribution is the sample; the
  // bucket edge estimate is capped at the exact max.
  for (const double q : {0.0, 0.01, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), 12345u) << "q=" << q;
  }
}

TEST(LogHistogram, ValuesBelowSubBucketCountAreExact) {
  // One bucket per value below kSubBuckets = 32: quantiles of any
  // stream of small values are exact, not just bounded.
  LogHistogram h;
  for (std::uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LogHistogram::bucket_lower(LogHistogram::bucket_index(v)), v);
    EXPECT_EQ(LogHistogram::bucket_upper(LogHistogram::bucket_index(v)), v);
    h.observe(v);
  }
  EXPECT_EQ(h.count(), LogHistogram::kSubBuckets);
  EXPECT_EQ(h.quantile(0.5), 15u);  // ceil(0.5 * 32) = 16th smallest = 15
  EXPECT_EQ(h.quantile(1.0), 31u);
  EXPECT_EQ(h.min(), 0u);
}

TEST(LogHistogram, BucketEdgesTileTheValueRange) {
  // Walking buckets from 0: edges are contiguous (upper + 1 == next
  // lower) and every value maps into the bucket whose edges contain
  // it.
  std::size_t index = 0;
  std::uint64_t expected_lower = 0;
  for (; LogHistogram::bucket_lower(index) < (std::uint64_t{1} << 40);
       ++index) {
    const std::uint64_t lower = LogHistogram::bucket_lower(index);
    const std::uint64_t upper = LogHistogram::bucket_upper(index);
    ASSERT_EQ(lower, expected_lower) << "bucket " << index;
    ASSERT_GE(upper, lower);
    ASSERT_EQ(LogHistogram::bucket_index(lower), index);
    ASSERT_EQ(LogHistogram::bucket_index(upper), index);
    expected_lower = upper + 1;
  }
  ASSERT_GT(index, LogHistogram::kSubBuckets);
}

TEST(LogHistogram, WeightedObserveMatchesRepeatedObserve) {
  LogHistogram weighted;
  weighted.observe(100, 5);
  LogHistogram repeated;
  for (int i = 0; i < 5; ++i) repeated.observe(100);
  EXPECT_EQ(weighted.count(), repeated.count());
  EXPECT_EQ(weighted.sum(), repeated.sum());
  EXPECT_EQ(weighted.quantile(0.5), repeated.quantile(0.5));
}

TEST(LogHistogram, MergeOfDisjointBucketRangesIsExact) {
  // `low` only holds exact small-value buckets, `high` only holds
  // log buckets far above them: merging must splice the ranges
  // without disturbing either side.
  LogHistogram low;
  for (std::uint64_t v = 1; v <= 8; ++v) low.observe(v);
  LogHistogram high;
  for (std::uint64_t v = 1 << 20; v < (1 << 20) + 8; ++v) high.observe(v);

  LogHistogram merged = low;
  merged.merge(high);

  EXPECT_EQ(merged.count(), 16u);
  EXPECT_EQ(merged.sum(), low.sum() + high.sum());
  EXPECT_EQ(merged.min(), 1u);
  EXPECT_EQ(merged.max(), high.max());
  // The 8 small samples occupy ranks 1..8: the median of the merged
  // stream is still exact.
  EXPECT_EQ(merged.quantile(0.5), 8u);
  // Every nonzero bucket came from exactly one side.
  for (const LogHistogram::Bucket& b : merged.nonzero_buckets()) {
    EXPECT_TRUE(b.upper <= 8 || b.lower >= (1 << 20))
        << "[" << b.lower << ", " << b.upper << "]";
  }
}

TEST(LogHistogram, MergeEqualsDirectObservation) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::uint64_t> dist(0, 1 << 18);
  LogHistogram a, b, direct;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t va = dist(rng);
    const std::uint64_t vb = dist(rng);
    a.observe(va);
    b.observe(vb);
    direct.observe(va);
    direct.observe(vb);
  }
  LogHistogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.sum(), direct.sum());
  EXPECT_EQ(merged.min(), direct.min());
  EXPECT_EQ(merged.max(), direct.max());
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(merged.quantile(q), direct.quantile(q)) << "q=" << q;
  }
}

TEST(LogHistogram, MergeWithEmptyIsIdentity) {
  LogHistogram h;
  h.observe(77);
  LogHistogram empty;
  h.merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.quantile(1.0), 77u);
  empty.merge(h);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 77u);
}

TEST(LogHistogram, MergeOfTwoEmptiesStaysEmpty) {
  // Neither side may leak its min() sentinel into the other: the
  // merge of two empty histograms must report zeros everywhere, and
  // still accept observations afterwards.
  LogHistogram a, b;
  a.merge(b);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 0u);
  EXPECT_EQ(a.quantile(0.5), 0u);
  EXPECT_TRUE(a.nonzero_buckets().empty());
  a.observe(9);
  EXPECT_EQ(a.min(), 9u);
  EXPECT_EQ(a.max(), 9u);
}

TEST(LogHistogram, MergeHandlesTopBucketValues) {
  // Values at the very top of the u64 range land in the last log
  // bucket; merging them must not overflow bucket arithmetic or lose
  // the exact min/max/sum tracking.
  const std::uint64_t huge = ~std::uint64_t{0};  // 2^64 - 1
  LogHistogram a;
  a.observe(huge);
  LogHistogram b;
  b.observe(huge - 1);
  b.observe(3);

  LogHistogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.min(), 3u);
  EXPECT_EQ(merged.max(), huge);
  EXPECT_EQ(merged.sum(), huge + (huge - 1) + 3);  // mod 2^64, both sides agree
  // quantile(1.0) is capped at the exact max, not the bucket edge.
  EXPECT_EQ(merged.quantile(1.0), huge);
  // The two huge samples share the top bucket.
  EXPECT_EQ(merged.nonzero_buckets().size(), 2u);
}

TEST(LogHistogram, MergeThenQuantileEqualsSingleHistogram) {
  // Splitting one stream across N shards and merging them must give
  // the same quantiles as observing the whole stream directly — at
  // every probe point, including the extremes and overflow-adjacent
  // values.
  std::mt19937 rng(21);
  std::uniform_int_distribution<int> shift(0, 63);
  LogHistogram shards[4];
  LogHistogram direct;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = std::uint64_t{1} << shift(rng);
    v += std::uniform_int_distribution<std::uint64_t>(0, v - 1)(rng);
    shards[i % 4].observe(v);
    direct.observe(v);
  }
  LogHistogram merged;
  for (const LogHistogram& shard : shards) merged.merge(shard);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.sum(), direct.sum());
  EXPECT_EQ(merged.min(), direct.min());
  EXPECT_EQ(merged.max(), direct.max());
  for (const double q :
       {0.0, 0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.quantile(q), direct.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(merged.nonzero_buckets().size(),
            direct.nonzero_buckets().size());
}

// The bounded-error property against an exact oracle: for random
// streams drawn from distributions with very different shapes, every
// quantile estimate brackets the true order statistic within the
// documented factor.
TEST(LogHistogram, QuantileErrorIsBoundedAgainstSortedOracle) {
  const double bound =
      1.0 + 1.0 / static_cast<double>(LogHistogram::kSubBuckets);
  std::mt19937 rng(42);

  for (int shape = 0; shape < 3; ++shape) {
    LogHistogram h;
    std::vector<std::uint64_t> oracle;
    for (int i = 0; i < 4000; ++i) {
      std::uint64_t v = 0;
      if (shape == 0) {  // uniform, spans many octaves
        v = std::uniform_int_distribution<std::uint64_t>(0, 1 << 22)(rng);
      } else if (shape == 1) {  // geometric-ish, heavy at small values
        v = std::uint64_t{1} << std::uniform_int_distribution<int>(0, 30)(rng);
        v += std::uniform_int_distribution<std::uint64_t>(0, v - 1)(rng);
      } else {  // narrow band around a fixed latency
        v = std::uniform_int_distribution<std::uint64_t>(90, 110)(rng);
      }
      h.observe(v);
      oracle.push_back(v);
    }
    std::sort(oracle.begin(), oracle.end());

    for (const double q :
         {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0}) {
      const std::size_t rank = static_cast<std::size_t>(
          std::max<double>(1.0, std::ceil(q * oracle.size())));
      const std::uint64_t truth = oracle[rank - 1];
      const std::uint64_t est = h.quantile(q);
      EXPECT_GE(est, truth) << "shape=" << shape << " q=" << q;
      EXPECT_LE(static_cast<double>(est),
                static_cast<double>(truth) * bound + 1.0)
          << "shape=" << shape << " q=" << q;
    }
    EXPECT_EQ(h.quantile(1.0), oracle.back());
    EXPECT_EQ(h.min(), oracle.front());
  }
}

TEST(LogHistogram, ResetRestoresEmptyState) {
  LogHistogram h;
  h.observe(999);
  h.observe(3);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  h.observe(10);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 10u);
}

TEST(RunHistograms, EmptyTracksAllFourHistograms) {
  RunHistograms rh;
  EXPECT_TRUE(rh.empty());
  rh.phase_cycles.observe(100);
  EXPECT_FALSE(rh.empty());
}

}  // namespace
}  // namespace hymm
