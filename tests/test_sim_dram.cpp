// Tests for the DRAM channel model: latency, bandwidth serialization,
// queue limits and byte accounting, plus the address map.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/address_map.hpp"
#include "sim/dram.hpp"

namespace hymm {
namespace {

AcceleratorConfig test_config() {
  AcceleratorConfig c;
  c.dram_latency = 10;
  c.dram_queue_entries = 4;
  return c;
}

// Advances the model to `target`, collecting completion tags.
std::vector<std::uint64_t> drain_until(Dram& dram, Cycle from, Cycle target) {
  std::vector<std::uint64_t> tags;
  for (Cycle t = from; t <= target; ++t) {
    dram.tick(t);
    tags.insert(tags.end(), dram.completions().begin(),
                dram.completions().end());
  }
  return tags;
}

TEST(Dram, ReadCompletesAfterLatency) {
  SimStats stats;
  Dram dram(test_config(), stats);
  dram.issue_read(0x1000, TrafficClass::kCombined, 42, 0);
  dram.tick(9);
  EXPECT_TRUE(dram.completions().empty());
  dram.tick(10);
  ASSERT_EQ(dram.completions().size(), 1u);
  EXPECT_EQ(dram.completions()[0], 42u);
}

TEST(Dram, BandwidthSerializesBackToBackReads) {
  SimStats stats;
  Dram dram(test_config(), stats);
  // Two reads the same cycle: second occupies the next slot, so it
  // completes one cycle later.
  dram.issue_read(0x1000, TrafficClass::kCombined, 1, 0);
  dram.issue_read(0x2000, TrafficClass::kCombined, 2, 0);
  dram.tick(10);
  ASSERT_EQ(dram.completions().size(), 1u);
  EXPECT_EQ(dram.completions()[0], 1u);
  dram.tick(11);
  ASSERT_EQ(dram.completions().size(), 1u);
  EXPECT_EQ(dram.completions()[0], 2u);
}

TEST(Dram, QueueLimitEnforced) {
  SimStats stats;
  Dram dram(test_config(), stats);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(dram.can_accept_read());
    dram.issue_read(i * 64, TrafficClass::kWeights, i, 0);
  }
  EXPECT_FALSE(dram.can_accept_read());
  EXPECT_THROW(dram.issue_read(0x5000, TrafficClass::kWeights, 9, 0),
               CheckError);
  // Completions free slots.
  const auto tags = drain_until(dram, 0, 20);
  EXPECT_EQ(tags.size(), 4u);
  EXPECT_TRUE(dram.can_accept_read());
}

TEST(Dram, WritesConsumeBandwidthAndBytes) {
  SimStats stats;
  Dram dram(test_config(), stats);
  dram.issue_write(0x0, TrafficClass::kOutput, 5);
  dram.issue_write(0x40, TrafficClass::kOutput, 5);
  EXPECT_EQ(stats.dram_write_bytes[static_cast<std::size_t>(
                TrafficClass::kOutput)],
            2 * kLineBytes);
  EXPECT_EQ(dram.busy_until(), 7u);  // two slots from cycle 5
}

TEST(Dram, WritesDelaySubsequentReads) {
  SimStats stats;
  Dram dram(test_config(), stats);
  dram.issue_write(0x0, TrafficClass::kOutput, 0);
  dram.issue_read(0x40, TrafficClass::kCombined, 1, 0);
  // Write takes slot 0; read slot 1 -> completes at 11.
  dram.tick(10);
  EXPECT_TRUE(dram.completions().empty());
  dram.tick(11);
  EXPECT_EQ(dram.completions().size(), 1u);
}

TEST(Dram, ByteCountersPerClass) {
  SimStats stats;
  Dram dram(test_config(), stats);
  dram.issue_read(0x0, TrafficClass::kAdjacency, 1, 0);
  dram.issue_streaming_read(TrafficClass::kAdjacency, 0);
  dram.issue_write(0x40, TrafficClass::kPartial, 0);
  EXPECT_EQ(stats.dram_read_bytes[static_cast<std::size_t>(
                TrafficClass::kAdjacency)],
            2 * kLineBytes);
  EXPECT_EQ(stats.dram_write_bytes[static_cast<std::size_t>(
                TrafficClass::kPartial)],
            kLineBytes);
  EXPECT_EQ(stats.dram_total_bytes(), 3 * kLineBytes);
}

TEST(Dram, ReducedBandwidthWidensSlots) {
  AcceleratorConfig config = test_config();
  config.dram_bytes_per_cycle = 16;  // 4 cycles per line
  SimStats stats;
  Dram dram(config, stats);
  dram.issue_read(0x0, TrafficClass::kCombined, 1, 0);
  dram.issue_read(0x40, TrafficClass::kCombined, 2, 0);
  // First at slot 0 (ready 10), second at slot 4 (ready 14).
  const auto tags = drain_until(dram, 0, 13);
  ASSERT_EQ(tags.size(), 1u);
  dram.tick(14);
  ASSERT_EQ(dram.completions().size(), 1u);
  EXPECT_EQ(dram.completions()[0], 2u);
}

TEST(Dram, WriteBufferBackPressure) {
  AcceleratorConfig config = test_config();
  config.dram_write_buffer_lines = 2;
  SimStats stats;
  Dram dram(config, stats);
  EXPECT_TRUE(dram.can_accept_write(0));
  dram.issue_write(0x0, TrafficClass::kPartial, 0);
  dram.issue_write(0x40, TrafficClass::kPartial, 0);
  EXPECT_TRUE(dram.can_accept_write(0));  // exactly at the window edge
  dram.issue_write(0x80, TrafficClass::kPartial, 0);
  EXPECT_FALSE(dram.can_accept_write(0));
  // The channel catches up as cycles pass.
  EXPECT_TRUE(dram.can_accept_write(1));
}

TEST(Dram, ReadsShareBandwidthWithWriteWindow) {
  AcceleratorConfig config = test_config();
  config.dram_write_buffer_lines = 4;
  SimStats stats;
  Dram dram(config, stats);
  // Streaming reads consume the same slots the write window tracks.
  for (int i = 0; i < 5; ++i) {
    dram.issue_streaming_read(TrafficClass::kAdjacency, 0);
  }
  EXPECT_FALSE(dram.can_accept_write(0));
  EXPECT_TRUE(dram.can_accept_write(1));
}

TEST(AddressMap, DisjointLineAlignedRegions) {
  AddressMap map;
  const AddressRegion a = map.allocate("a", 100, TrafficClass::kWeights);
  const AddressRegion b = map.allocate("b", 64, TrafficClass::kCombined);
  EXPECT_EQ(a.bytes % kLineBytes, 0u);
  EXPECT_EQ(a.bytes, 128u);  // rounded up
  EXPECT_GE(b.base, a.end());
  EXPECT_EQ(map.region_of(a.base + 64).name, "a");
  EXPECT_EQ(map.region_of(b.base).cls, TrafficClass::kCombined);
}

TEST(AddressMap, UnmappedAddressThrows) {
  AddressMap map;
  map.allocate("only", 64, TrafficClass::kWeights);
  EXPECT_THROW(map.region_of(0x0), CheckError);
}

TEST(AddressMap, LineOfIndexesElements) {
  AddressMap map;
  const AddressRegion r = map.allocate("x", 10 * kLineBytes,
                                       TrafficClass::kCombined);
  EXPECT_EQ(r.line_of(0), r.base);
  EXPECT_EQ(r.line_of(3), r.base + 3 * kLineBytes);
  EXPECT_EQ(r.line_of(2, 2), r.base + 4 * kLineBytes);
}

TEST(AddressMap, ZeroByteAllocationStillGetsALine) {
  AddressMap map;
  const AddressRegion r = map.allocate("empty", 0, TrafficClass::kOutput);
  EXPECT_EQ(r.bytes, kLineBytes);
}

TEST(Stats, TimelineSamplesAtIntervalAndDecimates) {
  SimStats stats;
  stats.timeline_interval = 1;
  // Feed far more samples than the capacity; the sampler must thin
  // itself and stay bounded.
  for (Cycle t = 0; t < 10000; ++t) {
    stats.partial_bytes_now = t;
    stats.maybe_sample_timeline(t);
  }
  EXPECT_LE(stats.partial_timeline.size(), SimStats::kTimelineCapacity);
  EXPECT_GE(stats.partial_timeline.size(),
            SimStats::kTimelineCapacity / 4);
  EXPECT_GT(stats.timeline_interval, 1u);
  // Samples stay in cycle order and track the footprint.
  for (std::size_t i = 1; i < stats.partial_timeline.size(); ++i) {
    EXPECT_LT(stats.partial_timeline[i - 1].first,
              stats.partial_timeline[i].first);
    EXPECT_EQ(stats.partial_timeline[i].second,
              stats.partial_timeline[i].first);
  }
}

TEST(Stats, TimelineFractionAbove) {
  SimStats stats;
  stats.timeline_interval = 1;
  for (Cycle t = 0; t < 100; ++t) {
    stats.partial_bytes_now = t < 25 ? 1000 : 10;
    stats.maybe_sample_timeline(t);
  }
  EXPECT_NEAR(stats.timeline_fraction_above(100), 0.25, 0.02);
  EXPECT_DOUBLE_EQ(stats.timeline_fraction_above(2000), 0.0);
  EXPECT_DOUBLE_EQ(SimStats{}.timeline_fraction_above(0), 0.0);
}

TEST(Stats, BandwidthUtilization) {
  SimStats stats;
  stats.cycles = 100;
  stats.dram_read_bytes[0] = 3200;  // 50 lines
  EXPECT_DOUBLE_EQ(stats.dram_bandwidth_utilization(64), 0.5);
  EXPECT_DOUBLE_EQ(SimStats{}.dram_bandwidth_utilization(64), 0.0);
}

TEST(Stats, MergeAndDerivedMetrics) {
  SimStats a;
  a.cycles = 100;
  a.alu_busy_cycles = 50;
  a.dmb_read_hits = 30;
  a.dmb_read_misses = 10;
  a.note_partial_bytes(128);
  a.note_partial_bytes(-64);
  EXPECT_EQ(a.partial_bytes_now, 64u);
  EXPECT_EQ(a.partial_bytes_peak, 128u);
  EXPECT_DOUBLE_EQ(a.alu_utilization(), 0.5);
  EXPECT_DOUBLE_EQ(a.dmb_hit_rate(), 0.75);

  SimStats b;
  b.cycles = 50;
  b.alu_busy_cycles = 10;
  b.partial_bytes_peak = 256;
  a.merge_phase(b);
  EXPECT_EQ(a.cycles, 150u);
  EXPECT_EQ(a.alu_busy_cycles, 60u);
  EXPECT_EQ(a.partial_bytes_peak, 256u);
}

}  // namespace
}  // namespace hymm
