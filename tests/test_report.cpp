// Report renderer tests: RFC 4180 CSV quoting, a golden-file lock on
// the CSV header and row layout, and the JSON run report round-trip
// (valid JSON carrying the full SimStats counter set).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hymm {
namespace {

TEST(CsvQuote, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_quote("cora"), "cora");
  EXPECT_EQ(csv_quote(""), "");
  EXPECT_EQ(csv_quote("has space"), "has space");
}

TEST(CsvQuote, SpecialFieldsAreQuoted) {
  EXPECT_EQ(csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_quote("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_quote(","), "\",\"");
}

ExperimentResult make_result() {
  ExperimentResult r;
  r.dataset = "Cora";
  r.abbrev = "CR";
  r.scale = 0.5;
  r.flow = Dataflow::kHybrid;
  r.cycles = 1000;
  r.combination_cycles = 400;
  r.aggregation_cycles = 600;
  r.mac_ops = 2048;
  r.alu_utilization = 0.25;
  r.dmb_hit_rate = 0.75;
  r.partial_bytes_peak = 4096;
  r.preprocess_ms = 1.5;
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    r.dram_read_bytes[c] = 64 * (c + 1);
    r.dram_write_bytes[c] = 32 * (c + 1);
  }
  r.dram_total_bytes = 2016;  // 64*21 + 32*21
  r.dram_peak_bytes_per_cycle = 64;
  r.verified = true;
  r.max_abs_err = 0;
  // Stall vector summing to cycles: 700 compute, 100 merge, 200 DRAM
  // latency — a compute-bound verdict.
  r.stats.cycles = 1000;
  r.stats.account(StallCause::kCompute, 700);
  r.stats.account(StallCause::kMergeRmw, 100);
  r.stats.account(StallCause::kDramLatency, 200);
  return r;
}

// Golden-file lock: external tooling parses this layout; any change
// here must be deliberate and versioned.
TEST(ResultsCsv, GoldenHeaderAndRow) {
  std::vector<ExperimentResult> results = {make_result()};
  std::ostringstream out;
  write_results_csv(results, out);
  const std::string expected =
      "dataset,scale,flow,cycles,combination_cycles,aggregation_cycles,"
      "mac_ops,alu_utilization,dmb_hit_rate,partial_bytes_peak,"
      "preprocess_ms,"
      "read_adjacency,write_adjacency,read_features,write_features,"
      "read_weights,write_weights,read_XW,write_XW,read_AXW,write_AXW,"
      "read_partial,write_partial,dram_total_bytes,verified,max_abs_err,"
      "stall_compute,stall_merge_rmw,stall_dram_latency,"
      "stall_dram_bandwidth,stall_lsq_full,stall_smq_backlog,"
      "stall_dmb_miss,stall_accumulator_conflict,stall_drain,"
      "bottleneck,dram_bw_utilization,"
      "lsq_lat_p50,lsq_lat_p99,lsq_lat_max,"
      "dram_lat_p50,dram_lat_p99,dram_lat_max,"
      "pe_max_over_mean,pe_cov,pe_gini,"
      "rowband_max_over_mean,rowband_cov,rowband_gini\n"
      "CR,0.5,HyMM,1000,400,600,2048,0.25,0.75,4096,1.5,"
      "64,32,128,64,192,96,256,128,320,160,384,192,2016,1,0,"
      "700,100,200,0,0,0,0,0,0,compute-bound,0.0315,"
      "0,0,0,0,0,0,"
      "0,0,0,0,0,0\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(ResultsCsv, CommaInDatasetNameIsQuoted) {
  ExperimentResult r = make_result();
  r.abbrev = "custom,graph";
  std::vector<ExperimentResult> results = {r};
  std::ostringstream out;
  write_results_csv(results, out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("\"custom,graph\",0.5,HyMM"), std::string::npos)
      << csv;
  // Every data row still has the same number of top-level commas as
  // the header once the quoted field is collapsed.
  const auto second_line = csv.substr(csv.find('\n') + 1);
  EXPECT_EQ(second_line.find("custom,graph"),
            second_line.find("\"custom,graph\"") + 1);
}

TEST(ResultsJson, IsValidAndCarriesFullCounterSet) {
  ExperimentResult r = make_result();
  // Sentinel values for every SimStats counter the report must carry.
  r.stats.cycles = 1000;
  r.stats.mac_ops = 11;
  r.stats.alu_busy_cycles = 12;
  r.stats.merge_adds = 13;
  r.stats.dmb_read_hits = 14;
  r.stats.dmb_read_misses = 15;
  r.stats.dmb_accumulate_hits = 16;
  r.stats.dmb_accumulate_misses = 17;
  r.stats.dmb_evictions = 18;
  r.stats.dmb_partial_spills = 19;
  r.stats.lsq_loads = 20;
  r.stats.lsq_stores = 21;
  r.stats.lsq_forwards = 22;
  for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
    r.stats.dram_read_bytes[c] = 1100 + c;
    r.stats.dram_write_bytes[c] = 1200 + c;
  }
  r.stats.partial_bytes_peak = 23;
  r.partition.nodes = 100;
  r.partition.region1_rows = 10;
  r.partition.region2_cols = 20;
  r.partition.nnz_region1 = 31;
  r.partition.nnz_region2 = 32;
  r.partition.nnz_region3 = 33;

  std::vector<ExperimentResult> results = {r};
  std::ostringstream out;
  write_results_json(results, out);
  const std::string doc = out.str();
  ASSERT_TRUE(json_is_valid(doc)) << doc;

  EXPECT_NE(doc.find("\"schema\": \"hymm-run-report/8\""),
            std::string::npos);
  const auto expect_field = [&doc](const std::string& key,
                                   std::uint64_t value) {
    const std::string needle =
        "\"" + key + "\": " + std::to_string(value);
    EXPECT_NE(doc.find(needle), std::string::npos) << needle;
  };
  expect_field("mac_ops", 11);
  expect_field("alu_busy_cycles", 12);
  expect_field("merge_adds", 13);
  expect_field("dmb_read_hits", 14);
  expect_field("dmb_read_misses", 15);
  expect_field("dmb_accumulate_hits", 16);
  expect_field("dmb_accumulate_misses", 17);
  expect_field("dmb_evictions", 18);
  expect_field("dmb_partial_spills", 19);
  expect_field("lsq_loads", 20);
  expect_field("lsq_stores", 21);
  expect_field("lsq_forwards", 22);
  expect_field("partial_bytes_peak", 23);
  expect_field("adjacency", 1100);  // first read class
  expect_field("partial", 1205);    // last write class
  expect_field("region1_rows", 10);
  expect_field("nnz_region3", 33);
  // Stall breakdown, verdict and roofline (schema /2 additions).
  expect_field("compute", 700);
  expect_field("dram_latency", 200);
  expect_field("stall_total", 1000);
  // Fast-forward coverage (schema /3 additions).
  EXPECT_NE(doc.find("\"skipped_cycles\""), std::string::npos);
  EXPECT_NE(doc.find("\"sim_wall_ms\""), std::string::npos);
  expect_field("dram_peak_bytes_per_cycle", 64);
  EXPECT_NE(doc.find("\"bottleneck\": \"compute-bound\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"dram_bw_utilization\""), std::string::npos);
  // Per-phase deltas and the hybrid's region array are present.
  EXPECT_NE(doc.find("\"combination\""), std::string::npos);
  EXPECT_NE(doc.find("\"aggregation\""), std::string::npos);
  EXPECT_NE(doc.find("\"regions\""), std::string::npos);
  // Derived ratios are numbers, not NaN (JSON has no NaN).
  EXPECT_EQ(doc.find("nan"), std::string::npos);
  // Schema /4: no "tune" object unless a tuner actually ran.
  EXPECT_EQ(doc.find("\"tune\""), std::string::npos);
}

TEST(ResultsJson, TunedResultCarriesTheDecision) {
  ExperimentResult r = make_result();
  r.tune.enabled = true;
  r.tune.mode = "measured";
  r.tune.fixed_threshold = 0.20;
  r.tune.threshold = 0.05;
  r.tune.cache_hit = false;
  r.tune.simulations = 8;
  r.tune.graph_fingerprint = "0x0123456789abcdef";
  r.tune.config_hash = "0xfedcba9876543210";
  r.tune.candidates.push_back({0.05, 61000.0, 60911.0});
  r.tune.candidates.push_back({0.20, 61500.0, 61230.0});
  std::vector<ExperimentResult> results = {r};
  std::ostringstream out;
  write_results_json(results, out);
  const std::string doc = out.str();
  ASSERT_TRUE(json_is_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"tune\""), std::string::npos);
  EXPECT_NE(doc.find("\"mode\": \"measured\""), std::string::npos);
  EXPECT_NE(doc.find("\"fixed_threshold\": 0.2"), std::string::npos);
  EXPECT_NE(doc.find("\"simulations\": 8"), std::string::npos);
  EXPECT_NE(doc.find("\"graph_fingerprint\": \"0x0123456789abcdef\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"candidates\""), std::string::npos);
  EXPECT_NE(doc.find("\"measured_cycles\": 60911"), std::string::npos);
}

TEST(ResultsJson, NonHybridOmitsPartitionAndRegions) {
  ExperimentResult r = make_result();
  r.flow = Dataflow::kRowWiseProduct;
  std::vector<ExperimentResult> results = {r};
  std::ostringstream out;
  write_results_json(results, out);
  const std::string doc = out.str();
  ASSERT_TRUE(json_is_valid(doc));
  EXPECT_EQ(doc.find("\"partition\""), std::string::npos);
  EXPECT_EQ(doc.find("\"regions\""), std::string::npos);
}

// Schema /5: histograms and timeseries only appear when non-empty,
// and carry the quantile summary / column arrays when they do.
TEST(ResultsJson, OmitsHistogramsAndTimeseriesWhenEmpty) {
  std::vector<ExperimentResult> results = {make_result()};
  std::ostringstream out;
  write_results_json(results, out);
  const std::string doc = out.str();
  ASSERT_TRUE(json_is_valid(doc));
  EXPECT_EQ(doc.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(doc.find("\"timeseries\""), std::string::npos);
}

TEST(ResultsJson, CarriesHistogramsAndTimeseriesWhenPresent) {
  ExperimentResult r = make_result();
  r.histograms.lsq_load_latency.observe(10);
  r.histograms.lsq_load_latency.observe(100);
  r.histograms.dram_read_latency.observe(55);
  r.timeseries.interval = 256;
  TimeSeriesSample s;
  s.cycle = 256;
  s.lsq_depth = 3;
  s.dram_bytes = 4096;
  s.stall_cycles[static_cast<std::size_t>(StallCause::kCompute)] = 200;
  r.timeseries.samples.push_back(s);
  std::vector<ExperimentResult> results = {r};
  std::ostringstream out;
  write_results_json(results, out);
  const std::string doc = out.str();
  ASSERT_TRUE(json_is_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"lsq_load_latency\""), std::string::npos);
  EXPECT_NE(doc.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"p99\""), std::string::npos);
  EXPECT_NE(doc.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(doc.find("\"interval\": 256"), std::string::npos);
  EXPECT_NE(doc.find("\"lsq_depth\""), std::string::npos);
  EXPECT_NE(doc.find("\"dram_bytes\""), std::string::npos);
}

// Schema /6: the spatial object only appears when the run collected
// spatial attribution, and then carries the per-region tile grid, the
// residual bucket, the per-PE counters and the imbalance summaries.
TEST(ResultsJson, OmitsSpatialWhenEmpty) {
  std::vector<ExperimentResult> results = {make_result()};
  std::ostringstream out;
  write_results_json(results, out);
  const std::string doc = out.str();
  ASSERT_TRUE(json_is_valid(doc));
  EXPECT_EQ(doc.find("\"spatial\""), std::string::npos);
}

ExperimentResult make_spatial_result() {
  ExperimentResult r = make_result();
  SpatialData& sp = r.spatial;
  sp.nodes = 100;
  sp.tile = 25;
  sp.grid_rows = 4;
  sp.grid_cols = 4;
  auto& rwp =
      sp.regions[static_cast<std::size_t>(SpatialRegion::kRwp)];
  const std::size_t cells = sp.grid_rows * sp.grid_cols;
  rwp.nnz.assign(cells, 0);
  rwp.macs.assign(cells, 0);
  rwp.dmb_hits.assign(cells, 0);
  rwp.dmb_misses.assign(cells, 0);
  rwp.dram_bytes.assign(cells, 0);
  rwp.cycles.assign(cells, 0);
  rwp.nnz[0] = 7;
  rwp.macs[0] = 14;
  rwp.cycles[0] = 900;
  rwp.cycles[5] = 100;
  rwp.dram_bytes[0] = 512;
  sp.residual_cycles = 42;
  sp.residual_dram_bytes = 64;
  sp.lane_busy_cycles = {400, 300, 200, 100};
  sp.lane_mac_ops = {40, 30, 20, 10};
  sp.array_busy_cycles = 400;
  return r;
}

TEST(ResultsJson, CarriesSpatialWhenPresent) {
  std::vector<ExperimentResult> results = {make_spatial_result()};
  std::ostringstream out;
  write_results_json(results, out);
  const std::string doc = out.str();
  ASSERT_TRUE(json_is_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"spatial\""), std::string::npos);
  EXPECT_NE(doc.find("\"grid_rows\": 4"), std::string::npos);
  EXPECT_NE(doc.find("\"tile\": 25"), std::string::npos);
  // Only the touched region appears...
  EXPECT_NE(doc.find("\"rwp\""), std::string::npos);
  EXPECT_EQ(doc.find("\"region3\""), std::string::npos);
  // ...with its grid arrays, the residual and the PE counters.
  EXPECT_NE(doc.find("\"residual\""), std::string::npos);
  EXPECT_NE(doc.find("\"busy_cycles\""), std::string::npos);
  EXPECT_NE(doc.find("\"array_busy_cycles\": 400"), std::string::npos);
  // Imbalance summaries: max lane (400) over mean (250) = 1.6.
  EXPECT_NE(doc.find("\"imbalance\""), std::string::npos);
  EXPECT_NE(doc.find("\"pe_busy\""), std::string::npos);
  EXPECT_NE(doc.find("\"row_band_cycles\""), std::string::npos);
  EXPECT_NE(doc.find("\"max_over_mean\": 1.6"), std::string::npos);
  EXPECT_EQ(doc.find("nan"), std::string::npos);
}

TEST(ResultsCsv, SpatialResultFillsImbalanceColumns) {
  std::vector<ExperimentResult> results = {make_spatial_result()};
  std::ostringstream out;
  write_results_csv(results, out);
  const std::string csv = out.str();
  // The lane-busy imbalance lands in the pe_* columns: max/mean 1.6.
  EXPECT_NE(csv.find(",1.6,"), std::string::npos) << csv;
  // Row-band cycles are (900, 100, 0, 0): max/mean 900/250 = 3.6.
  EXPECT_NE(csv.find(",3.6,"), std::string::npos) << csv;
}

TEST(ResultsJson, AppendsMetricsRegistryWhenProvided) {
  MetricsRegistry reg;
  reg.counter("pe.macs").add(123456);
  std::vector<ExperimentResult> results = {make_result()};
  std::ostringstream out;
  write_results_json(results, out, &reg);
  const std::string doc = out.str();
  ASSERT_TRUE(json_is_valid(doc));
  EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
  EXPECT_NE(doc.find("\"pe.macs\": 123456"), std::string::npos);
}

TEST(ResultsJson, AppendsTraceInfoWhenProvided) {
  TraceWriter trace;
  trace.instant(0, "evt", 1);
  trace.instant(0, "evt", 2);
  std::vector<ExperimentResult> results = {make_result()};
  std::ostringstream out;
  write_results_json(results, out, nullptr, &trace);
  const std::string doc = out.str();
  ASSERT_TRUE(json_is_valid(doc));
  EXPECT_NE(doc.find("\"trace\""), std::string::npos);
  EXPECT_NE(doc.find("\"events\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"dropped_instants\": 0"), std::string::npos);
  // Schema /3: the trace block reports the fast-forwarded span.
  EXPECT_NE(doc.find("\"skipped_cycles\": 0"), std::string::npos);
}

}  // namespace
}  // namespace hymm
