// Tests for the analytic area model (Table III).
#include <gtest/gtest.h>

#include "model/area.hpp"

namespace hymm {
namespace {

const ComponentArea& component(const AreaReport& report,
                               const std::string& name) {
  for (const ComponentArea& c : report.components) {
    if (c.name == name) return c;
  }
  ADD_FAILURE() << "component " << name << " missing";
  return report.components.front();
}

TEST(AreaModel, ReproducesTableIIIAtPaperConfig) {
  const AreaReport report = estimate_area(AcceleratorConfig{});
  EXPECT_NEAR(component(report, "PE Array").area_7nm_mm2, 0.006, 1e-9);
  EXPECT_NEAR(component(report, "PE Array").area_40nm_mm2, 0.21, 1e-9);
  EXPECT_NEAR(component(report, "DMB").area_7nm_mm2, 0.077, 1e-9);
  EXPECT_NEAR(component(report, "DMB").area_40nm_mm2, 2.39, 1e-9);
  EXPECT_NEAR(component(report, "SMQ").area_7nm_mm2, 0.008, 1e-9);
  EXPECT_NEAR(component(report, "SMQ").area_40nm_mm2, 0.254, 1e-9);
  EXPECT_NEAR(component(report, "LSQ").area_7nm_mm2, 0.009, 1e-9);
  EXPECT_NEAR(component(report, "LSQ").area_40nm_mm2, 0.292, 1e-9);
  EXPECT_NEAR(component(report, "Others").area_7nm_mm2, 0.004, 1e-9);
  // Component sums (the paper's printed totals, 0.106 / 3.215, carry
  // independent rounding; our totals are the exact column sums).
  EXPECT_NEAR(report.total_7nm_mm2, 0.104, 1e-6);
  EXPECT_NEAR(report.total_40nm_mm2, 3.275, 1e-6);
}

TEST(AreaModel, TotalsBetweenGrowAndGcnax) {
  // Section V: HyMM (3.215 mm^2 in the paper) is smaller than GCNAX
  // (6.51) and larger than GROW (2.291). The model must keep that
  // ordering.
  const AreaReport report = estimate_area(AcceleratorConfig{});
  EXPECT_LT(report.total_40nm_mm2, kGcnaxArea40nm);
  EXPECT_GT(report.total_40nm_mm2, kGrowArea40nm);
}

TEST(AreaModel, ScalesLinearlyWithPeCount) {
  AcceleratorConfig config;
  config.pe_count = 32;
  const AreaReport doubled = estimate_area(config);
  EXPECT_NEAR(component(doubled, "PE Array").area_7nm_mm2, 0.012, 1e-9);
}

TEST(AreaModel, ScalesWithBufferSizes) {
  AcceleratorConfig config;
  config.dmb_bytes = 512 * 1024;
  config.lsq_entries = 256;
  const AreaReport report = estimate_area(config);
  EXPECT_NEAR(component(report, "DMB").area_7nm_mm2, 2 * 0.077, 1e-9);
  EXPECT_NEAR(component(report, "LSQ").area_7nm_mm2, 2 * 0.009, 1e-9);
}

TEST(AreaModel, TotalsSumComponents) {
  const AreaReport report = estimate_area(AcceleratorConfig{});
  double sum7 = 0.0, sum40 = 0.0;
  for (const ComponentArea& c : report.components) {
    sum7 += c.area_7nm_mm2;
    sum40 += c.area_40nm_mm2;
  }
  EXPECT_DOUBLE_EQ(report.total_7nm_mm2, sum7);
  EXPECT_DOUBLE_EQ(report.total_40nm_mm2, sum40);
}

}  // namespace
}  // namespace hymm
