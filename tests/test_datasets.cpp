// Tests for the dataset registry (Table II) and the synthetic
// workload builder.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/check.hpp"
#include "graph/datasets.hpp"
#include "graph/generator.hpp"

namespace hymm {
namespace {

TEST(Datasets, RegistryMatchesTableII) {
  const auto& all = paper_datasets();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all[0].abbrev, "CR");
  EXPECT_EQ(all[0].nodes, 2708u);
  EXPECT_EQ(all[0].edges, 10556u);
  EXPECT_EQ(all[0].feature_length, 1433u);
  EXPECT_EQ(all[1].abbrev, "AP");
  EXPECT_EQ(all[1].edges, 238162u);
  EXPECT_EQ(all[6].abbrev, "YP");
  EXPECT_EQ(all[6].nodes, 716847u);
  for (const DatasetSpec& spec : all) {
    EXPECT_EQ(spec.layer_dim, 16u);
    EXPECT_GT(spec.feature_sparsity, 0.0);
    EXPECT_LT(spec.feature_sparsity, 1.0);
  }
}

TEST(Datasets, AdjacencySparsityMatchesPaper) {
  // Table II lists e.g. 99.86% for Cora and 99.59% for Amazon-Photo.
  const DatasetSpec cora = *find_dataset("CR");
  EXPECT_NEAR(cora.adjacency_sparsity(), 0.9986, 0.0002);
  const DatasetSpec ap = *find_dataset("Amazon-Photo");
  EXPECT_NEAR(ap.adjacency_sparsity(), 0.9959, 0.0002);
}

TEST(Datasets, FindByNameOrAbbrev) {
  EXPECT_TRUE(find_dataset("Yelp").has_value());
  EXPECT_TRUE(find_dataset("YP").has_value());
  EXPECT_FALSE(find_dataset("nope").has_value());
}

TEST(Datasets, ScalePreservesAverageDegree) {
  const DatasetSpec ap = *find_dataset("AP");
  const DatasetSpec half = scale_dataset(ap, 0.5);
  const double full_degree =
      static_cast<double>(ap.edges) / ap.nodes;
  const double half_degree =
      static_cast<double>(half.edges) / half.nodes;
  EXPECT_NEAR(half_degree, full_degree, full_degree * 0.01);
  EXPECT_EQ(half.feature_length, ap.feature_length);
  EXPECT_EQ(scale_dataset(ap, 1.0).nodes, ap.nodes);
  EXPECT_THROW(scale_dataset(ap, 0.0), CheckError);
  EXPECT_THROW(scale_dataset(ap, 1.5), CheckError);
}

TEST(Datasets, DefaultScaleShrinksOnlyLargeGraphs) {
  unsetenv("HYMM_FULL_DATASETS");
  for (const DatasetSpec& spec : paper_datasets()) {
    const double scale = default_scale(spec);
    if (spec.abbrev == "FR" || spec.abbrev == "YP") {
      EXPECT_LT(scale, 1.0) << spec.abbrev;
    } else {
      EXPECT_EQ(scale, 1.0) << spec.abbrev;
    }
  }
  setenv("HYMM_FULL_DATASETS", "1", 1);
  EXPECT_EQ(default_scale(*find_dataset("YP")), 1.0);
  unsetenv("HYMM_FULL_DATASETS");
}

TEST(Workload, MatchesScaledSpecStatistics) {
  const DatasetSpec cora = *find_dataset("CR");
  const GcnWorkload w = build_workload(cora, 0.25, 3);
  EXPECT_EQ(w.adjacency.rows(), w.spec.nodes);
  EXPECT_EQ(w.features.rows(), w.spec.nodes);
  EXPECT_EQ(w.features.cols(), cora.feature_length);
  // Edge count within generator tolerance.
  const double edge_ratio = static_cast<double>(w.adjacency.nnz()) /
                            static_cast<double>(w.spec.edges);
  EXPECT_GT(edge_ratio, 0.9);
  EXPECT_LE(edge_ratio, 1.1);
  // Feature density matches the Table II sparsity.
  const double density =
      static_cast<double>(w.features.nnz()) /
      (static_cast<double>(w.spec.nodes) * w.spec.feature_length);
  EXPECT_NEAR(density, cora.feature_density(), 0.002);
}

TEST(Workload, DeterministicPerSeed) {
  const DatasetSpec cora = *find_dataset("CR");
  const GcnWorkload a = build_workload(cora, 0.1, 5);
  const GcnWorkload b = build_workload(cora, 0.1, 5);
  EXPECT_EQ(a.adjacency, b.adjacency);
  EXPECT_EQ(a.features, b.features);
  const GcnWorkload c = build_workload(cora, 0.1, 6);
  EXPECT_NE(a.adjacency, c.adjacency);
}

TEST(Workload, PowerLawShapeHolds) {
  // Every synthetic dataset must reproduce the Fig 2 observation at
  // its native size (pair deduplication flattens heavily scaled-down
  // dense graphs, so this is checked at scale 1).
  const DatasetSpec ap = *find_dataset("AP");
  const GcnWorkload w = build_workload(ap, 1.0, 7);
  EXPECT_GT(top_degree_edge_share(w.adjacency, 0.20), 0.70);
}

}  // namespace
}  // namespace hymm
