// Tests for the Sparse Matrix Queue: stream order for CSR and CSC,
// outer-unit delimiters, refill gating and traffic accounting.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "graph/generator.hpp"
#include "sim/smq.hpp"
#include "sim/smq_entry.hpp"

namespace hymm {
namespace {

struct Fixture {
  Fixture() {
    config.dram_latency = 5;
    dram = std::make_unique<Dram>(config, stats);
    smq = std::make_unique<SparseMatrixQueue>(config, *dram, stats);
  }

  // Runs the stream to completion, returning all entries in pop order.
  std::vector<SmqEntry> drain(Cycle limit = 1'000'000) {
    std::vector<SmqEntry> entries;
    for (Cycle t = 0; t < limit && !smq->finished(); ++t) {
      dram->tick(t);
      smq->tick(t);
      while (smq->has_ready()) {
        entries.push_back(smq->front());
        smq->pop();
      }
    }
    EXPECT_TRUE(smq->finished());
    return entries;
  }

  AcceleratorConfig config;
  SimStats stats;
  std::unique_ptr<Dram> dram;
  std::unique_ptr<SparseMatrixQueue> smq;
};

CsrMatrix small_matrix() {
  CooMatrix coo(4, 4);
  coo.add(0, 1, 1.0f);
  coo.add(0, 3, 2.0f);
  coo.add(2, 0, 3.0f);
  coo.add(2, 2, 4.0f);
  coo.add(2, 3, 5.0f);
  coo.add(3, 3, 6.0f);
  return CsrMatrix::from_coo(std::move(coo));
}

TEST(Smq, CsrStreamOrderAndFlags) {
  Fixture f;
  const CsrMatrix m = small_matrix();
  f.smq->attach_csr(m, TrafficClass::kAdjacency);
  const auto entries = f.drain();
  ASSERT_EQ(entries.size(), m.nnz());
  // Row-major order with (first, last) delimiters.
  EXPECT_EQ(entries[0].outer, 0u);
  EXPECT_EQ(entries[0].inner, 1u);
  EXPECT_TRUE(entries[0].first_of_outer);
  EXPECT_FALSE(entries[0].last_of_outer);
  EXPECT_EQ(entries[1].inner, 3u);
  EXPECT_TRUE(entries[1].last_of_outer);
  EXPECT_EQ(entries[2].outer, 2u);  // empty row 1 skipped
  EXPECT_TRUE(entries[2].first_of_outer);
  EXPECT_FLOAT_EQ(entries[4].value, 5.0f);
  EXPECT_TRUE(entries[4].last_of_outer);
  EXPECT_TRUE(entries[5].first_of_outer);
  EXPECT_TRUE(entries[5].last_of_outer);
}

TEST(Smq, CscStreamWalksColumns) {
  Fixture f;
  const CscMatrix m = CscMatrix::from_csr(small_matrix());
  f.smq->attach_csc(m, TrafficClass::kAdjacency);
  const auto entries = f.drain();
  ASSERT_EQ(entries.size(), m.nnz());
  // Column 0 holds row 2 only.
  EXPECT_EQ(entries[0].outer, 0u);
  EXPECT_EQ(entries[0].inner, 2u);
  EXPECT_TRUE(entries[0].first_of_outer);
  EXPECT_TRUE(entries[0].last_of_outer);
  // Column 3 holds rows 0, 2, 3.
  const auto& last = entries.back();
  EXPECT_EQ(last.outer, 3u);
  EXPECT_EQ(last.inner, 3u);
  EXPECT_TRUE(last.last_of_outer);
}

TEST(Smq, RefillTrafficAccountedPerClass) {
  Fixture f;
  const CsrMatrix m = small_matrix();
  f.smq->attach_csr(m, TrafficClass::kFeatures);
  f.drain();
  const auto bytes = f.stats.dram_read_bytes[static_cast<std::size_t>(
      TrafficClass::kFeatures)];
  // 6 entries -> one index/value line, plus at least one pointer line.
  EXPECT_GE(bytes, 2 * kLineBytes);
  EXPECT_LE(bytes, 4 * kLineBytes);
}

TEST(Smq, EntriesGatedByDramLatency) {
  Fixture f;
  const CsrMatrix m = small_matrix();
  f.smq->attach_csr(m, TrafficClass::kAdjacency);
  // Nothing can be ready before the first refill returns.
  for (Cycle t = 0; t < f.config.dram_latency; ++t) {
    f.dram->tick(t);
    f.smq->tick(t);
    EXPECT_FALSE(f.smq->has_ready());
  }
}

TEST(Smq, LargeStreamDeliversEveryEntryOnce) {
  Fixture f;
  GraphSpec spec;
  spec.nodes = 300;
  spec.edges = 5000;
  spec.seed = 3;
  const CsrMatrix m = generate_power_law_graph(spec);
  f.smq->attach_csr(m, TrafficClass::kAdjacency);
  const auto entries = f.drain();
  ASSERT_EQ(entries.size(), m.nnz());
  // Re-derive the matrix from the stream and compare.
  CooMatrix coo(m.rows(), m.cols());
  for (const SmqEntry& e : entries) coo.add(e.outer, e.inner, e.value);
  EXPECT_EQ(CsrMatrix::from_coo(std::move(coo)), m);
}

TEST(Smq, PrefetchDepthBoundedByIndexBuffer) {
  Fixture f;
  GraphSpec spec;
  spec.nodes = 400;
  spec.edges = 30000;
  spec.seed = 4;
  const CsrMatrix m = generate_power_law_graph(spec);
  f.smq->attach_csr(m, TrafficClass::kAdjacency);
  const std::size_t capacity = f.config.smq_index_bytes / 8;
  // Without consuming anything, the ready queue must not exceed the
  // index-buffer capacity.
  for (Cycle t = 0; t < 5000; ++t) {
    f.dram->tick(t);
    f.smq->tick(t);
  }
  std::size_t ready = 0;
  while (f.smq->has_ready()) {
    f.smq->pop();
    ++ready;
  }
  EXPECT_LE(ready, capacity);
  EXPECT_GE(ready, capacity / 2);  // prefetcher actually ran ahead
}

TEST(Smq, AttachWhileActiveThrows) {
  Fixture f;
  const CsrMatrix m = small_matrix();
  f.smq->attach_csr(m, TrafficClass::kAdjacency);
  EXPECT_THROW(f.smq->attach_csr(m, TrafficClass::kAdjacency), CheckError);
}

TEST(SmqEntryFormat, PackUnpackRoundTrip) {
  for (const SmqFormat format : {SmqFormat::kCsr, SmqFormat::kCsc}) {
    for (const NodeId pointer : {NodeId{0}, NodeId{716846}, kMaxSmqPointer}) {
      for (const Value value : {0.0f, -3.25f, 1e-20f, 1e20f}) {
        SmqEntryFields fields;
        fields.format = format;
        fields.pointer = pointer;
        fields.index = 0xDEADBEEF;
        fields.value = value;
        EXPECT_EQ(unpack_smq_entry(pack_smq_entry(fields)), fields);
      }
    }
  }
}

TEST(SmqEntryFormat, FlagOccupiesTopBit) {
  SmqEntryFields csc;
  csc.format = SmqFormat::kCsc;
  csc.pointer = 5;
  EXPECT_EQ(pack_smq_entry(csc).flag_and_pointer, 0x80000005u);
  SmqEntryFields csr = csc;
  csr.format = SmqFormat::kCsr;
  EXPECT_EQ(pack_smq_entry(csr).flag_and_pointer, 0x00000005u);
}

TEST(SmqEntryFormat, PointerOverflowRejected) {
  SmqEntryFields fields;
  fields.pointer = kMaxSmqPointer + 1;
  EXPECT_THROW(pack_smq_entry(fields), CheckError);
}

TEST(SmqEntryFormat, PackedSizeMatchesStorageAccounting) {
  // 12 bytes per entry = 4 (flag+pointer) + 4 (index) + 4 (value);
  // the SMQ's index/value stream accounting (8 B/nnz) plus the
  // pointer stream (4 B/outer unit) corresponds to this layout.
  EXPECT_EQ(kPackedSmqEntryBytes, 12u);
  EXPECT_EQ(sizeof(PackedSmqEntry), 12u);
}

TEST(Smq, EmptyMatrixFinishesImmediately) {
  Fixture f;
  const CsrMatrix empty = CsrMatrix::from_coo(CooMatrix(5, 5));
  f.smq->attach_csr(empty, TrafficClass::kAdjacency);
  EXPECT_TRUE(f.smq->finished());
  // And a new stream can attach right away.
  const CsrMatrix m = small_matrix();
  EXPECT_NO_THROW(f.smq->attach_csr(m, TrafficClass::kAdjacency));
}

}  // namespace
}  // namespace hymm
