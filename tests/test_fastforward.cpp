// Event-driven fast-forward acceptance suite (docs/architecture.md).
//
// The tentpole guarantee: with cycle-skipping enabled the simulator
// produces *bit-identical* timing results — cycles, the full
// per-cause stall vector, and every DRAM byte counter — for every
// paper dataset under every dataflow. The suite locks that down at
// reduced dataset scales (the full-scale sweep runs in the bench
// harness), plus the accounting invariant and the paranoid check
// mode.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/runner.hpp"
#include "graph/datasets.hpp"
#include "graph/degree_sort.hpp"
#include "linalg/gcn.hpp"

namespace hymm {
namespace {

// Restores the process-wide fast-forward mode on scope exit so test
// order cannot leak modes across suites.
class ModeGuard {
 public:
  ModeGuard() : saved_(fast_forward_mode()) {}
  ~ModeGuard() { set_fast_forward_mode(saved_); }

 private:
  FastForwardMode saved_;
};

// Reduced per-dataset scales: every paper topology is exercised, but
// each cell stays in unit-test territory (~500-600 nodes).
double test_scale(const DatasetSpec& spec) {
  if (spec.abbrev == "CR") return 0.2;
  if (spec.abbrev == "AP") return 0.08;
  if (spec.abbrev == "AC") return 0.04;
  if (spec.abbrev == "CS") return 0.03;
  if (spec.abbrev == "PH") return 0.016;
  if (spec.abbrev == "FR") return 0.006;
  return 0.0008;  // YP
}

struct TimingFingerprint {
  Cycle cycles = 0;
  Cycle combination_cycles = 0;
  Cycle aggregation_cycles = 0;
  std::array<Cycle, kStallCauseCount> stalls{};
  std::array<std::uint64_t, kTrafficClassCount> read_bytes{};
  std::array<std::uint64_t, kTrafficClassCount> write_bytes{};
  Cycle skipped = 0;
  bool verified = false;

  friend bool operator==(const TimingFingerprint& a,
                         const TimingFingerprint& b) {
    return a.cycles == b.cycles &&
           a.combination_cycles == b.combination_cycles &&
           a.aggregation_cycles == b.aggregation_cycles &&
           a.stalls == b.stalls && a.read_bytes == b.read_bytes &&
           a.write_bytes == b.write_bytes;
  }
};

TimingFingerprint fingerprint(const ExperimentResult& r) {
  TimingFingerprint f;
  f.cycles = r.cycles;
  f.combination_cycles = r.combination_cycles;
  f.aggregation_cycles = r.aggregation_cycles;
  f.stalls = r.stats.stall_cycles;
  f.read_bytes = r.stats.dram_read_bytes;
  f.write_bytes = r.stats.dram_write_bytes;
  f.skipped = r.stats.skipped_cycles;
  f.verified = r.verified;
  return f;
}

// One workload per dataset, shared across flows and modes.
struct DatasetFixture {
  GcnWorkload workload;
  CsrMatrix a_hat;
  DenseMatrix weights;
  DenseMatrix reference;
};

DatasetFixture build_fixture(const DatasetSpec& spec) {
  DatasetFixture f;
  f.workload = build_workload(spec, test_scale(spec), /*seed=*/42);
  f.a_hat = normalize_adjacency(f.workload.adjacency);
  f.weights = DenseMatrix::random(f.workload.spec.feature_length,
                                  f.workload.spec.layer_dim, 49);
  f.reference =
      gcn_layer_reference(f.a_hat, f.workload.features, f.weights, false)
          .aggregation;
  return f;
}

TimingFingerprint run_cell(const DatasetFixture& f, Dataflow flow,
                           FastForwardMode mode) {
  set_fast_forward_mode(mode);
  ExperimentRequest request;
  request.workload = &f.workload;
  request.a_hat = &f.a_hat;
  request.weights = &f.weights;
  request.reference = &f.reference;
  request.flow = flow;
  request.config = AcceleratorConfig{};
  return fingerprint(run_experiment(request));
}

class FastForwardBitIdentity
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FastForwardBitIdentity, EveryFlowMatchesLegacyLoop) {
  ModeGuard guard;
  const DatasetSpec& spec = paper_datasets()[GetParam()];
  SCOPED_TRACE(spec.abbrev);
  const DatasetFixture fixture = build_fixture(spec);

  for (const Dataflow flow :
       {Dataflow::kRowWiseProduct, Dataflow::kOuterProduct,
        Dataflow::kHybrid}) {
    SCOPED_TRACE(to_string(flow));
    const TimingFingerprint off =
        run_cell(fixture, flow, FastForwardMode::kOff);
    const TimingFingerprint on =
        run_cell(fixture, flow, FastForwardMode::kOn);

    // The tentpole contract: identical cycles, stall vector and DRAM
    // byte counters whether or not spans were skipped.
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.combination_cycles, off.combination_cycles);
    EXPECT_EQ(on.aggregation_cycles, off.aggregation_cycles);
    for (std::size_t i = 0; i < kStallCauseCount; ++i) {
      EXPECT_EQ(on.stalls[i], off.stalls[i])
          << stall_cause_key(static_cast<StallCause>(i));
    }
    EXPECT_EQ(on.read_bytes, off.read_bytes);
    EXPECT_EQ(on.write_bytes, off.write_bytes);

    // Both modes still compute the exact GCN layer.
    EXPECT_TRUE(off.verified);
    EXPECT_TRUE(on.verified);

    // The legacy loop never fast-forwards; the diagnostic counter is
    // a subset of total cycles and stays inside the accounting
    // invariant (buckets already sum to cycles via run_phase's
    // DCHECK).
    EXPECT_EQ(off.skipped, 0u);
    EXPECT_LE(on.skipped, on.cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPaperDatasets, FastForwardBitIdentity,
                         ::testing::Range<std::size_t>(
                             0, paper_datasets().size()),
                         [](const auto& info) {
                           return paper_datasets()[info.param].abbrev;
                         });

// The fast path must actually engage somewhere: across the paper
// datasets at least one cell skips a nonzero span (otherwise the
// tentpole is dead code and the wall-clock win is imaginary).
TEST(FastForward, SkipsCyclesSomewhereInTheSweep) {
  ModeGuard guard;
  Cycle total_skipped = 0;
  for (const DatasetSpec& spec : paper_datasets()) {
    const DatasetFixture fixture = build_fixture(spec);
    for (const Dataflow flow :
         {Dataflow::kRowWiseProduct, Dataflow::kOuterProduct,
          Dataflow::kHybrid}) {
      total_skipped +=
          run_cell(fixture, flow, FastForwardMode::kOn).skipped;
    }
  }
  EXPECT_GT(total_skipped, 0u);
}

// Paranoid mode runs the legacy per-cycle loop while DCHECKing every
// cycle inside a predicted skip span; its stats must equal the
// legacy loop's exactly (and in debug builds a violated prediction
// aborts).
TEST(FastForward, CheckModeMatchesLegacyStats) {
  ModeGuard guard;
  const DatasetSpec& spec = paper_datasets().front();  // Cora
  const DatasetFixture fixture = build_fixture(spec);
  for (const Dataflow flow :
       {Dataflow::kRowWiseProduct, Dataflow::kOuterProduct,
        Dataflow::kHybrid}) {
    SCOPED_TRACE(to_string(flow));
    const TimingFingerprint off =
        run_cell(fixture, flow, FastForwardMode::kOff);
    const TimingFingerprint check =
        run_cell(fixture, flow, FastForwardMode::kCheck);
    EXPECT_TRUE(check == off);
    EXPECT_EQ(check.skipped, 0u);
  }
}

// Degree-sorted (hybrid preprocessing) inputs take the single-pass
// permutation path in CsrMatrix; the timing fingerprint must stay
// mode-independent there too.
TEST(FastForward, BitIdenticalOnDegreeSortedInput) {
  ModeGuard guard;
  const DatasetSpec& spec = paper_datasets().front();
  DatasetFixture fixture = build_fixture(spec);
  const DegreeSortResult sort = degree_sort(fixture.a_hat);
  const CsrMatrix sorted_features =
      permute_feature_rows(fixture.workload.features, sort.perm);

  const auto run_sorted = [&](FastForwardMode mode) {
    set_fast_forward_mode(mode);
    ExperimentRequest request;
    request.workload = &fixture.workload;
    request.a_hat = &fixture.a_hat;
    request.weights = &fixture.weights;
    request.reference = &fixture.reference;
    request.flow = Dataflow::kHybrid;
    request.config = AcceleratorConfig{};
    request.sort = &sort;
    request.sorted_features = &sorted_features;
    return fingerprint(run_experiment(request));
  };
  const TimingFingerprint off = run_sorted(FastForwardMode::kOff);
  const TimingFingerprint on = run_sorted(FastForwardMode::kOn);
  EXPECT_TRUE(on == off);
  EXPECT_TRUE(off.verified && on.verified);
}

}  // namespace
}  // namespace hymm
