// Randomized property sweep: across graph models, sizes, densities
// and accelerator configurations, every dataflow must (a) compute the
// golden result exactly, (b) keep its counters self-consistent, and
// (c) leave no partial-output state behind.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/accelerator.hpp"
#include "graph/generator.hpp"
#include "linalg/gcn.hpp"

namespace hymm {
namespace {

struct SweepCase {
  std::string name;
  AcceleratorConfig config;
};

std::vector<SweepCase> sweep_configs() {
  std::vector<SweepCase> cases;
  cases.push_back({"paper_default", AcceleratorConfig{}});

  AcceleratorConfig tiny_buffer;
  tiny_buffer.dmb_bytes = 8 * kLineBytes;
  cases.push_back({"tiny_dmb", tiny_buffer});

  AcceleratorConfig fifo;
  fifo.eviction_policy = EvictionPolicy::kFifo;
  cases.push_back({"fifo_eviction", fifo});

  AcceleratorConfig no_accumulator;
  no_accumulator.near_memory_accumulator = false;
  cases.push_back({"hybrid_without_accumulator", no_accumulator});

  AcceleratorConfig op_with_accumulator;
  op_with_accumulator.op_baseline_accumulator = true;
  cases.push_back({"op_with_accumulator", op_with_accumulator});

  AcceleratorConfig no_prefetch;
  no_prefetch.op_prefetch_columns = 0;
  cases.push_back({"no_op_prefetch", no_prefetch});

  AcceleratorConfig tight_queues;
  tight_queues.lsq_entries = 8;
  tight_queues.engine_window = 4;
  tight_queues.dmb_mshr_entries = 2;
  tight_queues.dram_queue_entries = 4;
  tight_queues.dram_write_buffer_lines = 2;
  cases.push_back({"tight_queues", tight_queues});

  AcceleratorConfig slow_dram;
  slow_dram.dram_bytes_per_cycle = 16;
  slow_dram.dram_latency = 200;
  cases.push_back({"slow_dram", slow_dram});

  AcceleratorConfig no_forwarding;
  no_forwarding.lsq_store_to_load_forwarding = false;
  cases.push_back({"no_forwarding", no_forwarding});

  AcceleratorConfig wide_tiling;
  wide_tiling.tiling_threshold = 0.5;
  cases.push_back({"tiling_50pct", wide_tiling});

  AcceleratorConfig zero_tiling;
  zero_tiling.tiling_threshold = 0.0;
  cases.push_back({"tiling_0pct", zero_tiling});
  return cases;
}

CsrMatrix sweep_graph(std::uint64_t seed) {
  // Alternate between the generators to vary the structure.
  if (seed % 3 == 0) {
    RmatSpec spec;
    spec.nodes = 150 + static_cast<NodeId>(seed % 5) * 37;
    spec.edges = spec.nodes * 7;
    spec.seed = seed;
    return generate_rmat_graph(spec);
  }
  if (seed % 3 == 1) {
    return generate_uniform_graph(120 + (seed % 7) * 23, 1100, seed);
  }
  GraphSpec spec;
  spec.nodes = 130 + static_cast<NodeId>(seed % 11) * 29;
  spec.edges = spec.nodes * 9;
  spec.seed = seed;
  return generate_power_law_graph(spec);
}

class ConfigSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConfigSweep, AllDataflowsVerifyUnderEveryConfig) {
  const SweepCase sweep = sweep_configs()[GetParam()];
  SCOPED_TRACE(sweep.name);

  const std::uint64_t seed = 100 + GetParam();
  const CsrMatrix a_hat = normalize_adjacency(sweep_graph(seed));
  FeatureSpec fspec;
  fspec.nodes = a_hat.rows();
  fspec.feature_length = 48 + (seed % 3) * 16;
  fspec.density = 0.1 + 0.2 * static_cast<double>(seed % 4);
  fspec.seed = seed + 1;
  const CsrMatrix x = generate_features(fspec);
  const DenseMatrix w = DenseMatrix::random(x.cols(), 16, seed + 2);
  const DenseMatrix expected =
      gcn_layer_reference(a_hat, x, w, false).aggregation;

  const Accelerator accelerator(sweep.config);
  for (const Dataflow flow :
       {Dataflow::kOuterProduct, Dataflow::kRowWiseProduct,
        Dataflow::kHybrid}) {
    SCOPED_TRACE(to_string(flow));
    const LayerRunResult r = accelerator.run_layer(flow, a_hat, x, w);

    // (a) Exact functional result.
    EXPECT_TRUE(DenseMatrix::allclose(r.output, expected, 1e-3, 1e-4))
        << "max err " << DenseMatrix::max_abs_diff(r.output, expected);

    // (b) Counter consistency.
    EXPECT_EQ(r.stats.mac_ops, x.nnz() + a_hat.nnz());
    EXPECT_LE(r.stats.alu_busy_cycles, r.stats.cycles);
    EXPECT_GE(r.stats.cycles, r.stats.mac_ops);  // 1 op/cycle ceiling
    EXPECT_EQ(r.stats.cycles,
              r.combination_stats.cycles + r.aggregation_stats.cycles);
    std::uint64_t class_sum = 0;
    for (std::size_t c = 0; c < kTrafficClassCount; ++c) {
      class_sum +=
          r.stats.dram_read_bytes[c] + r.stats.dram_write_bytes[c];
    }
    EXPECT_EQ(class_sum, r.stats.dram_total_bytes());

    // Cycle accounting: every cycle lands in exactly one stall
    // bucket, per phase and for the whole layer, and compute cycles
    // equal retired MACs.
    EXPECT_EQ(r.stats.stall_total(), std::uint64_t{r.stats.cycles});
    EXPECT_EQ(r.combination_stats.stall_total(),
              std::uint64_t{r.combination_stats.cycles});
    EXPECT_EQ(r.aggregation_stats.stall_total(),
              std::uint64_t{r.aggregation_stats.cycles});
    EXPECT_EQ(r.stats.stall(StallCause::kCompute), r.stats.mac_ops);
    if (flow == Dataflow::kHybrid) {
      for (std::size_t region = 0; region < 3; ++region) {
        const SimStats& rs = r.hybrid_info.region_stats[region];
        EXPECT_EQ(rs.stall_total(), std::uint64_t{rs.cycles})
            << "region " << region + 1;
      }
    }

    // (c) No leaked partial-output state.
    EXPECT_EQ(r.stats.partial_bytes_now, 0u)
        << "unmerged partial bytes left behind";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConfigSweep,
    ::testing::Range<std::size_t>(0, sweep_configs().size()),
    [](const auto& info) { return sweep_configs()[info.param].name; });

// Seed sweep at the paper's default configuration: many random
// graphs, one invariant bundle.
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, DataflowsAgreeWithEachOther) {
  const std::uint64_t seed = GetParam();
  const CsrMatrix a_hat = normalize_adjacency(sweep_graph(seed));
  FeatureSpec fspec;
  fspec.nodes = a_hat.rows();
  fspec.feature_length = 32;
  fspec.density = 0.25;
  fspec.seed = seed * 13 + 1;
  const CsrMatrix x = generate_features(fspec);
  const DenseMatrix w = DenseMatrix::random(32, 16, seed * 17 + 2);

  const Accelerator accelerator{AcceleratorConfig{}};
  const LayerRunResult rwp =
      accelerator.run_layer(Dataflow::kRowWiseProduct, a_hat, x, w);
  const LayerRunResult op =
      accelerator.run_layer(Dataflow::kOuterProduct, a_hat, x, w);
  const LayerRunResult hymm =
      accelerator.run_layer(Dataflow::kHybrid, a_hat, x, w);
  // All three computed the same function.
  EXPECT_TRUE(DenseMatrix::allclose(rwp.output, op.output, 1e-3, 1e-4));
  EXPECT_TRUE(DenseMatrix::allclose(rwp.output, hymm.output, 1e-3, 1e-4));
  // OP without the near-memory accumulator moves the most DRAM bytes.
  EXPECT_GE(op.stats.dram_total_bytes(), rwp.stats.dram_total_bytes());
  EXPECT_GE(op.stats.dram_total_bytes(), hymm.stats.dram_total_bytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace hymm
