// Windowed time-series telemetry acceptance suite
// (obs/timeseries.hpp): the TimeSeries schedule/decimation unit
// behavior, and the tentpole determinism contracts — series
// bit-identical between fast-forward and the legacy per-cycle loop,
// bit-identical across sweep thread counts, and timing bit-identical
// with the sampler on or off.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/runner.hpp"
#include "graph/datasets.hpp"
#include "graph/degree_sort.hpp"
#include "linalg/gcn.hpp"
#include "obs/observer.hpp"
#include "sweep/sweep.hpp"

namespace hymm {
namespace {

TimeSeriesSample sample_at(Cycle cycle) {
  TimeSeriesSample s;
  s.cycle = cycle;
  s.lsq_depth = cycle;  // any payload; equality covers all fields
  return s;
}

TEST(TimeSeries, ScheduleAdvancesByInterval) {
  TimeSeries ts(/*interval=*/10, /*capacity=*/8);
  EXPECT_EQ(ts.next_due(), 0u);
  ts.record(sample_at(0));
  EXPECT_EQ(ts.next_due(), 10u);
  // Late samples realign from the actual cycle, not the due cycle.
  ts.record(sample_at(13));
  EXPECT_EQ(ts.next_due(), 23u);
  EXPECT_EQ(ts.samples().size(), 2u);
}

TEST(TimeSeries, ForcedSampleDeduplicatesPerCycle) {
  TimeSeries ts(/*interval=*/10, /*capacity=*/8);
  ts.record(sample_at(10));
  ts.record_forced(sample_at(10));  // same cycle: dropped
  EXPECT_EQ(ts.samples().size(), 1u);
  ts.record_forced(sample_at(14));  // off-schedule: recorded
  EXPECT_EQ(ts.samples().size(), 2u);
  EXPECT_EQ(ts.next_due(), 24u);  // schedule realigned
}

TEST(TimeSeries, CapacityThinsToEveryOtherSampleAndDoublesInterval) {
  TimeSeries ts(/*interval=*/10, /*capacity=*/4);
  for (const Cycle c : {Cycle{10}, Cycle{20}, Cycle{30}}) {
    ts.record(sample_at(c));
  }
  EXPECT_EQ(ts.samples().size(), 3u);
  EXPECT_EQ(ts.interval(), 10u);
  ts.record(sample_at(40));  // hits capacity: decimate
  ASSERT_EQ(ts.samples().size(), 2u);
  EXPECT_EQ(ts.samples()[0].cycle, 10u);
  EXPECT_EQ(ts.samples()[1].cycle, 30u);
  EXPECT_EQ(ts.interval(), 20u);
}

TEST(TimeSeries, TakeMovesSamplesAndResetsSchedule) {
  TimeSeries ts(/*interval=*/10, /*capacity=*/4);
  ts.record(sample_at(10));
  ts.record(sample_at(20));
  const TimeSeriesData data = ts.take();
  EXPECT_EQ(data.interval, 10u);
  ASSERT_EQ(data.samples.size(), 2u);
  EXPECT_EQ(data.samples[1].cycle, 20u);
  // The series is ready for the next run from cycle 0.
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.next_due(), 0u);
  EXPECT_EQ(ts.interval(), 10u);
  ts.record(sample_at(0));
  EXPECT_EQ(ts.samples().size(), 1u);
}

// --- Simulation-level determinism contracts ---

// Restores the process-wide fast-forward mode on scope exit.
class ModeGuard {
 public:
  ModeGuard() : saved_(fast_forward_mode()) {}
  ~ModeGuard() { set_fast_forward_mode(saved_); }

 private:
  FastForwardMode saved_;
};

struct Fixture {
  GcnWorkload workload;
  CsrMatrix a_hat;
  DenseMatrix weights;
  DenseMatrix reference;
};

Fixture build_fixture(double scale) {
  const DatasetSpec spec = *find_dataset("CR");
  Fixture f;
  f.workload = build_workload(spec, scale, /*seed=*/42);
  f.a_hat = normalize_adjacency(f.workload.adjacency);
  f.weights = DenseMatrix::random(f.workload.spec.feature_length,
                                  f.workload.spec.layer_dim, 49);
  f.reference =
      gcn_layer_reference(f.a_hat, f.workload.features, f.weights, false)
          .aggregation;
  return f;
}

ExperimentResult run_with_observer(const Fixture& f, Dataflow flow,
                                   Observer* obs) {
  ExperimentRequest request;
  request.workload = &f.workload;
  request.a_hat = &f.a_hat;
  request.weights = &f.weights;
  request.reference = &f.reference;
  request.flow = flow;
  request.config = AcceleratorConfig{};
  request.observer = obs;
  return run_experiment(request);
}

// Sampling must not perturb timing: with the sampler on, cycles,
// stall accounting and DRAM traffic are bit-identical to a bare run.
TEST(TimeSeriesSim, SamplerNeverAffectsTiming) {
  const Fixture f = build_fixture(0.1);
  for (const Dataflow flow :
       {Dataflow::kRowWiseProduct, Dataflow::kOuterProduct,
        Dataflow::kHybrid}) {
    SCOPED_TRACE(to_string(flow));
    const ExperimentResult bare = run_with_observer(f, flow, nullptr);

    ObserverOptions options;
    options.timeseries = true;
    options.timeseries_interval = 64;
    Observer obs(options);
    obs.begin_run("ts");
    const ExperimentResult sampled = run_with_observer(f, flow, &obs);

    EXPECT_EQ(bare.cycles, sampled.cycles);
    EXPECT_EQ(bare.stats.stall_cycles, sampled.stats.stall_cycles);
    EXPECT_EQ(bare.dram_total_bytes, sampled.dram_total_bytes);
    EXPECT_TRUE(bare.timeseries.empty());
    EXPECT_FALSE(sampled.timeseries.empty());
  }
}

// The tentpole bit-identity guarantee: the fast-forward replay path
// reconstructs the exact per-cycle samples the legacy loop takes, so
// the two series compare equal field-for-field.
TEST(TimeSeriesSim, SeriesBitIdenticalUnderFastForward) {
  ModeGuard guard;
  const Fixture f = build_fixture(0.1);
  for (const Dataflow flow :
       {Dataflow::kRowWiseProduct, Dataflow::kOuterProduct,
        Dataflow::kHybrid}) {
    SCOPED_TRACE(to_string(flow));
    std::vector<TimeSeriesData> series;
    for (const FastForwardMode mode :
         {FastForwardMode::kOff, FastForwardMode::kOn,
          FastForwardMode::kCheck}) {
      set_fast_forward_mode(mode);
      ObserverOptions options;
      options.timeseries = true;
      options.timeseries_interval = 64;
      Observer obs(options);
      obs.begin_run("ts");
      series.push_back(run_with_observer(f, flow, &obs).timeseries);
    }
    ASSERT_FALSE(series[0].empty());
    EXPECT_EQ(series[0].interval, series[1].interval);
    EXPECT_EQ(series[0].samples, series[1].samples);  // off vs on
    EXPECT_EQ(series[0].samples, series[2].samples);  // off vs check
  }
}

// The latency histograms ride the same mode-invariant observation
// points, so their quantiles match across fast-forward modes too.
TEST(TimeSeriesSim, HistogramsBitIdenticalUnderFastForward) {
  ModeGuard guard;
  const Fixture f = build_fixture(0.1);
  std::vector<RunHistograms> hists;
  for (const FastForwardMode mode :
       {FastForwardMode::kOff, FastForwardMode::kOn}) {
    set_fast_forward_mode(mode);
    Observer obs;
    obs.begin_run("hist");
    hists.push_back(
        run_with_observer(f, Dataflow::kHybrid, &obs).histograms);
  }
  ASSERT_FALSE(hists[0].empty());
  const auto expect_same = [](const LogHistogram& a, const LogHistogram& b,
                              const char* name) {
    SCOPED_TRACE(name);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
    EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));
    EXPECT_EQ(a.quantile(0.99), b.quantile(0.99));
  };
  expect_same(hists[0].lsq_load_latency, hists[1].lsq_load_latency, "lsq");
  expect_same(hists[0].dram_read_latency, hists[1].dram_read_latency,
              "dram");
  expect_same(hists[0].dmb_fill_latency, hists[1].dmb_fill_latency, "dmb");
  expect_same(hists[0].phase_cycles, hists[1].phase_cycles, "phase");
}

// Per-cell series must be independent of the sweep thread count: each
// run has its own Observer-owned series, drained per cell.
TEST(TimeSeriesSim, SweepSeriesIndependentOfThreadCount) {
  SweepSpec spec;
  spec.datasets = {*find_dataset("CR")};
  spec.scale = 0.1;
  spec.flows = {Dataflow::kRowWiseProduct, Dataflow::kOuterProduct,
                Dataflow::kHybrid};

  const auto run_at = [&spec](unsigned threads) {
    SweepOptions options;
    options.threads = threads;
    options.observe = true;
    options.observer_options.timeseries = true;
    options.observer_options.timeseries_interval = 64;
    SweepRunner runner(options);
    return runner.run(spec);
  };

  const SweepRun serial = run_at(1);
  const SweepRun parallel = run_at(4);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const ExperimentResult& a = serial.cells[i].result;
    const ExperimentResult& b = parallel.cells[i].result;
    SCOPED_TRACE(a.abbrev + "/" + to_string(a.flow));
    EXPECT_EQ(a.cycles, b.cycles);
    ASSERT_FALSE(a.timeseries.empty());
    EXPECT_EQ(a.timeseries.interval, b.timeseries.interval);
    EXPECT_EQ(a.timeseries.samples, b.timeseries.samples);
  }
}

}  // namespace
}  // namespace hymm
