// Tests for the R-MAT generator.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "graph/generator.hpp"

namespace hymm {
namespace {

RmatSpec default_spec() {
  RmatSpec spec;
  spec.nodes = 1024;
  spec.edges = 8000;
  spec.seed = 5;
  return spec;
}

TEST(Rmat, Deterministic) {
  EXPECT_EQ(generate_rmat_graph(default_spec()),
            generate_rmat_graph(default_spec()));
}

TEST(Rmat, EdgeTargetWithinTolerance) {
  const CsrMatrix a = generate_rmat_graph(default_spec());
  EXPECT_EQ(a.rows(), 1024u);
  const double ratio = static_cast<double>(a.nnz()) / 8000.0;
  EXPECT_GT(ratio, 0.9);
  EXPECT_LE(ratio, 1.1);
}

TEST(Rmat, SymmetricNoSelfLoops) {
  const CsrMatrix a = generate_rmat_graph(default_spec());
  EXPECT_EQ(a.transpose(), a);
  for (NodeId r = 0; r < a.rows(); ++r) {
    for (const NodeId c : a.row_cols(r)) EXPECT_NE(c, r);
  }
}

TEST(Rmat, SkewedQuadrantsConcentrateEdges) {
  const CsrMatrix skewed = generate_rmat_graph(default_spec());
  RmatSpec uniform = default_spec();
  uniform.a = uniform.b = uniform.c = uniform.d = 0.25;
  const CsrMatrix flat = generate_rmat_graph(uniform);
  EXPECT_GT(top_degree_edge_share(skewed, 0.20),
            top_degree_edge_share(flat, 0.20));
  EXPECT_GT(top_degree_edge_share(skewed, 0.20), 0.5);
}

TEST(Rmat, NonPowerOfTwoNodeCount) {
  RmatSpec spec = default_spec();
  spec.nodes = 1000;  // internal split uses 1024 but ids stay < 1000
  const CsrMatrix a = generate_rmat_graph(spec);
  EXPECT_EQ(a.rows(), 1000u);
  for (const NodeId c : a.col_idx()) EXPECT_LT(c, 1000u);
}

TEST(Rmat, RejectsBadProbabilities) {
  RmatSpec spec = default_spec();
  spec.a = 0.9;  // sum = 1.33
  EXPECT_THROW(generate_rmat_graph(spec), CheckError);
  spec = default_spec();
  spec.nodes = 1;
  EXPECT_THROW(generate_rmat_graph(spec), CheckError);
}

TEST(Rmat, ShuffleHidesTheRecursiveOrder) {
  RmatSpec spec = default_spec();
  spec.shuffle_ids = false;
  const CsrMatrix ordered = generate_rmat_graph(spec);
  spec.shuffle_ids = true;
  const CsrMatrix shuffled = generate_rmat_graph(spec);
  EXPECT_EQ(ordered.nnz(), shuffled.nnz());
  EXPECT_NE(ordered, shuffled);
}

}  // namespace
}  // namespace hymm
