// Edge-case coverage for the full accelerator stack: degenerate
// graphs, empty features, isolated nodes, single-element problems and
// pathological configurations.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/accelerator.hpp"
#include "graph/generator.hpp"
#include "linalg/gcn.hpp"

namespace hymm {
namespace {

const Dataflow kAllFlows[] = {Dataflow::kOuterProduct,
                              Dataflow::kRowWiseProduct, Dataflow::kHybrid};

void expect_layer_matches_reference(const CsrMatrix& a_hat,
                                    const CsrMatrix& x,
                                    const DenseMatrix& w,
                                    const AcceleratorConfig& config =
                                        AcceleratorConfig{}) {
  const DenseMatrix expected =
      gcn_layer_reference(a_hat, x, w, false).aggregation;
  const Accelerator accelerator(config);
  for (const Dataflow flow : kAllFlows) {
    const LayerRunResult r = accelerator.run_layer(flow, a_hat, x, w);
    EXPECT_TRUE(DenseMatrix::allclose(r.output, expected, 1e-3, 1e-4))
        << to_string(flow);
    EXPECT_EQ(r.stats.partial_bytes_now, 0u) << to_string(flow);
  }
}

TEST(EdgeCases, EmptyAdjacencyProducesZeroOutput) {
  const NodeId n = 10;
  const CsrMatrix empty_a = CsrMatrix::from_coo(CooMatrix(n, n));
  FeatureSpec fspec;
  fspec.nodes = n;
  fspec.feature_length = 20;
  fspec.density = 0.5;
  fspec.seed = 1;
  const CsrMatrix x = generate_features(fspec);
  const DenseMatrix w = DenseMatrix::random(20, 16, 2);
  expect_layer_matches_reference(empty_a, x, w);
}

TEST(EdgeCases, EmptyFeaturesProduceZeroOutput) {
  GraphSpec gspec;
  gspec.nodes = 12;
  gspec.edges = 40;
  gspec.seed = 3;
  const CsrMatrix a_hat = normalize_adjacency(generate_power_law_graph(gspec));
  const CsrMatrix x = CsrMatrix::from_coo(CooMatrix(12, 8));  // all zero
  const DenseMatrix w = DenseMatrix::random(8, 16, 4);
  expect_layer_matches_reference(a_hat, x, w);
}

TEST(EdgeCases, BothEmpty) {
  const CsrMatrix a = CsrMatrix::from_coo(CooMatrix(4, 4));
  const CsrMatrix x = CsrMatrix::from_coo(CooMatrix(4, 4));
  const DenseMatrix w = DenseMatrix::random(4, 4, 5);
  expect_layer_matches_reference(a, x, w);
}

TEST(EdgeCases, TwoNodeGraph) {
  CooMatrix coo(2, 2);
  coo.add(0, 1, 1.0f);
  coo.add(1, 0, 1.0f);
  const CsrMatrix a_hat =
      normalize_adjacency(CsrMatrix::from_coo(std::move(coo)));
  CooMatrix xf(2, 3);
  xf.add(0, 0, 0.5f);
  xf.add(1, 2, -0.25f);
  const CsrMatrix x = CsrMatrix::from_coo(std::move(xf));
  const DenseMatrix w = DenseMatrix::random(3, 16, 6);
  expect_layer_matches_reference(a_hat, x, w);
}

TEST(EdgeCases, IsolatedNodesAndHub) {
  // A star plus isolated nodes: many empty rows/columns.
  CooMatrix coo(20, 20);
  for (NodeId i = 1; i <= 5; ++i) {
    coo.add(0, i, 1.0f);
    coo.add(i, 0, 1.0f);
  }
  const CsrMatrix a_hat =
      normalize_adjacency(CsrMatrix::from_coo(std::move(coo)));
  FeatureSpec fspec;
  fspec.nodes = 20;
  fspec.feature_length = 10;
  fspec.density = 0.4;
  fspec.seed = 7;
  const CsrMatrix x = generate_features(fspec);
  const DenseMatrix w = DenseMatrix::random(10, 12, 8);
  expect_layer_matches_reference(a_hat, x, w);
}

TEST(EdgeCases, NarrowLayerDimensions) {
  GraphSpec gspec;
  gspec.nodes = 30;
  gspec.edges = 150;
  gspec.seed = 9;
  const CsrMatrix a_hat = normalize_adjacency(generate_power_law_graph(gspec));
  FeatureSpec fspec;
  fspec.nodes = 30;
  fspec.feature_length = 16;
  fspec.density = 0.3;
  fspec.seed = 10;
  const CsrMatrix x = generate_features(fspec);
  // Output dims 1 and 3: partial lines.
  for (const NodeId d : {NodeId{1}, NodeId{3}}) {
    const DenseMatrix w = DenseMatrix::random(16, d, 11 + d);
    expect_layer_matches_reference(a_hat, x, w);
  }
}

TEST(EdgeCases, DenseAdjacency) {
  // A fully connected small graph: every row of A is dense.
  const NodeId n = 12;
  CooMatrix coo(n, n);
  for (NodeId r = 0; r < n; ++r) {
    for (NodeId c = 0; c < n; ++c) {
      if (r != c) coo.add(r, c, 1.0f);
    }
  }
  const CsrMatrix a_hat =
      normalize_adjacency(CsrMatrix::from_coo(std::move(coo)));
  FeatureSpec fspec;
  fspec.nodes = n;
  fspec.feature_length = 8;
  fspec.density = 1.0;
  fspec.seed = 12;
  const CsrMatrix x = generate_features(fspec);
  const DenseMatrix w = DenseMatrix::random(8, 16, 13);
  expect_layer_matches_reference(a_hat, x, w);
}

TEST(EdgeCases, SingleLineDmb) {
  // The smallest legal buffer still produces correct results.
  AcceleratorConfig config;
  config.dmb_bytes = kLineBytes;
  config.dmb_pin_fraction = 1.0;
  GraphSpec gspec;
  gspec.nodes = 25;
  gspec.edges = 120;
  gspec.seed = 14;
  const CsrMatrix a_hat = normalize_adjacency(generate_power_law_graph(gspec));
  FeatureSpec fspec;
  fspec.nodes = 25;
  fspec.feature_length = 12;
  fspec.density = 0.4;
  fspec.seed = 15;
  const CsrMatrix x = generate_features(fspec);
  const DenseMatrix w = DenseMatrix::random(12, 16, 16);
  expect_layer_matches_reference(a_hat, x, w, config);
}

TEST(EdgeCases, NegativeWeightsAndValues) {
  // Signed arithmetic through every path.
  CooMatrix coo(6, 6);
  coo.add(0, 1, -2.0f);
  coo.add(1, 0, -2.0f);
  coo.add(2, 3, 1.5f);
  coo.add(3, 2, 1.5f);
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  CooMatrix xf(6, 4);
  xf.add(0, 0, -1.0f);
  xf.add(1, 1, 2.0f);
  xf.add(3, 3, -3.0f);
  const CsrMatrix x = CsrMatrix::from_coo(std::move(xf));
  const DenseMatrix w = DenseMatrix::random(4, 8, 17);
  // Use the raw (unnormalized) adjacency: negative edge weights.
  expect_layer_matches_reference(a, x, w);
}

TEST(EdgeCases, RepeatedRunsAreDeterministic) {
  GraphSpec gspec;
  gspec.nodes = 40;
  gspec.edges = 200;
  gspec.seed = 18;
  const CsrMatrix a_hat = normalize_adjacency(generate_power_law_graph(gspec));
  FeatureSpec fspec;
  fspec.nodes = 40;
  fspec.feature_length = 24;
  fspec.density = 0.25;
  fspec.seed = 19;
  const CsrMatrix x = generate_features(fspec);
  const DenseMatrix w = DenseMatrix::random(24, 16, 20);
  const Accelerator accelerator{AcceleratorConfig{}};
  for (const Dataflow flow : kAllFlows) {
    const LayerRunResult a = accelerator.run_layer(flow, a_hat, x, w);
    const LayerRunResult b = accelerator.run_layer(flow, a_hat, x, w);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles) << to_string(flow);
    EXPECT_EQ(a.stats.dram_total_bytes(), b.stats.dram_total_bytes());
    EXPECT_EQ(a.output, b.output);
  }
}

}  // namespace
}  // namespace hymm
